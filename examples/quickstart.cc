// Quickstart: parse constraints in the paper's syntax, check a database,
// and run the three levels of partial-information tests on an update —
// constraints only (subsumption), constraints + update (independence), and
// constraints + update + local data (the complete local test).
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/cqc_form.h"
#include "core/local_test.h"
#include "datalog/parser.h"
#include "eval/engine.h"
#include "subsumption/subsumption.h"
#include "updates/independence.h"

using namespace ccpi;  // NOLINT: example brevity

int main() {
  // --- 1. Constraints are queries deriving the 0-ary `panic`. -------------
  Program no_dual = *ParseProgram(
      "panic :- emp(E,sales) & emp(E,accounting)");
  std::printf("constraint: %s", no_dual.ToString().c_str());

  Database db;
  (void)db.Insert("emp", {V("ann"), V("sales")});
  (void)db.Insert("emp", {V("bob"), V("accounting")});
  std::printf("violated now? %s\n\n",
              *IsViolated(no_dual, db) ? "yes" : "no");

  // --- 2. Level 0: subsumption (Theorem 3.1). -----------------------------
  Program cap150 = *ParseProgram("panic :- pay(E,S) & S > 150");
  Program cap100 = *ParseProgram("panic :- pay(E,S) & S > 100");
  auto subsumed = Subsumes(cap150, {cap100});
  std::printf("salary-cap-150 subsumed by salary-cap-100? %s (%s)\n\n",
              subsumed->outcome == Outcome::kHolds ? "yes" : "no",
              subsumed->method.c_str());

  // --- 3. Level 1: constraints + update (Section 4). ----------------------
  Update hire = Update::Insert("pay", {V("carol"), V(90)});
  auto independent = HoldsAfterUpdate(cap100, hire, {});
  std::printf("hiring carol at 90 can violate the cap-100 constraint? %s\n\n",
              independent->outcome == Outcome::kHolds ? "no (proved "
                                                        "data-free)"
                                                      : "maybe");

  // --- 4. Level 2: constraints + update + local data (Theorem 5.2). -------
  // Forbidden intervals (Example 5.3): each local pair (X,Y) promises that
  // no remote reading Z lies in [X,Y].
  Cqc intervals = *MakeCqc(
      *ParseRule("panic :- calibrated(Lo,Hi) & reading(Z) & Lo <= Z & Z <= Hi"),
      "calibrated");
  Relation local(2);
  local.Insert({V(3), V(6)});
  local.Insert({V(5), V(10)});
  auto covered = CompleteLocalTestOnInsert(intervals, {V(4), V(8)}, local);
  std::printf("inserting calibrated(4,8) with local {(3,6),(5,10)}: %s\n",
              OutcomeToString(covered->outcome));
  auto uncovered = CompleteLocalTestOnInsert(intervals, {V(2), V(12)}, local);
  std::printf("inserting calibrated(2,12): %s",
              OutcomeToString(uncovered->outcome));
  if (uncovered->witness_remote.has_value()) {
    std::printf(" — a remote state that would break it:\n%s",
                uncovered->witness_remote->ToString().c_str());
  }
  std::printf("\n");
  return 0;
}
