// View maintenance (application 3 in Section 2): given a view definition
// and an update, decide from the definitions alone whether the
// materialized view can change (Tompa–Blakeley-style irrelevant updates).
//
// Build & run:  ./build/examples/view_maintenance_demo

#include <cstdio>

#include "datalog/parser.h"
#include "eval/engine.h"
#include "manager/view_maint.h"

using namespace ccpi;  // NOLINT: example brevity

int main() {
  // highpaid(E) = employees with salary above 100.
  Program view = *ParseProgram("highpaid(E) :- emp(E,D,S) & S > 100");
  view.goal = "highpaid";

  Database db;
  (void)db.Insert("emp", {V("ann"), V("cs"), V(150)});
  (void)db.Insert("emp", {V("bob"), V("ee"), V(90)});

  Relation materialized = *EvaluateGoal(view, db);
  std::printf("materialized view (%zu rows):\n%s\n", materialized.size(),
              materialized.ToString("highpaid").c_str());

  struct Case {
    const char* label;
    Update update;
  };
  const Case cases[] = {
      {"insert emp(carol, cs, 80)",
       Update::Insert("emp", {V("carol"), V("cs"), V(80)})},
      {"insert emp(dave, cs, 200)",
       Update::Insert("emp", {V("dave"), V("cs"), V(200)})},
      {"delete emp(bob, ee, 90)",
       Update::Delete("emp", {V("bob"), V("ee"), V(90)})},
      {"delete emp(ann, cs, 150)",
       Update::Delete("emp", {V("ann"), V("cs"), V(150)})},
      {"insert dept(toys)", Update::Insert("dept", {V("toys")})},
  };
  for (const Case& c : cases) {
    auto verdict = IrrelevantUpdate(view, c.update);
    auto actually = ViewChanges(view, c.update, db);
    std::printf("%-28s irrelevant(decided data-free)=%-7s "
                "view-actually-changes=%s\n",
                c.label,
                verdict.ok() && *verdict == Outcome::kHolds ? "yes" : "maybe",
                actually.ok() && *actually ? "yes" : "no");
  }
  std::printf(
      "\n('maybe' + 'no' cases are where only the data can tell; 'yes' "
      "verdicts skip the refresh entirely)\n");
  return 0;
}
