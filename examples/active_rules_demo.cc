// Active rules (application 2 in Section 2): rules "if C holds, perform A"
// are constraints panic :- C whose derivation fires the action. Unlike
// integrity constraints, the engine may NOT assume conditions held (or
// failed) before an update, so only update-irrelevance reasoning applies.
//
// Build & run:  ./build/examples/active_rules_demo

#include <cstdio>

#include "datalog/parser.h"
#include "manager/active_rules.h"

using namespace ccpi;  // NOLINT: example brevity

int main() {
  Database db;
  ActiveRuleEngine engine(&db);

  // Rule 1: flag over-budget projects.
  (void)engine.AddRule(
      "overbudget", *ParseProgram("panic :- spend(P,X) & budget(P,B) & X > B"),
      [](Database* d) {
        std::printf("  -> ACTION: freeze spending reviews\n");
        (void)d->Insert("frozen", {V(1)});
      });
  // Rule 2: escalate when a critical project is frozen.
  (void)engine.AddRule(
      "escalate", *ParseProgram("panic :- frozen(X) & critical(P)"),
      [](Database*) { std::printf("  -> ACTION: page the director\n"); });

  (void)db.Insert("budget", {V("apollo"), V(100)});
  (void)db.Insert("critical", {V("apollo")});

  auto report = [](const char* what,
                   const ActiveRuleEngine::ProcessResult& r) {
    std::printf("%s: %zu rules skipped as irrelevant, %zu re-evaluated, "
                "%zu fired\n",
                what, r.skipped_irrelevant.size(), r.evaluated.size(),
                r.fired.size());
  };

  std::printf("spend(apollo, 50):\n");
  auto r1 = engine.ProcessUpdate(Update::Insert("spend", {V("apollo"), V(50)}));
  report("  result", *r1);

  std::printf("spend(apollo, 150):\n");
  auto r2 =
      engine.ProcessUpdate(Update::Insert("spend", {V("apollo"), V(150)}));
  report("  result", *r2);

  // The action inserted frozen(1); feed that cascade back in, as an active
  // rule executor would.
  std::printf("cascade frozen(1):\n");
  auto r3 = engine.ProcessUpdate(Update::Insert("frozen", {V(1)}));
  report("  result", *r3);
  return 0;
}
