// A narrated tour of the paper, section by section, with the text's own
// examples executed live. Run it next to the PDF.
//
// Build & run:  ./build/examples/paper_walkthrough

#include <cstdio>

#include "containment/cqc.h"
#include "containment/klug.h"
#include "core/cqc_form.h"
#include "core/icq_compiler.h"
#include "core/local_test.h"
#include "core/ra_local_test.h"
#include "core/reduction.h"
#include "datalog/language_class.h"
#include "datalog/parser.h"
#include "eval/engine.h"
#include "subsumption/subsumption.h"
#include "updates/independence.h"
#include "updates/preservation.h"
#include "updates/rewrite.h"

using namespace ccpi;  // NOLINT: example brevity

namespace {

void Section2() {
  std::printf("== Section 2: constraints are queries deriving panic ==\n\n");
  const char* examples[] = {
      "panic :- emp(E,sales) & emp(E,accounting)",
      "panic :- emp(E,D,S) & not dept(D) & S < 100",
      "panic :- emp(E,D,S) & salRange(D,Low,High) & S < Low\n"
      "panic :- emp(E,D,S) & salRange(D,Low,High) & S > High",
      "panic :- boss(E,E)\n"
      "boss(E,M) :- emp(E,D,S) & manager(D,M)\n"
      "boss(E,F) :- boss(E,G) & boss(G,F)",
  };
  int n = 1;
  for (const char* text : examples) {
    Program p = *ParseProgram(text);
    std::printf("Example 2.%d is in class %s:\n%s\n", n++,
                SyntacticClass(p).ToString().c_str(), p.ToString().c_str());
  }
}

void Section3() {
  std::printf("== Section 3: subsumption = containment (Thm 3.1) ==\n\n");
  Program tight = *ParseProgram("panic :- emp(E,D,S) & S > 150");
  Program loose = *ParseProgram("panic :- emp(E,D,S) & S > 100");
  auto d = Subsumes(tight, {loose});
  std::printf("cap-150 never needs checking next to cap-100: %s (%s)\n\n",
              OutcomeToString(d->outcome), d->method.c_str());
}

void Section4() {
  std::printf("== Section 4: using the update (Example 4.1) ==\n\n");
  Program c1 = *ParseProgram("panic :- emp(E,D,S) & not dept(D)");
  Update u = Update::Insert("dept", {V("toy")});
  Program c3 = *RewriteAfterInsert(c1, u);
  std::printf("C1 rewritten for '+dept(toy)' (C3):\n%s", c3.ToString().c_str());
  auto ind = HoldsAfterUpdate(c1, u, {});
  std::printf("C3 contained in C1: inserting a department cannot violate "
              "referential integrity -> %s\n\n", OutcomeToString(ind->outcome));

  std::printf("Figs 4.1/4.2, computed:\n\n%s\n%s\n",
              RenderPreservationTable(*ComputeInsertionPreservation(),
                                      "Fig 4.1 (insertion)").c_str(),
              RenderPreservationTable(*ComputeDeletionPreservation(),
                                      "Fig 4.2 (deletion)").c_str());
}

void Section5() {
  std::printf("== Section 5: using local data ==\n\n");
  std::printf("Example 5.1 (Ullman Ex 14.7): both mappings needed.\n");
  CQ c1 = RuleToCQ(*ParseRule("panic :- r(U,V) & r(S,T) & U = T & V = S"));
  CQ c2 = RuleToCQ(*ParseRule("panic :- r(U,V) & U <= V"));
  std::printf("  mappings: %zu, contained: %s, klug agrees: %s\n\n",
              *CountMappings(c1, {c2}),
              *CqcContained(c1, c2) ? "yes" : "no",
              *KlugContained(c1, c2) ? "yes" : "no");

  std::printf("Example 5.3 (forbidden intervals):\n");
  Cqc c = *MakeCqc(*ParseRule("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y"),
                   "l");
  std::printf("  RED((3,6))  = %s\n", Reduce(c, {V(3), V(6)}).ToString().c_str());
  std::printf("  RED((5,10)) = %s\n", Reduce(c, {V(5), V(10)}).ToString().c_str());
  std::printf("  RED((4,8))  = %s\n", Reduce(c, {V(4), V(8)}).ToString().c_str());
  Relation local(2);
  local.Insert({V(3), V(6)});
  local.Insert({V(5), V(10)});
  auto t52 = CompleteLocalTestOnInsert(c, {V(4), V(8)}, local);
  std::printf("  Thm 5.2 complete local test for +(4,8): %s\n\n",
              OutcomeToString(t52->outcome));

  std::printf("Example 5.4 (Thm 5.3, arithmetic-free):\n");
  Rule ex54 = *ParseRule("panic :- l(X,Y,Y) & r(Y,Z,X)");
  auto abc = CompileRaLocalTest(ex54, "l", {V("a"), V("b"), V("c")});
  std::printf("  insert (a,b,c): %s\n",
              abc->trivially_holds ? "test is 'true' (no unification)"
                                   : "needs evaluation");
  auto abb = CompileRaLocalTest(ex54, "l", {V("a"), V("b"), V("b")});
  std::printf("  insert (a,b,b): test is nonempty( %s )\n\n",
              abb->expr->ToString().c_str());
}

void Section6() {
  std::printf("== Section 6: Fig 6.1, recursive interval programs ==\n\n");
  Rule rule = *ParseRule("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y");
  auto comp = *CompileIcq(rule, "l");
  std::printf("compiled %zu datalog rules; e.g.\n",
              comp.interval_program.rules.size());
  for (size_t i = 0; i < 3 && i < comp.interval_program.rules.size(); ++i) {
    std::printf("  %s\n", comp.interval_program.rules[i].ToString().c_str());
  }
  Database db;
  (void)db.Insert("l", {V(3), V(6)});
  (void)db.Insert("l", {V(5), V(10)});
  auto ok = IcqLocalTestOnInsert(comp, db, {V(4), V(8)});
  std::printf("\nok(4,8) derivable over L = {(3,6),(5,10)}: %s\n",
              OutcomeToString(*ok));
  auto no = IcqLocalTestOnInsert(comp, db, {V(4), V(12)});
  std::printf("ok(4,12): %s (needs the remote site)\n\n",
              OutcomeToString(*no));
}

}  // namespace

int main() {
  std::printf("Constraint Checking with Partial Information — PODS 1994\n"
              "a live walkthrough of the paper's examples\n\n");
  Section2();
  Section3();
  Section4();
  Section5();
  Section6();
  std::printf("(every claim printed above is also a unit test; see "
              "tests/paper_examples_test.cc)\n");
  return 0;
}
