// Salary audit: the employee-database constraints of Section 2 (Examples
// 2.1–2.3) managed together. Demonstrates constraint registration with
// subsumption, and a mixed insert/delete stream resolved tier by tier.
//
// Build & run:  ./build/examples/salary_audit

#include <cstdio>

#include "datalog/parser.h"
#include "manager/constraint_manager.h"

using namespace ccpi;  // NOLINT: example brevity

int main() {
  ConstraintManager mgr({"emp", "dept"}, CostModel{});

  // Example 2.1: no employee in both sales and accounting (modeled on the
  // binary assign(E,D) relation so the 3-ary emp keeps salaries).
  (void)mgr.AddConstraint(
      "no-dual", *ParseProgram("panic :- assign(E,sales) & "
                               "assign(E,accounting)"));
  // Example 2.2-style: salaries are positive.
  (void)mgr.AddConstraint("positive-salary",
                          *ParseProgram("panic :- emp(E,D,S) & S < 0"));
  // A cap of 200...
  (void)mgr.AddConstraint("cap-200",
                          *ParseProgram("panic :- emp(E,D,S) & S > 200"));
  // ...makes a cap of 500 redundant: registration detects the subsumption.
  auto redundant = mgr.AddConstraint(
      "cap-500", *ParseProgram("panic :- emp(E,D,S) & S > 500"));
  std::printf("cap-500 registered as redundant: %s\n\n",
              redundant.ok() && *redundant ? "yes" : "no");

  const Update stream[] = {
      Update::Insert("emp", {V("ann"), V("cs"), V(120)}),
      Update::Insert("emp", {V("bob"), V("ee"), V(80)}),
      Update::Insert("emp", {V("carol"), V("cs"), V(250)}),  // breaks cap-200
      Update::Insert("assign", {V("ann"), V("sales")}),
      Update::Insert("assign", {V("ann"), V("accounting")}),  // breaks no-dual
      Update::Delete("emp", {V("bob"), V("ee"), V(80)}),
      Update::Insert("dept", {V("cs")}),
  };
  for (const Update& u : stream) {
    auto reports = mgr.ApplyUpdate(u);
    if (!reports.ok()) {
      std::printf("error: %s\n", reports.status().ToString().c_str());
      return 1;
    }
    std::printf("%-40s", u.ToString().c_str());
    bool rejected = false;
    for (const CheckReport& r : *reports) {
      if (r.outcome == Outcome::kViolated) {
        std::printf(" REJECTED by %s (at %s tier)", r.constraint.c_str(),
                    TierToString(r.tier));
        rejected = true;
      }
    }
    if (!rejected) std::printf(" ok");
    std::printf("\n");
  }

  std::printf("\nresolution tiers:\n");
  for (const auto& [tier, count] : mgr.stats().resolved_by) {
    std::printf("  %-14s %zu\n", TierToString(tier), count);
  }
  std::printf("violations caught: %zu\n", mgr.stats().violations);
  std::printf("final database:\n%s", mgr.site().db().ToString().c_str());
  return 0;
}
