// Distributed inventory: the paper's motivating scenario. A warehouse site
// owns the `reserved` relation (local); the orders database (`order`) lives
// at headquarters (remote, expensive to read). The global constraint says
// no order quantity may fall inside a reserved range for its product.
//
// The demo runs a stream of reservations through the ConstraintManager and
// shows how many updates each tier resolves and how much simulated access
// cost the local tests save compared to always re-checking remotely.
//
// Build & run:  ./build/examples/distributed_inventory

#include <cstdio>

#include "datalog/parser.h"
#include "manager/constraint_manager.h"
#include "util/rng.h"

using namespace ccpi;  // NOLINT: example brevity

int main() {
  CostModel costs;  // remote round trip = 10, remote tuple = 0.1, local 1e-3
  ConstraintManager mgr({"reserved"}, costs);
  (void)mgr.AddConstraint(
      "no-reserved-order",
      *ParseProgram("panic :- reserved(P,Lo,Hi) & order(P,Q) & "
                    "Lo <= Q & Q <= Hi"));

  // Remote orders (populated by the other site) all have quantities in the
  // 500..1000 band.
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    (void)mgr.site().db().Insert(
        "order", {V("prod" + std::to_string(rng.Below(5))),
                  V(rng.Range(500, 1000))});
  }

  // Each product first reserves the whole low band 0..400 — those initial
  // wide reservations genuinely need the remote check. Afterwards the
  // warehouse issues many narrower reservations inside the already-reserved
  // band; the complete local test proves them safe without any remote
  // access. A few straying into the order band trigger full checks (and
  // rejections).
  int applied = 0;
  int rejected = 0;
  auto reserve = [&](const std::string& product, int64_t lo, int64_t hi) {
    auto reports =
        mgr.ApplyUpdate(Update::Insert("reserved", {V(product), V(lo), V(hi)}));
    if (!reports.ok()) {
      std::printf("error: %s\n", reports.status().ToString().c_str());
      std::exit(1);
    }
    bool violated = false;
    for (const CheckReport& r : *reports) {
      violated = violated || r.outcome == Outcome::kViolated;
    }
    (violated ? rejected : applied)++;
  };
  for (int p = 0; p < 5; ++p) {
    reserve("prod" + std::to_string(p), 0, 400);
  }
  for (int i = 0; i < 95; ++i) {
    std::string product = "prod" + std::to_string(rng.Below(5));
    if (rng.Chance(9, 10)) {
      int64_t lo = rng.Range(0, 300);
      reserve(product, lo, lo + rng.Range(0, 100));  // inside the band
    } else {
      int64_t lo = rng.Range(400, 900);
      reserve(product, lo, lo + rng.Range(0, 100));  // risky
    }
  }

  std::printf("reservations applied: %d, rejected (order in range): %d\n\n",
              applied, rejected);
  std::printf("resolution tiers across the stream:\n");
  for (const auto& [tier, count] : mgr.stats().resolved_by) {
    std::printf("  %-14s %zu\n", TierToString(tier), count);
  }
  const AccessStats& access = mgr.stats().access;
  std::printf(
      "\naccess: %zu local tuples, %zu remote tuples in %zu round trips\n",
      access.local_tuples, access.remote_tuples, access.remote_trips);
  std::printf("simulated cost: %.2f (all-remote baseline would pay the\n"
              "remote price for every one of the %d checks)\n",
              access.Cost(costs), applied + rejected);
  return 0;
}
