#ifndef CCPI_UTIL_BUDGET_H_
#define CCPI_UTIL_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "util/status.h"

namespace ccpi {

/// Cooperative cancellation flag, shared between the party that decides to
/// abandon some work and the code doing it. Thread-safe; Cancel is sticky
/// until Reset. A BudgetScope built over a token reports
/// kResourceExhausted from every checkpoint once the token is cancelled,
/// so in-flight evaluations unwind at their next budget check instead of
/// being torn down.
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  void Reset() { cancelled_.store(false, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Resource envelope for one unit of checking work (a whole update episode
/// or a single tier-3 evaluation). Every field uses 0 = unlimited, so a
/// default-constructed budget imposes nothing.
struct ExecutionBudget {
  /// Wall-clock deadline (steady_clock) measured from BudgetScope::Start.
  uint64_t deadline_ms = 0;
  /// Cap on fixpoint rounds across the evaluation (all strata together).
  uint64_t max_fixpoint_rounds = 0;
  /// Cap on tuples derived by the evaluation.
  uint64_t max_derived_tuples = 0;
  /// Cap on physical remote round trips (cache hits are free: the cache
  /// genuinely stretches this budget, see docs/budgets.md).
  uint64_t max_remote_trips = 0;

  bool armed() const {
    return deadline_ms != 0 || max_fixpoint_rounds != 0 ||
           max_derived_tuples != 0 || max_remote_trips != 0;
  }
};

/// An armed ExecutionBudget over a concrete start instant, checked
/// cooperatively at evaluation checkpoints. A default-constructed scope is
/// *inert*: every checkpoint is a single branch — no clock read, no
/// atomic, no allocation — which is how unbudgeted runs stay bit-identical
/// to the pre-budget code (callers pass a null scope pointer instead of an
/// inert scope wherever possible, making the fast path a null check).
///
/// Checkpoints are const and internally atomic so one scope may be shared
/// by several checker threads (the manager's per-episode scope): the trip
/// and tuple counters then accumulate in global arrival order, which is
/// why thread-count-deterministic budgeting splits caps into per-item
/// child scopes (Split) instead of sharing one counter.
class BudgetScope {
 public:
  BudgetScope() = default;  // inert: active() false, every check OK

  BudgetScope(const BudgetScope& other) { *this = other; }
  BudgetScope& operator=(const BudgetScope& other);

  /// Arms `budget` starting now. `cancel` (optional, not owned, must
  /// outlive the scope) makes every checkpoint honor the token.
  static BudgetScope Start(const ExecutionBudget& budget,
                           const CancellationToken* cancel = nullptr);

  /// Child scope for one of `ways` parallel work items: each nonzero cap
  /// of this scope is split evenly (becoming max(cap / ways, 1)), the
  /// absolute deadline and cancellation token are shared, and `extra`'s
  /// own limits are folded in (tightest wins; extra.deadline_ms counts
  /// from now). The result depends only on (this budget, ways, extra),
  /// never on sibling progress, so a parallel fan-out sheds identically
  /// at any thread count. Works on an inert parent too: the child is then
  /// armed by `extra` alone (or inert if extra is empty).
  BudgetScope Split(size_t ways, const ExecutionBudget& extra = {}) const;

  bool active() const { return active_; }
  const ExecutionBudget& budget() const { return budget_; }

  /// Checkpoint at the start of a fixpoint round: counts the round
  /// against max_fixpoint_rounds, then checks deadline + cancellation.
  Status OnFixpointRound() const;
  /// Checkpoint after a batch of `n` derived tuples.
  Status OnDerivedTuples(uint64_t n) const;
  /// Checkpoint before paying one physical remote round trip: a non-OK
  /// return means the trip must NOT be paid (deadline-aware refusal).
  Status OnRemoteTrip() const;
  /// Deadline + cancellation only (per RA node, per EDB enumeration).
  Status Check() const;

  bool has_deadline() const { return active_ && budget_.deadline_ms != 0; }
  /// Milliseconds left before the deadline (0 once expired; only
  /// meaningful when has_deadline()).
  uint64_t remaining_ms() const;
  /// Checkpoints evaluated so far (diagnostics; inert scopes count none).
  uint64_t checkpoints() const {
    return checks_.load(std::memory_order_relaxed);
  }

 private:
  Status CheckDeadline() const;
  static Status Exhausted(const char* what);

  bool active_ = false;
  ExecutionBudget budget_;
  std::chrono::steady_clock::time_point deadline_{};
  const CancellationToken* cancel_ = nullptr;
  mutable std::atomic<uint64_t> rounds_{0};
  mutable std::atomic<uint64_t> tuples_{0};
  mutable std::atomic<uint64_t> trips_{0};
  mutable std::atomic<uint64_t> checks_{0};
};

}  // namespace ccpi

#endif  // CCPI_UTIL_BUDGET_H_
