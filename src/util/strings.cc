#include "util/strings.h"

#include <cctype>

namespace ccpi {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool IsVariableName(std::string_view s) {
  return !s.empty() && std::isupper(static_cast<unsigned char>(s[0]));
}

bool IsIdentifier(std::string_view s) {
  if (s.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_') {
    return false;
  }
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

}  // namespace ccpi
