#include "util/strings.h"

#include <cctype>
#include <cstdint>
#include <cstdlib>

namespace ccpi {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool IsVariableName(std::string_view s) {
  return !s.empty() && std::isupper(static_cast<unsigned char>(s[0]));
}

bool IsIdentifier(std::string_view s) {
  if (s.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_') {
    return false;
  }
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;  // would overflow
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool ParseProbability(std::string_view s, double* out) {
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  if (!(value >= 0.0 && value <= 1.0)) return false;  // rejects NaN too
  *out = value;
  return true;
}

}  // namespace ccpi
