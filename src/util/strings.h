#ifndef CCPI_UTIL_STRINGS_H_
#define CCPI_UTIL_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ccpi {

/// Joins the elements of `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with an upper-case ASCII letter. Following the paper's
/// Prolog convention, such identifiers denote variables.
bool IsVariableName(std::string_view s);

/// True if `s` is a lexically valid identifier ([A-Za-z_][A-Za-z0-9_]*).
bool IsIdentifier(std::string_view s);

/// Strict base-10 unsigned parse: the whole of `s` must be digits (an
/// optional leading '+' is rejected too — flag values are never signed)
/// and fit in uint64_t. Unlike strtoull, "abc", "", "-2", "12x", and
/// overflowing values all fail instead of yielding 0 or wrapping.
bool ParseUint64(std::string_view s, uint64_t* out);

/// Strict double parse of a probability: the whole of `s` must be a
/// number in [0, 1].
bool ParseProbability(std::string_view s, double* out);

}  // namespace ccpi

#endif  // CCPI_UTIL_STRINGS_H_
