#ifndef CCPI_UTIL_STRINGS_H_
#define CCPI_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace ccpi {

/// Joins the elements of `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with an upper-case ASCII letter. Following the paper's
/// Prolog convention, such identifiers denote variables.
bool IsVariableName(std::string_view s);

/// True if `s` is a lexically valid identifier ([A-Za-z_][A-Za-z0-9_]*).
bool IsIdentifier(std::string_view s);

}  // namespace ccpi

#endif  // CCPI_UTIL_STRINGS_H_
