#include "util/status.h"

namespace ccpi {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
  }
  return "Unknown";
}

bool IsRetriable(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kDeadlineExceeded;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace ccpi
