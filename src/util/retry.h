#ifndef CCPI_UTIL_RETRY_H_
#define CCPI_UTIL_RETRY_H_

#include <cstdint>
#include <functional>

#include "util/rng.h"
#include "util/status.h"

namespace ccpi {

/// Exponential-backoff retry policy for fallible remote operations.
///
/// Time is simulated: backoff is measured in abstract units (the same
/// units CostModel prices a round trip in), never in wall-clock sleeps, so
/// tests and benchmarks stay deterministic and fast. An "episode" is one
/// logical operation (e.g. one tier-3 constraint evaluation) together with
/// all of its retries.
struct RetryPolicy {
  /// Total attempts per episode, including the first (1 = no retries).
  size_t max_attempts = 4;
  /// Backoff before the first retry, in simulated units.
  uint64_t initial_backoff = 1;
  /// Cap on a single backoff interval (exponential doubling stops here).
  uint64_t max_backoff = 64;
  /// Per-episode budget of total simulated backoff; once spent, the
  /// episode fails even if attempts remain.
  ///
  /// 0 means *unlimited*, not "no budget to spend": with episode_budget == 0
  /// an episode may retry up to max_attempts times no matter how much
  /// simulated backoff accumulates. A retry is skipped only when the budget
  /// is nonzero and already-spent backoff plus the next wait would exceed
  /// it — so a tiny nonzero budget (smaller than initial_backoff) permits
  /// the first attempt but never a retry. Covered by
  /// RetryTest.ZeroEpisodeBudgetMeansUnlimited in tests/util_test.cc.
  uint64_t episode_budget = 256;
  /// Fraction of each backoff interval randomized: the actual wait is
  /// drawn uniformly from [b*(1-jitter), b]. 0 disables jitter.
  double jitter = 0.5;
};

/// What one retried episode did, for statistics and reports.
struct RetryOutcome {
  Status status;               // final status of the episode
  size_t attempts = 0;         // operations actually issued (>= 1)
  uint64_t backoff_spent = 0;  // total simulated units waited
};

/// Runs `op` until it succeeds, fails with a non-retriable code, or the
/// policy is exhausted (attempts or budget). Only kUnavailable and
/// kDeadlineExceeded are retried; any other error is returned immediately.
/// `rng` drives jitter and must outlive the call; pass the same seed for a
/// reproducible schedule.
RetryOutcome RunWithRetry(const RetryPolicy& policy, Rng* rng,
                          const std::function<Status()>& op);

}  // namespace ccpi

#endif  // CCPI_UTIL_RETRY_H_
