#include "util/circuit_breaker.h"

namespace ccpi {

const char* CircuitStateToString(CircuitState state) {
  switch (state) {
    case CircuitState::kClosed:
      return "closed";
    case CircuitState::kOpen:
      return "open";
    case CircuitState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

bool CircuitBreaker::AllowRequest() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case CircuitState::kClosed:
      return true;
    case CircuitState::kHalfOpen:
      // Exactly one probe in flight at a time: a second caller is refused
      // until the first reports its verdict or cancels.
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
    case CircuitState::kOpen:
      if (now_ - opened_at_ >= config_.cooldown_ticks) {
        state_ = CircuitState::kHalfOpen;
        probe_successes_ = 0;
        probe_in_flight_ = true;
        return true;
      }
      return false;
  }
  return true;
}

bool CircuitBreaker::WouldAllow() const {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case CircuitState::kClosed:
      return true;
    case CircuitState::kHalfOpen:
      return !probe_in_flight_;
    case CircuitState::kOpen:
      return now_ - opened_at_ >= config_.cooldown_ticks;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == CircuitState::kHalfOpen) {
    probe_in_flight_ = false;
    if (++probe_successes_ >= config_.half_open_successes) {
      state_ = CircuitState::kClosed;
      consecutive_failures_ = 0;
    }
    return;
  }
  consecutive_failures_ = 0;
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == CircuitState::kHalfOpen) {
    // A failed probe re-opens immediately and restarts the cooldown.
    state_ = CircuitState::kOpen;
    opened_at_ = now_;
    ++times_opened_;
    consecutive_failures_ = 0;
    probe_in_flight_ = false;
    return;
  }
  if (state_ == CircuitState::kClosed &&
      ++consecutive_failures_ >= config_.failure_threshold) {
    state_ = CircuitState::kOpen;
    opened_at_ = now_;
    ++times_opened_;
    consecutive_failures_ = 0;
  }
}

void CircuitBreaker::CancelProbe() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == CircuitState::kHalfOpen) probe_in_flight_ = false;
}

}  // namespace ccpi
