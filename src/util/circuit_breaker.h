#ifndef CCPI_UTIL_CIRCUIT_BREAKER_H_
#define CCPI_UTIL_CIRCUIT_BREAKER_H_

#include <cstddef>
#include <cstdint>
#include <mutex>

namespace ccpi {

/// State of a circuit breaker guarding a remote dependency.
enum class CircuitState {
  kClosed,    // healthy: requests flow
  kOpen,      // tripped: requests fail fast without touching the remote
  kHalfOpen,  // cooling down: a limited probe is allowed through
};

const char* CircuitStateToString(CircuitState state);

struct CircuitBreakerConfig {
  /// Consecutive failures that trip the breaker open.
  size_t failure_threshold = 3;
  /// Simulated ticks the breaker stays open before allowing a half-open
  /// probe (the caller advances time with Tick, typically once per update
  /// episode).
  uint64_t cooldown_ticks = 8;
  /// Consecutive probe successes needed to close again from half-open.
  size_t half_open_successes = 1;
};

/// Classic three-state circuit breaker over a simulated clock.
///
/// Protocol: call AllowRequest() before each remote episode; if it returns
/// false, fail fast (the manager degrades to a deferred verdict). After an
/// allowed episode, report RecordSuccess() or RecordFailure() — or, when
/// the episode was abandoned before it could exercise the remote side
/// (budget spent, hard error), CancelProbe(). Advance the clock with
/// Tick() once per episode so an open breaker eventually half-opens. A
/// failed half-open probe re-opens and restarts the cooldown.
///
/// Half-open admits exactly one probe at a time: the first AllowRequest()
/// claims the probe slot and every further caller is refused until the
/// probe's verdict (RecordSuccess / RecordFailure) or cancellation
/// releases it. Use WouldAllow() for pure gating — "is remote traffic
/// possible right now?" — without claiming the slot or transitioning
/// state.
///
/// Thread-safe: every transition runs under an internal mutex, so
/// concurrent tier-3 episodes may share one breaker. Note that *which*
/// episode an open/half-open breaker admits as its probe still depends on
/// arrival order; the manager serializes tier-3 whenever the breaker is
/// not plainly closed to keep verdicts deterministic (see
/// docs/concurrency.md).
class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerConfig config = {})
      : config_(config) {}

  /// Whether a request may be issued now. May transition kOpen -> kHalfOpen
  /// when the cooldown has elapsed. In half-open state this *claims* the
  /// single probe slot; the caller must balance every true return with
  /// exactly one RecordSuccess / RecordFailure / CancelProbe.
  bool AllowRequest();

  /// Non-mutating gate: whether AllowRequest() would currently return
  /// true. Never transitions state and never claims the probe slot, so it
  /// is safe to call speculatively (the manager's drain loops gate on it).
  bool WouldAllow() const;

  void RecordSuccess();
  void RecordFailure();

  /// Releases a claimed half-open probe slot without recording a verdict:
  /// the admitted episode never exercised the remote side (its budget was
  /// already spent, or it died on a non-remote error), so the site earned
  /// neither credit nor blame. No-op outside half-open.
  void CancelProbe();

  /// Advances the simulated clock.
  void Tick(uint64_t ticks = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    now_ += ticks;
  }

  CircuitState state() const {
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
  }
  /// Times the breaker transitioned closed/half-open -> open.
  size_t times_opened() const {
    std::lock_guard<std::mutex> lock(mu_);
    return times_opened_;
  }

 private:
  mutable std::mutex mu_;
  CircuitBreakerConfig config_;
  CircuitState state_ = CircuitState::kClosed;
  size_t consecutive_failures_ = 0;
  size_t probe_successes_ = 0;
  /// Whether the half-open probe slot is currently claimed.
  bool probe_in_flight_ = false;
  uint64_t now_ = 0;
  uint64_t opened_at_ = 0;
  size_t times_opened_ = 0;
};

}  // namespace ccpi

#endif  // CCPI_UTIL_CIRCUIT_BREAKER_H_
