#ifndef CCPI_UTIL_RNG_H_
#define CCPI_UTIL_RNG_H_

#include <cstdint>

#include "util/check.h"

namespace ccpi {

/// Deterministic 64-bit PRNG (splitmix64). Used by the property-test and
/// benchmark workload generators so every run is reproducible from a seed;
/// never use std::rand or a nondeterministically seeded engine in tests.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound). `bound` must be positive.
  uint64_t Below(uint64_t bound) {
    CCPI_CHECK(bound > 0);
    return Next() % bound;
  }

  /// Uniform value in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    CCPI_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli draw: true with probability `num`/`den`.
  bool Chance(uint64_t num, uint64_t den) { return Below(den) < num; }

 private:
  uint64_t state_;
};

}  // namespace ccpi

#endif  // CCPI_UTIL_RNG_H_
