#include "util/thread_pool.h"

#include <atomic>
#include <exception>

namespace ccpi {

/// One ParallelFor invocation: a shared claim counter plus per-index
/// statuses. Indexes are claimed atomically, so each runs exactly once;
/// statuses land in their own slot, so no two threads write the same one.
/// The function is copied in, so a straggling worker that wakes after the
/// caller returned never touches caller stack.
struct ThreadPool::Batch {
  Batch(size_t n, std::function<Status(size_t)> f)
      : size(n), fn(std::move(f)), statuses(n) {}

  const size_t size;
  const std::function<Status(size_t)> fn;
  std::vector<Status> statuses;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
};

ThreadPool::ThreadPool(size_t threads) {
  size_t workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
  // No workers (threads <= 1): Submit ran everything inline, but drain
  // defensively in case shutdown raced a queued task in a 0-worker pool.
  while (!tasks_.empty()) {
    RunTask(tasks_.front());
    tasks_.pop_front();
  }
}

void ThreadPool::RunTask(const std::function<void()>& task) {
  try {
    task();
  } catch (...) {
    // Tasks communicate through their own captured state; an escaped
    // exception has nowhere sound to surface, so it is dropped rather
    // than taking the worker (and the process) down.
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    // Sequential configuration: run inline, identical to a plain call.
    RunTask(task);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::Drain(Batch* batch) {
  for (;;) {
    size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch->size) return;
    Status st;
    try {
      st = batch->fn(i);
    } catch (const std::exception& e) {
      st = Status::Internal(
          std::string("uncaught exception in parallel task: ") + e.what());
    } catch (...) {
      st = Status::Internal("uncaught non-std exception in parallel task");
    }
    batch->statuses[i] = std::move(st);
    batch->done.fetch_add(1, std::memory_order_release);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [&]() {
        return shutdown_ || (batch_ != nullptr && generation_ != seen) ||
               !tasks_.empty();
      });
      // Batches first: a blocking ParallelFor caller is waiting on them,
      // while Submit callers are not waiting on anyone.
      if (batch_ == nullptr || generation_ == seen) {
        if (!tasks_.empty()) {
          std::function<void()> task = std::move(tasks_.front());
          tasks_.pop_front();
          lock.unlock();
          RunTask(task);
          continue;
        }
        // Shutdown only once the task queue is drained, so every
        // submitted task runs exactly once.
        if (shutdown_) return;
        continue;
      }
      batch = batch_;
      seen = generation_;
    }
    Drain(batch.get());
    if (batch->done.load(std::memory_order_acquire) >= batch->size) {
      // This thread finished the batch's last task: wake the caller. The
      // (empty) critical section orders the notify against the caller
      // entering its wait, so the wakeup cannot be lost.
      std::lock_guard<std::mutex> lock(mu_);
      batch_done_.notify_all();
    }
  }
}

Status ThreadPool::ParallelFor(size_t n,
                               const std::function<Status(size_t)>& fn) {
  if (n == 0) return Status::OK();
  if (workers_.empty() || n == 1) {
    // Sequential configuration: run inline, identical to a plain loop.
    for (size_t i = 0; i < n; ++i) {
      CCPI_RETURN_IF_ERROR(fn(i));
    }
    return Status::OK();
  }

  auto batch = std::make_shared<Batch>(n, fn);
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = batch;
    ++generation_;
  }
  work_ready_.notify_all();
  Drain(batch.get());  // the calling thread is a lane too
  {
    std::unique_lock<std::mutex> lock(mu_);
    batch_done_.wait(lock, [&]() {
      return batch->done.load(std::memory_order_acquire) >= batch->size;
    });
    batch_ = nullptr;
  }

  for (size_t i = 0; i < n; ++i) {
    if (!batch->statuses[i].ok()) return batch->statuses[i];
  }
  return Status::OK();
}

}  // namespace ccpi
