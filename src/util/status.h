#ifndef CCPI_UTIL_STATUS_H_
#define CCPI_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/check.h"

namespace ccpi {

/// Machine-readable category of an error. Mirrors the coarse error taxonomy
/// used by Arrow/RocksDB-style database libraries: the category tells the
/// caller what *kind* of recovery is possible, the message tells a human what
/// happened.
enum class StatusCode {
  kOk = 0,
  /// Input violated a documented precondition (malformed syntax, unsafe
  /// rule, arity mismatch, ...).
  kInvalidArgument,
  /// The request is meaningful but outside the decidable / implemented
  /// fragment (e.g., subsumption between recursive programs, which the paper
  /// notes is undecidable per Shmueli [1987]).
  kUnsupported,
  /// An entity (predicate, relation, constraint) was not found.
  kNotFound,
  /// Internal invariant failure surfaced as a recoverable error.
  kInternal,
  /// A remote site (or other dependency) did not answer; the operation may
  /// succeed if retried later. The only code the retry layer retries.
  kUnavailable,
  /// The operation gave up waiting (simulated timeout). Retriable, like
  /// kUnavailable, but distinguished so fault statistics can separate slow
  /// links from dead ones.
  kDeadlineExceeded,
  /// The operation ran out of its execution budget (wall-clock deadline,
  /// fixpoint-round / derived-tuple / remote-trip cap, or cooperative
  /// cancellation — see util/budget.h). NOT retriable: retrying would spend
  /// the same exhausted envelope again. The manager sheds such checks to
  /// the deferred queue instead; see docs/budgets.md for how this differs
  /// from kUnavailable.
  kResourceExhausted,
};

/// True for the codes that signal a transient condition worth retrying
/// (kUnavailable, kDeadlineExceeded) rather than a caller mistake.
bool IsRetriable(StatusCode code);

/// Returns the canonical spelling of a code ("OK", "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail without a payload.
///
/// Cheap to copy in the OK case (no allocation). Follows the Google style
/// guidance of signalling recoverable errors by value rather than by
/// exception; every fallible public API in ccpi returns Status or Result<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value or an error. `Result<T>` is the payload-carrying counterpart of
/// Status; dereferencing a non-OK result aborts (programming error).
template <typename T>
class Result {
 public:
  /// Implicit from value and from Status so call sites can `return value;`
  /// or `return Status::InvalidArgument(...)`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                          // NOLINT(runtime/explicit)
      : value_(std::move(status)) {
    CCPI_CHECK(!std::get<Status>(value_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(value_);
  }

  const T& value() const& {
    CCPI_CHECK(ok());
    return std::get<T>(value_);
  }
  T& value() & {
    CCPI_CHECK(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    CCPI_CHECK(ok());
    return std::move(std::get<T>(value_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> value_;
};

/// Propagates a non-OK Status out of the enclosing function.
#define CCPI_RETURN_IF_ERROR(expr)          \
  do {                                      \
    ::ccpi::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (0)

/// Assigns the value of a Result expression or propagates its error.
#define CCPI_ASSIGN_OR_RETURN(lhs, expr)         \
  auto CCPI_CONCAT_(_res_, __LINE__) = (expr);   \
  if (!CCPI_CONCAT_(_res_, __LINE__).ok())       \
    return CCPI_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(CCPI_CONCAT_(_res_, __LINE__)).value()

#define CCPI_CONCAT_INNER_(a, b) a##b
#define CCPI_CONCAT_(a, b) CCPI_CONCAT_INNER_(a, b)

}  // namespace ccpi

#endif  // CCPI_UTIL_STATUS_H_
