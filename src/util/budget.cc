#include "util/budget.h"

#include <algorithm>
#include <string>

namespace ccpi {
namespace {

// Tightest combination of two caps where 0 means unlimited on either side.
uint64_t MinCap(uint64_t a, uint64_t b) {
  if (a == 0) return b;
  if (b == 0) return a;
  return std::min(a, b);
}

// Even split of a cap over `ways` work items; an armed cap never splits to
// zero (that would silently turn "tiny budget" into "unlimited").
uint64_t SplitCap(uint64_t cap, size_t ways) {
  if (cap == 0 || ways <= 1) return cap;
  return std::max<uint64_t>(cap / ways, 1);
}

}  // namespace

BudgetScope& BudgetScope::operator=(const BudgetScope& other) {
  active_ = other.active_;
  budget_ = other.budget_;
  deadline_ = other.deadline_;
  cancel_ = other.cancel_;
  rounds_.store(other.rounds_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  tuples_.store(other.tuples_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  trips_.store(other.trips_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  checks_.store(other.checks_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  return *this;
}

BudgetScope BudgetScope::Start(const ExecutionBudget& budget,
                               const CancellationToken* cancel) {
  BudgetScope scope;
  scope.budget_ = budget;
  scope.cancel_ = cancel;
  scope.active_ = budget.armed() || cancel != nullptr;
  if (budget.deadline_ms != 0) {
    scope.deadline_ = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(budget.deadline_ms);
  }
  return scope;
}

BudgetScope BudgetScope::Split(size_t ways,
                               const ExecutionBudget& extra) const {
  BudgetScope child;
  child.cancel_ = cancel_;
  child.budget_.max_fixpoint_rounds =
      MinCap(SplitCap(budget_.max_fixpoint_rounds, ways),
             extra.max_fixpoint_rounds);
  child.budget_.max_derived_tuples = MinCap(
      SplitCap(budget_.max_derived_tuples, ways), extra.max_derived_tuples);
  child.budget_.max_remote_trips = MinCap(
      SplitCap(budget_.max_remote_trips, ways), extra.max_remote_trips);
  // The parent deadline is an absolute instant shared by all children; an
  // extra deadline counts from now. Keep whichever fires first.
  child.budget_.deadline_ms = MinCap(budget_.deadline_ms, extra.deadline_ms);
  if (child.budget_.deadline_ms != 0) {
    auto from_extra = std::chrono::steady_clock::time_point::max();
    if (extra.deadline_ms != 0) {
      from_extra = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(extra.deadline_ms);
    }
    auto from_parent = budget_.deadline_ms != 0
                           ? deadline_
                           : std::chrono::steady_clock::time_point::max();
    child.deadline_ = std::min(from_parent, from_extra);
  }
  child.active_ = child.budget_.armed() || child.cancel_ != nullptr;
  return child;
}

Status BudgetScope::Exhausted(const char* what) {
  return Status::ResourceExhausted(std::string("execution budget exhausted: ") +
                                   what);
}

Status BudgetScope::CheckDeadline() const {
  if (cancel_ != nullptr && cancel_->cancelled()) {
    return Exhausted("cancelled");
  }
  if (budget_.deadline_ms != 0 &&
      std::chrono::steady_clock::now() >= deadline_) {
    return Exhausted("deadline");
  }
  return Status::OK();
}

Status BudgetScope::OnFixpointRound() const {
  if (!active_) return Status::OK();
  checks_.fetch_add(1, std::memory_order_relaxed);
  uint64_t rounds = rounds_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (budget_.max_fixpoint_rounds != 0 &&
      rounds > budget_.max_fixpoint_rounds) {
    return Exhausted("fixpoint-round cap");
  }
  return CheckDeadline();
}

Status BudgetScope::OnDerivedTuples(uint64_t n) const {
  if (!active_ || n == 0) return Status::OK();
  checks_.fetch_add(1, std::memory_order_relaxed);
  uint64_t tuples = tuples_.fetch_add(n, std::memory_order_relaxed) + n;
  if (budget_.max_derived_tuples != 0 &&
      tuples > budget_.max_derived_tuples) {
    return Exhausted("derived-tuple cap");
  }
  return CheckDeadline();
}

Status BudgetScope::OnRemoteTrip() const {
  if (!active_) return Status::OK();
  checks_.fetch_add(1, std::memory_order_relaxed);
  uint64_t trips = trips_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (budget_.max_remote_trips != 0 && trips > budget_.max_remote_trips) {
    return Exhausted("remote-trip cap");
  }
  return CheckDeadline();
}

Status BudgetScope::Check() const {
  if (!active_) return Status::OK();
  checks_.fetch_add(1, std::memory_order_relaxed);
  return CheckDeadline();
}

uint64_t BudgetScope::remaining_ms() const {
  if (!has_deadline()) return 0;
  auto now = std::chrono::steady_clock::now();
  if (now >= deadline_) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline_ - now)
          .count());
}

}  // namespace ccpi
