#ifndef CCPI_UTIL_CHECK_H_
#define CCPI_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Internal invariant-checking macros.
///
/// `CCPI_CHECK` is always on and aborts with a diagnostic when the condition
/// fails; it guards invariants whose violation would make continuing unsafe
/// (out-of-bounds access, broken normal forms). `CCPI_DCHECK` compiles away in
/// NDEBUG builds and guards conditions that are cheap to state but expensive
/// to re-derive for the reader. Neither macro is part of the public error
/// model: recoverable conditions use ccpi::Status / ccpi::Result instead.

#define CCPI_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "CCPI_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define CCPI_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define CCPI_DCHECK(cond) CCPI_CHECK(cond)
#endif

#endif  // CCPI_UTIL_CHECK_H_
