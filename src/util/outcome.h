#ifndef CCPI_UTIL_OUTCOME_H_
#define CCPI_UTIL_OUTCOME_H_

namespace ccpi {

/// The answer of a constraint-checking test (Section 2, "Correct and
/// Complete Tests"): tests respond "yes, the constraint continues to hold"
/// or "I don't know". The third outcome, "definitely violated", is only
/// possible when the constraint involves only information the test can see
/// (e.g. purely local constraints).
enum class Outcome {
  kHolds,     // the test proved the constraint still holds
  kUnknown,   // inconclusive: a state of the unseen data could violate it
  kViolated,  // provably violated using only the visible information
  kDeferred,  // undecidable right now: the remote information was
              // unreachable, so the verdict is postponed to a re-check
              // once the remote site answers again
};

inline const char* OutcomeToString(Outcome o) {
  switch (o) {
    case Outcome::kHolds:
      return "holds";
    case Outcome::kUnknown:
      return "unknown";
    case Outcome::kViolated:
      return "violated";
    case Outcome::kDeferred:
      return "deferred";
  }
  return "?";
}

}  // namespace ccpi

#endif  // CCPI_UTIL_OUTCOME_H_
