#ifndef CCPI_UTIL_THREAD_POOL_H_
#define CCPI_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace ccpi {

/// Fixed-size worker pool for the per-constraint check fan-out.
///
/// The pool exists because the paper's tiered cascade makes each
/// constraint's check for a given update independent of every other
/// constraint's: ApplyUpdate can evaluate them concurrently over the
/// frozen database and only the verdict aggregation needs serializing.
///
/// Design points:
///   - ParallelFor is the blocking work-distribution primitive: it runs
///     `fn(i)` for every i in [0, n) across the workers plus the calling
///     thread, blocks until all are done, and returns the first non-OK
///     Status *in index order* (not completion order), so error reporting
///     is deterministic regardless of scheduling.
///   - Submit is the fire-and-forget primitive behind the manager's
///     pipelined episode scheduler: a task is queued for any free worker
///     and the caller returns immediately (completion is the task's own
///     business — the scheduler tracks it per episode). Workers prefer a
///     pending ParallelFor batch over queued tasks, and a ParallelFor
///     whose workers are all busy with tasks simply drains its batch on
///     the calling thread, so the two primitives cannot deadlock each
///     other.
///   - Exceptions thrown by `fn` are captured and surfaced as
///     StatusCode::kInternal — they never cross thread boundaries raw.
///   - A pool constructed with `threads` <= 1 spawns no workers and runs
///     ParallelFor inline on the caller, byte-for-byte the sequential
///     loop; callers need no special casing for the single-threaded
///     configuration.
class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the calling thread is the remaining
  /// lane). `threads` == 0 is treated as 1.
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes, counting the caller: the `threads` given at
  /// construction (>= 1).
  size_t thread_count() const { return workers_.size() + 1; }

  /// Runs `fn(0) .. fn(n-1)`, each exactly once, distributed over the
  /// workers and the calling thread; returns after every call finished.
  /// The result is OK iff every call returned OK; otherwise the non-OK
  /// Status with the smallest index. Not reentrant: `fn` must not call
  /// ParallelFor on the same pool.
  Status ParallelFor(size_t n, const std::function<Status(size_t)>& fn);

  /// Enqueues `task` to run on some worker thread and returns immediately.
  /// With no workers (threads <= 1) the task runs inline before Submit
  /// returns, so single-threaded configurations keep strictly sequential
  /// semantics. Exceptions escaping the task are swallowed (tasks report
  /// through their own captured state, exactly like ParallelFor bodies
  /// report through Status slots). Tasks still queued at destruction are
  /// run to completion before the workers exit.
  void Submit(std::function<void()> task);

 private:
  struct Batch;

  void WorkerLoop();
  /// Claims indexes from `batch` and runs them until all are claimed.
  static void Drain(Batch* batch);
  static void RunTask(const std::function<void()>& task);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_ready_;  // workers: a new batch or task
  std::condition_variable batch_done_;  // caller: the batch fully finished
  // Shared ownership keeps the batch alive for any worker still inside
  // Drain after the caller retired it; the generation counter stops a
  // worker from draining the same batch twice.
  std::shared_ptr<Batch> batch_;
  std::deque<std::function<void()>> tasks_;
  uint64_t generation_ = 0;
  bool shutdown_ = false;
};

}  // namespace ccpi

#endif  // CCPI_UTIL_THREAD_POOL_H_
