#ifndef CCPI_UTIL_THREAD_POOL_H_
#define CCPI_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace ccpi {

/// Fixed-size worker pool for the per-constraint check fan-out.
///
/// The pool exists because the paper's tiered cascade makes each
/// constraint's check for a given update independent of every other
/// constraint's: ApplyUpdate can evaluate them concurrently over the
/// frozen database and only the verdict aggregation needs serializing.
///
/// Design points:
///   - ParallelFor is the only work-distribution primitive: it runs
///     `fn(i)` for every i in [0, n) across the workers plus the calling
///     thread, blocks until all are done, and returns the first non-OK
///     Status *in index order* (not completion order), so error reporting
///     is deterministic regardless of scheduling.
///   - Exceptions thrown by `fn` are captured and surfaced as
///     StatusCode::kInternal — they never cross thread boundaries raw.
///   - A pool constructed with `threads` <= 1 spawns no workers and runs
///     ParallelFor inline on the caller, byte-for-byte the sequential
///     loop; callers need no special casing for the single-threaded
///     configuration.
class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the calling thread is the remaining
  /// lane). `threads` == 0 is treated as 1.
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes, counting the caller: the `threads` given at
  /// construction (>= 1).
  size_t thread_count() const { return workers_.size() + 1; }

  /// Runs `fn(0) .. fn(n-1)`, each exactly once, distributed over the
  /// workers and the calling thread; returns after every call finished.
  /// The result is OK iff every call returned OK; otherwise the non-OK
  /// Status with the smallest index. Not reentrant: `fn` must not call
  /// ParallelFor on the same pool.
  Status ParallelFor(size_t n, const std::function<Status(size_t)>& fn);

 private:
  struct Batch;

  void WorkerLoop();
  /// Claims indexes from `batch` and runs them until all are claimed.
  static void Drain(Batch* batch);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_ready_;  // workers: a new batch is installed
  std::condition_variable batch_done_;  // caller: the batch fully finished
  // Shared ownership keeps the batch alive for any worker still inside
  // Drain after the caller retired it; the generation counter stops a
  // worker from draining the same batch twice.
  std::shared_ptr<Batch> batch_;
  uint64_t generation_ = 0;
  bool shutdown_ = false;
};

}  // namespace ccpi

#endif  // CCPI_UTIL_THREAD_POOL_H_
