#include "util/retry.h"

#include <algorithm>

namespace ccpi {

namespace {

uint64_t NextBackoff(const RetryPolicy& policy, size_t retry_index,
                     Rng* rng) {
  // Exponential doubling from initial_backoff, capped at max_backoff.
  uint64_t base = policy.initial_backoff;
  for (size_t i = 0; i < retry_index && base < policy.max_backoff; ++i) {
    base *= 2;
  }
  base = std::min(base, policy.max_backoff);
  if (policy.jitter <= 0.0 || base == 0) return base;
  // Uniform draw from [base*(1-jitter), base].
  uint64_t spread = static_cast<uint64_t>(
      static_cast<double>(base) * std::min(policy.jitter, 1.0));
  if (spread == 0) return base;
  return base - spread + rng->Below(spread + 1);
}

}  // namespace

RetryOutcome RunWithRetry(const RetryPolicy& policy, Rng* rng,
                          const std::function<Status()>& op) {
  RetryOutcome outcome;
  size_t max_attempts = std::max<size_t>(policy.max_attempts, 1);
  for (size_t attempt = 0; attempt < max_attempts; ++attempt) {
    outcome.status = op();
    ++outcome.attempts;
    if (outcome.status.ok() || !IsRetriable(outcome.status.code())) {
      return outcome;
    }
    if (attempt + 1 == max_attempts) break;  // no budget for another try
    uint64_t wait = NextBackoff(policy, attempt, rng);
    if (policy.episode_budget != 0 &&
        outcome.backoff_spent + wait > policy.episode_budget) {
      break;  // episode timeout: give up with the last failure
    }
    outcome.backoff_spent += wait;
  }
  return outcome;
}

}  // namespace ccpi
