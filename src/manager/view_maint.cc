#include "manager/view_maint.h"

#include <optional>

#include "datalog/unfold.h"
#include "eval/engine.h"
#include "subsumption/program_containment.h"
#include "updates/rewrite.h"
#include "util/check.h"

namespace ccpi {

Result<Outcome> IrrelevantUpdate(const Program& view, const Update& u) {
  CCPI_ASSIGN_OR_RETURN(Program rewritten, RewriteAfterUpdate(view, u));
  CCPI_ASSIGN_OR_RETURN(ContainmentDecision fwd,
                        ProgramContainedInUnion(rewritten, {view}));
  if (fwd.outcome != Outcome::kHolds) return Outcome::kUnknown;
  CCPI_ASSIGN_OR_RETURN(ContainmentDecision bwd,
                        ProgramContainedInUnion(view, {rewritten}));
  if (bwd.outcome != Outcome::kHolds) return Outcome::kUnknown;
  return Outcome::kHolds;
}

Result<bool> ViewChanges(const Program& view, const Update& u,
                         const Database& db) {
  CCPI_ASSIGN_OR_RETURN(Relation before, EvaluateGoal(view, db));
  Database after_db = db;
  CCPI_RETURN_IF_ERROR(u.ApplyTo(&after_db));
  CCPI_ASSIGN_OR_RETURN(Relation after, EvaluateGoal(view, after_db));
  if (before.size() != after.size()) return true;
  for (const Tuple& t : before.rows()) {
    if (!after.Contains(t)) return true;
  }
  return false;
}

const char* ViewRefreshTierToString(ViewRefreshTier tier) {
  switch (tier) {
    case ViewRefreshTier::kIrrelevant:
      return "irrelevant";
    case ViewRefreshTier::kIncremental:
      return "incremental";
    case ViewRefreshTier::kFull:
      return "full";
  }
  return "?";
}

namespace {

/// Unifies a body atom with a concrete tuple: variables bind (consistently
/// on repeats), constants must match. Returns nullopt on mismatch.
std::optional<Substitution> BindAtomToTuple(const Atom& atom,
                                            const Tuple& t) {
  if (atom.args.size() != t.size()) return std::nullopt;
  Substitution subst;
  for (size_t i = 0; i < t.size(); ++i) {
    const Term& arg = atom.args[i];
    if (arg.is_const()) {
      if (!(arg.constant() == t[i])) return std::nullopt;
    } else {
      auto [it, inserted] = subst.emplace(arg.var(), Term::Const(t[i]));
      if (!inserted && !(it->second == Term::Const(t[i]))) {
        return std::nullopt;
      }
    }
  }
  return subst;
}

/// The delta rules of one disjunct for an update to `pred` with tuple `t`:
/// one rule per occurrence of `pred`, with that occurrence removed and its
/// variables bound to t. Evaluating them over a database yields exactly the
/// view tuples whose derivations use t at that occurrence.
std::vector<Rule> DeltaRules(const CQ& disjunct, const std::string& pred,
                             const Tuple& t) {
  std::vector<Rule> out;
  for (size_t k = 0; k < disjunct.positives.size(); ++k) {
    if (disjunct.positives[k].pred != pred) continue;
    std::optional<Substitution> subst =
        BindAtomToTuple(disjunct.positives[k], t);
    if (!subst.has_value()) continue;
    CQ reduced = disjunct;
    reduced.positives.erase(reduced.positives.begin() +
                            static_cast<ptrdiff_t>(k));
    reduced = Apply(*subst, reduced);
    out.push_back(reduced.ToRule());
  }
  return out;
}

/// True iff the view derives exactly `row` on `db` (heads bound before
/// evaluation, so only matching derivations are explored).
Result<bool> IsDerivable(const UCQ& disjuncts, const Tuple& row,
                         const Database& db) {
  Program probe;
  probe.goal = "hit";
  for (const CQ& d : disjuncts) {
    std::optional<Substitution> subst = BindAtomToTuple(d.head, row);
    if (!subst.has_value()) continue;
    CQ bound = Apply(*subst, d);
    Rule rule;
    rule.head = Atom{"hit", {}};
    rule.body = bound.ToRule().body;
    probe.rules.push_back(std::move(rule));
  }
  if (probe.rules.empty()) return false;
  return IsViolated(probe, db);
}

}  // namespace

Result<MaterializedView> MaterializedView::Create(Program view,
                                                  const Database& db) {
  CCPI_ASSIGN_OR_RETURN(Relation rows, EvaluateGoal(view, db));
  return MaterializedView(std::move(view), db, std::move(rows));
}

Result<ViewRefreshTier> MaterializedView::Apply(const Update& u) {
  // Tier 1: definition + update only.
  Result<Outcome> irrelevant = IrrelevantUpdate(view_, u);
  if (irrelevant.ok() && *irrelevant == Outcome::kHolds) {
    CCPI_RETURN_IF_ERROR(u.ApplyTo(&base_));
    return ViewRefreshTier::kIrrelevant;
  }
  return RefreshAfter(u);
}

Result<ViewRefreshTier> MaterializedView::RefreshAfter(const Update& u) {
  Result<UCQ> unfolded = UnfoldToUCQ(view_);
  bool incremental_ok = unfolded.ok();
  if (incremental_ok) {
    for (const CQ& d : *unfolded) {
      incremental_ok = incremental_ok && !d.HasNegation();
    }
  }
  if (!incremental_ok) {
    // Tier 3: full recomputation (recursive or negated views).
    CCPI_RETURN_IF_ERROR(u.ApplyTo(&base_));
    CCPI_ASSIGN_OR_RETURN(rows_, EvaluateGoal(view_, base_));
    return ViewRefreshTier::kFull;
  }

  if (u.kind == Update::Kind::kInsert) {
    // New derivations must use the inserted tuple at some occurrence:
    // evaluate the delta rules over the post-insert state.
    CCPI_RETURN_IF_ERROR(u.ApplyTo(&base_));
    for (const CQ& d : *unfolded) {
      for (Rule& rule : DeltaRules(d, u.pred, u.tuple)) {
        Program delta;
        delta.goal = rule.head.pred;
        delta.rules.push_back(std::move(rule));
        CCPI_ASSIGN_OR_RETURN(Relation derived,
                              EvaluateGoal(delta, base_));
        for (const Tuple& row : derived.rows()) rows_.Insert(row);
      }
    }
    return ViewRefreshTier::kIncremental;
  }

  // Deletion: candidates are the view tuples with a derivation through the
  // removed tuple (delta rules over the PRE-delete state); each candidate
  // survives iff it is re-derivable afterwards.
  Relation candidates(rows_.arity());
  for (const CQ& d : *unfolded) {
    for (Rule& rule : DeltaRules(d, u.pred, u.tuple)) {
      Program delta;
      delta.goal = rule.head.pred;
      delta.rules.push_back(std::move(rule));
      CCPI_ASSIGN_OR_RETURN(Relation derived, EvaluateGoal(delta, base_));
      for (const Tuple& row : derived.rows()) candidates.Insert(row);
    }
  }
  CCPI_RETURN_IF_ERROR(u.ApplyTo(&base_));
  for (const Tuple& row : candidates.rows()) {
    CCPI_ASSIGN_OR_RETURN(bool still, IsDerivable(*unfolded, row, base_));
    if (!still) rows_.Erase(row);
  }
  return ViewRefreshTier::kIncremental;
}

}  // namespace ccpi
