#ifndef CCPI_MANAGER_CONSTRAINT_MANAGER_H_
#define CCPI_MANAGER_CONSTRAINT_MANAGER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "datalog/ast.h"
#include "distsim/site_db.h"
#include "updates/update.h"
#include "util/outcome.h"
#include "util/status.h"

namespace ccpi {

/// Which level of the paper's information hierarchy settled a constraint
/// for one update.
enum class Tier {
  kSubsumed,      // level 0: dropped at registration, never checked
  kUnaffected,    // level 1 prefilter: constraint does not mention the pred
  kIndependence,  // level 1: constraints + update (Section 4)
  kLocalTest,     // level 2: constraints + update + local data (Sections 5-6)
  kFullCheck,     // level 3: full evaluation, remote data included
};

const char* TierToString(Tier tier);

/// Aggregate statistics across updates.
struct ManagerStats {
  std::map<Tier, size_t> resolved_by;
  size_t violations = 0;
  AccessStats access;
};

/// The per-constraint verdict for one update.
struct CheckReport {
  std::string constraint;
  Outcome outcome = Outcome::kUnknown;
  Tier tier = Tier::kFullCheck;
};

/// Integrity-constraint manager implementing the paper's tiered checking
/// discipline (Section 2, "Limits on Available Information"):
///
///   T0 at registration: constraints subsumed by the rest are dropped
///      (Theorem 3.1) — they can never be the first to break.
///   T1 per update: query-independence using only the constraint and the
///      update (Section 4). Free of any data access.
///   T2 per update: the complete local test using local data only
///      (Theorem 5.2; the Fig 6.1 interval programs and the Theorem 5.3 RA
///      tests are used through the same entry point when they apply).
///      Charged at local-access prices.
///   T3 fallback: full evaluation of the rewritten state, touching remote
///      relations at remote prices. The only tier that can answer
///      "violated" for constraints over remote data.
///
/// Updates are checked BEFORE being applied; a violated update is rejected
/// (the database is left unchanged) and reported.
class ConstraintManager {
 public:
  ConstraintManager(std::set<std::string> local_preds, CostModel cost_model)
      : site_(std::move(local_preds)), cost_model_(cost_model) {}

  /// Registers a constraint. If the already-registered constraints subsume
  /// it, it is recorded as redundant (never checked) and `subsumed` is set
  /// in the returned flag.
  Result<bool> AddConstraint(const std::string& name, Program constraint);

  SiteDatabase& site() { return site_; }
  const SiteDatabase& site() const { return site_; }

  /// Checks all active constraints against `u`, applies it if no
  /// violation was found, and reports the verdict per constraint.
  Result<std::vector<CheckReport>> ApplyUpdate(const Update& u);

  /// The outcome of an atomic multi-update transaction.
  struct TransactionResult {
    /// Per-update reports, in order, up to and including the first
    /// rejected update (later updates are not checked).
    std::vector<std::vector<CheckReport>> reports;
    bool committed = false;
  };

  /// Applies a sequence of updates atomically: each is checked in order
  /// against the constraints; if any would cause a violation, every
  /// previously applied update of the sequence is rolled back and the
  /// database is left exactly as before the call.
  Result<TransactionResult> ApplyTransaction(const std::vector<Update>& updates);

  const ManagerStats& stats() const { return stats_; }

 private:
  // Tier-2 artifacts per (constraint, updated local predicate), compiled
  // once and reused across updates: the unfolded single-CQ form, the
  // Fig 6.1 interval compilation when applicable, and the normalized CQC
  // for the general Theorem 5.2 test. Defined in the .cc.
  struct Tier2Artifacts;

  struct Registered {
    std::string name;
    Program program;
    bool subsumed = false;
    // Cache keyed by the updated predicate.
    std::map<std::string, std::shared_ptr<const Tier2Artifacts>> tier2;
  };

  /// Returns (compiling and caching on first use) the tier-2 artifacts of
  /// `r` for insertions into `local_pred`; null when tier 2 is
  /// inapplicable to this constraint.
  std::shared_ptr<const Tier2Artifacts> PrepareTier2(
      Registered* r, const std::string& local_pred);

  Result<CheckReport> CheckOne(Registered* r, const Update& u);

  SiteDatabase site_;
  CostModel cost_model_;
  std::vector<Registered> constraints_;
  ManagerStats stats_;
};

}  // namespace ccpi

#endif  // CCPI_MANAGER_CONSTRAINT_MANAGER_H_
