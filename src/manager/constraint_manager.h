#ifndef CCPI_MANAGER_CONSTRAINT_MANAGER_H_
#define CCPI_MANAGER_CONSTRAINT_MANAGER_H_

#include <array>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "datalog/ast.h"
#include "distsim/site_db.h"
#include "obs/metrics.h"
#include "plan/plan_cache.h"
#include "plan/update_signature.h"
#include "updates/update.h"
#include "util/budget.h"
#include "util/circuit_breaker.h"
#include "util/outcome.h"
#include "util/retry.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace ccpi {

/// Which level of the paper's information hierarchy settled a constraint
/// for one update.
enum class Tier {
  kSubsumed,      // level 0: dropped at registration, never checked
  kUnaffected,    // level 1 prefilter: constraint does not mention the pred
  kIndependence,  // level 1: constraints + update (Section 4)
  kLocalTest,     // level 2: constraints + update + local data (Sections 5-6)
  kFullCheck,     // level 3: full evaluation, remote data included
};

const char* TierToString(Tier tier);

/// What the manager does with an update whose tier-3 check could not reach
/// the remote site.
enum class DeferredPolicy {
  /// Apply the update now and enqueue the undecided checks for automatic
  /// re-verification once the remote site answers again; a late violation
  /// is compensated by rolling the update back. Sound because tiers 0-2
  /// are *complete* where they apply: anything that reaches tier 3 was
  /// already not refutable from local information alone.
  kOptimisticApply,
  /// Refuse the update (database unchanged). Conservative: availability of
  /// writes degrades with the remote link, but the database never holds
  /// unverified data.
  kReject,
};

/// Knobs of the fault-tolerant remote-access path (tier 3).
struct ResilienceConfig {
  RetryPolicy retry;
  CircuitBreakerConfig breaker;
  DeferredPolicy on_unreachable = DeferredPolicy::kOptimisticApply;
  /// Seed of the jitter stream of the retry policy.
  uint64_t retry_seed = 0x5eed;
  /// Drain the deferred-recheck queue automatically at the start of each
  /// ApplyUpdate once the circuit allows remote traffic again.
  bool auto_recheck = true;
};

/// Degree of parallelism of ApplyUpdate's per-constraint check fan-out.
///
/// The tiered cascade makes each constraint's check for a given update a
/// pure function of (constraint, update, frozen database), so the manager
/// can evaluate them on a thread pool and merge verdicts afterwards. The
/// fan-out is report-equivalent to the sequential order at any thread
/// count: tier 1/2 checks touch only infallible local reads, and tier 3
/// runs in parallel only when no fault injector is attached and the
/// circuit breaker is plainly closed — the two cases where remote
/// verdicts depend on global arrival order (see docs/concurrency.md).
struct ParallelConfig {
  /// Total checker lanes, counting the thread that called ApplyUpdate.
  /// 0 and 1 both mean sequential (no worker threads are spawned).
  size_t threads = 1;
};

/// The remote-read snapshot cache (see docs/remote_cache.md). On by
/// default: the cache is semantically invisible — reports, verdicts, and
/// the deferred queue are identical with it off — and only the access
/// accounting (fewer trips, cached_tuples instead of remote_tuples)
/// changes. `ccpi_check --remote-cache=off` and benchmarks use the switch
/// to measure the uncached baseline.
struct RemoteCacheConfig {
  bool enabled = true;
  /// Hedged batched reads (`ccpi_check --hedge-after=N`): when a batched
  /// per-site prefetch's drawn latency exceeds `hedge_after` times that
  /// site's observed latency EWMA, the simulator issues one deterministic
  /// backup attempt and takes the faster of the two, billing exactly one
  /// extra remote trip per issued hedge (see docs/distsim.md "Hedged
  /// reads"). 0 (the default) disables hedging: no extra trips, no
  /// `manager.hedge.*` counters, byte-identical behavior. Hedging only
  /// ever engages on sites with a non-fixed latency model.
  uint64_t hedge_after = 0;
};

/// The compiled local-test plan cache (see docs/plan_cache.md). On by
/// default: like the remote cache it is semantically invisible — reports,
/// ManagerStats (access accounting included) and the deferred queue are
/// byte-identical with it off at any thread count — it only removes
/// repeated per-update *analysis* work (tier-1 independence decisions,
/// Theorem 5.3 compilations, tier-3 safety/stratification) by keying it on
/// the update's pattern. `ccpi_check --plan-cache=off` and benchmarks use
/// the switch to measure the cold-compile baseline.
struct PlanCacheConfig {
  bool enabled = true;
};

/// The pipelined episode scheduler (see docs/concurrency.md). With depth
/// D > 1, ApplyUpdateAsync admits up to D update episodes at once: each
/// admission takes an immutable MVCC snapshot of the database (a cheap
/// copy-on-write Database copy) and speculates the episode's read-only
/// phases — the tier-0/1 signature checks, the tier-2 local tests, and
/// the remote prefetch — on the thread pool against that snapshot, while
/// commits retire strictly in admission order through a serialized commit
/// map. A commit first validates its speculation against the writes of
/// intervening commits (read-set vs write-log) and re-runs the episode's
/// phase 1 inline on the live database when conflicted; because commits
/// are serialized, that single retry can never be invalidated again.
/// Sustained conflicts trip a serial fallback: admission stops speculating
/// for a window of episodes, then probes again. Reports, ManagerStats,
/// the deferred queue, breaker admissions, and fault-schedule draws are
/// byte-identical to depth-1 execution per seed at any depth and thread
/// count — everything order-sensitive (tier 3, breakers, injector draws,
/// budgets, the deferred queue) stays in the serialized commit phase.
struct PipelineConfig {
  /// Maximum episodes in flight; 1 (the default) disables pipelining and
  /// is byte-for-byte the pre-pipeline manager. Budget-armed managers
  /// always run at depth 1: wall-clock deadlines are admission-order
  /// sensitive, so speculation is never attempted under budgets.
  size_t depth = 1;
  /// Consecutive conflicted commits that trip the serial fallback
  /// (admission stops speculating for `depth` episodes, then probes
  /// speculation again).
  size_t max_conflict_streak = 4;
};

/// What to do when a new deferred re-check would push the queue past
/// BudgetConfig::deferred_queue_cap.
enum class OverflowPolicy {
  /// Refuse the whole update (the tentative apply is rolled back), exactly
  /// as DeferredPolicy::kReject would: no unverified work is admitted once
  /// the backlog is full. The refused update's deferred reports carry
  /// CheckReport::queue_overflow.
  kRejectUpdate,
  /// Drop the oldest queued entries to make room. The dropped entries'
  /// optimistic applies stay standing *unverified* — availability is
  /// preserved at the price of bounded, oldest-first verification debt
  /// (counted in manager.deferred.dropped / ManagerStats::deferred_dropped).
  kShedOldest,
  /// Try one synchronous RecheckDeferred pass to make room; if the queue is
  /// still full afterwards (site still down, or the drain's own budget
  /// spent), fall back to refusing the update like kRejectUpdate.
  kBlockRecheck,
};

/// Resource governance of the checking pipeline (see docs/budgets.md).
/// Default-constructed, everything is off and the manager behaves exactly
/// as before budgets existed — the hot path pays one branch on a null
/// scope, no clock reads, no allocations.
struct BudgetConfig {
  /// Envelope over one whole ApplyUpdate episode: the deadline is measured
  /// from the call's entry, the caps are split evenly across the tier-3
  /// worklist before the fan-out (each of N checks gets max(cap/N, 1), a
  /// deterministic function of the worklist — never of sibling progress —
  /// so reports stay byte-identical at any thread count). A nonzero
  /// max_remote_trips forces the tier-3 fan-out sequential: the trip
  /// counter is shared, so which lane's trip hits the cap would otherwise
  /// depend on arrival order.
  ExecutionBudget per_episode;
  /// Envelope over each single tier-3 evaluation (and each deferred
  /// re-check), folded into the per-episode slice; tightest limit wins.
  ExecutionBudget per_check;
  /// Optional cooperative cancellation honored at every budget checkpoint.
  /// Not owned; must outlive the manager's episodes.
  const CancellationToken* cancel = nullptr;
  /// Bound on the deferred re-check queue (0 = unbounded, the pre-budget
  /// behavior).
  size_t deferred_queue_cap = 0;
  /// Applied when an enqueue would exceed deferred_queue_cap.
  OverflowPolicy overflow = OverflowPolicy::kRejectUpdate;

  bool armed() const {
    return per_episode.armed() || per_check.armed() || cancel != nullptr;
  }
};

/// Aggregate statistics across updates. This is a *snapshot view*: the
/// manager's source of truth is its obs::MetricsRegistry (see metrics()),
/// and stats() materializes one of these from the registry's counters on
/// each call.
struct ManagerStats {
  std::map<Tier, size_t> resolved_by;
  size_t violations = 0;
  /// Tier-3 evaluation attempts actually issued (including retries).
  size_t remote_attempts = 0;
  /// Attempts beyond the first of their episode.
  size_t remote_retries = 0;
  /// Episodes that exhausted the retry policy without an answer.
  size_t remote_failures = 0;
  /// Checks resolved as kDeferred because the remote site was unreachable.
  size_t deferred = 0;
  /// Deferred checks skipped without a remote attempt (circuit open).
  size_t breaker_fast_fails = 0;
  /// Deferred checks later re-verified as holding.
  size_t deferred_recovered = 0;
  /// Deferred checks later found violated (the optimistic apply was
  /// compensated by rollback). Counted in `violations` too.
  size_t deferred_violations = 0;
  /// Tier-3 checks admitted to the resolution loop. Accounting invariant
  /// (absent hard errors): t3_admitted == resolved_by[kFullCheck] +
  /// deferred + shed_checks.
  size_t t3_admitted = 0;
  /// Tier-3 checks shed with kResourceExhausted (execution budget spent) —
  /// disjoint from `deferred`, which counts unreachable-site deferrals.
  size_t shed_checks = 0;
  /// Budget-exhaustion events observed anywhere in the pipeline (fan-out
  /// sheds, exhausted deferred re-checks, queue-overflow refusals).
  size_t budget_exhausted = 0;
  /// Queue entries dropped by OverflowPolicy::kShedOldest.
  size_t deferred_dropped = 0;
  /// Catch-up recoveries observed: a site's breaker re-closing after an
  /// outage (multi-site topologies only; a 1-site manager never counts
  /// these).
  size_t sites_recovered = 0;
  /// Cache entries revalidated by recovery reconciliation passes.
  size_t cache_revalidated = 0;
  /// Hedged batched reads issued / won / wasted (hedging on only; each
  /// issued hedge billed one extra remote trip, and issued == won +
  /// wasted always holds).
  size_t hedges_issued = 0;
  size_t hedges_won = 0;
  size_t hedges_wasted = 0;
  /// Tier-3 checks shed because a member site's latency EWMA said the
  /// trip could not finish inside the episode's remaining deadline — the
  /// refuse-before-pay rule extended to latency: the trip is never paid.
  /// A subset of shed_checks (the t3 accounting invariant is unchanged).
  size_t latency_shed = 0;
  AccessStats access;
};

/// The per-constraint verdict for one update.
struct CheckReport {
  std::string constraint;
  Outcome outcome = Outcome::kUnknown;
  Tier tier = Tier::kFullCheck;
  /// Remote attempts beyond the first consumed by this check (tier 3).
  size_t retries = 0;
  /// Why a kDeferred outcome was deferred: kUnavailable/kDeadlineExceeded
  /// when the remote site was unreachable, kResourceExhausted when the
  /// execution budget shed the check. kOk for any other outcome.
  StatusCode reason = StatusCode::kOk;
  /// Set on the deferred reports of an update that was refused because the
  /// deferred queue was full (OverflowPolicy::kRejectUpdate, or
  /// kBlockRecheck whose drain could not make room).
  bool queue_overflow = false;
};

/// One enqueued re-verification: `constraint` must be re-checked because
/// the remote site was unreachable when `update` was (optimistically)
/// applied.
struct DeferredCheck {
  Update update;
  std::string constraint;
  /// Position in the update stream, for reports.
  uint64_t sequence = 0;
};

/// How one deferred check was eventually resolved.
struct DeferredResolution {
  DeferredCheck check;
  Outcome outcome = Outcome::kUnknown;  // kHolds or kViolated
  /// Whether the late-detected violation was compensated by rolling the
  /// update back (false when a later update already removed its effect).
  bool rolled_back = false;
  /// Remote attempts beyond the first consumed by the resolving
  /// re-evaluation — the recheck counterpart of CheckReport::retries, so
  /// every counted retry surfaces in exactly one per-episode record.
  size_t retries = 0;
};

/// Integrity-constraint manager implementing the paper's tiered checking
/// discipline (Section 2, "Limits on Available Information"):
///
///   T0 at registration: constraints subsumed by the rest are dropped
///      (Theorem 3.1) — they can never be the first to break.
///   T1 per update: query-independence using only the constraint and the
///      update (Section 4). Free of any data access.
///   T2 per update: the complete local test using local data only
///      (Theorem 5.2; the Fig 6.1 interval programs and the Theorem 5.3 RA
///      tests are used through the same entry point when they apply).
///      Charged at local-access prices.
///   T3 fallback: full evaluation of the rewritten state, touching remote
///      relations at remote prices. The only tier that can answer
///      "violated" for constraints over remote data.
///
/// Updates are checked BEFORE being applied; a violated update is rejected
/// (the database is left unchanged) and reported.
///
/// Tier 3 is the only tier that depends on the remote site, and the remote
/// site may be down (attach a FaultInjector to site() to simulate that).
/// The manager degrades gracefully: T3 evaluations run under a retry
/// policy with exponential backoff, a circuit breaker fails fast while the
/// site is known-dead, and checks that remain unanswerable resolve as
/// Outcome::kDeferred — the update is optimistically applied (or rejected,
/// per DeferredPolicy) and enqueued for automatic re-verification when the
/// circuit closes, with rollback compensation if the late check finds a
/// violation.
class ConstraintManager {
 public:
  // Defined in the .cc: the body (and unwind paths) needs the complete
  // Episode type behind inflight_.
  ConstraintManager(std::set<std::string> local_preds, CostModel cost_model,
                    ResilienceConfig resilience = {},
                    ParallelConfig parallel = {},
                    RemoteCacheConfig remote_cache = {},
                    BudgetConfig budget = {}, TopologyConfig topology = {},
                    PlanCacheConfig plan_cache = {},
                    PipelineConfig pipeline = {});

  /// Drains any in-flight pipelined episodes (uncommitted speculation is
  /// discarded, never applied) before tearing down the thread pool.
  ~ConstraintManager();

  /// Registers a constraint. If the already-registered constraints subsume
  /// it, it is recorded as redundant (never checked) and `subsumed` is set
  /// in the returned flag.
  ///
  /// Drain-first precondition: must not be called with episodes in flight
  /// (registration changes the active set every speculation quantifies
  /// over). The manager drains the pipeline itself on entry, so callers
  /// mixing ApplyUpdateAsync with AddConstraint observe the registration
  /// strictly after every admitted episode.
  Result<bool> AddConstraint(const std::string& name, Program constraint);

  SiteDatabase& site() { return site_; }
  const SiteDatabase& site() const { return site_; }

  /// Checks all active constraints against `u`, applies it if no
  /// violation was found, and reports the verdict per constraint. A report
  /// with outcome kDeferred means the remote site could not be reached;
  /// whether the update was applied is governed by the DeferredPolicy.
  ///
  /// Drains any in-flight pipelined episodes first, so the synchronous and
  /// asynchronous entry points interleave safely (the serial order is
  /// admission order either way).
  Result<std::vector<CheckReport>> ApplyUpdate(const Update& u);

  /// Admits `u` into the episode pipeline. With PipelineConfig::depth 1
  /// (or a budget-armed manager) this is ApplyUpdate with the result
  /// parked for Drain(). With depth D > 1, up to D episodes are in flight
  /// at once: admission snapshots the database and speculates the
  /// episode's read-only phases on the thread pool, and when the pipeline
  /// is full the oldest episode is retired through the serialized commit
  /// map (validating its speculation against intervening writes) to make
  /// room. Results are produced in admission order and collected by
  /// Drain(). See PipelineConfig for the equivalence guarantee.
  void ApplyUpdateAsync(const Update& u);

  /// Retires every in-flight episode in admission order and returns the
  /// accumulated per-update results (one entry per ApplyUpdateAsync call
  /// since the last Drain, in admission order). Idempotent; an empty
  /// pipeline yields an empty vector.
  std::vector<Result<std::vector<CheckReport>>> Drain();

  /// Zeroes every counter behind stats() (histograms/gauges and the
  /// site's cumulative AccessStats cost are untouched). Drains the
  /// pipeline first: resetting mid-episode would split one episode's
  /// counts across the boundary.
  void ResetStats();

  /// The outcome of an atomic multi-update transaction.
  struct TransactionResult {
    /// Per-update reports, in order, up to and including the first
    /// rejected update (later updates are not checked).
    std::vector<std::vector<CheckReport>> reports;
    bool committed = false;
  };

  /// Applies a sequence of updates atomically: each is checked in order
  /// against the constraints; if any would cause a violation (or is
  /// refused by DeferredPolicy::kReject during an outage), every
  /// previously applied update of the sequence is rolled back and the
  /// database is left exactly as before the call. Drains any in-flight
  /// pipelined episodes first (transactions are serial by definition).
  Result<TransactionResult> ApplyTransaction(const std::vector<Update>& updates);

  /// Attempts to re-verify every queued deferred check by full evaluation
  /// against the current database. An entry whose remote reads still fail
  /// (or whose re-check budget is exhausted) is skipped and re-queued at
  /// the back, so one dead site never pins entries for other, reachable
  /// sites behind it; draining makes bounded passes over the queue until a
  /// pass resolves nothing. Returns the entries decided by this call; late
  /// violations are compensated by rolling the offending update back.
  /// Drains any in-flight pipelined episodes first (the queue is
  /// order-sensitive shared state).
  Result<std::vector<DeferredResolution>> RecheckDeferred();

  /// Pending re-verifications, oldest first.
  const std::deque<DeferredCheck>& deferred_queue() const {
    return deferred_;
  }

  /// Site 0's breaker — the whole remote side of a 1-site topology, which
  /// keeps the pre-topology call sites working unchanged.
  const CircuitBreaker& breaker() const { return *breakers_[0]; }
  /// Per-site breakers of an N-site topology.
  const CircuitBreaker& site_breaker(size_t site) const {
    return *breakers_[site];
  }
  /// Number of remote sites (>= 1).
  size_t sites() const { return site_.sites(); }

  /// The fan-out configuration this manager was built with.
  const ParallelConfig& parallel() const { return parallel_; }
  /// The remote-cache configuration this manager was built with.
  const RemoteCacheConfig& remote_cache() const { return remote_cache_; }
  /// The plan-cache configuration this manager was built with.
  const PlanCacheConfig& plan_cache() const { return plan_cache_; }
  /// The budget configuration this manager was built with.
  const BudgetConfig& budget() const { return budget_; }
  /// The pipeline configuration this manager was built with.
  const PipelineConfig& pipeline() const { return pipeline_; }
  /// Episodes currently admitted but not yet retired.
  size_t in_flight() const { return inflight_.size(); }
  /// Checker lanes actually available (>= 1; the caller is one).
  size_t check_threads() const { return pool_->thread_count(); }

  /// Snapshot of the aggregate statistics, materialized from the metrics
  /// registry (plus the site's AccessStats). `resolved_by` carries only
  /// tiers that resolved at least one check.
  ManagerStats stats() const;

  /// The manager's own metrics registry — every counter behind stats(),
  /// plus the latency histograms and the distsim/eval/ra counters of the
  /// components this manager drives. See docs/observability.md for the
  /// catalog.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Advances the failure-detector clocks (every site's) without applying
  /// an update (they normally tick once per ApplyUpdate). Lets an idle
  /// caller wait out an open circuit's cooldown before draining the
  /// deferred queue.
  void TickBreaker(uint64_t steps = 1) {
    for (auto& b : breakers_) b->Tick(steps);
  }

 private:
  // Tier-2 artifacts per (constraint, updated local predicate), compiled
  // once and reused across updates: the unfolded single-CQ form, the
  // Fig 6.1 interval compilation when applicable, and the normalized CQC
  // for the general Theorem 5.2 test. Defined in the .cc.
  struct Tier2Artifacts;

  struct Registered {
    std::string name;
    Program program;
    bool subsumed = false;
    /// The remote base relations a tier-3 evaluation of this constraint
    /// may read, computed once at registration — the episode prefetch
    /// unions these over the tier-3 worklist.
    std::set<std::string> remote_edb;
    /// The sites those relations live at. In a 1-site topology this is
    /// always {0} — even for a constraint with no remote relations — so
    /// the breaker gating below that set drives is literally the
    /// pre-topology single-breaker behavior. With N sites it is the true
    /// placement footprint, and a constraint touching no dark site checks
    /// normally while the rest of the topology burns (partial
    /// degradation).
    std::set<size_t> remote_sites;
    // Cache keyed by the updated predicate.
    std::map<std::string, std::shared_ptr<const Tier2Artifacts>> tier2;
  };

  /// Returns (compiling and caching on first use) the tier-2 artifacts of
  /// `r` for insertions into `local_pred`; null when tier 2 is
  /// inapplicable to this constraint.
  std::shared_ptr<const Tier2Artifacts> PrepareTier2(
      Registered* r, const std::string& local_pred);

  /// Resolves the metric handles (and plugs the registry into site_).
  /// Called once from the constructor; handles are stable thereafter.
  void InitObservability();

  static size_t TierIndex(Tier tier) { return static_cast<size_t>(tier); }

  /// One pipelined update episode: the admission snapshot, the buffered
  /// speculation results, and the retire handshake. Defined in the .cc.
  struct Episode;

  /// Where a check reads from and who observes the reads: the live
  /// database + the site observer + the live deferred queue on the serial
  /// path, or an episode's admission snapshot + a buffering observer + the
  /// queue as-of-admission on the speculative path. Defined in the .cc.
  struct CheckContext;

  /// CheckOne wraps CheckOneImpl with a span and the per-tier latency
  /// histogram; ApplyUpdate likewise wraps ApplyUpdateImpl. `sig` is the
  /// episode's update signature — the per-pattern plan-cache key component
  /// — or null when the plan cache is off (every cached path is then
  /// bypassed and the tiers run their original cold code). `ctx` routes
  /// every tier-1/2 read (see CheckContext).
  Result<CheckReport> CheckOne(Registered* r, const Update& u,
                               const UpdateSignature* sig,
                               const CheckContext& ctx);
  Result<CheckReport> CheckOneImpl(Registered* r, const Update& u,
                                   const UpdateSignature* sig,
                                   const CheckContext& ctx);
  /// `spec` is the episode whose speculation to reuse (commit path), or
  /// null for a fully serial run. When non-null and the speculation is
  /// still valid against intervening commits, phase 1 replays the buffered
  /// reads and reports instead of re-running; when invalidated, phase 1
  /// re-runs inline on the live database (counted as a conflict retry).
  Result<std::vector<CheckReport>> ApplyUpdateImpl(const Update& u,
                                                   Episode* spec);
  /// RecheckDeferred body; `episode` (may be null) is the enclosing
  /// ApplyUpdate's budget scope, folded into each re-check's envelope.
  Result<std::vector<DeferredResolution>> RecheckDeferredImpl(
      const BudgetScope* episode);

  /// Runs one tier-3 evaluation of `program` over `db` under the retry
  /// policy and the breakers of `gsites` — the sites the constraint may
  /// touch, whose probe slots the caller has already claimed via
  /// AllowRequest (no-op claims while closed). Exactly one of
  /// RecordSuccess / RecordFailure / CancelProbe is issued per site on
  /// every exit path. OK Result carries the violation verdict; a
  /// kUnavailable/kDeadlineExceeded Result means the episode gave up (the
  /// caller defers); kResourceExhausted means the budget `scope` (null =
  /// unbudgeted) was spent — never retried, never counted against any
  /// breaker (the sites did nothing wrong). `retries_out` receives the
  /// extra attempts consumed.
  /// `plan_key` (null = uncached) names the plan-cache slot holding the
  /// program's CompiledProgram — the constraint name suffices, since a
  /// constraint's program never changes after registration. The cached and
  /// cold paths are attempt-for-attempt identical: CompileProgram fails
  /// exactly where IsViolated(Program, ...) would, and evaluation of a
  /// compiled plan issues the same reads, metrics, and budget checkpoints.
  Result<bool> EvaluateRemote(const Program& program, const Database& db,
                              const std::set<size_t>& gsites,
                              size_t* retries_out,
                              const BudgetScope* scope = nullptr,
                              const std::string* plan_key = nullptr);

  /// Tier-2 evaluation through a cached RA plan template: binds the
  /// update's tuple into the template and evaluates (or replays a memoized
  /// same-version result). Mirrors RaLocalTestOnInsert's observable
  /// behavior exactly — see docs/plan_cache.md. Reads through `ctx`; the
  /// version-keyed memo is shared across episodes (relation versions name
  /// content, so a snapshot hit is exactly a live hit).
  Result<Outcome> EvalPlannedRa(const RaPlanTemplate& tpl, const Update& u,
                                const std::string& plan_key,
                                const CheckContext& ctx);

  /// --- Episode scheduler (PipelineConfig; all private state below is
  /// --- touched only by the admitting thread except Episode internals).

  /// The ApplyUpdate wrapper body (span, latency histogram, queue gauge)
  /// around ApplyUpdateImpl — shared by the synchronous path and the
  /// commit map so a committed pipelined episode emits the identical
  /// per-episode instrumentation.
  Result<std::vector<CheckReport>> RunEpisode(const Update& u, Episode* spec);
  /// Launches the episode's speculative phase 1 on the thread pool.
  void SpeculateEpisode(Episode* e);
  /// The speculation body: phase 1 against the admission snapshot with
  /// buffered reads, plus the staged remote prefetch. Runs on a pool
  /// worker (or inline on sequential pools).
  void SpeculatePhase1(Episode* e);
  /// Retires inflight_.front() through the commit map: waits for its
  /// speculation, validates it, runs ApplyUpdateImpl (reusing or
  /// discarding the speculation), and appends the result to
  /// pending_results_.
  void CommitHeadToPending();
  /// Retires every in-flight episode in admission order.
  void DrainInflightInternal();
  /// Waits for in-flight speculations and discards them uncommitted
  /// (destructor path only).
  void AbandonInflight();
  /// Whether `e`'s speculation survives the writes committed since its
  /// admission (read-set vs commit_writes_[mark..], deferred-queue epoch).
  bool SpecStillValid(const Episode& e) const;
  /// Records `pred` as written by a committed episode; no-op while the
  /// pipeline is empty (the log exists only to validate speculation).
  void LogCommitWrite(const std::string& pred);

  /// Whether every breaker in `gsites` would currently admit a request
  /// (pure gate: claims nothing, transitions nothing).
  bool SitesWouldAllow(const std::set<size_t>& gsites) const;
  /// Claims every breaker in `gsites` (sequential paths only: the caller
  /// has just seen SitesWouldAllow succeed).
  void ClaimSites(const std::set<size_t>& gsites);
  bool AllBreakersClosed() const;
  /// End-of-episode catch-up hook (multi-site only): detects sites whose
  /// breaker re-closed after being observed dark, reconciles their cache
  /// entries poisoned during the outage, and emits recovery metrics. The
  /// queued deferred entries naming the site drain through the normal
  /// auto-recheck on the next update.
  void DetectRecoveries();

  /// Whether reports mean the update was refused (violated, or deferred
  /// under DeferredPolicy::kReject).
  bool UpdateRefused(const std::vector<CheckReport>& reports) const;

  SiteDatabase site_;
  CostModel cost_model_;
  ResilienceConfig resilience_;
  ParallelConfig parallel_;
  RemoteCacheConfig remote_cache_;
  PlanCacheConfig plan_cache_;
  BudgetConfig budget_;
  /// budget_.armed(), precomputed: the unbudgeted hot path pays exactly
  /// one branch on this flag.
  bool budget_armed_ = false;
  /// One breaker per remote site (heap-allocated: a breaker owns a mutex
  /// and is not movable). breakers_[0] doubles as the legacy single
  /// breaker.
  std::vector<std::unique_ptr<CircuitBreaker>> breakers_;
  /// Recovery bookkeeping: whether site s was observed non-closed at a
  /// detection point since it last recovered (see DetectRecoveries).
  std::vector<bool> site_was_dark_;
  // Only drawn from inside EvaluateRemote on a retriable failure, which
  // requires a fault injector; the parallel tier-3 path (taken only with
  // no injector attached) therefore never touches it concurrently.
  Rng retry_rng_;
  std::vector<Registered> constraints_;
  /// The compiled-plan cache (see docs/plan_cache.md). Wholesale
  /// invalidated on AddConstraint: registration changes the active set
  /// that tier-1 decisions quantify over and the signature constant pool.
  PlanCache plans_;
  /// The distinguished-constant pool of the active constraint set, sorted
  /// and deduped — input to ShapeSignature. Rebuilt on AddConstraint.
  std::vector<Value> plan_constants_;
  /// True iff every active program is comparison-free (SignatureSafe).
  /// Order comparisons can distinguish same-shape tuples, so the tier-1
  /// decision memo is disabled unless this holds; the RA template and
  /// tier-3 caches need no such gate (they cache structure, not verdicts
  /// quantified over tuples of a shape).
  bool plan_sig_safe_ = true;
  std::deque<DeferredCheck> deferred_;
  uint64_t update_sequence_ = 0;

  PipelineConfig pipeline_;
  /// Admitted, not yet retired, in admission order (== commit order).
  std::deque<std::unique_ptr<Episode>> inflight_;
  /// Results of retired episodes since the last Drain, admission order.
  std::vector<Result<std::vector<CheckReport>>> pending_results_;
  /// Predicates written by committed episodes while the pipeline was
  /// non-empty; an episode validates against the suffix from its
  /// admission mark. Cleared whenever the pipeline empties.
  std::vector<std::string> commit_writes_;
  /// Bumped on every structural mutation of deferred_; an episode whose
  /// admission epoch is stale speculated against a queue that no longer
  /// exists and must re-run.
  uint64_t deferred_epoch_ = 0;
  /// Consecutive conflicted commits; >= max_conflict_streak trips the
  /// serial fallback below. Reset by any clean commit.
  size_t conflict_streak_ = 0;
  /// Episodes left to admit without speculation before probing again.
  size_t serial_fallback_remaining_ = 0;
  /// Guards Registered::tier2 (the only lazily-built shared state the
  /// speculative phase 1 can write): concurrent episodes may compile the
  /// same artifacts; first insert wins, identical by construction.
  std::mutex tier2_mu_;

  std::unique_ptr<ThreadPool> pool_;

  /// Source of truth for all aggregate statistics. Per-manager, so
  /// concurrent managers (tests, benchmarks) never share counts. site_
  /// holds handles into this registry but only dereferences them on reads,
  /// never in its destructor, so destruction order is harmless.
  obs::MetricsRegistry metrics_;
  // Handles resolved once in InitObservability; hot paths pay only the
  // atomic increment. Indexed by TierIndex where per-tier.
  std::array<obs::Counter*, 5> ctr_resolved_{};
  std::array<obs::Histogram*, 5> hist_check_{};
  obs::Counter* ctr_violations_ = nullptr;
  obs::Counter* ctr_remote_attempts_ = nullptr;
  obs::Counter* ctr_remote_retries_ = nullptr;
  obs::Counter* ctr_remote_failures_ = nullptr;
  obs::Counter* ctr_deferred_ = nullptr;
  obs::Counter* ctr_fast_fails_ = nullptr;
  obs::Counter* ctr_deferred_recovered_ = nullptr;
  obs::Counter* ctr_deferred_violations_ = nullptr;
  obs::Counter* ctr_t3_admitted_ = nullptr;
  obs::Counter* ctr_shed_ = nullptr;
  obs::Counter* ctr_budget_exhausted_ = nullptr;
  obs::Counter* ctr_deferred_dropped_ = nullptr;
  obs::Counter* ctr_sites_recovered_ = nullptr;
  obs::Counter* ctr_cache_revalidated_ = nullptr;
  /// Per-site recovery counters ("manager.recovery.site<k>"), resolved
  /// only for multi-site topologies.
  std::vector<obs::Counter*> ctr_site_recovered_;
  /// Hedged-read counters ("manager.hedge.*"), resolved only when
  /// RemoteCacheConfig::hedge_after > 0 so the default metric catalog is
  /// untouched; handed to the SiteDatabase which does the counting.
  obs::Counter* ctr_hedge_issued_ = nullptr;
  obs::Counter* ctr_hedge_won_ = nullptr;
  obs::Counter* ctr_hedge_wasted_ = nullptr;
  /// Latency-aware shed counter ("manager.latency_shed"), resolved only
  /// when some site runs a non-fixed latency model (latency_aware_).
  obs::Counter* ctr_latency_shed_ = nullptr;
  /// True iff any site's effective cost model draws latency (non-fixed):
  /// the gate on the EWMA-projection shed and its counter.
  bool latency_aware_ = false;
  /// Plan-cache instrumentation, resolved only when the cache is enabled
  /// (every increment site is gated on a cache path, so the handles are
  /// never dereferenced while disabled). Deliberately NOT part of stats():
  /// ManagerStats must stay byte-identical cache on/off.
  obs::Counter* ctr_plan_compiles_ = nullptr;
  obs::Counter* ctr_plan_hits_ = nullptr;
  obs::Counter* ctr_plan_delta_ = nullptr;
  obs::Histogram* hist_plan_compile_ = nullptr;
  obs::Histogram* hist_budget_remaining_ = nullptr;
  obs::Histogram* hist_apply_ = nullptr;
  obs::Histogram* hist_remote_eval_ = nullptr;
  obs::Gauge* gauge_deferred_len_ = nullptr;
  /// Pipeline instrumentation, resolved only when depth > 1 (every
  /// increment site is gated on a pipelined path, so the handles are
  /// never dereferenced at depth 1 — the depth-1 metrics catalog is
  /// byte-identical to the pre-pipeline manager). NOT part of stats().
  obs::Counter* ctr_pipe_admitted_ = nullptr;
  obs::Counter* ctr_pipe_committed_ = nullptr;
  obs::Counter* ctr_pipe_conflicts_ = nullptr;
  obs::Counter* ctr_pipe_retries_ = nullptr;
  obs::Counter* ctr_pipe_unspeculated_ = nullptr;
  obs::Gauge* gauge_pipe_in_flight_ = nullptr;
  obs::Histogram* hist_pipe_commit_wait_ = nullptr;
};

}  // namespace ccpi

#endif  // CCPI_MANAGER_CONSTRAINT_MANAGER_H_
