#ifndef CCPI_MANAGER_VIEW_MAINT_H_
#define CCPI_MANAGER_VIEW_MAINT_H_

#include <string>

#include "datalog/ast.h"
#include "relational/database.h"
#include "updates/update.h"
#include "util/outcome.h"
#include "util/status.h"

namespace ccpi {

/// Application 3 of the paper (Section 2): view maintenance in the style of
/// Tompa–Blakeley and Blakeley–Coburn–Larson — "whether and how updates to
/// D can affect the value of a view V".
///
/// IrrelevantUpdate decides, from the view definition and the update alone
/// (no data), whether the update provably cannot change the view: the
/// rewritten view (V after the update, expressed over the pre-update state)
/// must be contained in V and vice versa. kHolds means the materialized
/// view needs no refresh.
Result<Outcome> IrrelevantUpdate(const Program& view, const Update& u);

/// The reference maintainer: evaluates the view before and after applying
/// `u` to a copy of `db` and reports whether the materialization changed.
/// Used to validate IrrelevantUpdate (an irrelevant update must never
/// change the view on any database).
Result<bool> ViewChanges(const Program& view, const Update& u,
                         const Database& db);

/// How a MaterializedView refresh was resolved — mirroring the paper's
/// information hierarchy applied to views.
enum class ViewRefreshTier {
  kIrrelevant,   // decided from the definition + update, no data touched
  kIncremental,  // delta rules evaluated (only tuples involving the update)
  kFull,         // full recomputation
};

const char* ViewRefreshTierToString(ViewRefreshTier tier);

/// A materialized view maintained incrementally under single-tuple updates
/// (application 3 of the paper; counting-free delta derivation in the
/// style of the cited Ceri–Widom / Blakeley et al. work).
///
/// Refresh policy per update:
///  1. if IrrelevantUpdate proves the view unchanged, do nothing;
///  2. else, for *nonrecursive, negation-free* views, evaluate delta rules:
///     insertions derive new tuples from rules with one occurrence of the
///     updated predicate bound to the new tuple; deletions re-derive the
///     candidate tuples that depended on the removed one;
///  3. otherwise recompute from scratch.
class MaterializedView {
 public:
  /// `view` is a program whose goal predicate defines the view.
  static Result<MaterializedView> Create(Program view, const Database& db);

  const Relation& rows() const { return rows_; }
  const Program& definition() const { return view_; }

  /// Applies `u` to its copy of the base data and refreshes the
  /// materialization; returns which tier resolved the refresh.
  Result<ViewRefreshTier> Apply(const Update& u);

  /// The maintainer's base-data replica (for tests and demos).
  const Database& base() const { return base_; }

 private:
  MaterializedView(Program view, Database base, Relation rows)
      : view_(std::move(view)), base_(std::move(base)), rows_(std::move(rows)) {}

  Result<ViewRefreshTier> RefreshAfter(const Update& u);

  Program view_;
  Database base_;
  Relation rows_{0};
};

}  // namespace ccpi

#endif  // CCPI_MANAGER_VIEW_MAINT_H_
