#include "manager/script.h"

#include <memory>
#include <optional>
#include <sstream>

#include "datalog/parser.h"
#include "manager/constraint_manager.h"
#include "util/strings.h"

namespace ccpi {

namespace {

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

bool EndsWithContinuation(const std::string& line) {
  if (line.empty()) return false;
  char last = line.back();
  if (last == '&' || last == ',') return true;
  return line.size() >= 2 && line.substr(line.size() - 2) == ":-";
}

/// Parses a latency-model spec — "fixed:U", "uniform:LO:HI" or
/// "twopoint:LO:HI:P" — shared by the `site_latency` directive and the
/// --site-latency flag. Microsecond parameters must be >= 1 (a zero or
/// negative latency is a config error, not a free network) and LO <= HI;
/// P is a probability in [0,1].
bool ParseLatencySpec(std::string_view spec, SiteLatencyOverride* out) {
  std::vector<std::string_view> parts;
  while (true) {
    size_t colon = spec.find(':');
    parts.push_back(spec.substr(0, colon));
    if (colon == std::string_view::npos) break;
    spec = spec.substr(colon + 1);
  }
  SiteLatencyOverride o;
  if (parts[0] == "fixed" && parts.size() == 2) {
    o.model = LatencyModel::kFixed;
    if (!ParseUint64(parts[1], &o.fixed_us) || o.fixed_us == 0) return false;
  } else if (parts[0] == "uniform" && parts.size() == 3) {
    o.model = LatencyModel::kUniform;
    if (!ParseUint64(parts[1], &o.lo_us) ||
        !ParseUint64(parts[2], &o.hi_us) || o.lo_us == 0 ||
        o.lo_us > o.hi_us) {
      return false;
    }
  } else if (parts[0] == "twopoint" && parts.size() == 4) {
    o.model = LatencyModel::kTwoPoint;
    if (!ParseUint64(parts[1], &o.lo_us) ||
        !ParseUint64(parts[2], &o.hi_us) || o.lo_us == 0 ||
        o.lo_us > o.hi_us || !ParseProbability(parts[3], &o.slow_share)) {
      return false;
    }
  } else {
    return false;
  }
  *out = o;
  return true;
}

/// Parses "pred(c1, c2, ...)" into a ground atom.
Result<std::pair<std::string, Tuple>> ParseGroundAtom(
    const std::string& text) {
  CCPI_ASSIGN_OR_RETURN(Rule rule, ParseRule(text));
  if (!rule.body.empty()) {
    return Status::InvalidArgument("expected a plain fact, got a rule: " +
                                   text);
  }
  Tuple t;
  t.reserve(rule.head.args.size());
  for (const Term& arg : rule.head.args) {
    if (!arg.is_const()) {
      return Status::InvalidArgument("fact arguments must be constants: " +
                                     text);
    }
    t.push_back(arg.constant());
  }
  return std::make_pair(rule.head.pred, std::move(t));
}

}  // namespace

Result<Script> ParseScript(std::string_view text) {
  Script script;
  std::string current_name;
  std::string current_rules;
  auto flush_constraint = [&]() -> Status {
    if (current_name.empty()) return Status::OK();
    CCPI_ASSIGN_OR_RETURN(Program program, ParseProgram(current_rules));
    if (program.rules.empty()) {
      return Status::InvalidArgument("constraint " + current_name +
                                     " has no rules");
    }
    script.constraints.emplace_back(current_name, std::move(program));
    current_name.clear();
    current_rules.clear();
    return Status::OK();
  };

  std::istringstream in{std::string(text)};
  std::string raw;
  bool continuing = false;
  int line_number = 0;
  while (std::getline(in, raw)) {
    ++line_number;
    size_t comment = raw.find_first_of("#%");
    if (comment != std::string::npos) raw = raw.substr(0, comment);
    std::string line = Trim(raw);
    if (line.empty()) continue;

    // A continuation line of a multi-line rule inside a constraint block.
    if (continuing) {
      current_rules += " " + line + "\n";
      continuing = EndsWithContinuation(line);
      continue;
    }

    std::istringstream ls(line);
    std::string keyword;
    ls >> keyword;
    std::string rest = Trim(line.substr(keyword.size()));
    if (keyword == "local") {
      CCPI_RETURN_IF_ERROR(flush_constraint());
      std::string pred;
      while (ls >> pred) script.local_preds.insert(pred);
    } else if (keyword == "sites") {
      CCPI_RETURN_IF_ERROR(flush_constraint());
      uint64_t n = 0;
      if (!ParseUint64(rest, &n) || n == 0) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_number) +
            ": sites wants a positive integer, got \"" + rest + "\"");
      }
      script.topology.sites = static_cast<size_t>(n);
    } else if (keyword == "site") {
      // "site K p q ..." pins remote predicates p, q to site K.
      CCPI_RETURN_IF_ERROR(flush_constraint());
      std::string index_text;
      ls >> index_text;
      uint64_t index = 0;
      if (!ParseUint64(index_text, &index)) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_number) +
            ": site wants an index then predicates, got \"" + rest + "\"");
      }
      std::string pred;
      size_t pinned = 0;
      while (ls >> pred) {
        script.topology.placement[pred] = static_cast<size_t>(index);
        ++pinned;
      }
      if (pinned == 0) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_number) +
            ": site " + index_text + " pins no predicates");
      }
    } else if (keyword == "site_latency") {
      // "site_latency K SPEC" gives site K its own latency model.
      CCPI_RETURN_IF_ERROR(flush_constraint());
      std::string index_text, spec;
      ls >> index_text >> spec;
      uint64_t index = 0;
      SiteLatencyOverride o;
      if (!ParseUint64(index_text, &index) || spec.empty() ||
          !ParseLatencySpec(spec, &o)) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_number) +
            ": site_latency wants SITE then fixed:U, uniform:LO:HI or "
            "twopoint:LO:HI:P (microseconds >= 1, LO <= HI), got \"" +
            rest + "\"");
      }
      script.topology.site_latency[static_cast<size_t>(index)] = o;
    } else if (keyword == "domain") {
      // "domain NAME S1 S2 ..." declares a correlated failure domain.
      CCPI_RETURN_IF_ERROR(flush_constraint());
      std::string name;
      ls >> name;
      FailureDomain dom;
      dom.name = name;
      std::string member_text;
      while (ls >> member_text) {
        uint64_t m = 0;
        if (!ParseUint64(member_text, &m)) {
          return Status::InvalidArgument(
              "line " + std::to_string(line_number) +
              ": domain wants NAME then member site indices, got \"" +
              rest + "\"");
        }
        dom.members.push_back(static_cast<size_t>(m));
      }
      if (name.empty() || dom.members.empty()) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_number) +
            ": domain wants NAME then at least one member site, got \"" +
            rest + "\"");
      }
      script.topology.domains.push_back(std::move(dom));
    } else if (keyword == "domain_outage") {
      // "domain_outage NAME A B" darkens every member of NAME for the
      // half-open trip window [A, B), same convention as --fault-outage.
      // The domain must be declared above.
      CCPI_RETURN_IF_ERROR(flush_constraint());
      std::string name, begin_text, end_text;
      ls >> name >> begin_text >> end_text;
      uint64_t begin = 0, end = 0;
      if (name.empty() || !ParseUint64(begin_text, &begin) ||
          !ParseUint64(end_text, &end) || begin > end) {
        // An inverted window would be a silent no-op, not an outage.
        return Status::InvalidArgument(
            "line " + std::to_string(line_number) +
            ": domain_outage wants NAME A B with trips A <= B, got \"" +
            rest + "\"");
      }
      bool found = false;
      for (FailureDomain& dom : script.topology.domains) {
        if (dom.name != name) continue;
        dom.outages.push_back(OutageWindow{begin, end});
        found = true;
        break;
      }
      if (!found) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_number) +
            ": domain_outage names undefined domain \"" + name + "\"");
      }
    } else if (keyword == "hedge_after") {
      CCPI_RETURN_IF_ERROR(flush_constraint());
      uint64_t n = 0;
      if (!ParseUint64(rest, &n)) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_number) +
            ": hedge_after wants a non-negative EWMA multiple (0 = off), "
            "got \"" + rest + "\"");
      }
      script.hedge_after = n;
    } else if (keyword == "plan_cache") {
      CCPI_RETURN_IF_ERROR(flush_constraint());
      if (rest == "on") {
        script.plan_cache = true;
      } else if (rest == "off") {
        script.plan_cache = false;
      } else {
        return Status::InvalidArgument(
            "line " + std::to_string(line_number) +
            ": plan_cache wants on or off, got \"" + rest + "\"");
      }
    } else if (keyword == "pipeline") {
      CCPI_RETURN_IF_ERROR(flush_constraint());
      uint64_t n = 0;
      if (!ParseUint64(rest, &n) || n == 0) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_number) +
            ": pipeline wants a positive depth, got \"" + rest + "\"");
      }
      script.pipeline_depth = static_cast<size_t>(n);
    } else if (keyword == "constraint") {
      CCPI_RETURN_IF_ERROR(flush_constraint());
      if (rest.empty()) {
        return Status::InvalidArgument("line " + std::to_string(line_number) +
                                       ": constraint needs a name");
      }
      current_name = rest;
    } else if (keyword == "fact") {
      CCPI_RETURN_IF_ERROR(flush_constraint());
      CCPI_ASSIGN_OR_RETURN(auto fact, ParseGroundAtom(rest));
      CCPI_RETURN_IF_ERROR(
          script.initial.Insert(fact.first, std::move(fact.second)));
    } else if (keyword == "insert" || keyword == "delete") {
      CCPI_RETURN_IF_ERROR(flush_constraint());
      CCPI_ASSIGN_OR_RETURN(auto atom, ParseGroundAtom(rest));
      script.updates.push_back(keyword == "insert"
                                   ? Update::Insert(atom.first, atom.second)
                                   : Update::Delete(atom.first, atom.second));
    } else {
      // A rule line of the current constraint.
      if (current_name.empty()) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_number) +
            ": rule outside a constraint block: " + line);
      }
      current_rules += line + "\n";
      continuing = EndsWithContinuation(line);
    }
  }
  CCPI_RETURN_IF_ERROR(flush_constraint());
  for (const auto& [pred, s] : script.topology.placement) {
    if (s >= script.topology.sites) {
      return Status::InvalidArgument(
          "site " + std::to_string(s) + " pins predicate " + pred +
          " but the script declares only " +
          std::to_string(script.topology.sites) + " site(s)");
    }
  }
  // Directive order is free (`sites` may follow `domain`), so domain and
  // latency site indices are checked here, like placement above.
  std::set<std::string> domain_names;
  std::set<size_t> claimed;
  for (const FailureDomain& dom : script.topology.domains) {
    if (!domain_names.insert(dom.name).second) {
      return Status::InvalidArgument("domain \"" + dom.name +
                                     "\" is declared twice");
    }
    for (size_t member : dom.members) {
      if (member >= script.topology.sites) {
        return Status::InvalidArgument(
            "domain \"" + dom.name + "\" claims site " +
            std::to_string(member) + " but the script declares only " +
            std::to_string(script.topology.sites) + " site(s)");
      }
      if (!claimed.insert(member).second) {
        return Status::InvalidArgument(
            "site " + std::to_string(member) +
            " is a member of two failure domains");
      }
    }
  }
  for (const auto& [site, o] : script.topology.site_latency) {
    (void)o;
    if (site >= script.topology.sites) {
      return Status::InvalidArgument(
          "site_latency names site " + std::to_string(site) +
          " but the script declares only " +
          std::to_string(script.topology.sites) + " site(s)");
    }
  }
  return script;
}

namespace {

/// "--name=value" accessor: if `arg` starts with "--<name>=", returns the
/// value part; otherwise nullopt.
std::optional<std::string_view> FlagValue(std::string_view arg,
                                          std::string_view name) {
  if (arg.size() < name.size() + 3 || arg.substr(0, 2) != "--") {
    return std::nullopt;
  }
  if (arg.substr(2, name.size()) != name) return std::nullopt;
  if (arg[2 + name.size()] != '=') return std::nullopt;
  return arg.substr(name.size() + 3);
}

Status BadFlag(std::string_view name, std::string_view wants,
               std::string_view got) {
  return Status::InvalidArgument("--" + std::string(name) + " wants " +
                                 std::string(wants) + ", got \"" +
                                 std::string(got) + "\"");
}

/// Splits "S:rest" into a site index and the remainder; the --site-fault-*
/// flags all use this prefix.
bool SplitSitePrefix(std::string_view value, size_t* site,
                     std::string_view* rest) {
  size_t colon = value.find(':');
  if (colon == std::string_view::npos) return false;
  uint64_t s = 0;
  if (!ParseUint64(value.substr(0, colon), &s)) return false;
  *site = static_cast<size_t>(s);
  *rest = value.substr(colon + 1);
  return true;
}

}  // namespace

Status ApplyScriptFlag(std::string_view arg, ScriptOptions* options,
                       bool* matched) {
  *matched = true;
  if (auto v = FlagValue(arg, "threads")) {
    uint64_t n = 0;
    if (!ParseUint64(*v, &n)) {
      return BadFlag("threads", "a non-negative integer", *v);
    }
    options->parallel.threads = static_cast<size_t>(n);
    return Status::OK();
  }
  if (auto v = FlagValue(arg, "remote-cache")) {
    if (*v == "on") {
      options->remote_cache.enabled = true;
    } else if (*v == "off") {
      options->remote_cache.enabled = false;
    } else {
      return BadFlag("remote-cache", "on or off", *v);
    }
    return Status::OK();
  }
  if (auto v = FlagValue(arg, "plan-cache")) {
    if (*v == "on") {
      options->plan_cache.enabled = true;
    } else if (*v == "off") {
      options->plan_cache.enabled = false;
    } else {
      return BadFlag("plan-cache", "on or off", *v);
    }
    options->plan_cache_from_flags = true;
    return Status::OK();
  }
  if (auto v = FlagValue(arg, "columnar")) {
    if (*v == "on") {
      options->columnar = true;
    } else if (*v == "off") {
      options->columnar = false;
    } else {
      return BadFlag("columnar", "on or off", *v);
    }
    return Status::OK();
  }
  if (auto v = FlagValue(arg, "pipeline-depth")) {
    uint64_t n = 0;
    if (!ParseUint64(*v, &n) || n == 0) {
      return BadFlag("pipeline-depth", "a positive integer", *v);
    }
    options->pipeline.depth = static_cast<size_t>(n);
    options->pipeline_from_flags = true;
    return Status::OK();
  }
  if (auto v = FlagValue(arg, "fault-rate")) {
    double rate = 0;
    if (!ParseProbability(*v, &rate)) {
      return BadFlag("fault-rate", "a probability in [0,1]", *v);
    }
    options->faults.transient_rate = rate;
    options->enable_faults = true;
    return Status::OK();
  }
  if (auto v = FlagValue(arg, "fault-timeout-rate")) {
    double rate = 0;
    if (!ParseProbability(*v, &rate)) {
      return BadFlag("fault-timeout-rate", "a probability in [0,1]", *v);
    }
    options->faults.timeout_rate = rate;
    options->enable_faults = true;
    return Status::OK();
  }
  if (auto v = FlagValue(arg, "fault-seed")) {
    uint64_t n = 0;
    if (!ParseUint64(*v, &n)) {
      return BadFlag("fault-seed", "a non-negative integer", *v);
    }
    options->faults.seed = n;
    return Status::OK();
  }
  if (auto v = FlagValue(arg, "fault-outage")) {
    size_t colon = v->find(':');
    uint64_t begin = 0, end = 0;
    if (colon == std::string_view::npos ||
        !ParseUint64(v->substr(0, colon), &begin) ||
        !ParseUint64(v->substr(colon + 1), &end) || begin > end) {
      // An inverted window would be a silent no-op, not an outage.
      return BadFlag("fault-outage", "A:B with integer trips, A <= B", *v);
    }
    options->faults.outages.push_back(OutageWindow{begin, end});
    options->enable_faults = true;
    return Status::OK();
  }
  if (auto v = FlagValue(arg, "deadline-ms")) {
    uint64_t n = 0;
    if (!ParseUint64(*v, &n)) {
      return BadFlag("deadline-ms", "a non-negative integer (0 = none)", *v);
    }
    options->budget.per_episode.deadline_ms = n;
    return Status::OK();
  }
  if (auto v = FlagValue(arg, "max-fixpoint-rounds")) {
    uint64_t n = 0;
    if (!ParseUint64(*v, &n)) {
      return BadFlag("max-fixpoint-rounds",
                     "a non-negative integer (0 = unlimited)", *v);
    }
    options->budget.per_check.max_fixpoint_rounds = n;
    return Status::OK();
  }
  if (auto v = FlagValue(arg, "max-derived-tuples")) {
    uint64_t n = 0;
    if (!ParseUint64(*v, &n)) {
      return BadFlag("max-derived-tuples",
                     "a non-negative integer (0 = unlimited)", *v);
    }
    options->budget.per_check.max_derived_tuples = n;
    return Status::OK();
  }
  if (auto v = FlagValue(arg, "deferred-queue-cap")) {
    uint64_t n = 0;
    if (!ParseUint64(*v, &n)) {
      return BadFlag("deferred-queue-cap",
                     "a non-negative integer (0 = unbounded)", *v);
    }
    options->budget.deferred_queue_cap = static_cast<size_t>(n);
    return Status::OK();
  }
  if (auto v = FlagValue(arg, "overflow-policy")) {
    if (*v == "reject-update") {
      options->budget.overflow = OverflowPolicy::kRejectUpdate;
    } else if (*v == "shed-oldest") {
      options->budget.overflow = OverflowPolicy::kShedOldest;
    } else if (*v == "block-recheck") {
      options->budget.overflow = OverflowPolicy::kBlockRecheck;
    } else {
      return BadFlag("overflow-policy",
                     "reject-update, shed-oldest or block-recheck", *v);
    }
    return Status::OK();
  }
  if (auto v = FlagValue(arg, "sites")) {
    uint64_t n = 0;
    if (!ParseUint64(*v, &n) || n == 0) {
      return BadFlag("sites", "a positive integer", *v);
    }
    options->topology.sites = static_cast<size_t>(n);
    options->topology_from_flags = true;
    return Status::OK();
  }
  if (auto v = FlagValue(arg, "placement")) {
    // "p:0,q:1" — comma-separated predicate:site pairs.
    std::string_view remaining = *v;
    while (!remaining.empty()) {
      size_t comma = remaining.find(',');
      std::string_view pair = remaining.substr(0, comma);
      remaining = comma == std::string_view::npos
                      ? std::string_view{}
                      : remaining.substr(comma + 1);
      size_t colon = pair.find(':');
      uint64_t s = 0;
      if (colon == std::string_view::npos || colon == 0 ||
          !ParseUint64(pair.substr(colon + 1), &s)) {
        return BadFlag("placement", "pred:site pairs like p:0,q:1", *v);
      }
      options->topology.placement[std::string(pair.substr(0, colon))] =
          static_cast<size_t>(s);
    }
    return Status::OK();
  }
  if (auto v = FlagValue(arg, "site-fault-rate")) {
    size_t site = 0;
    std::string_view rest;
    double rate = 0;
    if (!SplitSitePrefix(*v, &site, &rest) ||
        !ParseProbability(rest, &rate)) {
      return BadFlag("site-fault-rate", "SITE:PROBABILITY", *v);
    }
    options->site_faults[site].transient_rate = rate;
    options->enable_faults = true;
    return Status::OK();
  }
  if (auto v = FlagValue(arg, "site-fault-timeout-rate")) {
    size_t site = 0;
    std::string_view rest;
    double rate = 0;
    if (!SplitSitePrefix(*v, &site, &rest) ||
        !ParseProbability(rest, &rate)) {
      return BadFlag("site-fault-timeout-rate", "SITE:PROBABILITY", *v);
    }
    options->site_faults[site].timeout_rate = rate;
    options->enable_faults = true;
    return Status::OK();
  }
  if (auto v = FlagValue(arg, "site-fault-seed")) {
    size_t site = 0;
    std::string_view rest;
    uint64_t n = 0;
    if (!SplitSitePrefix(*v, &site, &rest) || !ParseUint64(rest, &n)) {
      return BadFlag("site-fault-seed", "SITE:SEED", *v);
    }
    options->site_faults[site].seed = n;
    options->enable_faults = true;
    return Status::OK();
  }
  if (auto v = FlagValue(arg, "site-fault-outage")) {
    size_t site = 0;
    std::string_view rest;
    if (!SplitSitePrefix(*v, &site, &rest)) {
      return BadFlag("site-fault-outage", "SITE:A:B with trips A <= B", *v);
    }
    size_t colon = rest.find(':');
    uint64_t begin = 0, end = 0;
    if (colon == std::string_view::npos ||
        !ParseUint64(rest.substr(0, colon), &begin) ||
        !ParseUint64(rest.substr(colon + 1), &end) || begin > end) {
      return BadFlag("site-fault-outage", "SITE:A:B with trips A <= B", *v);
    }
    options->site_faults[site].outages.push_back(OutageWindow{begin, end});
    options->enable_faults = true;
    return Status::OK();
  }
  if (auto v = FlagValue(arg, "site-latency")) {
    size_t site = 0;
    std::string_view rest;
    SiteLatencyOverride o;
    if (!SplitSitePrefix(*v, &site, &rest) || !ParseLatencySpec(rest, &o)) {
      return BadFlag("site-latency",
                     "SITE:fixed:U, SITE:uniform:LO:HI or "
                     "SITE:twopoint:LO:HI:P (microseconds >= 1, LO <= HI)",
                     *v);
    }
    options->topology.site_latency[site] = o;
    options->site_latency_from_flags = true;
    return Status::OK();
  }
  if (auto v = FlagValue(arg, "hedge-after")) {
    uint64_t n = 0;
    if (!ParseUint64(*v, &n)) {
      return BadFlag("hedge-after", "a non-negative EWMA multiple (0 = off)",
                     *v);
    }
    options->remote_cache.hedge_after = n;
    options->hedge_from_flags = true;
    return Status::OK();
  }
  if (auto v = FlagValue(arg, "domains")) {
    // "NAME:S0+S1,NAME2:S2" — comma-separated domains, '+'-separated
    // member sites. Replaces the script's `domain` directives wholesale.
    std::vector<FailureDomain> domains;
    std::string_view remaining = *v;
    while (!remaining.empty()) {
      size_t comma = remaining.find(',');
      std::string_view spec = remaining.substr(0, comma);
      remaining = comma == std::string_view::npos
                      ? std::string_view{}
                      : remaining.substr(comma + 1);
      size_t colon = spec.find(':');
      if (colon == std::string_view::npos || colon == 0) {
        return BadFlag("domains", "NAME:S0+S1,... domain specs", *v);
      }
      FailureDomain dom;
      dom.name = std::string(spec.substr(0, colon));
      std::string_view members = spec.substr(colon + 1);
      while (!members.empty()) {
        size_t plus = members.find('+');
        uint64_t m = 0;
        if (!ParseUint64(members.substr(0, plus), &m)) {
          return BadFlag("domains", "NAME:S0+S1,... domain specs", *v);
        }
        dom.members.push_back(static_cast<size_t>(m));
        members = plus == std::string_view::npos ? std::string_view{}
                                                 : members.substr(plus + 1);
      }
      if (dom.members.empty()) {
        return BadFlag("domains", "NAME:S0+S1,... domain specs", *v);
      }
      domains.push_back(std::move(dom));
    }
    if (domains.empty()) {
      return BadFlag("domains", "NAME:S0+S1,... domain specs", *v);
    }
    options->topology.domains = std::move(domains);
    options->domains_from_flags = true;
    return Status::OK();
  }
  if (auto v = FlagValue(arg, "domain-outage")) {
    size_t colon = v->find(':');
    uint64_t begin = 0, end = 0;
    if (colon == std::string_view::npos || colon == 0) {
      return BadFlag("domain-outage", "NAME:A:B with trips A <= B", *v);
    }
    std::string_view rest = v->substr(colon + 1);
    size_t colon2 = rest.find(':');
    if (colon2 == std::string_view::npos ||
        !ParseUint64(rest.substr(0, colon2), &begin) ||
        !ParseUint64(rest.substr(colon2 + 1), &end) || begin > end) {
      // An inverted window would be a silent no-op, not an outage.
      return BadFlag("domain-outage", "NAME:A:B with trips A <= B", *v);
    }
    options->domain_outages[std::string(v->substr(0, colon))].push_back(
        OutageWindow{begin, end});
    return Status::OK();
  }
  if (arg == "--fault-reject") {
    options->resilience.on_unreachable = DeferredPolicy::kReject;
    return Status::OK();
  }
  if (arg == "--stats") {
    options->print_stats = true;
    return Status::OK();
  }
  *matched = false;
  return Status::OK();
}

Status ValidateScriptOptions(const ScriptOptions& options) {
  if (options.faults.transient_rate + options.faults.timeout_rate > 1.0) {
    return Status::InvalidArgument(
        "--fault-rate and --fault-timeout-rate must sum to <= 1");
  }
  for (const auto& [site, o] : options.site_faults) {
    double transient =
        o.transient_rate.value_or(options.faults.transient_rate);
    double timeout = o.timeout_rate.value_or(options.faults.timeout_rate);
    if (transient + timeout > 1.0) {
      return Status::InvalidArgument(
          "site " + std::to_string(site) +
          ": effective fault rates must sum to <= 1");
    }
  }
  if (options.topology_from_flags) {
    for (const auto& [pred, s] : options.topology.placement) {
      if (s >= options.topology.sites) {
        return Status::InvalidArgument(
            "--placement pins " + pred + " to site " + std::to_string(s) +
            " but --sites=" + std::to_string(options.topology.sites));
      }
    }
    for (const auto& [site, o] : options.site_faults) {
      (void)o;
      if (site >= options.topology.sites) {
        return Status::InvalidArgument(
            "--site-fault-* names site " + std::to_string(site) +
            " but --sites=" + std::to_string(options.topology.sites));
      }
    }
    for (const auto& [site, o] : options.topology.site_latency) {
      (void)o;
      if (site >= options.topology.sites) {
        return Status::InvalidArgument(
            "--site-latency names site " + std::to_string(site) +
            " but --sites=" + std::to_string(options.topology.sites));
      }
    }
  }
  std::set<std::string> domain_names;
  std::set<size_t> claimed;
  for (const FailureDomain& dom : options.topology.domains) {
    if (!domain_names.insert(dom.name).second) {
      return Status::InvalidArgument("--domains defines domain \"" +
                                     dom.name + "\" twice");
    }
    for (size_t member : dom.members) {
      if (!claimed.insert(member).second) {
        return Status::InvalidArgument(
            "--domains puts site " + std::to_string(member) +
            " in two failure domains");
      }
      if (options.topology_from_flags && member >= options.topology.sites) {
        return Status::InvalidArgument(
            "--domains claims site " + std::to_string(member) +
            " but --sites=" + std::to_string(options.topology.sites));
      }
    }
  }
  if (options.domains_from_flags) {
    for (const auto& [name, windows] : options.domain_outages) {
      (void)windows;
      if (domain_names.find(name) == domain_names.end()) {
        return Status::InvalidArgument(
            "--domain-outage names domain \"" + name +
            "\" but --domains does not define it");
      }
    }
  }
  return Status::OK();
}

Result<ScriptReport> RunScript(const Script& script, const CostModel& costs) {
  ScriptOptions options;
  options.costs = costs;
  return RunScript(script, options);
}

Result<ScriptReport> RunScript(const Script& script,
                               const ScriptOptions& options) {
  const CostModel& costs = options.costs;
  // Effective topology: the script's directives, overridden field-wise by
  // the command line (--sites replaces the count; --placement entries win
  // per predicate).
  TopologyConfig topology = script.topology;
  if (options.topology_from_flags) topology.sites = options.topology.sites;
  for (const auto& [pred, s] : options.topology.placement) {
    topology.placement[pred] = s;
  }
  for (const auto& [pred, s] : topology.placement) {
    if (s >= topology.sites) {
      return Status::InvalidArgument(
          "placement pins " + pred + " to site " + std::to_string(s) +
          " but the topology has " + std::to_string(topology.sites) +
          " site(s)");
    }
  }
  for (const auto& [site, o] : options.site_faults) {
    (void)o;
    if (site >= topology.sites) {
      return Status::InvalidArgument(
          "--site-fault-* names site " + std::to_string(site) +
          " but the topology has " + std::to_string(topology.sites) +
          " site(s)");
    }
  }
  // Per-site latency models: flag entries override the script's
  // site-wise. Failure domains: --domains replaces the script's
  // wholesale, then --domain-outage windows attach to the effective
  // domains by name.
  for (const auto& [site, o] : options.topology.site_latency) {
    topology.site_latency[site] = o;
  }
  if (options.domains_from_flags) topology.domains = options.topology.domains;
  for (const auto& [name, windows] : options.domain_outages) {
    FailureDomain* dom = nullptr;
    for (FailureDomain& d : topology.domains) {
      if (d.name == name) {
        dom = &d;
        break;
      }
    }
    if (dom == nullptr) {
      return Status::InvalidArgument(
          "--domain-outage names domain \"" + name +
          "\" but the effective topology does not define it");
    }
    dom->outages.insert(dom->outages.end(), windows.begin(), windows.end());
  }
  // Re-validate the merged topology (script domains may now pair with
  // --sites, or vice versa) so a bad combination is a graceful error,
  // not a Topology-constructor CHECK failure.
  {
    std::set<std::string> names;
    std::set<size_t> claimed;
    for (const FailureDomain& dom : topology.domains) {
      if (!names.insert(dom.name).second) {
        return Status::InvalidArgument("failure domain \"" + dom.name +
                                       "\" is defined twice");
      }
      for (size_t member : dom.members) {
        if (member >= topology.sites) {
          return Status::InvalidArgument(
              "failure domain \"" + dom.name + "\" claims site " +
              std::to_string(member) + " but the topology has " +
              std::to_string(topology.sites) + " site(s)");
        }
        if (!claimed.insert(member).second) {
          return Status::InvalidArgument(
              "site " + std::to_string(member) +
              " is a member of two failure domains");
        }
      }
    }
  }
  for (const auto& [site, o] : topology.site_latency) {
    (void)o;
    if (site >= topology.sites) {
      return Status::InvalidArgument(
          "site_latency names site " + std::to_string(site) +
          " but the topology has " + std::to_string(topology.sites) +
          " site(s)");
    }
  }

  // Effective plan-cache switch: an explicit --plan-cache flag wins over
  // the script's own directive, which wins over the default (on).
  PlanCacheConfig plan_cache = options.plan_cache;
  if (!options.plan_cache_from_flags && script.plan_cache.has_value()) {
    plan_cache.enabled = *script.plan_cache;
  }

  // Effective pipeline depth: an explicit --pipeline-depth flag wins over
  // the script's own `pipeline` directive, which wins over the default
  // (1 = serial).
  PipelineConfig pipeline = options.pipeline;
  if (!options.pipeline_from_flags && script.pipeline_depth.has_value()) {
    pipeline.depth = *script.pipeline_depth;
  }

  // Effective hedging threshold: an explicit --hedge-after flag wins over
  // the script's own `hedge_after` directive, which wins over the default
  // (0 = off).
  RemoteCacheConfig remote_cache = options.remote_cache;
  if (!options.hedge_from_flags && script.hedge_after.has_value()) {
    remote_cache.hedge_after = *script.hedge_after;
  }

  // Columnar read path: a process-wide switch on Relation, applied before
  // the manager freezes anything. Semantically invisible (byte-identical
  // reports either way); off forces every evaluator down the
  // row-at-a-time path.
  Relation::SetColumnarEnabled(options.columnar);

  ConstraintManager mgr(script.local_preds, costs, options.resilience,
                        options.parallel, remote_cache,
                        options.budget, topology, plan_cache, pipeline);
  // Correlated failure domains ride the per-site injectors: each domain's
  // outage windows are copied to every member site, so the whole domain
  // goes dark (and recovers) together. Any expanded window arms fault
  // injection even without --fault-* flags.
  std::vector<std::vector<OutageWindow>> domain_windows =
      ExpandDomainOutages(topology);
  bool any_domain_outage = false;
  for (const std::vector<OutageWindow>& windows : domain_windows) {
    if (!windows.empty()) any_domain_outage = true;
  }
  // One injector per site, each with its own schedule. Site 0 inherits
  // the base config (and seed) verbatim — a 1-site faulted run is
  // bit-identical to the pre-topology tool — while site s>0 derives
  // seed + s * golden-ratio so sites fail independently unless a
  // --site-fault-seed pins them together.
  std::vector<std::unique_ptr<FaultInjector>> injectors;
  if (options.enable_faults || any_domain_outage) {
    for (size_t s = 0; s < topology.sites; ++s) {
      FaultConfig cfg = options.faults;
      if (s > 0) cfg.seed = cfg.seed + s * 0x9e3779b97f4a7c15ull;
      auto it = options.site_faults.find(s);
      if (it != options.site_faults.end()) {
        const SiteFaultOverride& o = it->second;
        if (o.transient_rate) cfg.transient_rate = *o.transient_rate;
        if (o.timeout_rate) cfg.timeout_rate = *o.timeout_rate;
        if (o.seed) cfg.seed = *o.seed;
        cfg.outages.insert(cfg.outages.end(), o.outages.begin(),
                           o.outages.end());
      }
      if (s < domain_windows.size()) {
        cfg.outages.insert(cfg.outages.end(), domain_windows[s].begin(),
                           domain_windows[s].end());
      }
      injectors.push_back(std::make_unique<FaultInjector>(cfg));
      mgr.site().set_site_fault_injector(s, injectors.back().get());
    }
  }
  std::ostringstream out;
  for (const auto& [name, program] : script.constraints) {
    CCPI_ASSIGN_OR_RETURN(bool subsumed, mgr.AddConstraint(name, program));
    out << "constraint " << name
        << (subsumed ? " (redundant: subsumed by earlier constraints)" : "")
        << "\n";
  }
  // Initial facts are installed without checking (the paper's standing
  // assumption is that constraints hold before the first update).
  for (const std::string& pred : script.initial.PredicateNames()) {
    // Get returns the stored relation whatever arity hint is passed.
    const Relation& rel = script.initial.Get(pred, 0);
    for (const Tuple& t : rel.rows()) {
      CCPI_RETURN_IF_ERROR(mgr.site().db().Insert(pred, t));
    }
  }

  bool reject_on_defer =
      options.resilience.on_unreachable == DeferredPolicy::kReject;
  ScriptReport report;
  auto log_update = [&](const Update& u,
                        const std::vector<CheckReport>& checks) {
    bool rejected = false;
    bool deferred = false;
    bool overflow = false;
    std::string detail;
    for (const CheckReport& c : checks) {
      if (c.outcome == Outcome::kViolated) {
        rejected = true;
        detail += " violates:" + c.constraint + "(" + TierToString(c.tier) +
                  ")";
      } else if (c.outcome == Outcome::kDeferred) {
        deferred = true;
        overflow = overflow || c.queue_overflow;
        // A budget-shed check reads "shed:", an unreachable-site deferral
        // "deferred:" — unbudgeted runs can never print the former.
        detail += (c.reason == StatusCode::kResourceExhausted ? " shed:"
                                                              : " deferred:") +
                  c.constraint;
      }
    }
    bool refused = deferred && (reject_on_defer || overflow);
    const char* verb = rejected   ? "REJECT "
                       : !deferred ? "apply  "
                       : refused   ? "REFUSE "
                                   : "DEFER  ";
    out << verb << u.ToString() << detail << "\n";
    if (deferred) ++report.updates_deferred;
    if (rejected || refused) {
      ++report.updates_rejected;
    } else {
      ++report.updates_applied;
    }
  };
  if (pipeline.depth > 1) {
    // Pipelined drive: admit the whole stream, then read results back in
    // admission order. Commits are serialized inside the manager, so the
    // verb lines below are byte-identical to the serial loop; the first
    // errored result aborts the run exactly where the serial
    // ASSIGN_OR_RETURN would have.
    for (const Update& u : script.updates) mgr.ApplyUpdateAsync(u);
    std::vector<Result<std::vector<CheckReport>>> results = mgr.Drain();
    for (size_t i = 0; i < results.size(); ++i) {
      CCPI_RETURN_IF_ERROR(results[i].status());
      log_update(script.updates[i], *results[i]);
    }
  } else {
    for (const Update& u : script.updates) {
      CCPI_ASSIGN_OR_RETURN(std::vector<CheckReport> checks,
                            mgr.ApplyUpdate(u));
      log_update(u, checks);
    }
  }

  // Shutdown drain: give the deferred queue a last chance to resolve (the
  // outage may have ended after the final update). Simulated time is free
  // at shutdown, so wait out the breaker cooldown between rounds; stop
  // when a round makes no progress (the site is still unreachable).
  while (!mgr.deferred_queue().empty()) {
    mgr.TickBreaker(options.resilience.breaker.cooldown_ticks + 1);
    CCPI_ASSIGN_OR_RETURN(std::vector<DeferredResolution> late,
                          mgr.RecheckDeferred());
    if (late.empty()) break;
    for (const DeferredResolution& r : late) {
      out << "recheck " << r.check.update.ToString() << " "
          << r.check.constraint << ": " << OutcomeToString(r.outcome)
          << (r.rolled_back ? " (rolled back)" : "") << "\n";
    }
  }
  for (const DeferredCheck& d : mgr.deferred_queue()) {
    out << "PENDING " << d.update.ToString() << " " << d.constraint
        << " (remote site never answered)\n";
  }
  const ManagerStats stats = mgr.stats();
  report.deferred_recovered = stats.deferred_recovered;
  report.deferred_violations = stats.deferred_violations;
  report.deferred_pending = mgr.deferred_queue().size();
  report.violations = stats.violations;
  report.budget_armed =
      options.budget.armed() || options.budget.deferred_queue_cap != 0;
  report.shed_checks = stats.shed_checks;
  report.budget_exhausted = stats.budget_exhausted;
  report.deferred_dropped = stats.deferred_dropped;
  report.sites_recovered = stats.sites_recovered;
  report.cache_revalidated = stats.cache_revalidated;
  report.hedges_issued = stats.hedges_issued;
  report.hedges_won = stats.hedges_won;
  report.hedges_wasted = stats.hedges_wasted;
  report.latency_shed = stats.latency_shed;

  std::ostringstream summary;
  summary << "---\n";
  for (const auto& [tier, count] : stats.resolved_by) {
    summary << "tier " << TierToString(tier) << ": " << count << " checks\n";
  }
  const AccessStats& access = stats.access;
  summary << "access: " << access.local_tuples << " local tuples, "
          << access.remote_tuples << " remote tuples in "
          << access.remote_trips << " trips (cost " << access.Cost(costs)
          << ")\n";
  if (options.remote_cache.enabled) {
    summary << "cache: " << access.cache_hits << " remote reads served ("
            << access.cached_tuples << " cached tuples)\n";
  }
  if (plan_cache.enabled && options.print_stats) {
    // Diagnostics only: plan.* counters live outside ManagerStats, so the
    // report proper stays byte-identical cache on/off; this line exists
    // only when the cache does.
    summary << "plans: " << mgr.metrics().GetCounter("plan.compiles")->value()
            << " compiles, " << mgr.metrics().GetCounter("plan.hits")->value()
            << " hits, "
            << mgr.metrics().GetCounter("plan.delta_tuples")->value()
            << " delta bindings\n";
  }
  if (options.print_stats) {
    summary << "remote: " << stats.remote_attempts << " attempts, "
            << stats.remote_retries << " retries, " << stats.remote_failures
            << " failed episodes, " << access.remote_failures
            << " failed trips\n";
    summary << "deferred: " << stats.deferred << " checks ("
            << stats.breaker_fast_fails << " breaker fast-fails), "
            << stats.deferred_recovered << " recovered, "
            << stats.deferred_violations << " late violations, "
            << report.deferred_pending << " pending\n";
    summary << "breaker: " << CircuitStateToString(mgr.breaker().state())
            << " (opened " << mgr.breaker().times_opened() << "x)\n";
    if (mgr.sites() > 1) {
      for (size_t s = 0; s < mgr.sites(); ++s) {
        const AccessStats& ss = mgr.site().site_stats(s);
        const CircuitBreaker& b = mgr.site_breaker(s);
        summary << "site" << s << ": breaker "
                << CircuitStateToString(b.state()) << " (opened "
                << b.times_opened() << "x), " << ss.remote_trips
                << " trips, " << ss.remote_failures << " failed, "
                << ss.cache_hits << " cache hits\n";
      }
      summary << "recovery: " << stats.sites_recovered
              << " site recoveries, " << stats.cache_revalidated
              << " cache entries revalidated\n";
    }
    // The hedge and latency lines exist only when their feature does, so
    // a default-config --stats block is byte-identical to earlier tools.
    if (remote_cache.hedge_after > 0) {
      summary << "hedge: " << stats.hedges_issued << " issued, "
              << stats.hedges_won << " won, " << stats.hedges_wasted
              << " wasted\n";
    }
    bool latency_models = costs.latency_model != LatencyModel::kFixed;
    for (const auto& [site, o] : topology.site_latency) {
      (void)site;
      if (o.model != LatencyModel::kFixed) latency_models = true;
    }
    if (latency_models) {
      summary << "latency: " << stats.latency_shed
              << " checks shed by EWMA projection\n";
    }
    if (report.budget_armed) {
      summary << "budget: " << stats.t3_admitted << " admitted, "
              << stats.shed_checks << " shed, " << stats.budget_exhausted
              << " exhausted, " << stats.deferred_dropped << " dropped\n";
    }
  }
  if (options.collect_metrics) {
    report.metrics_json = mgr.metrics().ToJson();
  }
  report.log_text = out.str();
  report.summary_text = summary.str();
  report.text = report.log_text + report.summary_text;
  return report;
}

}  // namespace ccpi
