#include "manager/script.h"

#include <sstream>

#include "datalog/parser.h"
#include "manager/constraint_manager.h"

namespace ccpi {

namespace {

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

bool EndsWithContinuation(const std::string& line) {
  if (line.empty()) return false;
  char last = line.back();
  if (last == '&' || last == ',') return true;
  return line.size() >= 2 && line.substr(line.size() - 2) == ":-";
}

/// Parses "pred(c1, c2, ...)" into a ground atom.
Result<std::pair<std::string, Tuple>> ParseGroundAtom(
    const std::string& text) {
  CCPI_ASSIGN_OR_RETURN(Rule rule, ParseRule(text));
  if (!rule.body.empty()) {
    return Status::InvalidArgument("expected a plain fact, got a rule: " +
                                   text);
  }
  Tuple t;
  t.reserve(rule.head.args.size());
  for (const Term& arg : rule.head.args) {
    if (!arg.is_const()) {
      return Status::InvalidArgument("fact arguments must be constants: " +
                                     text);
    }
    t.push_back(arg.constant());
  }
  return std::make_pair(rule.head.pred, std::move(t));
}

}  // namespace

Result<Script> ParseScript(std::string_view text) {
  Script script;
  std::string current_name;
  std::string current_rules;
  auto flush_constraint = [&]() -> Status {
    if (current_name.empty()) return Status::OK();
    CCPI_ASSIGN_OR_RETURN(Program program, ParseProgram(current_rules));
    if (program.rules.empty()) {
      return Status::InvalidArgument("constraint " + current_name +
                                     " has no rules");
    }
    script.constraints.emplace_back(current_name, std::move(program));
    current_name.clear();
    current_rules.clear();
    return Status::OK();
  };

  std::istringstream in{std::string(text)};
  std::string raw;
  bool continuing = false;
  int line_number = 0;
  while (std::getline(in, raw)) {
    ++line_number;
    size_t comment = raw.find_first_of("#%");
    if (comment != std::string::npos) raw = raw.substr(0, comment);
    std::string line = Trim(raw);
    if (line.empty()) continue;

    // A continuation line of a multi-line rule inside a constraint block.
    if (continuing) {
      current_rules += " " + line + "\n";
      continuing = EndsWithContinuation(line);
      continue;
    }

    std::istringstream ls(line);
    std::string keyword;
    ls >> keyword;
    std::string rest = Trim(line.substr(keyword.size()));
    if (keyword == "local") {
      CCPI_RETURN_IF_ERROR(flush_constraint());
      std::string pred;
      while (ls >> pred) script.local_preds.insert(pred);
    } else if (keyword == "constraint") {
      CCPI_RETURN_IF_ERROR(flush_constraint());
      if (rest.empty()) {
        return Status::InvalidArgument("line " + std::to_string(line_number) +
                                       ": constraint needs a name");
      }
      current_name = rest;
    } else if (keyword == "fact") {
      CCPI_RETURN_IF_ERROR(flush_constraint());
      CCPI_ASSIGN_OR_RETURN(auto fact, ParseGroundAtom(rest));
      CCPI_RETURN_IF_ERROR(
          script.initial.Insert(fact.first, std::move(fact.second)));
    } else if (keyword == "insert" || keyword == "delete") {
      CCPI_RETURN_IF_ERROR(flush_constraint());
      CCPI_ASSIGN_OR_RETURN(auto atom, ParseGroundAtom(rest));
      script.updates.push_back(keyword == "insert"
                                   ? Update::Insert(atom.first, atom.second)
                                   : Update::Delete(atom.first, atom.second));
    } else {
      // A rule line of the current constraint.
      if (current_name.empty()) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_number) +
            ": rule outside a constraint block: " + line);
      }
      current_rules += line + "\n";
      continuing = EndsWithContinuation(line);
    }
  }
  CCPI_RETURN_IF_ERROR(flush_constraint());
  return script;
}

Result<ScriptReport> RunScript(const Script& script, const CostModel& costs) {
  ConstraintManager mgr(script.local_preds, costs);
  std::ostringstream out;
  for (const auto& [name, program] : script.constraints) {
    CCPI_ASSIGN_OR_RETURN(bool subsumed, mgr.AddConstraint(name, program));
    out << "constraint " << name
        << (subsumed ? " (redundant: subsumed by earlier constraints)" : "")
        << "\n";
  }
  // Initial facts are installed without checking (the paper's standing
  // assumption is that constraints hold before the first update).
  for (const std::string& pred : script.initial.PredicateNames()) {
    // Get returns the stored relation whatever arity hint is passed.
    const Relation& rel = script.initial.Get(pred, 0);
    for (const Tuple& t : rel.rows()) {
      CCPI_RETURN_IF_ERROR(mgr.site().db().Insert(pred, t));
    }
  }

  ScriptReport report;
  for (const Update& u : script.updates) {
    CCPI_ASSIGN_OR_RETURN(std::vector<CheckReport> checks,
                          mgr.ApplyUpdate(u));
    bool rejected = false;
    std::string detail;
    for (const CheckReport& c : checks) {
      if (c.outcome == Outcome::kViolated) {
        rejected = true;
        detail += " violates:" + c.constraint + "(" + TierToString(c.tier) +
                  ")";
      }
    }
    out << (rejected ? "REJECT " : "apply  ") << u.ToString() << detail
        << "\n";
    if (rejected) {
      ++report.updates_rejected;
    } else {
      ++report.updates_applied;
    }
  }

  out << "---\n";
  for (const auto& [tier, count] : mgr.stats().resolved_by) {
    out << "tier " << TierToString(tier) << ": " << count << " checks\n";
  }
  const AccessStats& access = mgr.stats().access;
  out << "access: " << access.local_tuples << " local tuples, "
      << access.remote_tuples << " remote tuples in " << access.remote_trips
      << " trips (cost " << access.Cost(costs) << ")\n";
  report.text = out.str();
  return report;
}

}  // namespace ccpi
