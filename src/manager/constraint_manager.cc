#include "manager/constraint_manager.h"

#include "core/cqc_form.h"
#include "core/icq_compiler.h"
#include "core/local_test.h"
#include "core/ra_local_test.h"
#include "datalog/unfold.h"
#include "subsumption/subsumption.h"
#include "updates/independence.h"

namespace ccpi {

const char* TierToString(Tier tier) {
  switch (tier) {
    case Tier::kSubsumed:
      return "subsumed";
    case Tier::kUnaffected:
      return "unaffected";
    case Tier::kIndependence:
      return "independence";
    case Tier::kLocalTest:
      return "local-test";
    case Tier::kFullCheck:
      return "full-check";
  }
  return "?";
}

namespace {

bool Mentions(const Program& p, const std::string& pred) {
  for (const Rule& r : p.rules) {
    for (const Literal& l : r.body) {
      if (!l.is_comparison() && l.atom.pred == pred) return true;
    }
  }
  return false;
}

}  // namespace

Result<bool> ConstraintManager::AddConstraint(const std::string& name,
                                              Program constraint) {
  std::vector<Program> active;
  for (const Registered& r : constraints_) {
    if (!r.subsumed) active.push_back(r.program);
  }
  bool subsumed = false;
  if (!active.empty()) {
    Result<ContainmentDecision> decision = Subsumes(constraint, active);
    if (decision.ok()) {
      subsumed = decision->outcome == Outcome::kHolds;
    } else if (decision.status().code() != StatusCode::kUnsupported) {
      return decision.status();
    }
  }
  constraints_.push_back(Registered{name, std::move(constraint), subsumed});
  return subsumed;
}

struct ConstraintManager::Tier2Artifacts {
  Rule rule;                            // the unfolded single-CQ form
  bool arithmetic_free = false;         // Theorem 5.3 applies
  std::optional<IcqCompilation> icq;    // Fig 6.1 machinery, if applicable
  std::optional<Cqc> cqc;               // general Theorem 5.2 form
};

std::shared_ptr<const ConstraintManager::Tier2Artifacts>
ConstraintManager::PrepareTier2(Registered* r,
                                const std::string& local_pred) {
  auto it = r->tier2.find(local_pred);
  if (it != r->tier2.end()) return it->second;

  std::shared_ptr<const Tier2Artifacts> artifacts;  // null = inapplicable
  Result<UCQ> unfolded = UnfoldToUCQ(r->program);
  if (unfolded.ok() && unfolded->size() == 1 &&
      !(*unfolded)[0].HasNegation()) {
    auto built = std::make_shared<Tier2Artifacts>();
    built->rule = (*unfolded)[0].ToRule();
    built->arithmetic_free = !(*unfolded)[0].HasArithmetic();
    Result<IcqCompilation> icq = CompileIcq(built->rule, local_pred);
    if (icq.ok()) built->icq = std::move(*icq);
    Result<Cqc> cqc = MakeCqc(built->rule, local_pred);
    if (cqc.ok()) built->cqc = std::move(*cqc);
    if (built->icq.has_value() || built->cqc.has_value() ||
        built->arithmetic_free) {
      artifacts = std::move(built);
    }
  }
  r->tier2.emplace(local_pred, artifacts);
  return artifacts;
}

Result<CheckReport> ConstraintManager::CheckOne(Registered* r,
                                                const Update& u) {
  CheckReport report;
  report.constraint = r->name;

  // Tier 1 prefilter: the constraint cannot see the updated relation.
  if (!Mentions(r->program, u.pred)) {
    report.outcome = Outcome::kHolds;
    report.tier = Tier::kUnaffected;
    return report;
  }

  // Tier 1: constraints + update only (Section 4).
  std::vector<Program> assumed;
  for (const Registered& other : constraints_) {
    if (!other.subsumed && other.name != r->name) {
      assumed.push_back(other.program);
    }
  }
  Result<ContainmentDecision> independent =
      HoldsAfterUpdate(r->program, u, assumed);
  if (independent.ok() && independent->outcome == Outcome::kHolds) {
    report.outcome = Outcome::kHolds;
    report.tier = Tier::kIndependence;
    return report;
  }
  if (!independent.ok() &&
      independent.status().code() != StatusCode::kUnsupported) {
    return independent.status();
  }

  // Tier 2: complete local test with local data — insertions into a local
  // relation, single-CQ constraints (Sections 5 and 6). The compiled
  // artifacts are cached per (constraint, predicate).
  if (u.kind == Update::Kind::kInsert && site_.IsLocal(u.pred)) {
    std::shared_ptr<const Tier2Artifacts> t2 = PrepareTier2(r, u.pred);
    if (t2 != nullptr) {
      const Relation& local = site_.db().Get(u.pred, u.tuple.size());
      Outcome outcome = Outcome::kUnknown;
      bool decided = false;

      // Fastest applicable method first: the Fig 6.1 interval machinery,
      // then the Theorem 5.3 RA test, then the general Theorem 5.2 test.
      if (t2->icq.has_value()) {
        Result<Outcome> o = IcqDirectTestOnInsert(*t2->icq, local, u.tuple);
        if (o.ok()) {
          outcome = *o;
          decided = true;
          site_.OnRead(u.pred, local.size());  // one pass over L
        }
      }
      if (!decided && t2->arithmetic_free) {
        // The RA evaluator reports its own reads through the observer.
        Result<Outcome> o = RaLocalTestOnInsert(t2->rule, u.pred, u.tuple,
                                                site_.db(), &site_);
        if (o.ok()) {
          outcome = *o;
          decided = true;
        }
      }
      if (!decided && t2->cqc.has_value()) {
        Result<LocalTestResult> o =
            CompleteLocalTestOnInsert(*t2->cqc, u.tuple, local);
        if (o.ok()) {
          outcome = o->outcome;
          decided = true;
          site_.OnRead(u.pred, local.size());
        }
      }
      if (decided) {
        if (outcome != Outcome::kUnknown) {
          report.outcome = outcome;
          report.tier = Tier::kLocalTest;
          return report;
        }
      }
    }
  }

  report.outcome = Outcome::kUnknown;  // needs the full (remote) check
  report.tier = Tier::kFullCheck;
  return report;
}

Result<std::vector<CheckReport>> ConstraintManager::ApplyUpdate(
    const Update& u) {
  std::vector<CheckReport> reports;

  // A no-op update cannot change any constraint.
  bool noop =
      (u.kind == Update::Kind::kInsert &&
       site_.db().Contains(u.pred, u.tuple)) ||
      (u.kind == Update::Kind::kDelete &&
       !site_.db().Contains(u.pred, u.tuple));

  std::vector<size_t> need_full;
  for (size_t i = 0; i < constraints_.size(); ++i) {
    Registered& r = constraints_[i];
    if (r.subsumed) {
      reports.push_back(
          CheckReport{r.name, Outcome::kHolds, Tier::kSubsumed});
      stats_.resolved_by[Tier::kSubsumed]++;
      continue;
    }
    if (noop) {
      reports.push_back(
          CheckReport{r.name, Outcome::kHolds, Tier::kUnaffected});
      stats_.resolved_by[Tier::kUnaffected]++;
      continue;
    }
    CCPI_ASSIGN_OR_RETURN(CheckReport report, CheckOne(&r, u));
    if (report.tier == Tier::kFullCheck) {
      need_full.push_back(reports.size());
    } else {
      stats_.resolved_by[report.tier]++;
    }
    reports.push_back(std::move(report));
  }

  bool violated = false;
  for (const CheckReport& r : reports) {
    violated = violated || r.outcome == Outcome::kViolated;
  }

  if (!need_full.empty() && !violated) {
    // Tentatively apply, evaluate the undecided constraints on the new
    // state (remote reads charged), roll back on violation.
    CCPI_RETURN_IF_ERROR(u.ApplyTo(&site_.db()));
    for (size_t idx : need_full) {
      CheckReport& report = reports[idx];
      const Registered* reg = nullptr;
      for (const Registered& r : constraints_) {
        if (r.name == report.constraint) reg = &r;
      }
      EvalOptions options;
      options.observer = &site_;
      CCPI_ASSIGN_OR_RETURN(bool bad,
                            IsViolated(reg->program, site_.db(), options));
      report.outcome = bad ? Outcome::kViolated : Outcome::kHolds;
      stats_.resolved_by[Tier::kFullCheck]++;
      violated = violated || bad;
    }
    if (violated) {
      // Roll back.
      Update inverse = u.kind == Update::Kind::kInsert
                           ? Update::Delete(u.pred, u.tuple)
                           : Update::Insert(u.pred, u.tuple);
      CCPI_RETURN_IF_ERROR(inverse.ApplyTo(&site_.db()));
    }
  } else if (!violated && !noop) {
    CCPI_RETURN_IF_ERROR(u.ApplyTo(&site_.db()));
  }

  if (violated) stats_.violations++;
  stats_.access = site_.stats();
  return reports;
}

Result<ConstraintManager::TransactionResult> ConstraintManager::ApplyTransaction(
    const std::vector<Update>& updates) {
  TransactionResult result;
  // Remember which updates actually change state, for exact rollback.
  std::vector<Update> applied;
  for (const Update& u : updates) {
    bool noop = (u.kind == Update::Kind::kInsert &&
                 site_.db().Contains(u.pred, u.tuple)) ||
                (u.kind == Update::Kind::kDelete &&
                 !site_.db().Contains(u.pred, u.tuple));
    CCPI_ASSIGN_OR_RETURN(std::vector<CheckReport> reports, ApplyUpdate(u));
    bool violated = false;
    for (const CheckReport& r : reports) {
      violated = violated || r.outcome == Outcome::kViolated;
    }
    result.reports.push_back(std::move(reports));
    if (violated) {
      // ApplyUpdate already refused this update; undo the earlier ones in
      // reverse order.
      for (auto it = applied.rbegin(); it != applied.rend(); ++it) {
        Update inverse = it->kind == Update::Kind::kInsert
                             ? Update::Delete(it->pred, it->tuple)
                             : Update::Insert(it->pred, it->tuple);
        CCPI_RETURN_IF_ERROR(inverse.ApplyTo(&site_.db()));
      }
      result.committed = false;
      return result;
    }
    if (!noop) applied.push_back(u);
  }
  result.committed = true;
  return result;
}

}  // namespace ccpi
