#include "manager/constraint_manager.h"

#include <algorithm>

#include "core/cqc_form.h"
#include "core/icq_compiler.h"
#include "core/local_test.h"
#include "core/ra_local_test.h"
#include "datalog/unfold.h"
#include "eval/engine.h"
#include "obs/trace.h"
#include "ra/ra_eval.h"
#include "subsumption/subsumption.h"
#include "updates/independence.h"

namespace ccpi {

const char* TierToString(Tier tier) {
  switch (tier) {
    case Tier::kSubsumed:
      return "subsumed";
    case Tier::kUnaffected:
      return "unaffected";
    case Tier::kIndependence:
      return "independence";
    case Tier::kLocalTest:
      return "local-test";
    case Tier::kFullCheck:
      return "full-check";
  }
  return "?";
}

namespace {

bool Mentions(const Program& p, const std::string& pred) {
  for (const Rule& r : p.rules) {
    for (const Literal& l : r.body) {
      if (!l.is_comparison() && l.atom.pred == pred) return true;
    }
  }
  return false;
}

Update InverseOf(const Update& u) {
  return u.kind == Update::Kind::kInsert ? Update::Delete(u.pred, u.tuple)
                                         : Update::Insert(u.pred, u.tuple);
}

/// Whether the effect of `u` is still visible in `db` (nothing has undone
/// or superseded it). Guards compensation: never "roll back" an update
/// whose effect is already gone.
bool EffectPresent(const Update& u, const Database& db) {
  bool contains = db.Contains(u.pred, u.tuple);
  return u.kind == Update::Kind::kInsert ? contains : !contains;
}

constexpr Tier kAllTiers[] = {Tier::kSubsumed, Tier::kUnaffected,
                              Tier::kIndependence, Tier::kLocalTest,
                              Tier::kFullCheck};

/// Forwards every read to the real observer unchanged (so access
/// accounting is identical to an unrecorded evaluation) while keeping the
/// (pred, count) sequence for the bound-result memo: a later same-version
/// hit replays exactly these charges instead of re-evaluating.
struct RecordingObserver : AccessObserver {
  AccessObserver* inner;
  std::vector<std::pair<std::string, size_t>> reads;
  explicit RecordingObserver(AccessObserver* observer) : inner(observer) {}
  Status OnRead(const std::string& pred, size_t count) override {
    CCPI_RETURN_IF_ERROR(inner->OnRead(pred, count));
    reads.emplace_back(pred, count);
    return Status::OK();
  }
};

/// Observer of a speculative phase 1: charges nothing, records everything.
/// A committed episode replays the buffer through the site observer in
/// recorded order, so AccessStats end up byte-identical to an unpipelined
/// run; a conflicted episode's buffer is dropped without a trace.
struct BufferingObserver : AccessObserver {
  std::vector<std::pair<std::string, size_t>> reads;
  Status OnRead(const std::string& pred, size_t count) override {
    reads.emplace_back(pred, count);
    return Status::OK();
  }
};

}  // namespace

/// Read routing of one constraint check. The serial path reads the live
/// database, charges the site observer directly, and consults the live
/// deferred queue; a speculative phase 1 reads its episode's admission
/// snapshot, buffers its charges, and consults the queue as of admission.
struct ConstraintManager::CheckContext {
  const Database* db;
  AccessObserver* observer;
  const std::deque<DeferredCheck>* deferred;
};

/// One pipelined update episode. Admission state is written by the
/// admitting thread before the speculation task is launched; speculation
/// outputs are written only by the task; the done/cv handshake publishes
/// them back to the committing (admitting) thread. After `done`, the
/// episode is owned by the committer again.
struct ConstraintManager::Episode {
  Update update;
  uint64_t sequence = 0;
  /// Admission-time MVCC snapshot (copy-on-write Database copy).
  Database snapshot;
  /// The deferred queue as of admission; tier 2's verified-data adjustment
  /// reads it.
  std::deque<DeferredCheck> deferred_snapshot;
  /// deferred_epoch_ at admission: any structural queue change since then
  /// invalidates the speculation wholesale.
  uint64_t deferred_epoch = 0;
  /// commit_writes_ length at admission: the validation suffix.
  size_t write_mark = 0;
  /// False for a serial-fallback admission: no snapshot, no task, the
  /// commit runs the episode from scratch.
  bool speculated = false;

  // ---- Speculation outputs (valid once `done`).
  bool noop = false;
  std::vector<CheckReport> reports;
  std::vector<Status> check_status;
  /// Local-read charges of phase 1, in charge order.
  std::vector<std::pair<std::string, size_t>> buffered_reads;
  /// Every predicate phase 1 read (always includes update.pred: the noop
  /// probe and tier 2 read it).
  std::set<std::string> read_preds;
  /// Remote fetches staged for the tier-3 worklist (latency already
  /// slept); committed or silently discarded at the commit turn.
  std::vector<SiteDatabase::StagedFetch> staged;

  // ---- Retire handshake.
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
};

void ConstraintManager::InitObservability() {
  site_.set_metrics(&metrics_);
  for (Tier tier : kAllTiers) {
    std::string suffix = TierToString(tier);
    ctr_resolved_[TierIndex(tier)] =
        metrics_.GetCounter("manager.resolved." + suffix);
    hist_check_[TierIndex(tier)] =
        metrics_.GetHistogram("manager.check_latency_ns." + suffix);
  }
  ctr_violations_ = metrics_.GetCounter("manager.violations");
  ctr_remote_attempts_ = metrics_.GetCounter("manager.remote.attempts");
  ctr_remote_retries_ = metrics_.GetCounter("manager.remote.retries");
  ctr_remote_failures_ = metrics_.GetCounter("manager.remote.failed_episodes");
  ctr_deferred_ = metrics_.GetCounter("manager.deferred.total");
  ctr_fast_fails_ = metrics_.GetCounter("manager.deferred.fast_fail");
  ctr_deferred_recovered_ = metrics_.GetCounter("manager.deferred.recovered");
  ctr_deferred_violations_ =
      metrics_.GetCounter("manager.deferred.violations");
  ctr_t3_admitted_ = metrics_.GetCounter("manager.t3_admitted");
  ctr_shed_ = metrics_.GetCounter("manager.shed_checks");
  // Plan-cache instrumentation exists only while the cache is on, so a
  // --plan-cache=off metrics dump stays byte-identical to the pre-cache
  // catalog. Every increment site sits on a cache-only path, so the null
  // handles are never dereferenced while disabled.
  if (plan_cache_.enabled) {
    ctr_plan_compiles_ = metrics_.GetCounter("plan.compiles");
    ctr_plan_hits_ = metrics_.GetCounter("plan.hits");
    ctr_plan_delta_ = metrics_.GetCounter("plan.delta_tuples");
    hist_plan_compile_ = metrics_.GetHistogram("plan.compile_latency_ns");
  }
  ctr_budget_exhausted_ = metrics_.GetCounter("manager.budget_exhausted");
  ctr_deferred_dropped_ = metrics_.GetCounter("manager.deferred.dropped");
  // Hedge counters exist only with hedging armed, and the latency-shed
  // counter only when some site actually draws latency, so the default
  // metrics dump stays byte-identical to the pre-hedging catalog.
  if (remote_cache_.hedge_after > 0) {
    ctr_hedge_issued_ = metrics_.GetCounter("manager.hedge.issued");
    ctr_hedge_won_ = metrics_.GetCounter("manager.hedge.won");
    ctr_hedge_wasted_ = metrics_.GetCounter("manager.hedge.wasted");
  }
  if (latency_aware_) {
    ctr_latency_shed_ = metrics_.GetCounter("manager.latency_shed");
  }
  // Recovery counters exist only for multi-site topologies, so a 1-site
  // manager's metrics dump stays byte-identical to the pre-topology
  // catalog.
  if (site_.sites() > 1) {
    ctr_sites_recovered_ = metrics_.GetCounter("manager.recovery.sites");
    ctr_cache_revalidated_ =
        metrics_.GetCounter("manager.recovery.revalidated");
    ctr_site_recovered_.resize(site_.sites());
    for (size_t s = 0; s < site_.sites(); ++s) {
      ctr_site_recovered_[s] =
          metrics_.GetCounter("manager.recovery.site" + std::to_string(s));
    }
  }
  // Millisecond-scale bounds: the registry's default ladder is tuned for
  // nanosecond latencies, while this histogram records wall-clock budget
  // left when a deadlined episode completes.
  hist_budget_remaining_ = metrics_.GetHistogram(
      "manager.budget_remaining_ms",
      {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000});
  hist_apply_ = metrics_.GetHistogram("manager.apply_latency_ns");
  hist_remote_eval_ = metrics_.GetHistogram("manager.remote_eval_latency_ns");
  gauge_deferred_len_ = metrics_.GetGauge("manager.deferred_queue_len");
  // Pipeline instrumentation exists only at an effective depth > 1, so a
  // depth-1 (or budget-armed, which forces depth 1) manager's metrics
  // dump stays byte-identical to the pre-pipeline catalog. Every
  // increment site sits on a pipelined path, so the null handles are
  // never dereferenced otherwise.
  if (pipeline_.depth > 1 && !budget_armed_) {
    ctr_pipe_admitted_ = metrics_.GetCounter("manager.pipeline.admitted");
    ctr_pipe_committed_ = metrics_.GetCounter("manager.pipeline.committed");
    ctr_pipe_conflicts_ = metrics_.GetCounter("manager.pipeline.conflicts");
    ctr_pipe_retries_ = metrics_.GetCounter("manager.pipeline.retries");
    ctr_pipe_unspeculated_ =
        metrics_.GetCounter("manager.pipeline.unspeculated");
    gauge_pipe_in_flight_ = metrics_.GetGauge("manager.pipeline.in_flight");
    hist_pipe_commit_wait_ =
        metrics_.GetHistogram("manager.pipeline.commit_wait_ns");
  }
}

ConstraintManager::ConstraintManager(
    std::set<std::string> local_preds, CostModel cost_model,
    ResilienceConfig resilience, ParallelConfig parallel,
    RemoteCacheConfig remote_cache, BudgetConfig budget,
    TopologyConfig topology, PlanCacheConfig plan_cache,
    PipelineConfig pipeline)
    : site_(std::move(local_preds), std::move(topology)),
      cost_model_(cost_model),
      resilience_(resilience),
      parallel_(parallel),
      remote_cache_(remote_cache),
      plan_cache_(plan_cache),
      budget_(budget),
      budget_armed_(budget.armed()),
      retry_rng_(resilience.retry_seed),
      pipeline_(pipeline),
      pool_(std::make_unique<ThreadPool>(parallel.threads)) {
  // One independent fault domain per site: each gets its own breaker
  // (same config) and its own recovery bookkeeping.
  breakers_.reserve(site_.sites());
  for (size_t s = 0; s < site_.sites(); ++s) {
    breakers_.push_back(std::make_unique<CircuitBreaker>(resilience.breaker));
  }
  site_was_dark_.assign(site_.sites(), false);
  site_.EnableRemoteCache(remote_cache.enabled);
  // Price every site with the manager's cost model, folding in the
  // topology's per-site latency overrides (the billing weights stay
  // uniform; only the latency distribution is per-site). Without this the
  // sites keep the default CostModel{}, which silently zeroes
  // trip_latency_us — the simulated round trips would be billed but never
  // block, and latency-hiding machinery could not be measured. Pricing
  // must precede InitObservability: the per-site latency histograms are
  // registered off the priced models.
  const auto& latency_overrides = site_.topology().config().site_latency;
  for (size_t s = 0; s < site_.sites(); ++s) {
    CostModel priced = cost_model_;
    auto it = latency_overrides.find(s);
    if (it != latency_overrides.end()) {
      const SiteLatencyOverride& o = it->second;
      priced.latency_model = o.model;
      if (o.model == LatencyModel::kFixed) priced.trip_latency_us = o.fixed_us;
      priced.latency_lo_us = o.lo_us;
      priced.latency_hi_us = o.hi_us;
      priced.latency_slow_share = o.slow_share;
    }
    if (priced.latency_model != LatencyModel::kFixed) latency_aware_ = true;
    site_.set_site_cost_model(s, priced);
  }
  InitObservability();
  site_.set_hedge(remote_cache_.hedge_after, ctr_hedge_issued_,
                  ctr_hedge_won_, ctr_hedge_wasted_);
}

ConstraintManager::~ConstraintManager() { AbandonInflight(); }

void ConstraintManager::ResetStats() {
  // Resetting mid-flight would split one episode's counts across the
  // boundary; retire everything first.
  DrainInflightInternal();
  CCPI_DCHECK(inflight_.empty());
  for (obs::Counter* c : ctr_resolved_) c->Reset();
  ctr_violations_->Reset();
  ctr_remote_attempts_->Reset();
  ctr_remote_retries_->Reset();
  ctr_remote_failures_->Reset();
  ctr_deferred_->Reset();
  ctr_fast_fails_->Reset();
  ctr_deferred_recovered_->Reset();
  ctr_deferred_violations_->Reset();
  ctr_t3_admitted_->Reset();
  ctr_shed_->Reset();
  ctr_budget_exhausted_->Reset();
  ctr_deferred_dropped_->Reset();
  if (ctr_sites_recovered_ != nullptr) ctr_sites_recovered_->Reset();
  if (ctr_cache_revalidated_ != nullptr) ctr_cache_revalidated_->Reset();
  for (obs::Counter* c : ctr_site_recovered_) {
    if (c != nullptr) c->Reset();
  }
  if (ctr_hedge_issued_ != nullptr) ctr_hedge_issued_->Reset();
  if (ctr_hedge_won_ != nullptr) ctr_hedge_won_->Reset();
  if (ctr_hedge_wasted_ != nullptr) ctr_hedge_wasted_->Reset();
  if (ctr_latency_shed_ != nullptr) ctr_latency_shed_->Reset();
}

ManagerStats ConstraintManager::stats() const {
  ManagerStats s;
  for (Tier tier : kAllTiers) {
    uint64_t n = ctr_resolved_[TierIndex(tier)]->value();
    if (n > 0) s.resolved_by[tier] = n;
  }
  s.violations = ctr_violations_->value();
  s.remote_attempts = ctr_remote_attempts_->value();
  s.remote_retries = ctr_remote_retries_->value();
  s.remote_failures = ctr_remote_failures_->value();
  s.deferred = ctr_deferred_->value();
  s.breaker_fast_fails = ctr_fast_fails_->value();
  s.deferred_recovered = ctr_deferred_recovered_->value();
  s.deferred_violations = ctr_deferred_violations_->value();
  s.t3_admitted = ctr_t3_admitted_->value();
  s.shed_checks = ctr_shed_->value();
  s.budget_exhausted = ctr_budget_exhausted_->value();
  s.deferred_dropped = ctr_deferred_dropped_->value();
  s.sites_recovered =
      ctr_sites_recovered_ != nullptr ? ctr_sites_recovered_->value() : 0;
  s.cache_revalidated =
      ctr_cache_revalidated_ != nullptr ? ctr_cache_revalidated_->value() : 0;
  s.hedges_issued =
      ctr_hedge_issued_ != nullptr ? ctr_hedge_issued_->value() : 0;
  s.hedges_won = ctr_hedge_won_ != nullptr ? ctr_hedge_won_->value() : 0;
  s.hedges_wasted =
      ctr_hedge_wasted_ != nullptr ? ctr_hedge_wasted_->value() : 0;
  s.latency_shed =
      ctr_latency_shed_ != nullptr ? ctr_latency_shed_->value() : 0;
  s.access = site_.stats();
  return s;
}

Result<bool> ConstraintManager::AddConstraint(const std::string& name,
                                              Program constraint) {
  // Registration changes the active set every speculation quantifies over
  // (tier-1 assumptions, the signature constant pool): retire in-flight
  // episodes before touching it.
  DrainInflightInternal();
  CCPI_DCHECK(inflight_.empty());
  std::vector<Program> active;
  for (const Registered& r : constraints_) {
    if (!r.subsumed) active.push_back(r.program);
  }
  bool subsumed = false;
  if (!active.empty()) {
    Result<ContainmentDecision> decision = Subsumes(constraint, active);
    if (decision.ok()) {
      subsumed = decision->outcome == Outcome::kHolds;
    } else if (decision.status().code() != StatusCode::kUnsupported) {
      return decision.status();
    }
  }
  constraints_.push_back(Registered{name, std::move(constraint), subsumed});
  // Registration-time footprint: which remote relations a tier-3
  // evaluation of this constraint may touch (prefetch unions them).
  for (const std::string& pred : EdbPredicates(constraints_.back().program)) {
    if (!site_.IsLocal(pred)) constraints_.back().remote_edb.insert(pred);
  }
  // Site footprint for breaker gating. With one site every constraint
  // names it (even with an empty remote_edb) so gating degenerates to the
  // single global breaker; with N sites the footprint is exactly the
  // placement of the remote relations, and a constraint with no remote
  // reads is never gated at all.
  if (site_.sites() == 1) {
    constraints_.back().remote_sites.insert(0);
  } else {
    for (const std::string& pred : constraints_.back().remote_edb) {
      constraints_.back().remote_sites.insert(site_.SiteOf(pred));
    }
  }
  // Registration is a plan-cache epoch: the tier-1 memo quantifies over
  // the set of active constraints, which just changed, so every cached
  // decision (and, wholesale for simplicity, every plan) is dropped. The
  // signature inputs are refreshed too — the distinguished-constant pool
  // and whether every active program is comparison-free, the soundness
  // gate of shape-keyed decision memoization (see docs/plan_cache.md).
  plans_.Invalidate();
  std::vector<const Program*> active_programs;
  plan_sig_safe_ = true;
  for (const Registered& r : constraints_) {
    if (r.subsumed) continue;
    active_programs.push_back(&r.program);
    plan_sig_safe_ = plan_sig_safe_ && SignatureSafe(r.program);
  }
  plan_constants_ = CollectProgramConstants(active_programs);
  return subsumed;
}

struct ConstraintManager::Tier2Artifacts {
  Rule rule;                            // the unfolded single-CQ form
  bool arithmetic_free = false;         // Theorem 5.3 applies
  std::optional<IcqCompilation> icq;    // Fig 6.1 machinery, if applicable
  std::optional<Cqc> cqc;               // general Theorem 5.2 form
};

std::shared_ptr<const ConstraintManager::Tier2Artifacts>
ConstraintManager::PrepareTier2(Registered* r,
                                const std::string& local_pred) {
  // tier2_mu_ makes the lazy per-(constraint, predicate) cache safe under
  // concurrent episode speculation: within one episode each lane owns its
  // Registered, but two in-flight episodes may touch the same one. Two
  // racing builders compile identical artifacts (pure function of the
  // program and predicate); the first insert wins.
  {
    std::lock_guard<std::mutex> lock(tier2_mu_);
    auto it = r->tier2.find(local_pred);
    if (it != r->tier2.end()) return it->second;
  }

  std::shared_ptr<const Tier2Artifacts> artifacts;  // null = inapplicable
  Result<UCQ> unfolded = UnfoldToUCQ(r->program);
  if (unfolded.ok() && unfolded->size() == 1 &&
      !(*unfolded)[0].HasNegation()) {
    auto built = std::make_shared<Tier2Artifacts>();
    built->rule = (*unfolded)[0].ToRule();
    built->arithmetic_free = !(*unfolded)[0].HasArithmetic();
    Result<IcqCompilation> icq = CompileIcq(built->rule, local_pred);
    if (icq.ok()) built->icq = std::move(*icq);
    Result<Cqc> cqc = MakeCqc(built->rule, local_pred);
    if (cqc.ok()) built->cqc = std::move(*cqc);
    if (built->icq.has_value() || built->cqc.has_value() ||
        built->arithmetic_free) {
      artifacts = std::move(built);
    }
  }
  std::lock_guard<std::mutex> lock(tier2_mu_);
  return r->tier2.emplace(local_pred, artifacts).first->second;
}

Result<CheckReport> ConstraintManager::CheckOne(Registered* r, const Update& u,
                                                const UpdateSignature* sig,
                                                const CheckContext& ctx) {
  obs::Span span("manager.check", "manager");
  obs::Stopwatch sw;
  Result<CheckReport> report = CheckOneImpl(r, u, sig, ctx);
  if (report.ok()) {
    if (span.active()) {
      span.Attr("constraint", r->name);
      span.Attr("tier", TierToString(report->tier));
      span.Attr("outcome", OutcomeToString(report->outcome));
    }
    sw.RecordTo(hist_check_[TierIndex(report->tier)]);
  }
  return report;
}

Result<CheckReport> ConstraintManager::CheckOneImpl(
    Registered* r, const Update& u, const UpdateSignature* sig,
    const CheckContext& ctx) {
  CheckReport report;
  report.constraint = r->name;

  // Tier 1 prefilter: the constraint cannot see the updated relation.
  if (!Mentions(r->program, u.pred)) {
    report.outcome = Outcome::kHolds;
    report.tier = Tier::kUnaffected;
    return report;
  }

  // The plan-cache key for this (constraint, update pattern). Keys embed
  // the constraint id, so under the phase-1 fan-out each lane touches a
  // disjoint key family and cache contents stay thread-count independent.
  const std::string plan_key =
      sig != nullptr ? r->name + '\x1f' + sig->Key() : std::string();

  // Tier 1: constraints + update only (Section 4). The decision is a pure
  // function of (constraint, update pattern, active constraint set): it
  // compares the constraint against the update via equality reasoning
  // alone, so two updates with the same shape signature get the same
  // verdict — memoizable per pattern, as long as no active program carries
  // an order comparison (those can distinguish same-shape tuples; see
  // docs/plan_cache.md). AddConstraint invalidates the memo wholesale.
  const bool tier1_memo = sig != nullptr && plan_sig_safe_;
  bool tier1_known = false;
  bool tier1_holds = false;
  if (tier1_memo) {
    if (std::optional<PlanCache::Tier1Decision> memo =
            plans_.FindTier1(plan_key)) {
      ctr_plan_hits_->Add(1);
      tier1_known = true;
      tier1_holds = memo->holds;
    }
  }
  if (!tier1_known) {
    obs::Stopwatch compile_sw;
    std::vector<Program> assumed;
    for (const Registered& other : constraints_) {
      if (!other.subsumed && other.name != r->name) {
        assumed.push_back(other.program);
      }
    }
    Result<ContainmentDecision> independent =
        HoldsAfterUpdate(r->program, u, assumed);
    if (!independent.ok() &&
        independent.status().code() != StatusCode::kUnsupported) {
      return independent.status();
    }
    tier1_holds =
        independent.ok() && independent->outcome == Outcome::kHolds;
    // Memoize both verdicts — holds and falls-through — but never an
    // error path (kUnsupported falls through cold every time, exactly
    // like the uncached code).
    if (tier1_memo) {
      plans_.StoreTier1(plan_key, PlanCache::Tier1Decision{tier1_holds});
      ctr_plan_compiles_->Add(1);
      compile_sw.RecordTo(hist_plan_compile_);
    }
  }
  if (tier1_holds) {
    report.outcome = Outcome::kHolds;
    report.tier = Tier::kIndependence;
    return report;
  }

  // Tier 2: complete local test with local data — insertions into a local
  // relation, single-CQ constraints (Sections 5 and 6). The compiled
  // artifacts are cached per (constraint, predicate). Local reads never
  // fail: tiers 0-2 keep answering through any remote outage.
  if (u.kind == Update::Kind::kInsert && site_.IsLocal(u.pred)) {
    std::shared_ptr<const Tier2Artifacts> t2 = PrepareTier2(r, u.pred);
    if (t2 != nullptr) {
      // Tier 2 may only trust *verified* local data. A tuple applied
      // optimistically while its own check is still deferred must not
      // serve as evidence (e.g. interval coverage) for accepting further
      // updates: one unverified insert could otherwise launder
      // arbitrarily many dependents past the local test, and its late
      // rollback would leave them standing unchecked.
      const Relation* local = &ctx.db->Get(u.pred, u.tuple.size());
      bool has_pending = false;
      for (const DeferredCheck& d : *ctx.deferred) {
        has_pending = has_pending || d.update.pred == u.pred;
      }
      Relation verified(u.tuple.size());
      if (has_pending) {
        verified = *local;
        for (const DeferredCheck& d : *ctx.deferred) {
          if (d.update.pred != u.pred) continue;
          if (d.update.kind == Update::Kind::kInsert) {
            verified.Erase(d.update.tuple);
          } else {
            verified.Insert(d.update.tuple);
          }
        }
        local = &verified;
      }
      Outcome outcome = Outcome::kUnknown;
      bool decided = false;

      // Fastest applicable method first: the Fig 6.1 interval machinery,
      // then the Theorem 5.3 RA test, then the general Theorem 5.2 test.
      if (t2->icq.has_value()) {
        Result<Outcome> o = IcqDirectTestOnInsert(*t2->icq, *local, u.tuple);
        if (o.ok()) {
          outcome = *o;
          decided = true;
          // One pass over L, always a local read.
          CCPI_RETURN_IF_ERROR(ctx.observer->OnRead(u.pred, local->size()));
        }
      }
      if (!decided && t2->arithmetic_free && !has_pending) {
        // The RA evaluator reports its own reads through the observer.
        // It reads L from the database directly, so it is skipped when
        // unverified tuples would be visible there.
        //
        // With the plan cache on, the Theorem 5.3 compilation happens once
        // per update pattern: the compiled template is cached and later
        // same-shape tuples are *bound* into it (delta evaluation) instead
        // of recompiling. The evaluation itself is never skipped — except
        // by the bound-result memo, which replays an identical recorded
        // read sequence — so reports and access accounting match the cold
        // path byte for byte.
        std::shared_ptr<const RaPlanTemplate> tpl;
        if (sig != nullptr) {
          tpl = plans_.FindTemplate(plan_key);
          if (tpl != nullptr) {
            ctr_plan_hits_->Add(1);
          } else {
            obs::Stopwatch compile_sw;
            Result<RaPlanTemplate> built =
                CompileRaPlan(t2->rule, u.pred, u.tuple);
            if (built.ok()) {
              tpl = plans_.StoreTemplate(
                  plan_key,
                  std::make_shared<const RaPlanTemplate>(std::move(*built)));
              ctr_plan_compiles_->Add(1);
              compile_sw.RecordTo(hist_plan_compile_);
            }
            // A failed compile falls through undecided, exactly like a
            // failed RaLocalTestOnInsert below — and is not cached, so
            // error behavior stays per-update.
          }
        }
        if (tpl != nullptr) {
          Result<Outcome> o = EvalPlannedRa(*tpl, u, plan_key, ctx);
          if (o.ok()) {
            outcome = *o;
            decided = true;
          }
        } else if (sig == nullptr) {
          Result<Outcome> o = RaLocalTestOnInsert(
              t2->rule, u.pred, u.tuple, *ctx.db, ctx.observer, &metrics_);
          if (o.ok()) {
            outcome = *o;
            decided = true;
          }
        }
      }
      if (!decided && t2->cqc.has_value()) {
        Result<LocalTestResult> o =
            CompleteLocalTestOnInsert(*t2->cqc, u.tuple, *local);
        if (o.ok()) {
          outcome = o->outcome;
          decided = true;
          CCPI_RETURN_IF_ERROR(ctx.observer->OnRead(u.pred, local->size()));
        }
      }
      if (decided) {
        if (outcome != Outcome::kUnknown) {
          report.outcome = outcome;
          report.tier = Tier::kLocalTest;
          return report;
        }
      }
    }
  }

  report.outcome = Outcome::kUnknown;  // needs the full (remote) check
  report.tier = Tier::kFullCheck;
  return report;
}

Result<Outcome> ConstraintManager::EvalPlannedRa(const RaPlanTemplate& tpl,
                                                 const Update& u,
                                                 const std::string& plan_key,
                                                 const CheckContext& ctx) {
  // Mirror of RaLocalTestOnInsert over a prebuilt template: trivial
  // outcomes are shape-stable, so they transfer to every bound tuple.
  if (tpl.trivially_holds) return Outcome::kHolds;
  if (tpl.trivially_violated) return Outcome::kViolated;
  RaExprPtr bound = tpl.Bind(u.tuple);
  ctr_plan_delta_->Add(1);
#ifndef NDEBUG
  // Same locality guarantee the cold path enforces: a bound Theorem 5.3
  // test reads only the updated local relation.
  {
    std::set<std::string> scans;
    bound->CollectScanPreds(&scans);
    for (const std::string& pred : scans) CCPI_CHECK(pred == u.pred);
  }
#endif
  // Bound-result memo, valid while the relation's content-version stamp
  // matches (equal version => equal contents, so the skipped evaluation
  // would have produced this outcome and charged exactly these reads).
  // Version stamps name *content*, not a database handle, so the memo is
  // shared across episodes: a speculative check over a snapshot whose
  // relation carries the same version as an earlier episode's hits — and
  // a hit recorded from a snapshot replays identically on the live path.
  const Relation& local = ctx.db->Get(u.pred, u.tuple.size());
  std::string result_key = plan_key;
  result_key += '\x1f';
  result_key += TupleToString(u.tuple);
  result_key += '\x1f';
  result_key += std::to_string(local.version());
  if (std::optional<PlanCache::BoundResult> memo =
          plans_.FindResult(result_key)) {
    ctr_plan_hits_->Add(1);
    for (const auto& [pred, count] : memo->reads) {
      CCPI_RETURN_IF_ERROR(ctx.observer->OnRead(pred, count));
    }
    return memo->outcome;
  }
  RecordingObserver recorder(ctx.observer);
  CCPI_ASSIGN_OR_RETURN(bool nonempty,
                        RaNonempty(*bound, *ctx.db, &recorder, &metrics_));
  Outcome outcome = nonempty ? Outcome::kHolds : Outcome::kUnknown;
  plans_.StoreResult(result_key,
                     PlanCache::BoundResult{outcome, std::move(recorder.reads)});
  return outcome;
}

bool ConstraintManager::SitesWouldAllow(
    const std::set<size_t>& gsites) const {
  for (size_t s : gsites) {
    if (!breakers_[s]->WouldAllow()) return false;
  }
  return true;
}

void ConstraintManager::ClaimSites(const std::set<size_t>& gsites) {
  for (size_t s : gsites) {
    bool admitted = breakers_[s]->AllowRequest();
    // The caller gated on SitesWouldAllow with no breaker traffic in
    // between, so the claim cannot be refused.
    CCPI_DCHECK(admitted);
    (void)admitted;
  }
}

bool ConstraintManager::AllBreakersClosed() const {
  for (const std::unique_ptr<CircuitBreaker>& b : breakers_) {
    if (b->state() != CircuitState::kClosed) return false;
  }
  return true;
}

Result<bool> ConstraintManager::EvaluateRemote(const Program& program,
                                               const Database& db,
                                               const std::set<size_t>& gsites,
                                               size_t* retries_out,
                                               const BudgetScope* scope,
                                               const std::string* plan_key) {
  obs::Span span("manager.evaluate_remote", "manager");
  if (scope != nullptr) {
    // Admission: a check whose envelope is already spent performs no
    // attempt at all — no retry episode, no breaker traffic, no span
    // timing. The caller sheds it.
    Status admit = scope->Check();
    if (!admit.ok()) {
      if (retries_out != nullptr) *retries_out = 0;
      ctr_budget_exhausted_->Add(1);
      for (size_t s : gsites) breakers_[s]->CancelProbe();
      return admit;
    }
  }
  // Per-site blame needs to know which sites actually failed during this
  // episode. The snapshot/delta read is race-free because the retriable
  // path below only exists under fault injection, which forces tier 3
  // sequential.
  const bool multi = site_.sites() > 1;
  std::vector<size_t> failures_before;
  if (multi) {
    failures_before.reserve(gsites.size());
    for (size_t s : gsites) {
      failures_before.push_back(site_.site_stats(s).remote_failures);
    }
  }
  obs::Stopwatch sw;
  bool violated = false;
  RetryOutcome episode =
      RunWithRetry(resilience_.retry, &retry_rng_, [&]() -> Status {
        EvalOptions options;
        options.observer = &site_;
        options.metrics = &metrics_;
        options.budget = scope;
        // With the plan cache on, the program's evaluation-independent
        // analysis (safety, stratification, predicate partition) runs once
        // per constraint instead of once per attempt. Only successful
        // compiles are cached: a failing program surfaces the identical
        // status on every attempt, cold or cached. Evaluation of a
        // compiled plan issues the same reads, metrics, and budget
        // checkpoints as the uncompiled overload.
        Result<bool> r = [&]() -> Result<bool> {
          if (plan_cache_.enabled && plan_key != nullptr) {
            std::shared_ptr<const CompiledProgram> plan =
                plans_.FindProgram(*plan_key);
            if (plan == nullptr) {
              obs::Stopwatch compile_sw;
              Result<CompiledProgram> built = CompileProgram(program);
              if (!built.ok()) return built.status();
              plan = plans_.StoreProgram(
                  *plan_key,
                  std::make_shared<const CompiledProgram>(std::move(*built)));
              ctr_plan_compiles_->Add(1);
              compile_sw.RecordTo(hist_plan_compile_);
            } else {
              ctr_plan_hits_->Add(1);
            }
            return IsViolated(*plan, db, options);
          }
          return IsViolated(program, db, options);
        }();
        if (!r.ok()) return r.status();
        violated = *r;
        return Status::OK();
      });
  sw.RecordTo(hist_remote_eval_);
  ctr_remote_attempts_->Add(episode.attempts);
  if (episode.attempts > 0) {
    ctr_remote_retries_->Add(episode.attempts - 1);
  }
  if (span.active()) {
    span.Attr("attempts", static_cast<int64_t>(episode.attempts));
  }
  if (retries_out != nullptr) {
    *retries_out = episode.attempts > 0 ? episode.attempts - 1 : 0;
  }
  if (!episode.status.ok()) {
    if (IsRetriable(episode.status.code())) {
      ctr_remote_failures_->Add(1);
      if (!multi) {
        breakers_[0]->RecordFailure();
      } else {
        // Blame exactly the sites whose trips failed during this episode;
        // a gated site that happened not to fail releases its probe claim
        // without a verdict.
        size_t i = 0;
        for (size_t s : gsites) {
          bool failed =
              site_.site_stats(s).remote_failures > failures_before[i++];
          if (failed) {
            breakers_[s]->RecordFailure();
          } else {
            breakers_[s]->CancelProbe();
          }
        }
      }
    } else if (episode.status.code() == StatusCode::kResourceExhausted) {
      // The budget, not the site, stopped the episode: never retried
      // (retrying would spend the same exhausted envelope) and never
      // blamed on the breaker (the site did nothing wrong).
      ctr_budget_exhausted_->Add(1);
      for (size_t s : gsites) breakers_[s]->CancelProbe();
    } else {
      for (size_t s : gsites) breakers_[s]->CancelProbe();
    }
    if (span.active()) span.Attr("gave_up", episode.status.message());
    return episode.status;
  }
  // Success feeds every gated site unconditionally — not only the sites
  // whose cached reads happened to pay a trip this time. Delta-gating
  // would read racy per-site counters under the tier-3 fan-out and make
  // breaker state depend on thread count.
  for (size_t s : gsites) breakers_[s]->RecordSuccess();
  return violated;
}

bool ConstraintManager::UpdateRefused(
    const std::vector<CheckReport>& reports) const {
  for (const CheckReport& r : reports) {
    if (r.outcome == Outcome::kViolated) return true;
    if (r.queue_overflow) return true;
    if (r.outcome == Outcome::kDeferred &&
        resilience_.on_unreachable == DeferredPolicy::kReject) {
      return true;
    }
  }
  return false;
}

Result<std::vector<CheckReport>> ConstraintManager::ApplyUpdate(
    const Update& u) {
  // The synchronous and asynchronous entry points share one serial order:
  // everything admitted earlier commits first.
  DrainInflightInternal();
  return RunEpisode(u, nullptr);
}

Result<std::vector<CheckReport>> ConstraintManager::RunEpisode(
    const Update& u, Episode* spec) {
  obs::Span span("manager.apply_update", "manager");
  if (span.active()) {
    span.Attr("pred", u.pred);
    span.Attr("kind", u.kind == Update::Kind::kInsert ? "insert" : "delete");
  }
  obs::Stopwatch sw;
  Result<std::vector<CheckReport>> reports = ApplyUpdateImpl(u, spec);
  sw.RecordTo(hist_apply_);
  gauge_deferred_len_->Set(static_cast<int64_t>(deferred_.size()));
  return reports;
}

Result<std::vector<CheckReport>> ConstraintManager::ApplyUpdateImpl(
    const Update& u, Episode* spec) {
  // The episode's execution envelope, armed from configuration alone: an
  // unbudgeted manager never reads the clock here — episode_scope stays
  // inert and every checkpoint downstream is one branch on a null scope.
  BudgetScope episode_scope;
  if (budget_armed_) {
    episode_scope = BudgetScope::Start(budget_.per_episode, budget_.cancel);
  }
  const BudgetScope* episode = budget_armed_ ? &episode_scope : nullptr;

  for (std::unique_ptr<CircuitBreaker>& b : breakers_) b->Tick();
  // Opportunistically drain the deferred queue first: once a remote site
  // answers again, earlier optimistic applies are re-verified before new
  // work builds on them. Any reachable site is reason enough to try — the
  // drain itself skips entries whose own sites are still dark.
  bool any_would_allow = false;
  for (const std::unique_ptr<CircuitBreaker>& b : breakers_) {
    any_would_allow = any_would_allow || b->WouldAllow();
  }
  if (resilience_.auto_recheck && !deferred_.empty() && any_would_allow) {
    Result<std::vector<DeferredResolution>> drained =
        RecheckDeferredImpl(episode);
    if (!drained.ok()) return drained.status();
  }

  // The episode's serial position. A pipelined episode was numbered at
  // admission (admission order == commit order == the serial order), so
  // its conflict re-run must not draw a fresh number.
  uint64_t sequence = spec != nullptr ? spec->sequence : update_sequence_++;

  // A no-op update cannot change any constraint.
  bool noop =
      (u.kind == Update::Kind::kInsert &&
       site_.db().Contains(u.pred, u.tuple)) ||
      (u.kind == Update::Kind::kDelete &&
       !site_.db().Contains(u.pred, u.tuple));

  // Commit-map validation, after the prelude above: the breaker ticks and
  // the auto-recheck drain are part of THIS episode's commit turn, so a
  // drain that just mutated the database or the queue correctly
  // invalidates this episode's own speculation. A valid speculation's
  // phase 1 is reused wholesale (reports + replayed read charges); a
  // conflicted one is re-run inline on the live database — and because
  // commits are serialized, that single re-run cannot be invalidated
  // again. An unspeculated (serial-fallback) admission just runs cold.
  bool use_spec = false;
  if (spec != nullptr && spec->speculated) {
    use_spec = SpecStillValid(*spec);
    if (use_spec) {
      conflict_streak_ = 0;
      ctr_pipe_committed_->Add(1);
    } else {
      ctr_pipe_conflicts_->Add(1);
      ctr_pipe_retries_->Add(1);
      if (++conflict_streak_ >= pipeline_.max_conflict_streak) {
        // Sustained conflicts: stop speculating for a window of
        // admissions, then probe again.
        serial_fallback_remaining_ = pipeline_.depth;
        conflict_streak_ = 0;
      }
    }
  } else if (spec != nullptr) {
    ctr_pipe_unspeculated_->Add(1);
  }

  std::vector<CheckReport> reports;
  std::vector<Status> check_status;
  if (use_spec) {
    CCPI_DCHECK(noop == spec->noop);
    reports = std::move(spec->reports);
    check_status = std::move(spec->check_status);
    // Replay the buffered phase-1 charges in recorded order, so
    // AccessStats advance exactly as the serial phase 1 would have
    // advanced them here.
    for (const auto& [pred, count] : spec->buffered_reads) {
      CCPI_RETURN_IF_ERROR(site_.OnRead(pred, count));
    }
  } else {
  // The episode's update signature — the per-pattern plan-cache key
  // component shared by every constraint's check below. Null when the
  // cache is off (or the update is a no-op, which skips checking): every
  // cached path downstream is then bypassed.
  std::optional<UpdateSignature> plan_sig;
  if (plan_cache_.enabled && !noop) {
    plan_sig = MakeUpdateSignature(u, plan_constants_);
  }
  const UpdateSignature* sig = plan_sig.has_value() ? &*plan_sig : nullptr;

  // ---- Phase 1 (read-only, parallel): settle every constraint as far as
  // local information allows. Each lane owns exactly one Registered (its
  // tier-2 cache included), reads the frozen database, and writes its own
  // report slot; all shared sinks on this path (AccessStats, metrics
  // counters, Relation index builds) are atomic or internally locked, and
  // their final values are order-independent sums — so the fan-out is
  // report- and stats-equivalent to the sequential loop.
  const CheckContext live_ctx{&site_.db(), &site_, &deferred_};
  reports.resize(constraints_.size());
  check_status.resize(constraints_.size());
  bool parallel_checks = pool_->thread_count() > 1 && !noop &&
                         constraints_.size() > 1;
  if (parallel_checks || Relation::ColumnarEnabled()) {
    // Build every column index up front so checker threads mostly take the
    // shared (reader) path through Relation::Probe. With the columnar path
    // on, freezing also builds the segments the scan/join kernels dispatch
    // on — sequential runs want that too (freezing is stats-invisible:
    // it charges no accesses and draws no faults).
    site_.db().FreezeIndexes();
  }
  CCPI_RETURN_IF_ERROR(
      pool_->ParallelFor(constraints_.size(), [&](size_t i) -> Status {
        Registered& r = constraints_[i];
        if (r.subsumed) {
          reports[i] = CheckReport{r.name, Outcome::kHolds, Tier::kSubsumed};
          return Status::OK();
        }
        if (noop) {
          reports[i] =
              CheckReport{r.name, Outcome::kHolds, Tier::kUnaffected};
          return Status::OK();
        }
        Result<CheckReport> report = CheckOne(&r, u, sig, live_ctx);
        if (!report.ok()) {
          // Surfaced at this constraint's position in the commit phase, so
          // error reporting matches the sequential order.
          check_status[i] = report.status();
          reports[i].tier = Tier::kFullCheck;  // never read; keep defined
          return Status::OK();
        }
        reports[i] = std::move(*report);
        return Status::OK();
      }));
  }

  // ---- Phase 2 (serialized commit): counters and the tier-3 worklist,
  // in constraint order.
  std::vector<size_t> need_full;
  for (size_t i = 0; i < constraints_.size(); ++i) {
    CCPI_RETURN_IF_ERROR(check_status[i]);
    if (reports[i].tier == Tier::kFullCheck) {
      need_full.push_back(i);
    } else {
      ctr_resolved_[TierIndex(reports[i].tier)]->Add(1);
    }
  }

  bool violated = false;
  for (const CheckReport& r : reports) {
    violated = violated || r.outcome == Outcome::kViolated;
  }
  bool any_deferred = false;
  bool overflow_refused = false;

  if (!need_full.empty() && !violated) {
    // Tentatively apply, evaluate the undecided constraints on the new
    // state (remote reads charged), roll back on violation. A constraint
    // whose evaluation cannot reach the remote site resolves as kDeferred
    // instead of blocking or failing the whole update.
    CCPI_RETURN_IF_ERROR(u.ApplyTo(&site_.db()));
    LogCommitWrite(u.pred);
    // Admission accounting is cache-invariant by construction: a plan-
    // cache hit changes how a tier's verdict was computed, never the
    // verdict, so `need_full` — and with it every Split below, the
    // prefetch union, and the t3_admitted == resolved_by[kFullCheck] +
    // deferred + shed_checks invariant — is identical cache on or off
    // (regression-tested in plan_cache_test).
    ctr_t3_admitted_->Add(need_full.size());

    // Route the episode's remote trips — prefetch included — through the
    // budget for the duration of the tier-3 block, so a passed deadline
    // refuses trips before paying them. With one site the episode scope
    // itself is installed (exactly the pre-topology behavior); with N
    // sites each site gets an equal child scope so one hot site cannot
    // starve the trips of the others.
    std::vector<BudgetScope> site_scopes;
    if (budget_armed_) {
      if (site_.sites() == 1) {
        site_.set_budget(&episode_scope);
      } else {
        site_scopes.resize(site_.sites());
        for (size_t s = 0; s < site_scopes.size(); ++s) {
          site_scopes[s] = episode_scope.Split(site_.sites(), {});
          site_.set_site_budget(s, &site_scopes[s]);
        }
      }
    }
    struct SiteBudgetRestore {
      SiteDatabase* site;
      bool armed;
      ~SiteBudgetRestore() {
        if (armed) site->set_budget(nullptr);
      }
    } restore_site_budget{&site_, budget_armed_};

    // Batched prefetch: fetch each distinct remote relation the worklist
    // needs at most once, before any evaluation, so the per-constraint
    // evaluations (parallel or not) read it as cache hits instead of each
    // paying its own trip. Runs at every thread count — the cache's hit
    // and trip counts must not depend on the fan-out width — but never
    // under fault injection (each logical read must consume its own draw
    // of the failure schedule in evaluation order) and never while the
    // breaker is non-closed (a fast-failing episode performs no reads, so
    // prefetching for it would pay trips the uncached path never pays).
    if (site_.remote_cache_enabled() && !site_.any_fault_injector()) {
      if (site_.sites() == 1) {
        if (breakers_[0]->state() == CircuitState::kClosed) {
          std::set<std::string> episode_preds;
          for (size_t idx : need_full) {
            const std::set<std::string>& preds = constraints_[idx].remote_edb;
            episode_preds.insert(preds.begin(), preds.end());
          }
          // A valid speculation already slept the round trips for (a
          // subset of) these relations at speculation time; commit the
          // staged fetches that are still exactly what the serial path
          // would fetch here and let the normal prefetch cover whatever
          // was not staged or was discarded (version moved, entry already
          // filled by an intervening commit, breaker opened since).
          if (use_spec) {
            for (const SiteDatabase::StagedFetch& sf : spec->staged) {
              if (site_.CommitStagedFetch(sf)) episode_preds.erase(sf.pred);
            }
          }
          site_.PrefetchRemote(episode_preds);
        }
      } else {
        // N sites: coalesce the worklist's remote relations into per-site
        // batches and fetch the batches concurrently — one round trip per
        // site — skipping any site whose breaker is not closed (its
        // episodes fast-fail without reading, so prefetching for it would
        // pay trips the uncached path never pays). Runs before the tier-3
        // fan-out, so the pool is free to carry the batch fan-out here.
        std::set<std::string> batched;
        for (size_t idx : need_full) {
          for (const std::string& pred : constraints_[idx].remote_edb) {
            if (breakers_[site_.SiteOf(pred)]->state() ==
                CircuitState::kClosed) {
              batched.insert(pred);
            }
          }
        }
        site_.PrefetchRemoteBatched(batched, pool_.get());
      }
    }

    // Tier 3 may fan out only when remote verdicts cannot depend on
    // arrival order: the fault injector consumes one RNG draw per remote
    // trip in global order, and an open/half-open breaker admits episodes
    // by arrival — either would make interleaved evaluations
    // seed-irreproducible. With neither in play, each evaluation is a pure
    // function of (program, frozen database) and the fan-out commits
    // verdicts in constraint order below. An episode-wide remote-trip cap
    // is arrival-order dependent for the same reason the injector is (the
    // shared counter bills trips in global order), so it too forces the
    // sequential path.
    bool parallel_t3 = pool_->thread_count() > 1 && need_full.size() > 1 &&
                       !site_.any_fault_injector() && AllBreakersClosed() &&
                       budget_.per_episode.max_remote_trips == 0;

    // Budget split: every undecided constraint gets an *identical* child
    // scope — 1/N of each episode cap, the episode's absolute deadline and
    // cancellation token, tightened by the per-check envelope. The split
    // depends only on configuration and the worklist size, never on
    // sibling progress, so verdicts cannot depend on the fan-out width.
    std::vector<BudgetScope> check_scopes(budget_armed_ ? need_full.size()
                                                        : 0);
    for (BudgetScope& scope : check_scopes) {
      scope = episode_scope.Split(need_full.size(), budget_.per_check);
    }
    auto scope_for = [&](size_t k) -> const BudgetScope* {
      return budget_armed_ ? &check_scopes[k] : nullptr;
    };

    std::vector<Status> eval_status(need_full.size());
    std::vector<char> eval_bad(need_full.size(), 0);
    std::vector<size_t> eval_retries(need_full.size(), 0);
    // Latency-aware shed — the refuse-before-pay rule extended from spent
    // budgets to projected latency: when a member site's observed-latency
    // EWMA already says one round trip cannot finish inside the check's
    // remaining deadline, the check is shed to kDeferred *before* paying
    // the trip (no draw consumed, no trip billed), instead of paying the
    // trip and shedding at the next checkpoint anyway.
    std::vector<char> lat_shed(need_full.size(), 0);
    auto latency_projects_over = [&](size_t k) -> bool {
      if (!latency_aware_) return false;
      const BudgetScope* scope = scope_for(k);
      if (scope == nullptr || !scope->has_deadline()) return false;
      uint64_t worst_us = 0;
      for (size_t s : constraints_[need_full[k]].remote_sites) {
        worst_us = std::max(worst_us, site_.site_latency_ewma_us(s));
      }
      if (worst_us == 0) return false;  // no observation yet: try the trip
      return worst_us / 1000 >= scope->remaining_ms();
    };
    if (parallel_t3 || Relation::ColumnarEnabled()) {
      // The tentative apply dirtied u.pred; re-freeze so tier 3 reads
      // built indexes (and, columnar on, fresh segments).
      site_.db().FreezeIndexes();
    }
    if (parallel_t3) {
      CCPI_RETURN_IF_ERROR(
          pool_->ParallelFor(need_full.size(), [&](size_t k) -> Status {
            const Registered& reg = constraints_[need_full[k]];
            if (latency_projects_over(k)) {
              lat_shed[k] = 1;
              eval_status[k] = Status::ResourceExhausted(
                  "projected trip latency exceeds remaining deadline");
              return Status::OK();
            }
            Result<bool> bad =
                EvaluateRemote(reg.program, site_.db(), reg.remote_sites,
                               &eval_retries[k], scope_for(k), &reg.name);
            if (!bad.ok()) {
              eval_status[k] = bad.status();
              return Status::OK();
            }
            eval_bad[k] = *bad ? 1 : 0;
            return Status::OK();
          }));
    }
    for (size_t k = 0; k < need_full.size(); ++k) {
      size_t idx = need_full[k];
      CheckReport& report = reports[idx];
      const Registered& reg = constraints_[idx];
      if (!parallel_t3) {
        if (!SitesWouldAllow(reg.remote_sites)) {
          // Circuit open: a site this check needs is known-dead; fail
          // fast. Checks whose sites are all healthy still run — tier-3
          // degradation is partial, per fault domain.
          report.outcome = Outcome::kDeferred;
          report.reason = StatusCode::kUnavailable;
          ctr_deferred_->Add(1);
          ctr_fast_fails_->Add(1);
          any_deferred = true;
          continue;
        }
        if (latency_projects_over(k)) {
          lat_shed[k] = 1;
          eval_status[k] = Status::ResourceExhausted(
              "projected trip latency exceeds remaining deadline");
        } else {
          ClaimSites(reg.remote_sites);
          Result<bool> bad =
              EvaluateRemote(reg.program, site_.db(), reg.remote_sites,
                             &eval_retries[k], scope_for(k), &reg.name);
          if (!bad.ok()) {
            eval_status[k] = bad.status();
          } else {
            eval_bad[k] = *bad ? 1 : 0;
          }
        }
      }
      report.retries = eval_retries[k];
      if (!eval_status[k].ok()) {
        if (eval_status[k].code() == StatusCode::kResourceExhausted) {
          // Shed: the envelope was spent before a verdict. The optimistic
          // apply stands and the check joins the deferred queue like an
          // unreachable-site deferral, but is counted separately — the
          // site is fine, the budget is not.
          report.outcome = Outcome::kDeferred;
          report.reason = StatusCode::kResourceExhausted;
          ctr_shed_->Add(1);
          if (lat_shed[k] != 0 && ctr_latency_shed_ != nullptr) {
            ctr_latency_shed_->Add(1);
          }
          any_deferred = true;
          continue;
        }
        if (!IsRetriable(eval_status[k].code())) return eval_status[k];
        // Unreachable after retries: degrade, don't error out.
        report.outcome = Outcome::kDeferred;
        report.reason = eval_status[k].code();
        ctr_deferred_->Add(1);
        any_deferred = true;
        continue;
      }
      report.outcome =
          eval_bad[k] != 0 ? Outcome::kViolated : Outcome::kHolds;
      ctr_resolved_[TierIndex(Tier::kFullCheck)]->Add(1);
      violated = violated || eval_bad[k] != 0;
    }
    if (violated) {
      // Roll back: a definite violation wins over any deferral.
      CCPI_RETURN_IF_ERROR(InverseOf(u).ApplyTo(&site_.db()));
      LogCommitWrite(u.pred);
    } else if (any_deferred) {
      if (resilience_.on_unreachable == DeferredPolicy::kOptimisticApply) {
        // Keep the optimistic apply; queue each undecided constraint for
        // re-verification once the remote site answers — unless the queue
        // cap says the backlog of unverified work is already at its bound.
        size_t fresh = 0;
        for (const CheckReport& r : reports) {
          fresh += r.outcome == Outcome::kDeferred ? 1 : 0;
        }
        size_t cap = budget_.deferred_queue_cap;
        bool over = cap != 0 && deferred_.size() + fresh > cap;
        bool drain_reachable = false;
        for (const std::unique_ptr<CircuitBreaker>& b : breakers_) {
          drain_reachable = drain_reachable || b->WouldAllow();
        }
        if (over && budget_.overflow == OverflowPolicy::kBlockRecheck &&
            drain_reachable) {
          // Block: one synchronous drain pass to make room, then re-check
          // occupancy; falls back to refusal below if it freed nothing.
          Result<std::vector<DeferredResolution>> drained =
              RecheckDeferredImpl(episode);
          if (!drained.ok()) return drained.status();
          over = deferred_.size() + fresh > cap;
        }
        if (over && budget_.overflow != OverflowPolicy::kShedOldest) {
          // The queue bounds the optimistic, still-unverified state this
          // site carries; refuse to exceed it (kRejectUpdate, or a
          // kBlockRecheck drain that could not make room).
          CCPI_RETURN_IF_ERROR(InverseOf(u).ApplyTo(&site_.db()));
          LogCommitWrite(u.pred);
          ctr_budget_exhausted_->Add(1);
          for (CheckReport& r : reports) {
            if (r.outcome == Outcome::kDeferred) r.queue_overflow = true;
          }
          overflow_refused = true;
        } else {
          for (const CheckReport& r : reports) {
            if (r.outcome == Outcome::kDeferred) {
              deferred_.push_back(DeferredCheck{u, r.constraint, sequence});
            }
          }
          // Shed-oldest: admit the fresh entries and drop from the front.
          // A dropped entry's optimistic apply stays standing, permanently
          // unverified — availability bought with bounded, oldest-first
          // verification debt.
          while (cap != 0 && deferred_.size() > cap) {
            deferred_.pop_front();
            ctr_deferred_dropped_->Add(1);
          }
          ++deferred_epoch_;
        }
      } else {
        // Conservative policy: refuse updates we cannot fully verify.
        CCPI_RETURN_IF_ERROR(InverseOf(u).ApplyTo(&site_.db()));
        LogCommitWrite(u.pred);
      }
    }
  } else if (!violated && !noop) {
    CCPI_RETURN_IF_ERROR(u.ApplyTo(&site_.db()));
    LogCommitWrite(u.pred);
  }

  bool kept =
      !noop && !violated && !overflow_refused &&
      !(any_deferred &&
        resilience_.on_unreachable == DeferredPolicy::kReject);
  if (kept) {
    // An applied update supersedes any queued re-check of its exact
    // inverse: that check's effect no longer exists, so there is nothing
    // left to verify or roll back (and tier 2 never trusted it).
    for (auto it = deferred_.begin(); it != deferred_.end();) {
      bool moot = it->sequence != sequence && it->update.pred == u.pred &&
                  it->update.tuple == u.tuple && it->update.kind != u.kind;
      if (moot) {
        it = deferred_.erase(it);
        ++deferred_epoch_;
      } else {
        ++it;
      }
    }
  }

  if (violated) ctr_violations_->Add(1);
  if (episode_scope.has_deadline()) {
    hist_budget_remaining_->Observe(episode_scope.remaining_ms());
  }
  DetectRecoveries();
  return reports;
}

void ConstraintManager::DetectRecoveries() {
  if (site_.sites() <= 1) return;
  for (size_t s = 0; s < breakers_.size(); ++s) {
    if (breakers_[s]->state() != CircuitState::kClosed) {
      site_was_dark_[s] = true;
      continue;
    }
    if (!site_was_dark_[s]) continue;
    // Outage→closed edge: the site is answering again. Deferred entries
    // naming it drain through the normal auto-recheck rotation; what must
    // happen here is cache reconciliation — entries poisoned by failed
    // reads during the outage are refetched so the first post-recovery
    // checks do not pay surprise misses (or trust nothing).
    site_was_dark_[s] = false;
    obs::Span span("manager.site_recovery", "manager");
    if (span.active()) span.Attr("site", static_cast<int64_t>(s));
    ctr_sites_recovered_->Add(1);
    if (ctr_site_recovered_[s] != nullptr) ctr_site_recovered_[s]->Add(1);
    std::set<std::string> preds;
    for (const Registered& r : constraints_) {
      for (const std::string& pred : r.remote_edb) {
        if (site_.SiteOf(pred) == s) preds.insert(pred);
      }
    }
    size_t revalidated = site_.RecoverSiteCache(s, preds);
    if (revalidated > 0) ctr_cache_revalidated_->Add(revalidated);
    if (span.active()) {
      span.Attr("revalidated", static_cast<int64_t>(revalidated));
    }
  }
}

Result<std::vector<DeferredResolution>> ConstraintManager::RecheckDeferred() {
  // The queue is order-sensitive shared state; retire in-flight episodes
  // before draining it.
  DrainInflightInternal();
  Result<std::vector<DeferredResolution>> resolved = RecheckDeferredImpl(nullptr);
  // An explicit drain is also a recovery observation point: the caller is
  // typically polling after an outage, often with no further updates
  // flowing through ApplyUpdate.
  if (resolved.ok()) DetectRecoveries();
  return resolved;
}

Result<std::vector<DeferredResolution>>
ConstraintManager::RecheckDeferredImpl(const BudgetScope* episode) {
  std::vector<DeferredResolution> resolved;
  if (deferred_.empty()) return resolved;
  obs::Span span("manager.recheck_deferred", "manager");
  if (span.active()) {
    span.Attr("queued", static_cast<int64_t>(deferred_.size()));
  }

  // Re-verify each deferred update against the state it was checked in:
  // a scratch copy of the database with every still-pending optimistic
  // effect removed, then replayed in sequence order. Checking against the
  // raw current state instead would blame the oldest queued update for a
  // violation actually introduced by a younger one.
  Database scratch = site_.db();
  for (const DeferredCheck& entry : deferred_) {
    if (EffectPresent(entry.update, scratch)) {
      CCPI_RETURN_IF_ERROR(InverseOf(entry.update).ApplyTo(&scratch));
    }
  }

  // The evaluations below read `scratch`, not the live database, so cache
  // decisions must key off scratch's relation versions: a scratch relation
  // whose pending effects were just removed carries a fresh version and
  // correctly misses, while untouched relations still share the live
  // version and hit. Restored on every exit path.
  site_.set_cache_db(&scratch);
  struct CacheDbRestore {
    SiteDatabase* site;
    ~CacheDbRestore() { site->set_cache_db(nullptr); }
  } restore_cache_db{&site_};

  // Rotation drain: an entry whose site is still down — or whose re-check
  // budget was spent — is requeued at the back instead of pinning the
  // head, so one dead site never blocks entries for other, reachable
  // sites queued behind it. Each pass visits at most the entries present
  // when it started; draining stops once a full pass resolves nothing.
  auto any_reachable = [&]() {
    for (const std::unique_ptr<CircuitBreaker>& b : breakers_) {
      if (b->WouldAllow()) return true;
    }
    return false;
  };
  // The drain below reorders or resolves queue entries either way, so any
  // in-flight episode's speculation (which captured the queue at its
  // admission) is invalidated wholesale.
  if (!deferred_.empty() && any_reachable()) ++deferred_epoch_;
  bool progress = true;
  while (progress && !deferred_.empty() && any_reachable()) {
    progress = false;
    size_t pass = deferred_.size();
    for (size_t i = 0; i < pass && !deferred_.empty(); ++i) {
      if (!any_reachable()) break;
      DeferredCheck entry = deferred_.front();
      const Registered* reg = nullptr;
      for (const Registered& r : constraints_) {
        if (r.name == entry.constraint) reg = &r;
      }
      if (reg == nullptr) {  // constraint no longer registered
        deferred_.pop_front();
        progress = true;
        continue;
      }
      // Replay this entry's update into the scratch pre-state before its
      // verdict is attempted — a skipped entry keeps its effect replayed,
      // so younger entries are still judged against the state their check
      // originally saw. (A no-op for a second constraint of the same
      // update, or for an update a late rollback already rejected;
      // EffectPresent keeps the replay idempotent across passes.)
      if (!EffectPresent(entry.update, scratch)) {
        CCPI_RETURN_IF_ERROR(entry.update.ApplyTo(&scratch));
      }
      // Each re-check runs under its own envelope: the per-check budget,
      // tightened by the enclosing episode's scope when the drain happens
      // inside a budgeted ApplyUpdate. Routed through the site too, so
      // the re-check's remote trips honor the trip cap and deadline.
      BudgetScope recheck_scope;
      if (episode != nullptr) {
        recheck_scope = episode->Split(1, budget_.per_check);
      } else if (budget_armed_) {
        recheck_scope =
            BudgetScope::Start(budget_.per_check, budget_.cancel);
      }
      // A named site still dark: requeue without evaluating (and without
      // touching `progress`, so a queue of only-dark entries terminates
      // the pass). With one site this is unreachable — any_reachable()
      // above is the same predicate.
      if (!SitesWouldAllow(reg->remote_sites)) {
        deferred_.pop_front();
        deferred_.push_back(std::move(entry));
        continue;
      }
      ClaimSites(reg->remote_sites);
      const BudgetScope* scope =
          recheck_scope.active() ? &recheck_scope : nullptr;
      std::vector<const BudgetScope*> prev_budgets(site_.sites());
      if (scope != nullptr) {
        for (size_t s = 0; s < site_.sites(); ++s) {
          prev_budgets[s] = site_.site_budget(s);
        }
        site_.set_budget(scope);
      }
      size_t recheck_retries = 0;
      Result<bool> bad = EvaluateRemote(reg->program, scratch,
                                        reg->remote_sites, &recheck_retries,
                                        scope, &reg->name);
      if (scope != nullptr) {
        for (size_t s = 0; s < site_.sites(); ++s) {
          site_.set_site_budget(s, prev_budgets[s]);
        }
      }
      if (!bad.ok()) {
        StatusCode code = bad.status().code();
        if (IsRetriable(code) || code == StatusCode::kResourceExhausted) {
          // Skip and requeue; the next entry may be reachable.
          deferred_.pop_front();
          deferred_.push_back(std::move(entry));
          continue;
        }
        return bad.status();
      }
      DeferredResolution res;
      res.check = entry;
      res.retries = recheck_retries;
      deferred_.pop_front();
      progress = true;
      if (*bad) {
        // Late-detected violation: compensate by undoing the optimistic
        // apply — in the replay state and, unless a later update already
        // removed its effect, in the real database.
        res.outcome = Outcome::kViolated;
        ctr_deferred_violations_->Add(1);
        ctr_violations_->Add(1);
        CCPI_RETURN_IF_ERROR(InverseOf(res.check.update).ApplyTo(&scratch));
        if (EffectPresent(res.check.update, site_.db())) {
          CCPI_RETURN_IF_ERROR(
              InverseOf(res.check.update).ApplyTo(&site_.db()));
          LogCommitWrite(res.check.update.pred);
          res.rolled_back = true;
        }
      } else {
        res.outcome = Outcome::kHolds;
        ctr_deferred_recovered_->Add(1);
      }
      resolved.push_back(std::move(res));
    }
  }
  gauge_deferred_len_->Set(static_cast<int64_t>(deferred_.size()));
  return resolved;
}

Result<ConstraintManager::TransactionResult> ConstraintManager::ApplyTransaction(
    const std::vector<Update>& updates) {
  // Transactions are serial by definition; retire in-flight episodes so
  // first_sequence below really is the first sequence this call draws.
  DrainInflightInternal();
  TransactionResult result;
  uint64_t first_sequence = update_sequence_;
  // Remember which updates actually change state, for exact rollback.
  std::vector<Update> applied;
  for (const Update& u : updates) {
    bool noop = (u.kind == Update::Kind::kInsert &&
                 site_.db().Contains(u.pred, u.tuple)) ||
                (u.kind == Update::Kind::kDelete &&
                 !site_.db().Contains(u.pred, u.tuple));
    CCPI_ASSIGN_OR_RETURN(std::vector<CheckReport> reports, ApplyUpdate(u));
    bool refused = UpdateRefused(reports);
    result.reports.push_back(std::move(reports));
    if (refused) {
      // ApplyUpdate already refused this update; undo the earlier ones in
      // reverse order and drop any re-check entries this transaction
      // enqueued (their updates no longer exist).
      for (auto it = applied.rbegin(); it != applied.rend(); ++it) {
        CCPI_RETURN_IF_ERROR(InverseOf(*it).ApplyTo(&site_.db()));
        LogCommitWrite(it->pred);
      }
      for (auto it = deferred_.begin(); it != deferred_.end();) {
        if (it->sequence >= first_sequence) {
          it = deferred_.erase(it);
          ++deferred_epoch_;
        } else {
          ++it;
        }
      }
      result.committed = false;
      return result;
    }
    if (!noop) applied.push_back(u);
  }
  result.committed = true;
  return result;
}

// ---------------------------------------------------------------------------
// Episode scheduler: ApplyUpdateAsync admissions, speculative phase 1, and
// the serialized commit map. All scheduler state is owned by the admitting
// thread; speculation tasks touch only their own Episode (plus internally
// thread-safe shared components) and publish through the done/cv handshake.

void ConstraintManager::ApplyUpdateAsync(const Update& u) {
  // Budget-armed managers never pipeline: wall-clock deadlines are
  // admission-order sensitive, so speculation could change which checks a
  // deadline sheds.
  const size_t depth = budget_armed_ ? 1 : pipeline_.depth;
  if (depth <= 1) {
    // Degenerate pipeline: exactly ApplyUpdate, result parked for Drain.
    pending_results_.push_back(RunEpisode(u, nullptr));
    return;
  }
  // Full pipeline: retire the oldest episode through the commit map to
  // make room before admitting.
  while (inflight_.size() >= depth) CommitHeadToPending();

  auto e = std::make_unique<Episode>();
  e->update = u;
  // Numbered at admission: admission order == commit order == the serial
  // order, so sequences match depth-1 execution exactly.
  e->sequence = update_sequence_++;
  e->deferred_epoch = deferred_epoch_;
  e->write_mark = commit_writes_.size();
  ctr_pipe_admitted_->Add(1);
  if (serial_fallback_remaining_ > 0) {
    // Serial fallback window after sustained conflicts: admit without
    // speculating; the commit turn runs the episode cold.
    --serial_fallback_remaining_;
    e->speculated = false;
    e->done = true;
  } else {
    e->speculated = true;
    // The MVCC admission snapshot: a copy-on-write Database copy —
    // O(#relations) shared_ptr bumps, no tuple copying.
    e->snapshot = site_.db();
    e->deferred_snapshot = deferred_;
  }
  Episode* raw = e.get();
  inflight_.push_back(std::move(e));
  gauge_pipe_in_flight_->Set(static_cast<int64_t>(inflight_.size()));
  if (raw->speculated) SpeculateEpisode(raw);
}

std::vector<Result<std::vector<CheckReport>>> ConstraintManager::Drain() {
  DrainInflightInternal();
  std::vector<Result<std::vector<CheckReport>>> out;
  out.swap(pending_results_);
  return out;
}

void ConstraintManager::SpeculateEpisode(Episode* e) {
  pool_->Submit([this, e]() {
    try {
      SpeculatePhase1(e);
    } catch (...) {
      // Never expected (the checking code reports through Status); a
      // stray exception just downgrades the episode to a cold run.
      e->speculated = false;
    }
    {
      std::lock_guard<std::mutex> lock(e->mu);
      e->done = true;
    }
    e->cv.notify_all();
  });
}

void ConstraintManager::SpeculatePhase1(Episode* e) {
  const Update& u = e->update;
  BufferingObserver buffer;
  const CheckContext ctx{&e->snapshot, &buffer, &e->deferred_snapshot};
  e->noop = (u.kind == Update::Kind::kInsert &&
             e->snapshot.Contains(u.pred, u.tuple)) ||
            (u.kind == Update::Kind::kDelete &&
             !e->snapshot.Contains(u.pred, u.tuple));

  std::optional<UpdateSignature> plan_sig;
  if (plan_cache_.enabled && !e->noop) {
    plan_sig = MakeUpdateSignature(u, plan_constants_);
  }
  const UpdateSignature* sig = plan_sig.has_value() ? &*plan_sig : nullptr;

  // Phase 1 against the snapshot, sequentially on this worker: the
  // parallelism of the pipeline is across episodes, not within one.
  e->reports.resize(constraints_.size());
  e->check_status.resize(constraints_.size());
  bool all_ok = true;
  bool violated = false;
  for (size_t i = 0; i < constraints_.size(); ++i) {
    Registered& r = constraints_[i];
    if (r.subsumed) {
      e->reports[i] = CheckReport{r.name, Outcome::kHolds, Tier::kSubsumed};
      continue;
    }
    if (e->noop) {
      e->reports[i] = CheckReport{r.name, Outcome::kHolds, Tier::kUnaffected};
      continue;
    }
    Result<CheckReport> report = CheckOne(&r, u, sig, ctx);
    if (!report.ok()) {
      e->check_status[i] = report.status();
      e->reports[i].tier = Tier::kFullCheck;  // never read; keep defined
      all_ok = false;
      continue;
    }
    violated = violated || report->outcome == Outcome::kViolated;
    e->reports[i] = std::move(*report);
  }

  // The validation read set. Tier 1 is db-free and tier 2 reads only the
  // updated local relation, so in practice this is {u.pred}; recording
  // the buffered reads keeps it correct by construction either way.
  e->read_preds.insert(u.pred);
  for (const auto& [pred, count] : buffer.reads) e->read_preds.insert(pred);
  e->buffered_reads = std::move(buffer.reads);

  // Staged remote prefetch: pay the tier-3 worklist's simulated round
  // trips NOW, on this worker, where they overlap other episodes' stages —
  // the latency-hiding that makes the pipeline beat depth 1 in wall-clock.
  // Only where the serial path would itself batch-prefetch (cache on, no
  // injector, breaker closed; single-site — the multi-site batcher has its
  // own coalescing) and never under budgets (staged commits bypass budget
  // scopes; budget-armed managers do not pipeline at all). The updated
  // relation itself is skipped: the commit-time tentative apply re-stamps
  // its version, so a staged fetch of it could never commit.
  if (all_ok && !violated && !e->noop && site_.sites() == 1 &&
      site_.remote_cache_enabled() && !site_.any_fault_injector() &&
      breakers_[0]->state() == CircuitState::kClosed) {
    std::set<std::string> preds;
    for (size_t i = 0; i < constraints_.size(); ++i) {
      if (!constraints_[i].subsumed && e->check_status[i].ok() &&
          e->reports[i].tier == Tier::kFullCheck) {
        preds.insert(constraints_[i].remote_edb.begin(),
                     constraints_[i].remote_edb.end());
      }
    }
    for (const std::string& pred : preds) {
      if (pred == u.pred) continue;
      e->staged.push_back(site_.StageRemoteFetch(pred, e->snapshot));
    }
  }
}

void ConstraintManager::CommitHeadToPending() {
  if (inflight_.empty()) return;
  Episode* e = inflight_.front().get();
  {
    // Wait for the speculation to publish (immediate for unspeculated
    // admissions). The wait is the pipeline's only synchronization point.
    obs::Stopwatch sw;
    std::unique_lock<std::mutex> lock(e->mu);
    e->cv.wait(lock, [e]() { return e->done; });
    sw.RecordTo(hist_pipe_commit_wait_);
  }
  pending_results_.push_back(RunEpisode(e->update, e));
  inflight_.pop_front();
  // The write log only exists to validate in-flight speculation; with
  // nothing in flight it restarts empty (and write marks restart at 0).
  if (inflight_.empty()) commit_writes_.clear();
  gauge_pipe_in_flight_->Set(static_cast<int64_t>(inflight_.size()));
}

void ConstraintManager::DrainInflightInternal() {
  while (!inflight_.empty()) CommitHeadToPending();
}

void ConstraintManager::AbandonInflight() {
  // Destructor path: wait for speculation tasks (they touch this
  // manager's members) but commit nothing — uncommitted episodes are
  // discarded, never applied.
  for (std::unique_ptr<Episode>& ep : inflight_) {
    std::unique_lock<std::mutex> lock(ep->mu);
    ep->cv.wait(lock, [&ep]() { return ep->done; });
  }
  inflight_.clear();
  commit_writes_.clear();
}

bool ConstraintManager::SpecStillValid(const Episode& e) const {
  // The queue changed shape since admission: tier 2's verified-data
  // adjustment and the moot-erase pass saw a queue that no longer exists.
  if (e.deferred_epoch != deferred_epoch_) return false;
  // Read-write conflict: an intervening commit wrote a relation this
  // episode's phase 1 read.
  for (size_t i = e.write_mark; i < commit_writes_.size(); ++i) {
    if (e.read_preds.count(commit_writes_[i]) > 0) return false;
  }
  return true;
}

void ConstraintManager::LogCommitWrite(const std::string& pred) {
  if (!inflight_.empty()) commit_writes_.push_back(pred);
}

}  // namespace ccpi
