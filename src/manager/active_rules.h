#ifndef CCPI_MANAGER_ACTIVE_RULES_H_
#define CCPI_MANAGER_ACTIVE_RULES_H_

#include <functional>
#include <string>
#include <vector>

#include "datalog/ast.h"
#include "relational/database.h"
#include "updates/update.h"
#include "util/status.h"

namespace ccpi {

/// Application 2 of the paper (Section 2): active-database rules
/// "if C holds, then perform action A", treated as constraints
/// panic :- C with the action fired on deriving panic.
///
/// The key difference from integrity maintenance: because of how active
/// rules are detected and fired (Ceri–Widom), the engine may NOT assume
/// the conditions were false (or true) before an update. The only
/// data-free reasoning available is therefore *irrelevance*: if the
/// rewritten condition is equivalent to the original (contained both
/// ways), the update cannot change the condition's value and the rule
/// need not be re-evaluated.
class ActiveRuleEngine {
 public:
  using Action = std::function<void(Database* db)>;

  explicit ActiveRuleEngine(Database* db) : db_(db) {}

  /// Registers a rule. `condition` is a constraint program (goal panic).
  Status AddRule(const std::string& name, Program condition, Action action);

  /// Statistics of one ProcessUpdate call.
  struct ProcessResult {
    std::vector<std::string> skipped_irrelevant;  // no re-evaluation needed
    std::vector<std::string> evaluated;           // condition re-evaluated
    std::vector<std::string> fired;               // condition true: action ran
  };

  /// Applies the update, re-evaluates the conditions the update is
  /// relevant to, and fires their actions (in registration order) when the
  /// condition holds. Actions may modify the database; resulting cascades
  /// are NOT followed automatically (call ProcessUpdate for the updates an
  /// action performs, as an active-rule executor would).
  Result<ProcessResult> ProcessUpdate(const Update& u);

 private:
  struct ActiveRule {
    std::string name;
    Program condition;
    Action action;
  };

  Database* db_;
  std::vector<ActiveRule> rules_;
};

}  // namespace ccpi

#endif  // CCPI_MANAGER_ACTIVE_RULES_H_
