#ifndef CCPI_MANAGER_SCRIPT_H_
#define CCPI_MANAGER_SCRIPT_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "datalog/ast.h"
#include "distsim/cost_model.h"
#include "distsim/fault_injector.h"
#include "distsim/topology.h"
#include "manager/constraint_manager.h"
#include "relational/database.h"
#include "updates/update.h"
#include "util/status.h"

namespace ccpi {

/// A declarative constraint-checking workload, the input format of the
/// `ccpi_check` tool. Line-oriented:
///
///     # comments with '#' or '%'
///     local reserved emp            # predicates held at this site
///     constraint no-dual            # begins a named constraint...
///     panic :- assign(E,sales) & assign(E,accounting)
///     constraint referential        # ...until the next directive
///     panic :- emp(E,D,S) & not dept(D)
///     fact emp(ann, cs, 120)        # initial data (not checked)
///     insert emp(bob, ee, 90)       # update stream, checked in order
///     delete emp(ann, cs, 120)
///     sites 3                       # remote fault domains (default 1)
///     site 1 dept assign            # pin remote preds to a site; unpinned
///                                   # ones hash to a site deterministically
///     site_latency 1 twopoint:100:5000:0.1   # per-site latency model
///     domain rack0 0 1              # correlated failure domain
///     domain_outage rack0 4 10      # whole domain dark for trips 4..9
///     hedge_after 3                 # hedge batched reads past 3x EWMA
///     plan_cache off                # compiled-plan cache (default on)
///     pipeline 4                    # episode pipeline depth (default 1)
///
/// Rules may span lines exactly as in ParseProgram (break after `:-`, `&`
/// or `,`).
struct Script {
  std::set<std::string> local_preds;
  std::vector<std::pair<std::string, Program>> constraints;
  Database initial;
  std::vector<Update> updates;
  /// Remote-site topology from `sites` / `site` / `site_latency` /
  /// `domain` / `domain_outage` directives; command-line flags (--sites,
  /// --placement, --site-latency, --domains, --domain-outage) override it
  /// field-wise.
  TopologyConfig topology;
  /// `plan_cache on|off` directive; unset means the default (on). The
  /// --plan-cache flag overrides it (flags win).
  std::optional<bool> plan_cache;
  /// `pipeline N` directive: episode pipeline depth; unset means the
  /// default (1 = serial). The --pipeline-depth flag overrides it
  /// (flags win).
  std::optional<size_t> pipeline_depth;
  /// `hedge_after N` directive: hedged batched reads past N x the site's
  /// latency EWMA; unset means the default (0 = off). The --hedge-after
  /// flag overrides it (flags win).
  std::optional<uint64_t> hedge_after;
};

Result<Script> ParseScript(std::string_view text);

/// Execution options of a script run: access pricing, fault injection on
/// the simulated remote site, and the manager's degradation policy.
/// Per-site overrides of the base FaultConfig, from the --site-fault-*
/// flags. Unset fields inherit the base (global) fault flags; outage
/// windows are appended to the inherited ones.
struct SiteFaultOverride {
  std::optional<double> transient_rate;
  std::optional<double> timeout_rate;
  std::optional<uint64_t> seed;
  std::vector<OutageWindow> outages;
};

struct ScriptOptions {
  CostModel costs;
  /// Remote faults to inject; used only when enable_faults is true. With
  /// N sites this is the base config every site inherits: site 0 keeps
  /// the seed verbatim, site s derives seed + s * golden-ratio so the
  /// sites draw independent schedules by default.
  FaultConfig faults;
  bool enable_faults = false;
  /// Remote-site topology from --sites / --placement / --site-latency /
  /// --domains; overrides the script's own directives field-wise (flags
  /// win).
  TopologyConfig topology;
  bool topology_from_flags = false;
  /// Whether --domains was given: the flag's domain list replaces the
  /// script's `domain` directives wholesale.
  bool domains_from_flags = false;
  /// Whether any --site-latency was given; flag entries override the
  /// script's `site_latency` directives site-wise.
  bool site_latency_from_flags = false;
  /// Correlated-outage windows from --domain-outage=NAME:A:B, attached by
  /// name to the effective (post-merge) failure domains. A window naming a
  /// domain that does not exist after the merge fails the run. Any entry
  /// implies fault injection (the expanded windows ride the per-site
  /// FaultInjectors).
  std::map<std::string, std::vector<OutageWindow>> domain_outages;
  /// Per-site fault overrides from --site-fault-rate=S:P and friends;
  /// any entry implies enable_faults.
  std::map<size_t, SiteFaultOverride> site_faults;
  ResilienceConfig resilience;
  /// Checker lanes for the manager's per-constraint fan-out
  /// (ccpi_check --threads). Reports are identical at any thread count.
  ParallelConfig parallel;
  /// Remote-read snapshot cache (ccpi_check --remote-cache). On by
  /// default; semantically invisible either way. Its hedge_after field
  /// (ccpi_check --hedge-after) arms hedged batched reads.
  RemoteCacheConfig remote_cache;
  /// Whether --hedge-after was given explicitly; when set it overrides
  /// the script's own `hedge_after` directive (flags win).
  bool hedge_from_flags = false;
  /// Compiled-plan cache (ccpi_check --plan-cache). On by default;
  /// semantically invisible either way — reports and ManagerStats are
  /// byte-identical on or off.
  PlanCacheConfig plan_cache;
  /// Whether --plan-cache was given explicitly; when set it overrides the
  /// script's own `plan_cache` directive (flags win, like topology).
  bool plan_cache_from_flags = false;
  /// Episode pipeline (ccpi_check --pipeline-depth). Depth 1 (the
  /// default) is the serial checker; depth N>1 overlaps speculative
  /// check phases while commits stay serialized in admission order, so
  /// the per-update log is byte-identical at any depth.
  PipelineConfig pipeline;
  /// Whether --pipeline-depth was given explicitly; when set it overrides
  /// the script's own `pipeline` directive (flags win, like plan_cache).
  bool pipeline_from_flags = false;
  /// Columnar read path (ccpi_check --columnar). On by default;
  /// semantically invisible either way — freezing a relation additionally
  /// builds a columnar segment that the RA evaluator's scan/join kernels
  /// use, with byte-identical reports and stats on or off.
  bool columnar = true;
  /// Execution budgets and overload control (ccpi_check --deadline-ms,
  /// --max-fixpoint-rounds, --max-derived-tuples, --deferred-queue-cap,
  /// --overflow-policy). Off by default: an unbudgeted run is bit-identical
  /// to one before budgets existed.
  BudgetConfig budget;
  /// Append the full ManagerStats block (retries, deferred/recovered
  /// outcomes, breaker state) to the report text.
  bool print_stats = false;
  /// Fill ScriptReport::metrics_json with the manager's metrics-registry
  /// dump (ccpi_check --metrics-out). Enable timing (SetTimingEnabled)
  /// before the run if the latency histograms should be populated.
  bool collect_metrics = false;
};

/// The outcome of running a script through the ConstraintManager.
struct ScriptReport {
  /// Human-readable per-update log plus the tier/access summary —
  /// log_text followed by summary_text, kept whole for callers that want
  /// the full transcript.
  std::string text;
  /// The per-update log alone (constraint registrations, one verb line
  /// per update, recheck/PENDING lines).
  std::string log_text;
  /// The closing summary alone ("---", tier table, access line, optional
  /// stats block). `ccpi_check` routes this to stderr so stdout stays
  /// machine-parseable.
  std::string summary_text;
  /// MetricsRegistry::ToJson() of the run's manager, when
  /// ScriptOptions::collect_metrics was set; empty otherwise.
  std::string metrics_json;
  size_t updates_applied = 0;
  /// Updates refused: violations plus, under DeferredPolicy::kReject,
  /// updates that could not be verified during an outage.
  size_t updates_rejected = 0;
  /// Constraint violations detected (immediate or late via recheck).
  size_t violations = 0;
  /// Updates with at least one check deferred because the remote site was
  /// unreachable (they were applied optimistically or refused, per the
  /// DeferredPolicy).
  size_t updates_deferred = 0;
  /// Deferred checks re-verified as holding by end of run (including the
  /// shutdown drain).
  size_t deferred_recovered = 0;
  /// Deferred checks found violated late and compensated by rollback.
  size_t deferred_violations = 0;
  /// Deferred checks still unresolved at shutdown (remote never answered).
  size_t deferred_pending = 0;
  /// Outage→closed recovery events observed across all sites
  /// (ManagerStats::sites_recovered); always 0 with one site.
  size_t sites_recovered = 0;
  /// Poisoned cache entries revalidated during recoveries
  /// (ManagerStats::cache_revalidated).
  size_t cache_revalidated = 0;
  /// Whether any budget or queue bound was configured for this run; the
  /// three counters below can only be nonzero when it is, and `ccpi_check`
  /// prints its "budget:" stdout line (and uses the budget exit code) only
  /// then.
  bool budget_armed = false;
  /// Tier-3 checks shed with kResourceExhausted (ManagerStats::shed_checks).
  size_t shed_checks = 0;
  /// Budget-exhaustion events anywhere in the pipeline
  /// (ManagerStats::budget_exhausted).
  size_t budget_exhausted = 0;
  /// Queue entries dropped by OverflowPolicy::kShedOldest
  /// (ManagerStats::deferred_dropped).
  size_t deferred_dropped = 0;
  /// Hedged-read accounting (ManagerStats::hedges_*); all zero unless the
  /// effective hedge_after threshold is nonzero. issued == won + wasted.
  size_t hedges_issued = 0;
  size_t hedges_won = 0;
  size_t hedges_wasted = 0;
  /// Tier-3 checks shed because the worst member site's latency EWMA
  /// projected past the remaining episode deadline — a labeled subset of
  /// shed_checks (ManagerStats::latency_shed).
  size_t latency_shed = 0;
};

Result<ScriptReport> RunScript(const Script& script,
                               const CostModel& costs = {});

Result<ScriptReport> RunScript(const Script& script,
                               const ScriptOptions& options);

/// Applies one `ccpi_check`-style command-line flag to `options`.
///
/// Recognizes every flag that configures the run itself — --threads=N,
/// --remote-cache=on|off, --plan-cache=on|off, --columnar=on|off,
/// --pipeline-depth=N,
/// --fault-rate=P,
/// --fault-timeout-rate=P,
/// --fault-seed=N, --fault-outage=A:B, --fault-reject, --stats,
/// --sites=N, --placement=p:0,q:1, --site-fault-rate=S:P,
/// --site-fault-timeout-rate=S:P, --site-fault-seed=S:N,
/// --site-fault-outage=S:A:B,
/// --site-latency=S:fixed:U | S:uniform:LO:HI | S:twopoint:LO:HI:P,
/// --hedge-after=N, --domains=NAME:S0+S1,NAME2:S2,
/// --domain-outage=NAME:A:B, --deadline-ms=N, --max-fixpoint-rounds=N,
/// --max-derived-tuples=N, --deferred-queue-cap=N,
/// --overflow-policy=POLICY — and
/// validates values *strictly*: a malformed or out-of-range value (e.g.
/// --threads=abc, --threads=-2, --fault-rate=1.5) is an InvalidArgument
/// error naming the flag, never a silent fallback to a default. Flags the
/// tool handles itself (--help, --export-souffle, --trace-out, ...) are
/// not recognized here.
///
/// On return, *matched says whether `arg` was one of the recognized flags;
/// the Status is non-OK only for a recognized flag with a bad value.
Status ApplyScriptFlag(std::string_view arg, ScriptOptions* options,
                       bool* matched);

/// Cross-flag validation, called once after all flags are applied:
/// the fault probabilities (global and per-site effective) must sum to at
/// most 1; every site index named by --placement, --site-fault-* or
/// --site-latency must be < --sites; --domains names must be unique with
/// no site in two domains and (when --sites was given) members < sites;
/// and every --domain-outage must name a --domains domain when --domains
/// was given.
Status ValidateScriptOptions(const ScriptOptions& options);

}  // namespace ccpi

#endif  // CCPI_MANAGER_SCRIPT_H_
