#ifndef CCPI_MANAGER_SCRIPT_H_
#define CCPI_MANAGER_SCRIPT_H_

#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "datalog/ast.h"
#include "distsim/cost_model.h"
#include "relational/database.h"
#include "updates/update.h"
#include "util/status.h"

namespace ccpi {

/// A declarative constraint-checking workload, the input format of the
/// `ccpi_check` tool. Line-oriented:
///
///     # comments with '#' or '%'
///     local reserved emp            # predicates held at this site
///     constraint no-dual            # begins a named constraint...
///     panic :- assign(E,sales) & assign(E,accounting)
///     constraint referential        # ...until the next directive
///     panic :- emp(E,D,S) & not dept(D)
///     fact emp(ann, cs, 120)        # initial data (not checked)
///     insert emp(bob, ee, 90)       # update stream, checked in order
///     delete emp(ann, cs, 120)
///
/// Rules may span lines exactly as in ParseProgram (break after `:-`, `&`
/// or `,`).
struct Script {
  std::set<std::string> local_preds;
  std::vector<std::pair<std::string, Program>> constraints;
  Database initial;
  std::vector<Update> updates;
};

Result<Script> ParseScript(std::string_view text);

/// The outcome of running a script through the ConstraintManager.
struct ScriptReport {
  /// Human-readable per-update log plus the tier/access summary.
  std::string text;
  size_t updates_applied = 0;
  size_t updates_rejected = 0;
};

Result<ScriptReport> RunScript(const Script& script,
                               const CostModel& costs = {});

}  // namespace ccpi

#endif  // CCPI_MANAGER_SCRIPT_H_
