#include "manager/active_rules.h"

#include "datalog/safety.h"
#include "eval/engine.h"
#include "subsumption/program_containment.h"
#include "updates/rewrite.h"

namespace ccpi {

Status ActiveRuleEngine::AddRule(const std::string& name, Program condition,
                                 Action action) {
  CCPI_RETURN_IF_ERROR(CheckProgramSafety(condition));
  rules_.push_back(ActiveRule{name, std::move(condition), std::move(action)});
  return Status::OK();
}

Result<ActiveRuleEngine::ProcessResult> ActiveRuleEngine::ProcessUpdate(
    const Update& u) {
  ProcessResult result;
  CCPI_RETURN_IF_ERROR(u.ApplyTo(db_));
  for (const ActiveRule& rule : rules_) {
    // Irrelevance: condition-after == condition-before, with NO assumption
    // about the prior truth value (unlike integrity constraints).
    bool irrelevant = false;
    Result<Program> rewritten = RewriteAfterUpdate(rule.condition, u);
    if (rewritten.ok()) {
      Result<ContainmentDecision> fwd =
          ProgramContainedInUnion(*rewritten, {rule.condition});
      Result<ContainmentDecision> bwd =
          ProgramContainedInUnion(rule.condition, {*rewritten});
      irrelevant = fwd.ok() && bwd.ok() &&
                   fwd->outcome == Outcome::kHolds &&
                   bwd->outcome == Outcome::kHolds;
    }
    if (irrelevant) {
      result.skipped_irrelevant.push_back(rule.name);
      continue;
    }
    result.evaluated.push_back(rule.name);
    CCPI_ASSIGN_OR_RETURN(bool holds, IsViolated(rule.condition, *db_));
    if (holds) {
      result.fired.push_back(rule.name);
      if (rule.action) rule.action(db_);
    }
  }
  return result;
}

}  // namespace ccpi
