#include "datalog/language_class.h"

#include "datalog/simplify.h"
#include "datalog/unfold.h"

namespace ccpi {

const char* ShapeToString(Shape shape) {
  switch (shape) {
    case Shape::kSingleCQ:
      return "CQ";
    case Shape::kUnionCQ:
      return "UCQ";
    case Shape::kRecursive:
      return "recursive";
  }
  return "?";
}

std::string LanguageClass::ToString() const {
  std::string out = ShapeToString(shape);
  if (negation) out += "+neg";
  if (arithmetic) out += "+arith";
  return out;
}

bool LanguageClassLeq(const LanguageClass& a, const LanguageClass& b) {
  if (static_cast<int>(a.shape) > static_cast<int>(b.shape)) return false;
  if (a.negation && !b.negation) return false;
  if (a.arithmetic && !b.arithmetic) return false;
  return true;
}

std::vector<LanguageClass> AllLanguageClasses() {
  std::vector<LanguageClass> out;
  for (Shape shape : {Shape::kSingleCQ, Shape::kUnionCQ, Shape::kRecursive}) {
    for (bool negation : {false, true}) {
      for (bool arithmetic : {false, true}) {
        out.push_back(LanguageClass{shape, negation, arithmetic});
      }
    }
  }
  return out;
}

LanguageClass SyntacticClass(const Program& program) {
  LanguageClass c;
  c.negation = program.HasNegation();
  c.arithmetic = program.HasArithmetic();
  if (program.IsRecursive()) {
    c.shape = Shape::kRecursive;
  } else if (program.rules.size() == 1 &&
             program.IdbPredicates().count(program.goal) == 1) {
    c.shape = Shape::kSingleCQ;
  } else {
    c.shape = Shape::kUnionCQ;
  }
  return c;
}

LanguageClass ExpressibleClass(const Program& program) {
  LanguageClass syntactic = SyntacticClass(program);
  if (syntactic.shape == Shape::kRecursive) return syntactic;
  Result<UCQ> unfolded = UnfoldToUCQ(program);
  if (!unfolded.ok()) return syntactic;
  // Simplify each disjunct (substituting bound equalities, dropping dead
  // branches) so the class reflects what the program expresses, not
  // artifacts of unfolding.
  UCQ live;
  for (const CQ& q : *unfolded) {
    std::optional<CQ> s = SimplifyCQ(q);
    if (s.has_value()) live.push_back(std::move(*s));
  }
  LanguageClass c;
  c.shape = live.size() <= 1 ? Shape::kSingleCQ : Shape::kUnionCQ;
  c.negation = false;
  c.arithmetic = false;
  for (const CQ& q : live) {
    c.negation = c.negation || q.HasNegation();
    c.arithmetic = c.arithmetic || q.HasArithmetic();
  }
  return c;
}

}  // namespace ccpi
