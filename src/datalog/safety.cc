#include "datalog/safety.h"

#include <set>

namespace ccpi {

namespace {

void InsertVars(const Atom& atom, std::set<std::string>* vars) {
  for (const Term& t : atom.args) {
    if (t.is_var()) vars->insert(t.var());
  }
}

Status RequireBound(const std::set<std::string>& bound, const Term& t,
                    const Rule& rule, const char* where) {
  if (t.is_var() && bound.count(t.var()) == 0) {
    return Status::InvalidArgument("unsafe rule: variable " + t.var() +
                                   " occurs only in " + where + " in \"" +
                                   rule.ToString() + "\"");
  }
  return Status::OK();
}

}  // namespace

Status CheckRuleSafety(const Rule& rule) {
  std::set<std::string> bound;
  for (const Literal& l : rule.body) {
    if (l.is_positive()) InsertVars(l.atom, &bound);
  }
  // Equality to a bound variable or to a constant also grounds a variable
  // (X = 5 or X = Y with Y bound). Iterate to a fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Literal& l : rule.body) {
      if (!l.is_comparison() || l.cmp.op != CmpOp::kEq) continue;
      const Term& a = l.cmp.lhs;
      const Term& b = l.cmp.rhs;
      bool a_ground = a.is_const() || bound.count(a.var()) > 0;
      bool b_ground = b.is_const() || bound.count(b.var()) > 0;
      if (a_ground && b.is_var() && bound.insert(b.var()).second) {
        changed = true;
      }
      if (b_ground && a.is_var() && bound.insert(a.var()).second) {
        changed = true;
      }
    }
  }
  for (const Term& t : rule.head.args) {
    CCPI_RETURN_IF_ERROR(RequireBound(bound, t, rule, "the head"));
  }
  for (const Literal& l : rule.body) {
    if (l.is_negated()) {
      for (const Term& t : l.atom.args) {
        CCPI_RETURN_IF_ERROR(RequireBound(bound, t, rule,
                                          "a negated subgoal"));
      }
    } else if (l.is_comparison()) {
      CCPI_RETURN_IF_ERROR(RequireBound(bound, l.cmp.lhs, rule,
                                        "a comparison"));
      CCPI_RETURN_IF_ERROR(RequireBound(bound, l.cmp.rhs, rule,
                                        "a comparison"));
    }
  }
  return Status::OK();
}

Status CheckProgramSafety(const Program& program) {
  for (const Rule& r : program.rules) {
    CCPI_RETURN_IF_ERROR(CheckRuleSafety(r));
  }
  return Status::OK();
}

}  // namespace ccpi
