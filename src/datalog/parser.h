#ifndef CCPI_DATALOG_PARSER_H_
#define CCPI_DATALOG_PARSER_H_

#include <string_view>

#include "datalog/ast.h"
#include "util/status.h"

namespace ccpi {

/// Parses a program in the paper's syntax, e.g.:
///
///     panic :- emp(E,D,S) & not dept(D) & S < 100
///     boss(E,M) :- emp(E,D,S) & manager(D,M)
///     boss(E,F) :- boss(E,G) & boss(G,F)
///     dept1(toy)
///
/// Conventions (Section 2): capitalized identifiers are variables; lower-case
/// identifiers are symbol constants (including predicate names); integers are
/// numeric constants. `&` and `,` both separate body literals; rules end at
/// a newline or `.`; `%`/`#` start a comment. Facts are rules with no body.
/// The program's goal defaults to `panic`.
Result<Program> ParseProgram(std::string_view input);

/// Parses exactly one rule (convenience for tests and examples).
Result<Rule> ParseRule(std::string_view input);

}  // namespace ccpi

#endif  // CCPI_DATALOG_PARSER_H_
