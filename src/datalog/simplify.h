#ifndef CCPI_DATALOG_SIMPLIFY_H_
#define CCPI_DATALOG_SIMPLIFY_H_

#include <optional>

#include "datalog/cq.h"

namespace ccpi {

/// Logical cleanup of a CQ used before classification:
///  * equality comparisons with a substitutable variable side are applied
///    as substitutions and dropped (X = toy is not "arithmetic", it is a
///    binding — only genuine order comparisons and disequalities count);
///  * ground comparisons between constants are evaluated and dropped;
///  * trivially-true reflexive comparisons (X <= X) are dropped.
/// Returns nullopt when the body is unsatisfiable on its face (e.g. a
/// ground comparison evaluates false, or X < X), i.e. the disjunct is dead.
///
/// Variables occurring in the head are never substituted away, so the head
/// is preserved exactly.
std::optional<CQ> SimplifyCQ(const CQ& q);

}  // namespace ccpi

#endif  // CCPI_DATALOG_SIMPLIFY_H_
