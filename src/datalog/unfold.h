#ifndef CCPI_DATALOG_UNFOLD_H_
#define CCPI_DATALOG_UNFOLD_H_

#include "datalog/cq.h"
#include "util/status.h"

namespace ccpi {

/// Unfolds a *nonrecursive* program into an explicit union of conjunctive
/// queries over EDB predicates only (Sagiv–Yannakakis: nonrecursive datalog
/// = finite unions of CQs). This powers both classification ("is this
/// rewritten constraint still a single CQ?") and containment tests on the
/// rewritten constraints of Section 4 (which introduce helper predicates
/// such as `dept1` and `emp1`).
///
/// Positive IDB subgoals unfold by standard rule substitution (one branch
/// per defining rule). A negated IDB subgoal `not p(args)` unfolds by
/// negating the disjunction of its (unified) rule bodies, which is possible
/// inside UCQ exactly when no defining rule introduces an existential
/// variable: `not (B1 or ... or Bk)` becomes the cross product of choices of
/// one negated literal from each Bi. The paper's constructions (`dept1`,
/// `emp1`, `isJones`) are all of this shape. If a defining rule of a negated
/// predicate has existential variables, Unsupported is returned — the
/// negation of an existential is not expressible in UCQ with safe negation.
///
/// Returns InvalidArgument if the program is recursive.
Result<UCQ> UnfoldToUCQ(const Program& program);

}  // namespace ccpi

#endif  // CCPI_DATALOG_UNFOLD_H_
