#ifndef CCPI_DATALOG_CQ_H_
#define CCPI_DATALOG_CQ_H_

#include <string>
#include <vector>

#include "datalog/ast.h"

namespace ccpi {

/// A single conjunctive query with optional negated subgoals and arithmetic
/// comparisons — one cell of the Fig 2.1 language cube, in flattened form.
/// `positives` are the ordinary subgoals O(C); `comparisons` are A(C) in the
/// paper's notation (Section 5).
struct CQ {
  Atom head;
  std::vector<Atom> positives;
  std::vector<Atom> negatives;
  std::vector<Comparison> comparisons;

  /// The equivalent single Rule.
  Rule ToRule() const;
  std::string ToString() const { return ToRule().ToString(); }

  /// All variables in first-occurrence order (head first).
  std::vector<std::string> Variables() const { return ToRule().Variables(); }

  bool HasNegation() const { return !negatives.empty(); }
  bool HasArithmetic() const { return !comparisons.empty(); }
};

/// A union of conjunctive queries (all disjuncts share the head predicate).
using UCQ = std::vector<CQ>;

/// Flattens a rule into a CQ. Purely structural — no renaming.
CQ RuleToCQ(const Rule& rule);

/// Applies a substitution to every part of the CQ.
CQ Apply(const Substitution& s, const CQ& q);

/// Renames all variables apart by appending `suffix`.
CQ RenameApart(const CQ& q, const std::string& suffix);

}  // namespace ccpi

#endif  // CCPI_DATALOG_CQ_H_
