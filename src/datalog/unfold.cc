#include "datalog/unfold.h"

#include <map>
#include <set>

#include "util/check.h"

namespace ccpi {

namespace {

CQ BodyToCQ(const Atom& head, const std::vector<Literal>& body) {
  CQ q;
  q.head = head;
  for (const Literal& l : body) {
    switch (l.kind) {
      case Literal::Kind::kPositive:
        q.positives.push_back(l.atom);
        break;
      case Literal::Kind::kNegated:
        q.negatives.push_back(l.atom);
        break;
      case Literal::Kind::kComparison:
        q.comparisons.push_back(l.cmp);
        break;
    }
  }
  return q;
}

/// The logical complement of a single literal over a total order.
Literal NegateLiteral(const Literal& l) {
  switch (l.kind) {
    case Literal::Kind::kPositive:
      return Literal::Negated(l.atom);
    case Literal::Kind::kNegated:
      return Literal::Positive(l.atom);
    case Literal::Kind::kComparison:
      return Literal::Cmp(
          Comparison{l.cmp.lhs, Negate(l.cmp.op), l.cmp.rhs});
  }
  CCPI_CHECK(false);
  return l;
}

struct Unification {
  // The defining rule's head variables mapped to the caller's terms.
  Substitution subst;
  // Residual equalities among caller terms (from repeated head variables or
  // head constants meeting caller variables).
  std::vector<Comparison> equalities;
  // True when two distinct constants met: the rule can never match.
  bool statically_false = false;
};

/// Matches a (renamed-apart) rule head against the caller's atom arguments.
Unification UnifyHead(const Atom& rule_head, const Atom& call) {
  CCPI_CHECK(rule_head.args.size() == call.args.size());
  Unification u;
  for (size_t i = 0; i < rule_head.args.size(); ++i) {
    const Term& h = rule_head.args[i];
    const Term& a = call.args[i];
    if (h.is_var()) {
      auto it = u.subst.find(h.var());
      if (it == u.subst.end()) {
        u.subst[h.var()] = a;
      } else if (!(it->second == a)) {
        u.equalities.push_back(Comparison{it->second, CmpOp::kEq, a});
      }
    } else if (a.is_const()) {
      if (!(a.constant() == h.constant())) u.statically_false = true;
    } else {
      u.equalities.push_back(Comparison{a, CmpOp::kEq, h});
    }
  }
  return u;
}

class Unfolder {
 public:
  explicit Unfolder(const Program& program) {
    idb_ = program.IdbPredicates();
    for (const Rule& r : program.rules) rules_by_pred_[r.head.pred].push_back(r);
  }

  Result<std::vector<std::vector<Literal>>> Expand(
      std::vector<Literal> body) {
    // Locate the first literal mentioning an IDB predicate.
    size_t idx = body.size();
    for (size_t i = 0; i < body.size(); ++i) {
      if (!body[i].is_comparison() && idb_.count(body[i].atom.pred) > 0) {
        idx = i;
        break;
      }
    }
    if (idx == body.size()) {
      return std::vector<std::vector<Literal>>{std::move(body)};
    }
    Literal target = body[idx];
    body.erase(body.begin() + idx);
    const std::vector<Rule>& defs = rules_by_pred_[target.atom.pred];

    std::vector<std::vector<Literal>> out;
    if (target.is_positive()) {
      for (const Rule& def : defs) {
        Rule renamed = RenameApart(def, FreshSuffix());
        Unification u = UnifyHead(renamed.head, target.atom);
        if (u.statically_false) continue;
        std::vector<Literal> next;
        for (const Comparison& eq : u.equalities) next.push_back(Literal::Cmp(eq));
        for (const Literal& l : renamed.body) next.push_back(Apply(u.subst, l));
        next.insert(next.end(), body.begin(), body.end());
        CCPI_ASSIGN_OR_RETURN(auto sub, Expand(std::move(next)));
        for (auto& b : sub) out.push_back(std::move(b));
      }
      return out;
    }

    // Negated IDB subgoal: not (B1 or ... or Bk) expands to the cross
    // product of one negated literal chosen from each Bi.
    std::vector<std::vector<Literal>> candidate_sets;
    for (const Rule& def : defs) {
      // Existential variables make not-exists inexpressible in UCQ.
      std::set<std::string> head_vars;
      for (const Term& t : def.head.args) {
        if (t.is_var()) head_vars.insert(t.var());
      }
      for (const std::string& v : def.Variables()) {
        if (head_vars.count(v) == 0) {
          return Status::Unsupported(
              "cannot unfold negated subgoal not " + target.atom.ToString() +
              ": defining rule \"" + def.ToString() +
              "\" has existential variable " + v);
        }
      }
      Unification u = UnifyHead(def.head, target.atom);
      if (u.statically_false) continue;  // this rule never matches: not() true
      std::vector<Literal> candidates;
      for (const Comparison& eq : u.equalities) {
        candidates.push_back(NegateLiteral(Literal::Cmp(eq)));
      }
      for (const Literal& l : def.body) {
        candidates.push_back(NegateLiteral(Apply(u.subst, l)));
      }
      if (candidates.empty()) {
        // The rule matches unconditionally, so not p(...) is false and this
        // whole expansion branch is dead.
        return std::vector<std::vector<Literal>>{};
      }
      candidate_sets.push_back(std::move(candidates));
    }
    // Cross product of candidate choices.
    std::vector<std::vector<Literal>> combos = {{}};
    for (const auto& candidates : candidate_sets) {
      std::vector<std::vector<Literal>> next;
      for (const auto& combo : combos) {
        for (const Literal& c : candidates) {
          std::vector<Literal> extended = combo;
          extended.push_back(c);
          next.push_back(std::move(extended));
        }
      }
      combos = std::move(next);
    }
    for (auto& combo : combos) {
      std::vector<Literal> next = std::move(combo);
      next.insert(next.end(), body.begin(), body.end());
      CCPI_ASSIGN_OR_RETURN(auto sub, Expand(std::move(next)));
      for (auto& b : sub) out.push_back(std::move(b));
    }
    return out;
  }

 private:
  std::string FreshSuffix() { return "_u" + std::to_string(counter_++); }

  std::set<std::string> idb_;
  std::map<std::string, std::vector<Rule>> rules_by_pred_;
  int counter_ = 0;
};

}  // namespace

Result<UCQ> UnfoldToUCQ(const Program& program) {
  if (program.IsRecursive()) {
    return Status::InvalidArgument("cannot unfold a recursive program");
  }
  Unfolder unfolder(program);
  UCQ out;
  for (const Rule& r : program.rules) {
    if (r.head.pred != program.goal) continue;
    CCPI_ASSIGN_OR_RETURN(auto bodies, unfolder.Expand(r.body));
    for (const auto& body : bodies) {
      out.push_back(BodyToCQ(r.head, body));
    }
  }
  return out;
}

}  // namespace ccpi
