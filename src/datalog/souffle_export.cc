#include "datalog/souffle_export.h"

#include <map>
#include <set>
#include <vector>

#include "util/check.h"

namespace ccpi {

namespace {

/// Union-find for type inference over predicate positions and rule-local
/// variables.
class TypeUnion {
 public:
  int Node() {
    parent_.push_back(static_cast<int>(parent_.size()));
    symbol_.push_back(false);
    return parent_.back();
  }
  int Find(int x) {
    while (parent_[static_cast<size_t>(x)] != x) {
      parent_[static_cast<size_t>(x)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
      x = parent_[static_cast<size_t>(x)];
    }
    return x;
  }
  void Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    parent_[static_cast<size_t>(a)] = b;
    symbol_[static_cast<size_t>(b)] =
        symbol_[static_cast<size_t>(b)] || symbol_[static_cast<size_t>(a)];
  }
  void MarkSymbol(int x) { symbol_[static_cast<size_t>(Find(x))] = true; }
  bool IsSymbol(int x) { return symbol_[static_cast<size_t>(Find(x))]; }

 private:
  std::vector<int> parent_;
  std::vector<bool> symbol_;
};

std::string Quote(const Value& v) {
  if (v.is_int()) return std::to_string(v.AsInt());
  return "\"" + v.AsSymbol() + "\"";
}

const char* SouffleOp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
  }
  return "?";
}

bool IsOrderOp(CmpOp op) {
  return op == CmpOp::kLt || op == CmpOp::kLe || op == CmpOp::kGt ||
         op == CmpOp::kGe;
}

}  // namespace

Result<std::string> ExportSouffle(const Program& program,
                                  const Database* facts) {
  // --- Collect arities. ----------------------------------------------------
  std::map<std::string, size_t> arity;
  auto note_arity = [&arity](const Atom& a) -> Status {
    auto [it, inserted] = arity.emplace(a.pred, a.args.size());
    if (!inserted && it->second != a.args.size()) {
      return Status::InvalidArgument("predicate " + a.pred +
                                     " used with two arities");
    }
    return Status::OK();
  };
  for (const Rule& r : program.rules) {
    CCPI_RETURN_IF_ERROR(note_arity(r.head));
    for (const Literal& l : r.body) {
      if (!l.is_comparison()) CCPI_RETURN_IF_ERROR(note_arity(l.atom));
    }
  }
  if (facts != nullptr) {
    for (const std::string& pred : facts->PredicateNames()) {
      const Relation& rel = facts->Get(pred, 0);
      Atom probe{pred, std::vector<Term>(rel.arity(), Term::Const(V(0)))};
      CCPI_RETURN_IF_ERROR(note_arity(probe));
    }
  }

  // --- Type inference. -----------------------------------------------------
  TypeUnion types;
  std::map<std::pair<std::string, size_t>, int> pos_node;
  for (const auto& [pred, n] : arity) {
    for (size_t c = 0; c < n; ++c) pos_node[{pred, c}] = types.Node();
  }

  for (const Rule& r : program.rules) {
    std::map<std::string, int> var_node;
    auto term_node = [&](const Term& t) -> int {
      if (t.is_var()) {
        auto [it, inserted] = var_node.emplace(t.var(), 0);
        if (inserted) it->second = types.Node();
        return it->second;
      }
      int node = types.Node();
      if (t.constant().is_symbol()) types.MarkSymbol(node);
      return node;
    };
    auto bind_atom = [&](const Atom& a) {
      for (size_t c = 0; c < a.args.size(); ++c) {
        types.Union(term_node(a.args[c]), pos_node.at({a.pred, c}));
      }
    };
    bind_atom(r.head);
    for (const Literal& l : r.body) {
      if (l.is_comparison()) {
        types.Union(term_node(l.cmp.lhs), term_node(l.cmp.rhs));
      } else {
        bind_atom(l.atom);
      }
    }
  }
  if (facts != nullptr) {
    for (const std::string& pred : facts->PredicateNames()) {
      const Relation& rel = facts->Get(pred, 0);
      for (const Tuple& t : rel.rows()) {
        for (size_t c = 0; c < t.size(); ++c) {
          if (t[c].is_symbol()) types.MarkSymbol(pos_node.at({pred, c}));
        }
      }
    }
  }

  // Order comparisons on symbol-typed operands do not transfer: Souffle
  // orders symbols by internal ordinal, not lexicographically.
  for (const Rule& r : program.rules) {
    std::map<std::string, int> var_node;  // rebuild per rule: positions
    auto probe_type = [&](const Term& t) -> bool {  // true = symbol
      if (t.is_const()) return t.constant().is_symbol();
      // A variable's type equals the type of any position it occupies.
      for (const Literal& l : r.body) {
        if (l.is_comparison()) continue;
        for (size_t c = 0; c < l.atom.args.size(); ++c) {
          if (l.atom.args[c].is_var() && l.atom.args[c].var() == t.var()) {
            return types.IsSymbol(pos_node.at({l.atom.pred, c}));
          }
        }
      }
      return false;
    };
    for (const Literal& l : r.body) {
      if (!l.is_comparison() || !IsOrderOp(l.cmp.op)) continue;
      if (probe_type(l.cmp.lhs) || probe_type(l.cmp.rhs)) {
        return Status::Unsupported(
            "order comparison on symbol-typed operands (" +
            l.cmp.ToString() +
            ") does not transfer to Souffle's symbol ordering");
      }
    }
  }

  // --- Emission. -------------------------------------------------------
  std::string out = "// generated by ccpi ExportSouffle\n";
  for (const auto& [pred, n] : arity) {
    out += ".decl " + pred + "(";
    for (size_t c = 0; c < n; ++c) {
      if (c > 0) out += ", ";
      out += "c" + std::to_string(c) + ": " +
             (types.IsSymbol(pos_node.at({pred, c})) ? "symbol" : "number");
    }
    out += ")\n";
  }
  out += ".output " + program.goal + "\n\n";

  for (const Rule& r : program.rules) {
    auto atom_text = [&](const Atom& a) {
      std::string s = a.pred + "(";
      for (size_t c = 0; c < a.args.size(); ++c) {
        if (c > 0) s += ", ";
        s += a.args[c].is_var() ? a.args[c].var()
                                : Quote(a.args[c].constant());
      }
      s += ")";
      return s;
    };
    out += atom_text(r.head);
    if (!r.body.empty()) {
      out += " :- ";
      for (size_t i = 0; i < r.body.size(); ++i) {
        if (i > 0) out += ", ";
        const Literal& l = r.body[i];
        switch (l.kind) {
          case Literal::Kind::kPositive:
            out += atom_text(l.atom);
            break;
          case Literal::Kind::kNegated:
            out += "!" + atom_text(l.atom);
            break;
          case Literal::Kind::kComparison:
            out += (l.cmp.lhs.is_var() ? l.cmp.lhs.var()
                                       : Quote(l.cmp.lhs.constant())) +
                   " " + SouffleOp(l.cmp.op) + " " +
                   (l.cmp.rhs.is_var() ? l.cmp.rhs.var()
                                       : Quote(l.cmp.rhs.constant()));
            break;
        }
      }
    }
    out += ".\n";
  }

  if (facts != nullptr) {
    out += "\n";
    for (const std::string& pred : facts->PredicateNames()) {
      const Relation& rel = facts->Get(pred, 0);
      for (const Tuple& t : rel.rows()) {
        out += pred + "(";
        for (size_t c = 0; c < t.size(); ++c) {
          if (c > 0) out += ", ";
          out += Quote(t[c]);
        }
        out += ").\n";
      }
    }
  }
  return out;
}

}  // namespace ccpi
