#include "datalog/lexer.h"

#include <cctype>

namespace ccpi {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  int line = 1;
  int col = 1;
  size_t i = 0;
  auto push = [&](TokenKind kind, std::string text = "", int64_t num = 0) {
    tokens.push_back(Token{kind, std::move(text), num, line, col});
  };
  while (i < input.size()) {
    char c = input[i];
    if (c == '\n') {
      push(TokenKind::kNewline);
      ++i;
      ++line;
      col = 1;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      ++col;
      continue;
    }
    if (c == '%' || c == '#') {
      while (i < input.size() && input[i] != '\n') ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < input.size() && IsIdentChar(input[i])) ++i;
      std::string text(input.substr(start, i - start));
      col += static_cast<int>(i - start);
      push(TokenKind::kIdent, std::move(text));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < input.size() &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t start = i;
      if (c == '-') ++i;
      while (i < input.size() &&
             std::isdigit(static_cast<unsigned char>(input[i]))) {
        ++i;
      }
      int64_t num = std::stoll(std::string(input.substr(start, i - start)));
      col += static_cast<int>(i - start);
      push(TokenKind::kInt, "", num);
      continue;
    }
    auto two = [&](char a, char b) {
      return c == a && i + 1 < input.size() && input[i + 1] == b;
    };
    if (two(':', '-')) {
      push(TokenKind::kImplies);
      i += 2;
      col += 2;
      continue;
    }
    if (two('<', '=')) {
      push(TokenKind::kLe);
      i += 2;
      col += 2;
      continue;
    }
    if (two('>', '=')) {
      push(TokenKind::kGe);
      i += 2;
      col += 2;
      continue;
    }
    if (two('<', '>') || two('!', '=')) {
      push(TokenKind::kNe);
      i += 2;
      col += 2;
      continue;
    }
    switch (c) {
      case '(':
        push(TokenKind::kLParen);
        break;
      case ')':
        push(TokenKind::kRParen);
        break;
      case ',':
        push(TokenKind::kComma);
        break;
      case '&':
        push(TokenKind::kAmp);
        break;
      case '.':
        push(TokenKind::kPeriod);
        break;
      case '<':
        push(TokenKind::kLt);
        break;
      case '>':
        push(TokenKind::kGt);
        break;
      case '=':
        push(TokenKind::kEq);
        break;
      default:
        return Status::InvalidArgument("unexpected character '" +
                                       std::string(1, c) + "' at line " +
                                       std::to_string(line) + ", column " +
                                       std::to_string(col));
    }
    ++i;
    ++col;
  }
  push(TokenKind::kEnd);
  return tokens;
}

}  // namespace ccpi
