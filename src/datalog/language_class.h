#ifndef CCPI_DATALOG_LANGUAGE_CLASS_H_
#define CCPI_DATALOG_LANGUAGE_CLASS_H_

#include <string>
#include <vector>

#include "datalog/ast.h"
#include "util/status.h"

namespace ccpi {

/// The three "shape" axes of Fig 2.1 in the paper: a single conjunctive
/// query, a finite union of CQs (equivalently, nonrecursive datalog), or
/// recursive datalog.
enum class Shape { kSingleCQ, kUnionCQ, kRecursive };

const char* ShapeToString(Shape shape);

/// One of the 12 cells of Fig 2.1: shape x (+/- negated subgoals) x
/// (+/- arithmetic comparisons).
struct LanguageClass {
  Shape shape = Shape::kSingleCQ;
  bool negation = false;
  bool arithmetic = false;

  /// e.g. "CQ", "UCQ+neg", "recursive+neg+arith".
  std::string ToString() const;

  friend bool operator==(const LanguageClass& a, const LanguageClass& b) {
    return a.shape == b.shape && a.negation == b.negation &&
           a.arithmetic == b.arithmetic;
  }
  friend bool operator!=(const LanguageClass& a, const LanguageClass& b) {
    return !(a == b);
  }
};

/// Partial order of the Fig 2.1 cube: a <= b iff every feature of a is
/// available in b (CQ <= UCQ <= recursive on the shape axis; false <= true
/// on each boolean axis). `a <= b` means every program of class a is also a
/// program of class b.
bool LanguageClassLeq(const LanguageClass& a, const LanguageClass& b);

/// All 12 classes in a fixed presentation order (the Fig 2.1 enumeration).
std::vector<LanguageClass> AllLanguageClasses();

/// The *syntactic* class of a program: shape from its rule structure
/// (recursive / multiple-rules-or-IDB / single rule over EDB), features from
/// the literals present. This is the class the program is written in.
LanguageClass SyntacticClass(const Program& program);

/// The smallest class that can *express* the program: for nonrecursive
/// programs this unfolds to a UCQ and checks whether a single disjunct
/// remains (Sagiv–Yannakakis equivalence of nonrecursive datalog and finite
/// UCQs), and whether negation/arithmetic survive unfolding. When unfolding
/// is impossible (negation of an existential) the syntactic class is
/// returned. Note this is a sound upper bound on expressibility, not a
/// minimization: deciding the true minimal class is as hard as equivalence.
LanguageClass ExpressibleClass(const Program& program);

}  // namespace ccpi

#endif  // CCPI_DATALOG_LANGUAGE_CLASS_H_
