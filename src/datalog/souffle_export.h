#ifndef CCPI_DATALOG_SOUFFLE_EXPORT_H_
#define CCPI_DATALOG_SOUFFLE_EXPORT_H_

#include <string>

#include "datalog/ast.h"
#include "relational/database.h"
#include "util/status.h"

namespace ccpi {

/// Renders a program as a Souffle (.dl) source file, so constraints and
/// the compiled local-test programs (e.g. the Fig 6.1 interval programs)
/// can be cross-run on a production datalog engine.
///
/// Column types are inferred per predicate position: `number` unless some
/// constant occurring at that position (in the program or in `facts`) is a
/// symbol, in which case `symbol`. Positions joined by shared variables or
/// compared with each other unify their types. Comparisons against symbol
/// constants force `symbol` columns; Souffle orders symbols by internal
/// ordinal rather than lexicographically, so programs relying on symbol
/// ORDER (not just (in)equality) are rejected with Unsupported.
///
/// The goal predicate is exported with a `.output` directive, facts (when
/// provided) as inline Souffle facts.
Result<std::string> ExportSouffle(const Program& program,
                                  const Database* facts = nullptr);

}  // namespace ccpi

#endif  // CCPI_DATALOG_SOUFFLE_EXPORT_H_
