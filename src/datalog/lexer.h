#ifndef CCPI_DATALOG_LEXER_H_
#define CCPI_DATALOG_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace ccpi {

/// Token kinds of the paper's constraint syntax.
enum class TokenKind {
  kIdent,    // emp, dept, E, D, toy  (case distinguishes var from const)
  kInt,      // 100, -5
  kLParen,   // (
  kRParen,   // )
  kComma,    // ,
  kAmp,      // &   (body-literal separator; ',' also accepted)
  kImplies,  // :-
  kPeriod,   // .
  kLt,       // <
  kLe,       // <=
  kGt,       // >
  kGe,       // >=
  kEq,       // =
  kNe,       // <> or !=
  kNewline,  // significant: terminates a rule like '.' does
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;  // for kIdent
  int64_t number = 0;  // for kInt
  int line = 1;
  int column = 1;
};

/// Splits `input` into tokens. Comments run from '%' or '#' to end of line.
/// Newlines are emitted as tokens because rules are newline-terminated
/// (a trailing '.' is also accepted, Prolog-style). A rule may span lines
/// when the break comes after `:-`, `&`, or `,`— the parser handles that by
/// skipping newline tokens in those positions.
Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace ccpi

#endif  // CCPI_DATALOG_LEXER_H_
