#ifndef CCPI_DATALOG_AST_H_
#define CCPI_DATALOG_AST_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "relational/value.h"
#include "util/status.h"

namespace ccpi {

/// The goal predicate of every constraint query (Section 2 of the paper):
/// a constraint is a query whose result is the 0-ary predicate `panic`.
inline constexpr const char* kPanic = "panic";

/// A term: a variable (capitalized identifier, Prolog convention) or a
/// constant.
class Term {
 public:
  /// Default-constructs the constant 0; required by map-based substitution
  /// storage. Prefer the named factories.
  Term() = default;

  /// Constructs the variable `name`. Requires a capitalized identifier.
  static Term Var(std::string name);
  /// Constructs a constant term.
  static Term Const(Value v);

  bool is_var() const { return is_var_; }
  bool is_const() const { return !is_var_; }

  /// Requires is_var().
  const std::string& var() const;
  /// Requires is_const().
  const Value& constant() const;

  std::string ToString() const;

  friend bool operator==(const Term& a, const Term& b) {
    return a.is_var_ == b.is_var_ && a.var_ == b.var_ &&
           a.const_ == b.const_;
  }
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }
  friend bool operator<(const Term& a, const Term& b) {
    if (a.is_var_ != b.is_var_) return a.is_var_;
    if (a.var_ != b.var_) return a.var_ < b.var_;
    return a.const_ < b.const_;
  }

 private:
  bool is_var_ = false;
  std::string var_;
  Value const_;
};

/// An ordinary subgoal or head: predicate applied to terms. A 0-ary atom
/// (like `panic`) has no argument list.
struct Atom {
  std::string pred;
  std::vector<Term> args;

  std::string ToString() const;

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.pred == b.pred && a.args == b.args;
  }
  friend bool operator!=(const Atom& a, const Atom& b) { return !(a == b); }
};

/// Arithmetic comparison predicates of the constraint language.
enum class CmpOp { kLt, kLe, kGt, kGe, kEq, kNe };

/// "<", "<=", ">", ">=", "=", "<>" — the paper's spellings.
const char* CmpOpToString(CmpOp op);
/// The op with operands swapped: a OP b === b Flip(OP) a.
CmpOp Flip(CmpOp op);
/// The complement over a total order: NOT (a OP b) === a Negate(OP) b.
CmpOp Negate(CmpOp op);
/// Evaluates `a OP b` under the total order on Value.
bool EvalCmp(const Value& a, CmpOp op, const Value& b);

/// An arithmetic-comparison subgoal, e.g. `S < 100` or `X = Y`.
struct Comparison {
  Term lhs;
  CmpOp op;
  Term rhs;

  std::string ToString() const;

  friend bool operator==(const Comparison& a, const Comparison& b) {
    return a.lhs == b.lhs && a.op == b.op && a.rhs == b.rhs;
  }
};

/// A body literal: positive subgoal, negated subgoal, or comparison.
struct Literal {
  enum class Kind { kPositive, kNegated, kComparison };

  static Literal Positive(Atom a);
  static Literal Negated(Atom a);
  static Literal Cmp(Comparison c);

  Kind kind = Kind::kPositive;
  Atom atom;       // valid for kPositive / kNegated
  Comparison cmp;  // valid for kComparison

  bool is_positive() const { return kind == Kind::kPositive; }
  bool is_negated() const { return kind == Kind::kNegated; }
  bool is_comparison() const { return kind == Kind::kComparison; }

  std::string ToString() const;

  friend bool operator==(const Literal& a, const Literal& b) {
    return a.kind == b.kind && a.atom == b.atom &&
           (a.kind != Kind::kComparison || a.cmp == b.cmp);
  }
};

/// A Horn rule `head :- body`, or a fact when the body is empty.
struct Rule {
  Atom head;
  std::vector<Literal> body;

  std::string ToString() const;

  /// All variables of the rule (head and body), in first-occurrence order.
  std::vector<std::string> Variables() const;
};

/// A finite set of rules with a distinguished goal predicate. A constraint
/// (Section 2) is a Program whose goal is the 0-ary `panic`.
struct Program {
  std::vector<Rule> rules;
  std::string goal = kPanic;

  std::string ToString() const;

  /// Predicates defined by some rule head (IDB predicates).
  std::set<std::string> IdbPredicates() const;
  /// Predicates mentioned in bodies but never defined (EDB predicates).
  std::set<std::string> EdbPredicates() const;
  /// True if some IDB predicate (transitively) depends on itself.
  bool IsRecursive() const;
  /// True if any rule has a negated subgoal.
  bool HasNegation() const;
  /// True if any rule has a comparison subgoal.
  bool HasArithmetic() const;
};

/// A variable-to-term substitution.
using Substitution = std::map<std::string, Term>;

/// Applies `s` to a term / atom / comparison / literal / rule. Variables
/// not bound by `s` are left in place.
Term Apply(const Substitution& s, const Term& t);
Atom Apply(const Substitution& s, const Atom& a);
Comparison Apply(const Substitution& s, const Comparison& c);
Literal Apply(const Substitution& s, const Literal& l);
Rule Apply(const Substitution& s, const Rule& r);

/// Renames every variable of `r` by appending `suffix`, producing a rule
/// variable-disjoint from any rule not using that suffix.
Rule RenameApart(const Rule& r, const std::string& suffix);

/// Collects the variables of an atom into `out` in order of occurrence,
/// without duplicates.
void CollectVariables(const Atom& a, std::vector<std::string>* out);

}  // namespace ccpi

#endif  // CCPI_DATALOG_AST_H_
