#include "datalog/cq.h"

namespace ccpi {

Rule CQ::ToRule() const {
  Rule r;
  r.head = head;
  for (const Atom& a : positives) r.body.push_back(Literal::Positive(a));
  for (const Atom& a : negatives) r.body.push_back(Literal::Negated(a));
  for (const Comparison& c : comparisons) r.body.push_back(Literal::Cmp(c));
  return r;
}

CQ RuleToCQ(const Rule& rule) {
  CQ q;
  q.head = rule.head;
  for (const Literal& l : rule.body) {
    switch (l.kind) {
      case Literal::Kind::kPositive:
        q.positives.push_back(l.atom);
        break;
      case Literal::Kind::kNegated:
        q.negatives.push_back(l.atom);
        break;
      case Literal::Kind::kComparison:
        q.comparisons.push_back(l.cmp);
        break;
    }
  }
  return q;
}

CQ Apply(const Substitution& s, const CQ& q) {
  CQ out;
  out.head = Apply(s, q.head);
  out.positives.reserve(q.positives.size());
  for (const Atom& a : q.positives) out.positives.push_back(Apply(s, a));
  out.negatives.reserve(q.negatives.size());
  for (const Atom& a : q.negatives) out.negatives.push_back(Apply(s, a));
  out.comparisons.reserve(q.comparisons.size());
  for (const Comparison& c : q.comparisons) {
    out.comparisons.push_back(Apply(s, c));
  }
  return out;
}

CQ RenameApart(const CQ& q, const std::string& suffix) {
  Substitution s;
  for (const std::string& v : q.Variables()) s[v] = Term::Var(v + suffix);
  return Apply(s, q);
}

}  // namespace ccpi
