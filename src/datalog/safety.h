#ifndef CCPI_DATALOG_SAFETY_H_
#define CCPI_DATALOG_SAFETY_H_

#include "datalog/ast.h"
#include "util/status.h"

namespace ccpi {

/// Checks the range-restriction (safety) condition the paper assumes
/// throughout: in every rule, each variable occurring in the head, in a
/// negated subgoal, or in a comparison must also occur in a positive
/// ordinary subgoal of the same rule. Safe rules have finite results and
/// negation-as-set-difference semantics.
Status CheckRuleSafety(const Rule& rule);

/// Applies CheckRuleSafety to every rule of the program.
Status CheckProgramSafety(const Program& program);

}  // namespace ccpi

#endif  // CCPI_DATALOG_SAFETY_H_
