#include "datalog/parser.h"

#include <optional>

#include "datalog/lexer.h"
#include "util/strings.h"

namespace ccpi {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> ParseProgramTokens() {
    Program program;
    SkipNewlines();
    while (!At(TokenKind::kEnd)) {
      CCPI_ASSIGN_OR_RETURN(Rule rule, ParseOneRule());
      program.rules.push_back(std::move(rule));
      // A rule ends with '.', a newline, or end of input.
      if (At(TokenKind::kPeriod)) Advance();
      if (!At(TokenKind::kNewline) && !At(TokenKind::kEnd)) {
        return Error("expected end of rule");
      }
      SkipNewlines();
    }
    return program;
  }

  Result<Rule> ParseOneRule() {
    Rule rule;
    CCPI_ASSIGN_OR_RETURN(rule.head, ParseAtom());
    if (At(TokenKind::kImplies)) {
      Advance();
      SkipNewlines();  // the body may start on the next line
      while (true) {
        CCPI_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
        rule.body.push_back(std::move(lit));
        if (At(TokenKind::kAmp) || At(TokenKind::kComma)) {
          Advance();
          SkipNewlines();  // literal separators allow line breaks after them
          continue;
        }
        break;
      }
    }
    return rule;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  bool At(TokenKind k) const { return Peek().kind == k; }
  void Advance() { ++pos_; }
  void SkipNewlines() {
    while (At(TokenKind::kNewline)) Advance();
  }

  Status Error(const std::string& what) const {
    const Token& t = Peek();
    return Status::InvalidArgument(what + " at line " +
                                   std::to_string(t.line) + ", column " +
                                   std::to_string(t.column));
  }

  /// Bound on parenthesized-term nesting: adversarially deep input (e.g.
  /// "p(((((...x...)))))" with thousands of parens) is a parse error, not
  /// a parser-stack overflow. 64 levels is far beyond any legitimate
  /// grouping while keeping the recursion depth trivially safe.
  static constexpr int kMaxTermDepth = 64;

  Result<Term> ParseTerm() { return ParseTermAtDepth(0); }

  Result<Term> ParseTermAtDepth(int depth) {
    if (depth > kMaxTermDepth) return Error("term nesting too deep");
    // Parentheses around a term are pure grouping: "((x))" parses as "x".
    // This alternative is the parser's only unbounded self-recursion, so
    // the depth cap above is checked here.
    if (At(TokenKind::kLParen)) {
      Advance();
      CCPI_ASSIGN_OR_RETURN(Term inner, ParseTermAtDepth(depth + 1));
      if (!At(TokenKind::kRParen)) return Error("expected ')'");
      Advance();
      return inner;
    }
    if (At(TokenKind::kInt)) {
      int64_t n = Peek().number;
      Advance();
      return Term::Const(Value(n));
    }
    if (At(TokenKind::kIdent)) {
      std::string name = Peek().text;
      Advance();
      if (IsVariableName(name)) return Term::Var(std::move(name));
      return Term::Const(Value(std::move(name)));
    }
    return Error("expected term");
  }

  Result<Atom> ParseAtom() {
    if (!At(TokenKind::kIdent)) return Error("expected predicate name");
    Atom atom;
    atom.pred = Peek().text;
    if (IsVariableName(atom.pred)) {
      return Error("predicate name must start lower-case");
    }
    Advance();
    if (At(TokenKind::kLParen)) {
      Advance();
      while (true) {
        CCPI_ASSIGN_OR_RETURN(Term t, ParseTerm());
        atom.args.push_back(std::move(t));
        if (At(TokenKind::kComma)) {
          Advance();
          continue;
        }
        break;
      }
      if (!At(TokenKind::kRParen)) return Error("expected ')'");
      Advance();
    }
    return atom;
  }

  std::optional<CmpOp> PeekCmpOp() const {
    switch (Peek().kind) {
      case TokenKind::kLt:
        return CmpOp::kLt;
      case TokenKind::kLe:
        return CmpOp::kLe;
      case TokenKind::kGt:
        return CmpOp::kGt;
      case TokenKind::kGe:
        return CmpOp::kGe;
      case TokenKind::kEq:
        return CmpOp::kEq;
      case TokenKind::kNe:
        return CmpOp::kNe;
      default:
        return std::nullopt;
    }
  }

  Result<Literal> ParseLiteral() {
    // `not atom`
    if (At(TokenKind::kIdent) && Peek().text == "not") {
      Advance();
      CCPI_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
      return Literal::Negated(std::move(atom));
    }
    // An identifier followed by '(' is an ordinary subgoal; a 0-ary subgoal
    // is an identifier NOT followed by a comparison operator. Otherwise the
    // literal is a comparison whose left side is a term.
    if (At(TokenKind::kIdent) && !IsVariableName(Peek().text)) {
      size_t save = pos_;
      CCPI_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
      if (!atom.args.empty() || !PeekCmpOp().has_value()) {
        return Literal::Positive(std::move(atom));
      }
      pos_ = save;  // it was a constant on the left of a comparison
    }
    CCPI_ASSIGN_OR_RETURN(Term lhs, ParseTerm());
    std::optional<CmpOp> op = PeekCmpOp();
    if (!op.has_value()) return Error("expected comparison operator");
    Advance();
    CCPI_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
    return Literal::Cmp(Comparison{std::move(lhs), *op, std::move(rhs)});
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Program> ParseProgram(std::string_view input) {
  CCPI_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.ParseProgramTokens();
}

Result<Rule> ParseRule(std::string_view input) {
  CCPI_ASSIGN_OR_RETURN(Program program, ParseProgram(input));
  if (program.rules.size() != 1) {
    return Status::InvalidArgument("expected exactly one rule, got " +
                                   std::to_string(program.rules.size()));
  }
  return program.rules[0];
}

}  // namespace ccpi
