#include "datalog/simplify.h"

#include <set>

namespace ccpi {

std::optional<CQ> SimplifyCQ(const CQ& q) {
  CQ out = q;
  std::set<std::string> head_vars;
  for (const Term& t : out.head.args) {
    if (t.is_var()) head_vars.insert(t.var());
  }

  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < out.comparisons.size(); ++i) {
      const Comparison& c = out.comparisons[i];
      // Ground comparison: evaluate.
      if (c.lhs.is_const() && c.rhs.is_const()) {
        if (!EvalCmp(c.lhs.constant(), c.op, c.rhs.constant())) {
          return std::nullopt;
        }
        out.comparisons.erase(out.comparisons.begin() +
                              static_cast<ptrdiff_t>(i));
        changed = true;
        break;
      }
      // Reflexive: X op X.
      if (c.lhs == c.rhs) {
        if (c.op == CmpOp::kLt || c.op == CmpOp::kGt || c.op == CmpOp::kNe) {
          return std::nullopt;
        }
        out.comparisons.erase(out.comparisons.begin() +
                              static_cast<ptrdiff_t>(i));
        changed = true;
        break;
      }
      if (c.op != CmpOp::kEq) continue;
      // Equality with a substitutable (non-head) variable side.
      const Term* var_side = nullptr;
      const Term* other = nullptr;
      if (c.lhs.is_var() && head_vars.count(c.lhs.var()) == 0) {
        var_side = &c.lhs;
        other = &c.rhs;
      } else if (c.rhs.is_var() && head_vars.count(c.rhs.var()) == 0) {
        var_side = &c.rhs;
        other = &c.lhs;
      }
      if (var_side == nullptr) continue;
      Substitution s;
      s[var_side->var()] = *other;
      Comparison removed = c;
      out.comparisons.erase(out.comparisons.begin() +
                            static_cast<ptrdiff_t>(i));
      out = Apply(s, out);
      (void)removed;
      changed = true;
      break;
    }
  }
  return out;
}

}  // namespace ccpi
