#include "datalog/ast.h"

#include <algorithm>

#include "util/check.h"
#include "util/strings.h"

namespace ccpi {

Term Term::Var(std::string name) {
  CCPI_CHECK(IsVariableName(name));
  Term t;
  t.is_var_ = true;
  t.var_ = std::move(name);
  return t;
}

Term Term::Const(Value v) {
  Term t;
  t.is_var_ = false;
  t.const_ = std::move(v);
  return t;
}

const std::string& Term::var() const {
  CCPI_CHECK(is_var_);
  return var_;
}

const Value& Term::constant() const {
  CCPI_CHECK(!is_var_);
  return const_;
}

std::string Term::ToString() const {
  return is_var_ ? var_ : const_.ToString();
}

std::string Atom::ToString() const {
  if (args.empty()) return pred;
  std::vector<std::string> parts;
  parts.reserve(args.size());
  for (const Term& t : args) parts.push_back(t.ToString());
  return pred + "(" + Join(parts, ",") + ")";
}

const char* CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "<>";
  }
  return "?";
}

CmpOp Flip(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return CmpOp::kGt;
    case CmpOp::kLe:
      return CmpOp::kGe;
    case CmpOp::kGt:
      return CmpOp::kLt;
    case CmpOp::kGe:
      return CmpOp::kLe;
    case CmpOp::kEq:
    case CmpOp::kNe:
      return op;
  }
  return op;
}

CmpOp Negate(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return CmpOp::kGe;
    case CmpOp::kLe:
      return CmpOp::kGt;
    case CmpOp::kGt:
      return CmpOp::kLe;
    case CmpOp::kGe:
      return CmpOp::kLt;
    case CmpOp::kEq:
      return CmpOp::kNe;
    case CmpOp::kNe:
      return CmpOp::kEq;
  }
  return op;
}

bool EvalCmp(const Value& a, CmpOp op, const Value& b) {
  switch (op) {
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return a <= b;
    case CmpOp::kGt:
      return a > b;
    case CmpOp::kGe:
      return a >= b;
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return a != b;
  }
  return false;
}

std::string Comparison::ToString() const {
  return lhs.ToString() + " " + CmpOpToString(op) + " " + rhs.ToString();
}

Literal Literal::Positive(Atom a) {
  Literal l;
  l.kind = Kind::kPositive;
  l.atom = std::move(a);
  return l;
}

Literal Literal::Negated(Atom a) {
  Literal l;
  l.kind = Kind::kNegated;
  l.atom = std::move(a);
  return l;
}

Literal Literal::Cmp(Comparison c) {
  Literal l;
  l.kind = Kind::kComparison;
  l.cmp = std::move(c);
  return l;
}

std::string Literal::ToString() const {
  switch (kind) {
    case Kind::kPositive:
      return atom.ToString();
    case Kind::kNegated:
      return "not " + atom.ToString();
    case Kind::kComparison:
      return cmp.ToString();
  }
  return "?";
}

std::string Rule::ToString() const {
  if (body.empty()) return head.ToString();
  std::vector<std::string> parts;
  parts.reserve(body.size());
  for (const Literal& l : body) parts.push_back(l.ToString());
  return head.ToString() + " :- " + Join(parts, " & ");
}

namespace {

void CollectTermVar(const Term& t, std::vector<std::string>* out) {
  if (t.is_var() &&
      std::find(out->begin(), out->end(), t.var()) == out->end()) {
    out->push_back(t.var());
  }
}

}  // namespace

void CollectVariables(const Atom& a, std::vector<std::string>* out) {
  for (const Term& t : a.args) CollectTermVar(t, out);
}

std::vector<std::string> Rule::Variables() const {
  std::vector<std::string> vars;
  CollectVariables(head, &vars);
  for (const Literal& l : body) {
    if (l.is_comparison()) {
      CollectTermVar(l.cmp.lhs, &vars);
      CollectTermVar(l.cmp.rhs, &vars);
    } else {
      CollectVariables(l.atom, &vars);
    }
  }
  return vars;
}

std::string Program::ToString() const {
  std::string out;
  for (const Rule& r : rules) {
    out += r.ToString();
    out += "\n";
  }
  return out;
}

std::set<std::string> Program::IdbPredicates() const {
  std::set<std::string> idb;
  for (const Rule& r : rules) idb.insert(r.head.pred);
  return idb;
}

std::set<std::string> Program::EdbPredicates() const {
  std::set<std::string> idb = IdbPredicates();
  std::set<std::string> edb;
  for (const Rule& r : rules) {
    for (const Literal& l : r.body) {
      if (!l.is_comparison() && idb.count(l.atom.pred) == 0) {
        edb.insert(l.atom.pred);
      }
    }
  }
  return edb;
}

bool Program::IsRecursive() const {
  // Depth-first search for a cycle in the predicate dependency graph
  // restricted to IDB predicates.
  std::set<std::string> idb = IdbPredicates();
  std::map<std::string, std::set<std::string>> deps;
  for (const Rule& r : rules) {
    for (const Literal& l : r.body) {
      if (!l.is_comparison() && idb.count(l.atom.pred) > 0) {
        deps[r.head.pred].insert(l.atom.pred);
      }
    }
  }
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::pair<std::string, bool>> stack;
  for (const std::string& start : idb) {
    if (color[start] != 0) continue;
    stack.push_back({start, false});
    while (!stack.empty()) {
      auto [node, done] = stack.back();
      stack.pop_back();
      if (done) {
        color[node] = 2;
        continue;
      }
      if (color[node] == 1) continue;
      color[node] = 1;
      stack.push_back({node, true});
      for (const std::string& next : deps[node]) {
        if (color[next] == 1) return true;
        if (color[next] == 0) stack.push_back({next, false});
      }
    }
  }
  return false;
}

bool Program::HasNegation() const {
  for (const Rule& r : rules) {
    for (const Literal& l : r.body) {
      if (l.is_negated()) return true;
    }
  }
  return false;
}

bool Program::HasArithmetic() const {
  for (const Rule& r : rules) {
    for (const Literal& l : r.body) {
      if (l.is_comparison()) return true;
    }
  }
  return false;
}

Term Apply(const Substitution& s, const Term& t) {
  if (t.is_var()) {
    auto it = s.find(t.var());
    if (it != s.end()) return it->second;
  }
  return t;
}

Atom Apply(const Substitution& s, const Atom& a) {
  Atom out;
  out.pred = a.pred;
  out.args.reserve(a.args.size());
  for (const Term& t : a.args) out.args.push_back(Apply(s, t));
  return out;
}

Comparison Apply(const Substitution& s, const Comparison& c) {
  return Comparison{Apply(s, c.lhs), c.op, Apply(s, c.rhs)};
}

Literal Apply(const Substitution& s, const Literal& l) {
  Literal out = l;
  if (l.is_comparison()) {
    out.cmp = Apply(s, l.cmp);
  } else {
    out.atom = Apply(s, l.atom);
  }
  return out;
}

Rule Apply(const Substitution& s, const Rule& r) {
  Rule out;
  out.head = Apply(s, r.head);
  out.body.reserve(r.body.size());
  for (const Literal& l : r.body) out.body.push_back(Apply(s, l));
  return out;
}

Rule RenameApart(const Rule& r, const std::string& suffix) {
  Substitution s;
  for (const std::string& v : r.Variables()) {
    s[v] = Term::Var(v + suffix);
  }
  return Apply(s, r);
}

}  // namespace ccpi
