#ifndef CCPI_RELATIONAL_DATABASE_H_
#define CCPI_RELATIONAL_DATABASE_H_

#include <map>
#include <string>
#include <vector>

#include "relational/relation.h"
#include "util/status.h"

namespace ccpi {

/// A named collection of relations: predicate name -> Relation.
///
/// Predicates are created on first mention with the arity of that mention;
/// subsequent mentions must agree. A predicate that was never mentioned is
/// treated as an empty relation of the arity the reader asks for, which is
/// exactly the paper's convention (a missing EDB relation is empty).
///
/// Thread safety: like Relation, the const interface (Get, Contains,
/// PredicateNames, ...) is safe to call from any number of threads as long
/// as no thread mutates concurrently; the empty relations handed out for
/// absent predicates come from a process-wide cache with stable addresses.
class Database {
 public:
  Database() = default;

  /// Inserts `t` into `pred`, creating the relation if needed.
  /// Returns InvalidArgument on arity mismatch with an existing relation,
  /// otherwise OK (idempotent for duplicate tuples).
  Status Insert(const std::string& pred, Tuple t);

  /// Erases `t` from `pred` if present.
  Status Erase(const std::string& pred, const Tuple& t);

  bool Contains(const std::string& pred, const Tuple& t) const;

  /// The relation for `pred`, or an empty relation of `arity` if absent.
  const Relation& Get(const std::string& pred, size_t arity) const;

  /// Mutable relation for `pred`, created with `arity` if absent.
  Relation* GetMutable(const std::string& pred, size_t arity);

  bool Has(const std::string& pred) const { return rels_.count(pred) > 0; }

  /// Names of all predicates with at least one recorded relation (possibly
  /// empty after erasures), in sorted order.
  std::vector<std::string> PredicateNames() const;

  /// Total number of tuples across all relations.
  size_t TotalTuples() const;

  /// Eagerly builds every column index of every relation (see
  /// Relation::FreezeIndexes), so a parallel read phase that follows never
  /// contends on lazy index builds.
  void FreezeIndexes() const;

  std::string ToString() const;

 private:
  std::map<std::string, Relation> rels_;
};

}  // namespace ccpi

#endif  // CCPI_RELATIONAL_DATABASE_H_
