#ifndef CCPI_RELATIONAL_DATABASE_H_
#define CCPI_RELATIONAL_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "relational/relation.h"
#include "util/status.h"

namespace ccpi {

/// A named collection of relations: predicate name -> Relation.
///
/// Predicates are created on first mention with the arity of that mention;
/// subsequent mentions must agree. A predicate that was never mentioned is
/// treated as an empty relation of the arity the reader asks for, which is
/// exactly the paper's convention (a missing EDB relation is empty).
///
/// MVCC snapshots via copy-on-write: relations are held by shared_ptr, so
/// copying a Database copies only the name->pointer map (O(#predicates),
/// no tuple is touched) and the copy *is* an immutable snapshot — it pins
/// every relation at its content version as of the copy. A mutation of
/// either database (Insert/Erase/GetMutable) first clones any relation it
/// still shares with another handle, so no snapshot ever observes a write
/// that happened after it was taken. Together with the content-version
/// stamps (Relation::version(): equal versions imply equal contents) this
/// is the substrate of the manager's pipelined episode scheduler — many
/// episodes read their own admission snapshot while commits mutate the
/// live database (see docs/concurrency.md).
///
/// Thread safety: the const interface (Get, Contains, PredicateNames, ...)
/// is safe from any number of threads as long as no thread mutates *this
/// handle* concurrently; distinct handles (snapshots) are independent —
/// mutating one while another is being read is safe, because the mutation
/// clones shared relations instead of writing through them. Taking the
/// copy itself and mutating must happen on one thread (or be externally
/// serialized). The empty relations handed out for absent predicates come
/// from a process-wide cache with stable addresses.
class Database {
 public:
  Database() = default;

  /// Inserts `t` into `pred`, creating the relation if needed.
  /// Returns InvalidArgument on arity mismatch with an existing relation,
  /// otherwise OK (idempotent for duplicate tuples).
  Status Insert(const std::string& pred, Tuple t);

  /// Erases `t` from `pred` if present.
  Status Erase(const std::string& pred, const Tuple& t);

  bool Contains(const std::string& pred, const Tuple& t) const;

  /// The relation for `pred`, or an empty relation of `arity` if absent.
  /// The reference stays valid until this handle mutates `pred` (a
  /// copy-on-write clone replaces the object) or the last handle sharing
  /// the relation is destroyed.
  const Relation& Get(const std::string& pred, size_t arity) const;

  /// Mutable relation for `pred`, created with `arity` if absent. Clones
  /// the relation first when it is still shared with a snapshot, so writes
  /// through the pointer never leak into copies taken earlier.
  Relation* GetMutable(const std::string& pred, size_t arity);

  bool Has(const std::string& pred) const { return rels_.count(pred) > 0; }

  /// Names of all predicates with at least one recorded relation (possibly
  /// empty after erasures), in sorted order.
  std::vector<std::string> PredicateNames() const;

  /// Total number of tuples across all relations.
  size_t TotalTuples() const;

  /// Eagerly builds every column index of every relation (see
  /// Relation::FreezeIndexes), so a parallel read phase that follows never
  /// contends on lazy index builds.
  void FreezeIndexes() const;

  std::string ToString() const;

 private:
  /// Returns the relation slot for mutation, cloning it first if any other
  /// Database handle still shares it (copy-on-write).
  Relation* Own(std::shared_ptr<Relation>* slot);

  /// Shared-ownership store: a Database copy shares every Relation with
  /// the original until one side mutates it.
  std::map<std::string, std::shared_ptr<Relation>> rels_;
};

}  // namespace ccpi

#endif  // CCPI_RELATIONAL_DATABASE_H_
