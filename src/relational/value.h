#ifndef CCPI_RELATIONAL_VALUE_H_
#define CCPI_RELATIONAL_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>

namespace ccpi {

/// A database constant: a 64-bit integer or a symbol (interned as a string).
///
/// The paper's constraint language compares constants with a total order
/// (Section 5 assumes "<= is a total order"). We realize that order as:
/// integers by numeric value, symbols lexicographically, and every integer
/// below every symbol. Only the *order* of values is ever observable to the
/// constraint-checking algorithms, so the cross-type convention is harmless;
/// it merely makes the order total.
class Value {
 public:
  Value() : rep_(int64_t{0}) {}
  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(std::string s) : rep_(std::move(s)) {}
  explicit Value(const char* s) : rep_(std::string(s)) {}

  bool is_int() const { return std::holds_alternative<int64_t>(rep_); }
  bool is_symbol() const { return !is_int(); }

  /// Requires is_int().
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  /// Requires is_symbol().
  const std::string& AsSymbol() const { return std::get<std::string>(rep_); }

  /// Renders the value in the paper's syntax: bare integer or bare symbol.
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.rep_ == b.rep_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  /// Total order described in the class comment.
  friend bool operator<(const Value& a, const Value& b);
  friend bool operator<=(const Value& a, const Value& b) { return !(b < a); }
  friend bool operator>(const Value& a, const Value& b) { return b < a; }
  friend bool operator>=(const Value& a, const Value& b) { return !(a < b); }

  size_t Hash() const;

 private:
  std::variant<int64_t, std::string> rep_;
};

/// Convenience factories used pervasively by tests and examples. The int
/// overload keeps literals like V(0) unambiguous (0 is also a null pointer
/// constant, which would otherwise match the const char* overload).
inline Value V(int64_t v) { return Value(v); }
inline Value V(int v) { return Value(static_cast<int64_t>(v)); }
inline Value V(const char* s) { return Value(s); }
inline Value V(std::string s) { return Value(std::move(s)); }

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace ccpi

#endif  // CCPI_RELATIONAL_VALUE_H_
