#include "relational/columnar.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace ccpi {

namespace {

/// Sentinel for "this code has no counterpart on the other side". A valid
/// code is always < 2^32 - 1 (a dictionary cannot outgrow the row count,
/// which Build caps below 2^32).
constexpr uint32_t kNoCode = 0xFFFFFFFFu;

bool ValueCmpHolds(const Value& a, ScanOp op, const Value& b) {
  switch (op) {
    case ScanOp::kLt:
      return a < b;
    case ScanOp::kLe:
      return a <= b;
    case ScanOp::kGt:
      return a > b;
    case ScanOp::kGe:
      return a >= b;
    case ScanOp::kEq:
      return a == b;
    case ScanOp::kNe:
      return a != b;
  }
  return false;
}

/// A comparison against one dictionary column, compiled to pure code
/// arithmetic. Because the dictionary is sorted, every ScanOp reduces to a
/// code bound or a code equality.
struct CodePred {
  enum class Kind { kAll, kNone, kLtBound, kGeBound, kEqCode, kNeCode };
  Kind kind = Kind::kNone;
  uint32_t operand = 0;
};

}  // namespace

std::shared_ptr<const ColumnarSegment> ColumnarSegment::Build(
    const std::vector<Tuple>& rows, size_t arity) {
  CCPI_CHECK(rows.size() < 0xFFFFFFFFull);
  auto seg = std::shared_ptr<ColumnarSegment>(new ColumnarSegment());
  seg->size_ = rows.size();
  seg->columns_.resize(arity);
  for (size_t col = 0; col < arity; ++col) {
    Column& c = seg->columns_[col];
    bool all_int = true;
    for (const Tuple& t : rows) {
      if (!t[col].is_int()) {
        all_int = false;
        break;
      }
    }
    if (all_int) {
      c.kind = ColumnKind::kInt64;
      c.ints.reserve(rows.size());
      for (const Tuple& t : rows) c.ints.push_back(t[col].AsInt());
      continue;
    }
    c.kind = ColumnKind::kDict;
    std::unordered_set<Value, ValueHash> distinct;
    for (const Tuple& t : rows) distinct.insert(t[col]);
    c.dict.assign(distinct.begin(), distinct.end());
    std::sort(c.dict.begin(), c.dict.end());
    c.encode.reserve(c.dict.size());
    for (uint32_t code = 0; code < c.dict.size(); ++code) {
      c.encode.emplace(c.dict[code], code);
    }
    c.codes.reserve(rows.size());
    for (const Tuple& t : rows) c.codes.push_back(c.encode.at(t[col]));
  }
  return seg;
}

Value ColumnarSegment::ValueAt(size_t row, size_t col) const {
  const Column& c = columns_[col];
  if (c.kind == ColumnKind::kInt64) return Value(c.ints[row]);
  return c.dict[c.codes[row]];
}

Tuple ColumnarSegment::GatherRow(size_t row) const {
  Tuple t;
  t.reserve(columns_.size());
  for (size_t col = 0; col < columns_.size(); ++col) {
    t.push_back(ValueAt(row, col));
  }
  return t;
}

void ColumnarSegment::Gather(const PositionList& positions,
                             std::vector<Tuple>* out) const {
  out->reserve(out->size() + positions.size());
  for (uint32_t p : positions) out->push_back(GatherRow(p));
}

template <typename Keep>
void ColumnarSegment::ScanWhere(size_t n, Keep keep, PositionList* out) const {
  // Estimate selectivity on a prefix sample, then pick the fill strategy:
  // sparse scans take one branchy append pass (the branch predicts false,
  // and a counting pre-pass would double the work), dense scans take a
  // branchless selection store over a full-width buffer — always write the
  // candidate position, bump the write cursor only on a match, so there is
  // no per-row branch to mispredict. Either way the emitted positions are
  // ascending, identical to the row loop this replaces.
  size_t sample = n < 2048 ? n : 2048;
  size_t hits = 0;
  for (uint32_t i = 0; i < sample; ++i) hits += keep(i) ? 1 : 0;
  if (hits * 4 < sample) {
    for (uint32_t i = 0; i < n; ++i) {
      if (keep(i)) out->push_back(i);
    }
    return;
  }
  out->resize(n);
  uint32_t* dst = out->data();
  size_t w = 0;
  for (uint32_t i = 0; i < n; ++i) {
    dst[w] = i;
    w += keep(i) ? 1 : 0;
  }
  out->resize(w);
}

template <typename Keep>
void ColumnarSegment::FilterWhere(Keep keep, PositionList* positions) {
  uint32_t* dst = positions->data();
  size_t w = 0;
  for (uint32_t p : *positions) {
    dst[w] = p;
    w += keep(p) ? 1 : 0;
  }
  positions->resize(w);
}

namespace {

/// Compiles `col <op> v` over a dictionary column into a CodePred. The
/// dictionary is sorted by the total Value order, so range bounds come from
/// a binary search and a missing equality value means "no row" / "every
/// row" outright.
CodePred CompileDictPred(const std::vector<Value>& dict,
                         const std::unordered_map<Value, uint32_t, ValueHash>&
                             encode,
                         ScanOp op, const Value& v) {
  CodePred p;
  if (op == ScanOp::kEq || op == ScanOp::kNe) {
    auto hit = encode.find(v);
    if (hit == encode.end()) {
      p.kind = op == ScanOp::kEq ? CodePred::Kind::kNone
                                 : CodePred::Kind::kAll;
    } else {
      p.kind = op == ScanOp::kEq ? CodePred::Kind::kEqCode
                                 : CodePred::Kind::kNeCode;
      p.operand = hit->second;
    }
    return p;
  }
  uint32_t lb = static_cast<uint32_t>(
      std::lower_bound(dict.begin(), dict.end(), v) - dict.begin());
  uint32_t ub = static_cast<uint32_t>(
      std::upper_bound(dict.begin(), dict.end(), v) - dict.begin());
  switch (op) {
    case ScanOp::kLt:
      p.kind = CodePred::Kind::kLtBound;
      p.operand = lb;
      break;
    case ScanOp::kLe:
      p.kind = CodePred::Kind::kLtBound;
      p.operand = ub;
      break;
    case ScanOp::kGt:
      p.kind = CodePred::Kind::kGeBound;
      p.operand = ub;
      break;
    case ScanOp::kGe:
      p.kind = CodePred::Kind::kGeBound;
      p.operand = lb;
      break;
    default:
      break;
  }
  return p;
}

/// For an int column compared against a symbol: every int sorts below
/// every symbol, so the comparison is constant across the column.
bool IntVsSymbolHolds(ScanOp op) {
  return op == ScanOp::kLt || op == ScanOp::kLe || op == ScanOp::kNe;
}

}  // namespace

void ColumnarSegment::ScanEq(size_t col, const Value& v,
                             PositionList* out) const {
  ScanCmp(col, ScanOp::kEq, v, out);
}

void ColumnarSegment::ScanCmp(size_t col, ScanOp op, const Value& v,
                              PositionList* out) const {
  out->clear();
  const Column& c = columns_[col];
  if (c.kind == ColumnKind::kInt64) {
    if (!v.is_int()) {
      if (IntVsSymbolHolds(op)) {
        out->reserve(size_);
        for (uint32_t i = 0; i < size_; ++i) out->push_back(i);
      }
      return;
    }
    const int64_t* ints = c.ints.data();
    int64_t x = v.AsInt();
    switch (op) {
      case ScanOp::kLt:
        ScanWhere(size_, [=](uint32_t i) { return ints[i] < x; }, out);
        break;
      case ScanOp::kLe:
        ScanWhere(size_, [=](uint32_t i) { return ints[i] <= x; }, out);
        break;
      case ScanOp::kGt:
        ScanWhere(size_, [=](uint32_t i) { return ints[i] > x; }, out);
        break;
      case ScanOp::kGe:
        ScanWhere(size_, [=](uint32_t i) { return ints[i] >= x; }, out);
        break;
      case ScanOp::kEq:
        ScanWhere(size_, [=](uint32_t i) { return ints[i] == x; }, out);
        break;
      case ScanOp::kNe:
        ScanWhere(size_, [=](uint32_t i) { return ints[i] != x; }, out);
        break;
    }
    return;
  }
  CodePred p = CompileDictPred(c.dict, c.encode, op, v);
  const uint32_t* codes = c.codes.data();
  uint32_t b = p.operand;
  switch (p.kind) {
    case CodePred::Kind::kNone:
      break;
    case CodePred::Kind::kAll:
      out->reserve(size_);
      for (uint32_t i = 0; i < size_; ++i) out->push_back(i);
      break;
    case CodePred::Kind::kLtBound:
      ScanWhere(size_, [=](uint32_t i) { return codes[i] < b; }, out);
      break;
    case CodePred::Kind::kGeBound:
      ScanWhere(size_, [=](uint32_t i) { return codes[i] >= b; }, out);
      break;
    case CodePred::Kind::kEqCode:
      ScanWhere(size_, [=](uint32_t i) { return codes[i] == b; }, out);
      break;
    case CodePred::Kind::kNeCode:
      ScanWhere(size_, [=](uint32_t i) { return codes[i] != b; }, out);
      break;
  }
}

void ColumnarSegment::FilterCmp(size_t col, ScanOp op, const Value& v,
                                PositionList* positions) const {
  const Column& c = columns_[col];
  if (c.kind == ColumnKind::kInt64) {
    if (!v.is_int()) {
      if (!IntVsSymbolHolds(op)) positions->clear();
      return;
    }
    const int64_t* ints = c.ints.data();
    int64_t x = v.AsInt();
    switch (op) {
      case ScanOp::kLt:
        FilterWhere([=](uint32_t i) { return ints[i] < x; }, positions);
        break;
      case ScanOp::kLe:
        FilterWhere([=](uint32_t i) { return ints[i] <= x; }, positions);
        break;
      case ScanOp::kGt:
        FilterWhere([=](uint32_t i) { return ints[i] > x; }, positions);
        break;
      case ScanOp::kGe:
        FilterWhere([=](uint32_t i) { return ints[i] >= x; }, positions);
        break;
      case ScanOp::kEq:
        FilterWhere([=](uint32_t i) { return ints[i] == x; }, positions);
        break;
      case ScanOp::kNe:
        FilterWhere([=](uint32_t i) { return ints[i] != x; }, positions);
        break;
    }
    return;
  }
  CodePred p = CompileDictPred(c.dict, c.encode, op, v);
  const uint32_t* codes = c.codes.data();
  uint32_t b = p.operand;
  switch (p.kind) {
    case CodePred::Kind::kNone:
      positions->clear();
      break;
    case CodePred::Kind::kAll:
      break;
    case CodePred::Kind::kLtBound:
      FilterWhere([=](uint32_t i) { return codes[i] < b; }, positions);
      break;
    case CodePred::Kind::kGeBound:
      FilterWhere([=](uint32_t i) { return codes[i] >= b; }, positions);
      break;
    case CodePred::Kind::kEqCode:
      FilterWhere([=](uint32_t i) { return codes[i] == b; }, positions);
      break;
    case CodePred::Kind::kNeCode:
      FilterWhere([=](uint32_t i) { return codes[i] != b; }, positions);
      break;
  }
}

void ColumnarSegment::ScanColCmp(size_t a, ScanOp op, size_t b,
                                 PositionList* out) const {
  out->clear();
  const Column& ca = columns_[a];
  const Column& cb = columns_[b];
  if (ca.kind == ColumnKind::kInt64 && cb.kind == ColumnKind::kInt64) {
    const int64_t* xs = ca.ints.data();
    const int64_t* ys = cb.ints.data();
    switch (op) {
      case ScanOp::kLt:
        ScanWhere(size_, [=](uint32_t i) { return xs[i] < ys[i]; }, out);
        break;
      case ScanOp::kLe:
        ScanWhere(size_, [=](uint32_t i) { return xs[i] <= ys[i]; }, out);
        break;
      case ScanOp::kGt:
        ScanWhere(size_, [=](uint32_t i) { return xs[i] > ys[i]; }, out);
        break;
      case ScanOp::kGe:
        ScanWhere(size_, [=](uint32_t i) { return xs[i] >= ys[i]; }, out);
        break;
      case ScanOp::kEq:
        ScanWhere(size_, [=](uint32_t i) { return xs[i] == ys[i]; }, out);
        break;
      case ScanOp::kNe:
        ScanWhere(size_, [=](uint32_t i) { return xs[i] != ys[i]; }, out);
        break;
    }
    return;
  }
  if (ca.kind == ColumnKind::kDict && cb.kind == ColumnKind::kDict &&
      (op == ScanOp::kEq || op == ScanOp::kNe)) {
    // Translate a's codes into b's code space once, then the row loop is
    // pure integer equality. kNoCode never equals a valid code.
    std::vector<uint32_t> trans(ca.dict.size(), kNoCode);
    for (uint32_t code = 0; code < ca.dict.size(); ++code) {
      auto hit = cb.encode.find(ca.dict[code]);
      if (hit != cb.encode.end()) trans[code] = hit->second;
    }
    const uint32_t* acodes = ca.codes.data();
    const uint32_t* bcodes = cb.codes.data();
    const uint32_t* tr = trans.data();
    if (op == ScanOp::kEq) {
      ScanWhere(size_, [=](uint32_t i) { return tr[acodes[i]] == bcodes[i]; },
                out);
    } else {
      ScanWhere(size_, [=](uint32_t i) { return tr[acodes[i]] != bcodes[i]; },
                out);
    }
    return;
  }
  // Mixed kinds or ordered dict comparisons: per-row Value compare (rare
  // in practice; still avoids materializing tuples).
  ScanWhere(size_,
            [&](uint32_t i) { return ValueCmpHolds(ValueAt(i, a), op,
                                                   ValueAt(i, b)); },
            out);
}

void ColumnarSegment::FilterColCmp(size_t a, ScanOp op, size_t b,
                                   PositionList* positions) const {
  const Column& ca = columns_[a];
  const Column& cb = columns_[b];
  if (ca.kind == ColumnKind::kInt64 && cb.kind == ColumnKind::kInt64) {
    const int64_t* xs = ca.ints.data();
    const int64_t* ys = cb.ints.data();
    switch (op) {
      case ScanOp::kLt:
        FilterWhere([=](uint32_t i) { return xs[i] < ys[i]; }, positions);
        break;
      case ScanOp::kLe:
        FilterWhere([=](uint32_t i) { return xs[i] <= ys[i]; }, positions);
        break;
      case ScanOp::kGt:
        FilterWhere([=](uint32_t i) { return xs[i] > ys[i]; }, positions);
        break;
      case ScanOp::kGe:
        FilterWhere([=](uint32_t i) { return xs[i] >= ys[i]; }, positions);
        break;
      case ScanOp::kEq:
        FilterWhere([=](uint32_t i) { return xs[i] == ys[i]; }, positions);
        break;
      case ScanOp::kNe:
        FilterWhere([=](uint32_t i) { return xs[i] != ys[i]; }, positions);
        break;
    }
    return;
  }
  FilterWhere([&](uint32_t i) {
    return ValueCmpHolds(ValueAt(i, a), op, ValueAt(i, b));
  }, positions);
}

ColumnarJoinTable::ColumnarJoinTable(const ColumnarSegment& build, size_t col)
    : build_(&build), col_(col) {
  const ColumnarSegment::Column& c = build.columns_[col];
  if (c.kind == ColumnarSegment::ColumnKind::kDict) {
    // The dictionary code IS the key id: postings fill with zero hashing.
    // A counting pass sizes every posting exactly so the fill pass never
    // reallocates.
    std::vector<uint32_t> counts(c.dict.size(), 0);
    for (uint32_t code : c.codes) ++counts[code];
    postings_.resize(c.dict.size());
    for (size_t k = 0; k < counts.size(); ++k) postings_[k].reserve(counts[k]);
    for (uint32_t i = 0; i < c.codes.size(); ++i) {
      postings_[c.codes[i]].push_back(i);
    }
    return;
  }
  int_ids_.reserve(c.ints.size());
  for (uint32_t i = 0; i < c.ints.size(); ++i) {
    auto [it, inserted] =
        int_ids_.try_emplace(c.ints[i], static_cast<int32_t>(postings_.size()));
    if (inserted) postings_.emplace_back();
    postings_[static_cast<size_t>(it->second)].push_back(i);
  }
}

int32_t ColumnarJoinTable::IdOf(const Value& v) const {
  const ColumnarSegment::Column& c = build_->columns_[col_];
  if (c.kind == ColumnarSegment::ColumnKind::kDict) {
    auto hit = c.encode.find(v);
    return hit == c.encode.end() ? -1 : static_cast<int32_t>(hit->second);
  }
  if (!v.is_int()) return -1;
  auto hit = int_ids_.find(v.AsInt());
  return hit == int_ids_.end() ? -1 : hit->second;
}

void ColumnarJoinTable::TranslateProbeColumn(const ColumnarSegment& probe,
                                             size_t col,
                                             std::vector<int32_t>* ids) const {
  const ColumnarSegment::Column& p = probe.columns_[col];
  ids->resize(probe.size());
  if (p.kind == ColumnarSegment::ColumnKind::kDict) {
    // One IdOf per distinct probe value, then a pure array translation.
    std::vector<int32_t> trans(p.dict.size());
    for (uint32_t code = 0; code < p.dict.size(); ++code) {
      trans[code] = IdOf(p.dict[code]);
    }
    for (size_t i = 0; i < p.codes.size(); ++i) {
      (*ids)[i] = trans[p.codes[i]];
    }
    return;
  }
  const ColumnarSegment::Column& b = build_->columns_[col_];
  if (b.kind == ColumnarSegment::ColumnKind::kInt64) {
    for (size_t i = 0; i < p.ints.size(); ++i) {
      auto hit = int_ids_.find(p.ints[i]);
      (*ids)[i] = hit == int_ids_.end() ? -1 : hit->second;
    }
    return;
  }
  // Int probe column against a dictionary build column: pre-extract the
  // build dictionary's integer entries so the row loop never builds a
  // Value.
  std::unordered_map<int64_t, int32_t> int_codes;
  for (uint32_t code = 0; code < b.dict.size(); ++code) {
    if (b.dict[code].is_int()) {
      int_codes.emplace(b.dict[code].AsInt(), static_cast<int32_t>(code));
    }
  }
  for (size_t i = 0; i < p.ints.size(); ++i) {
    auto hit = int_codes.find(p.ints[i]);
    (*ids)[i] = hit == int_codes.end() ? -1 : hit->second;
  }
}

}  // namespace ccpi
