#ifndef CCPI_RELATIONAL_COLUMNAR_H_
#define CCPI_RELATIONAL_COLUMNAR_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "relational/tuple.h"
#include "relational/value.h"

namespace ccpi {

/// Row positions produced by a scan kernel, in ascending row order. 32-bit
/// on purpose: a segment is capped at 2^32 rows, positions pack two per
/// cache line slot, and the narrower loads keep the scan loops
/// vectorizable.
using PositionList = std::vector<uint32_t>;

/// Comparison operators of the scan kernels. Mirrors datalog's CmpOp
/// value-for-value (the relational layer sits below the datalog AST, so it
/// cannot include it; ra_eval maps between the two with a trivial switch).
enum class ScanOp { kLt, kLe, kGt, kGe, kEq, kNe };

/// An immutable columnar image of one relation, built when the relation is
/// frozen for a read phase (Relation::FreezeIndexes) and dropped by the
/// next mutation.
///
/// Layout (hyrise-style typed segments): each column is either
///   - kInt64:  the raw int64 payload, one contiguous array — scans are
///     branch-free compares over machine integers, and
///   - kDict:   a dictionary-coded column for symbol or mixed columns: the
///     distinct values sorted by the global Value order, an encode map
///     value -> code, and one uint32 code per row. Because the dictionary
///     is sorted, code order IS value order, so both equality and range
///     scans run over the code array without touching a Value.
///
/// Row order is the relation's insertion order, so every kernel result is
/// position-for-position identical to the row-at-a-time loop it replaces;
/// only the cost changes. The segment never aliases the relation's row
/// store — a reader holding the shared_ptr may keep scanning its snapshot
/// even while the source relation is being mutated (the evaluation engine
/// leans on this to iterate without per-row copies).
class ColumnarSegment {
 public:
  enum class ColumnKind { kInt64, kDict };

  /// Builds the columnar image of `rows` (all of arity `arity`).
  /// Requires rows.size() < 2^32.
  static std::shared_ptr<const ColumnarSegment> Build(
      const std::vector<Tuple>& rows, size_t arity);

  size_t size() const { return size_; }
  size_t arity() const { return columns_.size(); }
  ColumnKind column_kind(size_t col) const { return columns_[col].kind; }

  /// The value at (row, col); decodes dictionary columns.
  Value ValueAt(size_t row, size_t col) const;

  /// Materializes one row (insertion-order position) as a Tuple.
  Tuple GatherRow(size_t row) const;

  /// Appends to `out` the rows of `positions`, in order (batched gather
  /// for projection-style consumers).
  void Gather(const PositionList& positions, std::vector<Tuple>* out) const;

  /// All positions where column `col` equals `v` (ascending). Equivalent
  /// to ScanCmp(col, ScanOp::kEq, v) but with the common case spelled out.
  void ScanEq(size_t col, const Value& v, PositionList* out) const;

  /// All positions where `column col <op> v` holds (ascending).
  void ScanCmp(size_t col, ScanOp op, const Value& v, PositionList* out) const;

  /// Refines `positions` in place to those where `column col <op> v` holds.
  void FilterCmp(size_t col, ScanOp op, const Value& v,
                 PositionList* positions) const;

  /// All positions where `column a <op> column b` holds (ascending).
  void ScanColCmp(size_t a, ScanOp op, size_t b, PositionList* out) const;

  /// Refines `positions` in place to those where `column a <op> column b`
  /// holds.
  void FilterColCmp(size_t a, ScanOp op, size_t b,
                    PositionList* positions) const;

 private:
  struct Column {
    ColumnKind kind = ColumnKind::kInt64;
    /// kInt64: the values. kDict: unused.
    std::vector<int64_t> ints;
    /// kDict: one code per row, indexing into dict.
    std::vector<uint32_t> codes;
    /// kDict: distinct values in ascending Value order (code order == value
    /// order).
    std::vector<Value> dict;
    /// kDict: value -> code.
    std::unordered_map<Value, uint32_t, ValueHash> encode;
  };

  ColumnarSegment() = default;

  template <typename Keep>
  void ScanWhere(size_t n, Keep keep, PositionList* out) const;
  template <typename Keep>
  static void FilterWhere(Keep keep, PositionList* positions);

  friend class ColumnarJoinTable;

  size_t size_ = 0;
  std::vector<Column> columns_;
};

/// Column-at-a-time hash equi-join support: the build side is one column
/// of a segment, hashed once into postings; the probe side is translated
/// column-at-a-time into the build side's code space, after which the
/// probe loop touches only integers. Postings preserve build-row order, so
/// a left-major walk reproduces the nested-loop emission order exactly.
class ColumnarJoinTable {
 public:
  /// Builds over `build` column `col`.
  ColumnarJoinTable(const ColumnarSegment& build, size_t col);

  /// For every probe row, the matching build-side key id, or -1 when the
  /// probe value does not occur in the build column. One pass; dictionary
  /// probe columns are translated via their dictionary (one lookup per
  /// distinct value, not per row).
  void TranslateProbeColumn(const ColumnarSegment& probe, size_t col,
                            std::vector<int32_t>* ids) const;

  /// Build-side positions of key id (from TranslateProbeColumn; id >= 0).
  const PositionList& Posting(int32_t id) const {
    return postings_[static_cast<size_t>(id)];
  }

 private:
  int32_t IdOf(const Value& v) const;

  const ColumnarSegment* build_;
  size_t col_;
  /// Key id -> build positions, in build-row order. For a kDict build
  /// column the id IS the dictionary code (no hashing at build time).
  std::vector<PositionList> postings_;
  /// kInt64 build column: value -> id.
  std::unordered_map<int64_t, int32_t> int_ids_;
};

}  // namespace ccpi

#endif  // CCPI_RELATIONAL_COLUMNAR_H_
