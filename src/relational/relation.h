#ifndef CCPI_RELATIONAL_RELATION_H_
#define CCPI_RELATIONAL_RELATION_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "relational/columnar.h"
#include "relational/tuple.h"
#include "util/status.h"

namespace ccpi {

/// A set of tuples of a fixed arity, with optional per-column hash indexes.
///
/// The store keeps insertion order (benchmarks iterate deterministically) and
/// a hash set for O(1) duplicate elimination and membership. Column indexes
/// are built lazily on first probe and invalidated by mutation; the
/// evaluation engine uses them for index-nested-loop joins.
///
/// Thread safety: a relation that is not being mutated may be read —
/// rows(), Contains(), Probe(), FreezeIndexes() — from any number of
/// threads concurrently; the lazy index build behind Probe is guarded by an
/// internal shared mutex, so `const` genuinely means "safe to share".
/// Mutation (Insert/Erase/Clear) must still be externally serialized
/// against every reader, which is the natural discipline of the checking
/// pipeline: the database is frozen during a check phase and updated only
/// between phases.
class Relation {
 public:
  explicit Relation(size_t arity) : arity_(arity) {}

  // Copying is a row-store copy; the column indexes are a cache and are
  // deliberately not copied (they rebuild lazily on the copy), which also
  // lets a reader copy a relation another thread is concurrently probing.
  Relation(const Relation& other);
  Relation& operator=(const Relation& other);
  Relation(Relation&& other) noexcept;
  Relation& operator=(Relation&& other) noexcept;

  size_t arity() const { return arity_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Content-version stamp. Every content-changing mutation (an Insert that
  /// added a row, an Erase that removed one, a Clear of a non-empty
  /// relation) restamps the relation from one process-wide monotone
  /// counter, so two relations with equal versions have equal contents —
  /// even across copies, scratch databases, and rollbacks. Version 0 means
  /// "never mutated" (empty). Copies and moves carry the version.
  uint64_t version() const { return version_; }

  /// Adds a tuple; returns true if it was not already present.
  /// Aborts if the arity does not match (programming error).
  bool Insert(Tuple t);

  /// Removes a tuple; returns true if it was present.
  bool Erase(const Tuple& t);

  bool Contains(const Tuple& t) const;

  /// Stable snapshot of the rows in insertion order (erased rows removed).
  const std::vector<Tuple>& rows() const { return rows_; }

  /// Row indexes whose column `col` equals `v`. Builds the column index on
  /// first use (thread-safe). `col` must be < arity(). The returned
  /// reference stays valid until the next mutation.
  const std::vector<size_t>& Probe(size_t col, const Value& v) const;

  /// Eagerly builds the index of every column, so a subsequent parallel
  /// read phase probes without ever taking the exclusive build path. When
  /// the columnar path is enabled this also builds the columnar segment,
  /// so freezing is the single "now read-optimized" transition.
  void FreezeIndexes() const;

  /// The columnar image built by the last FreezeIndexes(), or null if the
  /// relation has not been frozen (or was mutated since, or the columnar
  /// path is disabled). The segment is immutable; holders may keep
  /// scanning it after the relation mutates (snapshot semantics, same as
  /// a copied Probe posting).
  std::shared_ptr<const ColumnarSegment> columnar_segment() const;

  /// Process-wide switch for the columnar read path (default on). Off, a
  /// freeze builds only the hash indexes and columnar_segment() returns
  /// null everywhere, forcing every consumer down the row-at-a-time path —
  /// the lever the row-vs-columnar equivalence tests and the --columnar
  /// flag pull.
  static void SetColumnarEnabled(bool enabled);
  static bool ColumnarEnabled();

  /// Removes all tuples.
  void Clear();

  std::string ToString(const std::string& name) const;

  /// Observability counters for regression tests (process-wide, racy-read
  /// tolerant). DebugCopyCount counts Relation copy-constructions and
  /// copy-assignments; DebugIndexBuildCount counts per-column hash-index
  /// builds; DebugVersionCounter exposes the content-version counter so a
  /// test can assert an operation produced zero version churn;
  /// DebugSegmentBuildCount counts columnar-segment builds, the non-vacuity
  /// witness that a columnar-on run really exercised the columnar kernels.
  static uint64_t DebugCopyCount();
  static uint64_t DebugIndexBuildCount();
  static uint64_t DebugVersionCounter();
  static uint64_t DebugSegmentBuildCount();

 private:
  using ColumnIndex =
      std::unordered_map<Value, std::vector<size_t>, ValueHash>;

  void InvalidateIndexes();
  /// Builds (if absent) and returns the index of `col`. Caller must hold
  /// index_mu_ exclusively.
  const ColumnIndex& BuildIndexLocked(size_t col) const;

  size_t arity_;
  uint64_t version_ = 0;
  std::vector<Tuple> rows_;
  std::unordered_set<Tuple, TupleHash> set_;
  // indexes_[col] maps value -> row positions in rows_. Guarded by
  // index_mu_ (the posting vectors themselves are immutable once built
  // until the next mutation invalidates the whole map).
  mutable std::shared_mutex index_mu_;
  mutable std::unordered_map<size_t, ColumnIndex> indexes_;
  // Built by FreezeIndexes when the columnar path is on; dropped by the
  // same mutations that drop the hash indexes. Guarded by index_mu_ (the
  // pointee is immutable).
  mutable std::shared_ptr<const ColumnarSegment> segment_;
  static const std::vector<size_t> kEmptyPosting;
};

}  // namespace ccpi

#endif  // CCPI_RELATIONAL_RELATION_H_
