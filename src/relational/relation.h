#ifndef CCPI_RELATIONAL_RELATION_H_
#define CCPI_RELATIONAL_RELATION_H_

#include <cstddef>
#include <cstdint>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "relational/tuple.h"
#include "util/status.h"

namespace ccpi {

/// A set of tuples of a fixed arity, with optional per-column hash indexes.
///
/// The store keeps insertion order (benchmarks iterate deterministically) and
/// a hash set for O(1) duplicate elimination and membership. Column indexes
/// are built lazily on first probe and invalidated by mutation; the
/// evaluation engine uses them for index-nested-loop joins.
///
/// Thread safety: a relation that is not being mutated may be read —
/// rows(), Contains(), Probe(), FreezeIndexes() — from any number of
/// threads concurrently; the lazy index build behind Probe is guarded by an
/// internal shared mutex, so `const` genuinely means "safe to share".
/// Mutation (Insert/Erase/Clear) must still be externally serialized
/// against every reader, which is the natural discipline of the checking
/// pipeline: the database is frozen during a check phase and updated only
/// between phases.
class Relation {
 public:
  explicit Relation(size_t arity) : arity_(arity) {}

  // Copying is a row-store copy; the column indexes are a cache and are
  // deliberately not copied (they rebuild lazily on the copy), which also
  // lets a reader copy a relation another thread is concurrently probing.
  Relation(const Relation& other);
  Relation& operator=(const Relation& other);
  Relation(Relation&& other) noexcept;
  Relation& operator=(Relation&& other) noexcept;

  size_t arity() const { return arity_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Content-version stamp. Every content-changing mutation (an Insert that
  /// added a row, an Erase that removed one, a Clear of a non-empty
  /// relation) restamps the relation from one process-wide monotone
  /// counter, so two relations with equal versions have equal contents —
  /// even across copies, scratch databases, and rollbacks. Version 0 means
  /// "never mutated" (empty). Copies and moves carry the version.
  uint64_t version() const { return version_; }

  /// Adds a tuple; returns true if it was not already present.
  /// Aborts if the arity does not match (programming error).
  bool Insert(Tuple t);

  /// Removes a tuple; returns true if it was present.
  bool Erase(const Tuple& t);

  bool Contains(const Tuple& t) const;

  /// Stable snapshot of the rows in insertion order (erased rows removed).
  const std::vector<Tuple>& rows() const { return rows_; }

  /// Row indexes whose column `col` equals `v`. Builds the column index on
  /// first use (thread-safe). `col` must be < arity(). The returned
  /// reference stays valid until the next mutation.
  const std::vector<size_t>& Probe(size_t col, const Value& v) const;

  /// Eagerly builds the index of every column, so a subsequent parallel
  /// read phase probes without ever taking the exclusive build path.
  void FreezeIndexes() const;

  /// Removes all tuples.
  void Clear();

  std::string ToString(const std::string& name) const;

 private:
  using ColumnIndex =
      std::unordered_map<Value, std::vector<size_t>, ValueHash>;

  void InvalidateIndexes();
  /// Builds (if absent) and returns the index of `col`. Caller must hold
  /// index_mu_ exclusively.
  const ColumnIndex& BuildIndexLocked(size_t col) const;

  size_t arity_;
  uint64_t version_ = 0;
  std::vector<Tuple> rows_;
  std::unordered_set<Tuple, TupleHash> set_;
  // indexes_[col] maps value -> row positions in rows_. Guarded by
  // index_mu_ (the posting vectors themselves are immutable once built
  // until the next mutation invalidates the whole map).
  mutable std::shared_mutex index_mu_;
  mutable std::unordered_map<size_t, ColumnIndex> indexes_;
  static const std::vector<size_t> kEmptyPosting;
};

}  // namespace ccpi

#endif  // CCPI_RELATIONAL_RELATION_H_
