#ifndef CCPI_RELATIONAL_RELATION_H_
#define CCPI_RELATIONAL_RELATION_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "relational/tuple.h"
#include "util/status.h"

namespace ccpi {

/// A set of tuples of a fixed arity, with optional per-column hash indexes.
///
/// The store keeps insertion order (benchmarks iterate deterministically) and
/// a hash set for O(1) duplicate elimination and membership. Column indexes
/// are built lazily on first probe and invalidated by mutation; the
/// evaluation engine uses them for index-nested-loop joins.
class Relation {
 public:
  explicit Relation(size_t arity) : arity_(arity) {}

  size_t arity() const { return arity_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Adds a tuple; returns true if it was not already present.
  /// Aborts if the arity does not match (programming error).
  bool Insert(Tuple t);

  /// Removes a tuple; returns true if it was present.
  bool Erase(const Tuple& t);

  bool Contains(const Tuple& t) const;

  /// Stable snapshot of the rows in insertion order (erased rows removed).
  const std::vector<Tuple>& rows() const { return rows_; }

  /// Row indexes whose column `col` equals `v`. Builds the column index on
  /// first use. `col` must be < arity().
  const std::vector<size_t>& Probe(size_t col, const Value& v) const;

  /// Removes all tuples.
  void Clear();

  std::string ToString(const std::string& name) const;

 private:
  void InvalidateIndexes();

  size_t arity_;
  std::vector<Tuple> rows_;
  std::unordered_set<Tuple, TupleHash> set_;
  // indexes_[col] maps value -> row positions in rows_.
  mutable std::unordered_map<
      size_t, std::unordered_map<Value, std::vector<size_t>, ValueHash>>
      indexes_;
  static const std::vector<size_t> kEmptyPosting;
};

}  // namespace ccpi

#endif  // CCPI_RELATIONAL_RELATION_H_
