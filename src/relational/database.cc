#include "relational/database.h"

#include <mutex>
#include <utility>

namespace ccpi {

namespace {

/// The shared empty relation of a given arity. Process-wide (the relations
/// are empty and immutable, so sharing across databases is harmless) with
/// stable addresses, which makes the const Get safe under concurrent
/// readers — the per-database mutable cache it replaces was a data race.
const Relation& EmptyRelation(size_t arity) {
  static std::mutex mu;
  static auto* cache = new std::map<size_t, Relation>();
  std::lock_guard<std::mutex> lock(mu);
  auto [it, inserted] = cache->try_emplace(arity, Relation(arity));
  (void)inserted;
  return it->second;
}

}  // namespace

Relation* Database::Own(std::shared_ptr<Relation>* slot) {
  // Copy-on-write: a relation still shared with a snapshot is cloned
  // before the write, so the snapshot keeps the pre-write contents (and
  // version stamp) it pinned. The use_count check is race-free because
  // copies of this handle are taken on the mutating thread: a count of 1
  // here proves no snapshot can appear concurrently, and a stale count > 1
  // (another handle released just now) merely clones once more.
  if (slot->use_count() > 1) {
    *slot = std::make_shared<Relation>(**slot);
  }
  return slot->get();
}

Status Database::Insert(const std::string& pred, Tuple t) {
  auto it = rels_.find(pred);
  if (it == rels_.end()) {
    it = rels_.emplace(pred, std::make_shared<Relation>(t.size())).first;
  } else if (it->second->arity() != t.size()) {
    return Status::InvalidArgument("arity mismatch inserting into " + pred);
  }
  Own(&it->second)->Insert(std::move(t));
  return Status::OK();
}

Status Database::Erase(const std::string& pred, const Tuple& t) {
  auto it = rels_.find(pred);
  if (it == rels_.end()) return Status::OK();
  if (it->second->arity() != t.size()) {
    return Status::InvalidArgument("arity mismatch erasing from " + pred);
  }
  Own(&it->second)->Erase(t);
  return Status::OK();
}

bool Database::Contains(const std::string& pred, const Tuple& t) const {
  auto it = rels_.find(pred);
  return it != rels_.end() && it->second->Contains(t);
}

const Relation& Database::Get(const std::string& pred, size_t arity) const {
  auto it = rels_.find(pred);
  if (it != rels_.end()) return *it->second;
  return EmptyRelation(arity);
}

Relation* Database::GetMutable(const std::string& pred, size_t arity) {
  auto it = rels_.find(pred);
  if (it == rels_.end()) {
    it = rels_.emplace(pred, std::make_shared<Relation>(arity)).first;
  }
  return Own(&it->second);
}

std::vector<std::string> Database::PredicateNames() const {
  std::vector<std::string> names;
  names.reserve(rels_.size());
  for (const auto& [name, rel] : rels_) names.push_back(name);
  return names;
}

size_t Database::TotalTuples() const {
  size_t n = 0;
  for (const auto& [name, rel] : rels_) n += rel->size();
  return n;
}

void Database::FreezeIndexes() const {
  for (const auto& [name, rel] : rels_) rel->FreezeIndexes();
}

std::string Database::ToString() const {
  std::string out;
  for (const auto& [name, rel] : rels_) out += rel->ToString(name);
  return out;
}

}  // namespace ccpi
