#include "relational/relation.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "util/check.h"

namespace ccpi {

namespace {
// Source of content-version stamps. Process-wide (not per-relation) so a
// version value identifies one specific content state across all relations
// and all databases, including scratch copies: equal versions imply equal
// contents, which is exactly what a version-keyed cache needs.
std::atomic<uint64_t> g_next_version{1};

uint64_t NextVersion() {
  return g_next_version.fetch_add(1, std::memory_order_relaxed);
}

std::atomic<bool> g_columnar_enabled{true};
std::atomic<uint64_t> g_copy_count{0};
std::atomic<uint64_t> g_index_build_count{0};
std::atomic<uint64_t> g_segment_build_count{0};
}  // namespace

const std::vector<size_t> Relation::kEmptyPosting;

Relation::Relation(const Relation& other)
    : arity_(other.arity_),
      version_(other.version_),
      rows_(other.rows_),
      set_(other.set_) {
  g_copy_count.fetch_add(1, std::memory_order_relaxed);
}

Relation& Relation::operator=(const Relation& other) {
  if (this == &other) return *this;
  arity_ = other.arity_;
  version_ = other.version_;
  rows_ = other.rows_;
  set_ = other.set_;
  InvalidateIndexes();
  g_copy_count.fetch_add(1, std::memory_order_relaxed);
  return *this;
}

Relation::Relation(Relation&& other) noexcept
    : arity_(other.arity_),
      version_(other.version_),
      rows_(std::move(other.rows_)),
      set_(std::move(other.set_)),
      indexes_(std::move(other.indexes_)),
      segment_(std::move(other.segment_)) {}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this == &other) return *this;
  arity_ = other.arity_;
  version_ = other.version_;
  rows_ = std::move(other.rows_);
  set_ = std::move(other.set_);
  indexes_ = std::move(other.indexes_);
  segment_ = std::move(other.segment_);
  return *this;
}

bool Relation::Insert(Tuple t) {
  CCPI_CHECK(t.size() == arity_);
  auto [it, inserted] = set_.insert(t);
  (void)it;
  if (!inserted) return false;
  rows_.push_back(std::move(t));
  version_ = NextVersion();
  InvalidateIndexes();
  return true;
}

bool Relation::Erase(const Tuple& t) {
  if (set_.erase(t) == 0) return false;
  auto pos = std::find(rows_.begin(), rows_.end(), t);
  CCPI_CHECK(pos != rows_.end());
  rows_.erase(pos);
  version_ = NextVersion();
  InvalidateIndexes();
  return true;
}

bool Relation::Contains(const Tuple& t) const { return set_.count(t) > 0; }

const Relation::ColumnIndex& Relation::BuildIndexLocked(size_t col) const {
  auto [it, built] = indexes_.try_emplace(col);
  if (built) {
    for (size_t i = 0; i < rows_.size(); ++i) {
      it->second[rows_[i][col]].push_back(i);
    }
    g_index_build_count.fetch_add(1, std::memory_order_relaxed);
  }
  return it->second;
}

const std::vector<size_t>& Relation::Probe(size_t col, const Value& v) const {
  CCPI_CHECK(col < arity_);
  // Fast path: the index already exists; a shared lock suffices because a
  // built index is immutable until the next mutation.
  {
    std::shared_lock<std::shared_mutex> lock(index_mu_);
    auto it = indexes_.find(col);
    if (it != indexes_.end()) {
      auto posting = it->second.find(v);
      return posting == it->second.end() ? kEmptyPosting : posting->second;
    }
  }
  // Slow path: build under the exclusive lock (another thread may have won
  // the race; try_emplace makes that harmless).
  std::unique_lock<std::shared_mutex> lock(index_mu_);
  const ColumnIndex& index = BuildIndexLocked(col);
  auto posting = index.find(v);
  return posting == index.end() ? kEmptyPosting : posting->second;
}

void Relation::FreezeIndexes() const {
  std::unique_lock<std::shared_mutex> lock(index_mu_);
  for (size_t col = 0; col < arity_; ++col) BuildIndexLocked(col);
  if (segment_ == nullptr && ColumnarEnabled()) {
    segment_ = ColumnarSegment::Build(rows_, arity_);
    g_segment_build_count.fetch_add(1, std::memory_order_relaxed);
  }
}

std::shared_ptr<const ColumnarSegment> Relation::columnar_segment() const {
  std::shared_lock<std::shared_mutex> lock(index_mu_);
  return segment_;
}

void Relation::SetColumnarEnabled(bool enabled) {
  g_columnar_enabled.store(enabled, std::memory_order_relaxed);
}

bool Relation::ColumnarEnabled() {
  return g_columnar_enabled.load(std::memory_order_relaxed);
}

uint64_t Relation::DebugCopyCount() {
  return g_copy_count.load(std::memory_order_relaxed);
}

uint64_t Relation::DebugIndexBuildCount() {
  return g_index_build_count.load(std::memory_order_relaxed);
}

uint64_t Relation::DebugVersionCounter() {
  return g_next_version.load(std::memory_order_relaxed);
}

uint64_t Relation::DebugSegmentBuildCount() {
  return g_segment_build_count.load(std::memory_order_relaxed);
}

void Relation::Clear() {
  if (!rows_.empty()) version_ = NextVersion();
  rows_.clear();
  set_.clear();
  InvalidateIndexes();
}

void Relation::InvalidateIndexes() {
  std::unique_lock<std::shared_mutex> lock(index_mu_);
  indexes_.clear();
  segment_.reset();
}

std::string Relation::ToString(const std::string& name) const {
  std::string out;
  for (const Tuple& t : rows_) {
    out += name;
    out += TupleToString(t);
    out += "\n";
  }
  return out;
}

}  // namespace ccpi
