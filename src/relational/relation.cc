#include "relational/relation.h"

#include <algorithm>

#include "util/check.h"

namespace ccpi {

const std::vector<size_t> Relation::kEmptyPosting;

bool Relation::Insert(Tuple t) {
  CCPI_CHECK(t.size() == arity_);
  auto [it, inserted] = set_.insert(t);
  (void)it;
  if (!inserted) return false;
  rows_.push_back(std::move(t));
  InvalidateIndexes();
  return true;
}

bool Relation::Erase(const Tuple& t) {
  if (set_.erase(t) == 0) return false;
  auto pos = std::find(rows_.begin(), rows_.end(), t);
  CCPI_CHECK(pos != rows_.end());
  rows_.erase(pos);
  InvalidateIndexes();
  return true;
}

bool Relation::Contains(const Tuple& t) const { return set_.count(t) > 0; }

const std::vector<size_t>& Relation::Probe(size_t col, const Value& v) const {
  CCPI_CHECK(col < arity_);
  auto [it, built] = indexes_.try_emplace(col);
  if (built) {
    for (size_t i = 0; i < rows_.size(); ++i) {
      it->second[rows_[i][col]].push_back(i);
    }
  }
  auto posting = it->second.find(v);
  if (posting == it->second.end()) return kEmptyPosting;
  return posting->second;
}

void Relation::Clear() {
  rows_.clear();
  set_.clear();
  InvalidateIndexes();
}

void Relation::InvalidateIndexes() { indexes_.clear(); }

std::string Relation::ToString(const std::string& name) const {
  std::string out;
  for (const Tuple& t : rows_) {
    out += name;
    out += TupleToString(t);
    out += "\n";
  }
  return out;
}

}  // namespace ccpi
