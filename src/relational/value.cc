#include "relational/value.h"

namespace ccpi {

std::string Value::ToString() const {
  if (is_int()) return std::to_string(AsInt());
  return AsSymbol();
}

bool operator<(const Value& a, const Value& b) {
  if (a.is_int() != b.is_int()) return a.is_int();  // ints below symbols
  if (a.is_int()) return a.AsInt() < b.AsInt();
  return a.AsSymbol() < b.AsSymbol();
}

size_t Value::Hash() const {
  if (is_int()) {
    return std::hash<int64_t>{}(AsInt()) * 0x9E3779B97F4A7C15ULL;
  }
  return std::hash<std::string>{}(AsSymbol());
}

}  // namespace ccpi
