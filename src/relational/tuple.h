#ifndef CCPI_RELATIONAL_TUPLE_H_
#define CCPI_RELATIONAL_TUPLE_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "relational/value.h"

namespace ccpi {

/// A row: an ordered sequence of constants. Tuples are plain values — cheap
/// to copy for the short arities typical of constraints.
using Tuple = std::vector<Value>;

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    size_t h = 0x84222325CBF29CE4ULL;
    for (const Value& v : t) {
      h ^= v.Hash();
      h *= 0x100000001B3ULL;
    }
    return h;
  }
};

/// Renders "(a, 3, b)" in the paper's notation.
inline std::string TupleToString(const Tuple& t) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += t[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace ccpi

#endif  // CCPI_RELATIONAL_TUPLE_H_
