#ifndef CCPI_CORE_INTERVAL_SET_H_
#define CCPI_CORE_INTERVAL_SET_H_

#include <optional>
#include <string>
#include <vector>

#include "relational/value.h"

namespace ccpi {

/// One end of an interval over the dense total order on Value: finite
/// (open or closed) or infinite. The forbidden intervals of Theorem 6.1
/// "may be open to infinity or minus infinity, and they may be open or
/// closed at either end".
struct Bound {
  enum class Kind { kNegInf, kFinite, kPosInf };

  static Bound NegInf() { return Bound{Kind::kNegInf, Value(), false}; }
  static Bound PosInf() { return Bound{Kind::kPosInf, Value(), false}; }
  static Bound Closed(Value v) {
    return Bound{Kind::kFinite, std::move(v), true};
  }
  static Bound Open(Value v) {
    return Bound{Kind::kFinite, std::move(v), false};
  }

  Kind kind = Kind::kFinite;
  Value value;
  bool closed = false;

  bool finite() const { return kind == Kind::kFinite; }
  std::string ToString() const;
};

/// An interval [lo, hi] with independently open/closed/infinite ends,
/// interpreted over the dense order (so (2,3) is nonempty even between
/// adjacent integers).
struct Interval {
  Bound lo;
  Bound hi;

  /// Whole line.
  static Interval All() { return Interval{Bound::NegInf(), Bound::PosInf()}; }

  bool Empty() const;
  bool Contains(const Value& v) const;
  /// True iff `other` is a subset of this interval.
  bool Covers(const Interval& other) const;
  std::string ToString() const;
};

/// True iff intervals ending at `hi` and starting at `lo` connect — overlap
/// or touch without a gap — so their union is one interval. [1,2) and
/// [2,3] connect; (1,2) and (2,3) leave the point 2 uncovered.
bool Connects(const Bound& hi, const Bound& lo);

/// Orders lower bounds by the set they admit: NegInf first, then
/// (v, closed) before (v, open), then larger values.
bool LowerBoundLess(const Bound& a, const Bound& b);
/// Orders upper bounds: smaller values first, (v, open) before (v, closed),
/// PosInf last.
bool UpperBoundLess(const Bound& a, const Bound& b);

/// A union of intervals kept in normalized (disjoint, sorted, merged) form.
/// This is the direct C++ realization of the interval reasoning that the
/// Fig 6.1 datalog program performs by recursion — used both as a fast
/// path and as the cross-check oracle for the compiled programs.
class IntervalSet {
 public:
  /// Adds an interval, merging with neighbours it connects to. Empty
  /// intervals are ignored.
  void Add(Interval interval);

  /// True iff `interval` is a subset of the union. (Because the set is
  /// normalized, a covered interval is covered by a single member.)
  bool Covers(const Interval& interval) const;

  bool Contains(const Value& v) const;

  const std::vector<Interval>& intervals() const { return intervals_; }
  bool empty() const { return intervals_.empty(); }

  std::string ToString() const;

 private:
  // Disjoint, non-connecting, sorted by lower bound.
  std::vector<Interval> intervals_;
};

}  // namespace ccpi

#endif  // CCPI_CORE_INTERVAL_SET_H_
