#ifndef CCPI_CORE_LOCAL_TEST_H_
#define CCPI_CORE_LOCAL_TEST_H_

#include <optional>
#include <vector>

#include "core/cqc_form.h"
#include "core/reduction.h"
#include "relational/database.h"
#include "relational/relation.h"
#include "util/outcome.h"
#include "util/status.h"

namespace ccpi {

/// The verdict of a complete local test, with the evidence that makes it
/// *complete*: when the answer is kUnknown, `witness_remote` (when
/// constructible over the integer domain) is a remote-relation state under
/// which the constraint really is violated after the insertion, even
/// though it held before.
struct LocalTestResult {
  Outcome outcome = Outcome::kUnknown;
  std::optional<Database> witness_remote;
  /// Number of reductions RED(s, l, .) in the union tested against.
  size_t reductions = 0;
};

/// Theorem 5.2 — the complete local test for preservation of CQC `c` when
/// tuple `t` is inserted into the local relation `local_relation`,
/// assuming c held before the update:
///
///     RED(t, l, C)  contained in  UNION_{s in L} RED(s, l, C)
///
/// decided with the union form of Theorem 5.1. With `assumed` (other CQCs
/// over the same local predicate, also known to hold before the update),
/// their reductions by every tuple of L join the union, exactly as the
/// theorem's extension states.
///
/// Outcomes: kHolds — C provably still holds; kViolated — C has no remote
/// subgoals and t satisfies it outright; kUnknown — some remote state
/// violates C (see witness_remote).
Result<LocalTestResult> CompleteLocalTestOnInsert(
    const Cqc& c, const Tuple& t, const Relation& local_relation,
    const std::vector<Cqc>& assumed = {});

/// The deletion counterpart, included for API completeness: a CQC has no
/// negated subgoals, so it is monotone in its local relation — deleting a
/// tuple from L can only remove derivations of panic. The complete local
/// test for a deletion is therefore the constant "holds" (the paper's
/// update model for Section 5 is insertion precisely because deletions are
/// trivial for this constraint class). Returns kHolds after validating
/// arities.
Result<LocalTestResult> CompleteLocalTestOnDelete(const Cqc& c,
                                                  const Tuple& t,
                                                  const Relation& local_relation);

}  // namespace ccpi

#endif  // CCPI_CORE_LOCAL_TEST_H_
