#include "core/reduction.h"

#include "util/check.h"

namespace ccpi {

CQ Reduce(const Cqc& c, const Tuple& t) {
  CCPI_CHECK(t.size() == c.local_arity());
  Substitution subst;
  for (size_t i = 0; i < t.size(); ++i) {
    // Normal form: local arguments are distinct variables.
    CCPI_CHECK(c.local.args[i].is_var());
    subst[c.local.args[i].var()] = Term::Const(t[i]);
  }
  CQ out;
  out.head = Atom{kPanic, {}};
  out.positives.reserve(c.remotes.size());
  for (const Atom& r : c.remotes) out.positives.push_back(Apply(subst, r));
  out.comparisons.reserve(c.comparisons.size());
  for (const Comparison& cmp : c.comparisons) {
    out.comparisons.push_back(Apply(subst, cmp));
  }
  return out;
}

}  // namespace ccpi
