#ifndef CCPI_CORE_ICQ_H_
#define CCPI_CORE_ICQ_H_

#include <optional>
#include <string>
#include <vector>

#include "arith/solver.h"
#include "core/interval_set.h"
#include "datalog/cq.h"
#include "relational/relation.h"
#include "util/status.h"

namespace ccpi {

/// Section 6: a variable of a CQC is *remote* if it does not appear in the
/// local subgoal; the CQC is independently constrained (an ICQ) if every
/// comparison other than equality involves at most one remote variable.
/// Detection works on the raw rule (shared variables allowed).
Result<bool> IsIndependentlyConstrained(const Rule& rule,
                                        const std::string& local_pred);

/// One lower or upper bound on the remote variable: a local variable of l
/// or a constant, open (strict) or closed.
struct BoundSpec {
  Term term;
  bool closed = false;
};

/// One branch of the forbidden-interval analysis (the = and <> elimination
/// of Theorem 6.1's proof may split the ICQ into several branches whose
/// tests must ALL pass).
struct IcqBranch {
  Atom local;                 // the local subgoal (raw: constants/repeats ok)
  std::vector<Atom> remotes;  // remote subgoals
  /// The single remote variable Z, or nullopt when every remote position is
  /// bound to a local variable (degenerate: the forbidden "interval" is the
  /// whole line for matching keys).
  std::optional<std::string> remote_var;
  std::vector<BoundSpec> lowers;       // a <= Z (closed) / a < Z (open)
  std::vector<BoundSpec> uppers;       // Z <= b / Z < b
  arith::Conjunction local_filters;    // comparisons among local terms only
  /// Local variables appearing in remote subgoals, in fixed order: the
  /// "key" on which intervals from different local tuples may be combined
  /// (coverage only transfers between tuples that agree on these joins).
  std::vector<std::string> key_vars;
};

/// Decomposes a forbidden-interval ICQ (an ICQ with at most one remote
/// variable — the class the paper's Example 6.1 and Fig 6.1 construction
/// target; "every CQC with at most one remote variable is an ICQ") into
/// branches. Fails with Unsupported for ICQs with two or more remote
/// variables (use the general Theorem 5.2 test) and InvalidArgument for
/// non-CQC inputs.
Result<std::vector<IcqBranch>> AnalyzeForbiddenIntervals(
    const Rule& rule, const std::string& local_pred);

/// The forbidden interval contributed by one local tuple `s` under a
/// branch, or nullopt if s fails the branch's pattern or filters. The
/// bounds are the max of the instantiated lower bounds and the min of the
/// upper bounds, with open/closed resolved as in Theorem 6.1's proof.
std::optional<Interval> ForbiddenInterval(const IcqBranch& branch,
                                          const Tuple& s);

/// The key values of `s` under the branch (valid when ForbiddenInterval
/// returned a value).
Tuple KeyOf(const IcqBranch& branch, const Tuple& s);

}  // namespace ccpi

#endif  // CCPI_CORE_ICQ_H_
