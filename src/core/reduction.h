#ifndef CCPI_CORE_REDUCTION_H_
#define CCPI_CORE_REDUCTION_H_

#include "core/cqc_form.h"
#include "relational/tuple.h"

namespace ccpi {

/// RED(t, l, C) — the reduction of C by tuple t in its local subgoal
/// (Section 5, "Instantiating Local Predicates"): substitute the components
/// of t for the corresponding variables of l and eliminate l. In the
/// normalized Cqc form the local arguments are distinct variables, so the
/// reduction always exists; the resulting CQ (over the remote subgoals,
/// with t's components now appearing as constants in the comparisons) is
/// again in Theorem 5.1 form.
///
/// Example 5.3: for C: panic :- l(X,Y) & r(Z) & X<=Z & Z<=Y,
/// Reduce(C, (3,6)) is  panic :- r(Z) & 3<=Z & Z<=6.
CQ Reduce(const Cqc& c, const Tuple& t);

}  // namespace ccpi

#endif  // CCPI_CORE_REDUCTION_H_
