#include "core/icq.h"

#include <algorithm>
#include <map>
#include <set>

#include "datalog/safety.h"
#include "datalog/simplify.h"
#include "util/check.h"

namespace ccpi {

namespace {

struct Partitioned {
  Atom local;
  std::vector<Atom> remotes;
};

Result<Partitioned> PartitionSubgoals(const CQ& q,
                                      const std::string& local_pred) {
  if (!q.head.args.empty() || q.head.pred != kPanic) {
    return Status::InvalidArgument("constraint head must be 0-ary panic");
  }
  if (q.HasNegation()) {
    return Status::InvalidArgument("CQCs have no negated subgoals");
  }
  Partitioned out;
  bool have_local = false;
  for (const Atom& a : q.positives) {
    if (a.pred == local_pred) {
      if (have_local) {
        return Status::InvalidArgument("several local subgoals");
      }
      out.local = a;
      have_local = true;
    } else {
      out.remotes.push_back(a);
    }
  }
  if (!have_local) {
    return Status::InvalidArgument("no subgoal with local predicate " +
                                   local_pred);
  }
  return out;
}

std::set<std::string> LocalVars(const Atom& local) {
  std::set<std::string> vars;
  for (const Term& t : local.args) {
    if (t.is_var()) vars.insert(t.var());
  }
  return vars;
}

std::set<std::string> RemoteVars(const Partitioned& p) {
  std::set<std::string> local_vars = LocalVars(p.local);
  std::set<std::string> remote;
  for (const Atom& a : p.remotes) {
    for (const Term& t : a.args) {
      if (t.is_var() && local_vars.count(t.var()) == 0) {
        remote.insert(t.var());
      }
    }
  }
  return remote;
}

bool InvolvesVar(const Comparison& c, const std::string& var) {
  return (c.lhs.is_var() && c.lhs.var() == var) ||
         (c.rhs.is_var() && c.rhs.var() == var);
}

}  // namespace

Result<bool> IsIndependentlyConstrained(const Rule& rule,
                                        const std::string& local_pred) {
  CCPI_RETURN_IF_ERROR(CheckRuleSafety(rule));
  CQ q = RuleToCQ(rule);
  CCPI_ASSIGN_OR_RETURN(Partitioned p, PartitionSubgoals(q, local_pred));
  std::set<std::string> remote = RemoteVars(p);
  for (const Comparison& c : q.comparisons) {
    if (c.op == CmpOp::kEq) continue;
    int remote_sides = 0;
    if (c.lhs.is_var() && remote.count(c.lhs.var()) > 0) ++remote_sides;
    if (c.rhs.is_var() && remote.count(c.rhs.var()) > 0) ++remote_sides;
    if (remote_sides > 1) return false;
  }
  return true;
}

Result<std::vector<IcqBranch>> AnalyzeForbiddenIntervals(
    const Rule& rule, const std::string& local_pred) {
  CCPI_RETURN_IF_ERROR(CheckRuleSafety(rule));
  // Eliminate equalities by substitution, evaluate ground comparisons.
  std::optional<CQ> simplified = SimplifyCQ(RuleToCQ(rule));
  if (!simplified.has_value()) return std::vector<IcqBranch>{};  // dead body
  CCPI_ASSIGN_OR_RETURN(Partitioned p,
                        PartitionSubgoals(*simplified, local_pred));

  std::set<std::string> remote = RemoteVars(p);
  if (remote.size() > 1) {
    return Status::Unsupported(
        "ICQ has " + std::to_string(remote.size()) +
        " remote variables; the Fig 6.1 interval construction targets at "
        "most one (use the general Theorem 5.2 reduction test)");
  }
  std::optional<std::string> z;
  if (!remote.empty()) z = *remote.begin();

  // Split every <> that involves the remote variable into < and >.
  std::vector<arith::Conjunction> splits = {{}};
  for (const Comparison& c : simplified->comparisons) {
    if (c.op == CmpOp::kNe && z.has_value() && InvolvesVar(c, *z)) {
      std::vector<arith::Conjunction> next;
      for (const arith::Conjunction& base : splits) {
        arith::Conjunction lt = base;
        lt.push_back(Comparison{c.lhs, CmpOp::kLt, c.rhs});
        next.push_back(std::move(lt));
        arith::Conjunction gt = base;
        gt.push_back(Comparison{c.lhs, CmpOp::kGt, c.rhs});
        next.push_back(std::move(gt));
      }
      splits = std::move(next);
    } else {
      for (arith::Conjunction& base : splits) base.push_back(c);
    }
  }

  // Key variables: local variables appearing in remote subgoals, in first
  // occurrence order (identical for every branch).
  std::set<std::string> local_vars = LocalVars(p.local);
  std::vector<std::string> key_vars;
  for (const Atom& a : p.remotes) {
    for (const Term& t : a.args) {
      if (t.is_var() && local_vars.count(t.var()) > 0 &&
          std::find(key_vars.begin(), key_vars.end(), t.var()) ==
              key_vars.end()) {
        key_vars.push_back(t.var());
      }
    }
  }

  std::vector<IcqBranch> branches;
  for (const arith::Conjunction& comps : splits) {
    IcqBranch branch;
    branch.local = p.local;
    branch.remotes = p.remotes;
    branch.remote_var = z;
    branch.key_vars = key_vars;
    bool dead = false;
    for (const Comparison& c : comps) {
      bool lhs_z = z.has_value() && c.lhs.is_var() && c.lhs.var() == *z;
      bool rhs_z = z.has_value() && c.rhs.is_var() && c.rhs.var() == *z;
      if (lhs_z && rhs_z) {
        // Z op Z after simplification: only orders remain.
        if (c.op == CmpOp::kLt || c.op == CmpOp::kGt) {
          dead = true;
          break;
        }
        continue;  // Z <= Z etc. is vacuous
      }
      if (!lhs_z && !rhs_z) {
        branch.local_filters.push_back(c);
        continue;
      }
      // Exactly one side is Z: record the bound on Z.
      const Term& other = lhs_z ? c.rhs : c.lhs;
      CmpOp op = lhs_z ? c.op : Flip(c.op);  // view as  Z op other
      switch (op) {
        case CmpOp::kLt:
          branch.uppers.push_back(BoundSpec{other, false});
          break;
        case CmpOp::kLe:
          branch.uppers.push_back(BoundSpec{other, true});
          break;
        case CmpOp::kGt:
          branch.lowers.push_back(BoundSpec{other, false});
          break;
        case CmpOp::kGe:
          branch.lowers.push_back(BoundSpec{other, true});
          break;
        case CmpOp::kEq:
        case CmpOp::kNe:
          return Status::Internal("unexpected =/<> after normalization");
      }
    }
    if (!dead) branches.push_back(std::move(branch));
  }
  return branches;
}

namespace {

/// Unifies s with the branch's local pattern; returns the variable binding
/// or nullopt on mismatch.
std::optional<std::map<std::string, Value>> MatchLocal(const Atom& local,
                                                       const Tuple& s) {
  if (local.args.size() != s.size()) return std::nullopt;
  std::map<std::string, Value> binding;
  for (size_t i = 0; i < s.size(); ++i) {
    const Term& arg = local.args[i];
    if (arg.is_const()) {
      if (!(arg.constant() == s[i])) return std::nullopt;
    } else {
      auto [it, inserted] = binding.emplace(arg.var(), s[i]);
      if (!inserted && !(it->second == s[i])) return std::nullopt;
    }
  }
  return binding;
}

Value EvalTerm(const Term& t, const std::map<std::string, Value>& binding) {
  if (t.is_const()) return t.constant();
  return binding.at(t.var());
}

}  // namespace

std::optional<Interval> ForbiddenInterval(const IcqBranch& branch,
                                          const Tuple& s) {
  std::optional<std::map<std::string, Value>> binding =
      MatchLocal(branch.local, s);
  if (!binding.has_value()) return std::nullopt;
  for (const Comparison& f : branch.local_filters) {
    if (!EvalCmp(EvalTerm(f.lhs, *binding), f.op,
                 EvalTerm(f.rhs, *binding))) {
      return std::nullopt;
    }
  }
  Interval interval = Interval::All();
  for (const BoundSpec& b : branch.lowers) {
    Bound candidate = b.closed ? Bound::Closed(EvalTerm(b.term, *binding))
                               : Bound::Open(EvalTerm(b.term, *binding));
    // The forbidden region's lower end is the MAX of the lower bounds; on
    // ties the open (strict) bound is the more restrictive one and wins.
    if (LowerBoundLess(interval.lo, candidate)) interval.lo = candidate;
  }
  for (const BoundSpec& b : branch.uppers) {
    Bound candidate = b.closed ? Bound::Closed(EvalTerm(b.term, *binding))
                               : Bound::Open(EvalTerm(b.term, *binding));
    if (UpperBoundLess(candidate, interval.hi)) interval.hi = candidate;
  }
  return interval;
}

Tuple KeyOf(const IcqBranch& branch, const Tuple& s) {
  std::optional<std::map<std::string, Value>> binding =
      MatchLocal(branch.local, s);
  CCPI_CHECK(binding.has_value());
  Tuple key;
  key.reserve(branch.key_vars.size());
  for (const std::string& v : branch.key_vars) {
    key.push_back(binding->at(v));
  }
  return key;
}

}  // namespace ccpi
