#include "core/interval_set.h"

#include <algorithm>

#include "util/check.h"

namespace ccpi {

std::string Bound::ToString() const {
  switch (kind) {
    case Kind::kNegInf:
      return "-inf";
    case Kind::kPosInf:
      return "+inf";
    case Kind::kFinite:
      return value.ToString();
  }
  return "?";
}

bool Interval::Empty() const {
  if (!lo.finite() || !hi.finite()) {
    // A ray or the whole line is never empty; an inverted pair of
    // infinities cannot be constructed through the factories.
    if (lo.kind == Bound::Kind::kPosInf || hi.kind == Bound::Kind::kNegInf) {
      return true;
    }
    return false;
  }
  if (lo.value < hi.value) return false;
  if (hi.value < lo.value) return true;
  return !(lo.closed && hi.closed);  // single point needs both ends closed
}

bool Interval::Contains(const Value& v) const {
  if (lo.finite()) {
    if (v < lo.value) return false;
    if (v == lo.value && !lo.closed) return false;
  } else if (lo.kind == Bound::Kind::kPosInf) {
    return false;
  }
  if (hi.finite()) {
    if (hi.value < v) return false;
    if (v == hi.value && !hi.closed) return false;
  } else if (hi.kind == Bound::Kind::kNegInf) {
    return false;
  }
  return true;
}

bool LowerBoundLess(const Bound& a, const Bound& b) {
  if (a.kind != b.kind) {
    auto order = [](const Bound& x) {
      switch (x.kind) {
        case Bound::Kind::kNegInf:
          return 0;
        case Bound::Kind::kFinite:
          return 1;
        case Bound::Kind::kPosInf:
          return 2;
      }
      return 1;
    };
    return order(a) < order(b);
  }
  if (!a.finite()) return false;
  if (a.value != b.value) return a.value < b.value;
  return a.closed && !b.closed;  // [v.. admits v, (v.. does not
}

bool UpperBoundLess(const Bound& a, const Bound& b) {
  if (a.kind != b.kind) {
    auto order = [](const Bound& x) {
      switch (x.kind) {
        case Bound::Kind::kNegInf:
          return 0;
        case Bound::Kind::kFinite:
          return 1;
        case Bound::Kind::kPosInf:
          return 2;
      }
      return 1;
    };
    return order(a) < order(b);
  }
  if (!a.finite()) return false;
  if (a.value != b.value) return a.value < b.value;
  return !a.closed && b.closed;  // ..v) ends before ..v]
}

bool Interval::Covers(const Interval& other) const {
  if (other.Empty()) return true;
  if (Empty()) return false;
  // lo <= other.lo and other.hi <= hi in the bound orders.
  if (LowerBoundLess(other.lo, lo)) return false;
  if (UpperBoundLess(hi, other.hi)) return false;
  return true;
}

bool Connects(const Bound& hi, const Bound& lo) {
  if (!hi.finite() || !lo.finite()) {
    // An infinite end always reaches anything on its side.
    return true;
  }
  if (lo.value < hi.value) return true;
  if (hi.value < lo.value) return false;
  return hi.closed || lo.closed;
}

std::string Interval::ToString() const {
  std::string out = lo.finite() && lo.closed ? "[" : "(";
  out += lo.ToString();
  out += ", ";
  out += hi.ToString();
  out += hi.finite() && hi.closed ? "]" : ")";
  return out;
}

void IntervalSet::Add(Interval interval) {
  if (interval.Empty()) return;
  std::vector<Interval> kept;
  Interval current = std::move(interval);
  for (Interval& existing : intervals_) {
    // `existing` stays separate iff a genuine gap lies between it and
    // `current` on one side; otherwise it is absorbed.
    bool gap_before = !Connects(existing.hi, current.lo);
    bool gap_after = !Connects(current.hi, existing.lo);
    if (gap_before || gap_after) {
      kept.push_back(std::move(existing));
      continue;
    }
    if (LowerBoundLess(existing.lo, current.lo)) current.lo = existing.lo;
    if (UpperBoundLess(current.hi, existing.hi)) current.hi = existing.hi;
  }
  kept.push_back(std::move(current));
  std::sort(kept.begin(), kept.end(),
            [](const Interval& a, const Interval& b) {
              return LowerBoundLess(a.lo, b.lo);
            });
  intervals_ = std::move(kept);
}

bool IntervalSet::Covers(const Interval& interval) const {
  if (interval.Empty()) return true;
  for (const Interval& i : intervals_) {
    if (i.Covers(interval)) return true;
  }
  return false;
}

bool IntervalSet::Contains(const Value& v) const {
  for (const Interval& i : intervals_) {
    if (i.Contains(v)) return true;
  }
  return false;
}

std::string IntervalSet::ToString() const {
  std::string out;
  for (size_t i = 0; i < intervals_.size(); ++i) {
    if (i > 0) out += " U ";
    out += intervals_[i].ToString();
  }
  return out.empty() ? "{}" : out;
}

}  // namespace ccpi
