#include "core/local_test.h"

#include "containment/cqc.h"
#include "containment/witness.h"
#include "util/check.h"

namespace ccpi {

Result<LocalTestResult> CompleteLocalTestOnInsert(
    const Cqc& c, const Tuple& t, const Relation& local_relation,
    const std::vector<Cqc>& assumed) {
  if (t.size() != c.local_arity()) {
    return Status::InvalidArgument("inserted tuple arity mismatch");
  }
  if (local_relation.arity() != c.local_arity()) {
    return Status::InvalidArgument("local relation arity mismatch");
  }
  for (const Cqc& other : assumed) {
    if (other.local_pred != c.local_pred ||
        other.local_arity() != c.local_arity()) {
      return Status::InvalidArgument(
          "assumed constraints must share the local predicate");
    }
  }

  CQ red_t = Reduce(c, t);
  LocalTestResult result;

  // A constraint with no remote subgoals is decided outright by the local
  // information — the paper's "third outcome".
  if (c.remotes.empty()) {
    bool fires = true;
    for (const Comparison& cmp : red_t.comparisons) {
      // All variables were local, so the comparisons are ground.
      CCPI_CHECK(cmp.lhs.is_const() && cmp.rhs.is_const());
      if (!EvalCmp(cmp.lhs.constant(), cmp.op, cmp.rhs.constant())) {
        fires = false;
        break;
      }
    }
    result.outcome = fires ? Outcome::kViolated : Outcome::kHolds;
    return result;
  }

  UCQ covering;
  covering.reserve(local_relation.size() * (1 + assumed.size()));
  // On a frozen relation the containment walk runs over the columnar
  // snapshot: holding the segment pins an immutable image of the rows (in
  // insertion order, so the covering UCQ is disjunct-for-disjunct the same
  // as the row walk), decoupling the walk from any later mutation of the
  // live relation.
  std::shared_ptr<const ColumnarSegment> seg =
      local_relation.columnar_segment();
  if (seg != nullptr) {
    for (size_t i = 0; i < seg->size(); ++i) {
      Tuple s = seg->GatherRow(i);
      covering.push_back(Reduce(c, s));
      for (const Cqc& other : assumed) {
        covering.push_back(Reduce(other, s));
      }
    }
  } else {
    for (const Tuple& s : local_relation.rows()) {
      covering.push_back(Reduce(c, s));
      for (const Cqc& other : assumed) {
        covering.push_back(Reduce(other, s));
      }
    }
  }
  result.reductions = covering.size();

  CCPI_ASSIGN_OR_RETURN(std::optional<arith::Conjunction> refutation,
                        CqcRefutation(red_t, covering));
  if (!refutation.has_value()) {
    result.outcome = Outcome::kHolds;
    return result;
  }
  result.outcome = Outcome::kUnknown;
  result.witness_remote = BuildCanonicalDatabase(red_t, *refutation);
  return result;
}

Result<LocalTestResult> CompleteLocalTestOnDelete(
    const Cqc& c, const Tuple& t, const Relation& local_relation) {
  if (t.size() != c.local_arity()) {
    return Status::InvalidArgument("deleted tuple arity mismatch");
  }
  if (local_relation.arity() != c.local_arity()) {
    return Status::InvalidArgument("local relation arity mismatch");
  }
  // CQCs are monotone (no negation): shrinking L shrinks the violations.
  LocalTestResult result;
  result.outcome = Outcome::kHolds;
  return result;
}

}  // namespace ccpi
