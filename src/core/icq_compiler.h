#ifndef CCPI_CORE_ICQ_COMPILER_H_
#define CCPI_CORE_ICQ_COMPILER_H_

#include <string>
#include <vector>

#include "core/icq.h"
#include "datalog/ast.h"
#include "relational/database.h"
#include "util/outcome.h"
#include "util/status.h"

namespace ccpi {

/// Theorem 6.1 compiled to datalog: the recursive program of Fig 6.1
/// generalized to open/closed/infinite interval ends — up to the paper's
/// "eight different predicates corresponding to interval" (four bounded
/// kinds int_cc/int_co/int_oc/int_oo, four rays ray_gec/ray_geo/
/// ray_lec/ray_leo) plus `all` for the unbounded case — and to remote
/// subgoals that join local variables (the derived interval predicates
/// carry those join values as a key; intervals merge only within a key).
struct IcqCompilation {
  std::string local_pred;
  size_t local_arity = 0;
  /// Branches from = elimination and <> splitting; all feed the shared
  /// interval predicates below.
  std::vector<IcqBranch> branches;
  /// Basis rules (one per choice of dominating lower/upper bound per
  /// branch, as in the proof of Theorem 6.1) plus the recursive merge
  /// rules (rule (2) of Fig 6.1 across all end-kind combinations).
  Program interval_program;
};

/// Compiles a forbidden-interval ICQ. Fails with Unsupported when the
/// constraint has two or more remote variables.
Result<IcqCompilation> CompileIcq(const Rule& rule,
                                  const std::string& local_pred);

/// The complete local test, run the paper's way: extends the compiled
/// program with the `ok` rules for the inserted tuple t (rule (3) of
/// Fig 6.1), evaluates the recursive program over `db` (which holds the
/// local relation), and answers kHolds iff `ok` is derivable.
/// kViolated when the constraint is purely local and t satisfies it.
Result<Outcome> IcqLocalTestOnInsert(const IcqCompilation& comp,
                                     const Database& db, const Tuple& t);

/// The same test computed directly with IntervalSet (no datalog) — the
/// fast path, and the oracle the compiled program is property-tested
/// against.
Result<Outcome> IcqDirectTestOnInsert(const IcqCompilation& comp,
                                      const Relation& local_relation,
                                      const Tuple& t);

}  // namespace ccpi

#endif  // CCPI_CORE_ICQ_COMPILER_H_
