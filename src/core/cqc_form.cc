#include "core/cqc_form.h"

#include "containment/cqc.h"
#include "containment/normalize.h"
#include "datalog/safety.h"

namespace ccpi {

CQ Cqc::ToCQ() const {
  CQ q;
  q.head = Atom{kPanic, {}};
  q.positives.push_back(local);
  for (const Atom& r : remotes) q.positives.push_back(r);
  q.comparisons = comparisons;
  return q;
}

Result<Cqc> MakeCqc(const Rule& rule, const std::string& local_pred) {
  if (!rule.head.args.empty() || rule.head.pred != kPanic) {
    return Status::InvalidArgument(
        "a CQC is a constraint: its head must be the 0-ary panic");
  }
  CCPI_RETURN_IF_ERROR(CheckRuleSafety(rule));
  CQ raw = RuleToCQ(rule);
  if (raw.HasNegation()) {
    return Status::InvalidArgument(
        "CQCs have no negated subgoals (Section 5)");
  }
  CQ normalized = NormalizeToTheorem51Form(raw);
  CCPI_RETURN_IF_ERROR(CheckTheorem51Form(normalized));

  Cqc out;
  out.local_pred = local_pred;
  bool have_local = false;
  for (const Atom& a : normalized.positives) {
    if (a.pred == local_pred) {
      if (have_local) {
        return Status::InvalidArgument(
            "constraint has several subgoals with the local predicate " +
            local_pred + "; fold them into one local subgoal first");
      }
      out.local = a;
      have_local = true;
    } else {
      out.remotes.push_back(a);
    }
  }
  if (!have_local) {
    return Status::InvalidArgument("constraint has no subgoal with local "
                                   "predicate " +
                                   local_pred);
  }
  out.comparisons = normalized.comparisons;
  return out;
}

}  // namespace ccpi
