#ifndef CCPI_CORE_RA_LOCAL_TEST_H_
#define CCPI_CORE_RA_LOCAL_TEST_H_

#include <string>

#include "datalog/ast.h"
#include "ra/ra_eval.h"
#include "ra/ra_expr.h"
#include "relational/database.h"
#include "util/outcome.h"
#include "util/status.h"

namespace ccpi {

/// The compiled complete local test of Theorem 5.3 for one inserted tuple.
struct RaLocalTest {
  /// The inserted tuple cannot unify with the local subgoal's pattern
  /// (Example 5.4's t = (a,b,c) against l(X,Y,Y)): the insertion can never
  /// cause a violation and no expression needs evaluating.
  bool trivially_holds = false;
  /// The constraint has no remote subgoals and t matches: violated outright.
  bool trivially_violated = false;
  /// Otherwise: nonemptiness of this expression over the local database is
  /// the complete local test — a union of selections over L, one per
  /// containment mapping from RED(sigma,l,C) to RED(t,l,C).
  RaExprPtr expr;
};

/// Theorem 5.3 — for an *arithmetic-free* CQC (here constants and repeated
/// variables may appear in the local and remote subgoals; no comparisons,
/// no negation) and an insertion of `t` into `local_pred`, constructs in
/// time exponential only in the size of the constraint an RA expression
/// whose nonemptiness over the local relation is the complete local test.
///
/// The construction follows the proof sketch: let sigma be a tuple of
/// variables of L's arity; each containment mapping from RED(sigma,l,C) to
/// RED(t,l,C) yields a conjunctive condition on sigma's components
/// (equalities to components of t and the intra-tuple equalities forced by
/// l's pattern), which becomes one select; the union over mappings is the
/// test. Example 5.4: inserting (a,b,b) into l for
///   panic :- l(X,Y,Y) & r(Y,Z,X)
/// compiles to  sigma[#1=a & #2=b & #3=b](l)  — "whether this tuple already
/// exists in L".
Result<RaLocalTest> CompileRaLocalTest(const Rule& rule,
                                       const std::string& local_pred,
                                       const Tuple& t);

/// Compiles and evaluates in one step: kHolds, kViolated (local-only
/// constraint), or kUnknown. `db` must hold the local relation; only the
/// local relation is read (observable via `observer`). A non-null
/// `metrics` registry receives the underlying evaluator's `ra.*` counters.
/// A non-null `budget` bounds the evaluation (the manager leaves it null:
/// tiers 0-2 are the paper's cheap complete tests and run outside the
/// execution envelope — see docs/budgets.md).
Result<Outcome> RaLocalTestOnInsert(const Rule& rule,
                                    const std::string& local_pred,
                                    const Tuple& t, const Database& db,
                                    AccessObserver* observer = nullptr,
                                    obs::MetricsRegistry* metrics = nullptr,
                                    const BudgetScope* budget = nullptr);

}  // namespace ccpi

#endif  // CCPI_CORE_RA_LOCAL_TEST_H_
