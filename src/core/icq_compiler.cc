#include "core/icq_compiler.h"

#include <map>

#include "eval/engine.h"
#include "util/check.h"

namespace ccpi {

namespace {

// Shared interval-predicate names ("fi" = forbidden interval). The paper's
// eight interval predicates plus `all`.
std::string IntPred(bool lo_closed, bool hi_closed) {
  return std::string("fi_int_") + (lo_closed ? "c" : "o") +
         (hi_closed ? "c" : "o");
}
std::string RayGePred(bool closed) {
  return std::string("fi_ray_ge") + (closed ? "c" : "o");
}
std::string RayLePred(bool closed) {
  return std::string("fi_ray_le") + (closed ? "c" : "o");
}
constexpr const char* kAllPred = "fi_all";

/// Basis rules of one branch: one rule per choice of dominating lower and
/// upper bound ("we may need a different rule for every such order").
void EmitBasisRules(const IcqBranch& branch, Program* program) {
  std::vector<Term> key;
  key.reserve(branch.key_vars.size());
  for (const std::string& v : branch.key_vars) key.push_back(Term::Var(v));

  std::vector<int> lower_choices;
  if (branch.lowers.empty()) {
    lower_choices.push_back(-1);
  } else {
    for (size_t i = 0; i < branch.lowers.size(); ++i) {
      lower_choices.push_back(static_cast<int>(i));
    }
  }
  std::vector<int> upper_choices;
  if (branch.uppers.empty()) {
    upper_choices.push_back(-1);
  } else {
    for (size_t j = 0; j < branch.uppers.size(); ++j) {
      upper_choices.push_back(static_cast<int>(j));
    }
  }

  for (int i : lower_choices) {
    for (int j : upper_choices) {
      Rule rule;
      rule.body.push_back(Literal::Positive(branch.local));
      for (const Comparison& f : branch.local_filters) {
        rule.body.push_back(Literal::Cmp(f));
      }
      // Dominance of the chosen lower bound over the others: the chosen
      // constraint must imply each competitor.
      if (i >= 0) {
        const BoundSpec& chosen = branch.lowers[static_cast<size_t>(i)];
        for (size_t m = 0; m < branch.lowers.size(); ++m) {
          if (static_cast<int>(m) == i) continue;
          const BoundSpec& other = branch.lowers[m];
          CmpOp op = (chosen.closed && !other.closed) ? CmpOp::kLt : CmpOp::kLe;
          rule.body.push_back(
              Literal::Cmp(Comparison{other.term, op, chosen.term}));
        }
      }
      if (j >= 0) {
        const BoundSpec& chosen = branch.uppers[static_cast<size_t>(j)];
        for (size_t m = 0; m < branch.uppers.size(); ++m) {
          if (static_cast<int>(m) == j) continue;
          const BoundSpec& other = branch.uppers[m];
          CmpOp op = (chosen.closed && !other.closed) ? CmpOp::kLt : CmpOp::kLe;
          rule.body.push_back(
              Literal::Cmp(Comparison{chosen.term, op, other.term}));
        }
      }
      // Nonempty forbidden interval.
      if (i >= 0 && j >= 0) {
        const BoundSpec& lo = branch.lowers[static_cast<size_t>(i)];
        const BoundSpec& hi = branch.uppers[static_cast<size_t>(j)];
        CmpOp op = (lo.closed && hi.closed) ? CmpOp::kLe : CmpOp::kLt;
        rule.body.push_back(Literal::Cmp(Comparison{lo.term, op, hi.term}));
      }
      // Head.
      std::vector<Term> args = key;
      if (i >= 0 && j >= 0) {
        args.push_back(branch.lowers[static_cast<size_t>(i)].term);
        args.push_back(branch.uppers[static_cast<size_t>(j)].term);
        rule.head = Atom{IntPred(branch.lowers[static_cast<size_t>(i)].closed,
                                 branch.uppers[static_cast<size_t>(j)].closed),
                         std::move(args)};
      } else if (i >= 0) {
        args.push_back(branch.lowers[static_cast<size_t>(i)].term);
        rule.head = Atom{
            RayGePred(branch.lowers[static_cast<size_t>(i)].closed),
            std::move(args)};
      } else if (j >= 0) {
        args.push_back(branch.uppers[static_cast<size_t>(j)].term);
        rule.head = Atom{
            RayLePred(branch.uppers[static_cast<size_t>(j)].closed),
            std::move(args)};
      } else {
        rule.head = Atom{kAllPred, std::move(args)};
      }
      program->rules.push_back(std::move(rule));
    }
  }
}

/// The recursive merge rules — Fig 6.1's rule (2) across every combination
/// of open/closed ends and ray kinds, keyed by the join variables.
void EmitMergeRules(size_t key_arity, Program* program) {
  std::vector<Term> key;
  key.reserve(key_arity);
  for (size_t i = 0; i < key_arity; ++i) {
    key.push_back(Term::Var("K" + std::to_string(i + 1)));
  }
  Term lo1 = Term::Var("Lo1");
  Term hi1 = Term::Var("Hi1");
  Term lo2 = Term::Var("Lo2");
  Term hi2 = Term::Var("Hi2");
  auto with = [&key](std::initializer_list<Term> extra) {
    std::vector<Term> args = key;
    for (const Term& t : extra) args.push_back(t);
    return args;
  };
  const bool kinds[] = {true, false};  // closed, open

  // Two intervals connect when the second starts no later than the first
  // ends; at equal values one of the touching ends must be closed.
  auto touch_op = [](bool hi1_closed, bool lo2_closed) {
    return (hi1_closed || lo2_closed) ? CmpOp::kLe : CmpOp::kLt;
  };

  for (bool o1 : kinds) {
    for (bool o2 : kinds) {
      for (bool o3 : kinds) {
        for (bool o4 : kinds) {
          // int + int -> int spanning both.
          Rule r;
          r.head = Atom{IntPred(o1, o4), with({lo1, hi2})};
          r.body.push_back(
              Literal::Positive(Atom{IntPred(o1, o2), with({lo1, hi1})}));
          r.body.push_back(
              Literal::Positive(Atom{IntPred(o3, o4), with({lo2, hi2})}));
          r.body.push_back(
              Literal::Cmp(Comparison{lo2, touch_op(o2, o3), hi1}));
          r.body.push_back(Literal::Cmp(Comparison{hi1, CmpOp::kLe, hi2}));
          program->rules.push_back(std::move(r));
        }
        // int + ray_ge -> ray_ge.
        Rule ge;
        ge.head = Atom{RayGePred(o1), with({lo1})};
        ge.body.push_back(
            Literal::Positive(Atom{IntPred(o1, o2), with({lo1, hi1})}));
        ge.body.push_back(
            Literal::Positive(Atom{RayGePred(o3), with({lo2})}));
        ge.body.push_back(
            Literal::Cmp(Comparison{lo2, touch_op(o2, o3), hi1}));
        program->rules.push_back(std::move(ge));
      }
    }
  }
  for (bool o2 : kinds) {
    for (bool o3 : kinds) {
      for (bool o4 : kinds) {
        // ray_le + int -> ray_le extending right.
        Rule le;
        le.head = Atom{RayLePred(o4), with({hi2})};
        le.body.push_back(Literal::Positive(Atom{RayLePred(o2), with({hi1})}));
        le.body.push_back(
            Literal::Positive(Atom{IntPred(o3, o4), with({lo2, hi2})}));
        le.body.push_back(
            Literal::Cmp(Comparison{lo2, touch_op(o2, o3), hi1}));
        le.body.push_back(Literal::Cmp(Comparison{hi1, CmpOp::kLe, hi2}));
        program->rules.push_back(std::move(le));
      }
      // ray_le + ray_ge -> all.
      Rule all;
      all.head = Atom{kAllPred, with({})};
      all.body.push_back(Literal::Positive(Atom{RayLePred(o2), with({hi1})}));
      all.body.push_back(Literal::Positive(Atom{RayGePred(o3), with({lo2})}));
      all.body.push_back(
          Literal::Cmp(Comparison{lo2, touch_op(o2, o3), hi1}));
      program->rules.push_back(std::move(all));
    }
  }
}

std::string OkPred(size_t branch_index) {
  return "ok_" + std::to_string(branch_index);
}

/// Fig 6.1's rule (3), generalized: the coverage rules for one branch's
/// target interval I(t). Appends rules with head ok_<b>.
void EmitOkRules(size_t branch_index, const Tuple& key,
                 const Interval& target, Program* program) {
  std::vector<Term> key_terms;
  key_terms.reserve(key.size());
  for (const Value& v : key) key_terms.push_back(Term::Const(v));
  Atom ok{OkPred(branch_index), {}};
  auto with = [&key_terms](std::initializer_list<Term> extra) {
    std::vector<Term> args = key_terms;
    for (const Term& t : extra) args.push_back(t);
    return args;
  };
  Term x = Term::Var("X");
  Term y = Term::Var("Y");
  const bool kinds[] = {true, false};

  bool lo_finite = target.lo.finite();
  bool hi_finite = target.hi.finite();
  Term lo_t = lo_finite ? Term::Const(target.lo.value) : Term();
  Term hi_t = hi_finite ? Term::Const(target.hi.value) : Term();

  // The covering lower end X must admit the target's lower end.
  auto lower_admits = [&](bool cover_closed) {
    return (cover_closed || !target.lo.closed) ? CmpOp::kLe : CmpOp::kLt;
  };
  auto upper_admits = [&](bool cover_closed) {
    return (cover_closed || !target.hi.closed) ? CmpOp::kLe : CmpOp::kLt;
  };

  if (lo_finite && hi_finite) {
    for (bool o1 : kinds) {
      for (bool o2 : kinds) {
        Rule r;
        r.head = ok;
        r.body.push_back(
            Literal::Positive(Atom{IntPred(o1, o2), with({x, y})}));
        r.body.push_back(Literal::Cmp(Comparison{x, lower_admits(o1), lo_t}));
        r.body.push_back(Literal::Cmp(Comparison{hi_t, upper_admits(o2), y}));
        program->rules.push_back(std::move(r));
      }
    }
  }
  if (hi_finite) {
    for (bool o : kinds) {
      Rule r;
      r.head = ok;
      r.body.push_back(Literal::Positive(Atom{RayLePred(o), with({y})}));
      r.body.push_back(Literal::Cmp(Comparison{hi_t, upper_admits(o), y}));
      program->rules.push_back(std::move(r));
    }
  }
  if (lo_finite) {
    for (bool o : kinds) {
      Rule r;
      r.head = ok;
      r.body.push_back(Literal::Positive(Atom{RayGePred(o), with({x})}));
      r.body.push_back(Literal::Cmp(Comparison{x, lower_admits(o), lo_t}));
      program->rules.push_back(std::move(r));
    }
  }
  {
    Rule r;
    r.head = ok;
    r.body.push_back(Literal::Positive(Atom{kAllPred, with({})}));
    program->rules.push_back(std::move(r));
  }
}

}  // namespace

Result<IcqCompilation> CompileIcq(const Rule& rule,
                                  const std::string& local_pred) {
  IcqCompilation comp;
  comp.local_pred = local_pred;
  CCPI_ASSIGN_OR_RETURN(comp.branches,
                        AnalyzeForbiddenIntervals(rule, local_pred));
  if (!comp.branches.empty()) {
    comp.local_arity = comp.branches[0].local.args.size();
    size_t key_arity = comp.branches[0].key_vars.size();
    for (const IcqBranch& b : comp.branches) {
      CCPI_CHECK(b.key_vars == comp.branches[0].key_vars);
      EmitBasisRules(b, &comp.interval_program);
    }
    EmitMergeRules(key_arity, &comp.interval_program);
  }
  return comp;
}

Result<Outcome> IcqLocalTestOnInsert(const IcqCompilation& comp,
                                     const Database& db, const Tuple& t) {
  if (comp.branches.empty()) return Outcome::kHolds;  // dead constraint body
  if (t.size() != comp.local_arity) {
    return Status::InvalidArgument("inserted tuple arity mismatch");
  }

  // Purely local constraint: the outcome is decided outright.
  if (comp.branches[0].remotes.empty()) {
    for (const IcqBranch& b : comp.branches) {
      std::optional<Interval> target = ForbiddenInterval(b, t);
      if (target.has_value() && !target->Empty()) return Outcome::kViolated;
    }
    return Outcome::kHolds;
  }

  Program program = comp.interval_program;
  std::vector<Literal> ok_conjuncts;
  for (size_t b = 0; b < comp.branches.size(); ++b) {
    std::optional<Interval> target = ForbiddenInterval(comp.branches[b], t);
    if (!target.has_value() || target->Empty()) {
      // This branch imposes no requirement on the local data.
      Rule fact;
      fact.head = Atom{OkPred(b), {}};
      program.rules.push_back(std::move(fact));
    } else {
      EmitOkRules(b, KeyOf(comp.branches[b], t), *target, &program);
    }
    ok_conjuncts.push_back(Literal::Positive(Atom{OkPred(b), {}}));
  }
  Rule ok;
  ok.head = Atom{"ok", {}};
  ok.body = std::move(ok_conjuncts);
  program.rules.push_back(std::move(ok));
  program.goal = "ok";

  CCPI_ASSIGN_OR_RETURN(bool derived, IsViolated(program, db));
  return derived ? Outcome::kHolds : Outcome::kUnknown;
}

Result<Outcome> IcqDirectTestOnInsert(const IcqCompilation& comp,
                                      const Relation& local_relation,
                                      const Tuple& t) {
  if (comp.branches.empty()) return Outcome::kHolds;
  if (t.size() != comp.local_arity) {
    return Status::InvalidArgument("inserted tuple arity mismatch");
  }
  if (comp.branches[0].remotes.empty()) {
    for (const IcqBranch& b : comp.branches) {
      std::optional<Interval> target = ForbiddenInterval(b, t);
      if (target.has_value() && !target->Empty()) return Outcome::kViolated;
    }
    return Outcome::kHolds;
  }

  // Forbidden intervals of every local tuple across all branches, keyed by
  // the join values.
  std::map<Tuple, IntervalSet> by_key;
  for (const Tuple& s : local_relation.rows()) {
    for (const IcqBranch& b : comp.branches) {
      std::optional<Interval> interval = ForbiddenInterval(b, s);
      if (interval.has_value()) {
        by_key[KeyOf(b, s)].Add(*interval);
      }
    }
  }
  for (const IcqBranch& b : comp.branches) {
    std::optional<Interval> target = ForbiddenInterval(b, t);
    if (!target.has_value() || target->Empty()) continue;
    auto it = by_key.find(KeyOf(b, t));
    if (it == by_key.end() || !it->second.Covers(*target)) {
      return Outcome::kUnknown;
    }
  }
  return Outcome::kHolds;
}

}  // namespace ccpi
