#ifndef CCPI_CORE_CQC_FORM_H_
#define CCPI_CORE_CQC_FORM_H_

#include <string>
#include <vector>

#include "arith/solver.h"
#include "datalog/cq.h"
#include "util/status.h"

namespace ccpi {

/// A conjunctive-query constraint in the Section 5 normal form:
///
///     panic :- l & r1 & ... & rn & c1 & ... & ck
///
/// with one local subgoal l, remote subgoals r_i, and arithmetic
/// comparisons c_j, where no variable appears twice among the ordinary
/// subgoals and no constants appear in them (multiple occurrences and
/// constants are expressed through equality comparisons; MakeCqc performs
/// this normalization). The update model is insertion of a tuple into the
/// relation for l.
struct Cqc {
  std::string local_pred;
  Atom local;
  std::vector<Atom> remotes;
  arith::Conjunction comparisons;

  size_t local_arity() const { return local.args.size(); }

  /// The equivalent flattened CQ with head `panic`.
  CQ ToCQ() const;
  std::string ToString() const { return ToCQ().ToString(); }
};

/// Builds the normalized CQC from a constraint rule, designating
/// `local_pred` as the local predicate. Fails if the rule has negation, a
/// non-0-ary head, no occurrence (or several occurrences) of the local
/// predicate, or unsafe comparison variables. (The paper notes a
/// conjunction of local subgoals can be seen as one subgoal l; callers with
/// several local atoms should fold them into one predicate first.)
Result<Cqc> MakeCqc(const Rule& rule, const std::string& local_pred);

}  // namespace ccpi

#endif  // CCPI_CORE_CQC_FORM_H_
