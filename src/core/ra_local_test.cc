#include "core/ra_local_test.h"

#include <map>
#include <optional>
#include <set>

#include "containment/mapping.h"
#include "datalog/cq.h"
#include "util/check.h"

namespace ccpi {

namespace {

/// The distinguished sigma-variable for local position i.
std::string SigmaVar(size_t i) { return "SIGMA_" + std::to_string(i); }

bool IsSigmaVar(const std::string& name) {
  return name.rfind("SIGMA_", 0) == 0;
}

size_t SigmaIndex(const std::string& name) {
  return static_cast<size_t>(std::stoul(name.substr(6)));
}

}  // namespace

Result<RaLocalTest> CompileRaLocalTest(const Rule& rule,
                                       const std::string& local_pred,
                                       const Tuple& t) {
  CQ q = RuleToCQ(rule);
  if (q.HasArithmetic()) {
    return Status::InvalidArgument(
        "Theorem 5.3 applies to arithmetic-free CQCs; use the Theorem 5.2 "
        "test for constraints with comparisons");
  }
  if (q.HasNegation()) {
    return Status::InvalidArgument("CQCs have no negated subgoals");
  }
  if (!q.head.args.empty()) {
    return Status::InvalidArgument("constraint head must be 0-ary panic");
  }
  std::optional<Atom> local;
  std::vector<Atom> remotes;
  for (const Atom& a : q.positives) {
    if (a.pred == local_pred) {
      if (local.has_value()) {
        return Status::InvalidArgument(
            "constraint has several local subgoals");
      }
      local = a;
    } else {
      remotes.push_back(a);
    }
  }
  if (!local.has_value()) {
    return Status::InvalidArgument("constraint has no subgoal with local "
                                   "predicate " +
                                   local_pred);
  }
  if (t.size() != local->args.size()) {
    return Status::InvalidArgument("inserted tuple arity mismatch");
  }

  RaLocalTest out;

  // Does t unify with l's pattern? Bind each local variable to the first
  // component seen; constants must match.
  std::map<std::string, Value> binding;
  // Pattern conditions on sigma: #i = #first(var), #i = constant.
  std::vector<RaCondition> pattern;
  std::map<std::string, size_t> first_pos;
  for (size_t i = 0; i < local->args.size(); ++i) {
    const Term& arg = local->args[i];
    if (arg.is_const()) {
      if (!(arg.constant() == t[i])) {
        out.trivially_holds = true;  // RED(t, l, C) does not exist
        return out;
      }
      pattern.push_back(RaCondition{RaOperand::Col(i), CmpOp::kEq,
                                    RaOperand::Const(arg.constant())});
      continue;
    }
    auto [it, inserted] = first_pos.emplace(arg.var(), i);
    if (inserted) {
      binding[arg.var()] = t[i];
    } else {
      if (!(binding.at(arg.var()) == t[i])) {
        out.trivially_holds = true;
        return out;
      }
      pattern.push_back(RaCondition{RaOperand::Col(it->second), CmpOp::kEq,
                                    RaOperand::Col(i)});
    }
  }

  if (remotes.empty()) {
    // Purely local constraint: inserting a matching t violates it.
    out.trivially_violated = true;
    return out;
  }

  // RED(t): local variables replaced by t's components.
  CQ red_t;
  red_t.head = Atom{kPanic, {}};
  Substitution to_t;
  for (const auto& [var, value] : binding) to_t[var] = Term::Const(value);
  for (const Atom& r : remotes) red_t.positives.push_back(Apply(to_t, r));

  // RED(sigma): local variables replaced by sigma markers; the remaining
  // (remote) variables renamed apart.
  CQ red_sigma;
  red_sigma.head = Atom{kPanic, {}};
  Substitution to_sigma;
  for (const auto& [var, pos] : first_pos) {
    to_sigma[var] = Term::Var(SigmaVar(pos));
  }
  for (const Atom& r : remotes) {
    Atom mapped = Apply(to_sigma, r);
    // Rename the remote variables apart from RED(t)'s.
    for (Term& arg : mapped.args) {
      if (arg.is_var() && !IsSigmaVar(arg.var())) {
        arg = Term::Var(arg.var() + "_q");
      }
    }
    red_sigma.positives.push_back(std::move(mapped));
  }

  // One select per containment mapping whose sigma images are constants.
  RaExprPtr scan = RaExpr::Scan(local_pred, t.size());
  RaExprPtr result;
  for (const Substitution& h :
       EnumerateContainmentMappings(red_sigma, red_t)) {
    std::vector<RaCondition> conds = pattern;
    bool valid = true;
    for (const auto& [var, target] : h) {
      if (!IsSigmaVar(var)) continue;
      if (!target.is_const()) {
        // A component of a concrete L-tuple cannot cover a free remote
        // variable; this mapping yields no test.
        valid = false;
        break;
      }
      conds.push_back(RaCondition{RaOperand::Col(SigmaIndex(var)), CmpOp::kEq,
                                  RaOperand::Const(target.constant())});
    }
    if (!valid) continue;
    RaExprPtr select = RaExpr::Select(scan, std::move(conds));
    result = result == nullptr ? select : RaExpr::Union(result, select);
  }
  out.expr = result != nullptr ? result : RaExpr::Empty(t.size());
  return out;
}

Result<Outcome> RaLocalTestOnInsert(const Rule& rule,
                                    const std::string& local_pred,
                                    const Tuple& t, const Database& db,
                                    AccessObserver* observer,
                                    obs::MetricsRegistry* metrics,
                                    const BudgetScope* budget) {
  CCPI_ASSIGN_OR_RETURN(RaLocalTest test,
                        CompileRaLocalTest(rule, local_pred, t));
  if (test.trivially_holds) return Outcome::kHolds;
  if (test.trivially_violated) return Outcome::kViolated;
#ifndef NDEBUG
  // Theorem 5.3's whole point is that the compiled test reads only the
  // local relation; if a compiled expression ever scanned anything else,
  // tier 2 would silently pay remote trips. Enforce locality in debug
  // builds.
  {
    std::set<std::string> scans;
    test.expr->CollectScanPreds(&scans);
    for (const std::string& pred : scans) CCPI_CHECK(pred == local_pred);
  }
#endif
  CCPI_ASSIGN_OR_RETURN(bool nonempty,
                        RaNonempty(*test.expr, db, observer, metrics, budget));
  return nonempty ? Outcome::kHolds : Outcome::kUnknown;
}

}  // namespace ccpi
