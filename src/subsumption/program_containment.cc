#include "subsumption/program_containment.h"

#include "containment/cq_containment.h"
#include "containment/cqc.h"
#include "containment/exact.h"
#include "containment/normalize.h"
#include "containment/uniform_recursive.h"
#include "datalog/simplify.h"
#include "datalog/unfold.h"

namespace ccpi {

Result<ContainmentDecision> ProgramContainedInUnion(
    const Program& p, const std::vector<Program>& qs) {
  bool recursive = p.IsRecursive();
  for (const Program& q : qs) recursive = recursive || q.IsRecursive();
  if (recursive) {
    // Ordinary containment is undecidable for a recursive subsumed side
    // (Shmueli [1987]) and 3EXPTIME for nonrecursive-in-recursive
    // (Chaudhuri and Vardi [1992]). Uniform containment (Sagiv [1988]) is
    // decidable and SOUND for ordinary containment, so a "holds" verdict
    // is trustworthy; otherwise the answer is genuinely unknown.
    //
    // Structural equality shortcut first: merging renames each program's
    // helper predicates apart (necessary for soundness when different
    // constraints reuse a helper name), which hides p's own helpers from
    // the chase when p literally appears in the union.
    for (const Program& q : qs) {
      if (q.goal == p.goal && q.ToString() == p.ToString()) {
        ContainmentDecision decision;
        decision.outcome = Outcome::kHolds;
        decision.exact = false;
        decision.method = "structural-identity";
        return decision;
      }
    }
    Result<Outcome> uniform =
        UniformDatalogContained(p, MergeConstraintPrograms(qs));
    if (!uniform.ok()) {
      return Status::Unsupported(
          "recursive containment: uniform-containment fallback "
          "inapplicable (" +
          uniform.status().message() + ")");
    }
    ContainmentDecision decision;
    decision.outcome = *uniform;
    decision.exact = false;
    decision.method = "uniform-containment-chase";
    return decision;
  }

  // Unfold to unions of CQs and simplify each disjunct (substituting
  // equality bindings, dropping dead branches). Dead left disjuncts are
  // trivially contained; dead right disjuncts contribute nothing.
  CCPI_ASSIGN_OR_RETURN(UCQ up_raw, UnfoldToUCQ(p));
  UCQ up;
  for (const CQ& d : up_raw) {
    std::optional<CQ> s = SimplifyCQ(d);
    if (s.has_value()) up.push_back(std::move(*s));
  }
  UCQ uq;
  for (const Program& q : qs) {
    CCPI_ASSIGN_OR_RETURN(UCQ u, UnfoldToUCQ(q));
    for (const CQ& d : u) {
      std::optional<CQ> s = SimplifyCQ(d);
      if (s.has_value()) uq.push_back(std::move(*s));
    }
  }

  bool negation = false;
  bool arithmetic = false;
  for (const UCQ* u : {&up, &uq}) {
    for (const CQ& d : *u) {
      negation = negation || d.HasNegation();
      arithmetic = arithmetic || d.HasArithmetic();
    }
  }

  ContainmentDecision decision;
  if (!negation && !arithmetic) {
    CCPI_ASSIGN_OR_RETURN(bool contained, UcqContained(up, uq));
    decision.outcome = contained ? Outcome::kHolds : Outcome::kUnknown;
    decision.exact = true;
    decision.method = "ucq-containment";
    return decision;
  }
  if (!negation) {
    // Theorem 5.1 (union form) after normalizing to its preconditions.
    UCQ uq_norm;
    uq_norm.reserve(uq.size());
    for (const CQ& d : uq) uq_norm.push_back(NormalizeToTheorem51Form(d));
    bool all = true;
    bool exact = true;
    for (const CQ& d : up) {
      bool member_exact = true;
      CCPI_ASSIGN_OR_RETURN(
          bool contained,
          CqcContainedInUnionRelaxed(NormalizeToTheorem51Form(d), uq_norm,
                                     &member_exact));
      exact = exact && member_exact;
      if (!contained) {
        all = false;
        break;
      }
    }
    decision.outcome = all ? Outcome::kHolds : Outcome::kUnknown;
    decision.exact = all || exact;  // a "holds" answer is always correct
    decision.method = "theorem-5.1";
    return decision;
  }
  // Negation present: exact small-model oracle if it fits, else the sound
  // uniform-containment test.
  Result<bool> exact = ExactUcqContained(up, uq);
  if (exact.ok()) {
    decision.outcome = *exact ? Outcome::kHolds : Outcome::kUnknown;
    decision.exact = true;
    decision.method = "exact-oracle";
    return decision;
  }
  if (exact.status().code() != StatusCode::kUnsupported) {
    return exact.status();
  }
  bool all = true;
  for (const CQ& d : up) {
    CCPI_ASSIGN_OR_RETURN(Outcome o, UniformContainedInUnion(d, uq));
    if (o != Outcome::kHolds) {
      all = false;
      break;
    }
  }
  decision.outcome = all ? Outcome::kHolds : Outcome::kUnknown;
  decision.exact = false;
  decision.method = "uniform-containment";
  return decision;
}

}  // namespace ccpi
