#ifndef CCPI_SUBSUMPTION_PROGRAM_CONTAINMENT_H_
#define CCPI_SUBSUMPTION_PROGRAM_CONTAINMENT_H_

#include <string>
#include <vector>

#include "datalog/ast.h"
#include "util/outcome.h"
#include "util/status.h"

namespace ccpi {

/// The verdict of a program-containment check, together with how it was
/// reached. When `exact` is true the method was a decision procedure, so
/// kUnknown really means "not contained"; when false the method was a sound
/// test (uniform containment) and kUnknown means exactly that.
struct ContainmentDecision {
  Outcome outcome = Outcome::kUnknown;
  bool exact = false;
  std::string method;
};

/// Decides (or soundly tests) whether program `p` is contained in the union
/// of programs `qs` — the single primitive behind constraint subsumption
/// (Theorem 3.1) and the query-independent-of-update tests of Section 4.
///
/// Dispatch over the Fig 2.1 classes:
///  * recursive on either side -> Unsupported (undecidable for a recursive
///    subsumed side per Shmueli [1987]; the nonrecursive-in-recursive cases
///    of Chaudhuri–Vardi are out of scope);
///  * nonrecursive, negation-free, arithmetic-free -> Sagiv–Yannakakis
///    per-disjunct UCQ containment (exact);
///  * nonrecursive, negation-free, with arithmetic -> Theorem 5.1 in its
///    union form after normalization (exact);
///  * with negation -> the exact small-model oracle when it fits its
///    limits, otherwise uniform containment (sound, may answer kUnknown).
Result<ContainmentDecision> ProgramContainedInUnion(
    const Program& p, const std::vector<Program>& qs);

}  // namespace ccpi

#endif  // CCPI_SUBSUMPTION_PROGRAM_CONTAINMENT_H_
