#include "subsumption/reduction.h"

namespace ccpi {

namespace {

/// Renames predicate `from` to `to` throughout the ordinary subgoals of q.
CQ RenamePredicate(const CQ& q, const std::string& from,
                   const std::string& to) {
  CQ out = q;
  if (out.head.pred == from) out.head.pred = to;
  for (Atom& a : out.positives) {
    if (a.pred == from) a.pred = to;
  }
  for (Atom& a : out.negatives) {
    if (a.pred == from) a.pred = to;
  }
  return out;
}

bool BodyMentions(const CQ& q, const std::string& pred) {
  for (const Atom& a : q.positives) {
    if (a.pred == pred) return true;
  }
  for (const Atom& a : q.negatives) {
    if (a.pred == pred) return true;
  }
  return false;
}

Program Reduce(const CQ& q, const std::string& head_name) {
  CQ moved = q;
  moved.head.pred = head_name;
  Rule rule;
  rule.head = Atom{kPanic, {}};
  rule.body.push_back(Literal::Positive(moved.head));
  for (const Atom& a : moved.positives) {
    rule.body.push_back(Literal::Positive(a));
  }
  for (const Atom& a : moved.negatives) {
    rule.body.push_back(Literal::Negated(a));
  }
  for (const Comparison& c : moved.comparisons) {
    rule.body.push_back(Literal::Cmp(c));
  }
  Program program;
  program.rules.push_back(std::move(rule));
  return program;
}

std::string FreshHeadName(const CQ& q) {
  std::string name = q.head.pred;
  while (BodyMentions(q, name)) name += "_h";
  return name;
}

}  // namespace

Program ReduceContainmentToSubsumption(const CQ& q) {
  return Reduce(q, FreshHeadName(q));
}

std::pair<Program, Program> ReducePairToSubsumption(const CQ& q,
                                                    const CQ& r) {
  // The rename must be consistent: pick a name fresh for both bodies.
  std::string name = q.head.pred;
  while (BodyMentions(q, name) || BodyMentions(r, name)) name += "_h";
  CQ r_renamed = RenamePredicate(r, r.head.pred, r.head.pred);  // copy
  r_renamed.head.pred = q.head.pred;  // containment requires equal heads
  return {Reduce(q, name), Reduce(r_renamed, name)};
}

}  // namespace ccpi
