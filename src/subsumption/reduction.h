#ifndef CCPI_SUBSUMPTION_REDUCTION_H_
#define CCPI_SUBSUMPTION_REDUCTION_H_

#include <utility>

#include "datalog/cq.h"
#include "util/status.h"

namespace ccpi {

/// Theorem 3.2's reduction from query containment to constraint
/// subsumption: for a CQ  h :- B,  rename the head predicate if it occurs
/// in the body, then "move" the head into the body, producing the
/// constraint  panic :- h & B. For CQs q and r,
///     q is contained in r   iff   Reduce(q) is contained in Reduce(r),
/// i.e. iff {Reduce(r)} subsumes Reduce(q). The rename uses a primed
/// predicate name so a head predicate occurring in the body cannot absorb
/// the moved head atom.
///
/// This shows constraint subsumption is as hard as containment for any CQ
/// class closed under adding an ordinary subgoal (the paper's lower bound).
Program ReduceContainmentToSubsumption(const CQ& q);

/// Applies the reduction to both queries with a consistent head-predicate
/// rename, returning (Reduce(q), Reduce(r)).
std::pair<Program, Program> ReducePairToSubsumption(const CQ& q, const CQ& r);

}  // namespace ccpi

#endif  // CCPI_SUBSUMPTION_REDUCTION_H_
