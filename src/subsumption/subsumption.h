#ifndef CCPI_SUBSUMPTION_SUBSUMPTION_H_
#define CCPI_SUBSUMPTION_SUBSUMPTION_H_

#include <vector>

#include "datalog/ast.h"
#include "subsumption/program_containment.h"
#include "util/status.h"

namespace ccpi {

/// Section 3, Theorem 3.1: the constraint set {C1,...,Cn} subsumes C iff,
/// viewed as programs, C is contained in C1 UNION ... UNION Cn. A subsumed
/// constraint never needs checking: whenever it is violated, one of the
/// others already is.
///
/// The outcome is kHolds ("subsumed"), or kUnknown; `exact` in the decision
/// says whether kUnknown means "definitely not subsumed" (decision
/// procedure ran) or "could not tell" (sound test only).
Result<ContainmentDecision> Subsumes(const Program& c,
                                     const std::vector<Program>& others);

/// Returns the indexes of constraints in `constraints` that are subsumed by
/// the remaining ones (greedy left-to-right sweep; each removed constraint
/// is not used to justify removing later ones, so the surviving set still
/// subsumes everything removed). Only exact "holds" verdicts trigger
/// removal. Constraints whose subsumption check is Unsupported (e.g.
/// recursive) are always kept.
Result<std::vector<size_t>> FindRedundantConstraints(
    const std::vector<Program>& constraints);

}  // namespace ccpi

#endif  // CCPI_SUBSUMPTION_SUBSUMPTION_H_
