#include "subsumption/subsumption.h"

#include <set>

namespace ccpi {

Result<ContainmentDecision> Subsumes(const Program& c,
                                     const std::vector<Program>& others) {
  return ProgramContainedInUnion(c, others);
}

Result<std::vector<size_t>> FindRedundantConstraints(
    const std::vector<Program>& constraints) {
  std::vector<size_t> redundant;
  std::set<size_t> removed;
  for (size_t i = 0; i < constraints.size(); ++i) {
    std::vector<Program> others;
    for (size_t j = 0; j < constraints.size(); ++j) {
      if (j != i && removed.count(j) == 0) others.push_back(constraints[j]);
    }
    if (others.empty()) continue;
    Result<ContainmentDecision> decision = Subsumes(constraints[i], others);
    if (!decision.ok()) {
      if (decision.status().code() == StatusCode::kUnsupported) continue;
      return decision.status();
    }
    if (decision->outcome == Outcome::kHolds) {
      redundant.push_back(i);
      removed.insert(i);
    }
  }
  return redundant;
}

}  // namespace ccpi
