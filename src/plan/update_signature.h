#ifndef CCPI_PLAN_UPDATE_SIGNATURE_H_
#define CCPI_PLAN_UPDATE_SIGNATURE_H_

#include <string>
#include <vector>

#include "datalog/ast.h"
#include "relational/tuple.h"
#include "updates/update.h"

namespace ccpi {

/// The *update pattern* a compiled plan is keyed by: the updated predicate,
/// the update kind, and the tuple's shape relative to a distinguished set
/// of constants (in the manager: every constant appearing in any active
/// constraint program).
///
/// The shape records, per component, which distinguished constant it equals
/// (if any) and otherwise which earlier component it repeats — e.g. with
/// constants {a}, the tuple (a, b, b) has shape "C0.N0.N0" while (x, y, z)
/// has "N0.N1.N2". Two same-shape tuples admit a bijective value renaming
/// that fixes every distinguished constant, so any analysis that only
/// *compares values for equality* (unification, containment mappings,
/// Theorem 5.3 plan construction) decides identically for both: the shape
/// is a sound cache key for those analyses. Analyses that consult the value
/// *order* (arithmetic comparisons) are not shape-invariant — callers gate
/// those caches on SignatureSafe.
struct UpdateSignature {
  std::string pred;
  bool is_insert = true;
  std::string shape;

  /// The cache-key rendering, e.g. "emp/+/C0.N0.N0".
  std::string Key() const {
    return pred + (is_insert ? "/+/" : "/-/") + shape;
  }
};

/// Shape of `t` relative to `constants` (must be sorted and deduplicated so
/// indices are stable across calls).
std::string ShapeSignature(const Tuple& t, const std::vector<Value>& constants);

UpdateSignature MakeUpdateSignature(const Update& u,
                                    const std::vector<Value>& constants);

/// Every constant appearing in `programs` — rule heads, subgoal arguments
/// and comparison operands — sorted and deduplicated, ready for
/// ShapeSignature.
std::vector<Value> CollectProgramConstants(
    const std::vector<const Program*>& programs);

/// True when `program` contains no comparison literals at all. Equality-only
/// analyses over such programs are invariant under the shape renaming above;
/// a program with comparisons can distinguish same-shape tuples by order
/// (e.g. S > 200), so shape-keyed *decision* caches must be disabled for it.
bool SignatureSafe(const Program& program);

}  // namespace ccpi

#endif  // CCPI_PLAN_UPDATE_SIGNATURE_H_
