#include "plan/plan_cache.h"

#include <mutex>

namespace ccpi {

std::optional<PlanCache::Tier1Decision> PlanCache::FindTier1(
    const std::string& key) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = tier1_.find(key);
  if (it == tier1_.end()) return std::nullopt;
  return it->second;
}

void PlanCache::StoreTier1(const std::string& key, Tier1Decision decision) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  tier1_.emplace(key, decision);  // first insert wins
}

std::shared_ptr<const RaPlanTemplate> PlanCache::FindTemplate(
    const std::string& key) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = templates_.find(key);
  return it == templates_.end() ? nullptr : it->second;
}

std::shared_ptr<const RaPlanTemplate> PlanCache::StoreTemplate(
    const std::string& key, std::shared_ptr<const RaPlanTemplate> tpl) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] = templates_.emplace(key, std::move(tpl));
  return it->second;
}

std::optional<PlanCache::BoundResult> PlanCache::FindResult(
    const std::string& key) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = results_.find(key);
  if (it == results_.end()) return std::nullopt;
  return it->second;
}

void PlanCache::StoreResult(const std::string& key, BoundResult result) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  results_.emplace(key, std::move(result));
}

std::shared_ptr<const CompiledProgram> PlanCache::FindProgram(
    const std::string& key) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = programs_.find(key);
  return it == programs_.end() ? nullptr : it->second;
}

std::shared_ptr<const CompiledProgram> PlanCache::StoreProgram(
    const std::string& key, std::shared_ptr<const CompiledProgram> program) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] = programs_.emplace(key, std::move(program));
  return it->second;
}

void PlanCache::Invalidate() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  tier1_.clear();
  templates_.clear();
  results_.clear();
  programs_.clear();
}

size_t PlanCache::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return tier1_.size() + templates_.size() + results_.size() +
         programs_.size();
}

}  // namespace ccpi
