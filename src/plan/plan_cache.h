#ifndef CCPI_PLAN_PLAN_CACHE_H_
#define CCPI_PLAN_PLAN_CACHE_H_

#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "eval/engine.h"
#include "plan/ra_plan.h"
#include "util/outcome.h"

namespace ccpi {

/// Thread-safe store of compiled checking plans, keyed by strings the
/// manager derives from (constraint id, update pattern) — see
/// docs/plan_cache.md for the keying discipline. Four entry families:
///
///   tier-1 memo      (constraint, pattern) -> the independence decision
///   RA templates     (constraint, pattern) -> RaPlanTemplate (Theorem 5.3)
///   bound results    (constraint, pattern, tuple, relation version) ->
///                    a tier-2 evaluation's outcome plus its exact observed
///                    reads, replayable while the version stamp still
///                    matches (PR 4 stamps: equal version => equal contents)
///   compiled programs (constraint) -> the tier-3 CompiledProgram
///
/// Lookups take the shared lock, stores the exclusive lock; compilation
/// always happens outside any lock. Store is first-insert-wins: when two
/// lanes compile the same key concurrently, the loser adopts the winner's
/// entry, so every reader of a key sees one plan. (Under the manager's
/// phase-1 fan-out keys embed the constraint id and each lane owns one
/// constraint, so the race is theoretical there — but the cache does not
/// rely on that.)
class PlanCache {
 public:
  /// The memoized tier-1 verdict for an update pattern: holds (resolve at
  /// kIndependence) or falls through to tier 2.
  struct Tier1Decision {
    bool holds = false;
  };

  /// A memoized tier-2 evaluation: the outcome plus the exact (pred, count)
  /// read sequence the evaluation charged, replayed verbatim on a hit so
  /// access accounting is byte-identical to re-evaluating.
  struct BoundResult {
    Outcome outcome = Outcome::kUnknown;
    std::vector<std::pair<std::string, size_t>> reads;
  };

  std::optional<Tier1Decision> FindTier1(const std::string& key) const;
  void StoreTier1(const std::string& key, Tier1Decision decision);

  std::shared_ptr<const RaPlanTemplate> FindTemplate(
      const std::string& key) const;
  /// Returns the winning entry (the argument, or a concurrent first
  /// inserter's).
  std::shared_ptr<const RaPlanTemplate> StoreTemplate(
      const std::string& key, std::shared_ptr<const RaPlanTemplate> tpl);

  std::optional<BoundResult> FindResult(const std::string& key) const;
  void StoreResult(const std::string& key, BoundResult result);

  std::shared_ptr<const CompiledProgram> FindProgram(
      const std::string& key) const;
  std::shared_ptr<const CompiledProgram> StoreProgram(
      const std::string& key, std::shared_ptr<const CompiledProgram> program);

  /// Drops every entry. The manager calls this when the constraint set
  /// changes (AddConstraint): tier-1 decisions quantify over the *other*
  /// active constraints, so registration is a cache epoch.
  void Invalidate();

  /// Total entries across all families (tests/diagnostics).
  size_t size() const;

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, Tier1Decision> tier1_;
  std::unordered_map<std::string, std::shared_ptr<const RaPlanTemplate>>
      templates_;
  std::unordered_map<std::string, BoundResult> results_;
  std::unordered_map<std::string, std::shared_ptr<const CompiledProgram>>
      programs_;
};

}  // namespace ccpi

#endif  // CCPI_PLAN_PLAN_CACHE_H_
