#include "plan/ra_plan.h"

#include <vector>

#include "core/ra_local_test.h"
#include "util/check.h"

namespace ccpi {

namespace {

/// The component of `rep` a constant value binds to, or rep.size() when it
/// is a constraint constant (no component matches). With same-shape
/// tuples any matching component works — equal representative components
/// stay equal in the bound tuple — so the smallest index is as good as
/// remembering the compiler's actual source.
size_t DeltaIndex(const Value& v, const Tuple& rep) {
  for (size_t i = 0; i < rep.size(); ++i) {
    if (rep[i] == v) return i;
  }
  return rep.size();
}

Value BindValue(const Value& v, const Tuple& rep, const Tuple& t) {
  size_t i = DeltaIndex(v, rep);
  return i < rep.size() ? t[i] : v;
}

RaOperand BindOperand(const RaOperand& op, const Tuple& rep, const Tuple& t) {
  if (op.is_col) return op;
  return RaOperand::Const(BindValue(op.constant, rep, t));
}

RaExprPtr BindExpr(const RaExprPtr& e, const Tuple& rep, const Tuple& t) {
  switch (e->kind()) {
    case RaExpr::Kind::kScan:
      return e;  // no constants; sharing the node keeps the bound
                 // expression's structure identical to a fresh compile
    case RaExpr::Kind::kConstRel: {
      std::vector<Tuple> tuples;
      tuples.reserve(e->tuples().size());
      for (const Tuple& row : e->tuples()) {
        Tuple bound;
        bound.reserve(row.size());
        for (const Value& v : row) bound.push_back(BindValue(v, rep, t));
        tuples.push_back(std::move(bound));
      }
      return RaExpr::ConstRel(e->arity(), std::move(tuples));
    }
    case RaExpr::Kind::kSelect: {
      std::vector<RaCondition> conds;
      conds.reserve(e->conditions().size());
      for (const RaCondition& c : e->conditions()) {
        conds.push_back(RaCondition{BindOperand(c.lhs, rep, t), c.op,
                                    BindOperand(c.rhs, rep, t)});
      }
      return RaExpr::Select(BindExpr(e->left(), rep, t), std::move(conds));
    }
    case RaExpr::Kind::kProject:
      return RaExpr::Project(BindExpr(e->left(), rep, t), e->columns());
    case RaExpr::Kind::kProduct:
      return RaExpr::Product(BindExpr(e->left(), rep, t),
                             BindExpr(e->right(), rep, t));
    case RaExpr::Kind::kUnion:
      return RaExpr::Union(BindExpr(e->left(), rep, t),
                           BindExpr(e->right(), rep, t));
    case RaExpr::Kind::kDifference:
      return RaExpr::Difference(BindExpr(e->left(), rep, t),
                                BindExpr(e->right(), rep, t));
  }
  CCPI_CHECK(false);
  return e;
}

}  // namespace

RaExprPtr RaPlanTemplate::Bind(const Tuple& t) const {
  CCPI_CHECK(expr != nullptr);
  CCPI_CHECK(t.size() == representative.size());
  return BindExpr(expr, representative, t);
}

Result<RaPlanTemplate> CompileRaPlan(const Rule& rule,
                                     const std::string& local_pred,
                                     const Tuple& t) {
  CCPI_ASSIGN_OR_RETURN(RaLocalTest base,
                        CompileRaLocalTest(rule, local_pred, t));
  RaPlanTemplate out;
  out.trivially_holds = base.trivially_holds;
  out.trivially_violated = base.trivially_violated;
  out.expr = base.expr;
  out.representative = t;
  return out;
}

}  // namespace ccpi
