#ifndef CCPI_PLAN_RA_PLAN_H_
#define CCPI_PLAN_RA_PLAN_H_

#include <string>

#include "datalog/ast.h"
#include "ra/ra_expr.h"
#include "relational/tuple.h"
#include "util/status.h"

namespace ccpi {

/// A Theorem 5.3 local test compiled once per *update pattern* instead of
/// once per update. The template is the test compiled for one
/// representative tuple; Bind substitutes a later same-shape tuple's values
/// for the representative's, producing exactly the expression a fresh
/// CompileRaLocalTest would build for it (property-tested in
/// plan_cache_test).
///
/// Why that works: the compiler's control flow — pattern match, trivial
/// outcomes, the containment-mapping enumeration — branches only on
/// equality comparisons among the tuple's components and the constraint's
/// constants, all of which the shape key (see update_signature.h) holds
/// fixed. Two same-shape tuples therefore compile to structurally identical
/// expressions differing only at the constant operands carrying tuple
/// components, and those are exactly the operands Bind rewrites.
struct RaPlanTemplate {
  /// Same meaning as RaLocalTest's flags; shape-stable, so they transfer
  /// to every bound tuple.
  bool trivially_holds = false;
  bool trivially_violated = false;
  /// The representative compile; null iff a trivial flag is set.
  RaExprPtr expr;
  /// The tuple `expr` was compiled for.
  Tuple representative;

  /// Rewrites `expr` for a same-shape tuple `t`: every constant operand
  /// equal to a representative component becomes the corresponding
  /// component of `t`. Requires expr != null and matching arity.
  RaExprPtr Bind(const Tuple& t) const;
};

/// Compiles the Theorem 5.3 test for `t` and packages it as a reusable
/// template. Same applicability conditions as CompileRaLocalTest.
Result<RaPlanTemplate> CompileRaPlan(const Rule& rule,
                                     const std::string& local_pred,
                                     const Tuple& t);

}  // namespace ccpi

#endif  // CCPI_PLAN_RA_PLAN_H_
