#include "plan/update_signature.h"

#include <algorithm>
#include <set>

namespace ccpi {

std::string ShapeSignature(const Tuple& t,
                           const std::vector<Value>& constants) {
  std::string shape;
  shape.reserve(t.size() * 3);
  // Non-constant values in first-appearance order; a component's class id
  // is its value's index here.
  std::vector<Value> classes;
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) shape += '.';
    auto it = std::lower_bound(constants.begin(), constants.end(), t[i]);
    if (it != constants.end() && *it == t[i]) {
      shape += 'C';
      shape += std::to_string(it - constants.begin());
      continue;
    }
    size_t cls = 0;
    while (cls < classes.size() && !(classes[cls] == t[i])) ++cls;
    if (cls == classes.size()) classes.push_back(t[i]);
    shape += 'N';
    shape += std::to_string(cls);
  }
  return shape;
}

UpdateSignature MakeUpdateSignature(const Update& u,
                                    const std::vector<Value>& constants) {
  UpdateSignature sig;
  sig.pred = u.pred;
  sig.is_insert = u.kind == Update::Kind::kInsert;
  sig.shape = ShapeSignature(u.tuple, constants);
  return sig;
}

std::vector<Value> CollectProgramConstants(
    const std::vector<const Program*>& programs) {
  std::set<Value> out;
  auto add_term = [&](const Term& term) {
    if (term.is_const()) out.insert(term.constant());
  };
  for (const Program* p : programs) {
    for (const Rule& r : p->rules) {
      for (const Term& arg : r.head.args) add_term(arg);
      for (const Literal& l : r.body) {
        if (l.is_comparison()) {
          add_term(l.cmp.lhs);
          add_term(l.cmp.rhs);
        } else {
          for (const Term& arg : l.atom.args) add_term(arg);
        }
      }
    }
  }
  return std::vector<Value>(out.begin(), out.end());
}

bool SignatureSafe(const Program& program) {
  for (const Rule& r : program.rules) {
    for (const Literal& l : r.body) {
      if (l.is_comparison()) return false;
    }
  }
  return true;
}

}  // namespace ccpi
