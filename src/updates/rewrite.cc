#include "updates/rewrite.h"

#include <set>

#include "util/check.h"

namespace ccpi {

namespace {

/// A helper-predicate name not used by the program ("dept" -> "dept1").
std::string FreshPredicate(const Program& c, const std::string& base) {
  std::set<std::string> used = c.IdbPredicates();
  for (const std::string& p : c.EdbPredicates()) used.insert(p);
  std::string name = base + "1";
  while (used.count(name) > 0) name += "1";
  return name;
}

/// Renames every body occurrence of predicate `from` to `to`.
Program RenameBodyPredicate(const Program& c, const std::string& from,
                            const std::string& to) {
  Program out = c;
  for (Rule& r : out.rules) {
    for (Literal& l : r.body) {
      if (!l.is_comparison() && l.atom.pred == from) l.atom.pred = to;
    }
  }
  return out;
}

bool MentionsPredicate(const Program& c, const std::string& pred) {
  for (const Rule& r : c.rules) {
    for (const Literal& l : r.body) {
      if (!l.is_comparison() && l.atom.pred == pred) return true;
    }
  }
  return false;
}

Status CheckUpdate(const Program& c, const Update& u) {
  if (c.IdbPredicates().count(u.pred) > 0) {
    return Status::InvalidArgument(
        "updates apply to base (EDB) relations; " + u.pred +
        " is derived by the constraint program");
  }
  for (const Rule& r : c.rules) {
    for (const Literal& l : r.body) {
      if (!l.is_comparison() && l.atom.pred == u.pred &&
          l.atom.args.size() != u.tuple.size()) {
        return Status::InvalidArgument("update arity mismatch on " + u.pred);
      }
    }
  }
  return Status::OK();
}

/// Fresh variables V1..Vk for helper-rule heads.
std::vector<Term> HelperVars(size_t arity) {
  std::vector<Term> vars;
  vars.reserve(arity);
  for (size_t i = 0; i < arity; ++i) {
    vars.push_back(Term::Var("V" + std::to_string(i + 1)));
  }
  return vars;
}

}  // namespace

Result<Program> RewriteAfterInsert(const Program& c, const Update& u) {
  CCPI_CHECK(u.kind == Update::Kind::kInsert);
  CCPI_RETURN_IF_ERROR(CheckUpdate(c, u));
  if (!MentionsPredicate(c, u.pred)) return c;  // trivially unaffected

  std::string helper = FreshPredicate(c, u.pred);
  Program out = RenameBodyPredicate(c, u.pred, helper);

  // helper(V...) :- pred(V...)
  std::vector<Term> vars = HelperVars(u.tuple.size());
  Rule copy_rule;
  copy_rule.head = Atom{helper, vars};
  copy_rule.body.push_back(Literal::Positive(Atom{u.pred, vars}));
  out.rules.push_back(std::move(copy_rule));

  // helper(t)
  Rule fact;
  fact.head.pred = helper;
  fact.head.args.reserve(u.tuple.size());
  for (const Value& v : u.tuple) fact.head.args.push_back(Term::Const(v));
  out.rules.push_back(std::move(fact));
  return out;
}

Result<Program> RewriteAfterInsertInline(const Program& c, const Update& u) {
  CCPI_CHECK(u.kind == Update::Kind::kInsert);
  CCPI_RETURN_IF_ERROR(CheckUpdate(c, u));

  Program out;
  out.goal = c.goal;
  for (const Rule& rule : c.rules) {
    // Branch points: each positive occurrence chooses between the old
    // relation and the inserted tuple; each negated occurrence stays and
    // adds one "some component differs" disjunct choice.
    std::vector<std::vector<Literal>> bodies = {{}};
    for (const Literal& l : rule.body) {
      std::vector<std::vector<Literal>> extended;
      auto branch = [&](const std::vector<Literal>& additions) {
        for (const auto& body : bodies) {
          std::vector<Literal> next = body;
          next.insert(next.end(), additions.begin(), additions.end());
          extended.push_back(std::move(next));
        }
      };
      if (l.is_comparison() || l.atom.pred != u.pred) {
        branch({l});
      } else if (l.is_positive()) {
        // Old relation...
        branch({l});
        // ...or exactly the inserted tuple: args = t componentwise.
        std::vector<Literal> equalities;
        for (size_t i = 0; i < u.tuple.size(); ++i) {
          equalities.push_back(Literal::Cmp(Comparison{
              l.atom.args[i], CmpOp::kEq, Term::Const(u.tuple[i])}));
        }
        branch(equalities);
      } else {
        // not p1(args) = not p(args) AND NOT(args = t); the negated
        // conjunction branches over which component differs.
        std::vector<std::vector<Literal>> with_choice;
        for (size_t i = 0; i < u.tuple.size(); ++i) {
          for (const auto& body : bodies) {
            std::vector<Literal> next = body;
            next.push_back(l);
            next.push_back(Literal::Cmp(Comparison{
                l.atom.args[i], CmpOp::kNe, Term::Const(u.tuple[i])}));
            with_choice.push_back(std::move(next));
          }
        }
        if (u.tuple.empty()) {
          // 0-ary: not p1() is simply false after inserting (); drop all
          // branches of this rule.
          with_choice.clear();
        }
        extended = std::move(with_choice);
      }
      bodies = std::move(extended);
    }
    for (auto& body : bodies) {
      Rule r;
      r.head = rule.head;
      r.body = std::move(body);
      out.rules.push_back(std::move(r));
    }
  }
  return out;
}

Result<Program> RewriteAfterDelete(const Program& c, const Update& u,
                                   DeleteEncoding encoding) {
  CCPI_CHECK(u.kind == Update::Kind::kDelete);
  CCPI_RETURN_IF_ERROR(CheckUpdate(c, u));
  if (!MentionsPredicate(c, u.pred)) return c;

  std::string helper = FreshPredicate(c, u.pred);
  Program out = RenameBodyPredicate(c, u.pred, helper);
  std::vector<Term> vars = HelperVars(u.tuple.size());

  if (encoding == DeleteEncoding::kComparisons) {
    // One rule per component: a tuple survives the deletion iff it differs
    // from t somewhere (Example 4.2's emp1).
    for (size_t i = 0; i < u.tuple.size(); ++i) {
      Rule r;
      r.head = Atom{helper, vars};
      r.body.push_back(Literal::Positive(Atom{u.pred, vars}));
      r.body.push_back(Literal::Cmp(
          Comparison{vars[i], CmpOp::kNe, Term::Const(u.tuple[i])}));
      out.rules.push_back(std::move(r));
    }
    // A 0-ary predicate minus its only tuple is empty: no helper rules.
    return out;
  }

  // Negated-helper encoding ("isJones"): pred minus the deleted tuple.
  std::string marker = FreshPredicate(out, "isdel_" + u.pred);
  Rule r;
  r.head = Atom{helper, vars};
  r.body.push_back(Literal::Positive(Atom{u.pred, vars}));
  r.body.push_back(Literal::Negated(Atom{marker, vars}));
  out.rules.push_back(std::move(r));
  Rule fact;
  fact.head.pred = marker;
  fact.head.args.reserve(u.tuple.size());
  for (const Value& v : u.tuple) fact.head.args.push_back(Term::Const(v));
  out.rules.push_back(std::move(fact));
  return out;
}

Result<Program> RewriteAfterUpdate(const Program& c, const Update& u) {
  if (u.kind == Update::Kind::kInsert) return RewriteAfterInsert(c, u);
  return RewriteAfterDelete(c, u, DeleteEncoding::kComparisons);
}

Result<Program> RewriteAfterInsertBatch(const Program& c,
                                        const std::string& pred,
                                        const std::vector<Tuple>& tuples) {
  if (tuples.empty()) return c;
  for (const Tuple& t : tuples) {
    CCPI_RETURN_IF_ERROR(CheckUpdate(c, Update::Insert(pred, t)));
    if (t.size() != tuples[0].size()) {
      return Status::InvalidArgument("batch tuples must share an arity");
    }
  }
  if (!MentionsPredicate(c, pred)) return c;

  std::string helper = FreshPredicate(c, pred);
  Program out = RenameBodyPredicate(c, pred, helper);
  std::vector<Term> vars = HelperVars(tuples[0].size());
  Rule copy_rule;
  copy_rule.head = Atom{helper, vars};
  copy_rule.body.push_back(Literal::Positive(Atom{pred, vars}));
  out.rules.push_back(std::move(copy_rule));
  for (const Tuple& t : tuples) {
    Rule fact;
    fact.head.pred = helper;
    fact.head.args.reserve(t.size());
    for (const Value& v : t) fact.head.args.push_back(Term::Const(v));
    out.rules.push_back(std::move(fact));
  }
  return out;
}

Result<Program> RewriteAfterDeleteBatch(const Program& c,
                                        const std::string& pred,
                                        const std::vector<Tuple>& tuples,
                                        DeleteEncoding encoding) {
  if (tuples.empty()) return c;
  for (const Tuple& t : tuples) {
    CCPI_RETURN_IF_ERROR(CheckUpdate(c, Update::Delete(pred, t)));
    if (t.size() != tuples[0].size()) {
      return Status::InvalidArgument("batch tuples must share an arity");
    }
  }
  if (!MentionsPredicate(c, pred)) return c;

  std::string helper = FreshPredicate(c, pred);
  Program out = RenameBodyPredicate(c, pred, helper);
  std::vector<Term> vars = HelperVars(tuples[0].size());

  if (encoding == DeleteEncoding::kNegation) {
    std::string marker = FreshPredicate(out, "isdel_" + pred);
    Rule r;
    r.head = Atom{helper, vars};
    r.body.push_back(Literal::Positive(Atom{pred, vars}));
    r.body.push_back(Literal::Negated(Atom{marker, vars}));
    out.rules.push_back(std::move(r));
    for (const Tuple& t : tuples) {
      Rule fact;
      fact.head.pred = marker;
      fact.head.args.reserve(t.size());
      for (const Value& v : t) fact.head.args.push_back(Term::Const(v));
      out.rules.push_back(std::move(fact));
    }
    return out;
  }

  // Comparison encoding: a tuple survives iff it differs from EVERY
  // deleted tuple at some component — one helper rule per vector of
  // component choices (arity^|batch| rules in the worst case).
  size_t arity = tuples[0].size();
  if (arity == 0) return out;  // deleting the 0-ary tuple empties pred
  std::vector<size_t> choice(tuples.size(), 0);
  bool done = false;
  while (!done) {
    Rule r;
    r.head = Atom{helper, vars};
    r.body.push_back(Literal::Positive(Atom{pred, vars}));
    for (size_t j = 0; j < tuples.size(); ++j) {
      r.body.push_back(Literal::Cmp(Comparison{
          vars[choice[j]], CmpOp::kNe, Term::Const(tuples[j][choice[j]])}));
    }
    out.rules.push_back(std::move(r));
    done = true;
    for (size_t j = 0; j < choice.size(); ++j) {
      if (++choice[j] < arity) {
        done = false;
        break;
      }
      choice[j] = 0;
    }
  }
  return out;
}

}  // namespace ccpi
