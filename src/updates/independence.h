#ifndef CCPI_UPDATES_INDEPENDENCE_H_
#define CCPI_UPDATES_INDEPENDENCE_H_

#include <vector>

#include "datalog/ast.h"
#include "subsumption/program_containment.h"
#include "updates/update.h"
#include "util/status.h"

namespace ccpi {

/// The level-2 test of the paper's information hierarchy ("query
/// independent of update", Elkan [1990], Tompa and Blakeley [1988],
/// Levy and Sagiv [1993]): given that constraint `c` — and possibly the
/// `assumed` constraints — held before the update, is `c` guaranteed to
/// hold after it, looking at no data at all?
///
/// Method (Section 4, approach 1): build C' = RewriteAfterUpdate(c, u),
/// which holds before the update iff c holds after it, then test
/// C' contained in (c UNION assumed). kHolds means the update cannot
/// introduce a violation.
Result<ContainmentDecision> HoldsAfterUpdate(
    const Program& c, const Update& u,
    const std::vector<Program>& assumed = {});

}  // namespace ccpi

#endif  // CCPI_UPDATES_INDEPENDENCE_H_
