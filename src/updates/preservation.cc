#include "updates/preservation.h"

#include "datalog/parser.h"
#include "updates/rewrite.h"
#include "updates/update.h"
#include "util/check.h"

namespace ccpi {

namespace {

/// A worst-case representative of the class: the updated predicate p
/// occurs positively (negated-only occurrences would make some rewrites
/// easier than the class guarantees) with arity 2 (arity-1 deletions
/// collapse to a single inequality).
Result<Program> Representative(const LanguageClass& cls) {
  std::string text;
  std::string extras;
  if (cls.negation) extras += " & not s(X)";
  if (cls.arithmetic) extras += " & X < Y";
  switch (cls.shape) {
    case Shape::kSingleCQ:
      text = "panic :- p(X,Y) & q(Y,Z)" + extras + "\n";
      break;
    case Shape::kUnionCQ:
      text = "panic :- p(X,Y) & q(Y,Z)" + extras +
             "\n"
             "panic :- q(X,X)\n";
      break;
    case Shape::kRecursive:
      text =
          "panic :- t(X,X)\n"
          "t(X,Y) :- p(X,Y)" +
          extras +
          "\n"
          "t(X,Y) :- t(X,Z) & t(Z,Y)\n";
      break;
  }
  return ParseProgram(text);
}

struct Encoding {
  std::string name;
  Result<Program> (*rewrite)(const Program&, const Update&);
};

Result<Program> EncodeInsertHelper(const Program& c, const Update& u) {
  return RewriteAfterInsert(c, u);
}
Result<Program> EncodeInsertInline(const Program& c, const Update& u) {
  return RewriteAfterInsertInline(c, u);
}
Result<Program> EncodeDeleteComparisons(const Program& c, const Update& u) {
  return RewriteAfterDelete(c, u, DeleteEncoding::kComparisons);
}
Result<Program> EncodeDeleteNegation(const Program& c, const Update& u) {
  return RewriteAfterDelete(c, u, DeleteEncoding::kNegation);
}

Result<std::vector<PreservationCell>> Compute(
    const Update& u, const std::vector<Encoding>& encodings,
    const std::string& impossibility_note) {
  std::vector<PreservationCell> cells;
  for (const LanguageClass& cls : AllLanguageClasses()) {
    CCPI_ASSIGN_OR_RETURN(Program rep, Representative(cls));
    PreservationCell cell;
    cell.cls = cls;
    cell.representative = rep.ToString();
    LanguageClass best;
    bool have_best = false;
    for (const Encoding& enc : encodings) {
      CCPI_ASSIGN_OR_RETURN(Program rewritten, enc.rewrite(rep, u));
      // Class membership is syntactic — nonrecursive datalog IS the
      // union-of-CQs class (Sagiv–Yannakakis) — refined by the unfolded
      // ExpressibleClass, which can collapse helper predicates back into a
      // single CQ.
      for (LanguageClass achieved :
           {SyntacticClass(rewritten), ExpressibleClass(rewritten)}) {
        if (!have_best || LanguageClassLeq(achieved, best)) {
          best = achieved;
          have_best = true;
        }
        if (LanguageClassLeq(achieved, cls)) {
          cell.preserved = true;
          cell.achieved_class = achieved.ToString();
          cell.note = "via " + enc.name;
          break;
        }
      }
      if (cell.preserved) break;
    }
    if (!cell.preserved) {
      cell.achieved_class = have_best ? best.ToString() : "-";
      cell.note = impossibility_note;
    }
    cells.push_back(std::move(cell));
  }
  return cells;
}

}  // namespace

Result<std::vector<PreservationCell>> ComputeInsertionPreservation() {
  Update u = Update::Insert("p", {V(7), V(8)});
  return Compute(
      u,
      {{"helper-predicate rules (Theorem 4.2)", &EncodeInsertHelper},
       {"inline branching (Example 4.1)", &EncodeInsertInline}},
      "not expressible in class: a positive occurrence of the updated "
      "predicate forces a genuine union (Theorem 4.1 proves arithmetic or "
      "extra rules unavoidable even with negation)");
}

Result<std::vector<PreservationCell>> ComputeDeletionPreservation() {
  Update u = Update::Delete("p", {V(7), V(8)});
  return Compute(
      u,
      {{"componentwise <> rules (Example 4.2)", &EncodeDeleteComparisons},
       {"negated marker predicate (isJones trick)", &EncodeDeleteNegation}},
      "not expressible in class: reflecting a deletion needs <> or "
      "negation (Theorem 4.3); monotone classes cannot express it");
}

std::string RenderPreservationTable(const std::vector<PreservationCell>& cells,
                                    const std::string& title) {
  std::string out = title + "\n";
  out += "  class              preserved  achieved-as        encoding/why\n";
  for (const PreservationCell& cell : cells) {
    std::string name = cell.cls.ToString();
    name.resize(19, ' ');
    std::string mark = cell.preserved ? "( YES )" : "  no   ";
    std::string achieved = cell.achieved_class;
    achieved.resize(18, ' ');
    out += "  " + name + mark + "    " + achieved + " " + cell.note + "\n";
  }
  return out;
}

}  // namespace ccpi
