#ifndef CCPI_UPDATES_PRESERVATION_H_
#define CCPI_UPDATES_PRESERVATION_H_

#include <string>
#include <vector>

#include "datalog/language_class.h"
#include "util/status.h"

namespace ccpi {

/// One cell of Fig 4.1 / Fig 4.2, computed rather than transcribed: a
/// worst-case representative constraint of the class is rewritten with
/// every encoding the library has, and the cell is "preserved" (circled)
/// iff some encoding lands back inside the class.
struct PreservationCell {
  LanguageClass cls;
  bool preserved = false;
  /// The representative constraint exercised.
  std::string representative;
  /// The class of the best (smallest) rewriting achieved.
  std::string achieved_class;
  /// Which encoding achieved it, or why none can (Theorem 4.1 /
  /// monotonicity for the uncircled cells).
  std::string note;
};

/// Fig 4.1 — classes preserved under insertion. The paper circles the
/// eight union-of-CQ and recursive classes; the four single-CQ classes are
/// not preserved (Theorem 4.1 proves one instance exactly).
Result<std::vector<PreservationCell>> ComputeInsertionPreservation();

/// Fig 4.2 — classes preserved under deletion. The paper circles the six
/// union/recursive classes having negation or arithmetic (Theorem 4.3).
Result<std::vector<PreservationCell>> ComputeDeletionPreservation();

/// ASCII rendering of a computed matrix in the layout of the paper's
/// figures (used by bench_fig4_preservation and the docs).
std::string RenderPreservationTable(const std::vector<PreservationCell>& cells,
                                    const std::string& title);

}  // namespace ccpi

#endif  // CCPI_UPDATES_PRESERVATION_H_
