#ifndef CCPI_UPDATES_REWRITE_H_
#define CCPI_UPDATES_REWRITE_H_

#include "datalog/ast.h"
#include "updates/update.h"
#include "util/status.h"

namespace ccpi {

/// How a deletion is reflected in the rewritten constraint (Example 4.2
/// presents both encodings).
enum class DeleteEncoding {
  /// One rule per tuple component using <>:
  ///   emp1(E,D,S) :- emp(E,D,S) & E <> jones
  ///   emp1(E,D,S) :- emp(E,D,S) & D <> shoe
  ///   emp1(E,D,S) :- emp(E,D,S) & S <> 50
  kComparisons,
  /// A negated helper predicate instead of arithmetic ("a similar trick
  /// that uses negated subgoals"):
  ///   emp1(E,D,S) :- emp(E,D,S) & not isdel_emp(E,D,S)
  ///   isdel_emp(jones, shoe, 50)
  kNegation,
};

/// Constructs C' such that C' holds on the database BEFORE the update iff C
/// holds AFTER it (Section 4, "Rewriting Constraints to Reflect Updates").
///
/// Insertion uses the Theorem 4.2 helper-predicate encoding from
/// Example 4.1:
///   dept1(D) :- dept(D)
///   dept1(toy)
/// with every occurrence of the updated predicate renamed to the helper.
/// This stays within any class that permits adding nonrecursive rules — the
/// eight circled classes of Fig 4.1.
Result<Program> RewriteAfterInsert(const Program& c, const Update& u);

/// The inline insertion encoding (no helper predicates): each occurrence of
/// the updated predicate branches between "the old relation" and "the
/// inserted tuple". A positive occurrence p(args) splits the rule in two;
/// a negated occurrence becomes  not p(args) & NOT(args = t), the
/// single-rule `D <> toy` form of Example 4.1. Theorem 4.1 proves the
/// resulting arithmetic (or extra disjuncts) cannot be avoided.
Result<Program> RewriteAfterInsertInline(const Program& c, const Update& u);

/// Constructs C' reflecting a deletion (Theorem 4.3: only the six circled
/// classes of Fig 4.2 — unions/recursive with negation or arithmetic — can
/// absorb this rewrite).
Result<Program> RewriteAfterDelete(const Program& c, const Update& u,
                                   DeleteEncoding encoding);

/// Dispatches on the update kind; deletions use the comparison encoding.
Result<Program> RewriteAfterUpdate(const Program& c, const Update& u);

/// Batch generalization of Theorem 4.2: reflects the insertion of a whole
/// set of tuples into `pred` with one helper predicate carrying one fact
/// per tuple — the encoding "any language that allows us to add rules"
/// absorbs verbatim. C' holds before the batch iff C holds after all of
/// it is applied.
Result<Program> RewriteAfterInsertBatch(const Program& c,
                                        const std::string& pred,
                                        const std::vector<Tuple>& tuples);

/// Batch deletion via the componentwise <> encoding: a tuple survives iff
/// it differs from EVERY deleted tuple somewhere, so the helper is defined
/// by the product of per-tuple difference choices, materialized as one
/// rule per choice vector (exponential in the batch in the worst case —
/// prefer the negated-marker form below for large batches).
Result<Program> RewriteAfterDeleteBatch(const Program& c,
                                        const std::string& pred,
                                        const std::vector<Tuple>& tuples,
                                        DeleteEncoding encoding);

}  // namespace ccpi

#endif  // CCPI_UPDATES_REWRITE_H_
