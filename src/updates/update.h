#ifndef CCPI_UPDATES_UPDATE_H_
#define CCPI_UPDATES_UPDATE_H_

#include <string>

#include "relational/database.h"
#include "relational/tuple.h"
#include "util/status.h"

namespace ccpi {

/// A single-tuple update — the paper's update model throughout Section 4
/// ("toy is added to the set of departments"; "we delete the tuple
/// (jones, shoe, 50) from the emp relation").
struct Update {
  enum class Kind { kInsert, kDelete };

  static Update Insert(std::string pred, Tuple t) {
    return Update{Kind::kInsert, std::move(pred), std::move(t)};
  }
  static Update Delete(std::string pred, Tuple t) {
    return Update{Kind::kDelete, std::move(pred), std::move(t)};
  }

  Kind kind = Kind::kInsert;
  std::string pred;
  Tuple tuple;

  /// Applies the update to `db`.
  Status ApplyTo(Database* db) const {
    if (kind == Kind::kInsert) return db->Insert(pred, tuple);
    return db->Erase(pred, tuple);
  }

  std::string ToString() const {
    return (kind == Kind::kInsert ? std::string("+") : std::string("-")) +
           pred + TupleToString(tuple);
  }
};

}  // namespace ccpi

#endif  // CCPI_UPDATES_UPDATE_H_
