#include "updates/independence.h"

#include "updates/rewrite.h"

namespace ccpi {

Result<ContainmentDecision> HoldsAfterUpdate(
    const Program& c, const Update& u,
    const std::vector<Program>& assumed) {
  CCPI_ASSIGN_OR_RETURN(Program rewritten, RewriteAfterUpdate(c, u));
  std::vector<Program> rhs;
  rhs.reserve(assumed.size() + 1);
  rhs.push_back(c);
  for (const Program& a : assumed) rhs.push_back(a);
  return ProgramContainedInUnion(rewritten, rhs);
}

}  // namespace ccpi
