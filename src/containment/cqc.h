#ifndef CCPI_CONTAINMENT_CQC_H_
#define CCPI_CONTAINMENT_CQC_H_

#include <optional>
#include <vector>

#include "arith/solver.h"
#include "datalog/cq.h"
#include "util/status.h"

namespace ccpi {

/// Verifies the preconditions of Theorem 5.1 on one side of a containment:
/// no negated subgoals, no variable repeated among the ordinary subgoals,
/// no constants in ordinary subgoals, and every comparison variable bound
/// by an ordinary subgoal. (Section 5 lists these; core/cqc_form.h rewrites
/// arbitrary CQs into this shape by introducing equality comparisons.)
Status CheckTheorem51Form(const CQ& q);

/// Theorem 5.1: c1 is contained in c2 iff the set H of containment mappings
/// from O(c2) to O(c1) satisfies  A(c1) => OR_{h in H} h(A(c2)).
/// Exact for CQCs in Theorem 5.1 form (checked; InvalidArgument otherwise).
/// Note the empty-H boundary: the empty disjunction is false, so
/// containment then holds only if A(c1) is unsatisfiable.
Result<bool> CqcContained(const CQ& c1, const CQ& c2);

/// The union generalization stated after Theorem 5.1: containment mappings
/// from ANY member of `u2` contribute their obligation to the disjunction.
/// This is what the complete local test of Theorem 5.2 runs on, and where
/// plain per-disjunct union containment would be incomplete (Example 5.3).
Result<bool> CqcContainedInUnion(const CQ& c1, const UCQ& u2);

/// Like CqcContainedInUnion but, when containment FAILS, also returns the
/// refuting conjunction: A(c1) plus one negated mapped comparison per
/// mapping, jointly satisfiable. A model of it instantiates O(c1) into a
/// canonical database on which c1 fires and no member of u2 does — the
/// completeness witness of the "only if" direction of the proof.
/// Returns nullopt when containment holds.
Result<std::optional<arith::Conjunction>> CqcRefutation(const CQ& c1,
                                                        const UCQ& u2);

/// Relaxed variant used by the program-containment dispatcher on general
/// unfolded disjuncts. Structural preconditions (no negation, no repeated
/// variables or constants in ordinary subgoals) still apply to both sides,
/// but comparison variables bound only by the head are allowed, and a
/// member of `u2` may even have comparison variables bound by nothing —
/// in that case the test degrades from a decision procedure to a sound
/// test and `*exact` is set to false (a true answer is always correct; a
/// false answer then means "could not prove").
Result<bool> CqcContainedInUnionRelaxed(const CQ& c1, const UCQ& u2,
                                        bool* exact);

/// The number of containment mappings examined by CqcContainedInUnion for
/// this instance — the quantity the paper argues stays small in practice
/// ("few repetitions of the same predicate"). Exposed for the Theorem 5.1
/// vs. Klug benchmark.
Result<size_t> CountMappings(const CQ& c1, const UCQ& u2);

}  // namespace ccpi

#endif  // CCPI_CONTAINMENT_CQC_H_
