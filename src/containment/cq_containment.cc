#include "containment/cq_containment.h"

#include "arith/solver.h"
#include "containment/mapping.h"

namespace ccpi {

namespace {

Status RequireArithFree(const CQ& q, const char* role) {
  if (q.HasArithmetic()) {
    return Status::InvalidArgument(std::string(role) +
                                   " has arithmetic comparisons; use the "
                                   "CQC containment test (Theorem 5.1)");
  }
  return Status::OK();
}

Status RequireNegFree(const CQ& q, const char* role) {
  if (q.HasNegation()) {
    return Status::InvalidArgument(std::string(role) +
                                   " has negated subgoals; use "
                                   "UniformContained or the exact oracle");
  }
  return Status::OK();
}

/// The arithmetic obligations h(A(q2)) for all mappings h of the given
/// queries, appended to `disjuncts`.
void CollectObligations(const CQ& q1, const CQ& q2, bool map_negated,
                        std::vector<arith::Conjunction>* disjuncts) {
  MappingOptions options;
  options.map_negated = map_negated;
  for (const Substitution& h : EnumerateContainmentMappings(q2, q1, options)) {
    arith::Conjunction mapped;
    mapped.reserve(q2.comparisons.size());
    for (const Comparison& c : q2.comparisons) {
      mapped.push_back(Apply(h, c));
    }
    disjuncts->push_back(std::move(mapped));
  }
}

}  // namespace

Result<bool> CqContained(const CQ& q1, const CQ& q2) {
  CCPI_RETURN_IF_ERROR(RequireArithFree(q1, "q1"));
  CCPI_RETURN_IF_ERROR(RequireArithFree(q2, "q2"));
  CCPI_RETURN_IF_ERROR(RequireNegFree(q1, "q1"));
  CCPI_RETURN_IF_ERROR(RequireNegFree(q2, "q2"));
  return HasContainmentMapping(q2, q1);
}

Result<bool> UcqContained(const UCQ& u1, const UCQ& u2) {
  for (const CQ& q1 : u1) {
    bool found = false;
    for (const CQ& q2 : u2) {
      CCPI_ASSIGN_OR_RETURN(bool contained, CqContained(q1, q2));
      if (contained) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

Result<Outcome> UniformContained(const CQ& q1, const CQ& q2) {
  return UniformContainedInUnion(q1, UCQ{q2});
}

Result<Outcome> UniformContainedInUnion(const CQ& q1, const UCQ& u2) {
  arith::Conjunction premise = q1.comparisons;
  std::vector<arith::Conjunction> disjuncts;
  for (const CQ& q2 : u2) {
    CollectObligations(q1, q2, /*map_negated=*/true, &disjuncts);
  }
  if (arith::Implies(premise, disjuncts)) return Outcome::kHolds;
  return Outcome::kUnknown;
}

}  // namespace ccpi
