#ifndef CCPI_CONTAINMENT_EXACT_H_
#define CCPI_CONTAINMENT_EXACT_H_

#include "datalog/cq.h"
#include "util/status.h"

namespace ccpi {

/// Resource limits for the exact oracle (it is doubly exponential in the
/// worst case; the limits turn pathological instances into Unsupported
/// rather than runaway computation).
struct ExactLimits {
  size_t max_universe = 12;          // equivalence classes per linearization
  size_t max_sat_variables = 4096;   // optional tuples
  size_t max_clauses = 2000000;      // instantiations of u2 members
};

/// Exact containment for unions of conjunctive queries with safe negated
/// subgoals AND arithmetic comparisons — the most general decidable
/// fragment of Fig 2.1 (nonrecursive). This is the library's ground-truth
/// oracle: Theorem 5.1, the Klug baseline, uniform containment, and the
/// complete local tests are all property-tested against it.
///
/// Method (small-model argument): a counterexample database can be
/// restricted to the universe of one instantiation of a disjunct of u1 plus
/// the constants of both sides. For each disjunct q1 and each linearization
/// of its variables and the constants consistent with A(q1), the candidate
/// databases are the supersets of q1's frozen positive subgoals avoiding
/// its frozen negated subgoals; whether u2 fires on ALL of them is decided
/// as a SAT problem over the optional tuples (one clause per satisfying
/// instantiation of each member of u2, solved by DPLL with unit
/// propagation). Containment holds iff no (disjunct, linearization) admits
/// a satisfying assignment.
///
/// Unlike Theorem 5.1, constants and repeated variables in ordinary
/// subgoals are allowed here.
Result<bool> ExactUcqContained(const UCQ& u1, const UCQ& u2,
                               const ExactLimits& limits = {});

Result<bool> ExactCqContained(const CQ& q1, const CQ& q2,
                              const ExactLimits& limits = {});

}  // namespace ccpi

#endif  // CCPI_CONTAINMENT_EXACT_H_
