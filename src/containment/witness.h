#ifndef CCPI_CONTAINMENT_WITNESS_H_
#define CCPI_CONTAINMENT_WITNESS_H_

#include <optional>

#include "arith/solver.h"
#include "datalog/cq.h"
#include "relational/database.h"
#include "util/status.h"

namespace ccpi {

/// Materializes the canonical database of the "only if" direction of
/// Theorem 5.1: given c1 (in Theorem 5.1 form) and a refuting conjunction
/// from CqcRefutation, finds a concrete model of the refutation and
/// instantiates c1's ordinary subgoals with it. On the resulting database
/// c1 produces its goal while no member of the refuted union does — this is
/// the "state of the information not accessed by the test for which the
/// constraint ceases to hold" that makes local tests *complete*.
///
/// Variables of c1 not mentioned in the refutation are given fresh,
/// pairwise-distinct integer values (their order is unconstrained).
/// Returns nullopt when no integer-realizable model exists (the refutation
/// may only be satisfiable strictly between adjacent integer constants;
/// the dense-domain semantics is discussed in DESIGN.md).
std::optional<Database> BuildCanonicalDatabase(
    const CQ& c1, const arith::Conjunction& refutation);

}  // namespace ccpi

#endif  // CCPI_CONTAINMENT_WITNESS_H_
