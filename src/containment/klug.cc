#include "containment/klug.h"

#include <set>

#include "containment/cqc.h"
#include "containment/linearize.h"
#include "eval/engine.h"
#include "relational/database.h"
#include "util/check.h"

namespace ccpi {

namespace {

/// Replaces the constants of a comparison by their linearization rank so
/// the query can be evaluated over the canonical (rank-valued) database.
Comparison RankComparison(const Comparison& c, const Linearization& lin) {
  auto conv = [&](const Term& t) {
    if (t.is_const()) return Term::Const(Value(lin.RankOf(t)));
    return t;
  };
  return Comparison{conv(c.lhs), c.op, conv(c.rhs)};
}

/// True iff `c2` produces the goal tuple `expected` on the canonical
/// database of `lin` built from c1's ordinary subgoals. For constraints the
/// head is 0-ary and `expected` is the empty tuple.
bool FiresOnCanonical(const CQ& c2, const Database& canonical,
                      const Linearization& lin, const Tuple& expected) {
  CQ ranked = c2;
  for (Comparison& c : ranked.comparisons) c = RankComparison(c, lin);
  Program program;
  program.rules.push_back(ranked.ToRule());
  program.goal = ranked.head.pred;
  Result<Relation> goal = EvaluateGoal(program, canonical);
  CCPI_CHECK(goal.ok());
  return goal->Contains(expected);
}

}  // namespace

Result<bool> KlugContainedInUnion(const CQ& c1, const UCQ& u2,
                                  KlugStats* stats) {
  CCPI_RETURN_IF_ERROR(CheckTheorem51Form(c1));
  for (const CQ& c2 : u2) {
    CCPI_RETURN_IF_ERROR(CheckTheorem51Form(c2));
    if (c2.head.pred != c1.head.pred ||
        c2.head.args.size() != c1.head.args.size()) {
      return Status::InvalidArgument("head predicates must agree");
    }
  }

  // Elements: c1's variables plus every constant either side compares with.
  std::vector<std::string> vars = c1.Variables();
  std::vector<Value> constants;
  auto collect_consts = [&constants](const arith::Conjunction& conj) {
    for (const Comparison& c : conj) {
      if (c.lhs.is_const()) constants.push_back(c.lhs.constant());
      if (c.rhs.is_const()) constants.push_back(c.rhs.constant());
    }
  };
  collect_consts(c1.comparisons);
  for (const CQ& c2 : u2) collect_consts(c2.comparisons);

  bool contained = true;
  EnumerateLinearizations(
      vars, constants, c1.comparisons, [&](const Linearization& lin) {
        if (stats != nullptr) ++stats->linearizations;
        // Canonical database: c1's ordinary subgoals with every term
        // replaced by its rank.
        Database canonical;
        for (const Atom& a : c1.positives) {
          Tuple t;
          t.reserve(a.args.size());
          for (const Term& arg : a.args) t.push_back(Value(lin.RankOf(arg)));
          Status st = canonical.Insert(a.pred, std::move(t));
          CCPI_CHECK(st.ok());
        }
        Tuple expected;
        expected.reserve(c1.head.args.size());
        for (const Term& arg : c1.head.args) {
          expected.push_back(Value(lin.RankOf(arg)));
        }
        for (const CQ& c2 : u2) {
          if (FiresOnCanonical(c2, canonical, lin, expected)) {
            return true;  // this linearization is covered; next one
          }
        }
        contained = false;  // counterexample linearization found
        return false;       // stop enumeration
      });
  return contained;
}

Result<bool> KlugContained(const CQ& c1, const CQ& c2, KlugStats* stats) {
  return KlugContainedInUnion(c1, UCQ{c2}, stats);
}

}  // namespace ccpi
