#include "containment/exact.h"

#include <map>
#include <set>
#include <vector>

#include "containment/linearize.h"
#include "util/check.h"

namespace ccpi {

namespace {

/// A ground fact over the rank universe.
using Fact = std::pair<std::string, std::vector<int>>;

/// Plain DPLL with unit propagation. Literals are +-(var+1). Small
/// instances only; the oracle's limits keep it that way.
class DpllSolver {
 public:
  DpllSolver(size_t num_vars, std::vector<std::vector<int>> clauses)
      : assign_(num_vars, -1), clauses_(std::move(clauses)) {}

  bool Solve() { return Search(); }

 private:
  // Returns 1 (satisfied), 0 (falsified), -1 (undecided) for a literal.
  int LitValue(int lit) const {
    int var = std::abs(lit) - 1;
    if (assign_[static_cast<size_t>(var)] == -1) return -1;
    bool val = assign_[static_cast<size_t>(var)] == 1;
    return (lit > 0) == val ? 1 : 0;
  }

  /// Unit-propagates; returns false on conflict. Appends assigned vars to
  /// `trail` for backtracking.
  bool Propagate(std::vector<int>* trail) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const std::vector<int>& clause : clauses_) {
        int undecided = 0;
        int unit_lit = 0;
        bool satisfied = false;
        for (int lit : clause) {
          int v = LitValue(lit);
          if (v == 1) {
            satisfied = true;
            break;
          }
          if (v == -1) {
            ++undecided;
            unit_lit = lit;
          }
        }
        if (satisfied) continue;
        if (undecided == 0) return false;  // conflict
        if (undecided == 1) {
          int var = std::abs(unit_lit) - 1;
          assign_[static_cast<size_t>(var)] = unit_lit > 0 ? 1 : 0;
          trail->push_back(var);
          changed = true;
        }
      }
    }
    return true;
  }

  bool Search() {
    std::vector<int> trail;
    if (!Propagate(&trail)) {
      Undo(trail);
      return false;
    }
    // Pick the first unassigned variable of an unsatisfied clause.
    int branch_var = -1;
    for (const std::vector<int>& clause : clauses_) {
      bool satisfied = false;
      int candidate = -1;
      for (int lit : clause) {
        int v = LitValue(lit);
        if (v == 1) {
          satisfied = true;
          break;
        }
        if (v == -1 && candidate == -1) candidate = std::abs(lit) - 1;
      }
      if (!satisfied && candidate != -1) {
        branch_var = candidate;
        break;
      }
    }
    if (branch_var == -1) {
      Undo(trail);
      return true;  // every clause satisfied
    }
    // Most literals are negative (absences of u2's positive subgoals), so
    // try "tuple absent" first.
    for (int value : {0, 1}) {
      assign_[static_cast<size_t>(branch_var)] = value;
      if (Search()) {
        Undo(trail);
        assign_[static_cast<size_t>(branch_var)] = -1;
        return true;
      }
    }
    assign_[static_cast<size_t>(branch_var)] = -1;
    Undo(trail);
    return false;
  }

  void Undo(const std::vector<int>& trail) {
    for (int var : trail) assign_[static_cast<size_t>(var)] = -1;
  }

  std::vector<int8_t> assign_;
  std::vector<std::vector<int>> clauses_;
};

void CollectConstants(const CQ& q, std::vector<Value>* out) {
  auto from_atom = [out](const Atom& a) {
    for (const Term& t : a.args) {
      if (t.is_const()) out->push_back(t.constant());
    }
  };
  from_atom(q.head);
  for (const Atom& a : q.positives) from_atom(a);
  for (const Atom& a : q.negatives) from_atom(a);
  for (const Comparison& c : q.comparisons) {
    if (c.lhs.is_const()) out->push_back(c.lhs.constant());
    if (c.rhs.is_const()) out->push_back(c.rhs.constant());
  }
}

Status CollectArities(const CQ& q, std::map<std::string, size_t>* arities) {
  auto add = [arities](const Atom& a) -> Status {
    auto [it, inserted] = arities->emplace(a.pred, a.args.size());
    if (!inserted && it->second != a.args.size()) {
      return Status::InvalidArgument("predicate " + a.pred +
                                     " used with two arities");
    }
    return Status::OK();
  };
  for (const Atom& a : q.positives) CCPI_RETURN_IF_ERROR(add(a));
  for (const Atom& a : q.negatives) CCPI_RETURN_IF_ERROR(add(a));
  return Status::OK();
}

std::vector<int> FreezeArgs(const Atom& a, const Linearization& lin,
                            const std::map<std::string, int>& var_rank) {
  std::vector<int> out;
  out.reserve(a.args.size());
  for (const Term& t : a.args) {
    if (t.is_const()) {
      out.push_back(lin.RankOf(t));
    } else {
      out.push_back(var_rank.at(t.var()));
    }
  }
  return out;
}

/// One (disjunct, linearization) check: true if a counterexample database
/// exists under this linearization.
Result<bool> CounterexampleUnderLinearization(
    const CQ& q1, const UCQ& u2, const Linearization& lin,
    const std::map<std::string, size_t>& arities, const ExactLimits& limits) {
  size_t universe = static_cast<size_t>(lin.num_classes);
  if (universe > limits.max_universe) {
    return Status::Unsupported("exact oracle: universe too large");
  }

  // Frozen facts of q1 (must be present) and frozen negated subgoals
  // (must be absent).
  std::set<Fact> present;
  std::set<Fact> absent;
  for (const Atom& a : q1.positives) {
    present.insert({a.pred, FreezeArgs(a, lin, lin.rank_of_var)});
  }
  for (const Atom& a : q1.negatives) {
    absent.insert({a.pred, FreezeArgs(a, lin, lin.rank_of_var)});
  }
  for (const Fact& f : absent) {
    if (present.count(f) > 0) return false;  // q1 cannot fire here
  }
  std::vector<int> goal = FreezeArgs(q1.head, lin, lin.rank_of_var);

  // SAT variables: every optional tuple over the universe.
  std::map<Fact, int> var_of;
  size_t num_vars = 0;
  for (const auto& [pred, arity] : arities) {
    size_t count = 1;
    for (size_t i = 0; i < arity; ++i) count *= universe;
    if (num_vars + count > limits.max_sat_variables) {
      return Status::Unsupported("exact oracle: too many optional tuples");
    }
    std::vector<int> tuple(arity, 0);
    for (size_t n = 0; n < count; ++n) {
      size_t rem = n;
      for (size_t i = 0; i < arity; ++i) {
        tuple[i] = static_cast<int>(rem % universe);
        rem /= universe;
      }
      Fact f{pred, tuple};
      if (present.count(f) == 0 && absent.count(f) == 0) {
        var_of.emplace(std::move(f), static_cast<int>(num_vars++));
      }
    }
  }

  // Clauses: NOT (this instantiation of this member fires with goal tuple).
  std::vector<std::vector<int>> clauses;
  size_t assignments_tried = 0;
  for (const CQ& q2 : u2) {
    if (q2.head.pred != q1.head.pred ||
        q2.head.args.size() != q1.head.args.size()) {
      continue;  // can never produce q1's goal tuple
    }
    std::vector<std::string> vars2 = q2.Variables();
    size_t n2 = vars2.size();
    // A member with variables has no instantiations over an empty universe
    // (which arises when q1 is ground/empty-bodied and neither side mentions
    // a constant), so it contributes no clauses; entering the enumeration
    // anyway would build facts with rank 0 that the tuple table cannot hold.
    if (universe == 0 && n2 > 0) continue;
    std::vector<size_t> counter(n2, 0);
    bool overflow = false;
    while (!overflow) {
      if (++assignments_tried > limits.max_clauses) {
        return Status::Unsupported("exact oracle: too many instantiations");
      }
      std::map<std::string, int> var_rank;
      for (size_t i = 0; i < n2; ++i) {
        var_rank[vars2[i]] = static_cast<int>(counter[i]);
      }
      // Check comparisons and goal-tuple agreement under the rank order.
      auto rank_of_term = [&](const Term& t) {
        return t.is_const() ? lin.RankOf(t) : var_rank.at(t.var());
      };
      bool feasible = true;
      for (const Comparison& c : q2.comparisons) {
        int a = rank_of_term(c.lhs);
        int b = rank_of_term(c.rhs);
        bool ok = false;
        switch (c.op) {
          case CmpOp::kLt:
            ok = a < b;
            break;
          case CmpOp::kLe:
            ok = a <= b;
            break;
          case CmpOp::kGt:
            ok = a > b;
            break;
          case CmpOp::kGe:
            ok = a >= b;
            break;
          case CmpOp::kEq:
            ok = a == b;
            break;
          case CmpOp::kNe:
            ok = a != b;
            break;
        }
        if (!ok) {
          feasible = false;
          break;
        }
      }
      if (feasible && FreezeArgs(q2.head, lin, var_rank) != goal) {
        feasible = false;
      }
      if (feasible) {
        std::vector<int> clause;
        bool clause_true = false;
        for (const Atom& a : q2.positives) {
          Fact f{a.pred, FreezeArgs(a, lin, var_rank)};
          if (absent.count(f) > 0) {
            clause_true = true;  // this instantiation can never fire
            break;
          }
          if (present.count(f) > 0) continue;  // literal always false
          clause.push_back(-(var_of.at(f) + 1));
        }
        if (!clause_true) {
          for (const Atom& a : q2.negatives) {
            Fact f{a.pred, FreezeArgs(a, lin, var_rank)};
            if (present.count(f) > 0) {
              clause_true = true;
              break;
            }
            if (absent.count(f) > 0) continue;
            clause.push_back(var_of.at(f) + 1);
          }
        }
        if (!clause_true) {
          if (clause.empty()) {
            // u2 fires on every candidate database: no counterexample.
            return false;
          }
          clauses.push_back(std::move(clause));
        }
      }
      // Advance the mixed-radix counter over q2's variables.
      overflow = true;
      for (size_t i = 0; i < n2; ++i) {
        if (++counter[i] < universe) {
          overflow = false;
          break;
        }
        counter[i] = 0;
      }
    }
  }

  DpllSolver solver(num_vars, std::move(clauses));
  return solver.Solve();
}

}  // namespace

Result<bool> ExactUcqContained(const UCQ& u1, const UCQ& u2,
                               const ExactLimits& limits) {
  for (const CQ& q1 : u1) {
    std::map<std::string, size_t> arities;
    CCPI_RETURN_IF_ERROR(CollectArities(q1, &arities));
    for (const CQ& q2 : u2) CCPI_RETURN_IF_ERROR(CollectArities(q2, &arities));

    std::vector<std::string> vars = q1.Variables();
    std::vector<Value> constants;
    CollectConstants(q1, &constants);
    for (const CQ& q2 : u2) CollectConstants(q2, &constants);

    bool contained = true;
    Status failure = Status::OK();
    EnumerateLinearizations(
        vars, constants, q1.comparisons, [&](const Linearization& lin) {
          Result<bool> counterexample =
              CounterexampleUnderLinearization(q1, u2, lin, arities, limits);
          if (!counterexample.ok()) {
            failure = counterexample.status();
            return false;
          }
          if (*counterexample) {
            contained = false;
            return false;
          }
          return true;
        });
    CCPI_RETURN_IF_ERROR(failure);
    if (!contained) return false;
  }
  return true;
}

Result<bool> ExactCqContained(const CQ& q1, const CQ& q2,
                              const ExactLimits& limits) {
  return ExactUcqContained(UCQ{q1}, UCQ{q2}, limits);
}

}  // namespace ccpi
