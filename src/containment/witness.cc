#include "containment/witness.h"

#include <algorithm>

#include "util/check.h"

namespace ccpi {

std::optional<Database> BuildCanonicalDatabase(
    const CQ& c1, const arith::Conjunction& refutation) {
  std::optional<std::map<std::string, Value>> model =
      arith::FindModel(refutation);
  if (!model.has_value()) return std::nullopt;

  // Assign fresh distinct integers to variables the refutation leaves
  // unconstrained; any extension of the model preserves the refutation.
  int64_t fresh = 0;
  for (const auto& [var, value] : *model) {
    (void)var;
    if (value.is_int()) fresh = std::max(fresh, value.AsInt());
  }
  for (const Comparison& c : refutation) {
    for (const Term* t : {&c.lhs, &c.rhs}) {
      if (t->is_const() && t->constant().is_int()) {
        fresh = std::max(fresh, t->constant().AsInt());
      }
    }
  }
  ++fresh;
  for (const std::string& v : c1.Variables()) {
    if (model->count(v) == 0) (*model)[v] = Value(fresh++);
  }

  Database db;
  for (const Atom& a : c1.positives) {
    Tuple t;
    t.reserve(a.args.size());
    for (const Term& arg : a.args) {
      // Theorem 5.1 form: ordinary subgoals contain variables only.
      CCPI_CHECK(arg.is_var());
      t.push_back(model->at(arg.var()));
    }
    Status st = db.Insert(a.pred, std::move(t));
    CCPI_CHECK(st.ok());
  }
  return db;
}

}  // namespace ccpi
