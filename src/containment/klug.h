#ifndef CCPI_CONTAINMENT_KLUG_H_
#define CCPI_CONTAINMENT_KLUG_H_

#include "datalog/cq.h"
#include "util/status.h"

namespace ccpi {

/// Statistics of one Klug-style containment run, for the Theorem 5.1 vs.
/// Klug benchmark (the paper: "Klug's approach in the worst case requires
/// an exponential number of tests, each of which could take exponential
/// time").
struct KlugStats {
  /// Linearizations of C1's variables consistent with A(C1) that were
  /// examined (one canonical database each).
  size_t linearizations = 0;
};

/// Klug's [1988] containment test for CQs with arithmetic comparisons:
/// c1 is contained in u2 iff for EVERY linearization of c1's variables and
/// the constants consistent with A(c1), the canonical database of that
/// linearization makes some member of u2 produce the goal.
///
/// Exact under the same Theorem 5.1 preconditions as CqcContained (checked),
/// and used as the head-to-head baseline: both algorithms decide the same
/// relation, with opposite exponential profiles (orders of C1's variables
/// here, containment mappings there).
Result<bool> KlugContainedInUnion(const CQ& c1, const UCQ& u2,
                                  KlugStats* stats = nullptr);

Result<bool> KlugContained(const CQ& c1, const CQ& c2,
                           KlugStats* stats = nullptr);

}  // namespace ccpi

#endif  // CCPI_CONTAINMENT_KLUG_H_
