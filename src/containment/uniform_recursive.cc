#include "containment/uniform_recursive.h"

#include <map>

#include "eval/engine.h"
#include "util/check.h"

namespace ccpi {

namespace {

Status RequirePositiveArithFree(const Program& p, const char* role) {
  if (p.HasNegation()) {
    return Status::InvalidArgument(std::string(role) +
                                   ": uniform containment is implemented "
                                   "for negation-free programs");
  }
  if (p.HasArithmetic()) {
    return Status::InvalidArgument(std::string(role) +
                                   ": uniform containment is implemented "
                                   "for arithmetic-free programs (the "
                                   "Levy-Sagiv extension is future work)");
  }
  return Status::OK();
}

/// Freezes a term: variables become distinctive symbolic constants.
Value Freeze(const Term& t) {
  if (t.is_const()) return t.constant();
  return Value("frz_" + t.var());
}

}  // namespace

Result<Outcome> UniformDatalogContained(const Program& p1,
                                        const Program& p2) {
  CCPI_RETURN_IF_ERROR(RequirePositiveArithFree(p1, "P1"));
  CCPI_RETURN_IF_ERROR(RequirePositiveArithFree(p2, "P2"));

  std::set<std::string> p2_idb = p2.IdbPredicates();
  for (const Rule& rule : p1.rules) {
    // Freeze the rule body into a database. Facts for predicates P2
    // derives must be *seeded* into its IDB (uniform containment
    // quantifies over databases with IDB facts); the rest are EDB.
    Database edb;
    Database seed;
    for (const Literal& l : rule.body) {
      CCPI_DCHECK(l.is_positive());
      Tuple t;
      t.reserve(l.atom.args.size());
      for (const Term& arg : l.atom.args) t.push_back(Freeze(arg));
      if (p2_idb.count(l.atom.pred) > 0) {
        CCPI_RETURN_IF_ERROR(seed.Insert(l.atom.pred, std::move(t)));
      } else {
        CCPI_RETURN_IF_ERROR(edb.Insert(l.atom.pred, std::move(t)));
      }
    }
    Tuple head;
    head.reserve(rule.head.args.size());
    for (const Term& arg : rule.head.args) head.push_back(Freeze(arg));

    EvalOptions options;
    options.seed_idb = &seed;
    CCPI_ASSIGN_OR_RETURN(Database derived, Evaluate(p2, edb, options));
    bool found = derived.Contains(rule.head.pred, head);
    if (!found && p2_idb.count(rule.head.pred) == 0) {
      // P2 never derives this predicate at all; the frozen head could only
      // come from the body itself (a tautological rule).
      found = edb.Contains(rule.head.pred, head);
    }
    if (!found) return Outcome::kUnknown;
  }
  return Outcome::kHolds;
}

Program MergeConstraintPrograms(const std::vector<Program>& programs) {
  Program merged;
  if (!programs.empty()) merged.goal = programs[0].goal;
  // Helper predicates are scoped to their constraint: if two programs
  // define the same helper name they must be renamed apart, or the merge
  // would compute the union of their definitions (a strictly larger
  // program — unsound as a containment target). Helpers owned by a single
  // program keep their names, so uniform-containment chases can relate
  // them to same-named predicates of the subsumed side.
  std::map<std::string, int> definers;
  for (const Program& p : programs) {
    for (const std::string& pred : p.IdbPredicates()) {
      if (pred != p.goal) definers[pred]++;
    }
  }
  int index = 0;
  for (const Program& p : programs) {
    std::string suffix = "_c" + std::to_string(index++);
    std::map<std::string, std::string> rename;
    for (const std::string& pred : p.IdbPredicates()) {
      if (pred != p.goal && definers[pred] > 1) rename[pred] = pred + suffix;
    }
    for (Rule rule : p.rules) {
      auto it = rename.find(rule.head.pred);
      if (it != rename.end()) rule.head.pred = it->second;
      for (Literal& l : rule.body) {
        if (l.is_comparison()) continue;
        auto bit = rename.find(l.atom.pred);
        if (bit != rename.end()) l.atom.pred = bit->second;
      }
      merged.rules.push_back(std::move(rule));
    }
  }
  return merged;
}

}  // namespace ccpi
