#include "containment/cqc.h"

#include <map>

#include "containment/mapping.h"
#include "util/check.h"

namespace ccpi {

namespace {

/// The structural half of the Theorem 5.1 preconditions: no negation, no
/// repeated variables among ordinary subgoals, no constants in them.
/// Fills `bound` with the variables of the ordinary subgoals.
Status CheckStructure(const CQ& q, std::map<std::string, int>* bound);

}  // namespace

Status CheckTheorem51Form(const CQ& q) {
  std::map<std::string, int> occurrences;
  CCPI_RETURN_IF_ERROR(CheckStructure(q, &occurrences));
  for (const Comparison& c : q.comparisons) {
    for (const Term* t : {&c.lhs, &c.rhs}) {
      if (t->is_var() && occurrences.count(t->var()) == 0) {
        return Status::InvalidArgument(
            "comparison variable " + t->var() +
            " does not occur in any ordinary subgoal");
      }
    }
  }
  return Status::OK();
}

namespace {

Status CheckStructure(const CQ& q, std::map<std::string, int>* bound) {
  if (!q.negatives.empty()) {
    return Status::InvalidArgument(
        "Theorem 5.1 applies to CQs with arithmetic but without negation");
  }
  std::map<std::string, int>& occurrences = *bound;
  for (const Atom& a : q.positives) {
    for (const Term& t : a.args) {
      if (t.is_const()) {
        return Status::InvalidArgument(
            "constant " + t.constant().ToString() +
            " in ordinary subgoal " + a.ToString() +
            "; normalize first (replace by a fresh variable equated to the "
            "constant)");
      }
      if (++occurrences[t.var()] > 1) {
        return Status::InvalidArgument(
            "variable " + t.var() +
            " repeated among ordinary subgoals; normalize first (Example "
            "5.2 shows Theorem 5.1 fails otherwise)");
      }
    }
  }
  return Status::OK();
}

/// Gathers the disjunction OR_h h(A(member)) over all containment mappings
/// from every member of u2 into c1.
Status CollectUnionObligations(const CQ& c1, const UCQ& u2,
                               std::vector<arith::Conjunction>* disjuncts,
                               size_t* mapping_count) {
  CCPI_RETURN_IF_ERROR(CheckTheorem51Form(c1));
  for (const CQ& c2 : u2) {
    CCPI_RETURN_IF_ERROR(CheckTheorem51Form(c2));
    for (const Substitution& h : EnumerateContainmentMappings(c2, c1)) {
      arith::Conjunction mapped;
      mapped.reserve(c2.comparisons.size());
      for (const Comparison& c : c2.comparisons) {
        // Theorem 5.1 form guarantees every comparison variable occurs in
        // an ordinary subgoal and is therefore mapped by h.
        mapped.push_back(Apply(h, c));
      }
      disjuncts->push_back(std::move(mapped));
      if (mapping_count != nullptr) ++*mapping_count;
    }
  }
  return Status::OK();
}

}  // namespace

Result<bool> CqcContained(const CQ& c1, const CQ& c2) {
  return CqcContainedInUnion(c1, UCQ{c2});
}

Result<bool> CqcContainedInUnion(const CQ& c1, const UCQ& u2) {
  std::vector<arith::Conjunction> disjuncts;
  CCPI_RETURN_IF_ERROR(CollectUnionObligations(c1, u2, &disjuncts, nullptr));
  return arith::Implies(c1.comparisons, disjuncts);
}

Result<std::optional<arith::Conjunction>> CqcRefutation(const CQ& c1,
                                                        const UCQ& u2) {
  std::vector<arith::Conjunction> disjuncts;
  CCPI_RETURN_IF_ERROR(CollectUnionObligations(c1, u2, &disjuncts, nullptr));
  return arith::FindRefutation(c1.comparisons, disjuncts);
}

Result<size_t> CountMappings(const CQ& c1, const UCQ& u2) {
  std::vector<arith::Conjunction> disjuncts;
  size_t count = 0;
  CCPI_RETURN_IF_ERROR(CollectUnionObligations(c1, u2, &disjuncts, &count));
  return count;
}

Result<bool> CqcContainedInUnionRelaxed(const CQ& c1, const UCQ& u2,
                                        bool* exact) {
  *exact = true;
  std::map<std::string, int> bound1;
  CCPI_RETURN_IF_ERROR(CheckStructure(c1, &bound1));
  std::vector<arith::Conjunction> disjuncts;
  size_t member_index = 0;
  for (const CQ& member : u2) {
    // Unbound member variables survive into the obligation, so keep them
    // from colliding with c1's variable names.
    CQ c2 = RenameApart(member, "_m" + std::to_string(member_index++));
    std::map<std::string, int> bound2;
    CCPI_RETURN_IF_ERROR(CheckStructure(c2, &bound2));
    // Head variables are pinned by the head-to-head mapping, so they count
    // as bound for the purposes of applying h to A(c2).
    for (const Term& t : c2.head.args) {
      if (t.is_var()) bound2[t.var()] = 1;
    }
    for (const Comparison& c : c2.comparisons) {
      for (const Term* t : {&c.lhs, &c.rhs}) {
        if (t->is_var() && bound2.count(t->var()) == 0) {
          // An existential comparison variable on the right: mapping it
          // nowhere makes the obligation STRONGER than the true (exists-
          // quantified) one, so the overall test stays sound but is no
          // longer a decision procedure.
          *exact = false;
        }
      }
    }
    for (const Substitution& h : EnumerateContainmentMappings(c2, c1)) {
      arith::Conjunction mapped;
      mapped.reserve(c2.comparisons.size());
      for (const Comparison& c : c2.comparisons) {
        mapped.push_back(Apply(h, c));
      }
      disjuncts.push_back(std::move(mapped));
    }
  }
  return arith::Implies(c1.comparisons, disjuncts);
}

}  // namespace ccpi
