#include "containment/mapping.h"

#include <optional>

#include "util/check.h"

namespace ccpi {

namespace {

/// Extends `subst` so that Apply(subst, from_atom) == to_atom, or returns
/// false without touching `subst` on failure.
bool UnifyOnto(const Atom& from_atom, const Atom& to_atom,
               Substitution* subst) {
  if (from_atom.pred != to_atom.pred ||
      from_atom.args.size() != to_atom.args.size()) {
    return false;
  }
  std::vector<std::pair<std::string, Term>> added;
  for (size_t i = 0; i < from_atom.args.size(); ++i) {
    const Term& f = from_atom.args[i];
    const Term& t = to_atom.args[i];
    if (f.is_const()) {
      // A constant maps only to the identical constant.
      if (!(t.is_const() && t.constant() == f.constant())) {
        for (const auto& [v, unused] : added) subst->erase(v);
        return false;
      }
      continue;
    }
    auto it = subst->find(f.var());
    if (it == subst->end()) {
      subst->emplace(f.var(), t);
      added.emplace_back(f.var(), t);
    } else if (!(it->second == t)) {
      for (const auto& [v, unused] : added) subst->erase(v);
      return false;
    }
  }
  return true;
}

struct SearchState {
  const CQ* from = nullptr;
  const CQ* to = nullptr;
  bool map_negated = false;
  // Collect all mappings, or stop at the first one.
  bool first_only = false;
  std::vector<Substitution> results = {};
};

bool SearchNegated(SearchState* state, size_t idx, Substitution* subst);

/// Backtracking over the ordinary positive subgoals of `from`.
bool SearchPositive(SearchState* state, size_t idx, Substitution* subst) {
  if (idx == state->from->positives.size()) {
    if (state->map_negated) return SearchNegated(state, 0, subst);
    state->results.push_back(*subst);
    return state->first_only;
  }
  const Atom& from_atom = state->from->positives[idx];
  for (const Atom& to_atom : state->to->positives) {
    Substitution saved = *subst;
    if (UnifyOnto(from_atom, to_atom, subst)) {
      if (SearchPositive(state, idx + 1, subst)) return true;
    }
    *subst = std::move(saved);
  }
  return false;
}

bool SearchNegated(SearchState* state, size_t idx, Substitution* subst) {
  if (idx == state->from->negatives.size()) {
    state->results.push_back(*subst);
    return state->first_only;
  }
  const Atom& from_atom = state->from->negatives[idx];
  for (const Atom& to_atom : state->to->negatives) {
    Substitution saved = *subst;
    if (UnifyOnto(from_atom, to_atom, subst)) {
      if (SearchNegated(state, idx + 1, subst)) return true;
    }
    *subst = std::move(saved);
  }
  return false;
}

std::optional<Substitution> HeadSeed(const CQ& from, const CQ& to) {
  Substitution subst;
  if (!UnifyOnto(from.head, to.head, &subst)) return std::nullopt;
  return subst;
}

}  // namespace

std::vector<Substitution> EnumerateContainmentMappings(
    const CQ& from, const CQ& to, const MappingOptions& options) {
  std::optional<Substitution> seed = HeadSeed(from, to);
  if (!seed.has_value()) return {};
  SearchState state{&from, &to, options.map_negated};
  SearchPositive(&state, 0, &*seed);
  return std::move(state.results);
}

bool HasContainmentMapping(const CQ& from, const CQ& to,
                           const MappingOptions& options) {
  std::optional<Substitution> seed = HeadSeed(from, to);
  if (!seed.has_value()) return false;
  SearchState state{&from, &to, options.map_negated};
  state.first_only = true;
  SearchPositive(&state, 0, &*seed);
  return !state.results.empty();
}

}  // namespace ccpi
