#ifndef CCPI_CONTAINMENT_CQ_CONTAINMENT_H_
#define CCPI_CONTAINMENT_CQ_CONTAINMENT_H_

#include "datalog/cq.h"
#include "util/outcome.h"
#include "util/status.h"

namespace ccpi {

/// Classical conjunctive-query containment (Chandra and Merlin [1977]):
/// q1 is contained in q2 iff there is a containment mapping from q2 to q1.
/// Exact for CQs without negation and without arithmetic; returns
/// InvalidArgument if either query has them (use CqcContained or the exact
/// oracle for those).
Result<bool> CqContained(const CQ& q1, const CQ& q2);

/// Union containment for arithmetic- and negation-free queries (Sagiv and
/// Yannakakis [1981]): u1 is contained in u2 iff every disjunct of u1 is
/// contained in SOME single disjunct of u2. (With arithmetic this
/// per-disjunct reduction is no longer complete — Example 5.3's forbidden
/// intervals are the paper's counterexample — which is why CQC containment
/// has its own test.)
Result<bool> UcqContained(const UCQ& u1, const UCQ& u2);

/// Sound-but-incomplete containment for queries with negated subgoals via
/// uniform containment: a containment mapping carrying positive subgoals to
/// positive subgoals and negated subgoals to negated subgoals proves
/// containment; absence proves nothing. Arithmetic comparisons, when
/// present, must be implied as in Theorem 5.1 under each candidate mapping.
/// Returns kHolds or kUnknown.
Result<Outcome> UniformContained(const CQ& q1, const CQ& q2);

/// Uniform containment of q1 in a union: every mapping from any member
/// counts; the arithmetic obligations combine disjunctively as in the
/// union form of Theorem 5.1.
Result<Outcome> UniformContainedInUnion(const CQ& q1, const UCQ& u2);

}  // namespace ccpi

#endif  // CCPI_CONTAINMENT_CQ_CONTAINMENT_H_
