#ifndef CCPI_CONTAINMENT_LINEARIZE_H_
#define CCPI_CONTAINMENT_LINEARIZE_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "arith/solver.h"
#include "datalog/ast.h"
#include "relational/value.h"

namespace ccpi {

/// A total preorder ("linearization") of a set of variables and constants:
/// every element is assigned the rank of its equivalence class, ranks
/// 0..num_classes-1 in increasing order. Distinct constants always occupy
/// distinct classes, ordered by their true Value order.
///
/// This is the object Klug's containment test quantifies over: each
/// linearization of C1's variables consistent with A(C1) yields one
/// canonical database.
struct Linearization {
  std::map<std::string, int> rank_of_var;
  std::map<Value, int> rank_of_const;
  int num_classes = 0;

  /// Rank of a term (variable or constant). The term must be an element.
  int RankOf(const Term& t) const;

  /// Evaluates a comparison under the rank order.
  bool Satisfies(const Comparison& c) const;
  bool SatisfiesAll(const arith::Conjunction& conj) const;

  std::string ToString() const;
};

struct LinearizeOptions {
  /// Prune partial placements against `consistent_with` as soon as both
  /// endpoints of a comparison are placed (the relative order of placed
  /// classes never changes later, so a violated comparison can never be
  /// repaired). Dramatically reduces visited nodes when the conjunction is
  /// restrictive; the worst case stays the ordered Bell numbers.
  bool prune = true;
};

/// Enumerates every linearization of `vars` and `constants` that satisfies
/// `consistent_with`, invoking `fn` for each; `fn` returning false stops the
/// enumeration early. The number of linearizations grows as the ordered
/// Bell numbers — exponential in |vars|, which is exactly the cost the
/// paper attributes to Klug's approach.
void EnumerateLinearizations(
    const std::vector<std::string>& vars, const std::vector<Value>& constants,
    const arith::Conjunction& consistent_with,
    const std::function<bool(const Linearization&)>& fn,
    const LinearizeOptions& options = {});

/// Counts linearizations (for the benchmark reports).
size_t CountLinearizations(const std::vector<std::string>& vars,
                           const std::vector<Value>& constants,
                           const arith::Conjunction& consistent_with);

}  // namespace ccpi

#endif  // CCPI_CONTAINMENT_LINEARIZE_H_
