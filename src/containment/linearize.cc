#include "containment/linearize.h"

#include <algorithm>
#include <limits>
#include <set>

#include "util/check.h"
#include "util/strings.h"

namespace ccpi {

int Linearization::RankOf(const Term& t) const {
  if (t.is_var()) {
    auto it = rank_of_var.find(t.var());
    CCPI_CHECK(it != rank_of_var.end());
    return it->second;
  }
  auto it = rank_of_const.find(t.constant());
  CCPI_CHECK(it != rank_of_const.end());
  return it->second;
}

bool Linearization::Satisfies(const Comparison& c) const {
  int a = RankOf(c.lhs);
  int b = RankOf(c.rhs);
  switch (c.op) {
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return a <= b;
    case CmpOp::kGt:
      return a > b;
    case CmpOp::kGe:
      return a >= b;
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return a != b;
  }
  return false;
}

bool Linearization::SatisfiesAll(const arith::Conjunction& conj) const {
  for (const Comparison& c : conj) {
    if (!Satisfies(c)) return false;
  }
  return true;
}

std::string Linearization::ToString() const {
  std::vector<std::vector<std::string>> classes(
      static_cast<size_t>(num_classes));
  for (const auto& [v, r] : rank_of_var) {
    classes[static_cast<size_t>(r)].push_back(v);
  }
  for (const auto& [c, r] : rank_of_const) {
    classes[static_cast<size_t>(r)].push_back(c.ToString());
  }
  std::vector<std::string> parts;
  parts.reserve(classes.size());
  for (const auto& cls : classes) parts.push_back("{" + Join(cls, "=") + "}");
  return Join(parts, " < ");
}

namespace {

struct Enumerator {
  const std::vector<std::string>* vars;
  const arith::Conjunction* conj;
  const std::function<bool(const Linearization&)>* fn;
  // Current ordered classes; each class is a list of element labels, where
  // a label < 0 encodes constant index -(label+1) and a label >= 0 encodes
  // variable index.
  std::vector<std::vector<int>> classes;
  std::vector<Value> sorted_consts;
  bool stopped = false;
  bool prune = false;
  // Comparisons precompiled to element labels for incremental pruning.
  struct LabeledCmp {
    int lhs;
    int rhs;
    CmpOp op;
  };
  std::vector<LabeledCmp> labeled;

  int LabelOf(const Term& t) const {
    if (t.is_var()) {
      for (size_t i = 0; i < vars->size(); ++i) {
        if ((*vars)[i] == t.var()) return static_cast<int>(i);
      }
      return std::numeric_limits<int>::min();  // unknown: never checkable
    }
    for (size_t i = 0; i < sorted_consts.size(); ++i) {
      if (sorted_consts[i] == t.constant()) return -static_cast<int>(i) - 1;
    }
    return std::numeric_limits<int>::min();
  }

  void Precompile() {
    for (const Comparison& c : *conj) {
      labeled.push_back(LabeledCmp{LabelOf(c.lhs), LabelOf(c.rhs), c.op});
    }
  }

  /// Rank (class position) of a label in the current partial placement,
  /// or -1 if not placed.
  int RankOf(int label) const {
    for (size_t r = 0; r < classes.size(); ++r) {
      for (int member : classes[r]) {
        if (member == label) return static_cast<int>(r);
      }
    }
    return -1;
  }

  /// False when a comparison between already-placed elements is violated.
  /// The relative order of placed classes never changes as later elements
  /// are inserted, so a violation is permanent.
  bool PartialConsistent(int placed_vars) const {
    for (const LabeledCmp& c : labeled) {
      if (c.lhs == std::numeric_limits<int>::min() ||
          c.rhs == std::numeric_limits<int>::min()) {
        continue;
      }
      if (c.lhs >= placed_vars || c.rhs >= placed_vars) continue;
      int a = RankOf(c.lhs);
      int b = RankOf(c.rhs);
      if (a < 0 || b < 0) continue;
      bool ok = false;
      switch (c.op) {
        case CmpOp::kLt:
          ok = a < b;
          break;
        case CmpOp::kLe:
          ok = a <= b;
          break;
        case CmpOp::kGt:
          ok = a > b;
          break;
        case CmpOp::kGe:
          ok = a >= b;
          break;
        case CmpOp::kEq:
          ok = a == b;
          break;
        case CmpOp::kNe:
          ok = a != b;
          break;
      }
      if (!ok) return false;
    }
    return true;
  }

  void Emit() {
    Linearization lin;
    lin.num_classes = static_cast<int>(classes.size());
    for (size_t r = 0; r < classes.size(); ++r) {
      for (int label : classes[r]) {
        if (label < 0) {
          lin.rank_of_const[sorted_consts[static_cast<size_t>(-label - 1)]] =
              static_cast<int>(r);
        } else {
          lin.rank_of_var[(*vars)[static_cast<size_t>(label)]] =
              static_cast<int>(r);
        }
      }
    }
    if (!lin.SatisfiesAll(*conj)) return;
    if (!(*fn)(lin)) stopped = true;
  }

  void Place(size_t var_idx) {
    if (stopped) return;
    if (var_idx == vars->size()) {
      Emit();
      return;
    }
    int label = static_cast<int>(var_idx);
    int placed = static_cast<int>(var_idx) + 1;
    // Join an existing class.
    for (size_t i = 0; i < classes.size() && !stopped; ++i) {
      classes[i].push_back(label);
      if (!prune || PartialConsistent(placed)) Place(var_idx + 1);
      classes[i].pop_back();
    }
    // Open a new class at any gap position.
    for (size_t i = 0; i <= classes.size() && !stopped; ++i) {
      classes.insert(classes.begin() + static_cast<ptrdiff_t>(i), {label});
      if (!prune || PartialConsistent(placed)) Place(var_idx + 1);
      classes.erase(classes.begin() + static_cast<ptrdiff_t>(i));
    }
  }
};

}  // namespace

void EnumerateLinearizations(
    const std::vector<std::string>& vars, const std::vector<Value>& constants,
    const arith::Conjunction& consistent_with,
    const std::function<bool(const Linearization&)>& fn,
    const LinearizeOptions& options) {
  Enumerator e;
  e.vars = &vars;
  e.conj = &consistent_with;
  e.fn = &fn;
  e.prune = options.prune;
  // Distinct constants form a fixed ordered backbone of singleton classes.
  std::set<Value> distinct(constants.begin(), constants.end());
  e.sorted_consts.assign(distinct.begin(), distinct.end());
  std::sort(e.sorted_consts.begin(), e.sorted_consts.end());
  for (size_t i = 0; i < e.sorted_consts.size(); ++i) {
    e.classes.push_back({-static_cast<int>(i) - 1});
  }
  e.Precompile();
  e.Place(0);
}

size_t CountLinearizations(const std::vector<std::string>& vars,
                           const std::vector<Value>& constants,
                           const arith::Conjunction& consistent_with) {
  size_t count = 0;
  EnumerateLinearizations(vars, constants, consistent_with,
                          [&](const Linearization&) {
                            ++count;
                            return true;
                          });
  return count;
}

}  // namespace ccpi
