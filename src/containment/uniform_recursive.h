#ifndef CCPI_CONTAINMENT_UNIFORM_RECURSIVE_H_
#define CCPI_CONTAINMENT_UNIFORM_RECURSIVE_H_

#include "datalog/ast.h"
#include "util/outcome.h"
#include "util/status.h"

namespace ccpi {

/// Uniform containment of datalog programs (Sagiv [1988]; the paper cites
/// its Theorem 5.1 generalization to recursive programs via Levy and Sagiv
/// [1993]). P1 is *uniformly* contained in P2 when P1(D) is a subset of
/// P2(D) for every database D — including databases with facts for the
/// derived (IDB) predicates. Uniform containment implies ordinary
/// containment, and unlike ordinary containment it is decidable for
/// recursive programs.
///
/// Decision procedure (the chase): for each rule of P1, freeze its body —
/// replace every variable by a fresh symbolic constant — and run P2 to
/// fixpoint over the frozen facts, seeding P2's own derived predicates
/// with them; P1 is uniformly contained in P2 iff each frozen head is
/// derived.
///
/// Returns kHolds (uniformly contained, hence contained) or kUnknown
/// (not uniformly contained — ordinary containment may still hold).
/// Supports positive programs with arithmetic-free bodies; negation or
/// comparisons yield InvalidArgument (freezing does not respect them).
Result<Outcome> UniformDatalogContained(const Program& p1, const Program& p2);

/// Merges constraint programs that share only the goal predicate into one
/// program computing their union, renaming each program's other IDB
/// predicates apart so helper names cannot collide. Used to test
/// containment in a union of recursive constraints.
Program MergeConstraintPrograms(const std::vector<Program>& programs);

}  // namespace ccpi

#endif  // CCPI_CONTAINMENT_UNIFORM_RECURSIVE_H_
