#ifndef CCPI_CONTAINMENT_MAPPING_H_
#define CCPI_CONTAINMENT_MAPPING_H_

#include <vector>

#include "datalog/cq.h"

namespace ccpi {

/// Options for containment-mapping enumeration.
struct MappingOptions {
  /// Also require each negated subgoal of `from` to map onto some negated
  /// subgoal of `to` (the uniform-containment discipline for queries with
  /// negation; sound but not complete for containment).
  bool map_negated = false;
};

/// Enumerates all containment mappings from `from` to `to` (Ullman [1989]):
/// substitutions h on the variables of `from` such that h maps the head of
/// `from` to the head of `to` and every ordinary subgoal of `from` onto some
/// ordinary subgoal of `to`. Constants must match exactly. Comparison
/// subgoals are ignored here — Theorem 5.1 handles them via the arithmetic
/// implication over the returned set H.
std::vector<Substitution> EnumerateContainmentMappings(
    const CQ& from, const CQ& to, const MappingOptions& options = {});

/// True iff at least one containment mapping exists (short-circuiting).
bool HasContainmentMapping(const CQ& from, const CQ& to,
                           const MappingOptions& options = {});

}  // namespace ccpi

#endif  // CCPI_CONTAINMENT_MAPPING_H_
