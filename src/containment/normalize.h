#ifndef CCPI_CONTAINMENT_NORMALIZE_H_
#define CCPI_CONTAINMENT_NORMALIZE_H_

#include "datalog/cq.h"
#include "util/status.h"

namespace ccpi {

/// Rewrites a CQ into Theorem 5.1 form (Section 5's conditions): no
/// variable appears twice among the ordinary subgoals and no constants
/// appear in them. "Rather, multiple occurrences are handled by using
/// distinct variables and equating them by arithmetic equality
/// constraints." The rewrite is equivalence-preserving:
///
///   panic :- p(X,X)   becomes   panic :- p(X,X_2) & X = X_2
///   panic :- p(0,Y)   becomes   panic :- p(X_c1,Y) & X_c1 = 0
///
/// Head variables keep their first occurrence. Negated subgoals are left
/// untouched (Theorem 5.1 rejects them downstream).
CQ NormalizeToTheorem51Form(const CQ& q);

}  // namespace ccpi

#endif  // CCPI_CONTAINMENT_NORMALIZE_H_
