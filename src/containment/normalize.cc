#include "containment/normalize.h"

#include <set>

namespace ccpi {

CQ NormalizeToTheorem51Form(const CQ& q) {
  CQ out = q;
  std::set<std::string> seen;
  int counter = 0;
  auto fresh = [&](const std::string& base) {
    std::string name;
    do {
      name = base + "_n" + std::to_string(counter++);
    } while (seen.count(name) > 0);
    seen.insert(name);
    return name;
  };
  for (const std::string& v : q.Variables()) seen.insert(v);

  // Head variables count as first occurrences so the head stays intact.
  std::set<std::string> used;
  for (const Term& t : q.head.args) {
    if (t.is_var()) used.insert(t.var());
  }
  for (Atom& a : out.positives) {
    for (Term& t : a.args) {
      if (t.is_const()) {
        std::string name = fresh("Xc");
        out.comparisons.push_back(
            Comparison{Term::Var(name), CmpOp::kEq, t});
        t = Term::Var(name);
        used.insert(name);
      } else if (!used.insert(t.var()).second) {
        std::string name = fresh(t.var());
        out.comparisons.push_back(
            Comparison{Term::Var(t.var()), CmpOp::kEq, Term::Var(name)});
        t = Term::Var(name);
        used.insert(name);
      }
    }
  }
  return out;
}

}  // namespace ccpi
