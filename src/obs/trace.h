#ifndef CCPI_OBS_TRACE_H_
#define CCPI_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace ccpi {
namespace obs {

/// One completed span, in Chrome trace-event terms a "complete" event
/// (ph:"X"). Attribute values are stored pre-encoded as JSON (a quoted
/// escaped string or a bare number) so export is a straight concatenation.
struct TraceEvent {
  std::string name;
  std::string category;
  uint64_t ts_ns = 0;   // start, relative to the recorder's epoch
  uint64_t dur_ns = 0;  // duration
  uint32_t tid = 0;     // small per-thread id (1-based)
  int depth = 0;        // nesting depth at start (0 = top level)
  std::vector<std::pair<std::string, std::string>> args;
};

/// Collects spans and exports them as Chrome trace-event JSON, loadable in
/// chrome://tracing and Perfetto (ui.perfetto.dev). At most one recorder
/// is *installed* (globally visible to Span) at a time; an installed
/// recorder must outlive every span opened while it was current — install
/// for whole program phases (ccpi_check does it around the script run),
/// not around individual calls.
class TraceRecorder {
 public:
  TraceRecorder();
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Makes this recorder the one Span construction sees. Replaces any
  /// previously installed recorder (which is left intact, just no longer
  /// receiving spans).
  void Install();
  /// Detaches this recorder if it is the installed one.
  void Uninstall();
  /// The installed recorder, or nullptr when tracing is off. A relaxed
  /// atomic load — this is the only cost tracing adds when disabled.
  static TraceRecorder* current();

  /// Nanoseconds since this recorder was constructed.
  uint64_t NowNs() const;

  void Record(TraceEvent event);

  size_t size() const;
  /// Copy of the recorded events (tests and exporters).
  std::vector<TraceEvent> events() const;

  /// {"displayTimeUnit":"ms","traceEvents":[...]} with ts/dur in
  /// microseconds as the format requires.
  std::string ToChromeJson() const;
  Status WriteChromeJson(const std::string& path) const;

 private:
  uint64_t epoch_ns_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// RAII scoped span. When no recorder is installed, construction is a
/// single atomic load and the span is inert (no clock reads, no
/// allocation, attributes ignored). Spans opened on one thread must be
/// closed on the same thread in LIFO order (automatic with scoped
/// locals); each thread keeps its own stack of open spans, and the
/// nesting depth is recorded on the event.
class Span {
 public:
  explicit Span(std::string_view name, std::string_view category = "ccpi");
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return rec_ != nullptr; }

  /// Attaches a string attribute (JSON-escaped at export) / an integer
  /// attribute. No-ops on an inert span.
  void Attr(std::string_view key, std::string_view value);
  void Attr(std::string_view key, int64_t value);

  /// Depth of the calling thread's open-span stack (0 when tracing is
  /// off or no span is open).
  static int CurrentDepth();
  /// Name of the innermost open span on this thread, or "" if none.
  static std::string_view CurrentName();

 private:
  TraceRecorder* rec_;  // nullptr = inert
  TraceEvent ev_;
};

}  // namespace obs
}  // namespace ccpi

#endif  // CCPI_OBS_TRACE_H_
