#ifndef CCPI_OBS_JSON_H_
#define CCPI_OBS_JSON_H_

#include <string>
#include <string_view>

namespace ccpi {
namespace obs {

/// Escapes `s` for embedding inside a JSON string literal (quotes are NOT
/// added): `"` and `\` are backslash-escaped, the common control
/// characters map to their two-character forms (\n, \t, ...), and every
/// other byte below 0x20 becomes \u00XX. Everything the observability
/// layer writes — metric names, span attributes, bench labels — passes
/// through here so an attacker-controlled predicate name cannot break a
/// trace or metrics file.
std::string JsonEscape(std::string_view s);

/// Appends `"escaped(s)"` (with the quotes) to `*out`.
void AppendJsonString(std::string_view s, std::string* out);

/// Formats a double as a JSON number (no NaN/Inf — those are clamped to
/// 0, since JSON has no spelling for them).
std::string JsonNumber(double value);

}  // namespace obs
}  // namespace ccpi

#endif  // CCPI_OBS_JSON_H_
