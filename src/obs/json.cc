#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace ccpi {
namespace obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void AppendJsonString(std::string_view s, std::string* out) {
  out->push_back('"');
  *out += JsonEscape(s);
  out->push_back('"');
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) value = 0;
  char buf[32];
  // %.17g round-trips doubles but litters output; %.9g is plenty for
  // nanosecond timings and tuple counts.
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

}  // namespace obs
}  // namespace ccpi
