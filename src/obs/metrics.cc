#include "obs/metrics.h"

#include <algorithm>
#include <chrono>

#include "obs/json.h"
#include "util/check.h"

namespace ccpi {
namespace obs {

namespace {

std::atomic<bool> g_timing_enabled{false};

/// Lock-free monotone update of an atomic min/max cell.
void AtomicMin(std::atomic<uint64_t>* cell, uint64_t v) {
  uint64_t cur = cell->load(std::memory_order_relaxed);
  while (v < cur &&
         !cell->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>* cell, uint64_t v) {
  uint64_t cur = cell->load(std::memory_order_relaxed);
  while (v > cur &&
         !cell->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

bool TimingEnabled() {
  return g_timing_enabled.load(std::memory_order_relaxed);
}

void SetTimingEnabled(bool on) {
  g_timing_enabled.store(on, std::memory_order_relaxed);
}

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  double target = q * static_cast<double>(count);
  if (target < 1) target = 1;  // rank of the first observation
  uint64_t cum = 0;
  for (size_t i = 0; i < bucket_counts.size(); ++i) {
    uint64_t c = bucket_counts[i];
    if (c == 0) continue;
    cum += c;
    if (static_cast<double>(cum) >= target) {
      double lower = i == 0 ? 0 : static_cast<double>(bounds[i - 1]);
      double upper = i < bounds.size() ? static_cast<double>(bounds[i])
                                       : static_cast<double>(max);
      if (upper < lower) upper = lower;
      double frac =
          (target - static_cast<double>(cum - c)) / static_cast<double>(c);
      return lower + frac * (upper - lower);
    }
  }
  return static_cast<double>(max);
}

const std::vector<uint64_t>& Histogram::DefaultLatencyBoundsNs() {
  // 1us .. 1s in a 1-2-5 ladder; latencies are recorded in nanoseconds.
  static const std::vector<uint64_t> kBounds = {
      1'000,       2'000,       5'000,       10'000,      20'000,
      50'000,      100'000,     200'000,     500'000,     1'000'000,
      2'000'000,   5'000'000,   10'000'000,  20'000'000,  50'000'000,
      100'000'000, 200'000'000, 500'000'000, 1'000'000'000};
  return kBounds;
}

Histogram::Histogram(std::vector<uint64_t> bounds)
    : bounds_(bounds.empty() ? DefaultLatencyBoundsNs() : std::move(bounds)) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    CCPI_CHECK(bounds_[i - 1] < bounds_[i]);
  }
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void Histogram::Observe(uint64_t value) {
  // First bucket whose (inclusive) upper edge admits the value; the
  // overflow bucket catches the rest.
  size_t idx = std::lower_bound(bounds_.begin(), bounds_.end(), value) -
               bounds_.begin();
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.bucket_counts.reserve(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snap.bucket_counts.push_back(counts_[i].load(std::memory_order_relaxed));
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  uint64_t mn = min_.load(std::memory_order_relaxed);
  snap.min = mn == UINT64_MAX ? 0 : mn;
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<uint64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(name, &out);
    out += ": " + std::to_string(c->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(name, &out);
    out += ": " + std::to_string(g->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot s = h->Snapshot();
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(name, &out);
    out += ": {\"count\": " + std::to_string(s.count) +
           ", \"sum\": " + std::to_string(s.sum) +
           ", \"min\": " + std::to_string(s.min) +
           ", \"max\": " + std::to_string(s.max) +
           ", \"p50\": " + JsonNumber(s.Quantile(0.50)) +
           ", \"p95\": " + JsonNumber(s.Quantile(0.95)) +
           ", \"p99\": " + JsonNumber(s.Quantile(0.99)) + ", \"buckets\": [";
    for (size_t i = 0; i < s.bucket_counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += "{\"le\": ";
      out += i < s.bounds.size() ? std::to_string(s.bounds[i]) : "\"inf\"";
      out += ", \"count\": " + std::to_string(s.bucket_counts[i]) + "}";
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

}  // namespace obs
}  // namespace ccpi
