#include "obs/trace.h"

#include <atomic>
#include <cstdio>
#include <fstream>

#include "obs/json.h"
#include "obs/metrics.h"

namespace ccpi {
namespace obs {

namespace {

std::atomic<TraceRecorder*> g_recorder{nullptr};

uint32_t ThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = 0;
  if (id == 0) id = next.fetch_add(1, std::memory_order_relaxed) + 1;
  return id;
}

/// Per-thread stack of the open spans' events (owned by the live Span
/// objects; entries are valid exactly while their span is open).
thread_local std::vector<const TraceEvent*> tls_open_spans;

}  // namespace

TraceRecorder::TraceRecorder() : epoch_ns_(MonotonicNowNs()) {}

TraceRecorder::~TraceRecorder() { Uninstall(); }

void TraceRecorder::Install() {
  g_recorder.store(this, std::memory_order_release);
}

void TraceRecorder::Uninstall() {
  TraceRecorder* expected = this;
  g_recorder.compare_exchange_strong(expected, nullptr,
                                     std::memory_order_acq_rel);
}

TraceRecorder* TraceRecorder::current() {
  return g_recorder.load(std::memory_order_relaxed);
}

uint64_t TraceRecorder::NowNs() const { return MonotonicNowNs() - epoch_ns_; }

void TraceRecorder::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string TraceRecorder::ToChromeJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  char buf[96];
  bool first = true;
  for (const TraceEvent& ev : events_) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\": ";
    AppendJsonString(ev.name, &out);
    out += ", \"cat\": ";
    AppendJsonString(ev.category, &out);
    // ts/dur are microseconds in the trace-event format; three decimals
    // keep nanosecond resolution.
    std::snprintf(buf, sizeof(buf),
                  ", \"ph\": \"X\", \"pid\": 1, \"tid\": %u, "
                  "\"ts\": %.3f, \"dur\": %.3f",
                  ev.tid, static_cast<double>(ev.ts_ns) / 1000.0,
                  static_cast<double>(ev.dur_ns) / 1000.0);
    out += buf;
    out += ", \"args\": {\"depth\": " + std::to_string(ev.depth);
    for (const auto& [key, value] : ev.args) {
      out += ", ";
      AppendJsonString(key, &out);
      out += ": " + value;
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

Status TraceRecorder::WriteChromeJson(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::InvalidArgument("cannot open " + path);
  out << ToChromeJson();
  out.flush();
  if (!out) return Status::Internal("short write to " + path);
  return Status::OK();
}

Span::Span(std::string_view name, std::string_view category)
    : rec_(TraceRecorder::current()) {
  if (rec_ == nullptr) return;
  ev_.name = name;
  ev_.category = category;
  ev_.ts_ns = rec_->NowNs();
  ev_.tid = ThreadId();
  ev_.depth = static_cast<int>(tls_open_spans.size());
  tls_open_spans.push_back(&ev_);
}

Span::~Span() {
  if (rec_ == nullptr) return;
  if (!tls_open_spans.empty() && tls_open_spans.back() == &ev_) {
    tls_open_spans.pop_back();
  }
  ev_.dur_ns = rec_->NowNs() - ev_.ts_ns;
  rec_->Record(std::move(ev_));
}

void Span::Attr(std::string_view key, std::string_view value) {
  if (rec_ == nullptr) return;
  std::string encoded;
  AppendJsonString(value, &encoded);
  ev_.args.emplace_back(std::string(key), std::move(encoded));
}

void Span::Attr(std::string_view key, int64_t value) {
  if (rec_ == nullptr) return;
  ev_.args.emplace_back(std::string(key), std::to_string(value));
}

int Span::CurrentDepth() { return static_cast<int>(tls_open_spans.size()); }

std::string_view Span::CurrentName() {
  if (tls_open_spans.empty()) return {};
  return tls_open_spans.back()->name;
}

}  // namespace obs
}  // namespace ccpi
