#ifndef CCPI_OBS_METRICS_H_
#define CCPI_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ccpi {
namespace obs {

/// Monotonically increasing event count. Thread-safe; increments are
/// relaxed atomics, so a Counter in a hot path costs one uncontended
/// fetch_add — the same order as the plain `stats_.x += 1` members it
/// replaces.
class Counter {
 public:
  void Add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Last-value-wins instantaneous measurement (queue depths, sizes).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Point-in-time view of a Histogram, with quantile estimation. Bucket i
/// counts observations v with v <= bounds[i] (and > bounds[i-1]); the
/// final entry of `bucket_counts` is the overflow bucket holding values
/// above every bound.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  // 0 when count == 0
  uint64_t max = 0;
  std::vector<uint64_t> bounds;
  std::vector<uint64_t> bucket_counts;  // bounds.size() + 1 entries

  /// Quantile estimate by linear interpolation inside the bucket holding
  /// rank q*count: the bucket's lower edge is the previous bound (0 for
  /// the first bucket), its upper edge the bound itself (the observed max
  /// for the overflow bucket). Returns 0 when the histogram is empty.
  double Quantile(double q) const;
};

/// Fixed-bucket histogram of non-negative integer values (the registry
/// uses it for nanosecond latencies). Thread-safe: each Observe is a
/// handful of relaxed atomic ops; Snapshot copies the counts.
class Histogram {
 public:
  /// `bounds` are strictly-ascending inclusive upper bucket edges. An
  /// empty vector selects the default latency ladder (1us..1s in 1-2-5
  /// steps, in nanoseconds).
  explicit Histogram(std::vector<uint64_t> bounds = {});

  void Observe(uint64_t value);
  HistogramSnapshot Snapshot() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  void Reset();

  static const std::vector<uint64_t>& DefaultLatencyBoundsNs();

 private:
  std::vector<uint64_t> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// Named metric registry: the single source of truth for every counter the
/// checking pipeline maintains (ManagerStats and friends are snapshot
/// views over it). Handles returned by Get* are stable for the registry's
/// lifetime, so hot paths fetch them once and then pay only the atomic
/// increment; the name lookup itself takes a mutex and belongs in setup
/// code, not inner loops.
///
/// Registries are ordinary objects — each ConstraintManager owns one, so
/// concurrent managers (tests, benchmarks) never share counts. Default()
/// is a process-global instance for code with no owning component.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Default();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// `bounds` applies only on first creation; later callers get the
  /// existing histogram whatever bounds they pass.
  Histogram* GetHistogram(std::string_view name,
                          std::vector<uint64_t> bounds = {});

  /// Zeroes every metric. Handles stay valid.
  void Reset();

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} — the
  /// machine-readable dump behind `ccpi_check --metrics-out`. Histograms
  /// carry count/sum/min/max, p50/p95/p99, and the full bucket table.
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Global switch for latency timing. Off (the default), instrumented
/// sites skip the clock reads entirely — a Stopwatch costs one relaxed
/// atomic load and a branch, which is what keeps the no-sink overhead of
/// the instrumentation within noise. `ccpi_check --metrics-out` and the
/// bench harness turn it on.
bool TimingEnabled();
void SetTimingEnabled(bool on);

/// Monotonic clock in nanoseconds (steady_clock).
uint64_t MonotonicNowNs();

/// Reads the clock at construction iff timing was enabled; RecordTo then
/// observes the elapsed nanoseconds into `h`. Inert (no clock reads, no
/// stores) when timing is off.
class Stopwatch {
 public:
  Stopwatch() : start_(TimingEnabled() ? MonotonicNowNs() : 0) {}
  bool running() const { return start_ != 0; }
  void RecordTo(Histogram* h) const {
    if (start_ != 0 && h != nullptr) h->Observe(MonotonicNowNs() - start_);
  }

 private:
  uint64_t start_;
};

}  // namespace obs
}  // namespace ccpi

#endif  // CCPI_OBS_METRICS_H_
