#ifndef CCPI_DISTSIM_COST_MODEL_H_
#define CCPI_DISTSIM_COST_MODEL_H_

#include <cstdint>

namespace ccpi {

/// Shape of a site's simulated trip-latency distribution.
///
/// kFixed is the historical behavior: every trip takes exactly
/// `trip_latency_us` (0 = no sleep at all) and the latency path consumes
/// no randomness whatsoever — which is what keeps default-config runs
/// byte-identical to the pre-latency-model simulator. The non-fixed
/// models draw one deterministic value per trip from a counter-keyed
/// splitmix64 stream (see SiteDatabase::DrawTripLatencyUs), so a run is
/// reproducible per (seed, site, trip index) regardless of thread
/// interleaving.
enum class LatencyModel {
  /// Every trip costs trip_latency_us. No RNG draws.
  kFixed,
  /// Uniform in [latency_lo_us, latency_hi_us].
  kUniform,
  /// Two-point "fast/slow" mix approximating a lognormal-ish tail:
  /// latency_hi_us with probability latency_slow_share, else
  /// latency_lo_us.
  kTwoPoint,
};

/// Cost weights for data access in the simulated N-site deployment.
///
/// The paper motivates local tests by the expense (or impossibility) of
/// touching remote data; this model makes that expense measurable. Units
/// are arbitrary; the defaults encode the common three-orders-of-magnitude
/// gap between a local in-memory read and a WAN round trip.
struct CostModel {
  /// Per tuple enumerated from a local relation.
  double local_tuple_cost = 0.001;
  /// Per tuple enumerated from a remote relation.
  double remote_tuple_cost = 0.1;
  /// Per remote access event (a batch of tuples fetched together).
  double remote_round_trip_cost = 10.0;
  /// Per tuple served from the remote-read snapshot cache: the data is
  /// already on this site, so a cached read prices like a local one.
  double cached_tuple_cost = 0.001;
  /// Simulated wall-clock latency of one physical round trip to this
  /// site, in microseconds, when latency_model == kFixed. 0 (the
  /// default) keeps the pre-existing behavior: trips are billed but take
  /// no real time. A nonzero value makes the simulator *block* for that
  /// long per trip — the lever that lets latency-hiding machinery
  /// (episode pipelining, batched prefetch, hedged reads) show real
  /// wall-clock wins in benchmarks. Accounting is unaffected either way.
  uint64_t trip_latency_us = 0;
  /// Distribution of the per-trip latency. kFixed uses trip_latency_us
  /// and draws nothing; the other models draw per trip from
  /// [latency_lo_us, latency_hi_us] (see LatencyModel).
  LatencyModel latency_model = LatencyModel::kFixed;
  /// Lower edge (kUniform) / fast mode (kTwoPoint), microseconds >= 1.
  uint64_t latency_lo_us = 0;
  /// Upper edge (kUniform) / slow mode (kTwoPoint), microseconds >= lo.
  uint64_t latency_hi_us = 0;
  /// kTwoPoint only: probability of the slow mode, in [0, 1].
  double latency_slow_share = 0.0;
  /// Base seed of the latency stream. Sites derive their own stream by
  /// the same golden-ratio stride used for fault-injector seeds, so two
  /// sites with identical configs still see different (but reproducible)
  /// latency schedules.
  uint64_t latency_seed = 1;
};

}  // namespace ccpi

#endif  // CCPI_DISTSIM_COST_MODEL_H_
