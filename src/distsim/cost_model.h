#ifndef CCPI_DISTSIM_COST_MODEL_H_
#define CCPI_DISTSIM_COST_MODEL_H_

namespace ccpi {

/// Cost weights for data access in the simulated two-site deployment.
///
/// The paper motivates local tests by the expense (or impossibility) of
/// touching remote data; this model makes that expense measurable. Units
/// are arbitrary; the defaults encode the common three-orders-of-magnitude
/// gap between a local in-memory read and a WAN round trip.
struct CostModel {
  /// Per tuple enumerated from a local relation.
  double local_tuple_cost = 0.001;
  /// Per tuple enumerated from a remote relation.
  double remote_tuple_cost = 0.1;
  /// Per remote access event (a batch of tuples fetched together).
  double remote_round_trip_cost = 10.0;
  /// Per tuple served from the remote-read snapshot cache: the data is
  /// already on this site, so a cached read prices like a local one.
  double cached_tuple_cost = 0.001;
};

}  // namespace ccpi

#endif  // CCPI_DISTSIM_COST_MODEL_H_
