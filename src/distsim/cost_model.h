#ifndef CCPI_DISTSIM_COST_MODEL_H_
#define CCPI_DISTSIM_COST_MODEL_H_

namespace ccpi {

/// Cost weights for data access in the simulated two-site deployment.
///
/// The paper motivates local tests by the expense (or impossibility) of
/// touching remote data; this model makes that expense measurable. Units
/// are arbitrary; the defaults encode the common three-orders-of-magnitude
/// gap between a local in-memory read and a WAN round trip.
struct CostModel {
  /// Per tuple enumerated from a local relation.
  double local_tuple_cost = 0.001;
  /// Per tuple enumerated from a remote relation.
  double remote_tuple_cost = 0.1;
  /// Per remote access event (a batch of tuples fetched together).
  double remote_round_trip_cost = 10.0;
  /// Per tuple served from the remote-read snapshot cache: the data is
  /// already on this site, so a cached read prices like a local one.
  double cached_tuple_cost = 0.001;
  /// Simulated wall-clock latency of one physical round trip to this
  /// site, in microseconds. 0 (the default) keeps the pre-existing
  /// behavior: trips are billed but take no real time. A nonzero value
  /// makes the simulator *block* for that long per trip — the lever that
  /// lets latency-hiding machinery (episode pipelining, batched prefetch)
  /// show real wall-clock wins in benchmarks. Accounting is unaffected
  /// either way.
  uint64_t trip_latency_us = 0;
};

}  // namespace ccpi

#endif  // CCPI_DISTSIM_COST_MODEL_H_
