#include "distsim/site_db.h"

namespace ccpi {

Status SiteDatabase::OnRead(const std::string& pred, size_t count) {
  if (IsLocal(pred)) {
    stats_.local_tuples += count;
    return Status::OK();
  }
  return ReadRemote(pred, count);
}

Status SiteDatabase::ReadRemote(const std::string& pred, size_t count) {
  // The round trip is paid whether or not it succeeds.
  stats_.remote_trips += 1;
  if (injector_ != nullptr) {
    Status st = injector_->InjectOnRead(pred);
    if (!st.ok()) {
      stats_.remote_failures += 1;
      return st;
    }
  }
  stats_.remote_tuples += count;
  return Status::OK();
}

}  // namespace ccpi
