#include "distsim/site_db.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ccpi {

namespace {

/// Debug-only occupancy tracking of the read path (see ResetStats).
class ActiveReadGuard {
 public:
  explicit ActiveReadGuard(std::atomic<int>* count) : count_(count) {
#ifndef NDEBUG
    count_->fetch_add(1, std::memory_order_acq_rel);
#endif
  }
  ~ActiveReadGuard() {
#ifndef NDEBUG
    count_->fetch_sub(1, std::memory_order_acq_rel);
#endif
  }
  ActiveReadGuard(const ActiveReadGuard&) = delete;
  ActiveReadGuard& operator=(const ActiveReadGuard&) = delete;

 private:
  [[maybe_unused]] std::atomic<int>* count_;
};

}  // namespace

void SiteDatabase::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    ctr_local_tuples_ = nullptr;
    ctr_remote_tuples_ = nullptr;
    ctr_remote_trips_ = nullptr;
    ctr_remote_failures_ = nullptr;
    ctr_cache_hits_ = nullptr;
    ctr_cache_misses_ = nullptr;
    ctr_cache_invalidations_ = nullptr;
    hist_fill_latency_ = nullptr;
    return;
  }
  ctr_local_tuples_ = registry->GetCounter("distsim.local_tuples");
  ctr_remote_tuples_ = registry->GetCounter("distsim.remote_tuples");
  ctr_remote_trips_ = registry->GetCounter("distsim.remote_trips");
  ctr_remote_failures_ = registry->GetCounter("distsim.remote_failures");
  ctr_cache_hits_ = registry->GetCounter("distsim.cache_hits");
  ctr_cache_misses_ = registry->GetCounter("distsim.cache_misses");
  ctr_cache_invalidations_ =
      registry->GetCounter("distsim.cache_invalidations");
  hist_fill_latency_ =
      registry->GetHistogram("distsim.cache_fill_latency_ns");
}

void SiteDatabase::EnableRemoteCache(bool on) {
  cache_enabled_ = on;
  if (!on) cache_.Clear();
}

Status SiteDatabase::OnRead(const std::string& pred, size_t count) {
  if (IsLocal(pred)) {
    ActiveReadGuard guard(&active_reads_);
    local_tuples_.fetch_add(count, std::memory_order_relaxed);
    if (ctr_local_tuples_ != nullptr) ctr_local_tuples_->Add(count);
    return Status::OK();
  }
  return ReadRemote(pred, count);
}

Status SiteDatabase::ReadRemote(const std::string& pred, size_t count) {
  ActiveReadGuard guard(&active_reads_);
  if (budget_ != nullptr) {
    // Deadline/cancellation gate before any trip accounting or injector
    // draw, so budgeted cache-on and cache-off runs refuse at the same
    // point. The trip cap itself is charged in FetchRemote, where the
    // physical trip would be paid.
    CCPI_RETURN_IF_ERROR(budget_->Check());
  }
  if (!cache_enabled_) return FetchRemote(pred, count);

  const uint64_t version = cache_source().Get(pred, 0).version();
  switch (cache_.Find(pred, version)) {
    case RemoteReadCache::Lookup::kHit: {
      if (injector_ != nullptr) {
        // Every logical remote read consumes exactly one draw of the
        // seeded failure schedule, hit or not — otherwise the cache would
        // shift which later reads fail and the run would diverge from the
        // cache-off run. A fault on a cached read is billed as a failed
        // physical trip and poisons the entry, exactly like a failed fill.
        Status st = injector_->InjectOnRead(pred);
        if (!st.ok()) {
          remote_trips_.fetch_add(1, std::memory_order_relaxed);
          if (ctr_remote_trips_ != nullptr) ctr_remote_trips_->Add(1);
          remote_failures_.fetch_add(1, std::memory_order_relaxed);
          if (ctr_remote_failures_ != nullptr) ctr_remote_failures_->Add(1);
          cache_.NoteFailure(pred);
          return st;
        }
      }
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      cached_tuples_.fetch_add(count, std::memory_order_relaxed);
      if (ctr_cache_hits_ != nullptr) ctr_cache_hits_->Add(1);
      return Status::OK();
    }
    case RemoteReadCache::Lookup::kMissStale:
      if (ctr_cache_invalidations_ != nullptr) {
        ctr_cache_invalidations_->Add(1);
      }
      [[fallthrough]];
    case RemoteReadCache::Lookup::kMissCold: {
      if (ctr_cache_misses_ != nullptr) ctr_cache_misses_->Add(1);
      Status st = FetchRemote(pred, count);
      if (st.ok()) {
        cache_.NoteFill(pred, version);
      } else {
        cache_.NoteFailure(pred);
      }
      return st;
    }
  }
  return Status::OK();  // unreachable: the switch above is exhaustive
}

Status SiteDatabase::FetchRemote(const std::string& pred, size_t count) {
  obs::Span span("distsim.remote_read", "distsim");
  if (span.active()) {
    span.Attr("pred", pred);
    span.Attr("tuples", static_cast<int64_t>(count));
  }
  obs::Stopwatch fill_timer;
  if (budget_ != nullptr) {
    // A trip the budget cannot afford is refused, not paid: no trip is
    // billed, no injector draw is consumed.
    CCPI_RETURN_IF_ERROR(budget_->OnRemoteTrip());
  }
  // The round trip is paid whether or not it succeeds.
  remote_trips_.fetch_add(1, std::memory_order_relaxed);
  if (ctr_remote_trips_ != nullptr) ctr_remote_trips_->Add(1);
  if (injector_ != nullptr) {
    Status st = injector_->InjectOnRead(pred);
    if (!st.ok()) {
      remote_failures_.fetch_add(1, std::memory_order_relaxed);
      if (ctr_remote_failures_ != nullptr) ctr_remote_failures_->Add(1);
      if (span.active()) span.Attr("fault", st.message());
      return st;
    }
  }
  remote_tuples_.fetch_add(count, std::memory_order_relaxed);
  if (ctr_remote_tuples_ != nullptr) ctr_remote_tuples_->Add(count);
  fill_timer.RecordTo(hist_fill_latency_);
  return Status::OK();
}

void SiteDatabase::PrefetchRemote(const std::set<std::string>& preds) {
  // Under fault injection the per-read draw alignment forbids batching;
  // the manager already skips prefetch then, this guard makes a direct
  // call harmless too.
  if (!cache_enabled_ || injector_ != nullptr) return;
  for (const std::string& pred : preds) {
    if (IsLocal(pred)) continue;
    const Relation& rel = cache_source().Get(pred, 0);
    if (cache_.Find(pred, rel.version()) == RemoteReadCache::Lookup::kHit) {
      continue;  // already current: no logical read happened, bill nothing
    }
    // The fill routes through ReadRemote so miss/invalidation counters and
    // the fill path behave exactly as an inline read of the whole relation
    // would. Without an injector the fetch can only fail by exhausting an
    // attached budget; stop prefetching then — the fan-out's own reads
    // will hit the same exhausted scope and shed.
    Status st = ReadRemote(pred, rel.size());
    if (!st.ok()) {
      CCPI_DCHECK(st.code() == StatusCode::kResourceExhausted);
      return;
    }
  }
}

}  // namespace ccpi
