#include "distsim/site_db.h"

#include <chrono>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ccpi {

namespace {

void SleepUs(uint64_t us) {
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

/// Bucket edges of the per-site latency histograms, in microseconds
/// (1us..100ms in 1-2-5 steps); the default registry ladder is scaled for
/// nanoseconds and would crush every realistic trip into one bucket.
std::vector<uint64_t> LatencyBoundsUs() {
  return {1,    2,    5,    10,    20,    50,    100,   200,
          500,  1000, 2000, 5000,  10000, 20000, 50000, 100000};
}

/// Debug-only occupancy tracking of the read path (see ResetStats).
class ActiveReadGuard {
 public:
  explicit ActiveReadGuard(std::atomic<int>* count) : count_(count) {
#ifndef NDEBUG
    count_->fetch_add(1, std::memory_order_acq_rel);
#endif
  }
  ~ActiveReadGuard() {
#ifndef NDEBUG
    count_->fetch_sub(1, std::memory_order_acq_rel);
#endif
  }
  ActiveReadGuard(const ActiveReadGuard&) = delete;
  ActiveReadGuard& operator=(const ActiveReadGuard&) = delete;

 private:
  [[maybe_unused]] std::atomic<int>* count_;
};

}  // namespace

void SiteDatabase::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    ctr_local_tuples_ = nullptr;
    ctr_remote_tuples_ = nullptr;
    ctr_remote_trips_ = nullptr;
    ctr_remote_failures_ = nullptr;
    ctr_cache_hits_ = nullptr;
    ctr_cache_misses_ = nullptr;
    ctr_cache_invalidations_ = nullptr;
    hist_fill_latency_ = nullptr;
    for (auto& st : site_states_) {
      st->ctr_trips = nullptr;
      st->ctr_failures = nullptr;
      st->ctr_cache_hits = nullptr;
      st->hist_latency = nullptr;
    }
    return;
  }
  ctr_local_tuples_ = registry->GetCounter("distsim.local_tuples");
  ctr_remote_tuples_ = registry->GetCounter("distsim.remote_tuples");
  ctr_remote_trips_ = registry->GetCounter("distsim.remote_trips");
  ctr_remote_failures_ = registry->GetCounter("distsim.remote_failures");
  ctr_cache_hits_ = registry->GetCounter("distsim.cache_hits");
  ctr_cache_misses_ = registry->GetCounter("distsim.cache_misses");
  ctr_cache_invalidations_ =
      registry->GetCounter("distsim.cache_invalidations");
  hist_fill_latency_ =
      registry->GetHistogram("distsim.cache_fill_latency_ns");
  // Per-site counters only when there is more than one site: a 1-site
  // registry dump stays byte-identical to the pre-topology catalog.
  if (site_states_.size() > 1) {
    for (size_t s = 0; s < site_states_.size(); ++s) {
      std::string prefix = "distsim.site" + std::to_string(s);
      site_states_[s]->ctr_trips =
          registry->GetCounter(prefix + ".remote_trips");
      site_states_[s]->ctr_failures =
          registry->GetCounter(prefix + ".remote_failures");
      site_states_[s]->ctr_cache_hits =
          registry->GetCounter(prefix + ".cache_hits");
    }
  }
  // Latency histograms only for sites running a non-fixed model: the
  // default (fixed) configuration must leave the metric catalog — and so
  // the --metrics-out dump — byte-identical to the pre-latency-model one.
  for (size_t s = 0; s < site_states_.size(); ++s) {
    if (site_states_[s]->costs.latency_model == LatencyModel::kFixed) {
      continue;
    }
    site_states_[s]->hist_latency = registry->GetHistogram(
        "distsim.site" + std::to_string(s) + ".latency_us",
        LatencyBoundsUs());
  }
}

void SiteDatabase::EnableRemoteCache(bool on) {
  cache_enabled_ = on;
  if (!on) {
    for (auto& st : site_states_) st->cache.Clear();
  }
}

Status SiteDatabase::OnRead(const std::string& pred, size_t count) {
  if (IsLocal(pred)) {
    ActiveReadGuard guard(&active_reads_);
    local_tuples_.fetch_add(count, std::memory_order_relaxed);
    if (ctr_local_tuples_ != nullptr) ctr_local_tuples_->Add(count);
    return Status::OK();
  }
  return ReadRemote(pred, count);
}

Status SiteDatabase::ReadRemote(const std::string& pred, size_t count) {
  ActiveReadGuard guard(&active_reads_);
  const size_t site = topology_.SiteOf(pred);
  SiteState& st = *site_states_[site];
  if (st.budget != nullptr) {
    // Deadline/cancellation gate before any trip accounting or injector
    // draw, so budgeted cache-on and cache-off runs refuse at the same
    // point. The trip cap itself is charged in FetchRemote, where the
    // physical trip would be paid.
    CCPI_RETURN_IF_ERROR(st.budget->Check());
  }
  if (!cache_enabled_) return FetchRemote(site, pred, count);

  const uint64_t version = cache_source().Get(pred, 0).version();
  switch (st.cache.Find(pred, version)) {
    case RemoteReadCache::Lookup::kHit: {
      if (st.injector != nullptr) {
        // Every logical remote read consumes exactly one draw of the
        // site's seeded failure schedule, hit or not — otherwise the cache
        // would shift which later reads fail and the run would diverge
        // from the cache-off run. A fault on a cached read is billed as a
        // failed physical trip and poisons the entry, exactly like a
        // failed fill.
        Status fault = st.injector->InjectOnRead(pred);
        if (!fault.ok()) {
          remote_trips_.fetch_add(1, std::memory_order_relaxed);
          st.remote_trips.fetch_add(1, std::memory_order_relaxed);
          if (ctr_remote_trips_ != nullptr) ctr_remote_trips_->Add(1);
          if (st.ctr_trips != nullptr) st.ctr_trips->Add(1);
          remote_failures_.fetch_add(1, std::memory_order_relaxed);
          st.remote_failures.fetch_add(1, std::memory_order_relaxed);
          if (ctr_remote_failures_ != nullptr) ctr_remote_failures_->Add(1);
          if (st.ctr_failures != nullptr) st.ctr_failures->Add(1);
          st.cache.NoteFailure(pred);
          return fault;
        }
      }
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      cached_tuples_.fetch_add(count, std::memory_order_relaxed);
      st.cache_hits.fetch_add(1, std::memory_order_relaxed);
      st.cached_tuples.fetch_add(count, std::memory_order_relaxed);
      if (ctr_cache_hits_ != nullptr) ctr_cache_hits_->Add(1);
      if (st.ctr_cache_hits != nullptr) st.ctr_cache_hits->Add(1);
      return Status::OK();
    }
    case RemoteReadCache::Lookup::kMissStale:
      if (ctr_cache_invalidations_ != nullptr) {
        ctr_cache_invalidations_->Add(1);
      }
      [[fallthrough]];
    case RemoteReadCache::Lookup::kMissCold: {
      if (ctr_cache_misses_ != nullptr) ctr_cache_misses_->Add(1);
      Status fetched = FetchRemote(site, pred, count);
      if (fetched.ok()) {
        st.cache.NoteFill(pred, version);
      } else {
        st.cache.NoteFailure(pred);
      }
      return fetched;
    }
  }
  return Status::OK();  // unreachable: the switch above is exhaustive
}

void SiteDatabase::SimulateTripLatency(size_t site) const {
  const SiteState& st = *site_states_[site];
  if (st.costs.latency_model == LatencyModel::kFixed) {
    // The historical path: constant cost, no randomness consumed.
    SleepUs(st.costs.trip_latency_us);
    return;
  }
  SleepUs(DrawTripLatencyUs(site));
}

uint64_t SiteDatabase::DrawTripLatencyUs(size_t site) const {
  SiteState& st = *site_states_[site];
  const CostModel& cm = st.costs;
  CCPI_DCHECK(cm.latency_model != LatencyModel::kFixed);
  // Counter-keyed draw: each trip seeds its own splitmix64 from
  // (seed, site, draw index), so the multiset of latencies a site sees is
  // a pure function of the seed — whichever thread happens to pay which
  // trip. The site stride is the golden-ratio constant the fault
  // injectors already use for per-site seed derivation.
  const uint64_t index =
      st.latency_draws.fetch_add(1, std::memory_order_relaxed);
  Rng rng(cm.latency_seed + static_cast<uint64_t>(site) *
                                0x9e3779b97f4a7c15ull +
          index * 0xbf58476d1ce4e5b9ull);
  uint64_t us = cm.latency_lo_us;
  switch (cm.latency_model) {
    case LatencyModel::kFixed:
      us = cm.trip_latency_us;  // unreachable: gated above
      break;
    case LatencyModel::kUniform:
      us = cm.latency_lo_us +
           rng.Below(cm.latency_hi_us - cm.latency_lo_us + 1);
      break;
    case LatencyModel::kTwoPoint: {
      const uint64_t slow_per_million =
          static_cast<uint64_t>(cm.latency_slow_share * 1e6);
      us = rng.Below(1000000) < slow_per_million ? cm.latency_hi_us
                                                 : cm.latency_lo_us;
      break;
    }
  }
  // EWMA update, alpha 1/4, fixed-point us << 8. The first observation
  // seeds the average directly (0 is the no-observation sentinel; real
  // latencies are >= 1us so it cannot occur naturally).
  const uint64_t sample_q8 = us << 8;
  uint64_t cur = st.latency_ewma_q8.load(std::memory_order_relaxed);
  uint64_t next;
  do {
    next = cur == 0 ? sample_q8 : cur - (cur >> 2) + (sample_q8 >> 2);
  } while (!st.latency_ewma_q8.compare_exchange_weak(
      cur, next, std::memory_order_relaxed));
  if (st.hist_latency != nullptr) st.hist_latency->Observe(us);
  return us;
}

size_t SiteDatabase::SimulateHedgedTripLatency(size_t site) const {
  SiteState& st = *site_states_[site];
  if (hedge_after_ == 0 || st.costs.latency_model == LatencyModel::kFixed) {
    // Hedging off, or a deterministic site (a backup could never beat the
    // primary): the plain trip, zero extra billing.
    SimulateTripLatency(site);
    return 0;
  }
  // Read the EWMA *before* drawing, so the threshold reflects past trips
  // only; the primary draw itself then feeds the average as usual.
  const uint64_t ewma = site_latency_ewma_us(site);
  const uint64_t primary = DrawTripLatencyUs(site);
  if (ewma == 0 || primary <= hedge_after_ * ewma) {
    SleepUs(primary);
    return 0;
  }
  // The primary overshot: launch the deterministic single backup at the
  // threshold instant and take whichever attempt lands first. The backup
  // is a real physical trip whatever happens — the caller bills exactly
  // one extra trip per issued hedge, won or wasted.
  const uint64_t threshold = hedge_after_ * ewma;
  const uint64_t backup = DrawTripLatencyUs(site);
  const uint64_t hedged = threshold + backup;
  hedges_issued_.fetch_add(1, std::memory_order_relaxed);
  if (ctr_hedge_issued_ != nullptr) ctr_hedge_issued_->Add(1);
  if (hedged < primary) {
    hedges_won_.fetch_add(1, std::memory_order_relaxed);
    if (ctr_hedge_won_ != nullptr) ctr_hedge_won_->Add(1);
    SleepUs(hedged);
  } else {
    hedges_wasted_.fetch_add(1, std::memory_order_relaxed);
    if (ctr_hedge_wasted_ != nullptr) ctr_hedge_wasted_->Add(1);
    SleepUs(primary);
  }
  return 1;
}

Status SiteDatabase::FetchRemote(size_t site, const std::string& pred,
                                 size_t count) {
  SiteState& st = *site_states_[site];
  obs::Span span("distsim.remote_read", "distsim");
  if (span.active()) {
    span.Attr("pred", pred);
    span.Attr("site", static_cast<int64_t>(site));
    span.Attr("tuples", static_cast<int64_t>(count));
  }
  obs::Stopwatch fill_timer;
  if (st.budget != nullptr) {
    // A trip the budget cannot afford is refused, not paid: no trip is
    // billed, no injector draw is consumed.
    CCPI_RETURN_IF_ERROR(st.budget->OnRemoteTrip());
  }
  SimulateTripLatency(site);
  // The round trip is paid whether or not it succeeds.
  remote_trips_.fetch_add(1, std::memory_order_relaxed);
  st.remote_trips.fetch_add(1, std::memory_order_relaxed);
  if (ctr_remote_trips_ != nullptr) ctr_remote_trips_->Add(1);
  if (st.ctr_trips != nullptr) st.ctr_trips->Add(1);
  if (st.injector != nullptr) {
    Status fault = st.injector->InjectOnRead(pred);
    if (!fault.ok()) {
      remote_failures_.fetch_add(1, std::memory_order_relaxed);
      st.remote_failures.fetch_add(1, std::memory_order_relaxed);
      if (ctr_remote_failures_ != nullptr) ctr_remote_failures_->Add(1);
      if (st.ctr_failures != nullptr) st.ctr_failures->Add(1);
      if (span.active()) span.Attr("fault", fault.message());
      return fault;
    }
  }
  remote_tuples_.fetch_add(count, std::memory_order_relaxed);
  st.remote_tuples.fetch_add(count, std::memory_order_relaxed);
  if (ctr_remote_tuples_ != nullptr) ctr_remote_tuples_->Add(count);
  fill_timer.RecordTo(hist_fill_latency_);
  return Status::OK();
}

void SiteDatabase::PrefetchRemote(const std::set<std::string>& preds) {
  // Under fault injection the per-read draw alignment forbids batching;
  // the manager already skips prefetch then, this guard makes a direct
  // call harmless too.
  if (!cache_enabled_ || any_fault_injector()) return;
  for (const std::string& pred : preds) {
    if (IsLocal(pred)) continue;
    const Relation& rel = cache_source().Get(pred, 0);
    const RemoteReadCache& cache = site_states_[SiteOf(pred)]->cache;
    if (cache.Find(pred, rel.version()) == RemoteReadCache::Lookup::kHit) {
      continue;  // already current: no logical read happened, bill nothing
    }
    // The fill routes through ReadRemote so miss/invalidation counters and
    // the fill path behave exactly as an inline read of the whole relation
    // would. Without an injector the fetch can only fail by exhausting an
    // attached budget; stop prefetching then — the fan-out's own reads
    // will hit the same exhausted scope and shed.
    Status st = ReadRemote(pred, rel.size());
    if (!st.ok()) {
      CCPI_DCHECK(st.code() == StatusCode::kResourceExhausted);
      return;
    }
  }
}

void SiteDatabase::PrefetchRemoteBatched(const std::set<std::string>& preds,
                                         ThreadPool* pool) {
  if (!cache_enabled_ || any_fault_injector()) return;
  // Group the cold/stale relations by owning site: each site's batch is
  // one coalesced round trip however many relations it carries.
  std::vector<std::vector<std::string>> batches(site_states_.size());
  for (const std::string& pred : preds) {
    if (IsLocal(pred)) continue;
    const size_t site = SiteOf(pred);
    const Relation& rel = cache_source().Get(pred, 0);
    if (site_states_[site]->cache.Find(pred, rel.version()) ==
        RemoteReadCache::Lookup::kHit) {
      continue;
    }
    batches[site].push_back(pred);
  }
  std::vector<size_t> work;
  for (size_t s = 0; s < batches.size(); ++s) {
    if (!batches[s].empty()) work.push_back(s);
  }
  if (work.empty()) return;

  auto fetch_batch = [&](size_t k) -> Status {
    ActiveReadGuard guard(&active_reads_);
    const size_t site = work[k];
    SiteState& st = *site_states_[site];
    obs::Span span("distsim.remote_batch", "distsim");
    if (span.active()) {
      span.Attr("site", static_cast<int64_t>(site));
      span.Attr("relations", static_cast<int64_t>(batches[site].size()));
    }
    if (st.budget != nullptr) {
      CCPI_RETURN_IF_ERROR(st.budget->Check());
      // One budgeted trip buys the whole batch; a refusal leaves the
      // site's entries unfilled and the fan-out's own reads will shed
      // against the same exhausted scope.
      CCPI_RETURN_IF_ERROR(st.budget->OnRemoteTrip());
    }
    // The batched trip is the hedging point: with hedging armed and a
    // slow draw, a single backup attempt races the primary. An issued
    // hedge bills exactly one extra physical trip (the tuples are billed
    // once — both attempts carry the same payload); the budget's trip cap
    // was charged once above, before paying, per the refuse-before-pay
    // rule — the backup is the simulator's own recovery of an
    // already-approved trip, not a second logical fetch.
    const size_t trips = 1 + SimulateHedgedTripLatency(site);
    remote_trips_.fetch_add(trips, std::memory_order_relaxed);
    st.remote_trips.fetch_add(trips, std::memory_order_relaxed);
    if (ctr_remote_trips_ != nullptr) ctr_remote_trips_->Add(trips);
    if (st.ctr_trips != nullptr) st.ctr_trips->Add(trips);
    for (const std::string& pred : batches[site]) {
      const Relation& rel = cache_source().Get(pred, 0);
      if (ctr_cache_misses_ != nullptr) ctr_cache_misses_->Add(1);
      remote_tuples_.fetch_add(rel.size(), std::memory_order_relaxed);
      st.remote_tuples.fetch_add(rel.size(), std::memory_order_relaxed);
      if (ctr_remote_tuples_ != nullptr) ctr_remote_tuples_->Add(rel.size());
      st.cache.NoteFill(pred, rel.version());
    }
    return Status::OK();
  };
  if (pool != nullptr && pool->thread_count() > 1 && work.size() > 1) {
    // Concurrent per-site round trips. Budget refusals surface per site;
    // the fan-out that follows re-encounters the same exhausted scopes,
    // so swallowing the status here loses nothing.
    (void)pool->ParallelFor(work.size(), fetch_batch);
  } else {
    for (size_t k = 0; k < work.size(); ++k) {
      (void)fetch_batch(k);
    }
  }
}

SiteDatabase::StagedFetch SiteDatabase::StageRemoteFetch(
    const std::string& pred, const Database& snapshot) const {
  StagedFetch staged;
  staged.pred = pred;
  staged.site = SiteOf(pred);
  const Relation& rel = snapshot.Get(pred, 0);
  staged.version = rel.version();
  staged.count = rel.size();
  // The round trip's wall-clock cost is paid here, on the speculation
  // thread, where it overlaps other episodes' work; everything observable
  // waits for CommitStagedFetch. Under a non-fixed latency model the
  // speculation sleeps a draw-free hint (the distribution's fast mode):
  // consuming a real draw here would let speculation-thread interleaving
  // reorder the site's deterministic latency stream. The real draw is
  // consumed at commit time, in commit order.
  const SiteState& st = *site_states_[staged.site];
  if (st.costs.latency_model == LatencyModel::kFixed) {
    SimulateTripLatency(staged.site);
  } else {
    SleepUs(st.costs.latency_lo_us);
  }
  return staged;
}

bool SiteDatabase::CommitStagedFetch(const StagedFetch& staged) {
  if (!cache_enabled_) return false;
  ActiveReadGuard guard(&active_reads_);
  SiteState& st = *site_states_[staged.site];
  const uint64_t live_version = cache_source().Get(staged.pred, 0).version();
  if (live_version != staged.version) {
    // An intervening commit mutated the relation: the staged fetch
    // observed contents the serial path would not fetch here. Discard
    // without a trace; the caller's normal prefetch pays the (now
    // differently-versioned) trip itself.
    return false;
  }
  switch (st.cache.Find(staged.pred, live_version)) {
    case RemoteReadCache::Lookup::kHit:
      // Another episode's commit already filled the entry at this version;
      // the serial path would skip the fetch, so the staged one vanishes.
      return false;
    case RemoteReadCache::Lookup::kMissStale:
      if (ctr_cache_invalidations_ != nullptr) {
        ctr_cache_invalidations_->Add(1);
      }
      [[fallthrough]];
    case RemoteReadCache::Lookup::kMissCold:
      break;
  }
  // From here this is ReadRemote's miss path minus the already-slept
  // latency: miss counter, successful physical trip (the caller gates
  // staging on no-injector and no-budget, so the trip cannot fail or be
  // refused), tuples, cache fill. Equal versions imply equal contents, so
  // staged.count is exactly the live relation's size.
  CCPI_DCHECK(st.injector == nullptr && st.budget == nullptr);
  if (st.costs.latency_model != LatencyModel::kFixed) {
    // Consume the trip's latency draw here, in commit order, so the
    // site's deterministic stream (and its EWMA/histogram) advances
    // exactly as the serial prefetch path would. The sleep already
    // happened at staging time, so the drawn value is discarded.
    (void)DrawTripLatencyUs(staged.site);
  }
  if (ctr_cache_misses_ != nullptr) ctr_cache_misses_->Add(1);
  obs::Span span("distsim.remote_read", "distsim");
  if (span.active()) {
    span.Attr("pred", staged.pred);
    span.Attr("site", static_cast<int64_t>(staged.site));
    span.Attr("tuples", static_cast<int64_t>(staged.count));
  }
  obs::Stopwatch fill_timer;
  remote_trips_.fetch_add(1, std::memory_order_relaxed);
  st.remote_trips.fetch_add(1, std::memory_order_relaxed);
  if (ctr_remote_trips_ != nullptr) ctr_remote_trips_->Add(1);
  if (st.ctr_trips != nullptr) st.ctr_trips->Add(1);
  remote_tuples_.fetch_add(staged.count, std::memory_order_relaxed);
  st.remote_tuples.fetch_add(staged.count, std::memory_order_relaxed);
  if (ctr_remote_tuples_ != nullptr) ctr_remote_tuples_->Add(staged.count);
  fill_timer.RecordTo(hist_fill_latency_);
  st.cache.NoteFill(staged.pred, live_version);
  return true;
}

size_t SiteDatabase::RecoverSiteCache(size_t site,
                                      const std::set<std::string>& preds) {
  CCPI_CHECK(site < site_states_.size());
  if (!cache_enabled_) return 0;
  SiteState& st = *site_states_[site];
  size_t revalidated = 0;
  for (const std::string& pred : preds) {
    if (IsLocal(pred) || SiteOf(pred) != site) continue;
    const Relation& rel = cache_source().Get(pred, 0);
    // Only entries the outage left behind (poisoned fills, versions that
    // moved while the site was dark) are reconciled; never-fetched
    // relations stay cold until a check actually needs them.
    if (st.cache.Find(pred, rel.version()) !=
        RemoteReadCache::Lookup::kMissStale) {
      continue;
    }
    obs::Span span("distsim.site_recover", "distsim");
    if (span.active()) {
      span.Attr("pred", pred);
      span.Attr("site", static_cast<int64_t>(site));
    }
    // The normal read path: the trip is billed, the site's schedule draw
    // is consumed, and a fetch that still faults leaves the entry
    // poisoned for the next recovery pass.
    if (ReadRemote(pred, rel.size()).ok()) ++revalidated;
  }
  return revalidated;
}

}  // namespace ccpi
