#include "distsim/site_db.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ccpi {

void SiteDatabase::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    ctr_local_tuples_ = nullptr;
    ctr_remote_tuples_ = nullptr;
    ctr_remote_trips_ = nullptr;
    ctr_remote_failures_ = nullptr;
    return;
  }
  ctr_local_tuples_ = registry->GetCounter("distsim.local_tuples");
  ctr_remote_tuples_ = registry->GetCounter("distsim.remote_tuples");
  ctr_remote_trips_ = registry->GetCounter("distsim.remote_trips");
  ctr_remote_failures_ = registry->GetCounter("distsim.remote_failures");
}

Status SiteDatabase::OnRead(const std::string& pred, size_t count) {
  if (IsLocal(pred)) {
    local_tuples_.fetch_add(count, std::memory_order_relaxed);
    if (ctr_local_tuples_ != nullptr) ctr_local_tuples_->Add(count);
    return Status::OK();
  }
  return ReadRemote(pred, count);
}

Status SiteDatabase::ReadRemote(const std::string& pred, size_t count) {
  obs::Span span("distsim.remote_read", "distsim");
  if (span.active()) {
    span.Attr("pred", pred);
    span.Attr("tuples", static_cast<int64_t>(count));
  }
  // The round trip is paid whether or not it succeeds.
  remote_trips_.fetch_add(1, std::memory_order_relaxed);
  if (ctr_remote_trips_ != nullptr) ctr_remote_trips_->Add(1);
  if (injector_ != nullptr) {
    Status st = injector_->InjectOnRead(pred);
    if (!st.ok()) {
      remote_failures_.fetch_add(1, std::memory_order_relaxed);
      if (ctr_remote_failures_ != nullptr) ctr_remote_failures_->Add(1);
      if (span.active()) span.Attr("fault", st.message());
      return st;
    }
  }
  remote_tuples_.fetch_add(count, std::memory_order_relaxed);
  if (ctr_remote_tuples_ != nullptr) ctr_remote_tuples_->Add(count);
  return Status::OK();
}

}  // namespace ccpi
