#include "distsim/site_db.h"

namespace ccpi {

void SiteDatabase::OnRead(const std::string& pred, size_t count) {
  if (IsLocal(pred)) {
    stats_.local_tuples += count;
  } else {
    stats_.remote_tuples += count;
    stats_.remote_trips += 1;
  }
}

}  // namespace ccpi
