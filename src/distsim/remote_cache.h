#ifndef CCPI_DISTSIM_REMOTE_CACHE_H_
#define CCPI_DISTSIM_REMOTE_CACHE_H_

#include <cstdint>
#include <shared_mutex>
#include <string>
#include <unordered_map>

namespace ccpi {

/// Per-relation snapshot cache of remote reads, keyed by the relation's
/// content-version stamp (Relation::version()).
///
/// The cache does not hold tuples — remote data in the simulator already
/// lives in the local Database, so "serving from cache" just means skipping
/// the simulated round trip and billing local access. What the cache tracks
/// is *whether the last physical fetch of a relation is still current*:
/// an entry records the version observed at the last successful fill, and a
/// lookup hits iff the entry is usable and the stored version equals the
/// relation's current version. Because version stamps come from one
/// process-wide monotone counter and are bumped only by content-changing
/// mutations, equal versions imply equal contents everywhere — across
/// committed updates, rollbacks, and scratch-database copies — so there is
/// no explicit invalidation hook: mutating a relation *is* the
/// invalidation.
///
/// A failed fill calls NoteFailure, which leaves the entry present but
/// unusable; subsequent lookups miss (kMissStale) until a later fill
/// succeeds, so checks degrade to the deferred path exactly as with no
/// cache.
///
/// Thread safety: all methods are safe to call concurrently (shared lock
/// for lookups, exclusive for fills). During the manager's parallel tier-3
/// fan-out the cache is read-only in practice — entries are pre-filled by
/// the episode's prefetch pass — so lookups take the shared fast path.
class RemoteReadCache {
 public:
  enum class Lookup : uint8_t {
    kHit,        // entry usable and version matches: serve locally
    kMissCold,   // never fetched: physical trip required
    kMissStale,  // fetched before, but mutated since (or last fill failed)
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;          // cold + stale
    uint64_t invalidations = 0;   // stale misses: a version moved on us
  };

  /// Classifies a read of `pred` whose relation currently has `version`.
  /// Does not mutate the cache (billing of hit/miss counters is the
  /// caller's job, so a prefetch probe can stay silent).
  Lookup Find(const std::string& pred, uint64_t version) const;

  /// Records a successful physical fetch of `pred` at `version`.
  void NoteFill(const std::string& pred, uint64_t version);

  /// Records a failed physical fetch: the entry (if any) becomes unusable
  /// until the next successful fill.
  void NoteFailure(const std::string& pred);

  /// Drops every entry (test hook).
  void Clear();

  size_t size() const;

 private:
  struct Entry {
    uint64_t version = 0;
    bool usable = false;
  };

  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
};

const char* RemoteCacheLookupToString(RemoteReadCache::Lookup lookup);

}  // namespace ccpi

#endif  // CCPI_DISTSIM_REMOTE_CACHE_H_
