#include "distsim/topology.h"

#include <set>

#include "util/check.h"

namespace ccpi {

Topology::Topology(TopologyConfig config) : config_(std::move(config)) {
  CCPI_CHECK(config_.sites >= 1);
  for (const auto& [pred, site] : config_.placement) {
    (void)pred;
    CCPI_CHECK(site < config_.sites);
  }
  // Backstop validation of the domain layer (the CLI/script layer rejects
  // bad input with a friendly message before ever getting here): members
  // in range, no site in two domains, windows not inverted.
  std::set<size_t> claimed;
  for (const FailureDomain& domain : config_.domains) {
    for (size_t member : domain.members) {
      CCPI_CHECK(member < config_.sites);
      CCPI_CHECK(claimed.insert(member).second);
    }
    for (const OutageWindow& window : domain.outages) {
      CCPI_CHECK(window.begin <= window.end);
    }
  }
  for (const auto& [site, override] : config_.site_latency) {
    (void)override;
    CCPI_CHECK(site < config_.sites);
  }
}

uint64_t Topology::HashPred(const std::string& pred) {
  // FNV-1a, 64-bit.
  uint64_t h = 14695981039346656037ull;
  for (char c : pred) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

size_t Topology::SiteOf(const std::string& pred) const {
  if (config_.sites == 1) return 0;
  auto it = config_.placement.find(pred);
  if (it != config_.placement.end()) return it->second;
  return static_cast<size_t>(HashPred(pred) % config_.sites);
}

std::vector<std::vector<OutageWindow>> ExpandDomainOutages(
    const TopologyConfig& config) {
  std::vector<std::vector<OutageWindow>> per_site(config.sites);
  for (const FailureDomain& domain : config.domains) {
    if (domain.outages.empty()) continue;
    for (size_t member : domain.members) {
      CCPI_CHECK(member < config.sites);
      for (const OutageWindow& window : domain.outages) {
        per_site[member].push_back(window);
      }
    }
  }
  return per_site;
}

}  // namespace ccpi
