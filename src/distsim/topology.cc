#include "distsim/topology.h"

#include "util/check.h"

namespace ccpi {

Topology::Topology(TopologyConfig config) : config_(std::move(config)) {
  CCPI_CHECK(config_.sites >= 1);
  for (const auto& [pred, site] : config_.placement) {
    (void)pred;
    CCPI_CHECK(site < config_.sites);
  }
}

uint64_t Topology::HashPred(const std::string& pred) {
  // FNV-1a, 64-bit.
  uint64_t h = 14695981039346656037ull;
  for (char c : pred) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

size_t Topology::SiteOf(const std::string& pred) const {
  if (config_.sites == 1) return 0;
  auto it = config_.placement.find(pred);
  if (it != config_.placement.end()) return it->second;
  return static_cast<size_t>(HashPred(pred) % config_.sites);
}

}  // namespace ccpi
