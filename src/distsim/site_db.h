#ifndef CCPI_DISTSIM_SITE_DB_H_
#define CCPI_DISTSIM_SITE_DB_H_

#include <atomic>
#include <set>
#include <string>

#include "distsim/cost_model.h"
#include "distsim/fault_injector.h"
#include "distsim/remote_accessor.h"
#include "distsim/remote_cache.h"
#include "eval/engine.h"
#include "relational/database.h"
#include "util/check.h"

namespace ccpi {

namespace obs {
class Counter;
class Histogram;
class MetricsRegistry;
}  // namespace obs

/// Access statistics of one evaluation (or one update-checking episode)
/// over a partitioned database.
struct AccessStats {
  size_t local_tuples = 0;
  size_t remote_tuples = 0;
  size_t remote_trips = 0;
  /// Remote trips that failed (injected fault). A failed trip still pays
  /// the round-trip latency — it is included in remote_trips — but no
  /// tuples came back, so it contributes nothing to remote_tuples.
  size_t remote_failures = 0;
  /// Remote reads served from the snapshot cache: no round trip was paid
  /// and the tuples are billed at cached_tuple_cost, not remote_tuple_cost.
  size_t cache_hits = 0;
  size_t cached_tuples = 0;

  double Cost(const CostModel& model) const {
    return static_cast<double>(local_tuples) * model.local_tuple_cost +
           static_cast<double>(remote_tuples) * model.remote_tuple_cost +
           static_cast<double>(remote_trips) * model.remote_round_trip_cost +
           static_cast<double>(cached_tuples) * model.cached_tuple_cost;
  }

  AccessStats& operator+=(const AccessStats& other) {
    local_tuples += other.local_tuples;
    remote_tuples += other.remote_tuples;
    remote_trips += other.remote_trips;
    remote_failures += other.remote_failures;
    cache_hits += other.cache_hits;
    cached_tuples += other.cached_tuples;
    return *this;
  }
};

/// A database split into "local" and "remote" predicates, in the sense of
/// Section 5: the site applying updates holds the local relations; every
/// read of a remote relation is charged. The class is an AccessObserver —
/// plug it into EvalOptions (or EvalRa) and it attributes each read to the
/// right side of the partition — and a RemoteAccessor: when a
/// FaultInjector is attached, remote reads can *fail*, surfacing as
/// kUnavailable / kDeadlineExceeded through whatever evaluation is in
/// flight. Local reads never fail.
///
/// With the remote-read cache enabled (EnableRemoteCache), a read of a
/// remote relation whose content version matches the last successful
/// physical fetch is served as a cache hit — no round trip, tuples billed
/// at cached_tuple_cost — while misses fall through to the physical path
/// and refresh the cache. See docs/remote_cache.md for the keying,
/// invalidation, and fault-interaction rules.
///
/// Thread-safety: the read path (OnRead / ReadRemote) only bumps atomic
/// counters and takes shared-mode cache lookups, and may run from many
/// checker threads at once, provided the underlying Database is not
/// mutated concurrently (the manager freezes it for the duration of a
/// fan-out). Cache fills take the cache's exclusive lock and are safe
/// concurrently, but the manager avoids racing fills by prefetching the
/// episode's remote relations before the parallel fan-out. Configuration
/// calls (set_fault_injector, set_metrics, EnableRemoteCache,
/// set_cache_db, ResetStats, db() mutation) must be externally serialized
/// against reads.
class SiteDatabase : public AccessObserver, public RemoteAccessor {
 public:
  explicit SiteDatabase(std::set<std::string> local_preds)
      : local_preds_(std::move(local_preds)) {}

  bool IsLocal(const std::string& pred) const {
    return local_preds_.count(pred) > 0;
  }
  const std::set<std::string>& local_preds() const { return local_preds_; }

  Database& db() { return db_; }
  const Database& db() const { return db_; }

  /// Attaches (or detaches, with nullptr) the fault source for remote
  /// reads. Not owned; must outlive the site. With no injector attached
  /// every remote read succeeds, preserving the pre-fault behaviour.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  /// Attaches (or detaches, with nullptr) an execution-budget scope
  /// (configuration call: serialize against reads; not owned, must outlive
  /// the reads it governs — the manager scopes it to one episode). Remote
  /// reads then become deadline-aware: a read is refused with
  /// kResourceExhausted *before* paying the round trip once the deadline
  /// has passed, the token is cancelled, or the scope's remote-trip cap is
  /// spent. Cache hits pay no trip and are never charged against the trip
  /// cap (the cache genuinely stretches the budget; see docs/budgets.md).
  /// Local reads are always free and never refused.
  void set_budget(const BudgetScope* scope) { budget_ = scope; }
  const BudgetScope* budget() const { return budget_; }

  /// Attaches (or detaches, with nullptr) a metrics registry. Every read
  /// then also bumps the `distsim.*` counters (see docs/observability.md)
  /// in addition to the per-site AccessStats. Not owned; must outlive the
  /// site.
  void set_metrics(obs::MetricsRegistry* registry);

  /// AccessObserver: attributes `count` enumerated tuples of `pred`.
  /// Each remote read event also counts one round trip; a remote read may
  /// fail when a fault injector is attached.
  Status OnRead(const std::string& pred, size_t count) override;

  /// RemoteAccessor: one remote episode of `count` tuples of `pred`.
  bool IsRemote(const std::string& pred) const override {
    return !IsLocal(pred);
  }
  Status ReadRemote(const std::string& pred, size_t count) override;

  /// Turns the remote-read snapshot cache on or off (configuration call:
  /// serialize against reads). Off by default so a bare SiteDatabase
  /// behaves exactly as before; the ConstraintManager enables it per its
  /// RemoteCacheConfig. Turning the cache off also drops its entries.
  void EnableRemoteCache(bool on);
  bool remote_cache_enabled() const { return cache_enabled_; }
  RemoteReadCache& remote_cache() { return cache_; }

  /// Overrides (or with nullptr restores to this site's own db) the
  /// database whose relation versions key cache decisions. The manager
  /// points this at its scratch database while replaying deferred checks,
  /// so a cached fill of the *live* relation is never served for a scratch
  /// relation whose contents differ. Configuration call: the caller must
  /// not have evaluations in flight.
  void set_cache_db(const Database* db) { cache_db_ = db; }

  /// Batched prefetch: physically fetches every cold or stale relation in
  /// `preds` (local and already-valid entries are skipped silently) so a
  /// following fan-out reads them as cache hits. No-op when the cache is
  /// off or a fault injector is attached — under injection each logical
  /// read must consume its own draw of the failure schedule in evaluation
  /// order, which a batched pass would reorder.
  void PrefetchRemote(const std::set<std::string>& preds);

  /// Snapshot of the statistics accumulated since the last Reset
  /// (by value: counters may be advancing on other threads).
  AccessStats stats() const {
    AccessStats s;
    s.local_tuples = local_tuples_.load(std::memory_order_relaxed);
    s.remote_tuples = remote_tuples_.load(std::memory_order_relaxed);
    s.remote_trips = remote_trips_.load(std::memory_order_relaxed);
    s.remote_failures = remote_failures_.load(std::memory_order_relaxed);
    s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
    s.cached_tuples = cached_tuples_.load(std::memory_order_relaxed);
    return s;
  }

  /// Zeroes the access counters. Exclusivity contract: the caller must
  /// guarantee no read (OnRead / ReadRemote) is in flight — the fields are
  /// zeroed one by one, so a reset concurrent with a draining fan-out
  /// would yield a torn snapshot (some of the episode's reads surviving
  /// the reset, others not). The manager only resets between episodes;
  /// debug builds enforce the contract by tracking in-flight reads and
  /// aborting if a reset races one.
  void ResetStats() {
    CCPI_DCHECK(active_reads_.load(std::memory_order_acquire) == 0);
    local_tuples_.store(0, std::memory_order_relaxed);
    remote_tuples_.store(0, std::memory_order_relaxed);
    remote_trips_.store(0, std::memory_order_relaxed);
    remote_failures_.store(0, std::memory_order_relaxed);
    cache_hits_.store(0, std::memory_order_relaxed);
    cached_tuples_.store(0, std::memory_order_relaxed);
  }

 private:
  /// The database whose relation versions (and sizes, for prefetch) drive
  /// cache decisions: the override when set, this site's own db otherwise.
  const Database& cache_source() const {
    return cache_db_ != nullptr ? *cache_db_ : db_;
  }

  /// One physical round trip: span, trip/tuple/failure billing, fault
  /// injection, fill-latency timing. The pre-cache ReadRemote body.
  Status FetchRemote(const std::string& pred, size_t count);

  std::set<std::string> local_preds_;
  Database db_;
  std::atomic<size_t> local_tuples_{0};
  std::atomic<size_t> remote_tuples_{0};
  std::atomic<size_t> remote_trips_{0};
  std::atomic<size_t> remote_failures_{0};
  std::atomic<size_t> cache_hits_{0};
  std::atomic<size_t> cached_tuples_{0};
  // Debug-only occupancy count of OnRead/ReadRemote, backing the
  // ResetStats exclusivity assertion. Increments are compiled out in
  // NDEBUG builds, so the release hot path is untouched.
  std::atomic<int> active_reads_{0};
  FaultInjector* injector_ = nullptr;
  const BudgetScope* budget_ = nullptr;
  bool cache_enabled_ = false;
  RemoteReadCache cache_;
  const Database* cache_db_ = nullptr;
  // Counter handles resolved once in set_metrics (registry handles are
  // stable for the registry's lifetime), so the read path never does a
  // name lookup.
  obs::Counter* ctr_local_tuples_ = nullptr;
  obs::Counter* ctr_remote_tuples_ = nullptr;
  obs::Counter* ctr_remote_trips_ = nullptr;
  obs::Counter* ctr_remote_failures_ = nullptr;
  obs::Counter* ctr_cache_hits_ = nullptr;
  obs::Counter* ctr_cache_misses_ = nullptr;
  obs::Counter* ctr_cache_invalidations_ = nullptr;
  obs::Histogram* hist_fill_latency_ = nullptr;
};

}  // namespace ccpi

#endif  // CCPI_DISTSIM_SITE_DB_H_
