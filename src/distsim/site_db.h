#ifndef CCPI_DISTSIM_SITE_DB_H_
#define CCPI_DISTSIM_SITE_DB_H_

#include <set>
#include <string>

#include "distsim/cost_model.h"
#include "eval/engine.h"
#include "relational/database.h"

namespace ccpi {

/// Access statistics of one evaluation (or one update-checking episode)
/// over a partitioned database.
struct AccessStats {
  size_t local_tuples = 0;
  size_t remote_tuples = 0;
  size_t remote_trips = 0;

  double Cost(const CostModel& model) const {
    return static_cast<double>(local_tuples) * model.local_tuple_cost +
           static_cast<double>(remote_tuples) * model.remote_tuple_cost +
           static_cast<double>(remote_trips) * model.remote_round_trip_cost;
  }

  AccessStats& operator+=(const AccessStats& other) {
    local_tuples += other.local_tuples;
    remote_tuples += other.remote_tuples;
    remote_trips += other.remote_trips;
    return *this;
  }
};

/// A database split into "local" and "remote" predicates, in the sense of
/// Section 5: the site applying updates holds the local relations; every
/// read of a remote relation is charged. The class is an AccessObserver —
/// plug it into EvalOptions (or EvalRa) and it attributes each read to the
/// right side of the partition.
class SiteDatabase : public AccessObserver {
 public:
  explicit SiteDatabase(std::set<std::string> local_preds)
      : local_preds_(std::move(local_preds)) {}

  bool IsLocal(const std::string& pred) const {
    return local_preds_.count(pred) > 0;
  }
  const std::set<std::string>& local_preds() const { return local_preds_; }

  Database& db() { return db_; }
  const Database& db() const { return db_; }

  /// AccessObserver: attributes `count` enumerated tuples of `pred`.
  /// Each remote read event also counts one round trip.
  void OnRead(const std::string& pred, size_t count) override;

  /// Statistics accumulated since the last Reset.
  const AccessStats& stats() const { return stats_; }
  void ResetStats() { stats_ = AccessStats{}; }

 private:
  std::set<std::string> local_preds_;
  Database db_;
  AccessStats stats_;
};

}  // namespace ccpi

#endif  // CCPI_DISTSIM_SITE_DB_H_
