#ifndef CCPI_DISTSIM_SITE_DB_H_
#define CCPI_DISTSIM_SITE_DB_H_

#include <atomic>
#include <set>
#include <string>

#include "distsim/cost_model.h"
#include "distsim/fault_injector.h"
#include "distsim/remote_accessor.h"
#include "eval/engine.h"
#include "relational/database.h"

namespace ccpi {

namespace obs {
class Counter;
class MetricsRegistry;
}  // namespace obs

/// Access statistics of one evaluation (or one update-checking episode)
/// over a partitioned database.
struct AccessStats {
  size_t local_tuples = 0;
  size_t remote_tuples = 0;
  size_t remote_trips = 0;
  /// Remote trips that failed (injected fault). A failed trip still pays
  /// the round-trip latency — it is included in remote_trips — but no
  /// tuples came back, so it contributes nothing to remote_tuples.
  size_t remote_failures = 0;

  double Cost(const CostModel& model) const {
    return static_cast<double>(local_tuples) * model.local_tuple_cost +
           static_cast<double>(remote_tuples) * model.remote_tuple_cost +
           static_cast<double>(remote_trips) * model.remote_round_trip_cost;
  }

  AccessStats& operator+=(const AccessStats& other) {
    local_tuples += other.local_tuples;
    remote_tuples += other.remote_tuples;
    remote_trips += other.remote_trips;
    remote_failures += other.remote_failures;
    return *this;
  }
};

/// A database split into "local" and "remote" predicates, in the sense of
/// Section 5: the site applying updates holds the local relations; every
/// read of a remote relation is charged. The class is an AccessObserver —
/// plug it into EvalOptions (or EvalRa) and it attributes each read to the
/// right side of the partition — and a RemoteAccessor: when a
/// FaultInjector is attached, remote reads can *fail*, surfacing as
/// kUnavailable / kDeadlineExceeded through whatever evaluation is in
/// flight. Local reads never fail.
///
/// Thread-safety: the read path (OnRead / ReadRemote) only bumps atomic
/// counters and may run from many checker threads at once, provided the
/// underlying Database is not mutated concurrently (the manager freezes
/// it for the duration of a fan-out). Configuration calls
/// (set_fault_injector, set_metrics, ResetStats, db() mutation) must be
/// externally serialized against reads.
class SiteDatabase : public AccessObserver, public RemoteAccessor {
 public:
  explicit SiteDatabase(std::set<std::string> local_preds)
      : local_preds_(std::move(local_preds)) {}

  bool IsLocal(const std::string& pred) const {
    return local_preds_.count(pred) > 0;
  }
  const std::set<std::string>& local_preds() const { return local_preds_; }

  Database& db() { return db_; }
  const Database& db() const { return db_; }

  /// Attaches (or detaches, with nullptr) the fault source for remote
  /// reads. Not owned; must outlive the site. With no injector attached
  /// every remote read succeeds, preserving the pre-fault behaviour.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  /// Attaches (or detaches, with nullptr) a metrics registry. Every read
  /// then also bumps the `distsim.*` counters (see docs/observability.md)
  /// in addition to the per-site AccessStats. Not owned; must outlive the
  /// site.
  void set_metrics(obs::MetricsRegistry* registry);

  /// AccessObserver: attributes `count` enumerated tuples of `pred`.
  /// Each remote read event also counts one round trip; a remote read may
  /// fail when a fault injector is attached.
  Status OnRead(const std::string& pred, size_t count) override;

  /// RemoteAccessor: one remote episode of `count` tuples of `pred`.
  bool IsRemote(const std::string& pred) const override {
    return !IsLocal(pred);
  }
  Status ReadRemote(const std::string& pred, size_t count) override;

  /// Snapshot of the statistics accumulated since the last Reset
  /// (by value: counters may be advancing on other threads).
  AccessStats stats() const {
    AccessStats s;
    s.local_tuples = local_tuples_.load(std::memory_order_relaxed);
    s.remote_tuples = remote_tuples_.load(std::memory_order_relaxed);
    s.remote_trips = remote_trips_.load(std::memory_order_relaxed);
    s.remote_failures = remote_failures_.load(std::memory_order_relaxed);
    return s;
  }
  void ResetStats() {
    local_tuples_.store(0, std::memory_order_relaxed);
    remote_tuples_.store(0, std::memory_order_relaxed);
    remote_trips_.store(0, std::memory_order_relaxed);
    remote_failures_.store(0, std::memory_order_relaxed);
  }

 private:
  std::set<std::string> local_preds_;
  Database db_;
  std::atomic<size_t> local_tuples_{0};
  std::atomic<size_t> remote_tuples_{0};
  std::atomic<size_t> remote_trips_{0};
  std::atomic<size_t> remote_failures_{0};
  FaultInjector* injector_ = nullptr;
  // Counter handles resolved once in set_metrics (registry handles are
  // stable for the registry's lifetime), so the read path never does a
  // name lookup.
  obs::Counter* ctr_local_tuples_ = nullptr;
  obs::Counter* ctr_remote_tuples_ = nullptr;
  obs::Counter* ctr_remote_trips_ = nullptr;
  obs::Counter* ctr_remote_failures_ = nullptr;
};

}  // namespace ccpi

#endif  // CCPI_DISTSIM_SITE_DB_H_
