#ifndef CCPI_DISTSIM_SITE_DB_H_
#define CCPI_DISTSIM_SITE_DB_H_

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "distsim/cost_model.h"
#include "distsim/fault_injector.h"
#include "distsim/remote_accessor.h"
#include "distsim/remote_cache.h"
#include "distsim/topology.h"
#include "eval/engine.h"
#include "relational/database.h"
#include "util/check.h"

namespace ccpi {

namespace obs {
class Counter;
class Histogram;
class MetricsRegistry;
}  // namespace obs

class ThreadPool;

/// Access statistics of one evaluation (or one update-checking episode)
/// over a partitioned database.
struct AccessStats {
  size_t local_tuples = 0;
  size_t remote_tuples = 0;
  size_t remote_trips = 0;
  /// Remote trips that failed (injected fault). A failed trip still pays
  /// the round-trip latency — it is included in remote_trips — but no
  /// tuples came back, so it contributes nothing to remote_tuples.
  size_t remote_failures = 0;
  /// Remote reads served from the snapshot cache: no round trip was paid
  /// and the tuples are billed at cached_tuple_cost, not remote_tuple_cost.
  size_t cache_hits = 0;
  size_t cached_tuples = 0;

  double Cost(const CostModel& model) const {
    return static_cast<double>(local_tuples) * model.local_tuple_cost +
           static_cast<double>(remote_tuples) * model.remote_tuple_cost +
           static_cast<double>(remote_trips) * model.remote_round_trip_cost +
           static_cast<double>(cached_tuples) * model.cached_tuple_cost;
  }

  AccessStats& operator+=(const AccessStats& other) {
    local_tuples += other.local_tuples;
    remote_tuples += other.remote_tuples;
    remote_trips += other.remote_trips;
    remote_failures += other.remote_failures;
    cache_hits += other.cache_hits;
    cached_tuples += other.cached_tuples;
    return *this;
  }
};

/// Hedged-read accounting (see docs/distsim.md "Hedged reads"). The
/// identity `issued == won + wasted` always holds, and every issued hedge
/// billed exactly one extra remote trip to its site — which is how the
/// trip-accounting identities keep balancing with hedging on.
struct HedgeStats {
  uint64_t issued = 0;
  uint64_t won = 0;
  uint64_t wasted = 0;
};

/// A database split into "local" and "remote" predicates, in the sense of
/// Section 5: the site applying updates holds the local relations; every
/// read of a remote relation is charged. The class is an AccessObserver —
/// plug it into EvalOptions (or EvalRa) and it attributes each read to the
/// right side of the partition — and a RemoteAccessor: when a
/// FaultInjector is attached, remote reads can *fail*, surfacing as
/// kUnavailable / kDeadlineExceeded through whatever evaluation is in
/// flight. Local reads never fail.
///
/// The remote side is a Topology of N independent sites (default one, the
/// original split): each remote predicate lives at exactly one site
/// (placement map or hash), and each site owns its own fault injector,
/// snapshot cache, cost model, and budget-scope hook, so one site's outage
/// or spent budget never touches reads bound for another. The aggregate
/// counters keep their pre-topology meaning — per-site counters are summed
/// into them at the same program points — so a 1-site topology is
/// byte-identical to the old behavior.
///
/// With the remote-read cache enabled (EnableRemoteCache), a read of a
/// remote relation whose content version matches the last successful
/// physical fetch is served as a cache hit — no round trip, tuples billed
/// at cached_tuple_cost — while misses fall through to the physical path
/// and refresh that site's cache. See docs/remote_cache.md for the keying,
/// invalidation, and fault-interaction rules, and docs/distsim.md for the
/// topology semantics.
///
/// Thread-safety: the read path (OnRead / ReadRemote) only bumps atomic
/// counters and takes shared-mode cache lookups, and may run from many
/// checker threads at once, provided the underlying Database is not
/// mutated concurrently (the manager freezes it for the duration of a
/// fan-out). Cache fills take the cache's exclusive lock and are safe
/// concurrently, but the manager avoids racing fills by prefetching the
/// episode's remote relations before the parallel fan-out. Configuration
/// calls (set_fault_injector, set_metrics, EnableRemoteCache,
/// set_cache_db, ResetStats, db() mutation) must be externally serialized
/// against reads.
class SiteDatabase : public AccessObserver, public RemoteAccessor {
 public:
  explicit SiteDatabase(std::set<std::string> local_preds,
                        TopologyConfig topology = {})
      : local_preds_(std::move(local_preds)), topology_(std::move(topology)) {
    site_states_.reserve(topology_.sites());
    for (size_t s = 0; s < topology_.sites(); ++s) {
      site_states_.push_back(std::make_unique<SiteState>());
    }
  }

  bool IsLocal(const std::string& pred) const {
    return local_preds_.count(pred) > 0;
  }
  const std::set<std::string>& local_preds() const { return local_preds_; }

  const Topology& topology() const { return topology_; }
  size_t sites() const { return topology_.sites(); }
  /// The site owning a remote `pred` (callers check IsLocal first).
  size_t SiteOf(const std::string& pred) const {
    return topology_.SiteOf(pred);
  }

  Database& db() { return db_; }
  const Database& db() const { return db_; }

  /// Attaches (or detaches, with nullptr) the fault source for remote
  /// reads of site 0 — the whole remote side of a 1-site topology, which
  /// keeps the pre-topology call sites working unchanged. Not owned; must
  /// outlive the site.
  void set_fault_injector(FaultInjector* injector) {
    site_states_[0]->injector = injector;
  }
  FaultInjector* fault_injector() const { return site_states_[0]->injector; }

  /// Per-site fault domains: each remote site may carry its own injector
  /// (its own seed, rates, and outage windows).
  void set_site_fault_injector(size_t site, FaultInjector* injector) {
    CCPI_CHECK(site < site_states_.size());
    site_states_[site]->injector = injector;
  }
  FaultInjector* site_fault_injector(size_t site) const {
    CCPI_CHECK(site < site_states_.size());
    return site_states_[site]->injector;
  }
  /// Whether any site has an injector attached — the gate the manager uses
  /// to keep tier-3 sequential (draw alignment is per-site, but verdict
  /// order is global).
  bool any_fault_injector() const {
    for (const auto& st : site_states_) {
      if (st->injector != nullptr) return true;
    }
    return false;
  }

  /// Attaches (or detaches, with nullptr) an execution-budget scope to
  /// *every* site (configuration call: serialize against reads; not owned,
  /// must outlive the reads it governs — the manager scopes it to one
  /// episode). Remote reads then become deadline-aware: a read is refused
  /// with kResourceExhausted *before* paying the round trip once the
  /// deadline has passed, the token is cancelled, or the scope's
  /// remote-trip cap is spent. Cache hits pay no trip and are never
  /// charged against the trip cap (the cache genuinely stretches the
  /// budget; see docs/budgets.md). Local reads are always free and never
  /// refused.
  void set_budget(const BudgetScope* scope) {
    for (auto& st : site_states_) st->budget = scope;
  }
  const BudgetScope* budget() const { return site_states_[0]->budget; }

  /// Per-site budget scopes: with N sites the manager splits the episode's
  /// trip cap into per-site slices so one chatty site cannot starve the
  /// others (see docs/budgets.md).
  void set_site_budget(size_t site, const BudgetScope* scope) {
    CCPI_CHECK(site < site_states_.size());
    site_states_[site]->budget = scope;
  }
  const BudgetScope* site_budget(size_t site) const {
    CCPI_CHECK(site < site_states_.size());
    return site_states_[site]->budget;
  }

  /// Per-site access pricing (default: every site shares CostModel{}).
  void set_site_cost_model(size_t site, const CostModel& model) {
    CCPI_CHECK(site < site_states_.size());
    site_states_[site]->costs = model;
  }
  const CostModel& site_cost_model(size_t site) const {
    CCPI_CHECK(site < site_states_.size());
    return site_states_[site]->costs;
  }

  /// Arms hedged batched reads: when a batched per-site prefetch's drawn
  /// latency exceeds `after` times that site's observed EWMA, one backup
  /// attempt is issued (billing one extra trip) and the faster of the two
  /// wins the wall clock. 0 (the default) disables hedging entirely —
  /// no extra trips, no counters, byte-identical accounting. The counter
  /// handles (may be null) receive the manager's conditionally registered
  /// `manager.hedge.*` series. Configuration call: serialize against
  /// reads.
  void set_hedge(uint64_t after, obs::Counter* issued, obs::Counter* won,
                 obs::Counter* wasted) {
    hedge_after_ = after;
    ctr_hedge_issued_ = issued;
    ctr_hedge_won_ = won;
    ctr_hedge_wasted_ = wasted;
  }
  uint64_t hedge_after() const { return hedge_after_; }

  /// Snapshot of the hedged-read counters since the last ResetStats.
  HedgeStats hedge_stats() const {
    HedgeStats h;
    h.issued = hedges_issued_.load(std::memory_order_relaxed);
    h.won = hedges_won_.load(std::memory_order_relaxed);
    h.wasted = hedges_wasted_.load(std::memory_order_relaxed);
    return h;
  }

  /// Exponentially weighted moving average (alpha 1/4) of the site's
  /// observed per-trip latency, in microseconds. 0 until the site's first
  /// non-fixed-model trip — kFixed sites never feed the EWMA, which is
  /// part of the default-config byte-identity guarantee (the latency
  /// machinery is pure dead weight unless a distribution is configured).
  uint64_t site_latency_ewma_us(size_t site) const {
    CCPI_CHECK(site < site_states_.size());
    return site_states_[site]->latency_ewma_q8.load(
               std::memory_order_relaxed) >>
           8;
  }

  /// Attaches (or detaches, with nullptr) a metrics registry. Every read
  /// then also bumps the `distsim.*` counters (see docs/observability.md)
  /// in addition to the per-site AccessStats; topologies with more than
  /// one site additionally get `distsim.site<k>.*` counters. Not owned;
  /// must outlive the site.
  void set_metrics(obs::MetricsRegistry* registry);

  /// AccessObserver: attributes `count` enumerated tuples of `pred`.
  /// Each remote read event also counts one round trip; a remote read may
  /// fail when a fault injector is attached.
  Status OnRead(const std::string& pred, size_t count) override;

  /// RemoteAccessor: one remote episode of `count` tuples of `pred`.
  bool IsRemote(const std::string& pred) const override {
    return !IsLocal(pred);
  }
  Status ReadRemote(const std::string& pred, size_t count) override;

  /// Turns the remote-read snapshot cache on or off for every site
  /// (configuration call: serialize against reads). Off by default so a
  /// bare SiteDatabase behaves exactly as before; the ConstraintManager
  /// enables it per its RemoteCacheConfig. Turning the cache off also
  /// drops every site's entries.
  void EnableRemoteCache(bool on);
  bool remote_cache_enabled() const { return cache_enabled_; }
  RemoteReadCache& remote_cache() { return site_states_[0]->cache; }
  RemoteReadCache& site_remote_cache(size_t site) {
    CCPI_CHECK(site < site_states_.size());
    return site_states_[site]->cache;
  }

  /// Overrides (or with nullptr restores to this site's own db) the
  /// database whose relation versions key cache decisions. The manager
  /// points this at its scratch database while replaying deferred checks,
  /// so a cached fill of the *live* relation is never served for a scratch
  /// relation whose contents differ. Configuration call: the caller must
  /// not have evaluations in flight.
  void set_cache_db(const Database* db) { cache_db_ = db; }

  /// Batched prefetch: physically fetches every cold or stale relation in
  /// `preds` (local and already-valid entries are skipped silently) so a
  /// following fan-out reads them as cache hits. No-op when the cache is
  /// off or any fault injector is attached — under injection each logical
  /// read must consume its own draw of the failure schedule in evaluation
  /// order, which a batched pass would reorder.
  void PrefetchRemote(const std::set<std::string>& preds);

  /// Coalesced multi-site prefetch: groups `preds` by owning site, pays
  /// ONE round trip per site that has at least one cold or stale relation
  /// (instead of one per relation), and issues the per-site batches
  /// concurrently on `pool` (sequentially when pool is null or single
  /// threaded). Tuples are billed per relation as usual; the saved trips
  /// are the point of the batch. Same gates as PrefetchRemote, and the
  /// per-site trip is charged against that site's budget scope. The
  /// manager uses this only for multi-site topologies, so single-site
  /// accounting is untouched.
  void PrefetchRemoteBatched(const std::set<std::string>& preds,
                             ThreadPool* pool);

  /// One speculative remote fetch, staged by a pipelined episode's
  /// read-only phase (see docs/concurrency.md): the simulated round-trip
  /// latency has already been *paid* (slept) at speculation time, but none
  /// of its observable effects — counters, cache fill, metrics — have
  /// happened yet. CommitStagedFetch applies them at the episode's commit
  /// turn iff the fetch is still exactly what the serial path would do.
  struct StagedFetch {
    std::string pred;
    size_t site = 0;
    /// The relation's content version in the episode's snapshot: the
    /// commit-time validity condition (equal version => equal contents, so
    /// the staged fetch observed exactly what a commit-time fetch would).
    uint64_t version = 0;
    /// Tuples the fetch carried (the snapshot relation's size).
    size_t count = 0;
  };

  /// Speculatively fetches remote `pred` as seen in `snapshot`: sleeps the
  /// owning site's simulated trip latency and records what was observed.
  /// No counter, cache, budget, or injector interaction — safe to call
  /// from a speculation thread concurrently with commits. The caller gates
  /// on cache_enabled && !any_fault_injector (same as prefetch).
  StagedFetch StageRemoteFetch(const std::string& pred,
                               const Database& snapshot) const;

  /// Applies a staged fetch at commit time, iff the site's cache entry is
  /// still cold/stale AND the relation's live version equals the staged
  /// one — i.e. iff the serial prefetch path would perform this exact
  /// fetch here. Then bills the trip and tuples and fills the cache
  /// precisely as ReadRemote's miss path would (minus the already-paid
  /// latency), so accounting is byte-identical to unpipelined execution.
  /// Returns whether the fetch was committed; a false return means the
  /// staged work is discarded without any observable trace (the caller's
  /// normal prefetch covers the relation if it still needs fetching).
  bool CommitStagedFetch(const StagedFetch& staged);

  /// Catch-up reconciliation for a site returning from outage: re-fetches
  /// every relation of `site` among `preds` whose cache entry went stale
  /// or was poisoned while the site was dark (cold, never-fetched
  /// relations are left to demand fetching). Reads route through the
  /// normal ReadRemote path, so trips are billed, draws consumed, and a
  /// still-faulting fetch simply leaves the entry poisoned. Returns how
  /// many entries were revalidated. No-op with the cache off.
  size_t RecoverSiteCache(size_t site, const std::set<std::string>& preds);

  /// Snapshot of the statistics accumulated since the last Reset
  /// (by value: counters may be advancing on other threads).
  AccessStats stats() const {
    AccessStats s;
    s.local_tuples = local_tuples_.load(std::memory_order_relaxed);
    s.remote_tuples = remote_tuples_.load(std::memory_order_relaxed);
    s.remote_trips = remote_trips_.load(std::memory_order_relaxed);
    s.remote_failures = remote_failures_.load(std::memory_order_relaxed);
    s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
    s.cached_tuples = cached_tuples_.load(std::memory_order_relaxed);
    return s;
  }

  /// Per-site slice of the remote counters (local_tuples is always 0:
  /// local reads belong to the checking site, not a remote one).
  AccessStats site_stats(size_t site) const {
    CCPI_CHECK(site < site_states_.size());
    const SiteState& st = *site_states_[site];
    AccessStats s;
    s.remote_tuples = st.remote_tuples.load(std::memory_order_relaxed);
    s.remote_trips = st.remote_trips.load(std::memory_order_relaxed);
    s.remote_failures = st.remote_failures.load(std::memory_order_relaxed);
    s.cache_hits = st.cache_hits.load(std::memory_order_relaxed);
    s.cached_tuples = st.cached_tuples.load(std::memory_order_relaxed);
    return s;
  }

  /// Zeroes the access counters. Exclusivity contract: the caller must
  /// guarantee no read (OnRead / ReadRemote) is in flight — the fields are
  /// zeroed one by one, so a reset concurrent with a draining fan-out
  /// would yield a torn snapshot (some of the episode's reads surviving
  /// the reset, others not). The manager only resets between episodes;
  /// debug builds enforce the contract by tracking in-flight reads and
  /// aborting if a reset races one.
  void ResetStats() {
    CCPI_DCHECK(active_reads_.load(std::memory_order_acquire) == 0);
    local_tuples_.store(0, std::memory_order_relaxed);
    remote_tuples_.store(0, std::memory_order_relaxed);
    remote_trips_.store(0, std::memory_order_relaxed);
    remote_failures_.store(0, std::memory_order_relaxed);
    cache_hits_.store(0, std::memory_order_relaxed);
    cached_tuples_.store(0, std::memory_order_relaxed);
    hedges_issued_.store(0, std::memory_order_relaxed);
    hedges_won_.store(0, std::memory_order_relaxed);
    hedges_wasted_.store(0, std::memory_order_relaxed);
    // Latency draw counters and EWMAs survive a stats reset on purpose:
    // they are simulation state (the position in the deterministic
    // latency schedule), not observability.
    for (auto& st : site_states_) {
      st->remote_tuples.store(0, std::memory_order_relaxed);
      st->remote_trips.store(0, std::memory_order_relaxed);
      st->remote_failures.store(0, std::memory_order_relaxed);
      st->cache_hits.store(0, std::memory_order_relaxed);
      st->cached_tuples.store(0, std::memory_order_relaxed);
    }
  }

 private:
  /// Everything one remote site owns. Heap-allocated (the atomics and the
  /// cache's mutex are not movable) and stable for the SiteDatabase's
  /// lifetime.
  struct SiteState {
    std::atomic<size_t> remote_tuples{0};
    std::atomic<size_t> remote_trips{0};
    std::atomic<size_t> remote_failures{0};
    std::atomic<size_t> cache_hits{0};
    std::atomic<size_t> cached_tuples{0};
    FaultInjector* injector = nullptr;
    const BudgetScope* budget = nullptr;
    RemoteReadCache cache;
    CostModel costs;
    // Index of the site's next latency draw. Counter-keyed (each draw
    // seeds a fresh splitmix64 from (latency_seed, site, index)) so the
    // drawn multiset per site is deterministic per seed regardless of
    // which thread pays which trip. kFixed consumes none.
    std::atomic<uint64_t> latency_draws{0};
    // EWMA of observed trip latency, fixed-point microseconds << 8.
    // 0 = no observation yet (real latencies are >= 1us, so 0 is free
    // as the sentinel).
    std::atomic<uint64_t> latency_ewma_q8{0};
    // Per-site obs handles; resolved only for multi-site topologies.
    obs::Counter* ctr_trips = nullptr;
    obs::Counter* ctr_failures = nullptr;
    obs::Counter* ctr_cache_hits = nullptr;
    // Registered iff this site's latency model is non-fixed.
    obs::Histogram* hist_latency = nullptr;
  };

  /// The database whose relation versions (and sizes, for prefetch) drive
  /// cache decisions: the override when set, this site's own db otherwise.
  const Database& cache_source() const {
    return cache_db_ != nullptr ? *cache_db_ : db_;
  }

  /// One physical round trip to `site`: span, trip/tuple/failure billing,
  /// fault injection, fill-latency timing. The pre-cache ReadRemote body.
  Status FetchRemote(size_t site, const std::string& pred, size_t count);

  /// Blocks for the site's simulated per-trip latency. kFixed: sleeps
  /// CostModel::trip_latency_us (no-op at the default of 0) and consumes
  /// no randomness. Non-fixed models: consumes one latency draw, feeds
  /// the EWMA/histogram, and sleeps the drawn value.
  void SimulateTripLatency(size_t site) const;

  /// One deterministic latency draw for `site` (non-fixed models only):
  /// advances the site's draw counter, samples the configured
  /// distribution, and observes the sample into the EWMA and the
  /// `distsim.site<k>.latency_us` histogram. Returns microseconds.
  uint64_t DrawTripLatencyUs(size_t site) const;

  /// The batched-prefetch trip with hedging armed: reads the EWMA first,
  /// draws the primary latency, and — when the primary overshoots
  /// hedge_after_ x EWMA — draws a deterministic single backup (launched
  /// at the threshold instant) and sleeps min(primary, threshold +
  /// backup) instead of the full primary. Returns how many *extra*
  /// physical trips the caller must bill (0 or 1) and bumps the hedge
  /// counters. Falls back to SimulateTripLatency semantics when hedging
  /// cannot apply (hedging off, fixed model, or no EWMA yet).
  size_t SimulateHedgedTripLatency(size_t site) const;

  std::set<std::string> local_preds_;
  Topology topology_;
  Database db_;
  std::atomic<size_t> local_tuples_{0};
  std::atomic<size_t> remote_tuples_{0};
  std::atomic<size_t> remote_trips_{0};
  std::atomic<size_t> remote_failures_{0};
  std::atomic<size_t> cache_hits_{0};
  std::atomic<size_t> cached_tuples_{0};
  // Debug-only occupancy count of OnRead/ReadRemote, backing the
  // ResetStats exclusivity assertion. Increments are compiled out in
  // NDEBUG builds, so the release hot path is untouched.
  std::atomic<int> active_reads_{0};
  std::vector<std::unique_ptr<SiteState>> site_states_;
  bool cache_enabled_ = false;
  const Database* cache_db_ = nullptr;
  // Hedged-read knob and accounting (set_hedge / hedge_stats). 0 = off.
  uint64_t hedge_after_ = 0;
  mutable std::atomic<uint64_t> hedges_issued_{0};
  mutable std::atomic<uint64_t> hedges_won_{0};
  mutable std::atomic<uint64_t> hedges_wasted_{0};
  obs::Counter* ctr_hedge_issued_ = nullptr;
  obs::Counter* ctr_hedge_won_ = nullptr;
  obs::Counter* ctr_hedge_wasted_ = nullptr;
  // Counter handles resolved once in set_metrics (registry handles are
  // stable for the registry's lifetime), so the read path never does a
  // name lookup.
  obs::Counter* ctr_local_tuples_ = nullptr;
  obs::Counter* ctr_remote_tuples_ = nullptr;
  obs::Counter* ctr_remote_trips_ = nullptr;
  obs::Counter* ctr_remote_failures_ = nullptr;
  obs::Counter* ctr_cache_hits_ = nullptr;
  obs::Counter* ctr_cache_misses_ = nullptr;
  obs::Counter* ctr_cache_invalidations_ = nullptr;
  obs::Histogram* hist_fill_latency_ = nullptr;
};

}  // namespace ccpi

#endif  // CCPI_DISTSIM_SITE_DB_H_
