#ifndef CCPI_DISTSIM_TOPOLOGY_H_
#define CCPI_DISTSIM_TOPOLOGY_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

namespace ccpi {

/// Shape of the simulated remote side: how many independent sites there
/// are and which remote predicate lives where. The default — one site, no
/// explicit placement — reproduces the original single local/remote split
/// exactly: every remote predicate maps to site 0.
struct TopologyConfig {
  /// Number of remote sites (>= 1). With one site every fault domain,
  /// cache, breaker, and budget collapses to the pre-topology behavior.
  size_t sites = 1;
  /// Explicit predicate -> site assignments (ccpi_check --placement, or
  /// the script's `site K p q ...` directive). Predicates not listed are
  /// placed by hash. Every assigned site index must be < `sites`.
  std::map<std::string, size_t> placement;
};

/// Predicate -> site resolution over a TopologyConfig.
///
/// Placement is a pure function of (config, predicate name): explicit
/// assignments win, everything else lands on FNV-1a(pred) mod sites — so
/// two runs with the same config shard identically, and a single-site
/// topology maps everything to site 0 whatever the hash says.
///
/// Immutable after construction and therefore freely shared across
/// checker threads.
class Topology {
 public:
  explicit Topology(TopologyConfig config = {});

  size_t sites() const { return config_.sites; }
  const TopologyConfig& config() const { return config_; }

  /// The site owning `pred`. Local predicates are not the topology's
  /// business — callers resolve locality first (SiteDatabase::IsLocal).
  size_t SiteOf(const std::string& pred) const;

  /// FNV-1a over the predicate name; the hash behind default placement.
  static uint64_t HashPred(const std::string& pred);

 private:
  TopologyConfig config_;
};

}  // namespace ccpi

#endif  // CCPI_DISTSIM_TOPOLOGY_H_
