#ifndef CCPI_DISTSIM_TOPOLOGY_H_
#define CCPI_DISTSIM_TOPOLOGY_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "distsim/cost_model.h"
#include "distsim/fault_injector.h"

namespace ccpi {

/// A correlated failure domain: a named group of sites (a rack, a region)
/// whose outages are scripted *together*. A domain-level outage window is
/// expanded into one identical per-site OutageWindow for every member, so
/// the whole group goes dark and recovers over the same trip-count span —
/// the correlated-failure generalization of the per-site windows that
/// `--site-fault-outage` scripts individually.
struct FailureDomain {
  /// Domain name (`rack0`, `eu-west`); keys the `--domain-outage` flag
  /// and the `domain_outage` script directive.
  std::string name;
  /// Member site indices, each < TopologyConfig::sites. A site belongs
  /// to at most one domain (overlap is a config error).
  std::vector<size_t> members;
  /// Domain-level outage windows, half-open [begin, end) over each
  /// member site's own remote-trip counter.
  std::vector<OutageWindow> outages;
};

/// Per-site overrides of the latency fields of the site's CostModel
/// (`--site-latency=S:...`). Only the latency-distribution fields are
/// overridden; the billing weights stay uniform across sites.
struct SiteLatencyOverride {
  LatencyModel model = LatencyModel::kFixed;
  /// kFixed: the fixed per-trip cost. Other models: ignored.
  uint64_t fixed_us = 0;
  uint64_t lo_us = 0;
  uint64_t hi_us = 0;
  double slow_share = 0.0;
};

/// Shape of the simulated remote side: how many independent sites there
/// are, which remote predicate lives where, how sites are grouped into
/// correlated failure domains, and which sites deviate from the global
/// latency model. The default — one site, no explicit placement, no
/// domains, no latency overrides — reproduces the original single
/// local/remote split exactly: every remote predicate maps to site 0.
struct TopologyConfig {
  /// Number of remote sites (>= 1). With one site every fault domain,
  /// cache, breaker, and budget collapses to the pre-topology behavior.
  size_t sites = 1;
  /// Explicit predicate -> site assignments (ccpi_check --placement, or
  /// the script's `site K p q ...` directive). Predicates not listed are
  /// placed by hash. Every assigned site index must be < `sites`.
  std::map<std::string, size_t> placement;
  /// Correlated failure domains (ccpi_check --domains / the script's
  /// `domain` directive). Membership must not overlap across domains.
  std::vector<FailureDomain> domains;
  /// Per-site latency model overrides (ccpi_check --site-latency / the
  /// script's `site_latency` directive), keyed by site index < sites.
  std::map<size_t, SiteLatencyOverride> site_latency;
};

/// Predicate -> site resolution over a TopologyConfig.
///
/// Placement is a pure function of (config, predicate name): explicit
/// assignments win, everything else lands on FNV-1a(pred) mod sites — so
/// two runs with the same config shard identically, and a single-site
/// topology maps everything to site 0 whatever the hash says.
///
/// Immutable after construction and therefore freely shared across
/// checker threads.
class Topology {
 public:
  explicit Topology(TopologyConfig config = {});

  size_t sites() const { return config_.sites; }
  const TopologyConfig& config() const { return config_; }

  /// The site owning `pred`. Local predicates are not the topology's
  /// business — callers resolve locality first (SiteDatabase::IsLocal).
  size_t SiteOf(const std::string& pred) const;

  /// FNV-1a over the predicate name; the hash behind default placement.
  static uint64_t HashPred(const std::string& pred);

 private:
  TopologyConfig config_;
};

/// Expands every domain-level outage window of `config.domains` into
/// per-site windows: the returned vector has `config.sites` entries, and
/// entry s holds one copy of each window of the domain containing site s
/// (empty for sites in no domain). This is the correlated-outage
/// generator: all members of a domain share the exact same windows.
std::vector<std::vector<OutageWindow>> ExpandDomainOutages(
    const TopologyConfig& config);

}  // namespace ccpi

#endif  // CCPI_DISTSIM_TOPOLOGY_H_
