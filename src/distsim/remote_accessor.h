#ifndef CCPI_DISTSIM_REMOTE_ACCESSOR_H_
#define CCPI_DISTSIM_REMOTE_ACCESSOR_H_

#include <string>

#include "util/status.h"

namespace ccpi {

/// Abstraction of the link to the remote site's data.
///
/// The paper's premise is that remote information is expensive *or
/// unavailable*; this interface is where unavailability becomes visible.
/// Each ReadRemote call models one remote access episode (one round trip
/// enumerating `count` tuples); implementations may charge it, fail it, or
/// both. A non-OK return means the episode did not complete: kUnavailable
/// for a down or flaky site, kDeadlineExceeded for a timed-out trip.
class RemoteAccessor {
 public:
  virtual ~RemoteAccessor() = default;

  /// Whether `pred` would require a remote trip at all.
  virtual bool IsRemote(const std::string& pred) const = 0;

  /// Performs (or simulates) one remote read episode of `count` tuples of
  /// `pred`. Accounting happens regardless of outcome — a failed trip
  /// still pays the round-trip latency.
  virtual Status ReadRemote(const std::string& pred, size_t count) = 0;
};

}  // namespace ccpi

#endif  // CCPI_DISTSIM_REMOTE_ACCESSOR_H_
