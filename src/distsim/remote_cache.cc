#include "distsim/remote_cache.h"

#include <mutex>

namespace ccpi {

RemoteReadCache::Lookup RemoteReadCache::Find(const std::string& pred,
                                              uint64_t version) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(pred);
  if (it == entries_.end()) return Lookup::kMissCold;
  if (it->second.usable && it->second.version == version) return Lookup::kHit;
  return Lookup::kMissStale;
}

void RemoteReadCache::NoteFill(const std::string& pred, uint64_t version) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  entries_[pred] = Entry{version, /*usable=*/true};
}

void RemoteReadCache::NoteFailure(const std::string& pred) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  entries_[pred].usable = false;
}

void RemoteReadCache::Clear() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  entries_.clear();
}

size_t RemoteReadCache::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return entries_.size();
}

const char* RemoteCacheLookupToString(RemoteReadCache::Lookup lookup) {
  switch (lookup) {
    case RemoteReadCache::Lookup::kHit:
      return "hit";
    case RemoteReadCache::Lookup::kMissCold:
      return "miss-cold";
    case RemoteReadCache::Lookup::kMissStale:
      return "miss-stale";
  }
  return "?";
}

}  // namespace ccpi
