#include "distsim/fault_injector.h"

namespace ccpi {

const char* FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kTransient:
      return "transient";
    case FaultKind::kTimeout:
      return "timeout";
    case FaultKind::kOutage:
      return "outage";
  }
  return "?";
}

FaultKind FaultInjector::NextTrip() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t index = trip_++;
  // Always consume exactly one draw so the schedule depends only on the
  // seed and the trip index, not on which windows happen to be active.
  double u = static_cast<double>(rng_.Next() >> 11) *
             (1.0 / 9007199254740992.0);  // uniform in [0, 1), 53 bits
  ++stats_.trips;

  bool in_window = forced_outage_;
  for (const OutageWindow& w : config_.outages) {
    in_window = in_window || (index >= w.begin && index < w.end);
  }
  if (in_window) {
    ++stats_.outage_faults;
    return FaultKind::kOutage;
  }
  if (u < config_.timeout_rate) {
    ++stats_.timeouts;
    return FaultKind::kTimeout;
  }
  if (u < config_.timeout_rate + config_.transient_rate) {
    ++stats_.transient_faults;
    return FaultKind::kTransient;
  }
  return FaultKind::kNone;
}

Status FaultInjector::InjectOnRead(const std::string& pred) {
  FaultKind kind = NextTrip();
  if (kind == FaultKind::kNone) {
    // Per-predicate outages overlay the seeded schedule after its draw has
    // been consumed, preserving draw alignment for every other predicate.
    std::lock_guard<std::mutex> lock(mu_);
    if (down_preds_.count(pred) > 0) {
      ++stats_.outage_faults;
      kind = FaultKind::kOutage;
    }
  }
  switch (kind) {
    case FaultKind::kNone:
      return Status::OK();
    case FaultKind::kTransient:
      return Status::Unavailable("transient fault reading remote " + pred);
    case FaultKind::kTimeout:
      return Status::DeadlineExceeded("timeout reading remote " + pred);
    case FaultKind::kOutage:
      return Status::Unavailable("remote site outage reading " + pred);
  }
  return Status::Internal("unreachable");
}

}  // namespace ccpi
