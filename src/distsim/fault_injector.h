#ifndef CCPI_DISTSIM_FAULT_INJECTOR_H_
#define CCPI_DISTSIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace ccpi {

/// What the injector did to one remote access episode.
enum class FaultKind {
  kNone,       // the access went through
  kTransient,  // momentary error; an immediate retry may succeed
  kTimeout,    // the site was too slow; retriable but billed differently
  kOutage,     // the site is down (scripted window or forced outage)
};

const char* FaultKindToString(FaultKind kind);

/// A scripted hard-outage window over the remote-trip counter: every
/// remote access with trip index in [begin, end) fails with kOutage.
struct OutageWindow {
  uint64_t begin = 0;
  uint64_t end = 0;
};

/// Configuration of the fault schedule. All randomness derives from `seed`
/// through a splitmix64 stream consuming exactly one draw per remote trip,
/// so the same seed always produces the same failure schedule regardless
/// of what the failures are mapped to downstream.
struct FaultConfig {
  uint64_t seed = 1;
  /// Per-trip probability of a transient error.
  double transient_rate = 0.0;
  /// Per-trip probability of a timeout (drawn before transient_rate from
  /// the same uniform variate; the two must sum to <= 1).
  double timeout_rate = 0.0;
  /// Scripted hard outages over the trip counter.
  std::vector<OutageWindow> outages;
};

/// Counters of what was injected, for reports and tests.
struct FaultStats {
  uint64_t trips = 0;  // remote access episodes decided (failed or not)
  uint64_t transient_faults = 0;
  uint64_t timeouts = 0;
  uint64_t outage_faults = 0;

  uint64_t injected() const {
    return transient_faults + timeouts + outage_faults;
  }
};

/// Deterministic fault source for the simulated remote site.
///
/// The distributed-site simulator prices remote reads; this class makes
/// them *failable*, which is the other half of the paper's motivation
/// ("expensive or unavailable"). Plug one into a SiteDatabase and every
/// remote read episode consults NextTrip(); faults surface to callers as
/// ccpi::Status (kUnavailable for transient/outage, kDeadlineExceeded for
/// timeouts) and propagate out of the evaluation engine.
///
/// Thread-safe: the RNG stream, trip counter, and stats advance under an
/// internal mutex. Note that the schedule consumes one draw per trip in
/// *global arrival order*, so interleaving trips from several threads
/// changes which trip gets which fault; the manager keeps tier-3
/// evaluation sequential whenever an injector is attached precisely so
/// the schedule stays reproducible (see docs/concurrency.md).
class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config)
      : config_(std::move(config)), rng_(config_.seed) {
    CCPI_CHECK(config_.transient_rate >= 0 && config_.timeout_rate >= 0 &&
               config_.transient_rate + config_.timeout_rate <= 1.0);
  }

  /// Decides the fate of the next remote trip and advances the schedule.
  FaultKind NextTrip();

  /// NextTrip() mapped to the Status a failed read of `pred` reports;
  /// OK when no fault fires.
  Status InjectOnRead(const std::string& pred);

  /// Manual hard-outage switch, independent of the scripted windows;
  /// useful for tests that flip availability at exact points.
  void ForceOutage(bool on) {
    std::lock_guard<std::mutex> lock(mu_);
    forced_outage_ = on;
  }
  bool forced_outage() const {
    std::lock_guard<std::mutex> lock(mu_);
    return forced_outage_;
  }

  /// Per-predicate hard outage: while set, every read of `pred` fails with
  /// kOutage even though other predicates' sites stay reachable — one dead
  /// site among several. The trip still consumes its schedule draw (and
  /// its trip index), so flipping one predicate's availability never
  /// shifts which draws later reads of other predicates observe.
  void ForcePredOutage(const std::string& pred, bool on) {
    std::lock_guard<std::mutex> lock(mu_);
    if (on) {
      down_preds_.insert(pred);
    } else {
      down_preds_.erase(pred);
    }
  }
  bool pred_outage(const std::string& pred) const {
    std::lock_guard<std::mutex> lock(mu_);
    return down_preds_.count(pred) > 0;
  }

  /// Trip index the next access will be assigned.
  uint64_t next_trip() const {
    std::lock_guard<std::mutex> lock(mu_);
    return trip_;
  }
  /// Snapshot of the counters (by value: the injector may be advancing
  /// on another thread).
  FaultStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  const FaultConfig& config() const { return config_; }

 private:
  mutable std::mutex mu_;
  const FaultConfig config_;
  Rng rng_;
  uint64_t trip_ = 0;
  bool forced_outage_ = false;
  std::set<std::string> down_preds_;
  FaultStats stats_;
};

}  // namespace ccpi

#endif  // CCPI_DISTSIM_FAULT_INJECTOR_H_
