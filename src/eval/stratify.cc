#include "eval/stratify.h"

#include <algorithm>
#include <set>

namespace ccpi {

Result<Stratification> Stratify(const Program& program) {
  std::set<std::string> idb = program.IdbPredicates();

  // stratum_of via fixpoint relaxation:
  //   head >= positive idb subgoal; head >= 1 + negated idb subgoal.
  // Unstratifiable programs diverge; bound iterations by |idb| + 1.
  std::map<std::string, int> stratum;
  for (const std::string& p : idb) stratum[p] = 0;
  size_t max_rounds = idb.size() + 1;
  bool changed = true;
  size_t rounds = 0;
  while (changed) {
    changed = false;
    if (++rounds > max_rounds + 1) {
      return Status::InvalidArgument(
          "program is not stratifiable (recursion through negation)");
    }
    for (const Rule& r : program.rules) {
      int& h = stratum[r.head.pred];
      for (const Literal& l : r.body) {
        if (l.is_comparison() || idb.count(l.atom.pred) == 0) continue;
        int need = stratum[l.atom.pred] + (l.is_negated() ? 1 : 0);
        if (h < need) {
          h = need;
          changed = true;
        }
      }
    }
  }

  Stratification out;
  out.stratum_of = stratum;
  int max_stratum = 0;
  for (const auto& [p, s] : stratum) max_stratum = std::max(max_stratum, s);
  out.strata.resize(static_cast<size_t>(max_stratum) + 1);
  for (const Rule& r : program.rules) {
    out.strata[static_cast<size_t>(stratum[r.head.pred])].push_back(r);
  }
  return out;
}

}  // namespace ccpi
