#ifndef CCPI_EVAL_STRATIFY_H_
#define CCPI_EVAL_STRATIFY_H_

#include <map>
#include <string>
#include <vector>

#include "datalog/ast.h"
#include "util/status.h"

namespace ccpi {

/// A stratification of a program: IDB predicates grouped into strata such
/// that positive dependencies stay within or below a stratum and negative
/// dependencies point strictly below. Rules are assigned the stratum of
/// their head predicate.
struct Stratification {
  /// stratum index per IDB predicate.
  std::map<std::string, int> stratum_of;
  /// Rules grouped by stratum, in evaluation order.
  std::vector<std::vector<Rule>> strata;
};

/// Computes a stratification, or InvalidArgument if the program has
/// recursion through negation (not stratifiable).
Result<Stratification> Stratify(const Program& program);

}  // namespace ccpi

#endif  // CCPI_EVAL_STRATIFY_H_
