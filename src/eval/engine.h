#ifndef CCPI_EVAL_ENGINE_H_
#define CCPI_EVAL_ENGINE_H_

#include <set>
#include <string>

#include "datalog/ast.h"
#include "relational/database.h"
#include "util/budget.h"
#include "util/status.h"

namespace ccpi {

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// Observer of base-relation reads during evaluation. The distributed-site
/// simulator implements this to charge local vs. remote access costs: the
/// paper's motivation is precisely that a test's value depends on *which*
/// relations it reads.
///
/// OnRead is fallible: a simulated remote site may refuse the read
/// (kUnavailable / kDeadlineExceeded), in which case the evaluation engine
/// aborts and propagates the status — an evaluation that could not see all
/// the data it asked for must not report a verdict.
class AccessObserver {
 public:
  virtual ~AccessObserver() = default;
  /// `count` tuples of EDB predicate `pred` are being enumerated (scanned
  /// or probed) by the engine. Returning non-OK fails the read.
  virtual Status OnRead(const std::string& pred, size_t count) = 0;
};

struct EvalOptions {
  /// If set, receives one callback per EDB enumeration.
  AccessObserver* observer = nullptr;
  /// If set, the engine accounts rule evaluations, fixpoint rounds, and
  /// derived tuples into `eval.*` counters of this registry (see
  /// docs/observability.md for the catalog). Null costs nothing.
  obs::MetricsRegistry* metrics = nullptr;
  /// Safety valve for runaway recursive programs (0 = unlimited). Predates
  /// the budget machinery and fails with kInternal; prefer `budget` for
  /// policy-driven limits that the manager can shed gracefully.
  size_t max_derived_tuples = 0;
  /// Execution budget (null = unbudgeted; the check is then a single branch
  /// and the engine reads no clocks). When set, the engine checks it at the
  /// start of every fixpoint round, after every rule evaluation's batch of
  /// derived tuples, and on every EDB enumeration, failing the evaluation
  /// with kResourceExhausted once the envelope is spent. Checkpoint counts
  /// land in the `eval.budget_checks` counter when `metrics` is set.
  const BudgetScope* budget = nullptr;
  /// Tuples seeded into IDB relations before evaluation begins (used by
  /// the uniform-containment chase, where a program runs over frozen
  /// facts of its own derived predicates). May be null.
  const Database* seed_idb = nullptr;
  /// Ablation switch: false re-evaluates rules against the full state each
  /// round (naive fixpoint) instead of delta-driven semi-naive rounds.
  bool use_seminaive = true;
  /// Ablation switch: false disables index probes (always scan).
  bool use_index = true;
};

/// The base (EDB) predicates `program` reads: every body predicate that is
/// not derived by one of its own rules. These are exactly the relations an
/// evaluation of the program may enumerate — the manager uses this to know
/// which remote relations a tier-3 check will touch, so it can prefetch
/// them once per episode.
std::set<std::string> EdbPredicates(const Program& program);

/// Evaluates a (possibly recursive) stratified datalog program with safe
/// negation and arithmetic comparisons over `edb`; returns the IDB
/// relations. Semi-naive iteration within each stratum.
///
/// Fails with InvalidArgument for unsafe or unstratifiable programs.
Result<Database> Evaluate(const Program& program, const Database& edb,
                          const EvalOptions& options = {});

/// Evaluates and returns the relation of the program's goal predicate.
Result<Relation> EvaluateGoal(const Program& program, const Database& edb,
                              const EvalOptions& options = {});

/// For a constraint query (goal `panic`): true iff panic is derivable,
/// i.e. the database violates the constraint (Section 2: a database
/// satisfies the constraint iff the query result is empty).
Result<bool> IsViolated(const Program& constraint, const Database& edb,
                        const EvalOptions& options = {});

}  // namespace ccpi

#endif  // CCPI_EVAL_ENGINE_H_
