#ifndef CCPI_EVAL_ENGINE_H_
#define CCPI_EVAL_ENGINE_H_

#include <set>
#include <string>

#include "datalog/ast.h"
#include "eval/stratify.h"
#include "relational/database.h"
#include "util/budget.h"
#include "util/status.h"

namespace ccpi {

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// Observer of base-relation reads during evaluation. The distributed-site
/// simulator implements this to charge local vs. remote access costs: the
/// paper's motivation is precisely that a test's value depends on *which*
/// relations it reads.
///
/// OnRead is fallible: a simulated remote site may refuse the read
/// (kUnavailable / kDeadlineExceeded), in which case the evaluation engine
/// aborts and propagates the status — an evaluation that could not see all
/// the data it asked for must not report a verdict.
class AccessObserver {
 public:
  virtual ~AccessObserver() = default;
  /// `count` tuples of EDB predicate `pred` are being enumerated (scanned
  /// or probed) by the engine. Returning non-OK fails the read.
  virtual Status OnRead(const std::string& pred, size_t count) = 0;
};

struct EvalOptions {
  /// If set, receives one callback per EDB enumeration.
  AccessObserver* observer = nullptr;
  /// If set, the engine accounts rule evaluations, fixpoint rounds, and
  /// derived tuples into `eval.*` counters of this registry (see
  /// docs/observability.md for the catalog). Null costs nothing.
  obs::MetricsRegistry* metrics = nullptr;
  /// Safety valve for runaway recursive programs (0 = unlimited). Predates
  /// the budget machinery and fails with kInternal; prefer `budget` for
  /// policy-driven limits that the manager can shed gracefully.
  size_t max_derived_tuples = 0;
  /// Execution budget (null = unbudgeted; the check is then a single branch
  /// and the engine reads no clocks). When set, the engine checks it at the
  /// start of every fixpoint round, after every rule evaluation's batch of
  /// derived tuples, and on every EDB enumeration, failing the evaluation
  /// with kResourceExhausted once the envelope is spent. Checkpoint counts
  /// land in the `eval.budget_checks` counter when `metrics` is set.
  const BudgetScope* budget = nullptr;
  /// Tuples seeded into IDB relations before evaluation begins (used by
  /// the uniform-containment chase, where a program runs over frozen
  /// facts of its own derived predicates). May be null.
  const Database* seed_idb = nullptr;
  /// Ablation switch: false re-evaluates rules against the full state each
  /// round (naive fixpoint) instead of delta-driven semi-naive rounds.
  bool use_seminaive = true;
  /// Ablation switch: false disables index probes (always scan).
  bool use_index = true;
};

/// The base (EDB) predicates `program` reads: every body predicate that is
/// not derived by one of its own rules. These are exactly the relations an
/// evaluation of the program may enumerate — the manager uses this to know
/// which remote relations a tier-3 check will touch, so it can prefetch
/// them once per episode.
std::set<std::string> EdbPredicates(const Program& program);

/// A program's evaluation-independent analysis, computed once and reusable
/// across any number of evaluations: the safety check has passed, the
/// stratification is fixed, and the IDB/EDB predicate partition and goal
/// arity are precomputed. Everything in here is a pure function of the
/// program text — never of the data — so a CompiledProgram cached at
/// constraint-registration time stays valid for the constraint's lifetime
/// (the plan cache holds these for tier-3 checks; see docs/plan_cache.md).
struct CompiledProgram {
  Program program;
  Stratification strat;
  std::set<std::string> idb_preds;
  std::set<std::string> edb_preds;
  /// Arity of the goal predicate's head (0 when no rule derives the goal).
  size_t goal_arity = 0;
};

/// Runs the per-program analysis (safety, stratification, predicate
/// partition) without evaluating anything. Fails exactly where
/// Evaluate(program, ...) would: unsafe or unstratifiable programs.
Result<CompiledProgram> CompileProgram(Program program);

/// Evaluates a precompiled program. Identical observable behavior to the
/// Program overloads below — same reads, same metrics, same budget
/// checkpoints — minus the per-call safety/stratification analysis.
Result<Database> Evaluate(const CompiledProgram& plan, const Database& edb,
                          const EvalOptions& options = {});
Result<Relation> EvaluateGoal(const CompiledProgram& plan, const Database& edb,
                              const EvalOptions& options = {});
Result<bool> IsViolated(const CompiledProgram& plan, const Database& edb,
                        const EvalOptions& options = {});

/// Evaluates a (possibly recursive) stratified datalog program with safe
/// negation and arithmetic comparisons over `edb`; returns the IDB
/// relations. Semi-naive iteration within each stratum.
///
/// Fails with InvalidArgument for unsafe or unstratifiable programs.
Result<Database> Evaluate(const Program& program, const Database& edb,
                          const EvalOptions& options = {});

/// Evaluates and returns the relation of the program's goal predicate.
Result<Relation> EvaluateGoal(const Program& program, const Database& edb,
                              const EvalOptions& options = {});

/// For a constraint query (goal `panic`): true iff panic is derivable,
/// i.e. the database violates the constraint (Section 2: a database
/// satisfies the constraint iff the query result is empty).
Result<bool> IsViolated(const Program& constraint, const Database& edb,
                        const EvalOptions& options = {});

}  // namespace ccpi

#endif  // CCPI_EVAL_ENGINE_H_
