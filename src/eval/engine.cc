#include "eval/engine.h"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "datalog/safety.h"
#include "eval/stratify.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace ccpi {

namespace {

using Env = std::map<std::string, Value>;

/// Accumulates engine counters locally during one Evaluate call and
/// flushes them into the registry on scope exit (any return path). The
/// registry lookups happen once per evaluation, never per rule or tuple.
struct EvalMetricsFlush {
  obs::MetricsRegistry* registry;
  size_t rule_evals = 0;
  size_t fixpoint_rounds = 0;
  size_t budget_checks = 0;
  const size_t* derived;  // the engine's derived-tuple count

  ~EvalMetricsFlush() {
    if (registry == nullptr) return;
    registry->GetCounter("eval.evaluations")->Add(1);
    registry->GetCounter("eval.rule_evals")->Add(rule_evals);
    registry->GetCounter("eval.fixpoint_rounds")->Add(fixpoint_rounds);
    registry->GetCounter("eval.tuples_derived")->Add(*derived);
    registry->GetCounter("eval.budget_checks")->Add(budget_checks);
  }
};

std::optional<Value> GroundTerm(const Term& t, const Env& env) {
  if (t.is_const()) return t.constant();
  auto it = env.find(t.var());
  if (it == env.end()) return std::nullopt;
  return it->second;
}

/// Evaluates one rule against a set of relation sources, invoking `emit`
/// for every derived head tuple. Literals are scheduled dynamically:
/// filters (comparisons, negated subgoals) run as soon as they are ground,
/// equality comparisons bind, and the next join picks the positive subgoal
/// with the most bound arguments.
class RuleEval {
 public:
  /// `fetch(pred, arity, literal_index)` supplies the relation a positive
  /// literal reads (the index lets semi-naive evaluation substitute a delta
  /// relation for one designated occurrence). `lookup(pred, arity)` supplies
  /// relations for negated subgoals.
  RuleEval(const Rule& rule,
           std::function<const Relation*(const std::string&, size_t, size_t)>
               fetch,
           std::function<const Relation*(const std::string&, size_t)> lookup,
           AccessObserver* observer,
           const std::set<std::string>* edb_preds, bool use_index,
           const BudgetScope* budget, size_t* budget_checks,
           std::function<void(Tuple)> emit)
      : rule_(rule),
        fetch_(std::move(fetch)),
        lookup_(std::move(lookup)),
        observer_(observer),
        use_index_(use_index),
        edb_preds_(edb_preds),
        budget_(budget),
        budget_checks_(budget_checks),
        emit_(std::move(emit)) {}

  /// Non-OK when an observed read failed mid-evaluation (e.g. the remote
  /// site is unavailable); derived tuples emitted before the failure must
  /// be discarded by the caller.
  Status Run() {
    std::vector<size_t> remaining(rule_.body.size());
    for (size_t i = 0; i < remaining.size(); ++i) remaining[i] = i;
    Env env;
    Step(&env, remaining);
    return status_;
  }

 private:
  /// Reports a read to the observer; returns false (and latches the error
  /// for Run) if the observer refused it.
  bool Observe(const std::string& pred, size_t count) {
    if (budget_ != nullptr) {
      ++*budget_checks_;
      Status st = budget_->Check();
      if (!st.ok()) {
        if (status_.ok()) status_ = std::move(st);
        return false;
      }
    }
    if (observer_ != nullptr && edb_preds_->count(pred) > 0) {
      Status st = observer_->OnRead(pred, count);
      if (!st.ok()) {
        if (status_.ok()) status_ = std::move(st);
        return false;
      }
    }
    return true;
  }

  /// Applies all currently-decidable filters and equality bindings.
  /// Returns false if a filter failed (dead branch).
  bool Propagate(Env* env, std::vector<size_t>* remaining) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t pos = 0; pos < remaining->size(); ++pos) {
        const Literal& lit = rule_.body[(*remaining)[pos]];
        if (lit.is_comparison()) {
          std::optional<Value> a = GroundTerm(lit.cmp.lhs, *env);
          std::optional<Value> b = GroundTerm(lit.cmp.rhs, *env);
          if (a.has_value() && b.has_value()) {
            if (!EvalCmp(*a, lit.cmp.op, *b)) return false;
            remaining->erase(remaining->begin() + pos);
            --pos;
            changed = true;
          } else if (lit.cmp.op == CmpOp::kEq &&
                     (a.has_value() || b.has_value())) {
            const Term& unbound = a.has_value() ? lit.cmp.rhs : lit.cmp.lhs;
            (*env)[unbound.var()] = a.has_value() ? *a : *b;
            remaining->erase(remaining->begin() + pos);
            --pos;
            changed = true;
          }
        } else if (lit.is_negated()) {
          Tuple t;
          bool ground = true;
          for (const Term& arg : lit.atom.args) {
            std::optional<Value> v = GroundTerm(arg, *env);
            if (!v.has_value()) {
              ground = false;
              break;
            }
            t.push_back(*v);
          }
          if (ground) {
            const Relation* rel =
                lookup_(lit.atom.pred, lit.atom.args.size());
            if (!Observe(lit.atom.pred, 1)) return false;
            if (rel != nullptr && rel->Contains(t)) return false;
            remaining->erase(remaining->begin() + pos);
            --pos;
            changed = true;
          }
        }
      }
    }
    return true;
  }

  void Step(Env* env, std::vector<size_t> remaining) {
    if (!status_.ok()) return;  // a read already failed: unwind
    Env saved = *env;
    if (!Propagate(env, &remaining)) {
      *env = saved;
      return;
    }
    // All positive atoms joined and all filters passed?
    bool has_positive = false;
    for (size_t idx : remaining) {
      if (rule_.body[idx].is_positive()) has_positive = true;
    }
    if (!has_positive) {
      // Any leftover literals are non-ground filters; safety guarantees
      // this cannot happen for safe rules.
      CCPI_CHECK(remaining.empty());
      Tuple head;
      head.reserve(rule_.head.args.size());
      for (const Term& t : rule_.head.args) {
        std::optional<Value> v = GroundTerm(t, *env);
        CCPI_CHECK(v.has_value());
        head.push_back(*v);
      }
      emit_(std::move(head));
      *env = saved;
      return;
    }

    // Pick the positive subgoal with the most bound arguments.
    size_t best_pos = remaining.size();
    int best_bound = -1;
    for (size_t pos = 0; pos < remaining.size(); ++pos) {
      const Literal& lit = rule_.body[remaining[pos]];
      if (!lit.is_positive()) continue;
      int bound = 0;
      for (const Term& arg : lit.atom.args) {
        if (GroundTerm(arg, *env).has_value()) ++bound;
      }
      if (bound > best_bound) {
        best_bound = bound;
        best_pos = pos;
      }
    }
    size_t lit_idx = remaining[best_pos];
    remaining.erase(remaining.begin() + best_pos);
    const Atom& atom = rule_.body[lit_idx].atom;
    const Relation* rel = fetch_(atom.pred, atom.args.size(), lit_idx);
    if (rel == nullptr || rel->empty()) {
      *env = saved;
      return;
    }

    // Probe on the first bound column if any (and indexing is enabled);
    // otherwise scan.
    size_t probe_col = atom.args.size();
    Value probe_val;
    if (use_index_) {
      for (size_t i = 0; i < atom.args.size(); ++i) {
        std::optional<Value> v = GroundTerm(atom.args[i], *env);
        if (v.has_value()) {
          probe_col = i;
          probe_val = *v;
          break;
        }
      }
    }
    auto try_tuple = [&](const Tuple& t) {
      Env extended = *env;
      for (size_t i = 0; i < atom.args.size(); ++i) {
        const Term& arg = atom.args[i];
        if (arg.is_const()) {
          if (!(arg.constant() == t[i])) return;
        } else {
          auto it = extended.find(arg.var());
          if (it == extended.end()) {
            extended[arg.var()] = t[i];
          } else if (!(it->second == t[i])) {
            return;
          }
        }
      }
      Step(&extended, remaining);
    };
    // A recursive rule may insert into `rel` while we scan it (the head
    // predicate can occur in its own body), which invalidates index
    // postings and may reallocate the row store. Copy postings and access
    // rows by index so growth during the scan is harmless.
    //
    // A columnar segment is the exception that skips all of that: only
    // frozen relations carry one (FreezeIndexes builds it, any mutation
    // drops it), and only EDB relations are frozen — the IDB relations a
    // recursive rule grows never have a segment. Holding the segment
    // pins an immutable snapshot, so postings bind by reference and rows
    // enumerate without a single per-row Tuple copy.
    std::shared_ptr<const ColumnarSegment> seg = rel->columnar_segment();
    if (probe_col < atom.args.size()) {
      if (seg != nullptr) {
        const std::vector<size_t>& posting =
            rel->Probe(probe_col, probe_val);
        if (!Observe(atom.pred, posting.size())) {
          *env = saved;
          return;
        }
        for (size_t row : posting) {
          if (!status_.ok()) break;
          try_tuple(rel->rows()[row]);
        }
      } else {
        std::vector<size_t> posting = rel->Probe(probe_col, probe_val);
        if (!Observe(atom.pred, posting.size())) {
          *env = saved;
          return;
        }
        for (size_t row : posting) {
          if (!status_.ok()) break;
          Tuple t = rel->rows()[row];
          try_tuple(t);
        }
      }
    } else {
      size_t limit = rel->size();
      if (!Observe(atom.pred, limit)) {
        *env = saved;
        return;
      }
      if (seg != nullptr) {
        const std::vector<Tuple>& rows = rel->rows();
        for (size_t i = 0; i < limit; ++i) {
          if (!status_.ok()) break;
          try_tuple(rows[i]);
        }
      } else {
        for (size_t i = 0; i < limit; ++i) {
          if (!status_.ok()) break;
          Tuple t = rel->rows()[i];
          try_tuple(t);
        }
      }
    }
    *env = saved;
  }

  const Rule& rule_;
  std::function<const Relation*(const std::string&, size_t, size_t)> fetch_;
  std::function<const Relation*(const std::string&, size_t)> lookup_;
  AccessObserver* observer_;
  bool use_index_;
  const std::set<std::string>* edb_preds_;
  const BudgetScope* budget_;
  size_t* budget_checks_;
  std::function<void(Tuple)> emit_;
  Status status_;  // first observer failure, returned by Run
};

}  // namespace

std::set<std::string> EdbPredicates(const Program& program) {
  std::set<std::string> idb_preds = program.IdbPredicates();
  std::set<std::string> edb_preds;
  for (const Rule& r : program.rules) {
    for (const Literal& l : r.body) {
      if (!l.is_comparison() && idb_preds.count(l.atom.pred) == 0) {
        edb_preds.insert(l.atom.pred);
      }
    }
  }
  return edb_preds;
}

Result<CompiledProgram> CompileProgram(Program program) {
  CCPI_RETURN_IF_ERROR(CheckProgramSafety(program));
  CompiledProgram plan;
  CCPI_ASSIGN_OR_RETURN(plan.strat, Stratify(program));
  plan.idb_preds = program.IdbPredicates();
  plan.edb_preds = EdbPredicates(program);
  for (const Rule& r : program.rules) {
    if (r.head.pred == program.goal) plan.goal_arity = r.head.args.size();
  }
  plan.program = std::move(program);
  return plan;
}

Result<Database> Evaluate(const CompiledProgram& plan, const Database& edb,
                          const EvalOptions& options) {
  const Program& program = plan.program;
  obs::Span span("eval.evaluate");
  if (span.active()) {
    span.Attr("rules", static_cast<int64_t>(program.rules.size()));
    span.Attr("goal", program.goal);
  }
  const Stratification& strat = plan.strat;
  const std::set<std::string>& idb_preds = plan.idb_preds;
  const std::set<std::string>& edb_preds = plan.edb_preds;

  Database idb;
  size_t derived = 0;
  EvalMetricsFlush metrics{options.metrics, 0, 0, 0, &derived};
  // Budget checkpoints: one per fixpoint round, one per round's batch of
  // newly derived tuples (RuleEval adds one per EDB enumeration). All of
  // this is a null-pointer branch when no budget is attached.
  const BudgetScope* budget = options.budget;
  size_t charged = 0;  // derived tuples already billed to the budget
  auto budget_round = [&]() -> Status {
    if (budget == nullptr) return Status::OK();
    ++metrics.budget_checks;
    return budget->OnFixpointRound();
  };
  auto budget_tuples = [&]() -> Status {
    if (budget == nullptr || derived <= charged) return Status::OK();
    ++metrics.budget_checks;
    Status st = budget->OnDerivedTuples(derived - charged);
    charged = derived;
    return st;
  };
  if (options.seed_idb != nullptr) {
    // Seed derived relations (the uniform-containment chase evaluates a
    // program over frozen facts of its own IDB predicates).
    for (const std::string& pred : options.seed_idb->PredicateNames()) {
      const Relation& rel = options.seed_idb->Get(pred, 0);
      for (const Tuple& t : rel.rows()) {
        CCPI_RETURN_IF_ERROR(idb.Insert(pred, t));
      }
    }
  }

  auto lookup = [&](const std::string& pred, size_t arity) -> const Relation* {
    if (idb_preds.count(pred) > 0) return &idb.Get(pred, arity);
    return &edb.Get(pred, arity);
  };

  for (const std::vector<Rule>& stratum : strat.strata) {
    std::set<std::string> stratum_preds;
    for (const Rule& r : stratum) stratum_preds.insert(r.head.pred);

    // Tuples derived in the current iteration, per predicate.
    Database delta;
    auto emit = [&](const std::string& pred, Tuple t) {
      if (idb.GetMutable(pred, t.size())->Insert(t)) {
        delta.GetMutable(pred, t.size())->Insert(std::move(t));
        ++derived;
      }
    };

    auto run_full_round = [&]() -> Status {
      for (const Rule& rule : stratum) {
        ++metrics.rule_evals;
        auto fetch = [&](const std::string& pred, size_t arity,
                         size_t) -> const Relation* {
          return lookup(pred, arity);
        };
        RuleEval eval(
            rule, fetch, lookup, options.observer, &edb_preds,
            options.use_index, budget, &metrics.budget_checks,
            [&](Tuple t) { emit(rule.head.pred, std::move(t)); });
        CCPI_RETURN_IF_ERROR(eval.Run());
      }
      return Status::OK();
    };

    // Initial round: every rule against the current (pre-stratum) state.
    ++metrics.fixpoint_rounds;
    CCPI_RETURN_IF_ERROR(budget_round());
    CCPI_RETURN_IF_ERROR(run_full_round());
    CCPI_RETURN_IF_ERROR(budget_tuples());

    if (!options.use_seminaive) {
      // Naive fixpoint (ablation baseline): full rounds until quiescence.
      while (delta.TotalTuples() > 0) {
        if (options.max_derived_tuples != 0 &&
            derived > options.max_derived_tuples) {
          return Status::Internal("derivation limit exceeded");
        }
        delta = Database();
        ++metrics.fixpoint_rounds;
        CCPI_RETURN_IF_ERROR(budget_round());
        CCPI_RETURN_IF_ERROR(run_full_round());
        CCPI_RETURN_IF_ERROR(budget_tuples());
      }
      continue;
    }

    // Semi-naive iteration: re-evaluate each rule once per recursive
    // occurrence, with that occurrence reading the previous delta.
    while (delta.TotalTuples() > 0) {
      if (options.max_derived_tuples != 0 &&
          derived > options.max_derived_tuples) {
        return Status::Internal("derivation limit exceeded");
      }
      Database prev_delta = std::move(delta);
      delta = Database();
      ++metrics.fixpoint_rounds;
      CCPI_RETURN_IF_ERROR(budget_round());
      for (const Rule& rule : stratum) {
        for (size_t k = 0; k < rule.body.size(); ++k) {
          const Literal& lit = rule.body[k];
          if (!lit.is_positive() || stratum_preds.count(lit.atom.pred) == 0) {
            continue;
          }
          if (!prev_delta.Has(lit.atom.pred)) continue;
          auto fetch = [&](const std::string& pred, size_t arity,
                           size_t idx) -> const Relation* {
            if (idx == k) return &prev_delta.Get(pred, arity);
            return lookup(pred, arity);
          };
          RuleEval eval(
              rule, fetch, lookup, options.observer, &edb_preds,
              options.use_index, budget, &metrics.budget_checks,
              [&](Tuple t) { emit(rule.head.pred, std::move(t)); });
          CCPI_RETURN_IF_ERROR(eval.Run());
        }
      }
      CCPI_RETURN_IF_ERROR(budget_tuples());
    }
  }
  return idb;
}

Result<Relation> EvaluateGoal(const CompiledProgram& plan, const Database& edb,
                              const EvalOptions& options) {
  CCPI_ASSIGN_OR_RETURN(Database idb, Evaluate(plan, edb, options));
  return idb.Get(plan.program.goal, plan.goal_arity);
}

Result<bool> IsViolated(const CompiledProgram& plan, const Database& edb,
                        const EvalOptions& options) {
  CCPI_ASSIGN_OR_RETURN(Relation goal, EvaluateGoal(plan, edb, options));
  return !goal.empty();
}

Result<Database> Evaluate(const Program& program, const Database& edb,
                          const EvalOptions& options) {
  CCPI_ASSIGN_OR_RETURN(CompiledProgram plan, CompileProgram(program));
  return Evaluate(plan, edb, options);
}

Result<Relation> EvaluateGoal(const Program& program, const Database& edb,
                              const EvalOptions& options) {
  CCPI_ASSIGN_OR_RETURN(CompiledProgram plan, CompileProgram(program));
  return EvaluateGoal(plan, edb, options);
}

Result<bool> IsViolated(const Program& constraint, const Database& edb,
                        const EvalOptions& options) {
  CCPI_ASSIGN_OR_RETURN(CompiledProgram plan, CompileProgram(constraint));
  return IsViolated(plan, edb, options);
}

}  // namespace ccpi
