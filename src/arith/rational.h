#ifndef CCPI_ARITH_RATIONAL_H_
#define CCPI_ARITH_RATIONAL_H_

#include <cstdint>
#include <numeric>
#include <string>

#include "util/check.h"

namespace ccpi {

/// Exact rational arithmetic for model construction over the dense order.
/// Denominators stay small (powers of two from midpoint bisection), so
/// int64 components suffice for the query sizes constraints have.
class Rational {
 public:
  Rational() : num_(0), den_(1) {}
  explicit Rational(int64_t n) : num_(n), den_(1) {}
  Rational(int64_t num, int64_t den) : num_(num), den_(den) {
    CCPI_CHECK(den != 0);
    Normalize();
  }

  int64_t num() const { return num_; }
  int64_t den() const { return den_; }
  bool IsInteger() const { return den_ == 1; }

  friend Rational operator+(const Rational& a, const Rational& b) {
    return Rational(a.num_ * b.den_ + b.num_ * a.den_, a.den_ * b.den_);
  }
  friend Rational operator-(const Rational& a, const Rational& b) {
    return Rational(a.num_ * b.den_ - b.num_ * a.den_, a.den_ * b.den_);
  }
  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend bool operator<(const Rational& a, const Rational& b) {
    return a.num_ * b.den_ < b.num_ * a.den_;
  }
  friend bool operator<=(const Rational& a, const Rational& b) {
    return a == b || a < b;
  }

  /// The exact midpoint of a and b.
  static Rational Midpoint(const Rational& a, const Rational& b) {
    return Rational(a.num_ * b.den_ + b.num_ * a.den_, 2 * a.den_ * b.den_);
  }

  /// Largest integer <= this value.
  int64_t Floor() const {
    if (num_ >= 0) return num_ / den_;
    return -((-num_ + den_ - 1) / den_);
  }

  std::string ToString() const {
    if (den_ == 1) return std::to_string(num_);
    return std::to_string(num_) + "/" + std::to_string(den_);
  }

 private:
  void Normalize() {
    if (den_ < 0) {
      num_ = -num_;
      den_ = -den_;
    }
    int64_t g = std::gcd(num_ < 0 ? -num_ : num_, den_);
    if (g > 1) {
      num_ /= g;
      den_ /= g;
    }
    if (num_ == 0) den_ = 1;
  }

  int64_t num_;
  int64_t den_;
};

}  // namespace ccpi

#endif  // CCPI_ARITH_RATIONAL_H_
