#include "arith/solver.h"

#include <algorithm>
#include <set>

#include "arith/rational.h"
#include "util/check.h"

namespace ccpi {
namespace arith {

namespace {

/// Union-find over term ids.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<int>(i);
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

/// The order structure of a conjunction: equivalence classes of terms with
/// weak/strict edges, constant pinning, and disequalities. Shared by the
/// satisfiability test and model construction.
struct OrderGraph {
  // Distinct terms, indexed by id.
  std::vector<Term> terms;
  // scc_of[id] after condensation; edges/neqs are on scc indexes.
  std::vector<int> scc_of;
  int num_sccs = 0;
  // (from, to, strict): from <= to or from < to.
  std::vector<std::tuple<int, int, bool>> edges;
  std::vector<std::pair<int, int>> neqs;
  // Pinned constant per SCC (at most one, else unsat).
  std::vector<std::optional<Value>> pinned;
  bool unsat = false;
};

int InternTerm(const Term& t, std::map<Term, int>* ids,
               std::vector<Term>* terms) {
  auto [it, inserted] = ids->emplace(t, static_cast<int>(terms->size()));
  if (inserted) terms->push_back(t);
  return it->second;
}

/// Computes strongly connected components of the digraph given by `adj`
/// using iterative Tarjan. Returns the number of components and fills
/// `scc_of` (components are numbered in reverse topological order).
int TarjanScc(const std::vector<std::vector<int>>& adj,
              std::vector<int>* scc_of) {
  int n = static_cast<int>(adj.size());
  scc_of->assign(n, -1);
  std::vector<int> index(n, -1), lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  int next_index = 0;
  int num_sccs = 0;

  struct Frame {
    int node;
    size_t child;
  };
  for (int start = 0; start < n; ++start) {
    if (index[start] != -1) continue;
    std::vector<Frame> frames{{start, 0}};
    index[start] = lowlink[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.child < adj[f.node].size()) {
        int next = adj[f.node][f.child++];
        if (index[next] == -1) {
          index[next] = lowlink[next] = next_index++;
          stack.push_back(next);
          on_stack[next] = true;
          frames.push_back({next, 0});
        } else if (on_stack[next]) {
          lowlink[f.node] = std::min(lowlink[f.node], index[next]);
        }
      } else {
        if (lowlink[f.node] == index[f.node]) {
          while (true) {
            int w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            (*scc_of)[w] = num_sccs;
            if (w == f.node) break;
          }
          ++num_sccs;
        }
        int node = f.node;
        frames.pop_back();
        if (!frames.empty()) {
          lowlink[frames.back().node] =
              std::min(lowlink[frames.back().node], lowlink[node]);
        }
      }
    }
  }
  return num_sccs;
}

/// Builds the order graph of `conj`. Sets graph.unsat when a contradiction
/// is detected during construction or condensation.
OrderGraph BuildOrderGraph(const Conjunction& conj) {
  OrderGraph g;
  std::map<Term, int> ids;

  // Intern every term; remember constants.
  for (const Comparison& c : conj) {
    InternTerm(c.lhs, &ids, &g.terms);
    InternTerm(c.rhs, &ids, &g.terms);
  }
  int n = static_cast<int>(g.terms.size());

  // Union equalities.
  UnionFind uf(static_cast<size_t>(n));
  for (const Comparison& c : conj) {
    if (c.op == CmpOp::kEq) {
      uf.Union(ids.at(c.lhs), ids.at(c.rhs));
    }
  }

  // Raw edges on union-find roots.
  std::vector<std::tuple<int, int, bool>> raw_edges;
  std::vector<std::pair<int, int>> raw_neqs;
  for (const Comparison& c : conj) {
    int a = uf.Find(ids.at(c.lhs));
    int b = uf.Find(ids.at(c.rhs));
    switch (c.op) {
      case CmpOp::kLt:
        raw_edges.emplace_back(a, b, true);
        break;
      case CmpOp::kLe:
        raw_edges.emplace_back(a, b, false);
        break;
      case CmpOp::kGt:
        raw_edges.emplace_back(b, a, true);
        break;
      case CmpOp::kGe:
        raw_edges.emplace_back(b, a, false);
        break;
      case CmpOp::kNe:
        raw_neqs.emplace_back(a, b);
        break;
      case CmpOp::kEq:
        break;
    }
  }

  // Chain the distinct constants in their true order with strict edges, so
  // the cycle test sees contradictions like x <= 3 & 4 <= x.
  std::vector<std::pair<Value, int>> consts;  // value -> root
  for (int i = 0; i < n; ++i) {
    if (g.terms[i].is_const()) {
      consts.emplace_back(g.terms[i].constant(), uf.Find(i));
    }
  }
  std::sort(consts.begin(), consts.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (size_t i = 0; i + 1 < consts.size(); ++i) {
    if (consts[i].first == consts[i + 1].first) continue;  // same constant
    raw_edges.emplace_back(consts[i].second, consts[i + 1].second, true);
  }

  // Condense.
  std::vector<std::vector<int>> adj(static_cast<size_t>(n));
  for (const auto& [a, b, strict] : raw_edges) {
    (void)strict;
    adj[static_cast<size_t>(a)].push_back(b);
  }
  std::vector<int> scc_of_node;
  int num_sccs = TarjanScc(adj, &scc_of_node);

  g.num_sccs = num_sccs;
  g.scc_of.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    g.scc_of[static_cast<size_t>(i)] =
        scc_of_node[static_cast<size_t>(uf.Find(i))];
  }
  g.pinned.assign(static_cast<size_t>(num_sccs), std::nullopt);
  for (int i = 0; i < n; ++i) {
    if (!g.terms[static_cast<size_t>(i)].is_const()) continue;
    const Value& v = g.terms[static_cast<size_t>(i)].constant();
    auto& slot = g.pinned[static_cast<size_t>(g.scc_of[static_cast<size_t>(i)])];
    if (slot.has_value() && !(*slot == v)) {
      g.unsat = true;  // two distinct constants provably equal
      return g;
    }
    slot = v;
  }
  for (const auto& [a, b, strict] : raw_edges) {
    int sa = scc_of_node[static_cast<size_t>(a)];
    int sb = scc_of_node[static_cast<size_t>(b)];
    if (strict && sa == sb) {
      g.unsat = true;  // strict edge inside a component
      return g;
    }
    if (sa != sb) g.edges.emplace_back(sa, sb, strict);
  }
  for (const auto& [a, b] : raw_neqs) {
    int sa = scc_of_node[static_cast<size_t>(a)];
    int sb = scc_of_node[static_cast<size_t>(b)];
    if (sa == sb) {
      g.unsat = true;  // x != y with x, y provably equal
      return g;
    }
    g.neqs.emplace_back(sa, sb);
  }
  return g;
}

}  // namespace

bool IsSatisfiable(const Conjunction& conj) {
  return !BuildOrderGraph(conj).unsat;
}

std::optional<Conjunction> FindRefutation(
    const Conjunction& premise, const std::vector<Conjunction>& disjuncts) {
  if (!IsSatisfiable(premise)) return std::nullopt;
  // Depth-first choice of one negated comparison per disjunct, pruning
  // unsatisfiable prefixes. `current` always stays satisfiable.
  Conjunction current = premise;
  // Recursion by explicit lambda to keep the stack small.
  std::optional<Conjunction> found;
  auto dfs = [&](auto&& self, size_t i) -> bool {
    if (i == disjuncts.size()) {
      found = current;
      return true;
    }
    for (const Comparison& atom : disjuncts[i]) {
      Comparison negated{atom.lhs, Negate(atom.op), atom.rhs};
      current.push_back(negated);
      if (IsSatisfiable(current) && self(self, i + 1)) return true;
      current.pop_back();
    }
    return false;
  };
  dfs(dfs, 0);
  return found;
}

bool Implies(const Conjunction& premise,
             const std::vector<Conjunction>& disjuncts) {
  return !FindRefutation(premise, disjuncts).has_value();
}

std::optional<std::map<std::string, Value>> FindModel(
    const Conjunction& conj) {
  OrderGraph g = BuildOrderGraph(conj);
  if (g.unsat) return std::nullopt;
  int n = g.num_sccs;

  // Tarjan numbers components in reverse topological order, so processing
  // sccs in descending index is a topological order of the condensation.
  // Upper-bound pass (ascending index = reverse topological): the tightest
  // numeric bound reachable through outgoing edges to pinned components.
  struct UpperBound {
    std::optional<Rational> bound;
    bool open = false;
  };
  std::vector<UpperBound> ub(static_cast<size_t>(n));
  std::vector<std::vector<std::pair<int, bool>>> out(static_cast<size_t>(n));
  std::vector<std::vector<std::pair<int, bool>>> in(static_cast<size_t>(n));
  for (const auto& [a, b, strict] : g.edges) {
    out[static_cast<size_t>(a)].emplace_back(b, strict);
    in[static_cast<size_t>(b)].emplace_back(a, strict);
  }
  auto tighten = [](UpperBound* dst, const Rational& r, bool open) {
    if (!dst->bound.has_value() || r < *dst->bound ||
        (r == *dst->bound && open && !dst->open)) {
      dst->bound = r;
      dst->open = open;
    }
  };
  for (int s = 0; s < n; ++s) {
    for (const auto& [succ, strict] : out[static_cast<size_t>(s)]) {
      // succ has smaller index, so its ub is final.
      const auto& pin = g.pinned[static_cast<size_t>(succ)];
      if (pin.has_value() && pin->is_int()) {
        tighten(&ub[static_cast<size_t>(s)], Rational(pin->AsInt()), strict);
      }
      const UpperBound& su = ub[static_cast<size_t>(succ)];
      if (su.bound.has_value()) {
        tighten(&ub[static_cast<size_t>(s)], *su.bound, strict || su.open);
      }
    }
  }

  // Assignment pass in topological order (descending index). Numeric values
  // as rationals; symbol-pinned components carry their symbol.
  std::vector<std::optional<Rational>> num_val(static_cast<size_t>(n));
  std::vector<std::optional<std::string>> sym_val(static_cast<size_t>(n));
  // Disequality partners per component.
  std::vector<std::vector<int>> neq_of(static_cast<size_t>(n));
  for (const auto& [a, b] : g.neqs) {
    neq_of[static_cast<size_t>(a)].push_back(b);
    neq_of[static_cast<size_t>(b)].push_back(a);
  }

  for (int s = n - 1; s >= 0; --s) {
    const auto& pin = g.pinned[static_cast<size_t>(s)];
    if (pin.has_value()) {
      if (pin->is_int()) {
        num_val[static_cast<size_t>(s)] = Rational(pin->AsInt());
      } else {
        sym_val[static_cast<size_t>(s)] = pin->AsSymbol();
      }
      continue;
    }
    // Lower bound from already-assigned predecessors.
    std::optional<Rational> lo;
    bool lo_strict = false;
    std::optional<std::string> sym_lo;
    bool sym_lo_strict = false;
    for (const auto& [pred, strict] : in[static_cast<size_t>(s)]) {
      if (num_val[static_cast<size_t>(pred)].has_value()) {
        const Rational& pv = *num_val[static_cast<size_t>(pred)];
        if (!lo.has_value() || *lo < pv) {
          lo = pv;
          lo_strict = strict;
        } else if (*lo == pv) {
          lo_strict = lo_strict || strict;
        }
      } else if (sym_val[static_cast<size_t>(pred)].has_value()) {
        const std::string& pv = *sym_val[static_cast<size_t>(pred)];
        if (!sym_lo.has_value() || *sym_lo < pv) {
          sym_lo = pv;
          sym_lo_strict = strict;
        } else if (*sym_lo == pv) {
          sym_lo_strict = sym_lo_strict || strict;
        }
      }
    }
    if (sym_lo.has_value()) {
      // Above a symbol: append to move lexicographically upward. Verified
      // against all constraints below; failure yields nullopt.
      sym_val[static_cast<size_t>(s)] =
          sym_lo_strict ? *sym_lo + "0" : *sym_lo;
      continue;
    }
    // Forbidden numeric values from disequality partners: those already
    // assigned, and pinned partners whatever their topological position.
    std::set<std::pair<int64_t, int64_t>> forbidden;
    for (int partner : neq_of[static_cast<size_t>(s)]) {
      if (num_val[static_cast<size_t>(partner)].has_value()) {
        const Rational& r = *num_val[static_cast<size_t>(partner)];
        forbidden.insert({r.num(), r.den()});
      } else if (g.pinned[static_cast<size_t>(partner)].has_value() &&
                 g.pinned[static_cast<size_t>(partner)]->is_int()) {
        forbidden.insert(
            {g.pinned[static_cast<size_t>(partner)]->AsInt(), 1});
      }
    }
    auto is_forbidden = [&](const Rational& r) {
      return forbidden.count({r.num(), r.den()}) > 0;
    };
    const UpperBound& hi = ub[static_cast<size_t>(s)];
    Rational candidate;
    if (!lo.has_value() && !hi.bound.has_value()) {
      candidate = Rational(0);
      while (is_forbidden(candidate)) candidate = candidate + Rational(1);
    } else if (!hi.bound.has_value()) {
      // Smallest admissible integer at or above the lower bound.
      if (lo->IsInteger() && !lo_strict) {
        candidate = *lo;
      } else {
        candidate = Rational(lo->Floor() + 1);
      }
      while (is_forbidden(candidate)) candidate = candidate + Rational(1);
    } else if (!lo.has_value()) {
      // Upper bound only (such a class has no assigned numeric
      // predecessors, so going lower is always admissible). Back off by
      // the class count: later classes squeezed between this value and
      // the bound by chains of strict edges then still find integer
      // points.
      if (hi.bound->IsInteger() && !hi.open) {
        candidate = *hi.bound;
      } else if (hi.bound->IsInteger()) {
        candidate = *hi.bound - Rational(1);
      } else {
        candidate = Rational(hi.bound->Floor());
      }
      candidate = candidate - Rational(n);
      while (is_forbidden(candidate)) candidate = candidate - Rational(1);
    } else {
      if (*hi.bound < *lo || (*lo == *hi.bound && (lo_strict || hi.open))) {
        return std::nullopt;  // infeasible under integer pinning
      }
      // Prefer an integer point inside the interval; only bisect to a
      // fractional midpoint when no integer fits (e.g. strictly between
      // adjacent integer constants).
      int64_t first =
          (lo->IsInteger() && !lo_strict) ? lo->Floor() : lo->Floor() + 1;
      bool found = false;
      for (int64_t ip = first;; ++ip) {
        Rational r(ip);
        bool below_hi = hi.open ? r < *hi.bound : r <= *hi.bound;
        if (!below_hi) break;
        if (!is_forbidden(r)) {
          candidate = r;
          found = true;
          break;
        }
      }
      if (!found) {
        if (*lo == *hi.bound) {
          if (lo_strict || hi.open || is_forbidden(*lo)) return std::nullopt;
          candidate = *lo;
        } else {
          candidate = Rational::Midpoint(*lo, *hi.bound);
          while (is_forbidden(candidate)) {
            candidate = Rational::Midpoint(candidate, *hi.bound);
          }
        }
      }
    }
    num_val[static_cast<size_t>(s)] = candidate;
  }

  // If any component got a non-integer value, the model is only realizable
  // by scaling, which is valid only in the absence of integer constants.
  bool needs_scaling = false;
  for (int s = 0; s < n; ++s) {
    if (num_val[static_cast<size_t>(s)].has_value() &&
        !num_val[static_cast<size_t>(s)]->IsInteger()) {
      needs_scaling = true;
    }
  }
  int64_t scale = 1;
  if (needs_scaling) {
    for (int s = 0; s < n; ++s) {
      const auto& pin = g.pinned[static_cast<size_t>(s)];
      if (pin.has_value() && pin->is_int()) return std::nullopt;
    }
    for (int s = 0; s < n; ++s) {
      if (num_val[static_cast<size_t>(s)].has_value()) {
        scale = std::lcm(scale, num_val[static_cast<size_t>(s)]->den());
      }
    }
  }

  // Produce the assignment and verify every comparison under the Value
  // order (the greedy construction is heuristic in the symbol cases).
  std::map<std::string, Value> model;
  auto value_of_scc = [&](int s) -> std::optional<Value> {
    if (num_val[static_cast<size_t>(s)].has_value()) {
      const Rational& r = *num_val[static_cast<size_t>(s)];
      return Value(r.num() * (scale / r.den()));
    }
    if (sym_val[static_cast<size_t>(s)].has_value()) {
      return Value(*sym_val[static_cast<size_t>(s)]);
    }
    return std::nullopt;
  };
  for (size_t i = 0; i < g.terms.size(); ++i) {
    if (!g.terms[i].is_var()) continue;
    std::optional<Value> v = value_of_scc(g.scc_of[i]);
    if (!v.has_value()) return std::nullopt;
    model[g.terms[i].var()] = *v;
  }
  for (const Comparison& c : conj) {
    Value a = c.lhs.is_const() ? c.lhs.constant() : model.at(c.lhs.var());
    Value b = c.rhs.is_const() ? c.rhs.constant() : model.at(c.rhs.var());
    if (!EvalCmp(a, c.op, b)) return std::nullopt;
  }
  return model;
}

}  // namespace arith
}  // namespace ccpi
