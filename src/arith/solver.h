#ifndef CCPI_ARITH_SOLVER_H_
#define CCPI_ARITH_SOLVER_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "datalog/ast.h"
#include "relational/value.h"

namespace ccpi {
namespace arith {

/// A conjunction of arithmetic-comparison subgoals A(C) in the paper's
/// notation. Terms are datalog variables or constants; the semantics is a
/// dense total order containing all constants (the paper assumes "<= is a
/// total order"; completeness arguments need density, i.e., the rationals
/// rather than the integers — see DESIGN.md).
using Conjunction = std::vector<Comparison>;

/// Decides whether `conj` has a model over the dense total order.
///
/// Algorithm: union-find on equalities; a digraph of weak (<=) and strict
/// (<) edges on the equivalence classes, including chain edges between the
/// distinct constants in their true order; UNSAT iff two distinct constants
/// are equated, a strongly connected component contains a strict edge, or a
/// != relates two terms in the same component. This criterion is complete
/// for dense orders.
bool IsSatisfiable(const Conjunction& conj);

/// Decides validity of  premise => D_1 or ... or D_k  where each D_i is a
/// conjunction. This is exactly the test of Theorem 5.1:
///     A(C1) => OR_{h in H} h(A(C2)).
/// With an empty disjunct list the implication holds iff `premise` is
/// unsatisfiable (the empty disjunction is false).
///
/// Decided by refutation: premise AND NOT D_1 AND ... AND NOT D_k, where
/// each NOT D_i is a disjunction of single negated comparisons; the search
/// branches on one choice per disjunct with unsatisfiability pruning.
bool Implies(const Conjunction& premise,
             const std::vector<Conjunction>& disjuncts);

/// Like Implies but, when the implication does NOT hold, returns the
/// refuting conjunction (premise plus one negated atom per disjunct,
/// jointly satisfiable). Used to build completeness witnesses: a model of
/// the refutation instantiates C1's body into a database on which C1 fires
/// and no C2 does. Returns nullopt when the implication is valid.
std::optional<Conjunction> FindRefutation(
    const Conjunction& premise, const std::vector<Conjunction>& disjuncts);

/// A model: each variable of `conj` mapped to a concrete Value such that all
/// comparisons hold under the Value total order.
///
/// Only instances whose constants are all integers (or constant-free) are
/// supported; variables are placed at integer points when possible and at
/// rational midpoints otherwise, in which case all values are scaled by the
/// common denominator — valid only when the instance has no constants.
/// Returns nullopt if `conj` is unsatisfiable or a model cannot be realized
/// under those restrictions (e.g. symbol constants mixed with strict
/// between-integer gaps).
std::optional<std::map<std::string, Value>> FindModel(const Conjunction& conj);

}  // namespace arith
}  // namespace ccpi

#endif  // CCPI_ARITH_SOLVER_H_
