#ifndef CCPI_RA_RA_EVAL_H_
#define CCPI_RA_RA_EVAL_H_

#include "eval/engine.h"
#include "ra/ra_expr.h"
#include "relational/database.h"
#include "util/status.h"

namespace ccpi {

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// Evaluates an RA expression against `db`. Scans of absent relations see
/// the empty relation. If `observer` is non-null it is told how many tuples
/// of each base relation were read — the complete local tests of Theorem
/// 5.3 run entirely over the local relation, and the benchmark harness uses
/// this hook to demonstrate it. If `metrics` is non-null the evaluator
/// accounts `ra.*` counters into it (see docs/observability.md); the
/// counter handle is resolved once per call, not per node. If `budget` is
/// non-null the evaluator checks the deadline / cancellation at every
/// operator node and fails with kResourceExhausted once the envelope is
/// spent (see docs/budgets.md); null costs a single branch.
Result<Relation> EvalRa(const RaExpr& expr, const Database& db,
                        AccessObserver* observer = nullptr,
                        obs::MetricsRegistry* metrics = nullptr,
                        const BudgetScope* budget = nullptr);

/// Nonemptiness — the form in which Theorem 5.3 phrases its test.
Result<bool> RaNonempty(const RaExpr& expr, const Database& db,
                        AccessObserver* observer = nullptr,
                        obs::MetricsRegistry* metrics = nullptr,
                        const BudgetScope* budget = nullptr);

}  // namespace ccpi

#endif  // CCPI_RA_RA_EVAL_H_
