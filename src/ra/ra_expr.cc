#include "ra/ra_expr.h"

#include "util/check.h"
#include "util/strings.h"

namespace ccpi {

RaExprPtr RaExpr::Scan(std::string pred, size_t arity) {
  auto e = std::shared_ptr<RaExpr>(new RaExpr());
  e->kind_ = Kind::kScan;
  e->pred_ = std::move(pred);
  e->arity_ = arity;
  return e;
}

RaExprPtr RaExpr::ConstRel(size_t arity, std::vector<Tuple> tuples) {
  auto e = std::shared_ptr<RaExpr>(new RaExpr());
  e->kind_ = Kind::kConstRel;
  e->arity_ = arity;
  for (const Tuple& t : tuples) CCPI_CHECK(t.size() == arity);
  e->tuples_ = std::move(tuples);
  return e;
}

RaExprPtr RaExpr::Select(RaExprPtr child, std::vector<RaCondition> conds) {
  CCPI_CHECK(child != nullptr);
  for (const RaCondition& c : conds) {
    CCPI_CHECK(!c.lhs.is_col || c.lhs.col < child->arity());
    CCPI_CHECK(!c.rhs.is_col || c.rhs.col < child->arity());
  }
  auto e = std::shared_ptr<RaExpr>(new RaExpr());
  e->kind_ = Kind::kSelect;
  e->arity_ = child->arity();
  e->left_ = std::move(child);
  e->conditions_ = std::move(conds);
  return e;
}

RaExprPtr RaExpr::Project(RaExprPtr child, std::vector<size_t> cols) {
  CCPI_CHECK(child != nullptr);
  for (size_t c : cols) CCPI_CHECK(c < child->arity());
  auto e = std::shared_ptr<RaExpr>(new RaExpr());
  e->kind_ = Kind::kProject;
  e->arity_ = cols.size();
  e->left_ = std::move(child);
  e->columns_ = std::move(cols);
  return e;
}

RaExprPtr RaExpr::Product(RaExprPtr left, RaExprPtr right) {
  CCPI_CHECK(left != nullptr && right != nullptr);
  auto e = std::shared_ptr<RaExpr>(new RaExpr());
  e->kind_ = Kind::kProduct;
  e->arity_ = left->arity() + right->arity();
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return e;
}

RaExprPtr RaExpr::Union(RaExprPtr left, RaExprPtr right) {
  CCPI_CHECK(left != nullptr && right != nullptr);
  CCPI_CHECK(left->arity() == right->arity());
  auto e = std::shared_ptr<RaExpr>(new RaExpr());
  e->kind_ = Kind::kUnion;
  e->arity_ = left->arity();
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return e;
}

RaExprPtr RaExpr::Difference(RaExprPtr left, RaExprPtr right) {
  CCPI_CHECK(left != nullptr && right != nullptr);
  CCPI_CHECK(left->arity() == right->arity());
  auto e = std::shared_ptr<RaExpr>(new RaExpr());
  e->kind_ = Kind::kDifference;
  e->arity_ = left->arity();
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return e;
}

std::string RaExpr::ToString() const {
  switch (kind_) {
    case Kind::kScan:
      return pred_;
    case Kind::kConstRel: {
      std::vector<std::string> parts;
      parts.reserve(tuples_.size());
      for (const Tuple& t : tuples_) parts.push_back(TupleToString(t));
      return "{" + Join(parts, ", ") + "}";
    }
    case Kind::kSelect: {
      std::vector<std::string> parts;
      parts.reserve(conditions_.size());
      for (const RaCondition& c : conditions_) parts.push_back(c.ToString());
      return "sigma[" + Join(parts, " & ") + "](" + left_->ToString() + ")";
    }
    case Kind::kProject: {
      std::vector<std::string> parts;
      parts.reserve(columns_.size());
      for (size_t c : columns_) parts.push_back("#" + std::to_string(c + 1));
      return "pi[" + Join(parts, ",") + "](" + left_->ToString() + ")";
    }
    case Kind::kProduct:
      return "(" + left_->ToString() + " x " + right_->ToString() + ")";
    case Kind::kUnion:
      return "(" + left_->ToString() + " U " + right_->ToString() + ")";
    case Kind::kDifference:
      return "(" + left_->ToString() + " - " + right_->ToString() + ")";
  }
  return "?";
}

void RaExpr::CollectScanPreds(std::set<std::string>* out) const {
  if (kind_ == Kind::kScan) out->insert(pred_);
  if (left_ != nullptr) left_->CollectScanPreds(out);
  if (right_ != nullptr) right_->CollectScanPreds(out);
}

}  // namespace ccpi
