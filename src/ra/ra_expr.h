#ifndef CCPI_RA_RA_EXPR_H_
#define CCPI_RA_RA_EXPR_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "datalog/ast.h"
#include "relational/tuple.h"

namespace ccpi {

/// One side of a selection/join condition: a column (positional) or a
/// constant.
struct RaOperand {
  static RaOperand Col(size_t col) { return RaOperand{true, col, Value()}; }
  static RaOperand Const(Value v) {
    return RaOperand{false, 0, std::move(v)};
  }

  bool is_col;
  size_t col;
  Value constant;

  std::string ToString() const {
    return is_col ? "#" + std::to_string(col + 1) : constant.ToString();
  }
};

/// An atomic condition `lhs op rhs` on the columns of one intermediate
/// relation.
struct RaCondition {
  RaOperand lhs;
  CmpOp op;
  RaOperand rhs;

  std::string ToString() const {
    return lhs.ToString() + CmpOpToString(op) + rhs.ToString();
  }
};

class RaExpr;
using RaExprPtr = std::shared_ptr<const RaExpr>;

/// An immutable relational algebra expression. Theorem 5.3 constructs
/// expressions of the shape  UNION_i  SELECT_{cond_i}(L) ; the full operator
/// set (project / product / difference) supports the rest of the library
/// and the examples.
class RaExpr {
 public:
  enum class Kind {
    kScan,        // a named base relation
    kConstRel,    // a literal set of tuples
    kSelect,      // sigma_cond(child)
    kProject,     // pi_cols(child)
    kProduct,     // left x right
    kUnion,       // left U right (same arity)
    kDifference,  // left - right (same arity)
  };

  static RaExprPtr Scan(std::string pred, size_t arity);
  static RaExprPtr ConstRel(size_t arity, std::vector<Tuple> tuples);
  static RaExprPtr Select(RaExprPtr child, std::vector<RaCondition> conds);
  static RaExprPtr Project(RaExprPtr child, std::vector<size_t> cols);
  static RaExprPtr Product(RaExprPtr left, RaExprPtr right);
  static RaExprPtr Union(RaExprPtr left, RaExprPtr right);
  static RaExprPtr Difference(RaExprPtr left, RaExprPtr right);

  /// The empty relation of the given arity.
  static RaExprPtr Empty(size_t arity) { return ConstRel(arity, {}); }

  Kind kind() const { return kind_; }
  size_t arity() const { return arity_; }
  const std::string& pred() const { return pred_; }
  const std::vector<Tuple>& tuples() const { return tuples_; }
  const RaExprPtr& left() const { return left_; }
  const RaExprPtr& right() const { return right_; }
  const std::vector<RaCondition>& conditions() const { return conditions_; }
  const std::vector<size_t>& columns() const { return columns_; }

  /// Textbook rendering, e.g. "sigma[#1=a & #2=#3](L) U sigma[#1=b](L)".
  std::string ToString() const;

  /// Adds the names of every base relation this expression scans to `out`
  /// (recursively over both children). The evaluator reads exactly these
  /// relations, so callers can predict an evaluation's data footprint —
  /// e.g. to verify a Theorem 5.3 test really touches only the local
  /// relation, or to prefetch remote scans.
  void CollectScanPreds(std::set<std::string>* out) const;

 private:
  RaExpr() = default;

  Kind kind_ = Kind::kScan;
  size_t arity_ = 0;
  std::string pred_;
  std::vector<Tuple> tuples_;
  RaExprPtr left_;
  RaExprPtr right_;
  std::vector<RaCondition> conditions_;
  std::vector<size_t> columns_;
};

}  // namespace ccpi

#endif  // CCPI_RA_RA_EXPR_H_
