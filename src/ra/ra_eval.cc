#include "ra/ra_eval.h"

#include "obs/metrics.h"
#include "util/check.h"

namespace ccpi {

namespace {

Value OperandValue(const RaOperand& op, const Tuple& t) {
  return op.is_col ? t[op.col] : op.constant;
}

bool Holds(const std::vector<RaCondition>& conds, const Tuple& t) {
  for (const RaCondition& c : conds) {
    if (!EvalCmp(OperandValue(c.lhs, t), c.op, OperandValue(c.rhs, t))) {
      return false;
    }
  }
  return true;
}

Result<Relation> EvalRaNode(const RaExpr& expr, const Database& db,
                            AccessObserver* observer, obs::Counter* nodes) {
  if (nodes != nullptr) nodes->Add(1);
  switch (expr.kind()) {
    case RaExpr::Kind::kScan: {
      const Relation& rel = db.Get(expr.pred(), expr.arity());
      if (rel.arity() != expr.arity()) {
        return Status::InvalidArgument("scan arity mismatch on " +
                                       expr.pred());
      }
      if (observer != nullptr) {
        CCPI_RETURN_IF_ERROR(observer->OnRead(expr.pred(), rel.size()));
      }
      return rel;
    }
    case RaExpr::Kind::kConstRel: {
      Relation out(expr.arity());
      for (const Tuple& t : expr.tuples()) out.Insert(t);
      return out;
    }
    case RaExpr::Kind::kSelect: {
      CCPI_ASSIGN_OR_RETURN(Relation child,
                            EvalRaNode(*expr.left(), db, observer, nodes));
      Relation out(expr.arity());
      for (const Tuple& t : child.rows()) {
        if (Holds(expr.conditions(), t)) out.Insert(t);
      }
      return out;
    }
    case RaExpr::Kind::kProject: {
      CCPI_ASSIGN_OR_RETURN(Relation child,
                            EvalRaNode(*expr.left(), db, observer, nodes));
      Relation out(expr.arity());
      for (const Tuple& t : child.rows()) {
        Tuple projected;
        projected.reserve(expr.columns().size());
        for (size_t c : expr.columns()) projected.push_back(t[c]);
        out.Insert(std::move(projected));
      }
      return out;
    }
    case RaExpr::Kind::kProduct: {
      CCPI_ASSIGN_OR_RETURN(Relation l, EvalRaNode(*expr.left(), db, observer, nodes));
      CCPI_ASSIGN_OR_RETURN(Relation r, EvalRaNode(*expr.right(), db, observer, nodes));
      Relation out(expr.arity());
      for (const Tuple& a : l.rows()) {
        for (const Tuple& b : r.rows()) {
          Tuple combined = a;
          combined.insert(combined.end(), b.begin(), b.end());
          out.Insert(std::move(combined));
        }
      }
      return out;
    }
    case RaExpr::Kind::kUnion: {
      CCPI_ASSIGN_OR_RETURN(Relation l, EvalRaNode(*expr.left(), db, observer, nodes));
      CCPI_ASSIGN_OR_RETURN(Relation r, EvalRaNode(*expr.right(), db, observer, nodes));
      Relation out = std::move(l);
      for (const Tuple& t : r.rows()) out.Insert(t);
      return out;
    }
    case RaExpr::Kind::kDifference: {
      CCPI_ASSIGN_OR_RETURN(Relation l, EvalRaNode(*expr.left(), db, observer, nodes));
      CCPI_ASSIGN_OR_RETURN(Relation r, EvalRaNode(*expr.right(), db, observer, nodes));
      Relation out(expr.arity());
      for (const Tuple& t : l.rows()) {
        if (!r.Contains(t)) out.Insert(t);
      }
      return out;
    }
  }
  return Status::Internal("unknown RA node kind");
}

}  // namespace

Result<Relation> EvalRa(const RaExpr& expr, const Database& db,
                        AccessObserver* observer,
                        obs::MetricsRegistry* metrics) {
  obs::Counter* nodes = nullptr;
  if (metrics != nullptr) {
    metrics->GetCounter("ra.evaluations")->Add(1);
    nodes = metrics->GetCounter("ra.nodes_evaluated");
  }
  return EvalRaNode(expr, db, observer, nodes);
}

Result<bool> RaNonempty(const RaExpr& expr, const Database& db,
                        AccessObserver* observer,
                        obs::MetricsRegistry* metrics) {
  CCPI_ASSIGN_OR_RETURN(Relation rel, EvalRa(expr, db, observer, metrics));
  return !rel.empty();
}

}  // namespace ccpi
