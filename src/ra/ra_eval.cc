#include "ra/ra_eval.h"

#include <unordered_map>

#include "obs/metrics.h"
#include "util/check.h"

namespace ccpi {

namespace {

Value OperandValue(const RaOperand& op, const Tuple& t) {
  return op.is_col ? t[op.col] : op.constant;
}

bool Holds(const std::vector<RaCondition>& conds, const Tuple& t) {
  for (const RaCondition& c : conds) {
    if (!EvalCmp(OperandValue(c.lhs, t), c.op, OperandValue(c.rhs, t))) {
      return false;
    }
  }
  return true;
}

/// Finds a condition of `conds` usable as a hash-join key for
/// sigma(L x R): a column-to-column equality with one side in L (column
/// < split) and one in R. Returns the index into `conds`, or npos.
size_t FindJoinCondition(const std::vector<RaCondition>& conds,
                         size_t split) {
  for (size_t i = 0; i < conds.size(); ++i) {
    const RaCondition& c = conds[i];
    if (c.op != CmpOp::kEq || !c.lhs.is_col || !c.rhs.is_col) continue;
    bool lhs_left = c.lhs.col < split;
    bool rhs_left = c.rhs.col < split;
    if (lhs_left != rhs_left) return i;
  }
  return static_cast<size_t>(-1);
}

Result<Relation> EvalRaNode(const RaExpr& expr, const Database& db,
                            AccessObserver* observer, obs::Counter* nodes,
                            const BudgetScope* budget);

/// Evaluates sigma_conds(L x R) as a hash equi-join on `key` (an eq
/// condition crossing the L/R boundary): build a hash table over R's key
/// column, then probe it once per L row. Emits exactly the rows, in
/// exactly the order, of the nested-loop product-then-filter it replaces
/// (left-major; matching right rows in insertion order; every condition
/// re-checked on the combined row), so only the cost changes:
/// O(|L| + |R| + matches) instead of O(|L| * |R|).
Result<Relation> EvalHashJoin(const RaExpr& select, const RaCondition& key,
                              const Database& db, AccessObserver* observer,
                              obs::Counter* nodes,
                              const BudgetScope* budget) {
  const RaExpr& product = *select.left();
  if (nodes != nullptr) nodes->Add(1);  // the product node's count
  CCPI_ASSIGN_OR_RETURN(Relation l,
                        EvalRaNode(*product.left(), db, observer, nodes, budget));
  CCPI_ASSIGN_OR_RETURN(Relation r,
                        EvalRaNode(*product.right(), db, observer, nodes, budget));
  size_t split = product.left()->arity();
  size_t left_col = key.lhs.col < split ? key.lhs.col : key.rhs.col;
  size_t right_col = (key.lhs.col < split ? key.rhs.col : key.lhs.col) - split;

  std::unordered_map<Value, std::vector<size_t>, ValueHash> table;
  table.reserve(r.size());
  const std::vector<Tuple>& right_rows = r.rows();
  for (size_t i = 0; i < right_rows.size(); ++i) {
    table[right_rows[i][right_col]].push_back(i);
  }

  Relation out(select.arity());
  for (const Tuple& a : l.rows()) {
    auto hit = table.find(a[left_col]);
    if (hit == table.end()) continue;
    for (size_t i : hit->second) {
      Tuple combined = a;
      const Tuple& b = right_rows[i];
      combined.insert(combined.end(), b.begin(), b.end());
      if (Holds(select.conditions(), combined)) {
        out.Insert(std::move(combined));
      }
    }
  }
  return out;
}

Result<Relation> EvalRaNode(const RaExpr& expr, const Database& db,
                            AccessObserver* observer, obs::Counter* nodes,
                            const BudgetScope* budget) {
  if (nodes != nullptr) nodes->Add(1);
  // Per-node budget checkpoint: bounds the work between two deadline
  // observations by one operator's evaluation.
  if (budget != nullptr) CCPI_RETURN_IF_ERROR(budget->Check());
  switch (expr.kind()) {
    case RaExpr::Kind::kScan: {
      const Relation& rel = db.Get(expr.pred(), expr.arity());
      if (rel.arity() != expr.arity()) {
        return Status::InvalidArgument("scan arity mismatch on " +
                                       expr.pred());
      }
      if (observer != nullptr) {
        CCPI_RETURN_IF_ERROR(observer->OnRead(expr.pred(), rel.size()));
      }
      return rel;
    }
    case RaExpr::Kind::kConstRel: {
      Relation out(expr.arity());
      for (const Tuple& t : expr.tuples()) out.Insert(t);
      return out;
    }
    case RaExpr::Kind::kSelect: {
      // A selection directly over a product whose conditions equate a
      // left column to a right column is a join in disguise: evaluate it
      // as a hash equi-join instead of materializing the full product.
      // Falls through to the nested-loop path when no such condition
      // exists (e.g. pure theta-joins on inequalities).
      if (expr.left()->kind() == RaExpr::Kind::kProduct) {
        size_t key = FindJoinCondition(expr.conditions(),
                                       expr.left()->left()->arity());
        if (key != static_cast<size_t>(-1)) {
          return EvalHashJoin(expr, expr.conditions()[key], db, observer,
                              nodes, budget);
        }
      }
      CCPI_ASSIGN_OR_RETURN(Relation child,
                            EvalRaNode(*expr.left(), db, observer, nodes, budget));
      Relation out(expr.arity());
      for (const Tuple& t : child.rows()) {
        if (Holds(expr.conditions(), t)) out.Insert(t);
      }
      return out;
    }
    case RaExpr::Kind::kProject: {
      CCPI_ASSIGN_OR_RETURN(Relation child,
                            EvalRaNode(*expr.left(), db, observer, nodes, budget));
      Relation out(expr.arity());
      for (const Tuple& t : child.rows()) {
        Tuple projected;
        projected.reserve(expr.columns().size());
        for (size_t c : expr.columns()) projected.push_back(t[c]);
        out.Insert(std::move(projected));
      }
      return out;
    }
    case RaExpr::Kind::kProduct: {
      CCPI_ASSIGN_OR_RETURN(Relation l, EvalRaNode(*expr.left(), db, observer, nodes, budget));
      CCPI_ASSIGN_OR_RETURN(Relation r, EvalRaNode(*expr.right(), db, observer, nodes, budget));
      Relation out(expr.arity());
      for (const Tuple& a : l.rows()) {
        for (const Tuple& b : r.rows()) {
          Tuple combined = a;
          combined.insert(combined.end(), b.begin(), b.end());
          out.Insert(std::move(combined));
        }
      }
      return out;
    }
    case RaExpr::Kind::kUnion: {
      CCPI_ASSIGN_OR_RETURN(Relation l, EvalRaNode(*expr.left(), db, observer, nodes, budget));
      CCPI_ASSIGN_OR_RETURN(Relation r, EvalRaNode(*expr.right(), db, observer, nodes, budget));
      Relation out = std::move(l);
      for (const Tuple& t : r.rows()) out.Insert(t);
      return out;
    }
    case RaExpr::Kind::kDifference: {
      CCPI_ASSIGN_OR_RETURN(Relation l, EvalRaNode(*expr.left(), db, observer, nodes, budget));
      CCPI_ASSIGN_OR_RETURN(Relation r, EvalRaNode(*expr.right(), db, observer, nodes, budget));
      Relation out(expr.arity());
      for (const Tuple& t : l.rows()) {
        if (!r.Contains(t)) out.Insert(t);
      }
      return out;
    }
  }
  return Status::Internal("unknown RA node kind");
}

}  // namespace

Result<Relation> EvalRa(const RaExpr& expr, const Database& db,
                        AccessObserver* observer,
                        obs::MetricsRegistry* metrics,
                        const BudgetScope* budget) {
  obs::Counter* nodes = nullptr;
  if (metrics != nullptr) {
    metrics->GetCounter("ra.evaluations")->Add(1);
    nodes = metrics->GetCounter("ra.nodes_evaluated");
  }
  return EvalRaNode(expr, db, observer, nodes, budget);
}

Result<bool> RaNonempty(const RaExpr& expr, const Database& db,
                        AccessObserver* observer,
                        obs::MetricsRegistry* metrics,
                        const BudgetScope* budget) {
  CCPI_ASSIGN_OR_RETURN(Relation rel,
                        EvalRa(expr, db, observer, metrics, budget));
  return !rel.empty();
}

}  // namespace ccpi
