#include "ra/ra_eval.h"

#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "relational/columnar.h"
#include "util/check.h"

namespace ccpi {

namespace {

Value OperandValue(const RaOperand& op, const Tuple& t) {
  return op.is_col ? t[op.col] : op.constant;
}

bool Holds(const std::vector<RaCondition>& conds, const Tuple& t) {
  for (const RaCondition& c : conds) {
    if (!EvalCmp(OperandValue(c.lhs, t), c.op, OperandValue(c.rhs, t))) {
      return false;
    }
  }
  return true;
}

/// CmpOp (datalog layer) -> ScanOp (relational layer). The enums mirror
/// each other; the relational layer cannot see the datalog AST.
ScanOp ToScanOp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return ScanOp::kLt;
    case CmpOp::kLe:
      return ScanOp::kLe;
    case CmpOp::kGt:
      return ScanOp::kGt;
    case CmpOp::kGe:
      return ScanOp::kGe;
    case CmpOp::kEq:
      return ScanOp::kEq;
    case CmpOp::kNe:
      return ScanOp::kNe;
  }
  return ScanOp::kEq;
}

/// Finds a condition of `conds` usable as a hash-join key for
/// sigma(L x R): a column-to-column equality with one side in L (column
/// < split) and one in R. Returns the index into `conds`, or npos.
size_t FindJoinCondition(const std::vector<RaCondition>& conds,
                         size_t split) {
  for (size_t i = 0; i < conds.size(); ++i) {
    const RaCondition& c = conds[i];
    if (c.op != CmpOp::kEq || !c.lhs.is_col || !c.rhs.is_col) continue;
    bool lhs_left = c.lhs.col < split;
    bool rhs_left = c.rhs.col < split;
    if (lhs_left != rhs_left) return i;
  }
  return static_cast<size_t>(-1);
}

/// `const op col` rewritten as `col op' const`.
ScanOp FlipScanOp(ScanOp op) {
  switch (op) {
    case ScanOp::kLt:
      return ScanOp::kGt;
    case ScanOp::kLe:
      return ScanOp::kGe;
    case ScanOp::kGt:
      return ScanOp::kLt;
    case ScanOp::kGe:
      return ScanOp::kLe;
    case ScanOp::kEq:
    case ScanOp::kNe:
      return op;
  }
  return op;
}

/// An evaluation result that is either owned by the evaluator or borrowed
/// from the database. kScan borrows — returning the stored relation by
/// value would be a full O(|R|) row+hashset copy per scan node that also
/// drops the lazy indexes and the columnar segment. Read-only parents
/// (select, project, product, difference, nonemptiness) evaluate against
/// the borrow in place; the single copy, when a caller genuinely needs an
/// owned Relation of a bare scan, happens once at the public EvalRa
/// boundary via IntoRelation().
class RelView {
 public:
  RelView(RelView&&) noexcept = default;
  RelView& operator=(RelView&&) noexcept = default;

  static RelView Borrow(const Relation* rel) {
    RelView v;
    v.borrowed_ = rel;
    return v;
  }
  static RelView Own(Relation rel) {
    RelView v;
    v.owned_ = std::move(rel);
    return v;
  }

  const Relation& get() const {
    return borrowed_ != nullptr ? *borrowed_ : owned_;
  }

  Relation IntoRelation() && {
    if (borrowed_ != nullptr) return *borrowed_;
    return std::move(owned_);
  }

 private:
  RelView() = default;

  const Relation* borrowed_ = nullptr;
  Relation owned_{0};
};

Result<RelView> EvalRaNode(const RaExpr& expr, const Database& db,
                           AccessObserver* observer, obs::Counter* nodes,
                           const BudgetScope* budget);

/// Evaluates sigma_conds(L x R) as a hash equi-join on `key` (an eq
/// condition crossing the L/R boundary): build a hash table over R's key
/// column, then probe it once per L row. Emits exactly the rows, in
/// exactly the order, of the nested-loop product-then-filter it replaces
/// (left-major; matching right rows in insertion order; every condition
/// re-checked on the combined row), so only the cost changes:
/// O(|L| + |R| + matches) instead of O(|L| * |R|). When both inputs carry
/// columnar segments (frozen base relations) the build and probe run
/// column-at-a-time over integer key ids instead of hashing Values.
Result<RelView> EvalHashJoin(const RaExpr& select, const RaCondition& key,
                             const Database& db, AccessObserver* observer,
                             obs::Counter* nodes, const BudgetScope* budget) {
  const RaExpr& product = *select.left();
  // The product node this join replaces: same node count AND the same
  // budget checkpoint as the nested-loop path, so a deadline-budgeted run
  // sheds identically whichever plan shape the evaluator picks.
  if (nodes != nullptr) nodes->Add(1);
  if (budget != nullptr) CCPI_RETURN_IF_ERROR(budget->Check());
  CCPI_ASSIGN_OR_RETURN(
      RelView l, EvalRaNode(*product.left(), db, observer, nodes, budget));
  CCPI_ASSIGN_OR_RETURN(
      RelView r, EvalRaNode(*product.right(), db, observer, nodes, budget));
  size_t split = product.left()->arity();
  size_t left_col = key.lhs.col < split ? key.lhs.col : key.rhs.col;
  size_t right_col = (key.lhs.col < split ? key.rhs.col : key.lhs.col) - split;

  Relation out(select.arity());
  std::shared_ptr<const ColumnarSegment> lseg = l.get().columnar_segment();
  std::shared_ptr<const ColumnarSegment> rseg = r.get().columnar_segment();
  if (lseg != nullptr && rseg != nullptr) {
    ColumnarJoinTable table(*rseg, right_col);
    std::vector<int32_t> ids;
    table.TranslateProbeColumn(*lseg, left_col, &ids);
    // With the key as the only condition, a probe hit already proves the
    // combined row passes; residual conditions re-check the whole row.
    const bool residual = select.conditions().size() > 1;
    for (size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] < 0) continue;
      Tuple a = lseg->GatherRow(i);
      for (uint32_t j : table.Posting(ids[i])) {
        Tuple combined = a;
        Tuple b = rseg->GatherRow(j);
        combined.insert(combined.end(), b.begin(), b.end());
        if (!residual || Holds(select.conditions(), combined)) {
          out.Insert(std::move(combined));
        }
      }
    }
    return RelView::Own(std::move(out));
  }

  std::unordered_map<Value, std::vector<size_t>, ValueHash> table;
  table.reserve(r.get().size());
  const std::vector<Tuple>& right_rows = r.get().rows();
  for (size_t i = 0; i < right_rows.size(); ++i) {
    table[right_rows[i][right_col]].push_back(i);
  }

  for (const Tuple& a : l.get().rows()) {
    auto hit = table.find(a[left_col]);
    if (hit == table.end()) continue;
    for (size_t i : hit->second) {
      Tuple combined = a;
      const Tuple& b = right_rows[i];
      combined.insert(combined.end(), b.begin(), b.end());
      if (Holds(select.conditions(), combined)) {
        out.Insert(std::move(combined));
      }
    }
  }
  return RelView::Own(std::move(out));
}

Result<RelView> EvalRaNode(const RaExpr& expr, const Database& db,
                           AccessObserver* observer, obs::Counter* nodes,
                           const BudgetScope* budget) {
  if (nodes != nullptr) nodes->Add(1);
  // Per-node budget checkpoint: bounds the work between two deadline
  // observations by one operator's evaluation.
  if (budget != nullptr) CCPI_RETURN_IF_ERROR(budget->Check());
  switch (expr.kind()) {
    case RaExpr::Kind::kScan: {
      const Relation& rel = db.Get(expr.pred(), expr.arity());
      if (rel.arity() != expr.arity()) {
        return Status::InvalidArgument("scan arity mismatch on " +
                                       expr.pred());
      }
      if (observer != nullptr) {
        CCPI_RETURN_IF_ERROR(observer->OnRead(expr.pred(), rel.size()));
      }
      return RelView::Borrow(&rel);
    }
    case RaExpr::Kind::kConstRel: {
      Relation out(expr.arity());
      for (const Tuple& t : expr.tuples()) out.Insert(t);
      return RelView::Own(std::move(out));
    }
    case RaExpr::Kind::kSelect: {
      // A selection directly over a product whose conditions equate a
      // left column to a right column is a join in disguise: evaluate it
      // as a hash equi-join instead of materializing the full product.
      // Falls through to the nested-loop path when no such condition
      // exists (e.g. pure theta-joins on inequalities).
      if (expr.left()->kind() == RaExpr::Kind::kProduct) {
        size_t key = FindJoinCondition(expr.conditions(),
                                       expr.left()->left()->arity());
        if (key != static_cast<size_t>(-1)) {
          return EvalHashJoin(expr, expr.conditions()[key], db, observer,
                              nodes, budget);
        }
      }
      CCPI_ASSIGN_OR_RETURN(
          RelView child, EvalRaNode(*expr.left(), db, observer, nodes, budget));
      Relation out(expr.arity());
      std::shared_ptr<const ColumnarSegment> seg =
          child.get().columnar_segment();
      if (seg != nullptr) {
        // Vectorized path: compile each condition onto a scan kernel. The
        // first column condition scans the segment into a position list;
        // the rest refine it in place. Positions are ascending (insertion
        // order), so the gathered output is row-for-row identical to the
        // tuple loop below.
        PositionList pos;
        bool have = false;
        bool never = false;
        for (const RaCondition& c : expr.conditions()) {
          if (!c.lhs.is_col && !c.rhs.is_col) {
            if (!EvalCmp(c.lhs.constant, c.op, c.rhs.constant)) {
              never = true;
              break;
            }
            continue;
          }
          if (c.lhs.is_col && c.rhs.is_col) {
            if (!have) {
              seg->ScanColCmp(c.lhs.col, ToScanOp(c.op), c.rhs.col, &pos);
              have = true;
            } else {
              seg->FilterColCmp(c.lhs.col, ToScanOp(c.op), c.rhs.col, &pos);
            }
            continue;
          }
          size_t col = c.lhs.is_col ? c.lhs.col : c.rhs.col;
          const Value& v = c.lhs.is_col ? c.rhs.constant : c.lhs.constant;
          ScanOp op = c.lhs.is_col ? ToScanOp(c.op)
                                   : FlipScanOp(ToScanOp(c.op));
          if (!have) {
            seg->ScanCmp(col, op, v, &pos);
            have = true;
          } else {
            seg->FilterCmp(col, op, v, &pos);
          }
        }
        if (!never) {
          if (!have) {
            for (const Tuple& t : child.get().rows()) out.Insert(t);
          } else {
            for (uint32_t p : pos) out.Insert(seg->GatherRow(p));
          }
        }
        return RelView::Own(std::move(out));
      }
      for (const Tuple& t : child.get().rows()) {
        if (Holds(expr.conditions(), t)) out.Insert(t);
      }
      return RelView::Own(std::move(out));
    }
    case RaExpr::Kind::kProject: {
      CCPI_ASSIGN_OR_RETURN(
          RelView child, EvalRaNode(*expr.left(), db, observer, nodes, budget));
      Relation out(expr.arity());
      std::shared_ptr<const ColumnarSegment> seg =
          child.get().columnar_segment();
      if (seg != nullptr) {
        // Gather only the projected columns; untouched columns are never
        // decoded.
        for (size_t row = 0; row < seg->size(); ++row) {
          Tuple projected;
          projected.reserve(expr.columns().size());
          for (size_t c : expr.columns()) {
            projected.push_back(seg->ValueAt(row, c));
          }
          out.Insert(std::move(projected));
        }
        return RelView::Own(std::move(out));
      }
      for (const Tuple& t : child.get().rows()) {
        Tuple projected;
        projected.reserve(expr.columns().size());
        for (size_t c : expr.columns()) projected.push_back(t[c]);
        out.Insert(std::move(projected));
      }
      return RelView::Own(std::move(out));
    }
    case RaExpr::Kind::kProduct: {
      CCPI_ASSIGN_OR_RETURN(
          RelView l, EvalRaNode(*expr.left(), db, observer, nodes, budget));
      CCPI_ASSIGN_OR_RETURN(
          RelView r, EvalRaNode(*expr.right(), db, observer, nodes, budget));
      Relation out(expr.arity());
      for (const Tuple& a : l.get().rows()) {
        for (const Tuple& b : r.get().rows()) {
          Tuple combined = a;
          combined.insert(combined.end(), b.begin(), b.end());
          out.Insert(std::move(combined));
        }
      }
      return RelView::Own(std::move(out));
    }
    case RaExpr::Kind::kUnion: {
      CCPI_ASSIGN_OR_RETURN(
          RelView l, EvalRaNode(*expr.left(), db, observer, nodes, budget));
      CCPI_ASSIGN_OR_RETURN(
          RelView r, EvalRaNode(*expr.right(), db, observer, nodes, budget));
      // Version-stamp audit: moving `l` in carries l's content version.
      // If every insert below is a duplicate the version stays l's —
      // correct, because the contents then ARE l's (equal version ⟹ equal
      // contents holds). Any insert that lands restamps the result with a
      // fresh process-wide version, so a version-keyed cache can never
      // alias the union with its left input. Pinned by the
      // RaEvalHotpathTest.Union*Version* tests.
      Relation out = std::move(l).IntoRelation();
      for (const Tuple& t : r.get().rows()) out.Insert(t);
      return RelView::Own(std::move(out));
    }
    case RaExpr::Kind::kDifference: {
      CCPI_ASSIGN_OR_RETURN(
          RelView l, EvalRaNode(*expr.left(), db, observer, nodes, budget));
      CCPI_ASSIGN_OR_RETURN(
          RelView r, EvalRaNode(*expr.right(), db, observer, nodes, budget));
      Relation out(expr.arity());
      for (const Tuple& t : l.get().rows()) {
        if (!r.get().Contains(t)) out.Insert(t);
      }
      return RelView::Own(std::move(out));
    }
  }
  return Status::Internal("unknown RA node kind");
}

}  // namespace

Result<Relation> EvalRa(const RaExpr& expr, const Database& db,
                        AccessObserver* observer,
                        obs::MetricsRegistry* metrics,
                        const BudgetScope* budget) {
  obs::Counter* nodes = nullptr;
  if (metrics != nullptr) {
    metrics->GetCounter("ra.evaluations")->Add(1);
    nodes = metrics->GetCounter("ra.nodes_evaluated");
  }
  CCPI_ASSIGN_OR_RETURN(RelView view,
                        EvalRaNode(expr, db, observer, nodes, budget));
  return std::move(view).IntoRelation();
}

Result<bool> RaNonempty(const RaExpr& expr, const Database& db,
                        AccessObserver* observer,
                        obs::MetricsRegistry* metrics,
                        const BudgetScope* budget) {
  obs::Counter* nodes = nullptr;
  if (metrics != nullptr) {
    metrics->GetCounter("ra.evaluations")->Add(1);
    nodes = metrics->GetCounter("ra.nodes_evaluated");
  }
  // Evaluates through the view so a bare scan (or any borrowed result)
  // answers nonemptiness with zero Relation copies.
  CCPI_ASSIGN_OR_RETURN(RelView view,
                        EvalRaNode(expr, db, observer, nodes, budget));
  return !view.get().empty();
}

}  // namespace ccpi
