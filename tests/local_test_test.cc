#include <gtest/gtest.h>

#include "containment/cqc.h"
#include "core/cqc_form.h"
#include "core/local_test.h"
#include "core/reduction.h"
#include "datalog/parser.h"
#include "eval/engine.h"
#include "util/rng.h"

namespace ccpi {
namespace {

Rule MustRule(const char* text) {
  auto r = ParseRule(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

Cqc MustCqc(const char* text, const char* local) {
  auto c = MakeCqc(MustRule(text), local);
  EXPECT_TRUE(c.ok()) << c.status().ToString();
  return *c;
}

TEST(CqcFormTest, ForbiddenIntervalsNormalizes) {
  Cqc c = MustCqc("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y", "l");
  EXPECT_EQ(c.local_pred, "l");
  EXPECT_EQ(c.local.pred, "l");
  EXPECT_EQ(c.remotes.size(), 1u);
  EXPECT_EQ(c.remotes[0].pred, "r");
  // Already in normal form: no extra equalities needed.
  EXPECT_EQ(c.comparisons.size(), 2u);
}

TEST(CqcFormTest, RepeatedVariablesGetEqualities) {
  // l and r share X: normalization splits it with an equality.
  Cqc c = MustCqc("panic :- l(X,Y) & r(X,Z) & Z < Y", "l");
  size_t equalities = 0;
  for (const Comparison& cmp : c.comparisons) {
    if (cmp.op == CmpOp::kEq) ++equalities;
  }
  EXPECT_EQ(equalities, 1u);
  EXPECT_EQ(c.comparisons.size(), 2u);
}

TEST(CqcFormTest, RejectsNegationAndMissingLocal) {
  auto neg = MakeCqc(MustRule("panic :- l(X) & not r(X)"), "l");
  EXPECT_FALSE(neg.ok());
  auto missing = MakeCqc(MustRule("panic :- a(X) & r(X)"), "l");
  EXPECT_FALSE(missing.ok());
  auto twice = MakeCqc(MustRule("panic :- l(X) & l(Y) & r(X,Y)"), "l");
  EXPECT_FALSE(twice.ok());
}

TEST(ReductionTest, Example53Reductions) {
  Cqc c = MustCqc("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y", "l");
  CQ red36 = Reduce(c, {V(3), V(6)});
  EXPECT_EQ(red36.positives.size(), 1u);
  ASSERT_EQ(red36.comparisons.size(), 2u);
  EXPECT_EQ(red36.comparisons[0].lhs.constant(), V(3));
  EXPECT_EQ(red36.comparisons[1].rhs.constant(), V(6));

  // The containment of Example 5.3 via the reductions.
  CQ red48 = Reduce(c, {V(4), V(8)});
  CQ red510 = Reduce(c, {V(5), V(10)});
  auto contained = CqcContainedInUnion(red48, {red36, red510});
  ASSERT_TRUE(contained.ok());
  EXPECT_TRUE(*contained);
}

TEST(LocalTestTest, Example53EndToEnd) {
  // "when the stated insertion occurs, we need not fear that C is
  // violated": L = {(3,6),(5,10)}, insert (4,8).
  Cqc c = MustCqc("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y", "l");
  Relation local(2);
  local.Insert({V(3), V(6)});
  local.Insert({V(5), V(10)});
  auto covered = CompleteLocalTestOnInsert(c, {V(4), V(8)}, local);
  ASSERT_TRUE(covered.ok()) << covered.status().ToString();
  EXPECT_EQ(covered->outcome, Outcome::kHolds);
  EXPECT_EQ(covered->reductions, 2u);

  // Inserting (2, 8) extends past the union's left edge: inconclusive.
  auto uncovered = CompleteLocalTestOnInsert(c, {V(2), V(8)}, local);
  ASSERT_TRUE(uncovered.ok());
  EXPECT_EQ(uncovered->outcome, Outcome::kUnknown);
  // ... and the completeness witness materializes a remote state that
  // really breaks the constraint after the insert and not before.
  ASSERT_TRUE(uncovered->witness_remote.has_value());
  const Database& witness = *uncovered->witness_remote;
  Program constraint;
  constraint.rules.push_back(c.ToCQ().ToRule());
  Database before = witness;
  for (const Tuple& s : local.rows()) {
    ASSERT_TRUE(before.Insert("l", s).ok());
  }
  auto held_before = IsViolated(constraint, before);
  ASSERT_TRUE(held_before.ok());
  EXPECT_FALSE(*held_before);
  Database after = before;
  ASSERT_TRUE(after.Insert("l", {V(2), V(8)}).ok());
  auto violated_after = IsViolated(constraint, after);
  ASSERT_TRUE(violated_after.ok());
  EXPECT_TRUE(*violated_after);
}

TEST(LocalTestTest, EmptyLocalRelationOnlyCoversUnsatisfiable) {
  Cqc c = MustCqc("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y", "l");
  Relation local(2);
  // (5,2) forbids nothing (empty interval): safe even with empty L.
  auto safe = CompleteLocalTestOnInsert(c, {V(5), V(2)}, local);
  ASSERT_TRUE(safe.ok());
  EXPECT_EQ(safe->outcome, Outcome::kHolds);
  // (2,5) forbids a real interval: unknown.
  auto unsafe = CompleteLocalTestOnInsert(c, {V(2), V(5)}, local);
  ASSERT_TRUE(unsafe.ok());
  EXPECT_EQ(unsafe->outcome, Outcome::kUnknown);
}

TEST(LocalTestTest, PurelyLocalConstraintDecidesOutright) {
  Cqc c = MustCqc("panic :- l(X,Y) & X > Y", "l");
  Relation local(2);
  auto violated = CompleteLocalTestOnInsert(c, {V(5), V(2)}, local);
  ASSERT_TRUE(violated.ok());
  EXPECT_EQ(violated->outcome, Outcome::kViolated);
  auto holds = CompleteLocalTestOnInsert(c, {V(2), V(5)}, local);
  ASSERT_TRUE(holds.ok());
  EXPECT_EQ(holds->outcome, Outcome::kHolds);
}

TEST(LocalTestTest, AssumedConstraintExtendsTheUnion) {
  // C forbids [X,Y]; C2 forbids [X-0..X+100] style wider intervals is
  // modeled by a second constraint with its own comparisons. A tuple
  // covered only thanks to C2's reductions:
  Cqc c = MustCqc("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y", "l");
  Cqc wide = MustCqc("panic :- l(X,Y) & r(Z) & X <= Z", "l");  // [X, inf)
  Relation local(2);
  local.Insert({V(3), V(4)});
  // [5,9] is not covered by [3,4] under C alone...
  auto alone = CompleteLocalTestOnInsert(c, {V(5), V(9)}, local);
  ASSERT_TRUE(alone.ok());
  EXPECT_EQ(alone->outcome, Outcome::kUnknown);
  // ...but C2's reduction by (3,4) forbids [3, inf), which covers it.
  auto with_wide = CompleteLocalTestOnInsert(c, {V(5), V(9)}, local, {wide});
  ASSERT_TRUE(with_wide.ok()) << with_wide.status().ToString();
  EXPECT_EQ(with_wide->outcome, Outcome::kHolds);
}

/// Soundness + completeness sweep against brute-force evaluation:
///  - kHolds must imply no remote state violates C after the insert
///    (checked on exhaustively enumerated small remote relations);
///  - kUnknown must come with a witness that does violate it.
TEST(LocalTestTest, RandomizedSoundnessAndCompleteness) {
  Rng rng(20260705);
  Cqc c = MustCqc("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y", "l");
  Program constraint;
  constraint.rules.push_back(c.ToCQ().ToRule());

  for (int trial = 0; trial < 60; ++trial) {
    Relation local(2);
    size_t n = 1 + rng.Below(4);
    for (size_t i = 0; i < n; ++i) {
      int64_t lo = rng.Range(0, 12);
      local.Insert({V(lo), V(lo + rng.Range(0, 6))});
    }
    Tuple t = {V(rng.Range(0, 12)), V(rng.Range(0, 18))};
    auto result = CompleteLocalTestOnInsert(c, t, local);
    ASSERT_TRUE(result.ok());

    if (result->outcome == Outcome::kHolds) {
      // Exhaustive point check: every remote value z in [t.lo, t.hi] that
      // fires C after the insert must already fire it before (soundness of
      // "holds": assuming C held before, z cannot exist).
      for (int64_t z = -1; z <= 20; ++z) {
        Database db;
        ASSERT_TRUE(db.Insert("r", {V(z)}).ok());
        for (const Tuple& s : local.rows()) {
          ASSERT_TRUE(db.Insert("l", s).ok());
        }
        auto before = IsViolated(constraint, db);
        ASSERT_TRUE(before.ok());
        Database db_after = db;
        ASSERT_TRUE(db_after.Insert("l", t).ok());
        auto after = IsViolated(constraint, db_after);
        ASSERT_TRUE(after.ok());
        if (!*before) {
          EXPECT_FALSE(*after)
              << "holds-verdict broken by z=" << z << " with t "
              << TupleToString(t);
        }
      }
    } else {
      ASSERT_EQ(result->outcome, Outcome::kUnknown);
      // Completeness: the witness violates after, not before.
      ASSERT_TRUE(result->witness_remote.has_value());
      Database db = *result->witness_remote;
      for (const Tuple& s : local.rows()) {
        ASSERT_TRUE(db.Insert("l", s).ok());
      }
      auto before = IsViolated(constraint, db);
      ASSERT_TRUE(before.ok());
      EXPECT_FALSE(*before);
      ASSERT_TRUE(db.Insert("l", t).ok());
      auto after = IsViolated(constraint, db);
      ASSERT_TRUE(after.ok());
      EXPECT_TRUE(*after);
    }
  }
}

TEST(LocalTestTest, TwoRemoteSubgoals) {
  // Violation needs matching tuples in BOTH remote relations.
  Cqc c = MustCqc(
      "panic :- l(X,Y) & r1(Z) & r2(W) & X <= Z & Z <= Y & W = Z", "l");
  Relation local(2);
  local.Insert({V(0), V(10)});
  auto covered = CompleteLocalTestOnInsert(c, {V(2), V(8)}, local);
  ASSERT_TRUE(covered.ok()) << covered.status().ToString();
  EXPECT_EQ(covered->outcome, Outcome::kHolds);
  auto uncovered = CompleteLocalTestOnInsert(c, {V(2), V(18)}, local);
  ASSERT_TRUE(uncovered.ok());
  EXPECT_EQ(uncovered->outcome, Outcome::kUnknown);
}

}  // namespace
}  // namespace ccpi
