// The parallel check fan-out must be invisible in every observable output:
// ApplyUpdate at threads=N produces byte-identical CheckReport vectors,
// ManagerStats, and deferred-queue contents to threads=1, on any workload
// — including under deterministic fault injection, where the manager
// serializes tier 3 to keep the failure schedule reproducible. These tests
// replay randomized seeded workloads through sequentially- and
// parallel-configured managers and diff everything.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <optional>
#include <vector>

#include "datalog/parser.h"
#include "manager/constraint_manager.h"
#include "util/rng.h"

namespace ccpi {
namespace {

Program MustParse(const char* text) {
  auto p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return *p;
}

/// Base fault seed for the equivalence workloads; CI's seed sweep exports
/// CCPI_FAULT_SEED to rerun them under different schedules. Safe here
/// because every assertion is an *identity between two runs* of the same
/// seed, never a property of one particular schedule.
uint64_t FaultSeedOr(uint64_t fallback) {
  const char* env = std::getenv("CCPI_FAULT_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  return std::strtoull(env, nullptr, 10);
}

/// Everything ApplyUpdate lets a caller observe about one run.
struct RunResult {
  std::vector<std::vector<CheckReport>> reports;
  ManagerStats stats;
  std::vector<DeferredCheck> deferred;
  CircuitState breaker_state = CircuitState::kClosed;
  /// Fault-schedule draws consumed, when an injector was attached. The
  /// remote cache must not change this: a cached read still consumes its
  /// draw, or the schedule would shift and runs would diverge.
  uint64_t injector_trips = 0;
  /// Multi-site runs additionally capture each site's breaker state and
  /// access-counter slice; both must be thread-count invariant too.
  std::vector<CircuitState> site_breaker_states;
  std::vector<AccessStats> site_access;
  /// plan.hits / plan.compiles, captured when the plan cache was enabled
  /// (0 otherwise) — used only for non-vacuity guards, never diffed.
  uint64_t plan_hits = 0;
  uint64_t plan_compiles = 0;
  /// Full dump of the final database state: the pipeline must leave the
  /// exact same relation contents behind as the serial checker.
  std::string db_dump;
  /// manager.pipeline.* accounting, captured when depth > 1 (0 otherwise);
  /// used for the conflict/fallback non-vacuity guards, never diffed
  /// against a serial run (which has no pipeline counters by design).
  uint64_t pipe_admitted = 0;
  uint64_t pipe_committed = 0;
  uint64_t pipe_conflicts = 0;
  uint64_t pipe_unspeculated = 0;
};

std::vector<Update> RandomWorkload(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<Update> out;
  const char* emps[] = {"ann", "bob", "cho", "dee"};
  const char* depts[] = {"cs", "ee", "toy"};
  for (size_t i = 0; i < n; ++i) {
    bool insert = !rng.Chance(1, 3);  // 2/3 inserts, 1/3 deletes
    switch (rng.Below(4)) {
      case 0:  // local l(x, y): small domain, so no-ops and violations occur
        out.push_back(Update{
            insert ? Update::Kind::kInsert : Update::Kind::kDelete,
            "l",
            {V(static_cast<int64_t>(rng.Below(12))),
             V(static_cast<int64_t>(rng.Below(12)))}});
        break;
      case 1:  // local emp(e, d, s)
        out.push_back(Update{
            insert ? Update::Kind::kInsert : Update::Kind::kDelete,
            "emp",
            {V(emps[rng.Below(4)]), V(depts[rng.Below(3)]),
             V(static_cast<int64_t>(rng.Below(150)))}});
        break;
      case 2:  // remote r(z): shifts which intervals are forbidden
        out.push_back(Update{
            insert ? Update::Kind::kInsert : Update::Kind::kDelete,
            "r",
            {V(static_cast<int64_t>(rng.Below(12)))}});
        break;
      default:  // remote dept(d): shifts referential integrity
        out.push_back(
            Update{insert ? Update::Kind::kInsert : Update::Kind::kDelete,
                   "dept",
                   {V(depts[rng.Below(3)])}});
        break;
    }
  }
  return out;
}

/// Replays the seeded workload through a fresh manager with `threads`
/// checker lanes (and, optionally, a fresh same-seeded fault injector).
/// `cache` toggles the remote-read snapshot cache, which must be
/// semantically invisible: only the access accounting may change.
/// `plan_cache` toggles the compiled-plan cache, which must be invisible
/// even in the access accounting. `depth` > 1 drives the stream through
/// the episode pipeline (ApplyUpdateAsync + Drain) instead of the serial
/// ApplyUpdate loop — which must also be invisible in every observable.
RunResult RunWorkload(uint64_t seed, size_t threads,
                      const std::optional<FaultConfig>& faults,
                      bool cache = true, bool plan_cache = true,
                      size_t depth = 1) {
  ConstraintManager mgr({"l", "emp"}, CostModel{}, ResilienceConfig{},
                        ParallelConfig{threads}, RemoteCacheConfig{cache},
                        BudgetConfig{}, TopologyConfig{},
                        PlanCacheConfig{plan_cache}, PipelineConfig{depth});
  std::optional<FaultInjector> injector;
  if (faults.has_value()) {
    injector.emplace(*faults);
    mgr.site().set_fault_injector(&*injector);
  }

  // A mix that exercises every tier: pure-local order (T1/T2, can
  // violate), forbidden intervals over remote r (T2 when covered, else
  // T3), referential integrity with negation (T3), a salary cap
  // (independence for small inserts), and a local-remote join (T3).
  EXPECT_TRUE(
      mgr.AddConstraint("ord", MustParse("panic :- l(X,Y) & X > Y")).ok());
  EXPECT_TRUE(
      mgr.AddConstraint(
             "fi", MustParse("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y"))
          .ok());
  EXPECT_TRUE(mgr.AddConstraint(
                     "ref", MustParse("panic :- emp(E,D,S) & not dept(D)"))
                  .ok());
  EXPECT_TRUE(
      mgr.AddConstraint("cap", MustParse("panic :- emp(E,D,S) & S > 100"))
          .ok());
  EXPECT_TRUE(
      mgr.AddConstraint("join", MustParse("panic :- l(X,Y) & r(Y)")).ok());

  // Initial data, identical across runs, bypassing the checkers.
  EXPECT_TRUE(mgr.site().db().Insert("dept", {V("cs")}).ok());
  EXPECT_TRUE(mgr.site().db().Insert("dept", {V("ee")}).ok());
  EXPECT_TRUE(mgr.site().db().Insert("r", {V(static_cast<int64_t>(20))}).ok());

  RunResult result;
  if (depth > 1) {
    for (const Update& u : RandomWorkload(seed, 60)) mgr.ApplyUpdateAsync(u);
    for (auto& reports : mgr.Drain()) {
      EXPECT_TRUE(reports.ok()) << reports.status().ToString();
      if (reports.ok()) result.reports.push_back(*reports);
    }
  } else {
    for (const Update& u : RandomWorkload(seed, 60)) {
      auto reports = mgr.ApplyUpdate(u);
      EXPECT_TRUE(reports.ok()) << reports.status().ToString();
      if (reports.ok()) result.reports.push_back(*reports);
    }
  }
  result.stats = mgr.stats();
  result.deferred.assign(mgr.deferred_queue().begin(),
                         mgr.deferred_queue().end());
  result.breaker_state = mgr.breaker().state();
  result.db_dump = mgr.site().db().ToString();
  if (injector.has_value()) result.injector_trips = injector->stats().trips;
  if (plan_cache) {
    result.plan_hits = mgr.metrics().GetCounter("plan.hits")->value();
    result.plan_compiles = mgr.metrics().GetCounter("plan.compiles")->value();
  }
  if (depth > 1) {
    result.pipe_admitted =
        mgr.metrics().GetCounter("manager.pipeline.admitted")->value();
    result.pipe_committed =
        mgr.metrics().GetCounter("manager.pipeline.committed")->value();
    result.pipe_conflicts =
        mgr.metrics().GetCounter("manager.pipeline.conflicts")->value();
    result.pipe_unspeculated =
        mgr.metrics().GetCounter("manager.pipeline.unspeculated")->value();
  }
  return result;
}

void ExpectSameReports(const RunResult& seq, const RunResult& par) {
  ASSERT_EQ(seq.reports.size(), par.reports.size());
  for (size_t u = 0; u < seq.reports.size(); ++u) {
    ASSERT_EQ(seq.reports[u].size(), par.reports[u].size()) << "update " << u;
    for (size_t i = 0; i < seq.reports[u].size(); ++i) {
      const CheckReport& a = seq.reports[u][i];
      const CheckReport& b = par.reports[u][i];
      EXPECT_EQ(a.constraint, b.constraint) << "update " << u;
      EXPECT_EQ(a.outcome, b.outcome)
          << "update " << u << " constraint " << a.constraint;
      EXPECT_EQ(a.tier, b.tier)
          << "update " << u << " constraint " << a.constraint;
      EXPECT_EQ(a.retries, b.retries)
          << "update " << u << " constraint " << a.constraint;
      EXPECT_EQ(a.reason, b.reason)
          << "update " << u << " constraint " << a.constraint;
      EXPECT_EQ(a.queue_overflow, b.queue_overflow)
          << "update " << u << " constraint " << a.constraint;
    }
  }
}

void ExpectSameStats(const RunResult& seq, const RunResult& par) {
  EXPECT_EQ(seq.stats.resolved_by, par.stats.resolved_by);
  EXPECT_EQ(seq.stats.violations, par.stats.violations);
  EXPECT_EQ(seq.stats.remote_attempts, par.stats.remote_attempts);
  EXPECT_EQ(seq.stats.remote_retries, par.stats.remote_retries);
  EXPECT_EQ(seq.stats.remote_failures, par.stats.remote_failures);
  EXPECT_EQ(seq.stats.deferred, par.stats.deferred);
  EXPECT_EQ(seq.stats.breaker_fast_fails, par.stats.breaker_fast_fails);
  EXPECT_EQ(seq.stats.deferred_recovered, par.stats.deferred_recovered);
  EXPECT_EQ(seq.stats.deferred_violations, par.stats.deferred_violations);
  EXPECT_EQ(seq.stats.t3_admitted, par.stats.t3_admitted);
  EXPECT_EQ(seq.stats.shed_checks, par.stats.shed_checks);
  EXPECT_EQ(seq.stats.budget_exhausted, par.stats.budget_exhausted);
  EXPECT_EQ(seq.stats.deferred_dropped, par.stats.deferred_dropped);
  EXPECT_EQ(seq.stats.access.local_tuples, par.stats.access.local_tuples);
  EXPECT_EQ(seq.stats.access.remote_tuples, par.stats.access.remote_tuples);
  EXPECT_EQ(seq.stats.access.remote_trips, par.stats.access.remote_trips);
  EXPECT_EQ(seq.stats.access.remote_failures,
            par.stats.access.remote_failures);
  EXPECT_EQ(seq.stats.access.cache_hits, par.stats.access.cache_hits);
  EXPECT_EQ(seq.stats.access.cached_tuples, par.stats.access.cached_tuples);
}

/// The stats a cache-on run must share with a cache-off run: everything
/// except the remote access accounting, which is exactly what the cache
/// exists to change (trips/tuples move into hits/cached_tuples; prefetch
/// may even fetch a relation a short-circuiting evaluation never scans).
void ExpectSameSemanticStats(const RunResult& off, const RunResult& on) {
  EXPECT_EQ(off.stats.resolved_by, on.stats.resolved_by);
  EXPECT_EQ(off.stats.violations, on.stats.violations);
  EXPECT_EQ(off.stats.remote_attempts, on.stats.remote_attempts);
  EXPECT_EQ(off.stats.remote_retries, on.stats.remote_retries);
  EXPECT_EQ(off.stats.remote_failures, on.stats.remote_failures);
  EXPECT_EQ(off.stats.deferred, on.stats.deferred);
  EXPECT_EQ(off.stats.breaker_fast_fails, on.stats.breaker_fast_fails);
  EXPECT_EQ(off.stats.deferred_recovered, on.stats.deferred_recovered);
  EXPECT_EQ(off.stats.deferred_violations, on.stats.deferred_violations);
  EXPECT_EQ(off.stats.access.local_tuples, on.stats.access.local_tuples);
  EXPECT_EQ(off.stats.access.remote_failures,
            on.stats.access.remote_failures);
  EXPECT_EQ(off.stats.access.cache_hits, 0u);  // `off` really ran uncached
}

void ExpectSameDeferred(const RunResult& seq, const RunResult& par) {
  ASSERT_EQ(seq.deferred.size(), par.deferred.size());
  for (size_t i = 0; i < seq.deferred.size(); ++i) {
    EXPECT_EQ(seq.deferred[i].constraint, par.deferred[i].constraint);
    EXPECT_EQ(seq.deferred[i].sequence, par.deferred[i].sequence);
    EXPECT_EQ(seq.deferred[i].update.pred, par.deferred[i].update.pred);
    EXPECT_EQ(seq.deferred[i].update.kind, par.deferred[i].update.kind);
    EXPECT_EQ(seq.deferred[i].update.tuple, par.deferred[i].update.tuple);
  }
  EXPECT_EQ(seq.breaker_state, par.breaker_state);
}

void ExpectEquivalent(const RunResult& seq, const RunResult& par) {
  ExpectSameReports(seq, par);
  ExpectSameStats(seq, par);
  ExpectSameDeferred(seq, par);
  EXPECT_EQ(seq.db_dump, par.db_dump);
}

TEST(ParallelEquivalenceTest, FourThreadsMatchSequential) {
  for (uint64_t seed : {11u, 23u, 47u}) {
    RunResult seq = RunWorkload(seed, 1, std::nullopt);
    RunResult par = RunWorkload(seed, 4, std::nullopt);
    ExpectEquivalent(seq, par);
  }
}

TEST(ParallelEquivalenceTest, SomethingActuallyHappened) {
  // Guard against a vacuous pass: the workloads must exercise violations
  // and the full-check tier, or the diffs above prove nothing.
  RunResult r = RunWorkload(11, 1, std::nullopt);
  EXPECT_GT(r.stats.violations, 0u);
  EXPECT_GT(r.stats.resolved_by[Tier::kFullCheck], 0u);
  EXPECT_GT(r.stats.access.remote_trips, 0u);
}

TEST(ParallelEquivalenceTest, FourThreadsMatchSequentialUnderFaults) {
  FaultConfig faults;
  faults.seed = FaultSeedOr(99);
  faults.transient_rate = 0.25;
  faults.timeout_rate = 0.1;
  faults.outages.push_back(OutageWindow{10, 25});
  for (uint64_t seed : {11u, 23u, 47u}) {
    RunResult seq = RunWorkload(seed, 1, faults);
    RunResult par = RunWorkload(seed, 4, faults);
    ExpectEquivalent(seq, par);
  }
}

TEST(ParallelEquivalenceTest, FaultWorkloadsActuallyDefer) {
  FaultConfig faults;
  faults.seed = FaultSeedOr(99);
  faults.transient_rate = 0.25;
  faults.timeout_rate = 0.1;
  faults.outages.push_back(OutageWindow{10, 25});
  RunResult r = RunWorkload(11, 1, faults);
  // The outage window plus fault rates must push checks through the
  // deferred/retry machinery, or the fault-equivalence test is vacuous.
  EXPECT_GT(r.stats.deferred, 0u);
  EXPECT_GT(r.stats.remote_retries, 0u);
}

TEST(ParallelEquivalenceTest, EightThreadsMatchSequential) {
  RunResult seq = RunWorkload(123, 1, std::nullopt);
  RunResult par = RunWorkload(123, 8, std::nullopt);
  ExpectEquivalent(seq, par);
}

TEST(ParallelEquivalenceTest, ZeroThreadsMeansSequential) {
  RunResult a = RunWorkload(7, 0, std::nullopt);
  RunResult b = RunWorkload(7, 1, std::nullopt);
  ExpectEquivalent(a, b);
}

// ---- Remote-read cache: on/off equivalence ------------------------------
//
// The cache must be invisible in every verdict-bearing output: CheckReport
// vectors, deferred-queue contents, and the semantic half of ManagerStats
// are byte-identical with the cache on and off, at every thread count.
// Only the access accounting moves — and in the right direction.

TEST(ParallelEquivalenceTest, CacheOnMatchesCacheOff) {
  size_t trips_on = 0;
  size_t trips_off = 0;
  size_t hits = 0;
  for (size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
    for (uint64_t seed : {11u, 23u, 47u}) {
      RunResult off = RunWorkload(seed, threads, std::nullopt, false);
      RunResult on = RunWorkload(seed, threads, std::nullopt, true);
      ExpectSameReports(off, on);
      ExpectSameDeferred(off, on);
      ExpectSameSemanticStats(off, on);
      trips_off += off.stats.access.remote_trips;
      trips_on += on.stats.access.remote_trips;
      hits += on.stats.access.cache_hits;
    }
  }
  // Non-vacuous and effective: the cache engaged and cut physical trips.
  // (Per-seed trip counts need not be ordered — prefetch can fetch a
  // relation a short-circuiting evaluation never scans — but across the
  // sweep the cache must win clearly.)
  EXPECT_GT(hits, 0u);
  EXPECT_LT(trips_on, trips_off);
}

TEST(ParallelEquivalenceTest, CacheOnMatchesCacheOffUnderFaults) {
  FaultConfig faults;
  faults.seed = FaultSeedOr(99);
  faults.transient_rate = 0.25;
  faults.timeout_rate = 0.1;
  faults.outages.push_back(OutageWindow{10, 25});
  size_t hits = 0;
  for (size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
    for (uint64_t seed : {11u, 23u, 47u}) {
      RunResult off = RunWorkload(seed, threads, faults, false);
      RunResult on = RunWorkload(seed, threads, faults, true);
      ExpectSameReports(off, on);
      ExpectSameDeferred(off, on);
      ExpectSameSemanticStats(off, on);
      // With an injector attached prefetch is disabled and every cached
      // read still consumes its schedule draw, so the accounting is
      // conserved read-by-read, not just equivalent in aggregate.
      EXPECT_EQ(on.stats.access.remote_trips + on.stats.access.cache_hits,
                off.stats.access.remote_trips);
      EXPECT_EQ(on.stats.access.remote_tuples + on.stats.access.cached_tuples,
                off.stats.access.remote_tuples);
      EXPECT_EQ(on.injector_trips, off.injector_trips);
      hits += on.stats.access.cache_hits;
    }
  }
  EXPECT_GT(hits, 0u);
}

TEST(ParallelEquivalenceTest, CacheOffThreadsStillMatchSequential) {
  // The --remote-cache=off path must preserve the original thread
  // invisibility guarantee, including the full access accounting.
  for (uint64_t seed : {11u, 47u}) {
    RunResult seq = RunWorkload(seed, 1, std::nullopt, false);
    RunResult par = RunWorkload(seed, 4, std::nullopt, false);
    ExpectEquivalent(seq, par);
  }
}

// ---- Compiled-plan cache: on/off equivalence -----------------------------
//
// The plan cache is held to a stronger standard than the remote cache: it
// must be invisible in EVERY field of ManagerStats, access accounting
// included — a cached plan changes how a verdict was computed, never which
// reads the evaluation charged. So the on/off diff here uses the full
// ExpectSameStats, at threads 1/4/8, with and without faults.

TEST(ParallelEquivalenceTest, PlanCacheOnMatchesOff) {
  uint64_t hits = 0;
  for (size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
    for (uint64_t seed : {11u, 23u, 47u}) {
      RunResult off = RunWorkload(seed, threads, std::nullopt, true, false);
      RunResult on = RunWorkload(seed, threads, std::nullopt, true, true);
      ExpectSameReports(off, on);
      ExpectSameStats(off, on);
      ExpectSameDeferred(off, on);
      hits += on.plan_hits;
    }
  }
  // Non-vacuous: the repeated update patterns really served cached plans.
  EXPECT_GT(hits, 0u);
}

TEST(ParallelEquivalenceTest, PlanCacheOnMatchesOffUnderFaults) {
  FaultConfig faults;
  faults.seed = FaultSeedOr(99);
  faults.transient_rate = 0.25;
  faults.timeout_rate = 0.1;
  faults.outages.push_back(OutageWindow{10, 25});
  uint64_t hits = 0;
  for (size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
    for (uint64_t seed : {11u, 23u, 47u}) {
      RunResult off = RunWorkload(seed, threads, faults, true, false);
      RunResult on = RunWorkload(seed, threads, faults, true, true);
      ExpectSameReports(off, on);
      ExpectSameStats(off, on);
      ExpectSameDeferred(off, on);
      // Cached analysis never skips a remote trip, so the injector's
      // failure schedule advances identically.
      EXPECT_EQ(on.injector_trips, off.injector_trips);
      hits += on.plan_hits;
    }
  }
  EXPECT_GT(hits, 0u);
}

TEST(ParallelEquivalenceTest, PlanCacheThreadsStillMatchSequential) {
  // Cache state must be thread-count deterministic too: keys embed the
  // constraint id, so phase-1 lanes touch disjoint key families.
  for (uint64_t seed : {11u, 47u}) {
    RunResult seq = RunWorkload(seed, 1, std::nullopt, true, true);
    RunResult par = RunWorkload(seed, 8, std::nullopt, true, true);
    ExpectEquivalent(seq, par);
    EXPECT_EQ(seq.plan_hits, par.plan_hits);
    EXPECT_EQ(seq.plan_compiles, par.plan_compiles);
  }
}

// ---- Execution budgets: thread-count invariance --------------------------
//
// Budgeted shedding must also be invisible to the lane count: the
// per-episode caps are split deterministically across the tier-3 worklist
// before the fan-out, so which checks shed — and every report field,
// including reason — is identical at 1, 4, and 8 threads. Access
// accounting is deliberately NOT compared here: how much remote data a
// check managed to read before its deadline fired is timing-dependent by
// nature; the verdicts must not be.

/// The thread-count-independent half of ManagerStats under budgets.
void ExpectSameBudgetStats(const RunResult& seq, const RunResult& par) {
  EXPECT_EQ(seq.stats.resolved_by, par.stats.resolved_by);
  EXPECT_EQ(seq.stats.violations, par.stats.violations);
  EXPECT_EQ(seq.stats.deferred, par.stats.deferred);
  EXPECT_EQ(seq.stats.t3_admitted, par.stats.t3_admitted);
  EXPECT_EQ(seq.stats.shed_checks, par.stats.shed_checks);
  EXPECT_EQ(seq.stats.budget_exhausted, par.stats.budget_exhausted);
  EXPECT_EQ(seq.stats.deferred_dropped, par.stats.deferred_dropped);
}

/// Two deliberately heavy recursive constraints — a tier-3 evaluation of
/// either walks the transitive closure of a 128-edge remote chain, tens of
/// milliseconds of work — next to a pure-local ordering constraint. Every
/// constraint that can reach tier 3 here is heavy, so a millisecond-scale
/// per-check budget sheds all of them robustly at any machine speed and
/// any lane count; the local constraint keeps resolving (and violating)
/// outside the budget envelope.
RunResult RunBudgetWorkload(size_t threads, BudgetConfig budget) {
  ConstraintManager mgr({"lq", "l"}, CostModel{}, ResilienceConfig{},
                        ParallelConfig{threads}, RemoteCacheConfig{}, budget);
  EXPECT_TRUE(mgr.AddConstraint(
                     "deep1",
                     MustParse("panic :- lq(X) & path(X,Y) & bad(Y)\n"
                               "path(X,Y) :- edge(X,Y)\n"
                               "path(X,Y) :- edge(X,Z) & path(Z,Y)"))
                  .ok());
  EXPECT_TRUE(mgr.AddConstraint(
                     "deep2",
                     MustParse("panic :- lq(X) & rpath(X,Y) & bad2(Y)\n"
                               "rpath(X,Y) :- edge(X,Y)\n"
                               "rpath(X,Y) :- rpath(X,Z) & edge(Z,Y)"))
                  .ok());
  EXPECT_TRUE(
      mgr.AddConstraint("ord", MustParse("panic :- l(X,Y) & X > Y")).ok());
  for (int i = 0; i < 128; ++i) {
    EXPECT_TRUE(mgr.site().db().Insert("edge", {V(i), V(i + 1)}).ok());
  }

  RunResult result;
  std::vector<Update> stream;
  for (int i = 0; i < 5; ++i) {
    stream.push_back(Update::Insert("lq", {V(i)}));         // T3 both deeps
    stream.push_back(Update::Insert("l", {V(i), V(i + 1)}));  // local, holds
    stream.push_back(Update::Insert("l", {V(i + 1), V(i)}));  // local, violates
  }
  for (const Update& u : stream) {
    auto reports = mgr.ApplyUpdate(u);
    EXPECT_TRUE(reports.ok()) << reports.status().ToString();
    if (reports.ok()) result.reports.push_back(*reports);
  }
  result.stats = mgr.stats();
  result.deferred.assign(mgr.deferred_queue().begin(),
                         mgr.deferred_queue().end());
  result.breaker_state = mgr.breaker().state();
  return result;
}

TEST(ParallelEquivalenceTest, DeadlineShedsIdenticallyAtAnyThreadCount) {
  BudgetConfig budget;
  budget.per_check.deadline_ms = 1;
  RunResult seq = RunBudgetWorkload(1, budget);
  // Non-vacuous: the deadline really shed the heavy checks mid-stream, the
  // local constraint kept firing, and the accounting balances.
  EXPECT_GT(seq.stats.shed_checks, 0u);
  EXPECT_GT(seq.stats.violations, 0u);
  auto completed = seq.stats.resolved_by.find(Tier::kFullCheck);
  EXPECT_EQ(seq.stats.t3_admitted,
            (completed != seq.stats.resolved_by.end() ? completed->second
                                                      : 0) +
                seq.stats.deferred + seq.stats.shed_checks);
  for (size_t threads : {size_t{4}, size_t{8}}) {
    RunResult par = RunBudgetWorkload(threads, budget);
    ExpectSameReports(seq, par);
    ExpectSameDeferred(seq, par);
    ExpectSameBudgetStats(seq, par);
  }
}

TEST(ParallelEquivalenceTest, CancelledEpisodesShedIdenticallyAtAnyThreadCount) {
  CancellationToken token;
  token.Cancel();  // cancelled before the stream: every T3 check sheds
  BudgetConfig budget;
  budget.cancel = &token;
  RunResult seq = RunBudgetWorkload(1, budget);
  EXPECT_GT(seq.stats.shed_checks, 0u);
  EXPECT_EQ(seq.stats.resolved_by.count(Tier::kFullCheck), 0u);
  EXPECT_GT(seq.stats.violations, 0u);  // local tiers ignore the token
  for (size_t threads : {size_t{4}, size_t{8}}) {
    RunResult par = RunBudgetWorkload(threads, budget);
    ExpectSameReports(seq, par);
    ExpectSameDeferred(seq, par);
    ExpectSameBudgetStats(seq, par);
  }
}

// ---- N-site topologies: thread-count invariance --------------------------
//
// The sharded remote side must not loosen the original guarantee: at any
// site count the reports, deferred queue, aggregate stats, AND every
// per-site slice (breaker state, trips, hits, failures) are identical at
// threads 1/4/8 — healthy and under per-site fault injection alike. A
// divergence in a per-site counter would mean the batched prefetch or the
// per-site breaker accounting depends on lane scheduling.

/// RunWorkload generalized to an N-site topology: remote r and dept are
/// pinned to the first and last site, per-site injectors derive their
/// seeds the same way the script layer does (site 0 verbatim, then the
/// golden-ratio stride).
RunResult RunTopologyWorkload(uint64_t seed, size_t threads, size_t sites,
                              const std::optional<FaultConfig>& faults,
                              bool neutral_latency = false,
                              uint64_t hedge_after = 0) {
  TopologyConfig topology;
  topology.sites = sites;
  topology.placement["r"] = 0;
  topology.placement["dept"] = sites - 1;
  if (neutral_latency) {
    // A maximally-spelled-out-but-inert config: every site carries an
    // explicit kFixed/0us latency override (identical to the default
    // pricing) and all sites are grouped into one failure domain with no
    // outage windows (pure membership). Neither may perturb a single
    // observable.
    for (size_t s = 0; s < sites; ++s) {
      topology.site_latency[s] = SiteLatencyOverride{};
    }
    FailureDomain quiet;
    quiet.name = "quiet";
    for (size_t s = 0; s < sites; ++s) quiet.members.push_back(s);
    topology.domains.push_back(quiet);
  }
  RemoteCacheConfig remote_cache;
  remote_cache.hedge_after = hedge_after;
  ConstraintManager mgr({"l", "emp"}, CostModel{}, ResilienceConfig{},
                        ParallelConfig{threads}, remote_cache,
                        BudgetConfig{}, topology);
  std::vector<std::unique_ptr<FaultInjector>> injectors;
  if (faults.has_value()) {
    for (size_t s = 0; s < sites; ++s) {
      FaultConfig config = *faults;
      if (s > 0) config.seed = config.seed + s * 0x9e3779b97f4a7c15ull;
      injectors.push_back(std::make_unique<FaultInjector>(config));
      mgr.site().set_site_fault_injector(s, injectors.back().get());
    }
  }

  EXPECT_TRUE(
      mgr.AddConstraint("ord", MustParse("panic :- l(X,Y) & X > Y")).ok());
  EXPECT_TRUE(
      mgr.AddConstraint(
             "fi", MustParse("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y"))
          .ok());
  EXPECT_TRUE(mgr.AddConstraint(
                     "ref", MustParse("panic :- emp(E,D,S) & not dept(D)"))
                  .ok());
  EXPECT_TRUE(
      mgr.AddConstraint("cap", MustParse("panic :- emp(E,D,S) & S > 100"))
          .ok());
  EXPECT_TRUE(
      mgr.AddConstraint("join", MustParse("panic :- l(X,Y) & r(Y)")).ok());
  EXPECT_TRUE(mgr.site().db().Insert("dept", {V("cs")}).ok());
  EXPECT_TRUE(mgr.site().db().Insert("dept", {V("ee")}).ok());
  EXPECT_TRUE(mgr.site().db().Insert("r", {V(static_cast<int64_t>(20))}).ok());

  RunResult result;
  for (const Update& u : RandomWorkload(seed, 60)) {
    auto reports = mgr.ApplyUpdate(u);
    EXPECT_TRUE(reports.ok()) << reports.status().ToString();
    if (reports.ok()) result.reports.push_back(*reports);
  }
  result.stats = mgr.stats();
  result.deferred.assign(mgr.deferred_queue().begin(),
                         mgr.deferred_queue().end());
  result.breaker_state = mgr.breaker().state();
  for (size_t s = 0; s < sites; ++s) {
    result.site_breaker_states.push_back(mgr.site_breaker(s).state());
    result.site_access.push_back(mgr.site().site_stats(s));
  }
  for (const auto& injector : injectors) {
    result.injector_trips += injector->stats().trips;
  }
  return result;
}

void ExpectSameSiteState(const RunResult& seq, const RunResult& par) {
  ASSERT_EQ(seq.site_breaker_states.size(), par.site_breaker_states.size());
  for (size_t s = 0; s < seq.site_breaker_states.size(); ++s) {
    EXPECT_EQ(seq.site_breaker_states[s], par.site_breaker_states[s])
        << "site " << s;
    const AccessStats& a = seq.site_access[s];
    const AccessStats& b = par.site_access[s];
    EXPECT_EQ(a.remote_trips, b.remote_trips) << "site " << s;
    EXPECT_EQ(a.remote_tuples, b.remote_tuples) << "site " << s;
    EXPECT_EQ(a.remote_failures, b.remote_failures) << "site " << s;
    EXPECT_EQ(a.cache_hits, b.cache_hits) << "site " << s;
    EXPECT_EQ(a.cached_tuples, b.cached_tuples) << "site " << s;
  }
  EXPECT_EQ(seq.stats.sites_recovered, par.stats.sites_recovered);
  EXPECT_EQ(seq.stats.cache_revalidated, par.stats.cache_revalidated);
}

TEST(ParallelEquivalenceTest, MultiSiteThreadsMatchSequential) {
  for (size_t sites : {size_t{2}, size_t{4}}) {
    for (uint64_t seed : {11u, 47u}) {
      RunResult seq = RunTopologyWorkload(seed, 1, sites, std::nullopt);
      for (size_t threads : {size_t{4}, size_t{8}}) {
        RunResult par = RunTopologyWorkload(seed, threads, sites, std::nullopt);
        ExpectSameReports(seq, par);
        ExpectSameStats(seq, par);
        ExpectSameDeferred(seq, par);
        ExpectSameSiteState(seq, par);
      }
    }
  }
}

TEST(ParallelEquivalenceTest, MultiSiteWorkloadsActuallyShard) {
  // Non-vacuous: both pinned sites really served reads, so the per-site
  // diffs above compare live counters, not zeros.
  RunResult r = RunTopologyWorkload(11, 1, 2, std::nullopt);
  ASSERT_EQ(r.site_access.size(), 2u);
  EXPECT_GT(r.site_access[0].remote_trips + r.site_access[0].cache_hits, 0u);
  EXPECT_GT(r.site_access[1].remote_trips + r.site_access[1].cache_hits, 0u);
}

TEST(ParallelEquivalenceTest, MultiSiteThreadsMatchSequentialUnderFaults) {
  FaultConfig faults;
  faults.seed = FaultSeedOr(99);
  faults.transient_rate = 0.25;
  faults.timeout_rate = 0.1;
  faults.outages.push_back(OutageWindow{10, 25});
  for (size_t sites : {size_t{2}, size_t{4}}) {
    for (uint64_t seed : {11u, 47u}) {
      RunResult seq = RunTopologyWorkload(seed, 1, sites, faults);
      for (size_t threads : {size_t{4}, size_t{8}}) {
        RunResult par = RunTopologyWorkload(seed, threads, sites, faults);
        ExpectSameReports(seq, par);
        ExpectSameStats(seq, par);
        ExpectSameDeferred(seq, par);
        ExpectSameSiteState(seq, par);
        EXPECT_EQ(seq.injector_trips, par.injector_trips);
      }
    }
  }
}

TEST(ParallelEquivalenceTest, SingleSiteTopologyIsExactlyLegacy) {
  // --sites=1 must reproduce the pre-topology manager EXACTLY: the same
  // seeded workload through an explicit 1-site topology and through the
  // default constructor diffs clean on every observable, faults included.
  FaultConfig faults;
  faults.seed = FaultSeedOr(99);
  faults.transient_rate = 0.25;
  faults.timeout_rate = 0.1;
  faults.outages.push_back(OutageWindow{10, 25});
  for (uint64_t seed : {11u, 47u}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      RunResult legacy = RunWorkload(seed, threads, faults);
      RunResult one_site = RunTopologyWorkload(seed, threads, 1, faults);
      ExpectSameReports(legacy, one_site);
      ExpectSameStats(legacy, one_site);
      ExpectSameDeferred(legacy, one_site);
      EXPECT_EQ(legacy.injector_trips, one_site.injector_trips);
    }
  }
}

TEST(ParallelEquivalenceTest, NeutralLatencyConfigIsExactlyBaseline) {
  // The latency/hedging layer must be pay-for-what-you-use: a topology
  // that spells out kFixed/0us overrides for every site, wraps all sites
  // in a windowless failure domain, AND arms hedge_after must diff clean
  // against the plain topology run on every observable, at every thread
  // count — healthy and under per-site fault injection alike. (Hedging
  // is structurally inert here: kFixed sites consume no latency draws,
  // so the EWMA stays at the no-observation sentinel and no hedge can
  // ever be issued.)
  FaultConfig faults;
  faults.seed = FaultSeedOr(99);
  faults.transient_rate = 0.25;
  faults.timeout_rate = 0.1;
  faults.outages.push_back(OutageWindow{10, 25});
  for (size_t sites : {size_t{2}, size_t{4}}) {
    for (uint64_t seed : {11u, 47u}) {
      for (size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
        for (const std::optional<FaultConfig>& f :
             {std::optional<FaultConfig>{}, std::optional<FaultConfig>{faults}}) {
          RunResult plain = RunTopologyWorkload(seed, threads, sites, f);
          RunResult neutral = RunTopologyWorkload(
              seed, threads, sites, f, /*neutral_latency=*/true,
              /*hedge_after=*/3);
          ExpectSameReports(plain, neutral);
          ExpectSameStats(plain, neutral);
          ExpectSameDeferred(plain, neutral);
          ExpectSameSiteState(plain, neutral);
          EXPECT_EQ(plain.injector_trips, neutral.injector_trips);
          EXPECT_EQ(neutral.stats.hedges_issued, 0u);
          EXPECT_EQ(neutral.stats.latency_shed, 0u);
        }
      }
    }
  }
}

// ---- Episode pipeline: depth equivalence ---------------------------------
//
// The pipelined scheduler must be invisible in every observable: driving a
// workload through ApplyUpdateAsync/Drain at any depth and thread count
// produces byte-identical reports, ManagerStats, deferred queue, breaker
// state, and final database contents to the serial depth-1 checker on the
// same seed. Speculation, conflict re-runs, and the serial fallback may
// only change manager.pipeline.* accounting — never a verdict.

/// The pipeline books every admitted episode exactly once: it either
/// committed its speculation, re-ran after a conflict, or was admitted
/// unspeculated (serial fallback / non-speculable episode).
void ExpectPipelineAccounting(const RunResult& r, size_t episodes) {
  EXPECT_EQ(r.pipe_admitted, episodes);
  EXPECT_EQ(r.pipe_admitted,
            r.pipe_committed + r.pipe_conflicts + r.pipe_unspeculated);
}

TEST(ParallelEquivalenceTest, PipelinedDepthsMatchSerial) {
  for (uint64_t seed : {11u, 47u}) {
    RunResult serial = RunWorkload(seed, 1, std::nullopt);
    for (size_t depth : {size_t{2}, size_t{8}}) {
      for (size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
        RunResult piped =
            RunWorkload(seed, threads, std::nullopt, true, true, depth);
        ExpectEquivalent(serial, piped);
        ExpectPipelineAccounting(piped, serial.reports.size());
      }
    }
  }
}

TEST(ParallelEquivalenceTest, PipelinedDepthsMatchSerialUnderFaults) {
  // With an injector attached speculation still runs (staged prefetch is
  // disabled, so the failure schedule is consumed only at commit turns,
  // in admission order) — draws, deferred queue, and breaker state must
  // all land exactly where the serial run puts them.
  FaultConfig faults;
  faults.seed = FaultSeedOr(99);
  faults.transient_rate = 0.25;
  faults.timeout_rate = 0.1;
  faults.outages.push_back(OutageWindow{10, 25});
  for (uint64_t seed : {11u, 47u}) {
    RunResult serial = RunWorkload(seed, 1, faults);
    for (size_t depth : {size_t{2}, size_t{8}}) {
      for (size_t threads : {size_t{1}, size_t{4}}) {
        RunResult piped = RunWorkload(seed, threads, faults, true, true, depth);
        ExpectEquivalent(serial, piped);
        EXPECT_EQ(serial.injector_trips, piped.injector_trips);
      }
    }
  }
}

TEST(ParallelEquivalenceTest, PipelinedDepthsMatchSerialWithoutCaches) {
  // Cache-off runs must keep the exact access accounting too: with no
  // remote cache there are no staged fetches to commit, so the pipeline
  // degrades to pure speculative checking plus serialized commits.
  for (uint64_t seed : {11u, 23u}) {
    RunResult serial = RunWorkload(seed, 1, std::nullopt, false, false);
    for (size_t depth : {size_t{2}, size_t{8}}) {
      RunResult piped =
          RunWorkload(seed, 4, std::nullopt, false, false, depth);
      ExpectEquivalent(serial, piped);
    }
  }
}

TEST(ParallelEquivalenceTest, PipelinedSpeculationActuallyCommits) {
  // Non-vacuous: on this workload the pipeline must retire a healthy
  // share of episodes from speculation, or the depth sweep above is just
  // re-testing the serial path with extra steps.
  RunResult piped = RunWorkload(11, 4, std::nullopt, true, true, 8);
  EXPECT_GT(piped.pipe_committed, 0u);
}

/// A pinned worst case for speculation: every update writes the one local
/// predicate every constraint reads, so each in-flight speculation is
/// invalidated by its predecessor's commit. The conflict streak must trip
/// the serial fallback (depth admissions run unspeculated), and the final
/// state must still match the serial run byte-for-byte.
RunResult RunConflictWorkload(size_t depth) {
  ConstraintManager mgr({"l"}, CostModel{}, ResilienceConfig{},
                        ParallelConfig{4}, RemoteCacheConfig{},
                        BudgetConfig{}, TopologyConfig{}, PlanCacheConfig{},
                        PipelineConfig{depth});
  EXPECT_TRUE(
      mgr.AddConstraint("ord", MustParse("panic :- l(X,Y) & X > Y")).ok());
  EXPECT_TRUE(
      mgr.AddConstraint("join", MustParse("panic :- l(X,Y) & r(Y)")).ok());
  EXPECT_TRUE(mgr.site().db().Insert("r", {V(static_cast<int64_t>(99))}).ok());

  std::vector<Update> stream;
  for (int i = 0; i < 40; ++i) {
    stream.push_back(Update::Insert("l", {V(i), V(i + 1)}));
    if (i % 3 == 2) stream.push_back(Update::Delete("l", {V(i), V(i + 1)}));
  }
  RunResult result;
  if (depth > 1) {
    for (const Update& u : stream) mgr.ApplyUpdateAsync(u);
    for (auto& reports : mgr.Drain()) {
      EXPECT_TRUE(reports.ok()) << reports.status().ToString();
      if (reports.ok()) result.reports.push_back(*reports);
    }
    result.pipe_admitted =
        mgr.metrics().GetCounter("manager.pipeline.admitted")->value();
    result.pipe_committed =
        mgr.metrics().GetCounter("manager.pipeline.committed")->value();
    result.pipe_conflicts =
        mgr.metrics().GetCounter("manager.pipeline.conflicts")->value();
    result.pipe_unspeculated =
        mgr.metrics().GetCounter("manager.pipeline.unspeculated")->value();
  } else {
    for (const Update& u : stream) {
      auto reports = mgr.ApplyUpdate(u);
      EXPECT_TRUE(reports.ok()) << reports.status().ToString();
      if (reports.ok()) result.reports.push_back(*reports);
    }
  }
  result.stats = mgr.stats();
  result.deferred.assign(mgr.deferred_queue().begin(),
                         mgr.deferred_queue().end());
  result.breaker_state = mgr.breaker().state();
  result.db_dump = mgr.site().db().ToString();
  return result;
}

TEST(ParallelEquivalenceTest, HighConflictStreamStaysEquivalent) {
  RunResult serial = RunConflictWorkload(1);
  RunResult piped = RunConflictWorkload(4);
  ExpectEquivalent(serial, piped);
  ExpectPipelineAccounting(piped, serial.reports.size());
  // The retry and fallback paths really ran: same-predicate writes
  // invalidated in-flight speculation (conflict re-runs), and the streak
  // tripped the serial-fallback hysteresis (unspeculated admissions).
  EXPECT_GT(piped.pipe_conflicts, 0u);
  EXPECT_GT(piped.pipe_unspeculated, 0u);
}

}  // namespace
}  // namespace ccpi
