#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "eval/engine.h"
#include "eval/stratify.h"
#include "obs/metrics.h"
#include "util/budget.h"

namespace ccpi {
namespace {

Program MustParse(const char* text) {
  auto p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return *p;
}

bool MustViolated(const Program& c, const Database& db) {
  auto v = IsViolated(c, db);
  EXPECT_TRUE(v.ok()) << v.status().ToString();
  return *v;
}

TEST(StratifyTest, NonrecursiveSingleStratum) {
  auto s = Stratify(MustParse("panic :- p(X) & q(X)"));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->strata.size(), 1u);
}

TEST(StratifyTest, NegationSplitsStrata) {
  auto s = Stratify(MustParse(
      "panic :- p(X) & not helper(X)\n"
      "helper(X) :- q(X)\n"));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->stratum_of.at("helper"), 0);
  EXPECT_EQ(s->stratum_of.at("panic"), 1);
}

TEST(StratifyTest, RecursionThroughNegationRejected) {
  auto s = Stratify(MustParse(
      "win(X) :- move(X,Y) & not win(Y)"));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kInvalidArgument);
}

TEST(EvalTest, Example21Violation) {
  Program c = MustParse("panic :- emp(E,sales) & emp(E,accounting)");
  Database db;
  ASSERT_TRUE(db.Insert("emp", {V("ann"), V("sales")}).ok());
  EXPECT_FALSE(MustViolated(c, db));
  ASSERT_TRUE(db.Insert("emp", {V("ann"), V("accounting")}).ok());
  EXPECT_TRUE(MustViolated(c, db));
}

TEST(EvalTest, Example22NegationAndArith) {
  Program c = MustParse("panic :- emp(E,D,S) & not dept(D) & S < 100");
  Database db;
  ASSERT_TRUE(db.Insert("emp", {V("bob"), V("toy"), V(50)}).ok());
  EXPECT_TRUE(MustViolated(c, db));  // toy not in dept, salary 50 < 100
  ASSERT_TRUE(db.Insert("dept", {V("toy")}).ok());
  EXPECT_FALSE(MustViolated(c, db));
  ASSERT_TRUE(db.Insert("emp", {V("carol"), V("shoe"), V(200)}).ok());
  EXPECT_FALSE(MustViolated(c, db));  // 200 >= 100: comparison filters it
}

TEST(EvalTest, Example23SalaryRange) {
  Program c = MustParse(
      "panic :- emp(E,D,S) & salRange(D,Low,High) & S < Low\n"
      "panic :- emp(E,D,S) & salRange(D,Low,High) & S > High\n");
  Database db;
  ASSERT_TRUE(db.Insert("salRange", {V("toy"), V(10), V(100)}).ok());
  ASSERT_TRUE(db.Insert("emp", {V("ann"), V("toy"), V(50)}).ok());
  EXPECT_FALSE(MustViolated(c, db));
  ASSERT_TRUE(db.Insert("emp", {V("bob"), V("toy"), V(5)}).ok());
  EXPECT_TRUE(MustViolated(c, db));
  ASSERT_TRUE(db.Erase("emp", {V("bob"), V("toy"), V(5)}).ok());
  ASSERT_TRUE(db.Insert("emp", {V("cat"), V("toy"), V(500)}).ok());
  EXPECT_TRUE(MustViolated(c, db));
}

TEST(EvalTest, Example24RecursiveBoss) {
  Program c = MustParse(
      "panic :- boss(E,E)\n"
      "boss(E,M) :- emp(E,D,S) & manager(D,M)\n"
      "boss(E,F) :- boss(E,G) & boss(G,F)\n");
  Database db;
  // ann works in toys managed by bob; bob works in shoes managed by ann.
  ASSERT_TRUE(db.Insert("emp", {V("ann"), V("toy"), V(10)}).ok());
  ASSERT_TRUE(db.Insert("emp", {V("bob"), V("shoe"), V(10)}).ok());
  ASSERT_TRUE(db.Insert("manager", {V("toy"), V("bob")}).ok());
  EXPECT_FALSE(MustViolated(c, db));
  ASSERT_TRUE(db.Insert("manager", {V("shoe"), V("ann")}).ok());
  // Now ann is (transitively) her own boss.
  EXPECT_TRUE(MustViolated(c, db));
}

TEST(EvalTest, TransitiveClosure) {
  Program p = MustParse(
      "tc(X,Y) :- edge(X,Y)\n"
      "tc(X,Y) :- tc(X,Z) & edge(Z,Y)\n");
  p.goal = "tc";
  Database db;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db.Insert("edge", {V(i), V(i + 1)}).ok());
  }
  auto rel = EvaluateGoal(p, db);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->size(), 55u);  // 10+9+...+1
  EXPECT_TRUE(rel->Contains({V(0), V(10)}));
}

TEST(EvalTest, EqualityBindsVariable) {
  Program c = MustParse("panic :- p(X) & Y = 5 & q(X,Y)");
  Database db;
  ASSERT_TRUE(db.Insert("p", {V(1)}).ok());
  ASSERT_TRUE(db.Insert("q", {V(1), V(5)}).ok());
  EXPECT_TRUE(MustViolated(c, db));
  ASSERT_TRUE(db.Erase("q", {V(1), V(5)}).ok());
  ASSERT_TRUE(db.Insert("q", {V(1), V(6)}).ok());
  EXPECT_FALSE(MustViolated(c, db));
}

TEST(EvalTest, RepeatedVariableInAtom) {
  Program c = MustParse("panic :- boss(E,E)");
  Database db;
  ASSERT_TRUE(db.Insert("boss", {V("a"), V("b")}).ok());
  EXPECT_FALSE(MustViolated(c, db));
  ASSERT_TRUE(db.Insert("boss", {V("c"), V("c")}).ok());
  EXPECT_TRUE(MustViolated(c, db));
}

TEST(EvalTest, ConstantInAtom) {
  Program c = MustParse("panic :- emp(E,sales) & emp(E,accounting)");
  Database db;
  ASSERT_TRUE(db.Insert("emp", {V("ann"), V("sales")}).ok());
  ASSERT_TRUE(db.Insert("emp", {V("bob"), V("accounting")}).ok());
  EXPECT_FALSE(MustViolated(c, db));
}

TEST(EvalTest, SymbolComparisonInBody) {
  Program c = MustParse("panic :- emp(E,D,S) & not dept(D) & D <> toy");
  Database db;
  ASSERT_TRUE(db.Insert("emp", {V("e"), V("toy"), V(1)}).ok());
  EXPECT_FALSE(MustViolated(c, db));  // D = toy is excluded
  ASSERT_TRUE(db.Insert("emp", {V("e"), V("shoe"), V(1)}).ok());
  EXPECT_TRUE(MustViolated(c, db));
}

TEST(EvalTest, UnsafeProgramRejected) {
  auto v = IsViolated(MustParse("panic :- p(X) & Y < X"), Database());
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST(EvalTest, AccessObserverCountsEdbReads) {
  class Counter : public AccessObserver {
   public:
    Status OnRead(const std::string& pred, size_t count) override {
      reads[pred] += count;
      return Status::OK();
    }
    std::map<std::string, size_t> reads;
  };
  Program c = MustParse("panic :- emp(E,D,S) & not dept(D)");
  Database db;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(db.Insert("emp", {V(i), V(100 + i), V(0)}).ok());
  }
  Counter counter;
  EvalOptions options;
  options.observer = &counter;
  auto v = IsViolated(c, db, options);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(*v);
  EXPECT_EQ(counter.reads["emp"], 5u);
  EXPECT_EQ(counter.reads["dept"], 5u);  // one membership probe per emp row
}

TEST(EvalTest, DerivationLimit) {
  Program p = MustParse(
      "tc(X,Y) :- edge(X,Y)\n"
      "tc(X,Y) :- tc(X,Z) & edge(Z,Y)\n");
  p.goal = "tc";
  Database db;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db.Insert("edge", {V(i), V(i + 1)}).ok());
  }
  EvalOptions options;
  options.max_derived_tuples = 10;
  auto rel = EvaluateGoal(p, db, options);
  ASSERT_FALSE(rel.ok());
  EXPECT_EQ(rel.status().code(), StatusCode::kInternal);
}

TEST(EvalTest, BudgetFixpointRoundCutoffIsExact) {
  Program p = MustParse(
      "tc(X,Y) :- edge(X,Y)\n"
      "tc(X,Y) :- tc(X,Z) & edge(Z,Y)\n");
  p.goal = "tc";
  Database db;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(db.Insert("edge", {V(i), V(i + 1)}).ok());
  }
  // Measure the rounds an unbudgeted evaluation actually takes...
  obs::MetricsRegistry registry;
  EvalOptions counted;
  counted.metrics = &registry;
  ASSERT_TRUE(EvaluateGoal(p, db, counted).ok());
  const uint64_t rounds = registry.GetCounter("eval.fixpoint_rounds")->value();
  ASSERT_GT(rounds, 2u);

  // ...then a cap of exactly that many rounds succeeds with the identical
  // result, and one round fewer fails with kResourceExhausted: the cutoff
  // is exact, not approximate.
  ExecutionBudget enough;
  enough.max_fixpoint_rounds = rounds;
  BudgetScope enough_scope = BudgetScope::Start(enough);
  EvalOptions budgeted;
  budgeted.budget = &enough_scope;
  auto full = EvaluateGoal(p, db, budgeted);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(full->size(), 210u);  // 20+19+...+1

  ExecutionBudget short_one;
  short_one.max_fixpoint_rounds = rounds - 1;
  BudgetScope short_scope = BudgetScope::Start(short_one);
  EvalOptions starved;
  starved.budget = &short_scope;
  auto cut = EvaluateGoal(p, db, starved);
  ASSERT_FALSE(cut.ok());
  EXPECT_EQ(cut.status().code(), StatusCode::kResourceExhausted);
}

TEST(EvalTest, BudgetDerivedTupleCap) {
  Program p = MustParse(
      "tc(X,Y) :- edge(X,Y)\n"
      "tc(X,Y) :- tc(X,Z) & edge(Z,Y)\n");
  p.goal = "tc";
  Database db;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db.Insert("edge", {V(i), V(i + 1)}).ok());
  }
  ExecutionBudget budget;
  budget.max_derived_tuples = 50;
  BudgetScope scope = BudgetScope::Start(budget);
  EvalOptions options;
  options.budget = &scope;
  auto rel = EvaluateGoal(p, db, options);
  ASSERT_FALSE(rel.ok());
  // Budget exhaustion is the manager-sheddable kResourceExhausted, unlike
  // the legacy max_derived_tuples safety valve's kInternal below.
  EXPECT_EQ(rel.status().code(), StatusCode::kResourceExhausted);
}

TEST(EvalTest, CancelledTokenAbortsEvaluation) {
  Program p = MustParse(
      "tc(X,Y) :- edge(X,Y)\n"
      "tc(X,Y) :- tc(X,Z) & edge(Z,Y)\n");
  p.goal = "tc";
  Database db;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db.Insert("edge", {V(i), V(i + 1)}).ok());
  }
  CancellationToken token;
  token.Cancel();  // pre-cancelled: the evaluation must not run to fixpoint
  BudgetScope scope = BudgetScope::Start(ExecutionBudget{}, &token);
  EvalOptions options;
  options.budget = &scope;
  auto rel = EvaluateGoal(p, db, options);
  ASSERT_FALSE(rel.ok());
  EXPECT_EQ(rel.status().code(), StatusCode::kResourceExhausted);
}

TEST(EvalTest, FactsDerive) {
  Program p = MustParse(
      "dept1(D) :- dept(D)\n"
      "dept1(toy)\n");
  p.goal = "dept1";
  Database db;
  ASSERT_TRUE(db.Insert("dept", {V("shoe")}).ok());
  auto rel = EvaluateGoal(p, db);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->size(), 2u);
  EXPECT_TRUE(rel->Contains({V("toy")}));
  EXPECT_TRUE(rel->Contains({V("shoe")}));
}

TEST(EvalTest, MultiStratumWithRecursionBelowNegation) {
  // reach is recursive; the goal negates it — two strata.
  Program p = MustParse(
      "panic :- node(X) & node(Y) & not reach(X,Y)\n"
      "reach(X,X) :- node(X)\n"
      "reach(X,Y) :- reach(X,Z) & edge(Z,Y)\n");
  Database db;
  ASSERT_TRUE(db.Insert("node", {V(1)}).ok());
  ASSERT_TRUE(db.Insert("node", {V(2)}).ok());
  ASSERT_TRUE(db.Insert("edge", {V(1), V(2)}).ok());
  // 2 cannot reach 1: panic.
  EXPECT_TRUE(MustViolated(p, db));
  ASSERT_TRUE(db.Insert("edge", {V(2), V(1)}).ok());
  EXPECT_FALSE(MustViolated(p, db));
}

}  // namespace
}  // namespace ccpi
