#include <gtest/gtest.h>

#include "core/cqc_form.h"
#include "core/local_test.h"
#include "core/ra_local_test.h"
#include "datalog/parser.h"
#include "util/rng.h"

namespace ccpi {
namespace {

Rule MustRule(const char* text) {
  auto r = ParseRule(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

TEST(RaLocalTestTest, Example54NonUnifiableTuple) {
  // C1: panic :- l(X,Y,Y) & r(Y,Z,X); t=(a,b,c) cannot unify with l(X,Y,Y).
  Rule rule = MustRule("panic :- l(X,Y,Y) & r(Y,Z,X)");
  auto test = CompileRaLocalTest(rule, "l", {V("a"), V("b"), V("c")});
  ASSERT_TRUE(test.ok()) << test.status().ToString();
  EXPECT_TRUE(test->trivially_holds);
}

TEST(RaLocalTestTest, Example54MatchingTuple) {
  // s = (a,b,b): the complete local test is whether (a,b,b) is already in
  // L — the expression sigma[#1=a & #2=b & #3=b](l) (the paper notes the
  // pattern equality #2=#3 and the mapped constants).
  Rule rule = MustRule("panic :- l(X,Y,Y) & r(Y,Z,X)");
  auto test = CompileRaLocalTest(rule, "l", {V("a"), V("b"), V("b")});
  ASSERT_TRUE(test.ok());
  ASSERT_FALSE(test->trivially_holds);
  ASSERT_NE(test->expr, nullptr);

  Database db;
  auto empty = RaLocalTestOnInsert(rule, "l", {V("a"), V("b"), V("b")}, db);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(*empty, Outcome::kUnknown);

  ASSERT_TRUE(db.Insert("l", {V("a"), V("b"), V("b")}).ok());
  auto present = RaLocalTestOnInsert(rule, "l", {V("a"), V("b"), V("b")}, db);
  ASSERT_TRUE(present.ok());
  EXPECT_EQ(*present, Outcome::kHolds);

  // A different tuple in L does not help.
  Database db2;
  ASSERT_TRUE(db2.Insert("l", {V("x"), V("b"), V("b")}).ok());
  auto other = RaLocalTestOnInsert(rule, "l", {V("a"), V("b"), V("b")}, db2);
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(*other, Outcome::kUnknown);
}

TEST(RaLocalTestTest, UnconstrainedComponentAllowsAnyValue) {
  // The local component X does not reach the remote subgoal: any L-tuple
  // with matching second component covers the insertion.
  Rule rule = MustRule("panic :- l(X,Y) & r(Y)");
  Database db;
  ASSERT_TRUE(db.Insert("l", {V(1), V(7)}).ok());
  auto covered = RaLocalTestOnInsert(rule, "l", {V(99), V(7)}, db);
  ASSERT_TRUE(covered.ok());
  EXPECT_EQ(*covered, Outcome::kHolds);
  auto uncovered = RaLocalTestOnInsert(rule, "l", {V(99), V(8)}, db);
  ASSERT_TRUE(uncovered.ok());
  EXPECT_EQ(*uncovered, Outcome::kUnknown);
}

TEST(RaLocalTestTest, ConstantInLocalPattern) {
  Rule rule = MustRule("panic :- l(gold,Y) & r(Y)");
  Database db;
  // Tuple not matching the constant can never violate.
  auto silver = RaLocalTestOnInsert(rule, "l", {V("silver"), V(1)}, db);
  ASSERT_TRUE(silver.ok());
  EXPECT_EQ(*silver, Outcome::kHolds);
  // Matching tuple: needs coverage.
  auto gold = RaLocalTestOnInsert(rule, "l", {V("gold"), V(1)}, db);
  ASSERT_TRUE(gold.ok());
  EXPECT_EQ(*gold, Outcome::kUnknown);
  ASSERT_TRUE(db.Insert("l", {V("gold"), V(1)}).ok());
  auto covered = RaLocalTestOnInsert(rule, "l", {V("gold"), V(1)}, db);
  ASSERT_TRUE(covered.ok());
  EXPECT_EQ(*covered, Outcome::kHolds);
}

TEST(RaLocalTestTest, ConstantInRemoteSubgoal) {
  // r's first position is a constant: it does not key on L at all.
  Rule rule = MustRule("panic :- l(X) & r(gold,X)");
  Database db;
  ASSERT_TRUE(db.Insert("l", {V(5)}).ok());
  auto covered = RaLocalTestOnInsert(rule, "l", {V(5)}, db);
  ASSERT_TRUE(covered.ok());
  EXPECT_EQ(*covered, Outcome::kHolds);
  auto uncovered = RaLocalTestOnInsert(rule, "l", {V(6)}, db);
  ASSERT_TRUE(uncovered.ok());
  EXPECT_EQ(*uncovered, Outcome::kUnknown);
}

TEST(RaLocalTestTest, PurelyLocalViolatesOutright) {
  Rule rule = MustRule("panic :- l(X,X)");
  Database db;
  auto hit = CompileRaLocalTest(rule, "l", {V(3), V(3)});
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->trivially_violated);
  auto miss = CompileRaLocalTest(rule, "l", {V(3), V(4)});
  ASSERT_TRUE(miss.ok());
  EXPECT_TRUE(miss->trivially_holds);
}

TEST(RaLocalTestTest, ArithmeticRejected) {
  Rule rule = MustRule("panic :- l(X,Y) & r(Z) & X <= Z");
  auto test = CompileRaLocalTest(rule, "l", {V(1), V(2)});
  ASSERT_FALSE(test.ok());
  EXPECT_EQ(test.status().code(), StatusCode::kInvalidArgument);
}

TEST(RaLocalTestTest, ExpressionIsUnionOfSelectsOverL) {
  Rule rule = MustRule("panic :- l(X,Y) & r(X) & r(Y)");
  auto test = CompileRaLocalTest(rule, "l", {V(1), V(2)});
  ASSERT_TRUE(test.ok());
  ASSERT_NE(test->expr, nullptr);
  std::string rendered = test->expr->ToString();
  EXPECT_NE(rendered.find("sigma["), std::string::npos);
  EXPECT_NE(rendered.find("(l)"), std::string::npos);
}

/// Agreement sweep with the general Theorem 5.2 machinery on arithmetic-
/// free CQCs (shared variables re-expressed through the normalizer): the
/// RA test and the reduction-containment test decide the same relation.
TEST(RaLocalTestTest, AgreesWithTheorem52OnRandomInstances) {
  Rng rng(424242);
  Rule rule = MustRule("panic :- l(X,Y) & r(X,W) & s(W,Y)");
  auto cqc = MakeCqc(rule, "l");
  ASSERT_TRUE(cqc.ok()) << cqc.status().ToString();

  for (int trial = 0; trial < 80; ++trial) {
    Relation local(2);
    Database db;
    size_t n = rng.Below(4);
    for (size_t i = 0; i < n; ++i) {
      Tuple s = {V(rng.Range(0, 2)), V(rng.Range(0, 2))};
      local.Insert(s);
      ASSERT_TRUE(db.Insert("l", s).ok());
    }
    Tuple t = {V(rng.Range(0, 2)), V(rng.Range(0, 2))};

    auto ra = RaLocalTestOnInsert(rule, "l", t, db);
    ASSERT_TRUE(ra.ok()) << ra.status().ToString();
    auto thm52 = CompleteLocalTestOnInsert(*cqc, t, local);
    ASSERT_TRUE(thm52.ok()) << thm52.status().ToString();
    EXPECT_EQ(*ra, thm52->outcome)
        << "t=" << TupleToString(t) << " L:\n"
        << local.ToString("l");
  }
}

}  // namespace
}  // namespace ccpi
