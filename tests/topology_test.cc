// Tests for the N-site topology layer: predicate->site placement, the
// per-site resources of SiteDatabase (injectors, caches, budgets, stats),
// batched concurrent prefetch, and poisoned-entry recovery.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "distsim/fault_injector.h"
#include "distsim/site_db.h"
#include "distsim/topology.h"
#include "util/thread_pool.h"

namespace ccpi {
namespace {

TEST(TopologyTest, SingleSiteMapsEverythingToSiteZero) {
  Topology topology;
  EXPECT_EQ(topology.sites(), 1u);
  EXPECT_EQ(topology.SiteOf("anything"), 0u);
  EXPECT_EQ(topology.SiteOf(""), 0u);
}

TEST(TopologyTest, ExplicitPlacementWinsOverHash) {
  TopologyConfig config;
  config.sites = 3;
  config.placement["orders"] = 2;
  Topology topology(config);
  EXPECT_EQ(topology.SiteOf("orders"), 2u);
  // Unpinned predicates hash into range.
  EXPECT_LT(topology.SiteOf("misc"), 3u);
}

TEST(TopologyTest, HashPlacementIsDeterministicAndStable) {
  TopologyConfig config;
  config.sites = 4;
  Topology a(config);
  Topology b(config);
  for (const char* pred : {"p", "q", "orders", "emp", "assign", "x1"}) {
    EXPECT_EQ(a.SiteOf(pred), b.SiteOf(pred)) << pred;
  }
  // FNV-1a is part of the format: reports and placements must not change
  // across runs or platforms, so pin one known value.
  EXPECT_EQ(Topology::HashPred("orders") % 4, a.SiteOf("orders"));
}

TEST(TopologyTest, HashSpreadsPredicatesAcrossSites) {
  TopologyConfig config;
  config.sites = 4;
  Topology topology(config);
  std::set<size_t> used;
  for (int i = 0; i < 64; ++i) {
    used.insert(topology.SiteOf("pred" + std::to_string(i)));
  }
  EXPECT_EQ(used.size(), 4u);  // 64 draws hit all 4 sites
}

TEST(SiteTopologyTest, PerSiteStatsAttributeTrips) {
  TopologyConfig config;
  config.sites = 2;
  config.placement["a"] = 0;
  config.placement["b"] = 1;
  SiteDatabase site({"l"}, config);
  ASSERT_TRUE(site.db().Insert("a", {V(1)}).ok());
  ASSERT_TRUE(site.db().Insert("b", {V(2)}).ok());
  ASSERT_TRUE(site.ReadRemote("a", 1).ok());
  ASSERT_TRUE(site.ReadRemote("a", 1).ok());
  ASSERT_TRUE(site.ReadRemote("b", 1).ok());
  // Cache off by default (EnableRemoteCache not called): each read is a
  // trip, attributed to its owner site; the aggregate is their sum.
  EXPECT_EQ(site.site_stats(0).remote_trips, 2u);
  EXPECT_EQ(site.site_stats(1).remote_trips, 1u);
  EXPECT_EQ(site.stats().remote_trips, 3u);
}

TEST(SiteTopologyTest, PerSiteInjectorFailsOnlyItsOwnSite) {
  TopologyConfig config;
  config.sites = 2;
  config.placement["a"] = 0;
  config.placement["b"] = 1;
  SiteDatabase site({"l"}, config);
  ASSERT_TRUE(site.db().Insert("a", {V(1)}).ok());
  ASSERT_TRUE(site.db().Insert("b", {V(2)}).ok());
  FaultInjector dark{FaultConfig{}};
  dark.ForceOutage(true);
  site.set_site_fault_injector(1, &dark);
  EXPECT_TRUE(site.ReadRemote("a", 1).ok());   // site 0 healthy
  EXPECT_FALSE(site.ReadRemote("b", 1).ok());  // site 1 dark
  EXPECT_EQ(site.site_stats(0).remote_failures, 0u);
  EXPECT_EQ(site.site_stats(1).remote_failures, 1u);
}

TEST(SiteTopologyTest, LegacySingleSiteAccessorsAliasSiteZero) {
  SiteDatabase site({"l"});
  FaultInjector injector{FaultConfig{}};
  site.set_fault_injector(&injector);
  EXPECT_EQ(site.fault_injector(), &injector);
  EXPECT_EQ(site.site_fault_injector(0), &injector);
  EXPECT_TRUE(site.any_fault_injector());
  site.set_fault_injector(nullptr);
  EXPECT_FALSE(site.any_fault_injector());
}

TEST(SiteTopologyTest, BatchedPrefetchPaysOneTripPerSite) {
  TopologyConfig config;
  config.sites = 2;
  config.placement["a"] = 0;
  config.placement["b"] = 0;
  config.placement["c"] = 1;
  SiteDatabase site({"l"}, config);
  site.EnableRemoteCache(true);
  ASSERT_TRUE(site.db().Insert("a", {V(1)}).ok());
  ASSERT_TRUE(site.db().Insert("b", {V(2)}).ok());
  ASSERT_TRUE(site.db().Insert("c", {V(3)}).ok());
  ThreadPool pool(4);
  site.PrefetchRemoteBatched({"a", "b", "c"}, &pool);
  // Three relations, two sites: site 0's two relations coalesce into one
  // round trip; site 1 pays one.
  EXPECT_EQ(site.site_stats(0).remote_trips, 1u);
  EXPECT_EQ(site.site_stats(1).remote_trips, 1u);
  EXPECT_EQ(site.stats().remote_trips, 2u);
  // Everything is now cached: reads are hits, no further trips.
  ASSERT_TRUE(site.ReadRemote("a", 1).ok());
  ASSERT_TRUE(site.ReadRemote("b", 1).ok());
  ASSERT_TRUE(site.ReadRemote("c", 1).ok());
  EXPECT_EQ(site.stats().remote_trips, 2u);
  EXPECT_EQ(site.stats().cache_hits, 3u);
  // A warm batch refetches nothing.
  site.PrefetchRemoteBatched({"a", "b", "c"}, &pool);
  EXPECT_EQ(site.stats().remote_trips, 2u);
}

TEST(SiteTopologyTest, BatchedPrefetchSequentialAndParallelAgree) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    TopologyConfig config;
    config.sites = 3;
    SiteDatabase site({"l"}, config);
    site.EnableRemoteCache(true);
    std::set<std::string> preds;
    for (int i = 0; i < 9; ++i) {
      std::string pred = "r" + std::to_string(i);
      ASSERT_TRUE(site.db().Insert(pred, {V(i)}).ok());
      preds.insert(pred);
    }
    ThreadPool pool(threads);
    site.PrefetchRemoteBatched(preds, &pool);
    size_t populated_sites = 0;
    for (size_t s = 0; s < site.sites(); ++s) {
      populated_sites += site.site_stats(s).remote_trips > 0 ? 1 : 0;
    }
    // One trip per site that owns at least one predicate, at any width.
    EXPECT_EQ(site.stats().remote_trips, populated_sites);
    EXPECT_EQ(site.stats().remote_tuples, 9u);
  }
}

TEST(SiteTopologyTest, RecoverSiteCacheRevalidatesOnlyPoisonedEntries) {
  TopologyConfig config;
  config.sites = 2;
  config.placement["a"] = 0;
  config.placement["b"] = 0;
  config.placement["cold"] = 0;
  SiteDatabase site({"l"}, config);
  site.EnableRemoteCache(true);
  ASSERT_TRUE(site.db().Insert("a", {V(1)}).ok());
  ASSERT_TRUE(site.db().Insert("b", {V(2)}).ok());
  ASSERT_TRUE(site.db().Insert("cold", {V(3)}).ok());
  // Fill a and b, then poison a via a faulted read during an outage.
  ASSERT_TRUE(site.ReadRemote("a", 1).ok());
  ASSERT_TRUE(site.ReadRemote("b", 1).ok());
  FaultInjector dark{FaultConfig{}};
  dark.ForceOutage(true);
  site.set_site_fault_injector(0, &dark);
  EXPECT_FALSE(site.ReadRemote("a", 1).ok());
  dark.ForceOutage(false);
  size_t trips_before = site.stats().remote_trips;
  size_t revalidated = site.RecoverSiteCache(0, {"a", "b", "cold"});
  // Only the poisoned entry is refetched: b is still a valid snapshot and
  // `cold` was never read (recovery must not grow the cached footprint).
  EXPECT_EQ(revalidated, 1u);
  EXPECT_EQ(site.stats().remote_trips, trips_before + 1);
  ASSERT_TRUE(site.ReadRemote("a", 1).ok());  // served by the cache again
  EXPECT_EQ(site.stats().remote_trips, trips_before + 1);
}

TEST(SiteTopologyTest, ResetStatsClearsPerSiteCounters) {
  TopologyConfig config;
  config.sites = 2;
  config.placement["a"] = 1;
  SiteDatabase site({"l"}, config);
  ASSERT_TRUE(site.db().Insert("a", {V(1)}).ok());
  ASSERT_TRUE(site.ReadRemote("a", 1).ok());
  EXPECT_EQ(site.site_stats(1).remote_trips, 1u);
  site.ResetStats();
  EXPECT_EQ(site.site_stats(1).remote_trips, 0u);
  EXPECT_EQ(site.stats().remote_trips, 0u);
}

}  // namespace
}  // namespace ccpi
