#include <gtest/gtest.h>

#include "core/interval_set.h"
#include "util/rng.h"

namespace ccpi {
namespace {

Interval CC(int lo, int hi) {
  return Interval{Bound::Closed(V(lo)), Bound::Closed(V(hi))};
}
Interval OO(int lo, int hi) {
  return Interval{Bound::Open(V(lo)), Bound::Open(V(hi))};
}
Interval CO(int lo, int hi) {
  return Interval{Bound::Closed(V(lo)), Bound::Open(V(hi))};
}
Interval OC(int lo, int hi) {
  return Interval{Bound::Open(V(lo)), Bound::Closed(V(hi))};
}

TEST(IntervalTest, Emptiness) {
  EXPECT_FALSE(CC(1, 1).Empty());  // [1,1] = {1}
  EXPECT_TRUE(OO(1, 1).Empty());
  EXPECT_TRUE(CO(1, 1).Empty());
  EXPECT_TRUE(CC(2, 1).Empty());
  EXPECT_FALSE(Interval::All().Empty());
  EXPECT_FALSE((Interval{Bound::NegInf(), Bound::Closed(V(0))}).Empty());
  EXPECT_FALSE((Interval{Bound::Open(V(0)), Bound::PosInf()}).Empty());
  EXPECT_TRUE(OC(3, 3).Empty());
}

TEST(IntervalTest, Contains) {
  EXPECT_TRUE(CC(1, 3).Contains(V(1)));
  EXPECT_TRUE(CC(1, 3).Contains(V(3)));
  EXPECT_FALSE(OO(1, 3).Contains(V(1)));
  EXPECT_FALSE(OO(1, 3).Contains(V(3)));
  EXPECT_TRUE(OO(1, 3).Contains(V(2)));
  EXPECT_TRUE(Interval::All().Contains(V(-1000)));
  EXPECT_TRUE(
      (Interval{Bound::NegInf(), Bound::Open(V(5))}).Contains(V(-100)));
  EXPECT_FALSE(
      (Interval{Bound::NegInf(), Bound::Open(V(5))}).Contains(V(5)));
}

TEST(IntervalTest, Covers) {
  EXPECT_TRUE(CC(1, 10).Covers(CC(2, 9)));
  EXPECT_TRUE(CC(1, 10).Covers(CC(1, 10)));
  EXPECT_TRUE(CC(1, 10).Covers(OO(1, 10)));
  EXPECT_FALSE(OO(1, 10).Covers(CC(1, 10)));
  EXPECT_FALSE(CC(1, 10).Covers(CC(0, 5)));
  EXPECT_TRUE(Interval::All().Covers(CC(-100, 100)));
  EXPECT_TRUE(CC(1, 1).Covers(OO(5, 5)));  // anything covers empty
}

TEST(IntervalTest, ConnectsSemantics) {
  // [1,2] and [2,3] connect; [1,2) and [2,3] connect; (1,2) and (2,3)
  // leave 2 uncovered.
  EXPECT_TRUE(Connects(Bound::Closed(V(2)), Bound::Closed(V(2))));
  EXPECT_TRUE(Connects(Bound::Open(V(2)), Bound::Closed(V(2))));
  EXPECT_TRUE(Connects(Bound::Closed(V(2)), Bound::Open(V(2))));
  EXPECT_FALSE(Connects(Bound::Open(V(2)), Bound::Open(V(2))));
  EXPECT_TRUE(Connects(Bound::Closed(V(3)), Bound::Closed(V(2))));
  EXPECT_FALSE(Connects(Bound::Closed(V(2)), Bound::Closed(V(3))));
}

TEST(IntervalSetTest, Example53ForbiddenIntervals) {
  // l = {(3,6), (5,10)}: union [3,10] covers the inserted [4,8].
  IntervalSet set;
  set.Add(CC(3, 6));
  set.Add(CC(5, 10));
  ASSERT_EQ(set.intervals().size(), 1u);
  EXPECT_TRUE(set.Covers(CC(4, 8)));
  EXPECT_FALSE(set.Covers(CC(4, 11)));
  EXPECT_FALSE(set.Covers(CC(2, 8)));
}

TEST(IntervalSetTest, GapStaysSplit) {
  IntervalSet set;
  set.Add(CC(3, 6));
  set.Add(CC(7, 10));
  EXPECT_EQ(set.intervals().size(), 2u);
  EXPECT_FALSE(set.Covers(CC(4, 8)));  // 6.5 uncovered (dense order)
  EXPECT_TRUE(set.Covers(CC(4, 6)));
  EXPECT_TRUE(set.Covers(CC(7, 9)));
}

TEST(IntervalSetTest, TouchingHalfOpenMerges) {
  IntervalSet set;
  set.Add(CO(1, 2));  // [1,2)
  set.Add(CC(2, 3));  // [2,3]
  ASSERT_EQ(set.intervals().size(), 1u);
  EXPECT_TRUE(set.Covers(CC(1, 3)));
}

TEST(IntervalSetTest, TouchingOpenOpenDoesNotMerge) {
  IntervalSet set;
  set.Add(OO(1, 2));
  set.Add(OO(2, 3));
  EXPECT_EQ(set.intervals().size(), 2u);
  EXPECT_FALSE(set.Covers(OO(1, 3)));  // the point 2 is uncovered
  EXPECT_FALSE(set.Contains(V(2)));
}

TEST(IntervalSetTest, BridgingInterval) {
  IntervalSet set;
  set.Add(CC(1, 2));
  set.Add(CC(5, 6));
  EXPECT_EQ(set.intervals().size(), 2u);
  set.Add(CC(2, 5));  // bridges both
  ASSERT_EQ(set.intervals().size(), 1u);
  EXPECT_TRUE(set.Covers(CC(1, 6)));
}

TEST(IntervalSetTest, RaysAndAll) {
  IntervalSet set;
  set.Add(Interval{Bound::NegInf(), Bound::Closed(V(0))});
  set.Add(Interval{Bound::Closed(V(10)), Bound::PosInf()});
  EXPECT_EQ(set.intervals().size(), 2u);
  EXPECT_TRUE(set.Covers(CC(-100, 0)));
  EXPECT_TRUE(set.Covers(CC(10, 1000)));
  EXPECT_FALSE(set.Covers(CC(0, 10)));
  set.Add(CC(0, 10));
  ASSERT_EQ(set.intervals().size(), 1u);
  EXPECT_TRUE(set.Covers(Interval::All()));
}

TEST(IntervalSetTest, EmptyIntervalsIgnored) {
  IntervalSet set;
  set.Add(OO(5, 5));
  set.Add(CC(7, 3));
  EXPECT_TRUE(set.empty());
  EXPECT_TRUE(set.Covers(OO(5, 5)));  // empty target always covered
}

TEST(IntervalSetTest, SymbolValues) {
  IntervalSet set;
  set.Add(Interval{Bound::Closed(V("apple")), Bound::Closed(V("mango"))});
  EXPECT_TRUE(set.Contains(V("banana")));
  EXPECT_FALSE(set.Contains(V("zebra")));
}

/// Randomized cross-check against a dense-point sample oracle: coverage of
/// [a,b] implies every sampled point (integers and midpoints represented by
/// doubled coordinates) in [a,b] is in some interval, and non-coverage
/// implies some sampled point escapes. Using doubled integer coordinates
/// makes midpoints exact.
TEST(IntervalSetTest, RandomizedPointSampleAgreement) {
  Rng rng(555);
  for (int trial = 0; trial < 200; ++trial) {
    IntervalSet set;
    std::vector<Interval> added;
    for (int i = 0; i < 6; ++i) {
      int lo = static_cast<int>(rng.Range(0, 20)) * 2;  // even coordinates
      int hi = lo + static_cast<int>(rng.Range(0, 10)) * 2;
      Interval interval{
          rng.Chance(1, 2) ? Bound::Closed(V(lo)) : Bound::Open(V(lo)),
          rng.Chance(1, 2) ? Bound::Closed(V(hi)) : Bound::Open(V(hi))};
      set.Add(interval);
      added.push_back(interval);
    }
    // Membership agreement on every point (odd = "midpoint" sample).
    for (int p = -1; p <= 42; ++p) {
      bool direct = false;
      for (const Interval& i : added) direct = direct || i.Contains(V(p));
      EXPECT_EQ(set.Contains(V(p)), direct) << "point " << p;
    }
    // Coverage agreement on random targets, checked pointwise.
    for (int q = 0; q < 10; ++q) {
      int lo = static_cast<int>(rng.Range(0, 20)) * 2;
      int hi = lo + static_cast<int>(rng.Range(0, 10)) * 2;
      Interval target{Bound::Closed(V(lo)), Bound::Closed(V(hi))};
      bool covered = set.Covers(target);
      // Sampled refutation: a point in target outside the set.
      bool sampled_gap = false;
      for (int p = lo; p <= hi; ++p) {
        if (!set.Contains(V(p))) sampled_gap = true;
      }
      if (covered) {
        EXPECT_FALSE(sampled_gap) << set.ToString() << " vs "
                                  << target.ToString();
      }
      // (non-coverage may be witnessed off the integer sample, so only the
      // one-sided check is valid — unless a sampled gap exists.)
      if (sampled_gap) {
        EXPECT_FALSE(covered);
      }
    }
  }
}

}  // namespace
}  // namespace ccpi
