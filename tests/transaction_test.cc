#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "manager/constraint_manager.h"

namespace ccpi {
namespace {

Program MustParse(const char* text) {
  auto p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return *p;
}

class TransactionTest : public ::testing::Test {
 protected:
  TransactionTest() : mgr_({"l"}, CostModel{}) {
    EXPECT_TRUE(
        mgr_.AddConstraint("ord", MustParse("panic :- l(X,Y) & X > Y")).ok());
    EXPECT_TRUE(mgr_.AddConstraint(
                        "fi",
                        MustParse("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y"))
                    .ok());
  }
  ConstraintManager mgr_;
};

TEST_F(TransactionTest, CommitsWhenAllPass) {
  auto result = mgr_.ApplyTransaction({
      Update::Insert("l", {V(1), V(2)}),
      Update::Insert("l", {V(3), V(4)}),
      Update::Delete("l", {V(1), V(2)}),
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->committed);
  EXPECT_EQ(result->reports.size(), 3u);
  EXPECT_FALSE(mgr_.site().db().Contains("l", {V(1), V(2)}));
  EXPECT_TRUE(mgr_.site().db().Contains("l", {V(3), V(4)}));
}

TEST_F(TransactionTest, RollsBackEverythingOnViolation) {
  ASSERT_TRUE(mgr_.site().db().Insert("r", {V(50)}).ok());
  auto result = mgr_.ApplyTransaction({
      Update::Insert("l", {V(1), V(2)}),   // fine
      Update::Insert("l", {V(40), V(60)}), // violates fi (50 in range)
      Update::Insert("l", {V(5), V(6)}),   // never reached
  });
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->committed);
  EXPECT_EQ(result->reports.size(), 2u);  // third update not checked
  EXPECT_FALSE(mgr_.site().db().Contains("l", {V(1), V(2)}));
  EXPECT_FALSE(mgr_.site().db().Contains("l", {V(40), V(60)}));
  EXPECT_FALSE(mgr_.site().db().Contains("l", {V(5), V(6)}));
}

TEST_F(TransactionTest, NoopUpdatesRollBackCorrectly) {
  // An insert of an already-present tuple must NOT be deleted by rollback.
  ASSERT_TRUE(mgr_.ApplyUpdate(Update::Insert("l", {V(1), V(2)})).ok());
  auto result = mgr_.ApplyTransaction({
      Update::Insert("l", {V(1), V(2)}),  // no-op
      Update::Insert("l", {V(9), V(3)}),  // violates ord (9 > 3)
  });
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->committed);
  EXPECT_TRUE(mgr_.site().db().Contains("l", {V(1), V(2)}));  // preserved
}

TEST_F(TransactionTest, DeleteThenReinsertRollsBack) {
  ASSERT_TRUE(mgr_.ApplyUpdate(Update::Insert("l", {V(1), V(2)})).ok());
  auto result = mgr_.ApplyTransaction({
      Update::Delete("l", {V(1), V(2)}),
      Update::Insert("l", {V(9), V(3)}),  // violates ord
  });
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->committed);
  EXPECT_TRUE(mgr_.site().db().Contains("l", {V(1), V(2)}));  // restored
}

TEST_F(TransactionTest, EmptyTransactionCommits) {
  auto result = mgr_.ApplyTransaction({});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->committed);
  EXPECT_TRUE(result->reports.empty());
}

}  // namespace
}  // namespace ccpi
