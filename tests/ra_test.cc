#include <gtest/gtest.h>

#include "ra/ra_eval.h"
#include "ra/ra_expr.h"
#include "relational/database.h"

namespace ccpi {
namespace {

Database SampleDb() {
  Database db;
  EXPECT_TRUE(db.Insert("l", {V(3), V(6)}).ok());
  EXPECT_TRUE(db.Insert("l", {V(5), V(10)}).ok());
  EXPECT_TRUE(db.Insert("r", {V(4)}).ok());
  EXPECT_TRUE(db.Insert("r", {V(12)}).ok());
  return db;
}

TEST(RaTest, ScanReadsRelation) {
  Database db = SampleDb();
  auto rel = EvalRa(*RaExpr::Scan("l", 2), db);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->size(), 2u);
}

TEST(RaTest, ScanMissingIsEmpty) {
  Database db;
  auto rel = EvalRa(*RaExpr::Scan("ghost", 3), db);
  ASSERT_TRUE(rel.ok());
  EXPECT_TRUE(rel->empty());
}

TEST(RaTest, SelectColConst) {
  Database db = SampleDb();
  auto expr = RaExpr::Select(
      RaExpr::Scan("l", 2),
      {RaCondition{RaOperand::Col(0), CmpOp::kEq, RaOperand::Const(V(3))}});
  auto rel = EvalRa(*expr, db);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->size(), 1u);
  EXPECT_TRUE(rel->Contains({V(3), V(6)}));
}

TEST(RaTest, SelectColCol) {
  Database db;
  ASSERT_TRUE(db.Insert("p", {V(1), V(1)}).ok());
  ASSERT_TRUE(db.Insert("p", {V(1), V(2)}).ok());
  auto expr = RaExpr::Select(
      RaExpr::Scan("p", 2),
      {RaCondition{RaOperand::Col(0), CmpOp::kEq, RaOperand::Col(1)}});
  auto rel = EvalRa(*expr, db);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->size(), 1u);
}

TEST(RaTest, SelectInequality) {
  Database db = SampleDb();
  auto expr = RaExpr::Select(
      RaExpr::Scan("l", 2),
      {RaCondition{RaOperand::Col(0), CmpOp::kLt, RaOperand::Const(V(5))}});
  auto rel = EvalRa(*expr, db);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->size(), 1u);
}

TEST(RaTest, Project) {
  Database db = SampleDb();
  auto expr = RaExpr::Project(RaExpr::Scan("l", 2), {1});
  auto rel = EvalRa(*expr, db);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->arity(), 1u);
  EXPECT_TRUE(rel->Contains({V(6)}));
  EXPECT_TRUE(rel->Contains({V(10)}));
}

TEST(RaTest, ProductAndUnionAndDifference) {
  Database db = SampleDb();
  auto product = RaExpr::Product(RaExpr::Scan("l", 2), RaExpr::Scan("r", 1));
  auto rel = EvalRa(*product, db);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->size(), 4u);
  EXPECT_EQ(rel->arity(), 3u);

  auto uni = RaExpr::Union(RaExpr::Scan("r", 1),
                           RaExpr::ConstRel(1, {{V(4)}, {V(99)}}));
  auto urel = EvalRa(*uni, db);
  ASSERT_TRUE(urel.ok());
  EXPECT_EQ(urel->size(), 3u);  // 4 deduplicated

  auto diff = RaExpr::Difference(RaExpr::Scan("r", 1),
                                 RaExpr::ConstRel(1, {{V(4)}}));
  auto drel = EvalRa(*diff, db);
  ASSERT_TRUE(drel.ok());
  EXPECT_EQ(drel->size(), 1u);
  EXPECT_TRUE(drel->Contains({V(12)}));
}

TEST(RaTest, NonemptyTest) {
  Database db = SampleDb();
  auto yes = RaNonempty(*RaExpr::Scan("l", 2), db);
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(*yes);
  auto no = RaNonempty(*RaExpr::Empty(2), db);
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(*no);
}

TEST(RaTest, ObserverCountsBaseReads) {
  class Counter : public AccessObserver {
   public:
    Status OnRead(const std::string& pred, size_t count) override {
      total[pred] += count;
      return Status::OK();
    }
    std::map<std::string, size_t> total;
  };
  Database db = SampleDb();
  Counter counter;
  auto expr = RaExpr::Select(
      RaExpr::Scan("l", 2),
      {RaCondition{RaOperand::Col(0), CmpOp::kEq, RaOperand::Const(V(3))}});
  ASSERT_TRUE(EvalRa(*expr, db, &counter).ok());
  EXPECT_EQ(counter.total["l"], 2u);
  EXPECT_EQ(counter.total.count("r"), 0u);
}

TEST(RaTest, ToStringRendering) {
  auto expr = RaExpr::Union(
      RaExpr::Select(RaExpr::Scan("l", 2),
                     {RaCondition{RaOperand::Col(0), CmpOp::kEq,
                                  RaOperand::Const(V("a"))}}),
      RaExpr::Select(RaExpr::Scan("l", 2),
                     {RaCondition{RaOperand::Col(1), CmpOp::kEq,
                                  RaOperand::Col(0)}}));
  EXPECT_EQ(expr->ToString(),
            "(sigma[#1=a](l) U sigma[#2=#1](l))");
}

}  // namespace
}  // namespace ccpi
