// Parameterized property sweeps: each suite re-runs a randomized invariant
// check across seeds (and, where it matters, across a family of constraint
// shapes). These are the repo's substitute for the full proofs deferred to
// Gupta [1994]: every algorithm is cross-validated against an independent
// implementation or a brute-force oracle.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "containment/cqc.h"
#include "containment/exact.h"
#include "containment/klug.h"
#include "core/cqc_form.h"
#include "core/icq_compiler.h"
#include "core/local_test.h"
#include "datalog/parser.h"
#include "eval/engine.h"
#include "updates/rewrite.h"
#include "util/rng.h"

namespace ccpi {
namespace {

Rule MustRule(const std::string& text) {
  auto r = ParseRule(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

// --- Sweep 1: Theorem 5.1 == Klug == exact oracle --------------------------

class Theorem51Agreement : public ::testing::TestWithParam<uint64_t> {};

CQ RandomNormalFormCqc(Rng* rng, int atoms, int comps) {
  CQ q;
  q.head.pred = kPanic;
  int vars = 0;
  for (int i = 0; i < atoms; ++i) {
    q.positives.push_back(
        Atom{"r", {Term::Var("V" + std::to_string(vars++)),
                   Term::Var("V" + std::to_string(vars++))}});
  }
  const CmpOp ops[] = {CmpOp::kLt, CmpOp::kLe, CmpOp::kEq, CmpOp::kNe,
                       CmpOp::kGt, CmpOp::kGe};
  for (int i = 0; i < comps; ++i) {
    Term lhs = Term::Var("V" + std::to_string(rng->Below(
                                   static_cast<uint64_t>(vars))));
    Term rhs = rng->Chance(1, 3)
                   ? Term::Const(Value(rng->Range(0, 3) * 10))
                   : Term::Var("V" + std::to_string(rng->Below(
                                         static_cast<uint64_t>(vars))));
    q.comparisons.push_back(Comparison{lhs, ops[rng->Below(6)], rhs});
  }
  return q;
}

TEST_P(Theorem51Agreement, MatchesKlugAndOracle) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 15; ++trial) {
    CQ c1 = RandomNormalFormCqc(&rng, 2, 3);
    UCQ u2 = {RandomNormalFormCqc(&rng, 1, 2),
              RandomNormalFormCqc(&rng, 1, 2)};
    auto t51 = CqcContainedInUnion(c1, u2);
    ASSERT_TRUE(t51.ok()) << t51.status().ToString();
    auto klug = KlugContainedInUnion(c1, u2);
    ASSERT_TRUE(klug.ok());
    EXPECT_EQ(*t51, *klug) << "C1: " << c1.ToString();
    auto oracle = ExactUcqContained({c1}, u2);
    if (oracle.ok()) {
      EXPECT_EQ(*t51, *oracle) << "C1: " << c1.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem51Agreement,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

// --- Sweep 2: local-test soundness + completeness across CQC shapes --------

using LocalTestParam = std::tuple<const char*, uint64_t>;

class LocalTestSweep : public ::testing::TestWithParam<LocalTestParam> {};

TEST_P(LocalTestSweep, SoundAndComplete) {
  auto [text, seed] = GetParam();
  Rng rng(seed);
  auto cqc = MakeCqc(MustRule(text), "l");
  ASSERT_TRUE(cqc.ok()) << cqc.status().ToString();
  Program constraint;
  constraint.rules.push_back(cqc->ToCQ().ToRule());
  size_t arity = cqc->local_arity();

  for (int trial = 0; trial < 25; ++trial) {
    Relation local(arity);
    size_t n = rng.Below(4);
    for (size_t i = 0; i < n; ++i) {
      Tuple s;
      for (size_t a = 0; a < arity; ++a) s.push_back(V(rng.Range(0, 8)));
      local.Insert(s);
    }
    Tuple t;
    for (size_t a = 0; a < arity; ++a) t.push_back(V(rng.Range(0, 8)));

    auto result = CompleteLocalTestOnInsert(*cqc, t, local);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (result->outcome == Outcome::kUnknown) {
      // Completeness: the witness remote state breaks the constraint after
      // the insert and not before.
      if (!result->witness_remote.has_value()) continue;  // dense-only model
      Database db = *result->witness_remote;
      for (const Tuple& s : local.rows()) {
        ASSERT_TRUE(db.Insert("l", s).ok());
      }
      auto before = IsViolated(constraint, db);
      ASSERT_TRUE(before.ok());
      EXPECT_FALSE(*before) << "witness violates the before-state\n"
                            << db.ToString();
      ASSERT_TRUE(db.Insert("l", t).ok());
      auto after = IsViolated(constraint, db);
      ASSERT_TRUE(after.ok());
      EXPECT_TRUE(*after) << "witness fails to violate after " +
                                 TupleToString(t);
    } else if (result->outcome == Outcome::kHolds) {
      // Soundness on an exhaustive small remote grid.
      for (int64_t z1 = -1; z1 <= 9; ++z1) {
        Database db;
        ASSERT_TRUE(db.Insert("r", {V(z1)}).ok());
        ASSERT_TRUE(db.Insert("r2", {V(z1), V(z1 + 1)}).ok());
        for (const Tuple& s : local.rows()) {
          ASSERT_TRUE(db.Insert("l", s).ok());
        }
        auto before = IsViolated(constraint, db);
        ASSERT_TRUE(before.ok());
        if (*before) continue;  // inconsistent before-state: not a witness
        Database after_db = db;
        ASSERT_TRUE(after_db.Insert("l", t).ok());
        auto after = IsViolated(constraint, after_db);
        ASSERT_TRUE(after.ok());
        EXPECT_FALSE(*after) << "holds-verdict broken at z=" << z1;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConstraintFamilies, LocalTestSweep,
    ::testing::Combine(
        ::testing::Values(
            // Forbidden intervals (Example 5.3).
            "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y",
            // Open bounds and a local filter.
            "panic :- l(X,Y) & r(Z) & X < Z & Z < Y & X < Y",
            // One-sided ray.
            "panic :- l(X,Y) & r(Z) & Y <= Z",
            // Disequality puncture.
            "panic :- l(X,Y) & r(Z) & Z <> X",
            // Two remote subgoals sharing the remote variable by equality.
            "panic :- l(X,Y) & r(Z) & r2(W,W2) & X <= Z & Z <= Y & W = Z",
            // Remote variable compared against two local endpoints plus a
            // second free remote attribute.
            "panic :- l(X,Y) & r2(Z,U) & X <= Z & Z <= Y"),
        ::testing::Values(101u, 202u)));

// --- Sweep 3: the three Fig 6.1 implementations agree -----------------------

using IcqParam = std::tuple<const char*, uint64_t>;
class IcqAgreement : public ::testing::TestWithParam<IcqParam> {};

TEST_P(IcqAgreement, DatalogDirectTheorem52) {
  auto [text, seed] = GetParam();
  Rng rng(seed);
  Rule rule = MustRule(text);
  auto comp = CompileIcq(rule, "l");
  ASSERT_TRUE(comp.ok()) << comp.status().ToString();
  auto cqc = MakeCqc(rule, "l");
  ASSERT_TRUE(cqc.ok());
  size_t arity = comp->local_arity;

  for (int trial = 0; trial < 20; ++trial) {
    Database db;
    Relation local(arity);
    size_t n = rng.Below(4);
    for (size_t i = 0; i < n; ++i) {
      Tuple s;
      for (size_t a = 0; a < arity; ++a) s.push_back(V(rng.Range(0, 6)));
      local.Insert(s);
      ASSERT_TRUE(db.Insert("l", s).ok());
    }
    Tuple t;
    for (size_t a = 0; a < arity; ++a) t.push_back(V(rng.Range(0, 6)));

    auto datalog = IcqLocalTestOnInsert(*comp, db, t);
    auto direct = IcqDirectTestOnInsert(*comp, local, t);
    auto thm52 = CompleteLocalTestOnInsert(*cqc, t, local);
    ASSERT_TRUE(datalog.ok()) << datalog.status().ToString();
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(thm52.ok());
    EXPECT_EQ(*datalog, *direct)
        << text << "\nt=" << TupleToString(t) << "\n" << local.ToString("l");
    EXPECT_EQ(*direct, thm52->outcome)
        << text << "\nt=" << TupleToString(t) << "\n" << local.ToString("l");
  }
}

INSTANTIATE_TEST_SUITE_P(
    IcqFamilies, IcqAgreement,
    ::testing::Combine(
        ::testing::Values(
            "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y",
            "panic :- l(X,Y) & r(Z) & X < Z & Z < Y",
            "panic :- l(X,Y) & r(Z) & X <= Z",
            "panic :- l(X,Y) & r(Z) & Z <> X & X <= Z & Z <= Y",
            "panic :- l(K,X) & r(K,Z) & X <= Z",
            "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y & X < Y"),
        ::testing::Values(7u, 77u)));

// --- Sweep 4: rewrite semantics across update kinds and encodings ----------

class RewriteSemantics : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RewriteSemantics, BeforeEqualsAfter) {
  Rng rng(GetParam());
  auto constraint = ParseProgram(
      "panic :- p(X,Y) & q(Y,Z) & not s(X,Z) & X < Z\n"
      "panic :- q(X,X)\n");
  ASSERT_TRUE(constraint.ok());
  for (int trial = 0; trial < 15; ++trial) {
    Database db;
    for (int i = 0; i < 6; ++i) {
      const char* preds[] = {"p", "q", "s"};
      ASSERT_TRUE(db.Insert(preds[rng.Below(3)],
                            {V(rng.Range(0, 3)), V(rng.Range(0, 3))})
                      .ok());
    }
    Tuple t = {V(rng.Range(0, 3)), V(rng.Range(0, 3))};
    const char* preds[] = {"p", "q", "s"};
    std::string pred = preds[rng.Below(3)];
    Update u = rng.Chance(1, 2) ? Update::Insert(pred, t)
                                : Update::Delete(pred, t);
    auto rewritten = RewriteAfterUpdate(*constraint, u);
    ASSERT_TRUE(rewritten.ok());
    Database after = db;
    ASSERT_TRUE(u.ApplyTo(&after).ok());
    auto lhs = IsViolated(*rewritten, db);
    auto rhs = IsViolated(*constraint, after);
    ASSERT_TRUE(lhs.ok() && rhs.ok());
    EXPECT_EQ(*lhs, *rhs) << u.ToString() << "\n" << db.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewriteSemantics,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// --- Sweep 5: evaluation ablations agree ------------------------------------

class EvalAblation : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EvalAblation, NaiveIndexlessSeminaiveAgree) {
  Rng rng(GetParam());
  auto program = ParseProgram(
      "panic :- reach(X,Y) & not e(X,Y) & X < Y\n"
      "reach(X,Y) :- e(X,Y)\n"
      "reach(X,Y) :- reach(X,Z) & e(Z,Y)\n");
  ASSERT_TRUE(program.ok());
  for (int trial = 0; trial < 10; ++trial) {
    Database db;
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          db.Insert("e", {V(rng.Range(0, 5)), V(rng.Range(0, 5))}).ok());
    }
    EvalOptions seminaive;
    EvalOptions naive;
    naive.use_seminaive = false;
    EvalOptions noindex;
    noindex.use_index = false;
    auto a = IsViolated(*program, db, seminaive);
    auto b = IsViolated(*program, db, naive);
    auto c = IsViolated(*program, db, noindex);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    EXPECT_EQ(*a, *b);
    EXPECT_EQ(*a, *c);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvalAblation,
                         ::testing::Values(10u, 20u, 30u, 40u));

}  // namespace
}  // namespace ccpi
