#include <gtest/gtest.h>

#include "datalog/language_class.h"
#include "datalog/parser.h"

namespace ccpi {
namespace {

Program MustParse(const char* text) {
  auto p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return *p;
}

TEST(LanguageClassTest, TwelveClasses) {
  // Fig 2.1: 3 shapes x negation x arithmetic.
  EXPECT_EQ(AllLanguageClasses().size(), 12u);
}

TEST(LanguageClassTest, Example21IsPlainCQ) {
  LanguageClass c = SyntacticClass(
      MustParse("panic :- emp(E,sales) & emp(E,accounting)"));
  EXPECT_EQ(c, (LanguageClass{Shape::kSingleCQ, false, false}));
  EXPECT_EQ(c.ToString(), "CQ");
}

TEST(LanguageClassTest, Example22IsCQNegArith) {
  LanguageClass c = SyntacticClass(
      MustParse("panic :- emp(E,D,S) & not dept(D) & S < 100"));
  EXPECT_EQ(c, (LanguageClass{Shape::kSingleCQ, true, true}));
  EXPECT_EQ(c.ToString(), "CQ+neg+arith");
}

TEST(LanguageClassTest, Example23IsUnionArith) {
  LanguageClass c = SyntacticClass(MustParse(
      "panic :- emp(E,D,S) & salRange(D,Low,High) & S < Low\n"
      "panic :- emp(E,D,S) & salRange(D,Low,High) & S > High\n"));
  EXPECT_EQ(c, (LanguageClass{Shape::kUnionCQ, false, true}));
}

TEST(LanguageClassTest, Example24IsRecursive) {
  LanguageClass c = SyntacticClass(MustParse(
      "panic :- boss(E,E)\n"
      "boss(E,M) :- emp(E,D,S) & manager(D,M)\n"
      "boss(E,F) :- boss(E,G) & boss(G,F)\n"));
  EXPECT_EQ(c.shape, Shape::kRecursive);
}

TEST(LanguageClassTest, LatticeOrder) {
  LanguageClass cq{Shape::kSingleCQ, false, false};
  LanguageClass ucq_neg{Shape::kUnionCQ, true, false};
  LanguageClass rec_all{Shape::kRecursive, true, true};
  EXPECT_TRUE(LanguageClassLeq(cq, cq));
  EXPECT_TRUE(LanguageClassLeq(cq, ucq_neg));
  EXPECT_TRUE(LanguageClassLeq(ucq_neg, rec_all));
  EXPECT_FALSE(LanguageClassLeq(ucq_neg, cq));
  EXPECT_FALSE(LanguageClassLeq(rec_all, ucq_neg));
  // Incomparable: CQ+arith vs UCQ (arith not available).
  EXPECT_FALSE(LanguageClassLeq((LanguageClass{Shape::kSingleCQ, false, true}),
                                (LanguageClass{Shape::kUnionCQ, false, false})));
}

TEST(LanguageClassTest, ExpressibleCollapsesSingleDisjunctHelper) {
  // A helper predicate that unfolds away: syntactically UCQ-shaped,
  // expressible as a single CQ.
  Program p = MustParse(
      "panic :- big(X)\n"
      "big(X) :- p(X) & X > 100\n");
  EXPECT_EQ(SyntacticClass(p).shape, Shape::kUnionCQ);
  LanguageClass c = ExpressibleClass(p);
  EXPECT_EQ(c.shape, Shape::kSingleCQ);
  EXPECT_TRUE(c.arithmetic);
}

TEST(LanguageClassTest, ExpressibleKeepsRealUnion) {
  LanguageClass c = ExpressibleClass(MustParse(
      "panic :- p(X)\n"
      "panic :- q(X)\n"));
  EXPECT_EQ(c.shape, Shape::kUnionCQ);
}

TEST(LanguageClassTest, ExpressibleDropsVacuousArithmetic) {
  // The helper's comparison disappears when the branch through it is dead.
  Program p = MustParse(
      "panic :- p(X) & not always\n"
      "always\n");
  LanguageClass c = ExpressibleClass(p);
  // Unfolds to the empty union: trivially arithmetic- and negation-free.
  EXPECT_FALSE(c.negation);
  EXPECT_FALSE(c.arithmetic);
}

TEST(LanguageClassTest, AllClassesDistinctStrings) {
  std::set<std::string> names;
  for (const LanguageClass& c : AllLanguageClasses()) {
    names.insert(c.ToString());
  }
  EXPECT_EQ(names.size(), 12u);
}

}  // namespace
}  // namespace ccpi
