#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "datalog/simplify.h"

namespace ccpi {
namespace {

CQ MustCQ(const char* text) {
  auto rule = ParseRule(text);
  EXPECT_TRUE(rule.ok()) << rule.status().ToString();
  return RuleToCQ(*rule);
}

TEST(SimplifyTest, SubstitutesEqualityToConstant) {
  auto s = SimplifyCQ(MustCQ("panic :- p(X,Y) & X = 5"));
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(s->comparisons.empty());
  EXPECT_EQ(s->positives[0].args[0].constant(), V(5));
}

TEST(SimplifyTest, SubstitutesVariableEquality) {
  auto s = SimplifyCQ(MustCQ("panic :- p(X) & q(Y) & X = Y"));
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(s->comparisons.empty());
  EXPECT_EQ(s->positives[0].args[0], s->positives[1].args[0]);
}

TEST(SimplifyTest, EvaluatesGroundComparisons) {
  auto live = SimplifyCQ(MustCQ("panic :- p(X) & 3 < 5"));
  ASSERT_TRUE(live.has_value());
  EXPECT_TRUE(live->comparisons.empty());
  auto dead = SimplifyCQ(MustCQ("panic :- p(X) & 5 < 3"));
  EXPECT_FALSE(dead.has_value());
}

TEST(SimplifyTest, ChainOfEqualitiesToContradiction) {
  auto dead = SimplifyCQ(MustCQ("panic :- p(X,Y) & X = 1 & Y = X & Y = 2"));
  EXPECT_FALSE(dead.has_value());
}

TEST(SimplifyTest, ReflexiveComparisons) {
  auto live = SimplifyCQ(MustCQ("panic :- p(X) & X <= X"));
  ASSERT_TRUE(live.has_value());
  EXPECT_TRUE(live->comparisons.empty());
  EXPECT_FALSE(SimplifyCQ(MustCQ("panic :- p(X) & X < X")).has_value());
  EXPECT_FALSE(SimplifyCQ(MustCQ("panic :- p(X) & X <> X")).has_value());
}

TEST(SimplifyTest, HeadVariablesPreserved) {
  auto rule = ParseRule("v(E) :- emp(E,D) & E = a");
  ASSERT_TRUE(rule.ok());
  auto s = SimplifyCQ(RuleToCQ(*rule));
  ASSERT_TRUE(s.has_value());
  // E is in the head: the equality must remain, E untouched.
  EXPECT_EQ(s->comparisons.size(), 1u);
  EXPECT_TRUE(s->head.args[0].is_var());
}

TEST(SimplifyTest, KeepsGenuineOrderComparisons) {
  auto s = SimplifyCQ(MustCQ("panic :- p(X,Y) & X < Y & X = 3"));
  ASSERT_TRUE(s.has_value());
  ASSERT_EQ(s->comparisons.size(), 1u);
  EXPECT_EQ(s->comparisons[0].lhs.constant(), V(3));
  EXPECT_EQ(s->comparisons[0].op, CmpOp::kLt);
}

}  // namespace
}  // namespace ccpi
