#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "datalog/unfold.h"

namespace ccpi {
namespace {

Program MustParse(const char* text) {
  auto p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return *p;
}

TEST(UnfoldTest, SingleRuleIsItself) {
  auto ucq = UnfoldToUCQ(MustParse("panic :- p(X) & q(X,Y)"));
  ASSERT_TRUE(ucq.ok());
  ASSERT_EQ(ucq->size(), 1u);
  EXPECT_EQ((*ucq)[0].positives.size(), 2u);
}

TEST(UnfoldTest, TwoGoalRulesMakeAUnion) {
  auto ucq = UnfoldToUCQ(MustParse(
      "panic :- p(X)\n"
      "panic :- q(X)\n"));
  ASSERT_TRUE(ucq.ok());
  EXPECT_EQ(ucq->size(), 2u);
}

TEST(UnfoldTest, PositiveIdbSubstitution) {
  auto ucq = UnfoldToUCQ(MustParse(
      "panic :- big(X)\n"
      "big(X) :- p(X) & X > 100\n"));
  ASSERT_TRUE(ucq.ok());
  ASSERT_EQ(ucq->size(), 1u);
  const CQ& q = (*ucq)[0];
  ASSERT_EQ(q.positives.size(), 1u);
  EXPECT_EQ(q.positives[0].pred, "p");
  ASSERT_EQ(q.comparisons.size(), 1u);
  EXPECT_EQ(q.comparisons[0].op, CmpOp::kGt);
}

TEST(UnfoldTest, PositiveIdbFanOut) {
  // dept1 is dept plus the toy fact — the Example 4.1 insertion helper.
  auto ucq = UnfoldToUCQ(MustParse(
      "panic :- emp(E,D,S) & dept1(D)\n"
      "dept1(D) :- dept(D)\n"
      "dept1(toy)\n"));
  ASSERT_TRUE(ucq.ok());
  // One disjunct through dept, one through the fact.
  ASSERT_EQ(ucq->size(), 2u);
}

TEST(UnfoldTest, NegatedIdbBecomesConjunction) {
  // Example 4.1: not dept1(D) where dept1(D) :- dept(D); dept1(toy)
  // unfolds to  not dept(D) & D <> toy.
  auto ucq = UnfoldToUCQ(MustParse(
      "panic :- emp(E,D,S) & not dept1(D)\n"
      "dept1(D) :- dept(D)\n"
      "dept1(toy)\n"));
  ASSERT_TRUE(ucq.ok()) << ucq.status().ToString();
  ASSERT_EQ(ucq->size(), 1u);
  const CQ& q = (*ucq)[0];
  ASSERT_EQ(q.negatives.size(), 1u);
  EXPECT_EQ(q.negatives[0].pred, "dept");
  ASSERT_EQ(q.comparisons.size(), 1u);
  EXPECT_EQ(q.comparisons[0].op, CmpOp::kNe);
  EXPECT_EQ(q.comparisons[0].rhs.constant(), V("toy"));
}

TEST(UnfoldTest, NegatedIdbWithMultiLiteralRulesCrosses) {
  // emp1 reflecting a deletion (Example 4.2): each defining rule has two
  // literals, so not emp1(...) expands into the cross product of negated
  // choices.
  auto ucq = UnfoldToUCQ(MustParse(
      "panic :- all(E,D,S) & not emp1(E,D,S)\n"
      "emp1(E,D,S) :- emp(E,D,S) & E <> jones\n"
      "emp1(E,D,S) :- emp(E,D,S) & D <> shoe\n"));
  ASSERT_TRUE(ucq.ok()) << ucq.status().ToString();
  // (not emp | E=jones) x (not emp | D=shoe) = 4 disjuncts.
  EXPECT_EQ(ucq->size(), 4u);
}

TEST(UnfoldTest, NegatedIdbWithExistentialUnsupported) {
  auto ucq = UnfoldToUCQ(MustParse(
      "panic :- p(X) & not hasq(X)\n"
      "hasq(X) :- q(X,Y)\n"));
  ASSERT_FALSE(ucq.ok());
  EXPECT_EQ(ucq.status().code(), StatusCode::kUnsupported);
}

TEST(UnfoldTest, RecursiveRejected) {
  auto ucq = UnfoldToUCQ(MustParse(
      "panic :- t(X,X)\n"
      "t(X,Y) :- e(X,Y)\n"
      "t(X,Y) :- t(X,Z) & e(Z,Y)\n"));
  ASSERT_FALSE(ucq.ok());
  EXPECT_EQ(ucq.status().code(), StatusCode::kInvalidArgument);
}

TEST(UnfoldTest, ConstantHeadUnification) {
  // Unfolding through a head with a constant adds the equality.
  auto ucq = UnfoldToUCQ(MustParse(
      "panic :- q(X) & special(X)\n"
      "special(gold) :- marker\n"));
  ASSERT_TRUE(ucq.ok()) << ucq.status().ToString();
  ASSERT_EQ(ucq->size(), 1u);
  const CQ& q = (*ucq)[0];
  ASSERT_EQ(q.comparisons.size(), 1u);
  EXPECT_EQ(q.comparisons[0].op, CmpOp::kEq);
}

TEST(UnfoldTest, NestedUnfolding) {
  auto ucq = UnfoldToUCQ(MustParse(
      "panic :- a(X)\n"
      "a(X) :- b(X)\n"
      "b(X) :- base(X) & X < 5\n"));
  ASSERT_TRUE(ucq.ok());
  ASSERT_EQ(ucq->size(), 1u);
  EXPECT_EQ((*ucq)[0].positives[0].pred, "base");
}

TEST(UnfoldTest, DeadBranchFromAlwaysTrueFact) {
  // not always(X) where always matches unconditionally kills the branch.
  auto ucq = UnfoldToUCQ(MustParse(
      "panic :- p(X) & not always\n"
      "always\n"));
  ASSERT_TRUE(ucq.ok());
  EXPECT_TRUE(ucq->empty());
}

}  // namespace
}  // namespace ccpi
