#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "datalog/safety.h"

namespace ccpi {
namespace {

Rule MustParse(const char* text) {
  auto rule = ParseRule(text);
  EXPECT_TRUE(rule.ok()) << rule.status().ToString();
  return *rule;
}

TEST(SafetyTest, SafeRulePasses) {
  EXPECT_TRUE(
      CheckRuleSafety(MustParse("panic :- emp(E,D,S) & not dept(D) & S < 100"))
          .ok());
}

TEST(SafetyTest, HeadVariableMustBeBound) {
  Status st = CheckRuleSafety(MustParse("boss(E,M) :- emp(E,D,S)"));
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(SafetyTest, NegatedVariableMustBeBound) {
  Status st = CheckRuleSafety(MustParse("panic :- p(X) & not q(Y)"));
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(SafetyTest, ComparisonVariableMustBeBound) {
  Status st = CheckRuleSafety(MustParse("panic :- p(X) & Y < 10"));
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(SafetyTest, EqualityToConstantGrounds) {
  // X = 5 grounds X even though X is in no positive subgoal.
  EXPECT_TRUE(
      CheckRuleSafety(MustParse("panic :- p(Y) & X = 5 & not q(X)")).ok());
}

TEST(SafetyTest, EqualityChainGrounds) {
  EXPECT_TRUE(
      CheckRuleSafety(MustParse("panic :- p(A) & B = A & C = B & not q(C)"))
          .ok());
}

TEST(SafetyTest, InequalityDoesNotGround) {
  Status st = CheckRuleSafety(MustParse("panic :- p(A) & B < A & not q(B)"));
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(SafetyTest, FactIsSafe) {
  EXPECT_TRUE(CheckRuleSafety(MustParse("dept1(toy)")).ok());
}

TEST(SafetyTest, FactWithVariableIsUnsafe) {
  Status st = CheckRuleSafety(MustParse("dept1(X)"));
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(SafetyTest, ProgramSafetyChecksEveryRule) {
  auto program = ParseProgram(
      "panic :- p(X)\n"
      "panic :- q(Y) & Z < Y\n");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(CheckProgramSafety(*program).ok());
}

}  // namespace
}  // namespace ccpi
