#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "manager/active_rules.h"
#include "manager/constraint_manager.h"
#include "manager/view_maint.h"

namespace ccpi {
namespace {

Program MustParse(const char* text) {
  auto p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return *p;
}

Tier TierOf(const std::vector<CheckReport>& reports,
            const std::string& name) {
  for (const CheckReport& r : reports) {
    if (r.constraint == name) return r.tier;
  }
  ADD_FAILURE() << "no report for " << name;
  return Tier::kFullCheck;
}

Outcome OutcomeOf(const std::vector<CheckReport>& reports,
                  const std::string& name) {
  for (const CheckReport& r : reports) {
    if (r.constraint == name) return r.outcome;
  }
  ADD_FAILURE() << "no report for " << name;
  return Outcome::kUnknown;
}

TEST(ManagerTest, SubsumedConstraintDropped) {
  ConstraintManager mgr({"l"}, CostModel{});
  auto first = mgr.AddConstraint("strong", MustParse("panic :- p(X)"));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(*first);
  auto second =
      mgr.AddConstraint("weak", MustParse("panic :- p(X) & q(X)"));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(*second);  // subsumed at registration

  auto reports = mgr.ApplyUpdate(Update::Insert("q", {V(1)}));
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(TierOf(*reports, "weak"), Tier::kSubsumed);
}

TEST(ManagerTest, UnaffectedTier) {
  ConstraintManager mgr({"l"}, CostModel{});
  ASSERT_TRUE(mgr.AddConstraint("c", MustParse("panic :- p(X) & q(X)")).ok());
  auto reports = mgr.ApplyUpdate(Update::Insert("other", {V(1)}));
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(TierOf(*reports, "c"), Tier::kUnaffected);
  EXPECT_EQ(OutcomeOf(*reports, "c"), Outcome::kHolds);
}

TEST(ManagerTest, IndependenceTierOnSafeInsert) {
  ConstraintManager mgr({"emp"}, CostModel{});
  ASSERT_TRUE(
      mgr.AddConstraint("cap", MustParse("panic :- emp(E,D,S) & S > 100"))
          .ok());
  auto reports =
      mgr.ApplyUpdate(Update::Insert("emp", {V("a"), V("d"), V(50)}));
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(TierOf(*reports, "cap"), Tier::kIndependence);
  EXPECT_EQ(OutcomeOf(*reports, "cap"), Outcome::kHolds);
}

TEST(ManagerTest, LocalTestTierForForbiddenIntervals) {
  ConstraintManager mgr({"l"}, CostModel{});
  ASSERT_TRUE(mgr.AddConstraint(
                     "fi",
                     MustParse("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y"))
                  .ok());
  // Seed L (each insert is itself checked; the first ones go to full
  // evaluation since nothing covers them and remote r is empty).
  ASSERT_TRUE(mgr.ApplyUpdate(Update::Insert("l", {V(3), V(6)})).ok());
  ASSERT_TRUE(mgr.ApplyUpdate(Update::Insert("l", {V(5), V(10)})).ok());
  // (4,8) is covered by local data alone: resolved at the local tier.
  auto reports = mgr.ApplyUpdate(Update::Insert("l", {V(4), V(8)}));
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(TierOf(*reports, "fi"), Tier::kLocalTest);
  EXPECT_EQ(OutcomeOf(*reports, "fi"), Outcome::kHolds);
  EXPECT_TRUE(mgr.site().db().Contains("l", {V(4), V(8)}));
}

TEST(ManagerTest, FullCheckDetectsAndRejectsViolation) {
  ConstraintManager mgr({"l"}, CostModel{});
  ASSERT_TRUE(mgr.AddConstraint(
                     "fi",
                     MustParse("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y"))
                  .ok());
  // Remote relation r lives on the other site; populate it directly.
  ASSERT_TRUE(mgr.site().db().Insert("r", {V(7)}).ok());
  // Inserting (5,10) forbids 7, which exists remotely: violation.
  auto reports = mgr.ApplyUpdate(Update::Insert("l", {V(5), V(10)}));
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(TierOf(*reports, "fi"), Tier::kFullCheck);
  EXPECT_EQ(OutcomeOf(*reports, "fi"), Outcome::kViolated);
  // The update was rejected.
  EXPECT_FALSE(mgr.site().db().Contains("l", {V(5), V(10)}));
  EXPECT_EQ(mgr.stats().violations, 1u);
}

TEST(ManagerTest, LocalOnlyConstraintViolatedAtLocalTier) {
  ConstraintManager mgr({"l"}, CostModel{});
  ASSERT_TRUE(
      mgr.AddConstraint("ord", MustParse("panic :- l(X,Y) & X > Y")).ok());
  auto ok = mgr.ApplyUpdate(Update::Insert("l", {V(1), V(2)}));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(OutcomeOf(*ok, "ord"), Outcome::kHolds);
  auto bad = mgr.ApplyUpdate(Update::Insert("l", {V(5), V(2)}));
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(OutcomeOf(*bad, "ord"), Outcome::kViolated);
  EXPECT_EQ(TierOf(*bad, "ord"), Tier::kLocalTest);
  EXPECT_FALSE(mgr.site().db().Contains("l", {V(5), V(2)}));
}

TEST(ManagerTest, NoopUpdateResolvesTrivially) {
  ConstraintManager mgr({"l"}, CostModel{});
  ASSERT_TRUE(
      mgr.AddConstraint("c", MustParse("panic :- l(X) & r(X)")).ok());
  ASSERT_TRUE(mgr.ApplyUpdate(Update::Delete("l", {V(1)})).ok());  // absent
  auto reports = mgr.ApplyUpdate(Update::Delete("l", {V(1)}));
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(TierOf(*reports, "c"), Tier::kUnaffected);
}

TEST(ManagerTest, DeletionOfMonotoneConstraintIndependent) {
  ConstraintManager mgr({"l"}, CostModel{});
  ASSERT_TRUE(
      mgr.AddConstraint("c", MustParse("panic :- l(X) & r(X)")).ok());
  ASSERT_TRUE(mgr.site().db().Insert("l", {V(1)}).ok());
  auto reports = mgr.ApplyUpdate(Update::Delete("l", {V(1)}));
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(TierOf(*reports, "c"), Tier::kIndependence);
  EXPECT_FALSE(mgr.site().db().Contains("l", {V(1)}));
}

TEST(ManagerTest, AccessAccountingSeparatesSites) {
  ConstraintManager mgr({"l"}, CostModel{});
  ASSERT_TRUE(mgr.AddConstraint(
                     "fi",
                     MustParse("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y"))
                  .ok());
  ASSERT_TRUE(mgr.ApplyUpdate(Update::Insert("l", {V(0), V(10)})).ok());
  AccessStats after_seed = mgr.stats().access;
  // A covered insert resolves locally: remote counters must not move.
  ASSERT_TRUE(mgr.ApplyUpdate(Update::Insert("l", {V(2), V(8)})).ok());
  EXPECT_EQ(mgr.stats().access.remote_tuples, after_seed.remote_tuples);
  EXPECT_EQ(mgr.stats().access.remote_trips, after_seed.remote_trips);
  EXPECT_GT(mgr.stats().access.local_tuples, after_seed.local_tuples);
}

// --- Episode pipeline scheduler --------------------------------------------

/// A depth-4 pipelined manager over one local and one remote predicate.
ConstraintManager MakePipelinedManager(size_t depth) {
  return ConstraintManager({"l"}, CostModel{}, ResilienceConfig{},
                           ParallelConfig{2}, RemoteCacheConfig{},
                           BudgetConfig{}, TopologyConfig{},
                           PlanCacheConfig{}, PipelineConfig{depth});
}

TEST(ManagerTest, AsyncDrainMatchesApplyUpdate) {
  std::vector<Update> stream = {
      Update::Insert("l", {V(1), V(2)}),
      Update::Insert("r", {V(2)}),
      Update::Insert("l", {V(5), V(3)}),  // violates ord
      Update::Insert("l", {V(4), V(2)}),  // joins with remote r(2)
  };
  auto setup = [](ConstraintManager* mgr) {
    ASSERT_TRUE(
        mgr->AddConstraint("ord", MustParse("panic :- l(X,Y) & X > Y")).ok());
    ASSERT_TRUE(
        mgr->AddConstraint("join", MustParse("panic :- l(X,Y) & r(Y)")).ok());
  };
  ConstraintManager serial = MakePipelinedManager(1);
  setup(&serial);
  std::vector<std::vector<CheckReport>> expected;
  for (const Update& u : stream) {
    auto reports = serial.ApplyUpdate(u);
    ASSERT_TRUE(reports.ok());
    expected.push_back(*reports);
  }

  ConstraintManager piped = MakePipelinedManager(4);
  setup(&piped);
  for (const Update& u : stream) piped.ApplyUpdateAsync(u);
  auto results = piped.Drain();
  ASSERT_EQ(results.size(), expected.size());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
    ASSERT_EQ(results[i]->size(), expected[i].size()) << "update " << i;
    for (size_t c = 0; c < expected[i].size(); ++c) {
      EXPECT_EQ((*results[i])[c].constraint, expected[i][c].constraint);
      EXPECT_EQ((*results[i])[c].outcome, expected[i][c].outcome);
      EXPECT_EQ((*results[i])[c].tier, expected[i][c].tier);
    }
  }
  EXPECT_EQ(piped.site().db().ToString(), serial.site().db().ToString());
  // Drain is destructive: a second call returns nothing new.
  EXPECT_TRUE(piped.Drain().empty());
}

TEST(ManagerTest, AddConstraintDrainsInFlightEpisodes) {
  ConstraintManager mgr = MakePipelinedManager(4);
  ASSERT_TRUE(
      mgr.AddConstraint("ord", MustParse("panic :- l(X,Y) & X > Y")).ok());
  mgr.ApplyUpdateAsync(Update::Insert("l", {V(1), V(2)}));
  mgr.ApplyUpdateAsync(Update::Insert("l", {V(5), V(3)}));
  // Registering a constraint mid-stream retires every in-flight episode
  // first (documented precondition): the new constraint only ever checks
  // updates admitted after it, and never races a speculation.
  ASSERT_TRUE(
      mgr.AddConstraint("cap", MustParse("panic :- l(X,Y) & Y > 90")).ok());
  EXPECT_EQ(mgr.in_flight(), 0u);
  auto results = mgr.Drain();
  ASSERT_EQ(results.size(), 2u);
  ASSERT_TRUE(results[0].ok());
  ASSERT_TRUE(results[1].ok());
  EXPECT_EQ(OutcomeOf(*results[0], "ord"), Outcome::kHolds);
  EXPECT_EQ(OutcomeOf(*results[1], "ord"), Outcome::kViolated);
}

TEST(ManagerTest, ResetStatsDrainsAndZeroesCounters) {
  ConstraintManager mgr = MakePipelinedManager(4);
  ASSERT_TRUE(
      mgr.AddConstraint("ord", MustParse("panic :- l(X,Y) & X > Y")).ok());
  mgr.ApplyUpdateAsync(Update::Insert("l", {V(5), V(3)}));
  mgr.ResetStats();
  // ResetStats drains first, so the in-flight episode's violation was
  // fully booked — and then wiped with everything else.
  EXPECT_EQ(mgr.in_flight(), 0u);
  ManagerStats s = mgr.stats();
  EXPECT_EQ(s.violations, 0u);
  EXPECT_TRUE(s.resolved_by.empty());
  // The episode's *result* survives: only statistics were reset.
  auto results = mgr.Drain();
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].ok());
  EXPECT_EQ(OutcomeOf(*results[0], "ord"), Outcome::kViolated);
}

// --- Active rules (application 2) ------------------------------------------

TEST(ActiveRulesTest, FiresWhenConditionBecomesTrue) {
  Database db;
  ActiveRuleEngine engine(&db);
  int fired = 0;
  ASSERT_TRUE(engine
                  .AddRule("audit", MustParse("panic :- emp(E,D,S) & S > 100"),
                           [&fired](Database*) { ++fired; })
                  .ok());
  auto r1 = engine.ProcessUpdate(
      Update::Insert("emp", {V("a"), V("d"), V(50)}));
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(fired, 0);
  // Below-threshold insert is provably irrelevant: not even re-evaluated.
  EXPECT_EQ(r1->skipped_irrelevant.size(), 1u);
  auto r2 = engine.ProcessUpdate(
      Update::Insert("emp", {V("b"), V("d"), V(500)}));
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(r2->fired.size(), 1u);
}

TEST(ActiveRulesTest, NoPriorSatisfactionAssumed) {
  // Unlike integrity constraints, the condition may already be true; the
  // engine must re-fire rather than conclude "held before, still holds".
  Database db;
  ASSERT_TRUE(db.Insert("emp", {V("x"), V("d"), V(900)}).ok());
  ActiveRuleEngine engine(&db);
  int fired = 0;
  ASSERT_TRUE(engine
                  .AddRule("audit", MustParse("panic :- emp(E,D,S) & S > 100"),
                           [&fired](Database*) { ++fired; })
                  .ok());
  auto r = engine.ProcessUpdate(
      Update::Insert("emp", {V("y"), V("d"), V(700)}));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(fired, 1);
}

TEST(ActiveRulesTest, ActionMayModifyDatabase) {
  Database db;
  ActiveRuleEngine engine(&db);
  ASSERT_TRUE(engine
                  .AddRule("log", MustParse("panic :- emp(E,D,S) & S > 100"),
                           [](Database* d) {
                             ASSERT_TRUE(d->Insert("flag", {V(1)}).ok());
                           })
                  .ok());
  ASSERT_TRUE(
      engine.ProcessUpdate(Update::Insert("emp", {V("a"), V("d"), V(500)}))
          .ok());
  EXPECT_TRUE(db.Contains("flag", {V(1)}));
}

// --- View maintenance (application 3) ---------------------------------------

TEST(ViewMaintTest, IrrelevantUpdateDetected) {
  Program view = MustParse("v(E) :- emp(E,D,S) & S > 100");
  view.goal = "v";
  // Inserting a low-salary employee cannot change the view.
  auto low = IrrelevantUpdate(
      view, Update::Insert("emp", {V("a"), V("d"), V(50)}));
  ASSERT_TRUE(low.ok()) << low.status().ToString();
  EXPECT_EQ(*low, Outcome::kHolds);
  // A high-salary insert can.
  auto high = IrrelevantUpdate(
      view, Update::Insert("emp", {V("a"), V("d"), V(500)}));
  ASSERT_TRUE(high.ok());
  EXPECT_EQ(*high, Outcome::kUnknown);
}

TEST(ViewMaintTest, IrrelevantMeansViewNeverChanges) {
  Program view = MustParse("v(E) :- emp(E,D,S) & S > 100");
  view.goal = "v";
  Update u = Update::Insert("emp", {V("a"), V("d"), V(50)});
  ASSERT_EQ(*IrrelevantUpdate(view, u), Outcome::kHolds);
  Database db;
  ASSERT_TRUE(db.Insert("emp", {V("x"), V("d"), V(200)}).ok());
  auto changed = ViewChanges(view, u, db);
  ASSERT_TRUE(changed.ok());
  EXPECT_FALSE(*changed);
}

TEST(ViewMaintTest, RelevantUpdateChangesView) {
  Program view = MustParse("v(E) :- emp(E,D,S) & S > 100");
  view.goal = "v";
  Update u = Update::Insert("emp", {V("a"), V("d"), V(500)});
  Database db;
  auto changed = ViewChanges(view, u, db);
  ASSERT_TRUE(changed.ok());
  EXPECT_TRUE(*changed);
}

TEST(ViewMaintTest, DeletionIrrelevantWhenFilteredOut) {
  Program view = MustParse("v(E) :- emp(E,D,S) & S > 100");
  view.goal = "v";
  auto del = IrrelevantUpdate(
      view, Update::Delete("emp", {V("a"), V("d"), V(50)}));
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(*del, Outcome::kHolds);
  auto del_high = IrrelevantUpdate(
      view, Update::Delete("emp", {V("a"), V("d"), V(500)}));
  ASSERT_TRUE(del_high.ok());
  EXPECT_EQ(*del_high, Outcome::kUnknown);
}

}  // namespace
}  // namespace ccpi
