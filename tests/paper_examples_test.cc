// End-to-end walkthrough of every worked example in the paper, with the
// exact constraints, updates, and data from the text. Each test cites its
// section. More focused unit coverage lives in the per-module test files;
// this suite is the fidelity record for EXPERIMENTS.md.

#include <gtest/gtest.h>

#include "containment/cqc.h"
#include "containment/klug.h"
#include "core/cqc_form.h"
#include "core/icq_compiler.h"
#include "core/local_test.h"
#include "core/ra_local_test.h"
#include "core/reduction.h"
#include "datalog/language_class.h"
#include "datalog/parser.h"
#include "eval/engine.h"
#include "subsumption/subsumption.h"
#include "updates/independence.h"
#include "updates/rewrite.h"

namespace ccpi {
namespace {

Program MustParse(const char* text) {
  auto p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return *p;
}

Rule MustRule(const char* text) {
  auto r = ParseRule(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

bool MustViolated(const Program& c, const Database& db) {
  auto v = IsViolated(c, db);
  EXPECT_TRUE(v.ok()) << v.status().ToString();
  return v.ok() && *v;
}

TEST(PaperExamples, Example21_NoDualDepartments) {
  Program c = MustParse("panic :- emp(E,sales) & emp(E,accounting)");
  EXPECT_EQ(SyntacticClass(c).ToString(), "CQ");
  Database db;
  ASSERT_TRUE(db.Insert("emp", {V("gupta"), V("sales")}).ok());
  ASSERT_TRUE(db.Insert("emp", {V("sagiv"), V("accounting")}).ok());
  EXPECT_FALSE(MustViolated(c, db));
  ASSERT_TRUE(db.Insert("emp", {V("gupta"), V("accounting")}).ok());
  EXPECT_TRUE(MustViolated(c, db));
}

TEST(PaperExamples, Example22_SalaryUnder100NeedsDepartment) {
  Program c = MustParse("panic :- emp(E,D,S) & not dept(D) & S < 100");
  EXPECT_EQ(SyntacticClass(c).ToString(), "CQ+neg+arith");
  Database db;
  ASSERT_TRUE(db.Insert("emp", {V("ullman"), V("cs"), V(90)}).ok());
  EXPECT_TRUE(MustViolated(c, db));  // cs is not a registered department
  ASSERT_TRUE(db.Insert("dept", {V("cs")}).ok());
  EXPECT_FALSE(MustViolated(c, db));
  // An employee with salary >= 100 never triggers the constraint.
  ASSERT_TRUE(db.Insert("emp", {V("widom"), V("ee"), V(100)}).ok());
  EXPECT_FALSE(MustViolated(c, db));
}

TEST(PaperExamples, Example23_SalaryRange) {
  Program c = MustParse(
      "panic :- emp(E,D,S) & salRange(D,Low,High) & S < Low\n"
      "panic :- emp(E,D,S) & salRange(D,Low,High) & S > High\n");
  EXPECT_EQ(SyntacticClass(c).ToString(), "UCQ+arith");
  Database db;
  ASSERT_TRUE(db.Insert("salRange", {V("cs"), V(50), V(150)}).ok());
  ASSERT_TRUE(db.Insert("emp", {V("a"), V("cs"), V(100)}).ok());
  EXPECT_FALSE(MustViolated(c, db));
  ASSERT_TRUE(db.Insert("emp", {V("b"), V("cs"), V(40)}).ok());
  EXPECT_TRUE(MustViolated(c, db));
}

TEST(PaperExamples, Example24_NoOneIsOwnBoss) {
  Program c = MustParse(
      "panic :- boss(E,E)\n"
      "boss(E,M) :- emp(E,D,S) & manager(D,M)\n"
      "boss(E,F) :- boss(E,G) & boss(G,F)\n");
  EXPECT_EQ(SyntacticClass(c).shape, Shape::kRecursive);
  Database db;
  // A management cycle of length 3.
  ASSERT_TRUE(db.Insert("emp", {V("a"), V("d1"), V(1)}).ok());
  ASSERT_TRUE(db.Insert("emp", {V("b"), V("d2"), V(1)}).ok());
  ASSERT_TRUE(db.Insert("emp", {V("c"), V("d3"), V(1)}).ok());
  ASSERT_TRUE(db.Insert("manager", {V("d1"), V("b")}).ok());
  ASSERT_TRUE(db.Insert("manager", {V("d2"), V("c")}).ok());
  EXPECT_FALSE(MustViolated(c, db));
  ASSERT_TRUE(db.Insert("manager", {V("d3"), V("a")}).ok());
  EXPECT_TRUE(MustViolated(c, db));
}

TEST(PaperExamples, Section3_SubsumptionEqualsContainment) {
  // Theorem 3.1 in action with the paper's style of constraints.
  Program tight = MustParse("panic :- emp(E,D,S) & S > 150");
  Program loose = MustParse("panic :- emp(E,D,S) & S > 100");
  auto d = Subsumes(tight, {loose});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->outcome, Outcome::kHolds);
}

TEST(PaperExamples, Example41_InsertToyDepartment) {
  Program c1 = MustParse("panic :- emp(E,D,S) & not dept(D)");
  Program c2 = MustParse("panic :- emp(E,D,S) & S > 100");
  Update u = Update::Insert("dept", {V("toy")});

  // The rewritten constraint C3 (helper encoding), exactly as in the text.
  auto c3 = RewriteAfterInsert(c1, u);
  ASSERT_TRUE(c3.ok());
  std::string rendered = c3->ToString();
  EXPECT_NE(rendered.find("dept1(V1) :- dept(V1)"), std::string::npos);
  EXPECT_NE(rendered.find("dept1(toy)"), std::string::npos);
  EXPECT_NE(rendered.find("not dept1(D)"), std::string::npos);

  // "in order to be sure that C1 has not become violated by the update we
  // need to check C3 (subseteq) C1 U C2. This happens to be the case, and
  // in fact, C2 is not needed in the containment."
  auto with_c2 = HoldsAfterUpdate(c1, u, {c2});
  ASSERT_TRUE(with_c2.ok());
  EXPECT_EQ(with_c2->outcome, Outcome::kHolds);
  auto without_c2 = HoldsAfterUpdate(c1, u, {});
  ASSERT_TRUE(without_c2.ok());
  EXPECT_EQ(without_c2->outcome, Outcome::kHolds);

  // The single-rule form with D <> toy (inline encoding).
  auto inline_enc = RewriteAfterInsertInline(c1, u);
  ASSERT_TRUE(inline_enc.ok());
  EXPECT_EQ(inline_enc->rules.size(), 1u);
  EXPECT_NE(inline_enc->rules[0].ToString().find("D <> toy"),
            std::string::npos);
}

TEST(PaperExamples, Theorem42_InsertionPreservedClasses) {
  // A UCQ constraint stays a UCQ program after the insertion rewrite.
  Program c = MustParse(
      "panic :- emp(E,D,S) & not dept(D)\n"
      "panic :- emp(E,D,S) & S > 100\n");
  auto rewritten = RewriteAfterInsert(c, Update::Insert("dept", {V("toy")}));
  ASSERT_TRUE(rewritten.ok());
  LanguageClass cls = SyntacticClass(*rewritten);
  EXPECT_EQ(cls.shape, Shape::kUnionCQ);
}

TEST(PaperExamples, Example42_DeleteJones) {
  Program c1 = MustParse("panic :- emp(E,D,S) & not dept(D)");
  Update u = Update::Delete("emp", {V("jones"), V("shoe"), V(50)});
  auto cmp = RewriteAfterDelete(c1, u, DeleteEncoding::kComparisons);
  ASSERT_TRUE(cmp.ok());
  std::string rendered = cmp->ToString();
  EXPECT_NE(rendered.find("<> jones"), std::string::npos);
  EXPECT_NE(rendered.find("<> shoe"), std::string::npos);
  EXPECT_NE(rendered.find("<> 50"), std::string::npos);

  // "C4 (subseteq) C1 U C2": deleting an emp tuple cannot violate C1.
  auto d = HoldsAfterUpdate(c1, u, {MustParse(
                                       "panic :- emp(E,D,S) & S > 100")});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->outcome, Outcome::kHolds);

  // The isJones trick.
  auto neg = RewriteAfterDelete(c1, u, DeleteEncoding::kNegation);
  ASSERT_TRUE(neg.ok());
  EXPECT_NE(neg->ToString().find("isdel_emp"), std::string::npos);
}

TEST(PaperExamples, Example51_BothMappingsNeeded) {
  CQ c1 = RuleToCQ(MustRule("panic :- r(U,V) & r(S,T) & U = T & V = S"));
  CQ c2 = RuleToCQ(MustRule("panic :- r(U,V) & U <= V"));
  auto mappings = CountMappings(c1, {c2});
  ASSERT_TRUE(mappings.ok());
  EXPECT_EQ(*mappings, 2u);
  auto contained = CqcContained(c1, c2);
  ASSERT_TRUE(contained.ok());
  EXPECT_TRUE(*contained);
  // Klug's order-enumeration approach agrees.
  auto klug = KlugContained(c1, c2);
  ASSERT_TRUE(klug.ok());
  EXPECT_TRUE(*klug);
}

TEST(PaperExamples, Example53_ForbiddenIntervals) {
  Cqc c = *MakeCqc(MustRule("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y"), "l");
  CQ red36 = Reduce(c, {V(3), V(6)});
  CQ red510 = Reduce(c, {V(5), V(10)});
  CQ red48 = Reduce(c, {V(4), V(8)});
  EXPECT_EQ(red36.ToString(), "panic :- r(Z) & 3 <= Z & Z <= 6");
  EXPECT_EQ(red510.ToString(), "panic :- r(Z) & 5 <= Z & Z <= 10");
  EXPECT_EQ(red48.ToString(), "panic :- r(Z) & 4 <= Z & Z <= 8");
  auto contained = CqcContainedInUnion(red48, {red36, red510});
  ASSERT_TRUE(contained.ok());
  EXPECT_TRUE(*contained);

  Relation local(2);
  local.Insert({V(3), V(6)});
  local.Insert({V(5), V(10)});
  auto test = CompleteLocalTestOnInsert(c, {V(4), V(8)}, local);
  ASSERT_TRUE(test.ok());
  EXPECT_EQ(test->outcome, Outcome::kHolds);
}

TEST(PaperExamples, Example54_RaTest) {
  Rule rule = MustRule("panic :- l(X,Y,Y) & r(Y,Z,X)");
  // t = (a,b,c): RED does not exist, "the complete local test is true".
  auto abc = CompileRaLocalTest(rule, "l", {V("a"), V("b"), V("c")});
  ASSERT_TRUE(abc.ok());
  EXPECT_TRUE(abc->trivially_holds);
  // s = (a,b,b): the test is "whether this tuple already exists in L".
  auto abb = CompileRaLocalTest(rule, "l", {V("a"), V("b"), V("b")});
  ASSERT_TRUE(abb.ok());
  ASSERT_NE(abb->expr, nullptr);
  EXPECT_EQ(abb->expr->ToString(), "sigma[#2=#3 & #1=a & #2=b](l)");
}

TEST(PaperExamples, Example61_Fig61Program) {
  Rule rule = MustRule("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y");
  auto icq = IsIndependentlyConstrained(rule, "l");
  ASSERT_TRUE(icq.ok());
  EXPECT_TRUE(*icq);
  auto comp = CompileIcq(rule, "l");
  ASSERT_TRUE(comp.ok());
  // The compiled program has basis rules (Fig 6.1 rule (1)) and recursive
  // merge rules (rule (2)).
  EXPECT_GT(comp->interval_program.rules.size(), 2u);
  EXPECT_TRUE(comp->interval_program.IsRecursive());

  // Insert (a,b) = (4,8) with L = {(3,6),(5,10)}: ok(4,8) derivable.
  Database db;
  ASSERT_TRUE(db.Insert("l", {V(3), V(6)}).ok());
  ASSERT_TRUE(db.Insert("l", {V(5), V(10)}).ok());
  auto covered = IcqLocalTestOnInsert(*comp, db, {V(4), V(8)});
  ASSERT_TRUE(covered.ok());
  EXPECT_EQ(*covered, Outcome::kHolds);
}

TEST(PaperExamples, TheoremProof51_OnlyIfWitness) {
  // The "only if" canonical-database construction: non-containment comes
  // with a database where c1 fires and c2 does not (see containment_test
  // for the full mechanics; here the paper's r(U,V)/r(V,U) pair).
  CQ c2 = RuleToCQ(MustRule("panic :- r(U,V) & U <= V"));
  CQ c1 = RuleToCQ(MustRule("panic :- r(U,V) & r(S,T) & U = T"));
  auto contained = CqcContained(c1, c2);
  ASSERT_TRUE(contained.ok());
  EXPECT_FALSE(*contained);  // only U=T assumed, V=S dropped: no longer holds
}

}  // namespace
}  // namespace ccpi
