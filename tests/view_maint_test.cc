#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "eval/engine.h"
#include "manager/view_maint.h"
#include "util/rng.h"

namespace ccpi {
namespace {

Program MustView(const char* text, const char* goal) {
  auto p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  p->goal = goal;
  return *p;
}

TEST(MaterializedViewTest, InsertAddsDerivedTuples) {
  Program view = MustView("v(E) :- emp(E,D,S) & S > 100", "v");
  Database db;
  ASSERT_TRUE(db.Insert("emp", {V("ann"), V("cs"), V(150)}).ok());
  auto mv = MaterializedView::Create(view, db);
  ASSERT_TRUE(mv.ok());
  EXPECT_EQ(mv->rows().size(), 1u);

  auto tier = mv->Apply(Update::Insert("emp", {V("bob"), V("ee"), V(300)}));
  ASSERT_TRUE(tier.ok()) << tier.status().ToString();
  EXPECT_EQ(*tier, ViewRefreshTier::kIncremental);
  EXPECT_TRUE(mv->rows().Contains({V("bob")}));
  EXPECT_EQ(mv->rows().size(), 2u);
}

TEST(MaterializedViewTest, IrrelevantInsertSkipsWork) {
  Program view = MustView("v(E) :- emp(E,D,S) & S > 100", "v");
  auto mv = MaterializedView::Create(view, Database());
  ASSERT_TRUE(mv.ok());
  auto tier = mv->Apply(Update::Insert("emp", {V("carol"), V("cs"), V(50)}));
  ASSERT_TRUE(tier.ok());
  EXPECT_EQ(*tier, ViewRefreshTier::kIrrelevant);
  EXPECT_TRUE(mv->rows().empty());
  // The base replica still received the tuple.
  EXPECT_TRUE(mv->base().Contains("emp", {V("carol"), V("cs"), V(50)}));
}

TEST(MaterializedViewTest, DeleteRemovesOnlyUnsupportedTuples) {
  // A join view: v(E) = employees in audited departments. ann is audited
  // through two departments; removing one keeps her in the view.
  Program view = MustView("v(E) :- works(E,D) & audited(D)", "v");
  Database db;
  ASSERT_TRUE(db.Insert("works", {V("ann"), V("cs")}).ok());
  ASSERT_TRUE(db.Insert("works", {V("ann"), V("ee")}).ok());
  ASSERT_TRUE(db.Insert("works", {V("bob"), V("cs")}).ok());
  ASSERT_TRUE(db.Insert("audited", {V("cs")}).ok());
  ASSERT_TRUE(db.Insert("audited", {V("ee")}).ok());
  auto mv = MaterializedView::Create(view, db);
  ASSERT_TRUE(mv.ok());
  EXPECT_EQ(mv->rows().size(), 2u);

  auto tier = mv->Apply(Update::Delete("audited", {V("cs")}));
  ASSERT_TRUE(tier.ok());
  EXPECT_EQ(*tier, ViewRefreshTier::kIncremental);
  EXPECT_TRUE(mv->rows().Contains({V("ann")}));   // still via ee
  EXPECT_FALSE(mv->rows().Contains({V("bob")}));  // lost its only support
}

TEST(MaterializedViewTest, RecursiveViewFallsBackToFull) {
  Program view = MustView(
      "reach(X,Y) :- e(X,Y)\n"
      "reach(X,Y) :- reach(X,Z) & e(Z,Y)\n",
      "reach");
  Database db;
  ASSERT_TRUE(db.Insert("e", {V(1), V(2)}).ok());
  auto mv = MaterializedView::Create(view, db);
  ASSERT_TRUE(mv.ok());
  auto tier = mv->Apply(Update::Insert("e", {V(2), V(3)}));
  ASSERT_TRUE(tier.ok());
  EXPECT_EQ(*tier, ViewRefreshTier::kFull);
  EXPECT_TRUE(mv->rows().Contains({V(1), V(3)}));
}

TEST(MaterializedViewTest, SelfJoinInsert) {
  // Both occurrences of e must be considered when the inserted tuple can
  // play either role.
  Program view = MustView("two(X,Z) :- e(X,Y) & e(Y,Z)", "two");
  Database db;
  ASSERT_TRUE(db.Insert("e", {V(1), V(2)}).ok());
  auto mv = MaterializedView::Create(view, db);
  ASSERT_TRUE(mv.ok());
  EXPECT_TRUE(mv->rows().empty());
  auto tier = mv->Apply(Update::Insert("e", {V(2), V(1)}));
  ASSERT_TRUE(tier.ok());
  EXPECT_EQ(*tier, ViewRefreshTier::kIncremental);
  EXPECT_TRUE(mv->rows().Contains({V(1), V(1)}));
  EXPECT_TRUE(mv->rows().Contains({V(2), V(2)}));
}

/// Randomized agreement with full recomputation across an update stream.
TEST(MaterializedViewTest, AgreesWithRecomputationOnRandomStreams) {
  Rng rng(20260705);
  Program view = MustView(
      "v(E,D) :- works(E,D) & audited(D) & E <> D\n"
      "v(E,E) :- selfaudit(E)\n",
      "v");
  for (int stream = 0; stream < 10; ++stream) {
    Database db;
    auto mv = MaterializedView::Create(view, db);
    ASSERT_TRUE(mv.ok());
    Database shadow;  // maintained naively
    for (int step = 0; step < 25; ++step) {
      const char* preds[] = {"works", "audited", "selfaudit"};
      std::string pred = preds[rng.Below(3)];
      Tuple t;
      if (pred == std::string("works")) {
        t = {V(rng.Range(0, 3)), V(rng.Range(0, 3))};
      } else {
        t = {V(rng.Range(0, 3))};
      }
      Update u = rng.Chance(2, 3) ? Update::Insert(pred, t)
                                  : Update::Delete(pred, t);
      ASSERT_TRUE(mv->Apply(u).ok());
      ASSERT_TRUE(u.ApplyTo(&shadow).ok());
      auto expected = EvaluateGoal(view, shadow);
      ASSERT_TRUE(expected.ok());
      EXPECT_EQ(mv->rows().size(), expected->size())
          << "step " << step << " after " << u.ToString();
      for (const Tuple& row : expected->rows()) {
        EXPECT_TRUE(mv->rows().Contains(row))
            << TupleToString(row) << " missing after " << u.ToString();
      }
    }
  }
}

TEST(MaterializedViewTest, IrrelevanceNeverLies) {
  // Whenever Apply reports kIrrelevant, the naive recomputation agrees
  // that nothing changed.
  Rng rng(77);
  Program view = MustView("v(E) :- emp(E,D,S) & S > 100 & D <> temp", "v");
  Database db;
  auto mv = MaterializedView::Create(view, db);
  ASSERT_TRUE(mv.ok());
  Database shadow;
  for (int step = 0; step < 30; ++step) {
    Tuple t = {V(rng.Range(0, 3)), rng.Chance(1, 3) ? V("temp") : V("cs"),
               V(rng.Range(0, 200))};
    Update u = rng.Chance(2, 3) ? Update::Insert("emp", t)
                                : Update::Delete("emp", t);
    auto before = EvaluateGoal(view, shadow);
    ASSERT_TRUE(before.ok());
    auto tier = mv->Apply(u);
    ASSERT_TRUE(tier.ok());
    ASSERT_TRUE(u.ApplyTo(&shadow).ok());
    auto after = EvaluateGoal(view, shadow);
    ASSERT_TRUE(after.ok());
    if (*tier == ViewRefreshTier::kIrrelevant) {
      EXPECT_EQ(before->size(), after->size());
      for (const Tuple& row : before->rows()) {
        EXPECT_TRUE(after->Contains(row));
      }
    }
    // And in all cases the materialization matches.
    EXPECT_EQ(mv->rows().size(), after->size());
  }
}

}  // namespace
}  // namespace ccpi
