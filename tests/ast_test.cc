#include <gtest/gtest.h>

#include "datalog/ast.h"
#include "datalog/parser.h"

namespace ccpi {
namespace {

TEST(TermTest, FactoriesAndAccessors) {
  Term v = Term::Var("X");
  EXPECT_TRUE(v.is_var());
  EXPECT_EQ(v.var(), "X");
  Term c = Term::Const(V(5));
  EXPECT_TRUE(c.is_const());
  EXPECT_EQ(c.constant(), V(5));
  EXPECT_EQ(v.ToString(), "X");
  EXPECT_EQ(c.ToString(), "5");
  EXPECT_NE(v, c);
  EXPECT_EQ(Term::Var("X"), Term::Var("X"));
  EXPECT_NE(Term::Var("X"), Term::Var("Y"));
  EXPECT_EQ(Term::Const(V("a")), Term::Const(V("a")));
}

TEST(TermTest, OrderingIsTotal) {
  std::vector<Term> terms = {Term::Var("A"), Term::Var("B"),
                             Term::Const(V(1)), Term::Const(V("z"))};
  for (const Term& a : terms) {
    for (const Term& b : terms) {
      // Exactly one of <, ==, > holds.
      int count = (a < b) + (b < a) + (a == b);
      EXPECT_EQ(count, 1) << a.ToString() << " vs " << b.ToString();
    }
  }
}

TEST(CmpOpTest, FlipMatrix) {
  EXPECT_EQ(Flip(CmpOp::kLt), CmpOp::kGt);
  EXPECT_EQ(Flip(CmpOp::kLe), CmpOp::kGe);
  EXPECT_EQ(Flip(CmpOp::kGt), CmpOp::kLt);
  EXPECT_EQ(Flip(CmpOp::kGe), CmpOp::kLe);
  EXPECT_EQ(Flip(CmpOp::kEq), CmpOp::kEq);
  EXPECT_EQ(Flip(CmpOp::kNe), CmpOp::kNe);
}

TEST(CmpOpTest, NegateMatrix) {
  EXPECT_EQ(Negate(CmpOp::kLt), CmpOp::kGe);
  EXPECT_EQ(Negate(CmpOp::kLe), CmpOp::kGt);
  EXPECT_EQ(Negate(CmpOp::kGt), CmpOp::kLe);
  EXPECT_EQ(Negate(CmpOp::kGe), CmpOp::kLt);
  EXPECT_EQ(Negate(CmpOp::kEq), CmpOp::kNe);
  EXPECT_EQ(Negate(CmpOp::kNe), CmpOp::kEq);
}

TEST(CmpOpTest, FlipAndNegateAreSemanticallyCorrect) {
  const CmpOp ops[] = {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                       CmpOp::kGe, CmpOp::kEq, CmpOp::kNe};
  const Value values[] = {V(1), V(2), V("a")};
  for (CmpOp op : ops) {
    for (const Value& a : values) {
      for (const Value& b : values) {
        EXPECT_EQ(EvalCmp(a, op, b), EvalCmp(b, Flip(op), a));
        EXPECT_EQ(EvalCmp(a, op, b), !EvalCmp(a, Negate(op), b));
      }
    }
  }
}

TEST(SubstitutionTest, ApplyLeavesUnboundAlone) {
  Substitution s;
  s["X"] = Term::Const(V(1));
  Atom a{"p", {Term::Var("X"), Term::Var("Y"), Term::Const(V("k"))}};
  Atom applied = Apply(s, a);
  EXPECT_EQ(applied.args[0], Term::Const(V(1)));
  EXPECT_EQ(applied.args[1], Term::Var("Y"));
  EXPECT_EQ(applied.args[2], Term::Const(V("k")));
}

TEST(SubstitutionTest, ApplyToRule) {
  auto rule = ParseRule("panic :- p(X,Y) & X < Y");
  ASSERT_TRUE(rule.ok());
  Substitution s;
  s["X"] = Term::Const(V(3));
  Rule applied = Apply(s, *rule);
  EXPECT_EQ(applied.ToString(), "panic :- p(3,Y) & 3 < Y");
}

TEST(RenameApartTest, AllVariablesSuffixed) {
  auto rule = ParseRule("q(X) :- p(X,Y) & not s(Y) & X < Y");
  ASSERT_TRUE(rule.ok());
  Rule renamed = RenameApart(*rule, "_1");
  EXPECT_EQ(renamed.ToString(), "q(X_1) :- p(X_1,Y_1) & not s(Y_1) & "
                                "X_1 < Y_1");
  // Original untouched.
  EXPECT_EQ(rule->ToString(), "q(X) :- p(X,Y) & not s(Y) & X < Y");
}

TEST(RuleTest, VariablesInFirstOccurrenceOrder) {
  auto rule = ParseRule("q(B) :- p(A,B) & r(C,A) & C < D & p(D,D)");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->Variables(),
            (std::vector<std::string>{"B", "A", "C", "D"}));
}

TEST(ProgramTest, IdbEdbSplit) {
  auto p = ParseProgram(
      "panic :- helper(X) & base(X)\n"
      "helper(X) :- other(X)\n");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->IdbPredicates(), (std::set<std::string>{"panic", "helper"}));
  EXPECT_EQ(p->EdbPredicates(), (std::set<std::string>{"base", "other"}));
}

TEST(ProgramTest, MutualRecursionDetected) {
  auto p = ParseProgram(
      "a(X) :- b(X)\n"
      "b(X) :- a(X)\n");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->IsRecursive());
  auto q = ParseProgram(
      "a(X) :- b(X)\n"
      "b(X) :- c(X)\n");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(q->IsRecursive());
}

TEST(ProgramTest, SelfRecursionDetected) {
  auto p = ParseProgram("a(X) :- a(X)\n");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->IsRecursive());
}

TEST(LiteralTest, KindsAndPrinting) {
  Literal pos = Literal::Positive(Atom{"p", {Term::Var("X")}});
  Literal neg = Literal::Negated(Atom{"p", {Term::Var("X")}});
  Literal cmp = Literal::Cmp(
      Comparison{Term::Var("X"), CmpOp::kNe, Term::Const(V("toy"))});
  EXPECT_TRUE(pos.is_positive());
  EXPECT_TRUE(neg.is_negated());
  EXPECT_TRUE(cmp.is_comparison());
  EXPECT_EQ(pos.ToString(), "p(X)");
  EXPECT_EQ(neg.ToString(), "not p(X)");
  EXPECT_EQ(cmp.ToString(), "X <> toy");
  EXPECT_NE(pos, neg);
  EXPECT_EQ(pos, Literal::Positive(Atom{"p", {Term::Var("X")}}));
}

}  // namespace
}  // namespace ccpi
