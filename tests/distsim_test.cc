#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "distsim/site_db.h"
#include "eval/engine.h"

namespace ccpi {
namespace {

TEST(SiteDatabaseTest, PartitionsReads) {
  SiteDatabase site({"l"});
  EXPECT_TRUE(site.IsLocal("l"));
  EXPECT_FALSE(site.IsLocal("r"));
  EXPECT_TRUE(site.OnRead("l", 10).ok());
  EXPECT_TRUE(site.OnRead("r", 5).ok());
  EXPECT_TRUE(site.OnRead("r", 7).ok());
  EXPECT_EQ(site.stats().local_tuples, 10u);
  EXPECT_EQ(site.stats().remote_tuples, 12u);
  EXPECT_EQ(site.stats().remote_trips, 2u);
}

TEST(SiteDatabaseTest, CostModel) {
  CostModel costs;
  costs.local_tuple_cost = 1;
  costs.remote_tuple_cost = 10;
  costs.remote_round_trip_cost = 100;
  AccessStats stats;
  stats.local_tuples = 3;
  stats.remote_tuples = 2;
  stats.remote_trips = 1;
  EXPECT_DOUBLE_EQ(stats.Cost(costs), 3 + 20 + 100);
}

TEST(SiteDatabaseTest, StatsAccumulateAndReset) {
  SiteDatabase site({"l"});
  EXPECT_TRUE(site.OnRead("r", 4).ok());
  AccessStats more;
  more.local_tuples = 1;
  AccessStats total = site.stats();
  total += more;
  EXPECT_EQ(total.local_tuples, 1u);
  EXPECT_EQ(total.remote_tuples, 4u);
  site.ResetStats();
  EXPECT_EQ(site.stats().remote_tuples, 0u);
}

TEST(SiteDatabaseTest, PluggedIntoEvaluation) {
  SiteDatabase site({"l"});
  ASSERT_TRUE(site.db().Insert("l", {V(1)}).ok());
  ASSERT_TRUE(site.db().Insert("r", {V(1)}).ok());
  ASSERT_TRUE(site.db().Insert("r", {V(2)}).ok());
  auto constraint = ParseProgram("panic :- l(X) & r(X)");
  ASSERT_TRUE(constraint.ok());
  EvalOptions options;
  options.observer = &site;
  auto v = IsViolated(*constraint, site.db(), options);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(*v);
  EXPECT_GT(site.stats().local_tuples, 0u);
  EXPECT_GT(site.stats().remote_tuples, 0u);
}

}  // namespace
}  // namespace ccpi
