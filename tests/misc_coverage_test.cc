// Cross-cutting coverage: index-vs-scan agreement on the storage layer,
// normalization semantics, oracle resource limits, and compiled-program
// interop.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "containment/exact.h"
#include "containment/normalize.h"
#include "core/icq_compiler.h"
#include "datalog/parser.h"
#include "datalog/souffle_export.h"
#include "eval/engine.h"
#include "relational/relation.h"
#include "util/rng.h"

namespace ccpi {
namespace {

TEST(RelationFuzz, ProbeMatchesScanUnderChurn) {
  Rng rng(12021);
  Relation rel(2);
  for (int step = 0; step < 2000; ++step) {
    Tuple t = {V(rng.Range(0, 15)), V(rng.Range(0, 15))};
    switch (rng.Below(3)) {
      case 0:
        rel.Insert(t);
        break;
      case 1:
        rel.Erase(t);
        break;
      default: {
        size_t col = rng.Below(2);
        Value v = V(rng.Range(0, 15));
        // Probe postings must be exactly the scan matches.
        std::set<size_t> probe(rel.Probe(col, v).begin(),
                               rel.Probe(col, v).end());
        std::set<size_t> scan;
        for (size_t i = 0; i < rel.rows().size(); ++i) {
          if (rel.rows()[i][col] == v) scan.insert(i);
        }
        ASSERT_EQ(probe, scan) << "step " << step;
        break;
      }
    }
  }
}

TEST(NormalizeTest, PreservesSemanticsOnRandomDatabases) {
  Rng rng(5150);
  const char* constraints[] = {
      "panic :- p(X,X) & q(X)",
      "panic :- p(0,Y) & q(Y)",
      "panic :- p(X,Y) & p(Y,X) & X < Y",
      "panic :- p(X,X) & p(X,Z) & Z <> X",
  };
  for (const char* text : constraints) {
    auto rule = ParseRule(text);
    ASSERT_TRUE(rule.ok());
    CQ original = RuleToCQ(*rule);
    CQ normalized = NormalizeToTheorem51Form(original);
    // Normal form achieved...
    for (const Atom& a : normalized.positives) {
      for (const Term& t : a.args) EXPECT_TRUE(t.is_var());
    }
    // ...and equivalent: same verdict on random databases.
    Program p1;
    p1.rules.push_back(original.ToRule());
    Program p2;
    p2.rules.push_back(normalized.ToRule());
    for (int trial = 0; trial < 40; ++trial) {
      Database db;
      for (int i = 0; i < 6; ++i) {
        ASSERT_TRUE(
            db.Insert("p", {V(rng.Range(0, 3)), V(rng.Range(0, 3))}).ok());
        ASSERT_TRUE(db.Insert("q", {V(rng.Range(0, 3))}).ok());
      }
      auto v1 = IsViolated(p1, db);
      auto v2 = IsViolated(p2, db);
      ASSERT_TRUE(v1.ok() && v2.ok());
      EXPECT_EQ(*v1, *v2) << text << "\n" << db.ToString();
    }
  }
}

TEST(ExactLimitsTest, OversizeInstancesReportUnsupported) {
  // A strict chain forces every consistent linearization to use 16
  // distinct classes, overflowing the universe limit. (Without the chain
  // the oracle can legitimately decide through small collapsed universes.)
  std::string body;
  for (int i = 0; i < 16; ++i) {
    if (i > 0) body += " & ";
    body += "p(X" + std::to_string(i) + ")";
  }
  for (int i = 0; i + 1 < 16; ++i) {
    body += " & X" + std::to_string(i) + " < X" + std::to_string(i + 1);
  }
  auto rule = ParseRule("panic :- " + body);
  ASSERT_TRUE(rule.ok());
  CQ q1 = RuleToCQ(*rule);
  auto q2 = ParseRule("panic :- p(X) & not q(X)");
  ASSERT_TRUE(q2.ok());
  ExactLimits limits;
  limits.max_universe = 8;
  auto r = ExactCqContained(q1, RuleToCQ(*q2), limits);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST(ExactLimitsTest, SatVariableLimit) {
  // Pin the three variables to three distinct classes so every
  // linearization needs 3^3 optional tuples per ternary predicate.
  auto r1 = ParseRule("panic :- p(A,B,C) & q(A,B,C) & A < B & B < C");
  auto r2 = ParseRule("panic :- p(X,Y,Z) & not q(Z,Y,X)");
  ASSERT_TRUE(r1.ok() && r2.ok());
  ExactLimits limits;
  limits.max_sat_variables = 10;  // 2 * 3^3 optional tuples exceeds this
  auto r = ExactCqContained(RuleToCQ(*r1), RuleToCQ(*r2), limits);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST(InteropTest, CompiledIntervalProgramExportsToSouffle) {
  auto rule = ParseRule("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y");
  ASSERT_TRUE(rule.ok());
  auto comp = CompileIcq(*rule, "l");
  ASSERT_TRUE(comp.ok());
  Program program = comp->interval_program;
  program.goal = "fi_int_cc";
  Database facts;
  ASSERT_TRUE(facts.Insert("l", {V(3), V(6)}).ok());
  auto dl = ExportSouffle(program, &facts);
  ASSERT_TRUE(dl.ok()) << dl.status().ToString();
  EXPECT_NE(dl->find(".decl fi_int_cc(c0: number, c1: number)"),
            std::string::npos)
      << *dl;
  EXPECT_NE(dl->find("l(3, 6)."), std::string::npos);
}

TEST(InteropTest, RewrittenConstraintExportsToSouffle) {
  // The Example 4.1 helper encoding is plain nonrecursive datalog with
  // negation — Souffle-ready.
  auto program = ParseProgram(
      "panic :- emp(E,D,S) & not dept1(D)\n"
      "dept1(D) :- dept(D)\n"
      "dept1(toy)\n");
  ASSERT_TRUE(program.ok());
  auto dl = ExportSouffle(*program);
  ASSERT_TRUE(dl.ok()) << dl.status().ToString();
  EXPECT_NE(dl->find("dept1(\"toy\")."), std::string::npos);
  EXPECT_NE(dl->find("!dept1(D)"), std::string::npos);
}

}  // namespace
}  // namespace ccpi
