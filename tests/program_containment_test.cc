#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "subsumption/program_containment.h"

namespace ccpi {
namespace {

Program MustParse(const char* text) {
  auto p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return *p;
}

TEST(DispatchTest, PlainUcqPath) {
  auto d = ProgramContainedInUnion(MustParse("panic :- p(X) & q(X)"),
                                   {MustParse("panic :- p(X)")});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->method, "ucq-containment");
  EXPECT_TRUE(d->exact);
  EXPECT_EQ(d->outcome, Outcome::kHolds);
}

TEST(DispatchTest, ArithmeticPath) {
  auto d = ProgramContainedInUnion(MustParse("panic :- p(X) & X > 10"),
                                   {MustParse("panic :- p(X) & X > 5")});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->method, "theorem-5.1");
  EXPECT_TRUE(d->exact);
  EXPECT_EQ(d->outcome, Outcome::kHolds);
  // Exactness means kUnknown is a real refutation:
  auto back = ProgramContainedInUnion(MustParse("panic :- p(X) & X > 5"),
                                      {MustParse("panic :- p(X) & X > 10")});
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->exact);
  EXPECT_EQ(back->outcome, Outcome::kUnknown);
}

TEST(DispatchTest, NegationGoesToExactOracle) {
  auto d = ProgramContainedInUnion(
      MustParse("panic :- p(X) & not q(X) & r(X)"),
      {MustParse("panic :- p(X) & not q(X)")});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->method, "exact-oracle");
  EXPECT_EQ(d->outcome, Outcome::kHolds);
}

TEST(DispatchTest, RecursionGoesToChase) {
  auto d = ProgramContainedInUnion(
      MustParse("panic :- e(X,Y) & e(Y,Z)"),
      {MustParse("panic :- t(X,Z)\n"
                 "t(X,Y) :- e(X,Y)\n"
                 "t(X,Y) :- t(X,W) & t(W,Y)\n")});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->method, "uniform-containment-chase");
  EXPECT_EQ(d->outcome, Outcome::kHolds);
  EXPECT_FALSE(d->exact);
}

TEST(DispatchTest, DeadDisjunctsDropBeforeDeciding) {
  // The left side unfolds to one live and one dead disjunct (5 < 3); the
  // dead one must not block containment.
  auto d = ProgramContainedInUnion(
      MustParse("panic :- p(X) & q(X)\n"
                "panic :- p(X) & 5 < 3\n"),
      {MustParse("panic :- p(X)")});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->outcome, Outcome::kHolds);
}

TEST(DispatchTest, FactBranchEqualitiesAreNotArithmetic) {
  // The rewritten insertion program contains a helper fact whose unfolding
  // introduces equalities; after simplification the plain-UCQ path still
  // applies when no genuine comparisons remain.
  auto d = ProgramContainedInUnion(
      MustParse("panic :- emp(E,D) & dept1(D)\n"
                "dept1(D) :- dept(D)\n"
                "dept1(toy)\n"),
      {MustParse("panic :- emp(E,D)")});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->method, "ucq-containment");
  EXPECT_EQ(d->outcome, Outcome::kHolds);
}

TEST(DispatchTest, EmptyUnionNeverContainsLiveProgram) {
  auto d = ProgramContainedInUnion(MustParse("panic :- p(X)"), {});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->outcome, Outcome::kUnknown);
  EXPECT_TRUE(d->exact);
}

TEST(DispatchTest, UnsatisfiableProgramContainedInAnything) {
  auto d = ProgramContainedInUnion(
      MustParse("panic :- p(X) & X < X"), {});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->outcome, Outcome::kHolds);
}

}  // namespace
}  // namespace ccpi
