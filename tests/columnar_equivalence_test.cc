// The columnar read path must be invisible in every observable output:
// replaying the same seeded workload with columnar segments on and off
// produces byte-identical CheckReport vectors, ManagerStats (access
// accounting included — the kernels change how a verdict is computed,
// never which tuples the evaluation charges), deferred-queue contents,
// breaker state, and final database dump — at any thread count, with the
// remote and plan caches in any combination, and under execution budgets.
// These tests are the manager-level half of the columnar correctness
// story; tests/columnar_test.cc covers the kernels themselves.

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <vector>

#include "datalog/parser.h"
#include "manager/constraint_manager.h"
#include "relational/relation.h"
#include "util/rng.h"

namespace ccpi {
namespace {

Program MustParse(const char* text) {
  auto p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return *p;
}

uint64_t FaultSeedOr(uint64_t fallback) {
  const char* env = std::getenv("CCPI_FAULT_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  return std::strtoull(env, nullptr, 10);
}

/// Scoped flip of the process-wide columnar switch; restores the previous
/// setting however the test exits so suites can interleave freely.
class ColumnarToggle {
 public:
  explicit ColumnarToggle(bool enabled)
      : saved_(Relation::ColumnarEnabled()) {
    Relation::SetColumnarEnabled(enabled);
  }
  ~ColumnarToggle() { Relation::SetColumnarEnabled(saved_); }
  ColumnarToggle(const ColumnarToggle&) = delete;
  ColumnarToggle& operator=(const ColumnarToggle&) = delete;

 private:
  bool saved_;
};

struct RunResult {
  std::vector<std::vector<CheckReport>> reports;
  ManagerStats stats;
  std::vector<DeferredCheck> deferred;
  CircuitState breaker_state = CircuitState::kClosed;
  uint64_t injector_trips = 0;
  std::string db_dump;
  /// Columnar segments built during the run (a delta of the process-wide
  /// counter): the non-vacuity witness that a columnar-on run actually
  /// routed reads through segments, and that a columnar-off run built none.
  uint64_t segments_built = 0;
};

std::vector<Update> RandomWorkload(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<Update> out;
  const char* emps[] = {"ann", "bob", "cho", "dee"};
  const char* depts[] = {"cs", "ee", "toy"};
  for (size_t i = 0; i < n; ++i) {
    bool insert = !rng.Chance(1, 3);
    switch (rng.Below(4)) {
      case 0:
        out.push_back(Update{
            insert ? Update::Kind::kInsert : Update::Kind::kDelete,
            "l",
            {V(static_cast<int64_t>(rng.Below(12))),
             V(static_cast<int64_t>(rng.Below(12)))}});
        break;
      case 1:
        out.push_back(Update{
            insert ? Update::Kind::kInsert : Update::Kind::kDelete,
            "emp",
            {V(emps[rng.Below(4)]), V(depts[rng.Below(3)]),
             V(static_cast<int64_t>(rng.Below(150)))}});
        break;
      case 2:
        out.push_back(Update{
            insert ? Update::Kind::kInsert : Update::Kind::kDelete,
            "r",
            {V(static_cast<int64_t>(rng.Below(12)))}});
        break;
      default:
        out.push_back(
            Update{insert ? Update::Kind::kInsert : Update::Kind::kDelete,
                   "dept",
                   {V(depts[rng.Below(3)])}});
        break;
    }
  }
  return out;
}

/// The parallel_equivalence_test workload (same constraints, same seeds,
/// same initial data) with the columnar switch as an explicit parameter.
/// The mix matters: mixed int/symbol columns exercise both column kinds,
/// the interval and join constraints hit the vectorized compare and
/// hash-join kernels, and the negated referential constraint hits the
/// difference path.
RunResult RunWorkload(uint64_t seed, size_t threads, bool columnar,
                      const std::optional<FaultConfig>& faults,
                      bool cache = true, bool plan_cache = true,
                      size_t depth = 1) {
  ColumnarToggle toggle(columnar);
  uint64_t segments_before = Relation::DebugSegmentBuildCount();
  ConstraintManager mgr({"l", "emp"}, CostModel{}, ResilienceConfig{},
                        ParallelConfig{threads}, RemoteCacheConfig{cache},
                        BudgetConfig{}, TopologyConfig{},
                        PlanCacheConfig{plan_cache}, PipelineConfig{depth});
  std::optional<FaultInjector> injector;
  if (faults.has_value()) {
    injector.emplace(*faults);
    mgr.site().set_fault_injector(&*injector);
  }

  EXPECT_TRUE(
      mgr.AddConstraint("ord", MustParse("panic :- l(X,Y) & X > Y")).ok());
  EXPECT_TRUE(
      mgr.AddConstraint(
             "fi", MustParse("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y"))
          .ok());
  EXPECT_TRUE(mgr.AddConstraint(
                     "ref", MustParse("panic :- emp(E,D,S) & not dept(D)"))
                  .ok());
  EXPECT_TRUE(
      mgr.AddConstraint("cap", MustParse("panic :- emp(E,D,S) & S > 100"))
          .ok());
  EXPECT_TRUE(
      mgr.AddConstraint("join", MustParse("panic :- l(X,Y) & r(Y)")).ok());

  EXPECT_TRUE(mgr.site().db().Insert("dept", {V("cs")}).ok());
  EXPECT_TRUE(mgr.site().db().Insert("dept", {V("ee")}).ok());
  EXPECT_TRUE(mgr.site().db().Insert("r", {V(static_cast<int64_t>(20))}).ok());

  RunResult result;
  if (depth > 1) {
    for (const Update& u : RandomWorkload(seed, 60)) mgr.ApplyUpdateAsync(u);
    for (auto& reports : mgr.Drain()) {
      EXPECT_TRUE(reports.ok()) << reports.status().ToString();
      if (reports.ok()) result.reports.push_back(*reports);
    }
  } else {
    for (const Update& u : RandomWorkload(seed, 60)) {
      auto reports = mgr.ApplyUpdate(u);
      EXPECT_TRUE(reports.ok()) << reports.status().ToString();
      if (reports.ok()) result.reports.push_back(*reports);
    }
  }
  result.stats = mgr.stats();
  result.deferred.assign(mgr.deferred_queue().begin(),
                         mgr.deferred_queue().end());
  result.breaker_state = mgr.breaker().state();
  result.db_dump = mgr.site().db().ToString();
  if (injector.has_value()) result.injector_trips = injector->stats().trips;
  result.segments_built =
      Relation::DebugSegmentBuildCount() - segments_before;
  return result;
}

void ExpectSameReports(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.reports.size(), b.reports.size());
  for (size_t u = 0; u < a.reports.size(); ++u) {
    ASSERT_EQ(a.reports[u].size(), b.reports[u].size()) << "update " << u;
    for (size_t i = 0; i < a.reports[u].size(); ++i) {
      const CheckReport& x = a.reports[u][i];
      const CheckReport& y = b.reports[u][i];
      EXPECT_EQ(x.constraint, y.constraint) << "update " << u;
      EXPECT_EQ(x.outcome, y.outcome)
          << "update " << u << " constraint " << x.constraint;
      EXPECT_EQ(x.tier, y.tier)
          << "update " << u << " constraint " << x.constraint;
      EXPECT_EQ(x.retries, y.retries)
          << "update " << u << " constraint " << x.constraint;
      EXPECT_EQ(x.reason, y.reason)
          << "update " << u << " constraint " << x.constraint;
      EXPECT_EQ(x.queue_overflow, y.queue_overflow)
          << "update " << u << " constraint " << x.constraint;
    }
  }
}

/// The columnar path is held to the plan cache's standard: EVERY field of
/// ManagerStats matches, access accounting included. Scanning a segment
/// instead of the row vector reads the same logical tuples, so the charged
/// local/remote counts must not move.
void ExpectSameStats(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.stats.resolved_by, b.stats.resolved_by);
  EXPECT_EQ(a.stats.violations, b.stats.violations);
  EXPECT_EQ(a.stats.remote_attempts, b.stats.remote_attempts);
  EXPECT_EQ(a.stats.remote_retries, b.stats.remote_retries);
  EXPECT_EQ(a.stats.remote_failures, b.stats.remote_failures);
  EXPECT_EQ(a.stats.deferred, b.stats.deferred);
  EXPECT_EQ(a.stats.breaker_fast_fails, b.stats.breaker_fast_fails);
  EXPECT_EQ(a.stats.deferred_recovered, b.stats.deferred_recovered);
  EXPECT_EQ(a.stats.deferred_violations, b.stats.deferred_violations);
  EXPECT_EQ(a.stats.t3_admitted, b.stats.t3_admitted);
  EXPECT_EQ(a.stats.shed_checks, b.stats.shed_checks);
  EXPECT_EQ(a.stats.budget_exhausted, b.stats.budget_exhausted);
  EXPECT_EQ(a.stats.deferred_dropped, b.stats.deferred_dropped);
  EXPECT_EQ(a.stats.access.local_tuples, b.stats.access.local_tuples);
  EXPECT_EQ(a.stats.access.remote_tuples, b.stats.access.remote_tuples);
  EXPECT_EQ(a.stats.access.remote_trips, b.stats.access.remote_trips);
  EXPECT_EQ(a.stats.access.remote_failures, b.stats.access.remote_failures);
  EXPECT_EQ(a.stats.access.cache_hits, b.stats.access.cache_hits);
  EXPECT_EQ(a.stats.access.cached_tuples, b.stats.access.cached_tuples);
}

void ExpectSameDeferred(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.deferred.size(), b.deferred.size());
  for (size_t i = 0; i < a.deferred.size(); ++i) {
    EXPECT_EQ(a.deferred[i].constraint, b.deferred[i].constraint);
    EXPECT_EQ(a.deferred[i].sequence, b.deferred[i].sequence);
    EXPECT_EQ(a.deferred[i].update.pred, b.deferred[i].update.pred);
    EXPECT_EQ(a.deferred[i].update.kind, b.deferred[i].update.kind);
    EXPECT_EQ(a.deferred[i].update.tuple, b.deferred[i].update.tuple);
  }
  EXPECT_EQ(a.breaker_state, b.breaker_state);
}

void ExpectEquivalent(const RunResult& a, const RunResult& b) {
  ExpectSameReports(a, b);
  ExpectSameStats(a, b);
  ExpectSameDeferred(a, b);
  EXPECT_EQ(a.db_dump, b.db_dump);
}

TEST(ColumnarEquivalenceTest, OnMatchesOffAtEveryThreadCount) {
  for (size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
    for (uint64_t seed : {11u, 23u, 47u}) {
      RunResult off = RunWorkload(seed, threads, false, std::nullopt);
      RunResult on = RunWorkload(seed, threads, true, std::nullopt);
      ExpectEquivalent(off, on);
    }
  }
}

TEST(ColumnarEquivalenceTest, SegmentsActuallyBuiltOnAndOnlyOn) {
  // Guard against a vacuous pass: the columnar-on run must really build
  // segments (routing reads through the vectorized kernels), the off run
  // must build none, and the workload must exercise violations and the
  // full-check tier so the diffs above compare live verdicts.
  RunResult on = RunWorkload(11, 1, true, std::nullopt);
  RunResult off = RunWorkload(11, 1, false, std::nullopt);
  EXPECT_GT(on.segments_built, 0u);
  EXPECT_EQ(off.segments_built, 0u);
  EXPECT_GT(on.stats.violations, 0u);
  EXPECT_GT(on.stats.resolved_by[Tier::kFullCheck], 0u);
}

TEST(ColumnarEquivalenceTest, OnMatchesOffUnderFaults) {
  // The failure schedule is draw-for-draw identical: columnar reads must
  // consume exactly the trips the row path consumes.
  FaultConfig faults;
  faults.seed = FaultSeedOr(99);
  faults.transient_rate = 0.25;
  faults.timeout_rate = 0.1;
  faults.outages.push_back(OutageWindow{10, 25});
  for (size_t threads : {size_t{1}, size_t{4}}) {
    for (uint64_t seed : {11u, 23u, 47u}) {
      RunResult off = RunWorkload(seed, threads, false, faults);
      RunResult on = RunWorkload(seed, threads, true, faults);
      ExpectEquivalent(off, on);
      EXPECT_EQ(off.injector_trips, on.injector_trips);
    }
  }
}

TEST(ColumnarEquivalenceTest, OnMatchesOffWithoutCaches) {
  // Cache-off runs route every evaluation through the live scan path —
  // no cached plan or snapshot can mask a kernel divergence.
  for (uint64_t seed : {11u, 47u}) {
    RunResult off = RunWorkload(seed, 4, false, std::nullopt, false, false);
    RunResult on = RunWorkload(seed, 4, true, std::nullopt, false, false);
    ExpectEquivalent(off, on);
  }
}

TEST(ColumnarEquivalenceTest, OnMatchesOffThroughThePipeline) {
  // Pipelined episodes read admission snapshots (frozen, segment-bearing)
  // while commits mutate the live database — the sharpest test of segment
  // snapshot semantics.
  for (uint64_t seed : {11u, 47u}) {
    RunResult off =
        RunWorkload(seed, 4, false, std::nullopt, true, true, 8);
    RunResult on = RunWorkload(seed, 4, true, std::nullopt, true, true, 8);
    ExpectEquivalent(off, on);
  }
}

TEST(ColumnarEquivalenceTest, ColumnarOnThreadsStillMatchSequential) {
  // Columnar on, the original thread-invisibility guarantee must hold
  // unchanged: segments are immutable, so lanes share them freely.
  for (uint64_t seed : {11u, 47u}) {
    RunResult seq = RunWorkload(seed, 1, true, std::nullopt);
    RunResult par = RunWorkload(seed, 8, true, std::nullopt);
    ExpectEquivalent(seq, par);
  }
}

// ---- Budgeted runs: columnar on/off shed parity ---------------------------

/// The heavy-recursion budget workload of parallel_equivalence_test, with
/// the columnar switch as a parameter. Which checks shed under a cancelled
/// token must not depend on the storage layout: the budget checkpoints sit
/// at operator/enumeration boundaries that exist on both paths.
RunResult RunBudgetWorkload(size_t threads, bool columnar,
                            BudgetConfig budget) {
  ColumnarToggle toggle(columnar);
  ConstraintManager mgr({"lq", "l"}, CostModel{}, ResilienceConfig{},
                        ParallelConfig{threads}, RemoteCacheConfig{}, budget);
  EXPECT_TRUE(mgr.AddConstraint(
                     "deep1",
                     MustParse("panic :- lq(X) & path(X,Y) & bad(Y)\n"
                               "path(X,Y) :- edge(X,Y)\n"
                               "path(X,Y) :- edge(X,Z) & path(Z,Y)"))
                  .ok());
  EXPECT_TRUE(
      mgr.AddConstraint("ord", MustParse("panic :- l(X,Y) & X > Y")).ok());
  for (int i = 0; i < 128; ++i) {
    EXPECT_TRUE(mgr.site().db().Insert("edge", {V(i), V(i + 1)}).ok());
  }

  RunResult result;
  std::vector<Update> stream;
  for (int i = 0; i < 5; ++i) {
    stream.push_back(Update::Insert("lq", {V(i)}));
    stream.push_back(Update::Insert("l", {V(i), V(i + 1)}));
    stream.push_back(Update::Insert("l", {V(i + 1), V(i)}));
  }
  for (const Update& u : stream) {
    auto reports = mgr.ApplyUpdate(u);
    EXPECT_TRUE(reports.ok()) << reports.status().ToString();
    if (reports.ok()) result.reports.push_back(*reports);
  }
  result.stats = mgr.stats();
  result.deferred.assign(mgr.deferred_queue().begin(),
                         mgr.deferred_queue().end());
  result.breaker_state = mgr.breaker().state();
  return result;
}

TEST(ColumnarEquivalenceTest, CancelledEpisodesShedIdenticallyOnAndOff) {
  // A pre-cancelled token makes shedding deterministic (no wall clock):
  // every tier-3 check sheds at its first checkpoint on both paths, so
  // reports, stats, and the deferred queue must diff clean.
  CancellationToken token;
  token.Cancel();
  BudgetConfig budget;
  budget.cancel = &token;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    RunResult off = RunBudgetWorkload(threads, false, budget);
    RunResult on = RunBudgetWorkload(threads, true, budget);
    ExpectSameReports(off, on);
    ExpectSameStats(off, on);
    ExpectSameDeferred(off, on);
    EXPECT_GT(on.stats.shed_checks, 0u);
  }
}

TEST(ColumnarEquivalenceTest, RoundCapShedsIdenticallyOnAndOff) {
  // A fixpoint-round cap is deterministic at any machine speed (unlike a
  // millisecond deadline) and fires mid-evaluation, after real kernel
  // work — the shed point itself must be layout-independent.
  BudgetConfig budget;
  budget.per_check.max_fixpoint_rounds = 3;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    RunResult off = RunBudgetWorkload(threads, false, budget);
    RunResult on = RunBudgetWorkload(threads, true, budget);
    ExpectSameReports(off, on);
    ExpectSameStats(off, on);
    ExpectSameDeferred(off, on);
    EXPECT_GT(on.stats.shed_checks, 0u);
  }
}

}  // namespace
}  // namespace ccpi
