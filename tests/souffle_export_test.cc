#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "datalog/souffle_export.h"

namespace ccpi {
namespace {

Program MustParse(const char* text) {
  auto p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return *p;
}

TEST(SouffleExportTest, Example22WithFacts) {
  Program c = MustParse("panic :- emp(E,D,S) & not dept(D) & S < 100");
  Database facts;
  ASSERT_TRUE(facts.Insert("emp", {V("ann"), V("cs"), V(90)}).ok());
  ASSERT_TRUE(facts.Insert("dept", {V("cs")}).ok());
  auto dl = ExportSouffle(c, &facts);
  ASSERT_TRUE(dl.ok()) << dl.status().ToString();
  // Declarations with inferred types: E/D symbols (from facts), S number.
  EXPECT_NE(dl->find(".decl emp(c0: symbol, c1: symbol, c2: number)"),
            std::string::npos)
      << *dl;
  EXPECT_NE(dl->find(".decl dept(c0: symbol)"), std::string::npos);
  EXPECT_NE(dl->find(".decl panic()"), std::string::npos);
  EXPECT_NE(dl->find(".output panic"), std::string::npos);
  // The rule with Souffle negation and comparison syntax.
  EXPECT_NE(dl->find("panic() :- emp(E, D, S), !dept(D), S < 100."),
            std::string::npos)
      << *dl;
  // Facts with quoted symbols.
  EXPECT_NE(dl->find("emp(\"ann\", \"cs\", 90)."), std::string::npos);
}

TEST(SouffleExportTest, RecursiveProgram) {
  Program c = MustParse(
      "panic :- boss(E,E)\n"
      "boss(E,M) :- emp(E,D,S) & manager(D,M)\n"
      "boss(E,F) :- boss(E,G) & boss(G,F)\n");
  auto dl = ExportSouffle(c);
  ASSERT_TRUE(dl.ok()) << dl.status().ToString();
  EXPECT_NE(dl->find("boss(E, F) :- boss(E, G), boss(G, F)."),
            std::string::npos);
}

TEST(SouffleExportTest, TypeUnificationThroughVariables) {
  // D flows from emp's 2nd column into dept's 1st: a symbol fact in one
  // types both.
  Program c = MustParse("panic :- emp(E,D) & dept(D)");
  Database facts;
  ASSERT_TRUE(facts.Insert("dept", {V("toy")}).ok());
  auto dl = ExportSouffle(c, &facts);
  ASSERT_TRUE(dl.ok());
  EXPECT_NE(dl->find(".decl emp(c0: number, c1: symbol)"),
            std::string::npos)
      << *dl;
}

TEST(SouffleExportTest, SymbolOrderComparisonRejected) {
  // D <> toy is fine (equality class), but D < toy would rely on symbol
  // order and must be rejected.
  Program neq = MustParse("panic :- emp(E,D) & D <> toy");
  auto ok = ExportSouffle(neq);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_NE(ok->find("D != \"toy\""), std::string::npos);
  Program lt = MustParse("panic :- emp(E,D) & D < toy");
  auto bad = ExportSouffle(lt);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kUnsupported);
}

TEST(SouffleExportTest, InconsistentArityRejected) {
  Program c = MustParse(
      "panic :- p(X)\n"
      "panic :- p(X,Y)\n");
  auto dl = ExportSouffle(c);
  ASSERT_FALSE(dl.ok());
  EXPECT_EQ(dl.status().code(), StatusCode::kInvalidArgument);
}

TEST(SouffleExportTest, Fig61ProgramExports) {
  // The compiled interval programs are plain positive recursive datalog
  // with numeric comparisons: they export cleanly.
  Program fig61 = MustParse(
      "interval(X,Y) :- l(X,Y)\n"
      "interval(X,Y) :- interval(X,W) & interval(Z,Y) & Z <= W\n"
      "ok(A,B) :- interval(X,Y) & X <= A & B <= Y\n");
  fig61.goal = "ok";
  auto dl = ExportSouffle(fig61);
  ASSERT_TRUE(dl.ok()) << dl.status().ToString();
  EXPECT_NE(dl->find(".output ok"), std::string::npos);
  EXPECT_NE(
      dl->find(
          "interval(X, Y) :- interval(X, W), interval(Z, Y), Z <= W."),
      std::string::npos)
      << *dl;
}

}  // namespace
}  // namespace ccpi
