// Kernel-level and lifecycle coverage for the columnar segments behind
// Relation (src/relational/columnar.h): column-kind detection, every
// ScanOp over int and dictionary columns (including the cross-type edge
// cases of the total Value order), position-list refinement, gather,
// column-at-a-time join tables, and the freeze/invalidate lifecycle on
// Relation. A randomized sweep cross-checks every kernel against the
// row-at-a-time loop it replaces.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "relational/columnar.h"
#include "relational/relation.h"
#include "util/rng.h"

namespace ccpi {
namespace {

/// Restores the process-wide columnar switch on scope exit so tests can
/// toggle it without leaking state into the rest of the binary.
struct ColumnarToggle {
  explicit ColumnarToggle(bool enabled)
      : previous(Relation::ColumnarEnabled()) {
    Relation::SetColumnarEnabled(enabled);
  }
  ~ColumnarToggle() { Relation::SetColumnarEnabled(previous); }
  bool previous;
};

std::vector<Tuple> IntRows() {
  return {{V(3), V(10)}, {V(5), V(20)}, {V(3), V(30)}, {V(7), V(3)}};
}

std::vector<Tuple> MixedRows() {
  return {{V("bob"), V(1)}, {V("ann"), V(2)}, {V(4), V(3)}, {V("bob"), V(4)}};
}

/// Row-at-a-time oracle for ScanCmp.
PositionList RowScan(const std::vector<Tuple>& rows, size_t col, ScanOp op,
                     const Value& v) {
  PositionList out;
  for (uint32_t i = 0; i < rows.size(); ++i) {
    const Value& x = rows[i][col];
    bool hit = false;
    switch (op) {
      case ScanOp::kLt: hit = x < v; break;
      case ScanOp::kLe: hit = x <= v; break;
      case ScanOp::kGt: hit = x > v; break;
      case ScanOp::kGe: hit = x >= v; break;
      case ScanOp::kEq: hit = x == v; break;
      case ScanOp::kNe: hit = x != v; break;
    }
    if (hit) out.push_back(i);
  }
  return out;
}

TEST(ColumnarTest, BuildDetectsColumnKinds) {
  auto seg = ColumnarSegment::Build(MixedRows(), 2);
  EXPECT_EQ(seg->size(), 4u);
  EXPECT_EQ(seg->arity(), 2u);
  EXPECT_EQ(seg->column_kind(0), ColumnarSegment::ColumnKind::kDict);
  EXPECT_EQ(seg->column_kind(1), ColumnarSegment::ColumnKind::kInt64);
}

TEST(ColumnarTest, GatherRowRoundTrips) {
  std::vector<Tuple> rows = MixedRows();
  auto seg = ColumnarSegment::Build(rows, 2);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(seg->GatherRow(i), rows[i]) << "row " << i;
    for (size_t c = 0; c < 2; ++c) {
      EXPECT_EQ(seg->ValueAt(i, c), rows[i][c]);
    }
  }
  std::vector<Tuple> gathered;
  seg->Gather({3, 1}, &gathered);
  ASSERT_EQ(gathered.size(), 2u);
  EXPECT_EQ(gathered[0], rows[3]);
  EXPECT_EQ(gathered[1], rows[1]);
}

TEST(ColumnarTest, ScanEqIntColumn) {
  auto seg = ColumnarSegment::Build(IntRows(), 2);
  PositionList pos;
  seg->ScanEq(0, V(3), &pos);
  EXPECT_EQ(pos, (PositionList{0, 2}));
  seg->ScanEq(0, V(99), &pos);
  EXPECT_TRUE(pos.empty());
  // An int column never contains a symbol.
  seg->ScanEq(0, V("ghost"), &pos);
  EXPECT_TRUE(pos.empty());
}

TEST(ColumnarTest, ScanCmpIntColumnAllOps) {
  std::vector<Tuple> rows = IntRows();
  auto seg = ColumnarSegment::Build(rows, 2);
  for (ScanOp op : {ScanOp::kLt, ScanOp::kLe, ScanOp::kGt, ScanOp::kGe,
                    ScanOp::kEq, ScanOp::kNe}) {
    for (int64_t v : {2, 3, 5, 8}) {
      PositionList pos;
      seg->ScanCmp(0, op, V(v), &pos);
      EXPECT_EQ(pos, RowScan(rows, 0, op, V(v)))
          << "op " << static_cast<int>(op) << " v " << v;
    }
  }
}

TEST(ColumnarTest, ScanCmpIntColumnAgainstSymbol) {
  // Every integer sorts below every symbol: ordered comparisons against a
  // symbol are constant across an int column.
  std::vector<Tuple> rows = IntRows();
  auto seg = ColumnarSegment::Build(rows, 2);
  PositionList pos;
  seg->ScanCmp(0, ScanOp::kLt, V("zed"), &pos);
  EXPECT_EQ(pos.size(), rows.size());
  seg->ScanCmp(0, ScanOp::kNe, V("zed"), &pos);
  EXPECT_EQ(pos.size(), rows.size());
  seg->ScanCmp(0, ScanOp::kGe, V("zed"), &pos);
  EXPECT_TRUE(pos.empty());
}

TEST(ColumnarTest, ScanCmpDictColumn) {
  std::vector<Tuple> rows = MixedRows();  // col 0: bob, ann, 4, bob
  auto seg = ColumnarSegment::Build(rows, 2);
  for (ScanOp op : {ScanOp::kLt, ScanOp::kLe, ScanOp::kGt, ScanOp::kGe,
                    ScanOp::kEq, ScanOp::kNe}) {
    // Present values, an absent symbol between dict entries, an absent
    // int, and the extremes.
    for (const Value& v : {V("bob"), V("ann"), V("azz"), V(4), V(0),
                           V("zzz")}) {
      PositionList pos;
      seg->ScanCmp(0, op, v, &pos);
      EXPECT_EQ(pos, RowScan(rows, 0, op, v))
          << "op " << static_cast<int>(op) << " v " << v.ToString();
    }
  }
}

TEST(ColumnarTest, FilterCmpRefinesInPlace) {
  std::vector<Tuple> rows = IntRows();
  auto seg = ColumnarSegment::Build(rows, 2);
  PositionList pos;
  seg->ScanCmp(0, ScanOp::kEq, V(3), &pos);  // rows 0, 2
  seg->FilterCmp(1, ScanOp::kGt, V(15), &pos);
  EXPECT_EQ(pos, (PositionList{2}));
  // Filtering an int column by a symbol: int < symbol always, so kLt
  // keeps everything and kGt empties the list.
  seg->ScanCmp(0, ScanOp::kEq, V(3), &pos);
  seg->FilterCmp(1, ScanOp::kLt, V("any"), &pos);
  EXPECT_EQ(pos, (PositionList{0, 2}));
  seg->FilterCmp(1, ScanOp::kGt, V("any"), &pos);
  EXPECT_TRUE(pos.empty());
}

TEST(ColumnarTest, ScanColCmpIntInt) {
  std::vector<Tuple> rows = {{V(1), V(1)}, {V(2), V(5)}, {V(7), V(7)},
                             {V(9), V(4)}};
  auto seg = ColumnarSegment::Build(rows, 2);
  PositionList pos;
  seg->ScanColCmp(0, ScanOp::kEq, 1, &pos);
  EXPECT_EQ(pos, (PositionList{0, 2}));
  seg->ScanColCmp(0, ScanOp::kLt, 1, &pos);
  EXPECT_EQ(pos, (PositionList{1}));
  seg->FilterColCmp(0, ScanOp::kGt, 1, &pos);
  EXPECT_TRUE(pos.empty());
}

TEST(ColumnarTest, ScanColCmpDictDict) {
  // Two dict columns with different dictionaries: equality goes through
  // cross-dictionary code translation.
  std::vector<Tuple> rows = {{V("a"), V("a")},
                             {V("b"), V("c")},
                             {V("c"), V("c")},
                             {V("d"), V("a")}};
  auto seg = ColumnarSegment::Build(rows, 2);
  ASSERT_EQ(seg->column_kind(0), ColumnarSegment::ColumnKind::kDict);
  PositionList pos;
  seg->ScanColCmp(0, ScanOp::kEq, 1, &pos);
  EXPECT_EQ(pos, (PositionList{0, 2}));
  seg->ScanColCmp(0, ScanOp::kNe, 1, &pos);
  EXPECT_EQ(pos, (PositionList{1, 3}));
  // Ordered dict-dict comparison exercises the generic fallback.
  seg->ScanColCmp(0, ScanOp::kLt, 1, &pos);
  EXPECT_EQ(pos, (PositionList{1}));
}

TEST(ColumnarTest, ScanColCmpMixedKinds) {
  // Int column vs dict column: ints sort below symbols, and the dict
  // column here also holds an int to keep the comparison honest.
  std::vector<Tuple> rows = {{V(1), V("x")}, {V(5), V(5)}, {V(9), V(2)}};
  auto seg = ColumnarSegment::Build(rows, 2);
  ASSERT_EQ(seg->column_kind(0), ColumnarSegment::ColumnKind::kInt64);
  ASSERT_EQ(seg->column_kind(1), ColumnarSegment::ColumnKind::kDict);
  PositionList pos;
  seg->ScanColCmp(0, ScanOp::kLt, 1, &pos);
  EXPECT_EQ(pos, (PositionList{0}));
  seg->ScanColCmp(0, ScanOp::kEq, 1, &pos);
  EXPECT_EQ(pos, (PositionList{1}));
  seg->ScanColCmp(0, ScanOp::kGt, 1, &pos);
  EXPECT_EQ(pos, (PositionList{2}));
}

TEST(ColumnarTest, JoinTablePostingsPreserveRowOrder) {
  std::vector<Tuple> build_rows = {{V(3)}, {V(5)}, {V(3)}, {V(7)}};
  auto build = ColumnarSegment::Build(build_rows, 1);
  ColumnarJoinTable table(*build, 0);
  std::vector<Tuple> probe_rows = {{V(5)}, {V(4)}, {V(3)}};
  auto probe = ColumnarSegment::Build(probe_rows, 1);
  std::vector<int32_t> ids;
  table.TranslateProbeColumn(*probe, 0, &ids);
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_GE(ids[0], 0);
  EXPECT_EQ(ids[1], -1);
  EXPECT_GE(ids[2], 0);
  EXPECT_EQ(table.Posting(ids[0]), (PositionList{1}));
  EXPECT_EQ(table.Posting(ids[2]), (PositionList{0, 2}));
}

TEST(ColumnarTest, JoinTableDictBuildIntProbe) {
  // Build side dictionary-coded (mixed values), probe side raw ints: the
  // translation must find the dictionary's integer entries and miss its
  // symbols.
  std::vector<Tuple> build_rows = {{V("a")}, {V(3)}, {V("a")}, {V(3)}};
  auto build = ColumnarSegment::Build(build_rows, 1);
  ASSERT_EQ(build->column_kind(0), ColumnarSegment::ColumnKind::kDict);
  ColumnarJoinTable table(*build, 0);
  std::vector<Tuple> probe_rows = {{V(3)}, {V(4)}};
  auto probe = ColumnarSegment::Build(probe_rows, 1);
  std::vector<int32_t> ids;
  table.TranslateProbeColumn(*probe, 0, &ids);
  ASSERT_GE(ids[0], 0);
  EXPECT_EQ(ids[1], -1);
  EXPECT_EQ(table.Posting(ids[0]), (PositionList{1, 3}));
}

TEST(ColumnarTest, JoinTableIntBuildDictProbe) {
  std::vector<Tuple> build_rows = {{V(1)}, {V(2)}, {V(1)}};
  auto build = ColumnarSegment::Build(build_rows, 1);
  ColumnarJoinTable table(*build, 0);
  std::vector<Tuple> probe_rows = {{V(2)}, {V("two")}, {V(1)}};
  auto probe = ColumnarSegment::Build(probe_rows, 1);
  ASSERT_EQ(probe->column_kind(0), ColumnarSegment::ColumnKind::kDict);
  std::vector<int32_t> ids;
  table.TranslateProbeColumn(*probe, 0, &ids);
  ASSERT_GE(ids[0], 0);
  EXPECT_EQ(ids[1], -1);
  ASSERT_GE(ids[2], 0);
  EXPECT_EQ(table.Posting(ids[0]), (PositionList{1}));
  EXPECT_EQ(table.Posting(ids[2]), (PositionList{0, 2}));
}

TEST(ColumnarTest, RandomizedKernelsMatchRowOracle) {
  Rng rng(2026);
  for (int round = 0; round < 20; ++round) {
    // Mixed 3-column rows over small domains so every op hits and misses.
    std::vector<Tuple> rows;
    size_t n = 1 + rng.Below(40);
    const char* syms[] = {"a", "b", "c"};
    for (size_t i = 0; i < n; ++i) {
      Tuple t;
      t.push_back(V(static_cast<int64_t>(rng.Below(6))));
      t.push_back(rng.Chance(1, 2) ? V(syms[rng.Below(3)])
                                   : V(static_cast<int64_t>(rng.Below(6))));
      t.push_back(V(static_cast<int64_t>(rng.Below(6))));
      rows.push_back(std::move(t));
    }
    auto seg = ColumnarSegment::Build(rows, 3);
    for (ScanOp op : {ScanOp::kLt, ScanOp::kLe, ScanOp::kGt, ScanOp::kGe,
                      ScanOp::kEq, ScanOp::kNe}) {
      for (size_t col = 0; col < 3; ++col) {
        Value v = rng.Chance(1, 2) ? V(static_cast<int64_t>(rng.Below(7)))
                                   : V(syms[rng.Below(3)]);
        PositionList pos;
        seg->ScanCmp(col, op, v, &pos);
        EXPECT_EQ(pos, RowScan(rows, col, op, v));
      }
      // Column-column over every pair.
      for (size_t a = 0; a < 3; ++a) {
        for (size_t b = 0; b < 3; ++b) {
          PositionList pos;
          seg->ScanColCmp(a, op, b, &pos);
          PositionList expect;
          for (uint32_t i = 0; i < rows.size(); ++i) {
            const Value& x = rows[i][a];
            const Value& y = rows[i][b];
            bool hit = false;
            switch (op) {
              case ScanOp::kLt: hit = x < y; break;
              case ScanOp::kLe: hit = x <= y; break;
              case ScanOp::kGt: hit = x > y; break;
              case ScanOp::kGe: hit = x >= y; break;
              case ScanOp::kEq: hit = x == y; break;
              case ScanOp::kNe: hit = x != y; break;
            }
            if (hit) expect.push_back(i);
          }
          EXPECT_EQ(pos, expect);
        }
      }
    }
  }
}

// ---- Relation lifecycle ---------------------------------------------------

TEST(ColumnarTest, FreezeBuildsSegmentAndMutationDropsIt) {
  ColumnarToggle toggle(true);
  Relation rel(2);
  rel.Insert({V(1), V(2)});
  EXPECT_EQ(rel.columnar_segment(), nullptr) << "no segment before freeze";
  rel.FreezeIndexes();
  auto seg = rel.columnar_segment();
  ASSERT_NE(seg, nullptr);
  EXPECT_EQ(seg->size(), 1u);

  // A holder's snapshot survives the mutation; the relation's does not.
  rel.Insert({V(3), V(4)});
  EXPECT_EQ(rel.columnar_segment(), nullptr);
  EXPECT_EQ(seg->size(), 1u);

  // Re-freezing rebuilds over the new contents.
  rel.FreezeIndexes();
  auto seg2 = rel.columnar_segment();
  ASSERT_NE(seg2, nullptr);
  EXPECT_EQ(seg2->size(), 2u);

  rel.Erase({V(1), V(2)});
  EXPECT_EQ(rel.columnar_segment(), nullptr);
  rel.FreezeIndexes();
  ASSERT_NE(rel.columnar_segment(), nullptr);
  rel.Clear();
  EXPECT_EQ(rel.columnar_segment(), nullptr);
}

TEST(ColumnarTest, MoveCarriesSegmentCopyDropsIt) {
  ColumnarToggle toggle(true);
  Relation rel(1);
  rel.Insert({V(1)});
  rel.FreezeIndexes();
  ASSERT_NE(rel.columnar_segment(), nullptr);

  Relation copied = rel;  // a copy rebuilds caches lazily, like indexes
  EXPECT_EQ(copied.columnar_segment(), nullptr);
  ASSERT_NE(rel.columnar_segment(), nullptr);

  Relation moved = std::move(rel);
  EXPECT_NE(moved.columnar_segment(), nullptr);
}

TEST(ColumnarTest, DisabledTogglePreventsSegmentBuild) {
  ColumnarToggle toggle(false);
  Relation rel(1);
  rel.Insert({V(1)});
  rel.FreezeIndexes();
  EXPECT_EQ(rel.columnar_segment(), nullptr);
}

TEST(ColumnarTest, EmptyRelationFreezesToEmptySegment) {
  ColumnarToggle toggle(true);
  Relation rel(3);
  rel.FreezeIndexes();
  auto seg = rel.columnar_segment();
  ASSERT_NE(seg, nullptr);
  EXPECT_EQ(seg->size(), 0u);
  EXPECT_EQ(seg->arity(), 3u);
  PositionList pos;
  seg->ScanCmp(1, ScanOp::kNe, V(0), &pos);
  EXPECT_TRUE(pos.empty());
}

}  // namespace
}  // namespace ccpi
