#include <gtest/gtest.h>

#include <set>

#include "util/circuit_breaker.h"
#include "util/outcome.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"

namespace ccpi {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad arity");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad arity");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad arity");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument,
        StatusCode::kUnsupported, StatusCode::kNotFound,
        StatusCode::kInternal}) {
    EXPECT_NE(std::string(StatusCodeToString(code)), "Unknown");
  }
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_TRUE(ok.status().ok());

  Result<int> err = Status::NotFound("nope");
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  CCPI_ASSIGN_OR_RETURN(int half, Half(x));
  CCPI_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto q = Quarter(8);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*q, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringsTest, VariableConvention) {
  EXPECT_TRUE(IsVariableName("X"));
  EXPECT_TRUE(IsVariableName("Salary"));
  EXPECT_FALSE(IsVariableName("emp"));
  EXPECT_FALSE(IsVariableName(""));
  EXPECT_FALSE(IsVariableName("_x"));
}

TEST(StringsTest, Identifier) {
  EXPECT_TRUE(IsIdentifier("emp_1"));
  EXPECT_TRUE(IsIdentifier("_private"));
  EXPECT_FALSE(IsIdentifier("1emp"));
  EXPECT_FALSE(IsIdentifier("a-b"));
  EXPECT_FALSE(IsIdentifier(""));
}

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(1);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.Range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, BelowBound) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(rng.Below(7), 7u);
  }
}

TEST(OutcomeTest, Names) {
  EXPECT_STREQ(OutcomeToString(Outcome::kHolds), "holds");
  EXPECT_STREQ(OutcomeToString(Outcome::kUnknown), "unknown");
  EXPECT_STREQ(OutcomeToString(Outcome::kViolated), "violated");
}

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailures) {
  CircuitBreakerConfig config;
  config.failure_threshold = 3;
  CircuitBreaker breaker(config);
  EXPECT_EQ(breaker.state(), CircuitState::kClosed);
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitState::kClosed);
  // A success in between resets the consecutive count.
  breaker.RecordSuccess();
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitState::kClosed);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitState::kOpen);
  EXPECT_EQ(breaker.times_opened(), 1u);
  EXPECT_FALSE(breaker.AllowRequest());
}

TEST(CircuitBreakerTest, HalfOpensAfterCooldown) {
  CircuitBreakerConfig config;
  config.failure_threshold = 1;
  config.cooldown_ticks = 4;
  CircuitBreaker breaker(config);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitState::kOpen);
  breaker.Tick(3);
  EXPECT_FALSE(breaker.AllowRequest());  // cooldown not yet elapsed
  EXPECT_EQ(breaker.state(), CircuitState::kOpen);
  breaker.Tick(1);
  EXPECT_TRUE(breaker.AllowRequest());  // transitions to half-open
  EXPECT_EQ(breaker.state(), CircuitState::kHalfOpen);
}

TEST(CircuitBreakerTest, FailedProbeReopensAndRestartsCooldown) {
  CircuitBreakerConfig config;
  config.failure_threshold = 1;
  config.cooldown_ticks = 4;
  CircuitBreaker breaker(config);
  breaker.RecordFailure();
  breaker.Tick(4);
  EXPECT_TRUE(breaker.AllowRequest());
  EXPECT_EQ(breaker.state(), CircuitState::kHalfOpen);
  breaker.RecordFailure();  // probe fails
  EXPECT_EQ(breaker.state(), CircuitState::kOpen);
  EXPECT_EQ(breaker.times_opened(), 2u);
  // The cooldown restarted at the probe failure, not the original trip.
  breaker.Tick(3);
  EXPECT_FALSE(breaker.AllowRequest());
  breaker.Tick(1);
  EXPECT_TRUE(breaker.AllowRequest());
}

TEST(CircuitBreakerTest, ClosesAfterEnoughProbeSuccesses) {
  CircuitBreakerConfig config;
  config.failure_threshold = 1;
  config.cooldown_ticks = 2;
  config.half_open_successes = 2;
  CircuitBreaker breaker(config);
  breaker.RecordFailure();
  breaker.Tick(2);
  EXPECT_TRUE(breaker.AllowRequest());
  EXPECT_EQ(breaker.state(), CircuitState::kHalfOpen);
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitState::kHalfOpen);  // needs 2 successes
  EXPECT_TRUE(breaker.AllowRequest());  // half-open keeps allowing probes
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitState::kClosed);
  // Fully recovered: failures count from zero again.
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitState::kOpen);
  EXPECT_EQ(breaker.times_opened(), 2u);
}

TEST(CircuitBreakerTest, StateNames) {
  EXPECT_STREQ(CircuitStateToString(CircuitState::kClosed), "closed");
  EXPECT_STREQ(CircuitStateToString(CircuitState::kOpen), "open");
  EXPECT_STREQ(CircuitStateToString(CircuitState::kHalfOpen), "half-open");
}

}  // namespace
}  // namespace ccpi
