#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "util/budget.h"
#include "util/circuit_breaker.h"
#include "util/outcome.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"

namespace ccpi {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad arity");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad arity");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad arity");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument,
        StatusCode::kUnsupported, StatusCode::kNotFound,
        StatusCode::kInternal, StatusCode::kResourceExhausted}) {
    EXPECT_NE(std::string(StatusCodeToString(code)), "Unknown");
  }
}

TEST(StatusTest, ResourceExhaustedIsNotRetriable) {
  // Retrying a budget-exhausted operation would spend the same exhausted
  // envelope again; the caller must shed or re-budget instead.
  EXPECT_FALSE(IsRetriable(StatusCode::kResourceExhausted));
  Status st = Status::ResourceExhausted("deadline");
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(st.ToString(), "Resource exhausted: deadline");
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_TRUE(ok.status().ok());

  Result<int> err = Status::NotFound("nope");
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  CCPI_ASSIGN_OR_RETURN(int half, Half(x));
  CCPI_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto q = Quarter(8);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*q, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringsTest, VariableConvention) {
  EXPECT_TRUE(IsVariableName("X"));
  EXPECT_TRUE(IsVariableName("Salary"));
  EXPECT_FALSE(IsVariableName("emp"));
  EXPECT_FALSE(IsVariableName(""));
  EXPECT_FALSE(IsVariableName("_x"));
}

TEST(StringsTest, Identifier) {
  EXPECT_TRUE(IsIdentifier("emp_1"));
  EXPECT_TRUE(IsIdentifier("_private"));
  EXPECT_FALSE(IsIdentifier("1emp"));
  EXPECT_FALSE(IsIdentifier("a-b"));
  EXPECT_FALSE(IsIdentifier(""));
}

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(1);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.Range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, BelowBound) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(rng.Below(7), 7u);
  }
}

TEST(OutcomeTest, Names) {
  EXPECT_STREQ(OutcomeToString(Outcome::kHolds), "holds");
  EXPECT_STREQ(OutcomeToString(Outcome::kUnknown), "unknown");
  EXPECT_STREQ(OutcomeToString(Outcome::kViolated), "violated");
}

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailures) {
  CircuitBreakerConfig config;
  config.failure_threshold = 3;
  CircuitBreaker breaker(config);
  EXPECT_EQ(breaker.state(), CircuitState::kClosed);
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitState::kClosed);
  // A success in between resets the consecutive count.
  breaker.RecordSuccess();
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitState::kClosed);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitState::kOpen);
  EXPECT_EQ(breaker.times_opened(), 1u);
  EXPECT_FALSE(breaker.AllowRequest());
}

TEST(CircuitBreakerTest, HalfOpensAfterCooldown) {
  CircuitBreakerConfig config;
  config.failure_threshold = 1;
  config.cooldown_ticks = 4;
  CircuitBreaker breaker(config);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitState::kOpen);
  breaker.Tick(3);
  EXPECT_FALSE(breaker.AllowRequest());  // cooldown not yet elapsed
  EXPECT_EQ(breaker.state(), CircuitState::kOpen);
  breaker.Tick(1);
  EXPECT_TRUE(breaker.AllowRequest());  // transitions to half-open
  EXPECT_EQ(breaker.state(), CircuitState::kHalfOpen);
}

TEST(CircuitBreakerTest, FailedProbeReopensAndRestartsCooldown) {
  CircuitBreakerConfig config;
  config.failure_threshold = 1;
  config.cooldown_ticks = 4;
  CircuitBreaker breaker(config);
  breaker.RecordFailure();
  breaker.Tick(4);
  EXPECT_TRUE(breaker.AllowRequest());
  EXPECT_EQ(breaker.state(), CircuitState::kHalfOpen);
  breaker.RecordFailure();  // probe fails
  EXPECT_EQ(breaker.state(), CircuitState::kOpen);
  EXPECT_EQ(breaker.times_opened(), 2u);
  // The cooldown restarted at the probe failure, not the original trip.
  breaker.Tick(3);
  EXPECT_FALSE(breaker.AllowRequest());
  breaker.Tick(1);
  EXPECT_TRUE(breaker.AllowRequest());
}

TEST(CircuitBreakerTest, ClosesAfterEnoughProbeSuccesses) {
  CircuitBreakerConfig config;
  config.failure_threshold = 1;
  config.cooldown_ticks = 2;
  config.half_open_successes = 2;
  CircuitBreaker breaker(config);
  breaker.RecordFailure();
  breaker.Tick(2);
  EXPECT_TRUE(breaker.AllowRequest());
  EXPECT_EQ(breaker.state(), CircuitState::kHalfOpen);
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitState::kHalfOpen);  // needs 2 successes
  EXPECT_TRUE(breaker.AllowRequest());  // half-open keeps allowing probes
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitState::kClosed);
  // Fully recovered: failures count from zero again.
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitState::kOpen);
  EXPECT_EQ(breaker.times_opened(), 2u);
}

TEST(CircuitBreakerTest, HalfOpenAdmitsExactlyOneProbe) {
  CircuitBreakerConfig config;
  config.failure_threshold = 1;
  config.cooldown_ticks = 1;
  CircuitBreaker breaker(config);
  breaker.RecordFailure();
  breaker.Tick(1);
  EXPECT_TRUE(breaker.AllowRequest());  // claims the probe slot
  EXPECT_EQ(breaker.state(), CircuitState::kHalfOpen);
  EXPECT_FALSE(breaker.AllowRequest());  // slot taken: no second probe
  EXPECT_FALSE(breaker.WouldAllow());
  breaker.RecordSuccess();  // verdict releases the slot
  EXPECT_TRUE(breaker.WouldAllow());
  EXPECT_TRUE(breaker.AllowRequest());
  breaker.RecordFailure();  // failed probe also releases (and reopens)
  EXPECT_EQ(breaker.state(), CircuitState::kOpen);
}

TEST(CircuitBreakerTest, CancelProbeReleasesWithoutVerdict) {
  CircuitBreakerConfig config;
  config.failure_threshold = 1;
  config.cooldown_ticks = 1;
  config.half_open_successes = 2;
  CircuitBreaker breaker(config);
  breaker.RecordFailure();
  breaker.Tick(1);
  EXPECT_TRUE(breaker.AllowRequest());
  EXPECT_FALSE(breaker.AllowRequest());
  breaker.CancelProbe();  // e.g. the admitted episode was shed by budget
  EXPECT_EQ(breaker.state(), CircuitState::kHalfOpen);  // no verdict counted
  EXPECT_TRUE(breaker.AllowRequest());  // slot free again
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitState::kHalfOpen);  // still needs 2
  EXPECT_TRUE(breaker.AllowRequest());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitState::kClosed);
  // Outside half-open the cancel is a no-op.
  breaker.CancelProbe();
  EXPECT_TRUE(breaker.AllowRequest());
  EXPECT_EQ(breaker.state(), CircuitState::kClosed);
}

TEST(CircuitBreakerTest, WouldAllowIsPure) {
  CircuitBreakerConfig config;
  config.failure_threshold = 1;
  config.cooldown_ticks = 2;
  CircuitBreaker breaker(config);
  EXPECT_TRUE(breaker.WouldAllow());
  breaker.RecordFailure();
  EXPECT_FALSE(breaker.WouldAllow());
  breaker.Tick(2);
  // Cooldown elapsed: the gate answers yes but does NOT transition — the
  // open->half-open edge belongs to the claiming AllowRequest.
  EXPECT_TRUE(breaker.WouldAllow());
  EXPECT_EQ(breaker.state(), CircuitState::kOpen);
  EXPECT_TRUE(breaker.AllowRequest());
  EXPECT_EQ(breaker.state(), CircuitState::kHalfOpen);
}

TEST(CircuitBreakerTest, HalfOpenSingleProbeUnderConcurrentRequests) {
  // N threads race AllowRequest() against a half-open breaker: exactly
  // one may claim the probe slot. Run under TSan in CI.
  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  for (int round = 0; round < kRounds; ++round) {
    CircuitBreakerConfig config;
    config.failure_threshold = 1;
    config.cooldown_ticks = 1;
    CircuitBreaker breaker(config);
    breaker.RecordFailure();
    breaker.Tick(1);
    EXPECT_TRUE(breaker.AllowRequest());
    EXPECT_EQ(breaker.state(), CircuitState::kHalfOpen);
    breaker.CancelProbe();  // half-open, slot free, probes may race
    std::atomic<int> admitted{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&breaker, &admitted] {
        if (breaker.AllowRequest()) admitted.fetch_add(1);
      });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(admitted.load(), 1);
    EXPECT_EQ(breaker.state(), CircuitState::kHalfOpen);
    breaker.RecordSuccess();  // release so the next round starts clean
  }
}

TEST(RetryTest, ZeroEpisodeBudgetMeansUnlimited) {
  // episode_budget == 0 is documented as *unlimited*, not "no budget to
  // spend": all max_attempts tries run no matter how much simulated
  // backoff accumulates.
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff = 1000;  // would instantly blow any small budget
  policy.max_backoff = 1000;
  policy.episode_budget = 0;
  policy.jitter = 0;
  Rng rng(1);
  size_t calls = 0;
  RetryOutcome out = RunWithRetry(policy, &rng, [&] {
    ++calls;
    return Status::Unavailable("down");
  });
  EXPECT_EQ(calls, 5u);
  EXPECT_EQ(out.attempts, 5u);
  EXPECT_EQ(out.backoff_spent, 4000u);

  // Contrast: a tiny nonzero budget (smaller than initial_backoff) permits
  // the first attempt but never a retry.
  policy.episode_budget = 1;
  calls = 0;
  out = RunWithRetry(policy, &rng, [&] {
    ++calls;
    return Status::Unavailable("down");
  });
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(out.attempts, 1u);
  EXPECT_EQ(out.backoff_spent, 0u);
}

TEST(BudgetTest, InertScopePassesEveryCheckpoint) {
  BudgetScope scope;
  EXPECT_FALSE(scope.active());
  EXPECT_FALSE(scope.has_deadline());
  EXPECT_TRUE(scope.OnFixpointRound().ok());
  EXPECT_TRUE(scope.OnDerivedTuples(1u << 20).ok());
  EXPECT_TRUE(scope.OnRemoteTrip().ok());
  EXPECT_TRUE(scope.Check().ok());
  EXPECT_EQ(scope.checkpoints(), 0u);  // inert scopes count nothing
}

TEST(BudgetTest, UnarmedBudgetImposesNothing) {
  ExecutionBudget none;
  EXPECT_FALSE(none.armed());
  BudgetScope scope = BudgetScope::Start(none);
  EXPECT_FALSE(scope.active());
  EXPECT_TRUE(scope.OnFixpointRound().ok());
}

TEST(BudgetTest, FixpointRoundCap) {
  ExecutionBudget budget;
  budget.max_fixpoint_rounds = 3;
  BudgetScope scope = BudgetScope::Start(budget);
  EXPECT_TRUE(scope.active());
  EXPECT_TRUE(scope.OnFixpointRound().ok());
  EXPECT_TRUE(scope.OnFixpointRound().ok());
  EXPECT_TRUE(scope.OnFixpointRound().ok());
  Status st = scope.OnFixpointRound();  // round 4 exceeds the cap
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  // Exhaustion is sticky: the counter only grows.
  EXPECT_EQ(scope.OnFixpointRound().code(), StatusCode::kResourceExhausted);
}

TEST(BudgetTest, DerivedTupleCapCountsBatches) {
  ExecutionBudget budget;
  budget.max_derived_tuples = 100;
  BudgetScope scope = BudgetScope::Start(budget);
  EXPECT_TRUE(scope.OnDerivedTuples(60).ok());
  EXPECT_TRUE(scope.OnDerivedTuples(40).ok());  // exactly at the cap is fine
  EXPECT_EQ(scope.OnDerivedTuples(1).code(),
            StatusCode::kResourceExhausted);
}

TEST(BudgetTest, RemoteTripCapRefusesBeforePaying) {
  ExecutionBudget budget;
  budget.max_remote_trips = 2;
  BudgetScope scope = BudgetScope::Start(budget);
  EXPECT_TRUE(scope.OnRemoteTrip().ok());
  EXPECT_TRUE(scope.OnRemoteTrip().ok());
  EXPECT_EQ(scope.OnRemoteTrip().code(), StatusCode::kResourceExhausted);
}

TEST(BudgetTest, ExpiredDeadlineFailsEveryCheckpoint) {
  ExecutionBudget budget;
  budget.deadline_ms = 1;
  BudgetScope scope = BudgetScope::Start(budget);
  EXPECT_TRUE(scope.has_deadline());
  // The deadline is an absolute instant: sleeping comfortably past it is
  // deterministic at any machine speed or sanitizer slowdown.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(scope.Check().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(scope.OnFixpointRound().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(scope.OnDerivedTuples(1).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(scope.OnRemoteTrip().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(scope.remaining_ms(), 0u);
}

TEST(BudgetTest, CancellationTripsEveryCheckpoint) {
  CancellationToken token;
  BudgetScope scope = BudgetScope::Start(ExecutionBudget{}, &token);
  EXPECT_TRUE(scope.active());  // armed by the token alone
  EXPECT_TRUE(scope.Check().ok());
  token.Cancel();
  EXPECT_EQ(scope.Check().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(scope.OnFixpointRound().code(), StatusCode::kResourceExhausted);
  token.Reset();
  EXPECT_TRUE(scope.Check().ok());
}

TEST(BudgetTest, SplitDividesCapsDeterministically) {
  ExecutionBudget budget;
  budget.max_fixpoint_rounds = 10;
  budget.max_remote_trips = 3;
  BudgetScope parent = BudgetScope::Start(budget);
  BudgetScope a = parent.Split(4);
  BudgetScope b = parent.Split(4);
  // Children depend only on (budget, ways, extra), never sibling progress.
  EXPECT_EQ(a.budget().max_fixpoint_rounds, 2u);  // 10 / 4
  EXPECT_EQ(b.budget().max_fixpoint_rounds, 2u);
  EXPECT_EQ(a.budget().max_remote_trips, 1u);  // max(3 / 4, 1)
  EXPECT_EQ(a.budget().max_derived_tuples, 0u);  // unlimited stays unlimited
  // Spending one child leaves the other untouched.
  EXPECT_TRUE(a.OnFixpointRound().ok());
  EXPECT_TRUE(a.OnFixpointRound().ok());
  EXPECT_EQ(a.OnFixpointRound().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(b.OnFixpointRound().ok());
}

TEST(BudgetTest, SplitFoldsInPerCheckExtraTightestWins) {
  ExecutionBudget episode;
  episode.max_fixpoint_rounds = 100;
  ExecutionBudget extra;
  extra.max_fixpoint_rounds = 2;  // tighter than 100 / 4 = 25
  BudgetScope parent = BudgetScope::Start(episode);
  BudgetScope child = parent.Split(4, extra);
  EXPECT_EQ(child.budget().max_fixpoint_rounds, 2u);

  // An inert parent split with a per-check budget is armed by it alone.
  BudgetScope inert;
  BudgetScope solo = inert.Split(1, extra);
  EXPECT_TRUE(solo.active());
  EXPECT_TRUE(solo.OnFixpointRound().ok());
  EXPECT_TRUE(solo.OnFixpointRound().ok());
  EXPECT_EQ(solo.OnFixpointRound().code(),
            StatusCode::kResourceExhausted);
}

TEST(CircuitBreakerTest, StateNames) {
  EXPECT_STREQ(CircuitStateToString(CircuitState::kClosed), "closed");
  EXPECT_STREQ(CircuitStateToString(CircuitState::kOpen), "open");
  EXPECT_STREQ(CircuitStateToString(CircuitState::kHalfOpen), "half-open");
}

}  // namespace
}  // namespace ccpi
