#include <gtest/gtest.h>

#include <set>

#include "util/outcome.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"

namespace ccpi {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad arity");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad arity");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad arity");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument,
        StatusCode::kUnsupported, StatusCode::kNotFound,
        StatusCode::kInternal}) {
    EXPECT_NE(std::string(StatusCodeToString(code)), "Unknown");
  }
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_TRUE(ok.status().ok());

  Result<int> err = Status::NotFound("nope");
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  CCPI_ASSIGN_OR_RETURN(int half, Half(x));
  CCPI_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto q = Quarter(8);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*q, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringsTest, VariableConvention) {
  EXPECT_TRUE(IsVariableName("X"));
  EXPECT_TRUE(IsVariableName("Salary"));
  EXPECT_FALSE(IsVariableName("emp"));
  EXPECT_FALSE(IsVariableName(""));
  EXPECT_FALSE(IsVariableName("_x"));
}

TEST(StringsTest, Identifier) {
  EXPECT_TRUE(IsIdentifier("emp_1"));
  EXPECT_TRUE(IsIdentifier("_private"));
  EXPECT_FALSE(IsIdentifier("1emp"));
  EXPECT_FALSE(IsIdentifier("a-b"));
  EXPECT_FALSE(IsIdentifier(""));
}

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(1);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.Range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, BelowBound) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(rng.Below(7), 7u);
  }
}

TEST(OutcomeTest, Names) {
  EXPECT_STREQ(OutcomeToString(Outcome::kHolds), "holds");
  EXPECT_STREQ(OutcomeToString(Outcome::kUnknown), "unknown");
  EXPECT_STREQ(OutcomeToString(Outcome::kViolated), "violated");
}

}  // namespace
}  // namespace ccpi
