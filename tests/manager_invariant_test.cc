// Whole-system soundness fuzz: random constraint sets and update streams
// run through the tiered ConstraintManager, with two invariants checked
// after EVERY update against ground truth (full evaluation):
//
//  1. No violation ever gets through: all active constraints hold on the
//     database the manager maintains. (Soundness of every tier at once —
//     a bug in subsumption, independence, or any local test breaks this.)
//  2. No false rejections: when the manager rejects an update, actually
//     applying it would have violated some constraint.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datalog/parser.h"
#include "eval/engine.h"
#include "manager/constraint_manager.h"
#include "util/rng.h"

namespace ccpi {
namespace {

Program MustParse(const std::string& text) {
  auto p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return *p;
}

class ManagerInvariant : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ManagerInvariant, CascadeIsSoundAndNeverOverRejects) {
  Rng rng(GetParam());

  // A pool of constraint shapes over small relations; each trial picks a
  // few.
  const char* pool[] = {
      "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y",  // forbidden intervals
      "panic :- l(X,Y) & X > Y",                   // purely local order
      "panic :- l(X,Y) & r(X)",                    // join, arithmetic-free
      "panic :- r(Z) & Z > 8",                     // remote-only cap
      "panic :- l(X,Y) & l(Y,X2) & X = X2",        // self-join via equality
  };
  std::vector<Program> chosen;
  std::vector<std::string> names;
  ConstraintManager mgr({"l"}, CostModel{});
  size_t count = 2 + rng.Below(3);
  for (size_t i = 0; i < count; ++i) {
    std::string text = pool[rng.Below(5)];
    Program p = MustParse(text);
    std::string name = "c" + std::to_string(i);
    auto added = mgr.AddConstraint(name, p);
    ASSERT_TRUE(added.ok()) << added.status().ToString();
    chosen.push_back(std::move(p));
    names.push_back(std::move(name));
  }

  for (int step = 0; step < 60; ++step) {
    // Random single-tuple update over l (local) or r (remote).
    std::string pred = rng.Chance(2, 3) ? "l" : "r";
    Tuple t = pred == "l" ? Tuple{V(rng.Range(0, 6)), V(rng.Range(0, 9))}
                          : Tuple{V(rng.Range(0, 9))};
    Update u = rng.Chance(3, 4) ? Update::Insert(pred, t)
                                : Update::Delete(pred, t);

    Database before = mgr.site().db();
    auto reports = mgr.ApplyUpdate(u);
    ASSERT_TRUE(reports.ok()) << reports.status().ToString();
    bool rejected = false;
    for (const CheckReport& r : *reports) {
      rejected = rejected || r.outcome == Outcome::kViolated;
    }

    // Invariant 1: every constraint holds on the maintained database.
    for (const Program& c : chosen) {
      auto violated = IsViolated(c, mgr.site().db());
      ASSERT_TRUE(violated.ok());
      EXPECT_FALSE(*violated)
          << "tier cascade admitted a violation of\n"
          << c.ToString() << "after " << u.ToString() << "\ndb:\n"
          << mgr.site().db().ToString();
    }

    if (rejected) {
      // Invariant 2: the rejection was justified.
      Database would_be = before;
      ASSERT_TRUE(u.ApplyTo(&would_be).ok());
      bool any = false;
      for (const Program& c : chosen) {
        auto violated = IsViolated(c, would_be);
        ASSERT_TRUE(violated.ok());
        any = any || *violated;
      }
      EXPECT_TRUE(any) << "false rejection of " << u.ToString();
      // And the database is unchanged.
      EXPECT_EQ(mgr.site().db().ToString(), before.ToString());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ManagerInvariant,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(ManagerInvariantTransactions, AtomicityUnderRandomBatches) {
  Rng rng(99);
  ConstraintManager mgr({"l"}, CostModel{});
  ASSERT_TRUE(mgr.AddConstraint("ord", MustParse("panic :- l(X,Y) & X > Y"))
                  .ok());
  ASSERT_TRUE(
      mgr.AddConstraint(
             "fi", MustParse("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y"))
          .ok());
  ASSERT_TRUE(mgr.site().db().Insert("r", {V(7)}).ok());

  for (int round = 0; round < 30; ++round) {
    Database before = mgr.site().db();
    std::vector<Update> batch;
    size_t len = 1 + rng.Below(4);
    for (size_t i = 0; i < len; ++i) {
      Tuple t = {V(rng.Range(0, 9)), V(rng.Range(0, 9))};
      batch.push_back(rng.Chance(3, 4) ? Update::Insert("l", t)
                                       : Update::Delete("l", t));
    }
    auto result = mgr.ApplyTransaction(batch);
    ASSERT_TRUE(result.ok());
    if (!result->committed) {
      EXPECT_EQ(mgr.site().db().ToString(), before.ToString())
          << "rollback left residue";
    }
    // Constraints hold either way.
    auto v1 = IsViolated(MustParse("panic :- l(X,Y) & X > Y"),
                         mgr.site().db());
    ASSERT_TRUE(v1.ok());
    EXPECT_FALSE(*v1);
  }
}

}  // namespace
}  // namespace ccpi
