// Whole-system soundness fuzz: random constraint sets and update streams
// run through the tiered ConstraintManager, with two invariants checked
// after EVERY update against ground truth (full evaluation):
//
//  1. No violation ever gets through: all active constraints hold on the
//     database the manager maintains. (Soundness of every tier at once —
//     a bug in subsumption, independence, or any local test breaks this.)
//  2. No false rejections: when the manager rejects an update, actually
//     applying it would have violated some constraint.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "datalog/parser.h"
#include "eval/engine.h"
#include "manager/constraint_manager.h"
#include "util/rng.h"

namespace ccpi {
namespace {

Program MustParse(const std::string& text) {
  auto p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return *p;
}

class ManagerInvariant : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ManagerInvariant, CascadeIsSoundAndNeverOverRejects) {
  Rng rng(GetParam());

  // A pool of constraint shapes over small relations; each trial picks a
  // few.
  const char* pool[] = {
      "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y",  // forbidden intervals
      "panic :- l(X,Y) & X > Y",                   // purely local order
      "panic :- l(X,Y) & r(X)",                    // join, arithmetic-free
      "panic :- r(Z) & Z > 8",                     // remote-only cap
      "panic :- l(X,Y) & l(Y,X2) & X = X2",        // self-join via equality
  };
  std::vector<Program> chosen;
  std::vector<std::string> names;
  ConstraintManager mgr({"l"}, CostModel{});
  size_t count = 2 + rng.Below(3);
  for (size_t i = 0; i < count; ++i) {
    std::string text = pool[rng.Below(5)];
    Program p = MustParse(text);
    std::string name = "c" + std::to_string(i);
    auto added = mgr.AddConstraint(name, p);
    ASSERT_TRUE(added.ok()) << added.status().ToString();
    chosen.push_back(std::move(p));
    names.push_back(std::move(name));
  }

  for (int step = 0; step < 60; ++step) {
    // Random single-tuple update over l (local) or r (remote).
    std::string pred = rng.Chance(2, 3) ? "l" : "r";
    Tuple t = pred == "l" ? Tuple{V(rng.Range(0, 6)), V(rng.Range(0, 9))}
                          : Tuple{V(rng.Range(0, 9))};
    Update u = rng.Chance(3, 4) ? Update::Insert(pred, t)
                                : Update::Delete(pred, t);

    Database before = mgr.site().db();
    auto reports = mgr.ApplyUpdate(u);
    ASSERT_TRUE(reports.ok()) << reports.status().ToString();
    bool rejected = false;
    for (const CheckReport& r : *reports) {
      rejected = rejected || r.outcome == Outcome::kViolated;
    }

    // Invariant 1: every constraint holds on the maintained database.
    for (const Program& c : chosen) {
      auto violated = IsViolated(c, mgr.site().db());
      ASSERT_TRUE(violated.ok());
      EXPECT_FALSE(*violated)
          << "tier cascade admitted a violation of\n"
          << c.ToString() << "after " << u.ToString() << "\ndb:\n"
          << mgr.site().db().ToString();
    }

    if (rejected) {
      // Invariant 2: the rejection was justified.
      Database would_be = before;
      ASSERT_TRUE(u.ApplyTo(&would_be).ok());
      bool any = false;
      for (const Program& c : chosen) {
        auto violated = IsViolated(c, would_be);
        ASSERT_TRUE(violated.ok());
        any = any || *violated;
      }
      EXPECT_TRUE(any) << "false rejection of " << u.ToString();
      // And the database is unchanged.
      EXPECT_EQ(mgr.site().db().ToString(), before.ToString());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ManagerInvariant,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(ManagerInvariantTransactions, AtomicityUnderRandomBatches) {
  Rng rng(99);
  ConstraintManager mgr({"l"}, CostModel{});
  ASSERT_TRUE(mgr.AddConstraint("ord", MustParse("panic :- l(X,Y) & X > Y"))
                  .ok());
  ASSERT_TRUE(
      mgr.AddConstraint(
             "fi", MustParse("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y"))
          .ok());
  ASSERT_TRUE(mgr.site().db().Insert("r", {V(7)}).ok());

  for (int round = 0; round < 30; ++round) {
    Database before = mgr.site().db();
    std::vector<Update> batch;
    size_t len = 1 + rng.Below(4);
    for (size_t i = 0; i < len; ++i) {
      Tuple t = {V(rng.Range(0, 9)), V(rng.Range(0, 9))};
      batch.push_back(rng.Chance(3, 4) ? Update::Insert("l", t)
                                       : Update::Delete("l", t));
    }
    auto result = mgr.ApplyTransaction(batch);
    ASSERT_TRUE(result.ok());
    if (!result->committed) {
      EXPECT_EQ(mgr.site().db().ToString(), before.ToString())
          << "rollback left residue";
    }
    // Constraints hold either way.
    auto v1 = IsViolated(MustParse("panic :- l(X,Y) & X > Y"),
                         mgr.site().db());
    ASSERT_TRUE(v1.ok());
    EXPECT_FALSE(*v1);
  }
}

// ---- Execution budgets: the overload-control invariants ------------------
//
// The budget envelope's two acceptance properties, checked directly:
//
//  1. Accounting balances exactly: every tier-3 check admitted to the
//     resolution loop is accounted for as completed, deferred, or shed —
//     nothing vanishes, nothing is counted twice.
//  2. A tight per-episode deadline actually bounds ApplyUpdate's wall
//     clock: each episode returns within 2x the deadline (the slack covers
//     one checkpoint interval — the engine only notices expiry at the next
//     fixpoint-round / rule-batch / enumeration checkpoint).
//
// (Suite names deliberately avoid the TSan job's -R filter: these assert
// wall-clock bounds, meaningless under a 10x sanitizer slowdown. The
// thread-interleaving half of budgeting is covered by the
// ParallelEquivalence budget tests, which do run under TSan.)

/// A manager with one cheap and one expensive tier-3 constraint: "fi"
/// joins the local interval table with a single remote tuple; "deep" walks
/// the transitive closure of a `chain`-edge remote chain.
std::unique_ptr<ConstraintManager> HeavyRig(size_t chain, BudgetConfig budget,
                                            ResilienceConfig resilience = {}) {
  auto mgr = std::make_unique<ConstraintManager>(
      std::set<std::string>{"l", "lq"}, CostModel{}, resilience,
      ParallelConfig{}, RemoteCacheConfig{}, budget);
  EXPECT_TRUE(
      mgr->AddConstraint(
             "fi", MustParse("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y"))
          .ok());
  EXPECT_TRUE(mgr->AddConstraint(
                     "deep",
                     MustParse("panic :- lq(X) & path(X,Y) & bad(Y)\n"
                               "path(X,Y) :- edge(X,Y)\n"
                               "path(X,Y) :- edge(X,Z) & path(Z,Y)"))
                  .ok());
  EXPECT_TRUE(mgr->site().db().Insert("r", {V(1000)}).ok());
  for (size_t i = 0; i < chain; ++i) {
    EXPECT_TRUE(mgr->site()
                    .db()
                    .Insert("edge", {V(static_cast<int64_t>(i)),
                                     V(static_cast<int64_t>(i + 1))})
                    .ok());
  }
  return mgr;
}

size_t CompletedAtT3(const ManagerStats& stats) {
  auto it = stats.resolved_by.find(Tier::kFullCheck);
  return it != stats.resolved_by.end() ? it->second : 0;
}

TEST(BudgetAccounting, AdmittedEqualsCompletedPlusDeferredPlusShed) {
  // Deterministic shedding (no wall clock): four fixpoint rounds never
  // close a 64-edge chain, while the nonrecursive "fi" check finishes well
  // inside them — so the stream mixes completed and shed tier-3 checks and
  // the ledger must balance exactly, not merely approximately.
  BudgetConfig budget;
  budget.per_check.max_fixpoint_rounds = 4;
  auto mgr = HeavyRig(64, budget);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(mgr->ApplyUpdate(Update::Insert("lq", {V(i)})).ok());
    ASSERT_TRUE(
        mgr->ApplyUpdate(Update::Insert("l", {V(10 * i), V(10 * i + 3)}))
            .ok());
  }
  ManagerStats stats = mgr->stats();
  EXPECT_GT(stats.shed_checks, 0u);      // the cap actually bit
  EXPECT_GT(CompletedAtT3(stats), 0u);   // and didn't bite everything
  EXPECT_EQ(stats.deferred, 0u);         // no injector: nothing unreachable
  EXPECT_EQ(stats.t3_admitted,
            CompletedAtT3(stats) + stats.deferred + stats.shed_checks);
  // Every shed check is sitting in the queue awaiting a future budget.
  EXPECT_EQ(mgr->deferred_queue().size(), stats.shed_checks);
}

TEST(BudgetEnvelope, TightDeadlineBoundsEpisodeWallClock) {
  // An unbudgeted "deep" check on a 768-edge chain takes high hundreds of
  // milliseconds; under a 250ms per-episode deadline every ApplyUpdate —
  // including the ones that also drain prior sheds inside the same
  // envelope — must return within 2x the deadline.
  BudgetConfig budget;
  budget.per_episode.deadline_ms = 250;
  auto mgr = HeavyRig(768, budget);
  for (int i = 0; i < 4; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    auto reports = mgr->ApplyUpdate(Update::Insert("lq", {V(i)}));
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    ASSERT_TRUE(reports.ok()) << reports.status().ToString();
    EXPECT_LT(elapsed, 500) << "episode " << i << " overran 2x its deadline";
  }
  ManagerStats stats = mgr->stats();
  EXPECT_GT(stats.shed_checks, 0u);
  EXPECT_EQ(stats.t3_admitted,
            CompletedAtT3(stats) + stats.deferred + stats.shed_checks);
}

}  // namespace
}  // namespace ccpi
