// Regression tests for the Relation::Probe const-mutation data race: Probe
// lazily builds column indexes, so two threads probing the same frozen
// relation used to race on the index map. These tests are meant to run
// under ThreadSanitizer (the CI tsan job does); without TSan they still
// verify that concurrent probes agree with the sequential answers.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "distsim/site_db.h"
#include "relational/database.h"
#include "relational/relation.h"
#include "util/rng.h"

namespace ccpi {
namespace {

TEST(RelationConcurrencyTest, EightThreadsProbeOneRelation) {
  Relation rel(2);
  Rng rng(42);
  for (int i = 0; i < 512; ++i) {
    rel.Insert({V(rng.Range(0, 63)), V(rng.Range(0, 63))});
  }

  // Sequential ground truth, computed on a copy so the shared relation's
  // indexes are still cold when the threads start.
  Relation reference = rel;
  std::vector<size_t> expected[64];
  for (int64_t v = 0; v < 64; ++v) {
    expected[v] = reference.Probe(0, V(v));
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t]() {
      Rng thread_rng(1000 + t);
      for (int i = 0; i < 2000; ++i) {
        int64_t v = thread_rng.Range(0, 63);
        // Alternate columns so both lazy builds race.
        size_t col = i % 2;
        const std::vector<size_t>& posting = rel.Probe(col, V(v));
        if (col == 0 && posting != expected[v]) mismatches.fetch_add(1);
        if (!posting.empty() && !rel.Contains(rel.rows()[posting[0]])) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(RelationConcurrencyTest, FreezeThenParallelProbe) {
  Relation rel(3);
  for (int i = 0; i < 256; ++i) {
    rel.Insert({V(i % 16), V(i % 8), V(i)});
  }
  rel.FreezeIndexes();  // all probes below take only the shared fast path

  std::atomic<size_t> total{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&]() {
      size_t n = 0;
      for (int64_t v = 0; v < 16; ++v) {
        n += rel.Probe(0, V(v)).size();
        n += rel.Probe(1, V(v % 8)).size();
      }
      total.fetch_add(n);
    });
  }
  for (std::thread& t : threads) t.join();
  // Column 0: all 256 rows partitioned over 16 values. Column 1: probing
  // each of the 8 classes twice covers all 256 rows twice.
  EXPECT_EQ(total.load(), 8u * (256 + 2 * 256));
}

TEST(RelationConcurrencyTest, CopyWhileOthersProbe) {
  Relation rel(2);
  for (int i = 0; i < 128; ++i) rel.Insert({V(i % 4), V(i)});

  std::atomic<bool> stop{false};
  std::vector<std::thread> probers;
  for (int t = 0; t < 4; ++t) {
    probers.emplace_back([&]() {
      while (!stop.load()) {
        for (int64_t v = 0; v < 4; ++v) rel.Probe(0, V(v));
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    Relation copy = rel;  // must not read the index cache being built
    ASSERT_EQ(copy.size(), rel.size());
    ASSERT_EQ(copy.Probe(0, V(1)).size(), rel.Probe(0, V(1)).size());
  }
  stop.store(true);
  for (std::thread& t : probers) t.join();
}

TEST(RelationConcurrencyTest, ConstDatabaseGetAbsentFromManyThreads) {
  Database db;
  ASSERT_TRUE(db.Insert("l", {V(1), V(2)}).ok());
  const Database& view = db;

  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < 500; ++i) {
        // Absent predicates of varying arity exercise the shared
        // empty-relation cache; the same arity must come back at a stable
        // address.
        const Relation& a = view.Get("absent", 1 + (i + t) % 4);
        const Relation& b = view.Get("also_absent", 1 + (i + t) % 4);
        if (!a.empty() || &a != &b) errors.fetch_add(1);
        if (view.Get("l", 2).size() != 1) errors.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
}

// ResetStats exclusivity contract (see SiteDatabase::ResetStats): reads
// may hammer the counters from many threads, but a reset runs only after
// every reader has been joined. This is the legitimate pattern — it must
// be clean under ThreadSanitizer and the debug in-flight-read assertion —
// and each round's counters must come back exact, proving no read from a
// previous round leaked past its join into the reset window.
TEST(RelationConcurrencyTest, ResetStatsBetweenJoinedReadRounds) {
  SiteDatabase site({"l"});
  ASSERT_TRUE(site.db().Insert("l", {V(1), V(2)}).ok());
  ASSERT_TRUE(site.db().Insert("r", {V(7)}).ok());

  for (int round = 0; round < 4; ++round) {
    // Alternate cache modes across rounds: both read paths (physical
    // fetch and cache hit) must obey the same occupancy discipline.
    site.EnableRemoteCache(round % 2 == 1);
    std::vector<std::thread> readers;
    for (int t = 0; t < 8; ++t) {
      readers.emplace_back([&]() {
        for (int i = 0; i < 500; ++i) {
          ASSERT_TRUE(site.OnRead("l", 2).ok());
          ASSERT_TRUE(site.ReadRemote("r", 1).ok());
        }
      });
    }
    for (std::thread& t : readers) t.join();

    AccessStats stats = site.stats();
    EXPECT_EQ(stats.local_tuples, 8u * 500 * 2);
    // Every remote read was either a physical trip or a cache hit,
    // whatever the interleaving of the first fill.
    EXPECT_EQ(stats.remote_trips + stats.cache_hits, 8u * 500);
    EXPECT_EQ(stats.remote_tuples + stats.cached_tuples, 8u * 500);

    // All readers joined: the exclusivity precondition holds, so the
    // reset is race-free and the next round starts from exact zeroes.
    site.ResetStats();
    AccessStats zeroed = site.stats();
    EXPECT_EQ(zeroed.local_tuples, 0u);
    EXPECT_EQ(zeroed.remote_tuples, 0u);
    EXPECT_EQ(zeroed.remote_trips, 0u);
    EXPECT_EQ(zeroed.remote_failures, 0u);
    EXPECT_EQ(zeroed.cache_hits, 0u);
    EXPECT_EQ(zeroed.cached_tuples, 0u);
  }
}

TEST(RelationConcurrencyTest, DatabaseFreezeIndexes) {
  Database db;
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(db.Insert("l", {V(i % 8), V(i)}).ok());
    ASSERT_TRUE(db.Insert("r", {V(i)}).ok());
  }
  db.FreezeIndexes();
  EXPECT_EQ(db.Get("l", 2).Probe(0, V(3)).size(), 8u);
  EXPECT_EQ(db.Get("r", 1).Probe(0, V(3)).size(), 1u);
}

}  // namespace
}  // namespace ccpi
